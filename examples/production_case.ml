(* The production case of §7 / Fig. 18.

   Four sites, each IP link 1000 Gbps.  Tunnels s1->s2, s1->s3 and s4->s3
   carry 700, 600 and 300 Gbps.  The fiber under link s1-s3 degrades for
   tens of seconds and then cuts.

   - Traditional system: the router switches the affected primary path to
     its preconfigured backup s1-s2-s3; the spare capacity on s1-s2
     (1000 - 700 = 300 Gbps) cannot absorb the extra 600 Gbps, so packets
     drop until the next TE period.
   - PreTE: on the degradation signal the controller computes the optimal
     backup s1-s4-s3; when the cut lands the traffic switches there and
     nothing is lost.

   Run with: dune exec examples/production_case.exe *)

open Prete
open Prete_net

let () =
  (* Sites: 0 = s1, 1 = s2, 2 = s3, 3 = s4.  Fibers: s1-s2, s2-s3, s1-s3,
     s1-s4, s4-s3. *)
  (* Lengths chosen so the preconfigured backup for s1->s3 is s1-s2-s3
     (shorter) while s1-s4-s3 is the spare path PreTE discovers. *)
  let fibers =
    [| (0, 1, 600.0); (1, 2, 700.0); (0, 2, 1200.0); (0, 3, 900.0); (3, 2, 950.0) |]
  in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 1000.0, [ f ]); (b, a, 1000.0, [ f ]) ])
         [ (0, (0, 1)); (1, (1, 2)); (2, (0, 2)); (3, (0, 3)); (4, (3, 2)) ])
  in
  let topo =
    Topology.make ~name:"fig18" ~node_names:[| "s1"; "s2"; "s3"; "s4" |] ~fibers ~links
  in
  let fiber_s1s3 = 2 in

  (* Flows with the paper's volumes. *)
  let ts = Tunnels.build ~per_flow:2 topo [ (0, 1); (0, 2); (3, 2) ] in
  let demands = [| 700.0; 600.0; 300.0 |] in

  Printf.printf "Production case (Fig. 18): four sites, 1000 Gbps links\n";
  Printf.printf "Traffic: s1->s2 700G, s1->s3 600G, s4->s3 300G\n\n";

  (* Pre-failure: everything on its shortest tunnel. *)
  let direct flow =
    List.find
      (fun tid -> List.length ts.Tunnels.tunnels.(tid).Tunnels.links = 1)
      ts.Tunnels.of_flow.(flow)
  in
  let alloc = Array.make (Array.length ts.Tunnels.tunnels) 0.0 in
  Array.iteri (fun f d -> alloc.(direct f) <- d) demands;

  (* Traditional behaviour: s1->s3 falls back to the backup path
     s1-s2-s3. *)
  Printf.printf "=== Traditional system (backup path s1-s2-s3) ===\n";
  let load_s1s2 = demands.(0) +. demands.(1) in
  let overload = Float.max 0.0 (load_s1s2 -. 1000.0) in
  Printf.printf "Link s1-s2 would carry %.0fG against 1000G capacity\n" load_s1s2;
  Printf.printf "Sustained packet loss: %.0f Gbps until the next TE period\n\n" overload;

  (* PreTE: degradation signal -> Algorithm 1 -> optimal backup. *)
  Printf.printf "=== PreTE (degradation-triggered tunnel update) ===\n";
  let update = Tunnel_update.react ts ~degraded_fiber:fiber_s1s3 () in
  Array.iter
    (fun (tn : Tunnels.tunnel) ->
      let nodes = Routing.path_nodes topo tn.Tunnels.links in
      Printf.printf "New tunnel for flow %d: %s\n" tn.Tunnels.owner
        (String.concat "-" (List.map (fun v -> topo.Topology.node_names.(v)) nodes)))
    update.Tunnel_update.new_tunnels;
  let merged = Tunnel_update.merged update in
  let probs = [| 0.001; 0.001; 0.4; 0.001; 0.001 |] in
  let p = Te.make_problem ~ts:merged ~demands ~probs ~beta:0.99 () in
  let sol = Te.solve p in
  (* Delivery when the cut lands. *)
  let delivered flow =
    let surv =
      List.fold_left
        (fun acc tid ->
          let tn = merged.Tunnels.tunnels.(tid) in
          if Routing.uses_fiber topo tn.Tunnels.links fiber_s1s3 then acc
          else acc +. sol.Te.alloc.(tid))
        0.0 merged.Tunnels.of_flow.(flow)
    in
    Float.min demands.(flow) surv
  in
  let d0 = delivered 0 and d1 = delivered 1 and d2 = delivered 2 in
  Printf.printf "After the s1-s3 cut PreTE delivers: s1->s2 %.0fG, s1->s3 %.0fG, s4->s3 %.0fG\n"
    d0 d1 d2;
  Printf.printf "Total: %.0fG of %.0fG demand — %s\n"
    (d0 +. d1 +. d2)
    (Prete_util.Stats.sum demands)
    (if d0 +. d1 +. d2 >= Prete_util.Stats.sum demands -. 1e-6 then
       "no sustained packet loss"
     else "residual loss");

  (* Controller timeline for this event (§5 / Fig. 11 flavour). *)
  let (), report =
    Controller.run
      ~infer:(fun () -> ())
      ~regen:(fun () ->
        ignore (Scenario.enumerate ~probs ()))
      ~te:(fun () -> ignore (Te.solve p))
      ~n_new_tunnels:(Tunnel_update.num_new update)
      ()
  in
  Printf.printf "\nController pipeline: %.2f s end-to-end\n" report.Controller.end_to_end_s;
  List.iter
    (fun t ->
      Printf.printf "  %-22s %6.3f s\n"
        (Controller.stage_name t.Controller.stage)
        t.Controller.duration_s)
    report.Controller.timeline
