(* PreTE benchmark harness: regenerates every table and figure of the
   paper's measurement and evaluation sections (see DESIGN.md for the
   per-experiment index), plus Bechamel micro-benchmarks of the hot
   kernels.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --list       -- list experiment ids
     dune exec bench/main.exe -- --only fig13,table4
     dune exec bench/main.exe -- --quick      -- smaller grids
     dune exec bench/main.exe -- --kernels    -- micro-benchmarks only *)

open Prete
open Prete_net
open Prete_optics
open Prete_util

let quick = ref false

(* The dense-tableau oracle leg of lp_scale is opt-in: it adds minutes at
   full sizes while the revised engine is the one every production path
   uses.  CI keeps it on at the --quick sizes (see bench/dune). *)
let dense_oracle = ref false

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

(* ------------------------------------------------------------------ *)
(* Shared fixtures (lazy; computed once per run)                        *)
(* ------------------------------------------------------------------ *)

let twan_dataset =
  lazy
    (let topo = Topology.twan () in
     let model = Fiber_model.generate topo in
     (topo, model, Dataset.generate ~model ~horizon_days:365 topo))

let twan_corpus = lazy (let _, _, ds = Lazy.force twan_dataset in Prete_ml.Corpus.of_dataset ds)

let nn_epochs () = if !quick then 10 else 25

let twan_nn =
  lazy
    (let c = Lazy.force twan_corpus in
     Prete_ml.Mlp.train
       ~config:{ Prete_ml.Mlp.default_config with Prete_ml.Mlp.epochs = nn_epochs () }
       c.Prete_ml.Corpus.train)

(* Per-topology availability environment plus an NN trained on that
   topology's own synthetic telemetry (fiber-id embeddings are
   topology-specific). *)
let make_bundle topo_name =
  let topo = Topology.by_name topo_name in
  let env = Availability.make_env topo in
  let ds = Dataset.generate ~model:env.Availability.model ~horizon_days:365 topo in
  let corpus = Prete_ml.Corpus.of_dataset ds in
  let nn =
    Prete_ml.Mlp.train
      ~config:{ Prete_ml.Mlp.default_config with Prete_ml.Mlp.epochs = nn_epochs () }
      corpus.Prete_ml.Corpus.train
  in
  (env, ds, corpus, nn)

let bundle_cache : (string, Availability.env * Dataset.t * Prete_ml.Corpus.t * Prete_ml.Mlp.t) Hashtbl.t =
  Hashtbl.create 4

let bundle name =
  match Hashtbl.find_opt bundle_cache name with
  | Some b -> b
  | None ->
    let b = make_bundle name in
    Hashtbl.add bundle_cache name b;
    b

let nn_predictor nn f = Prete_ml.Mlp.predict_proba nn f

let fig13_scales () =
  if !quick then [| 1.0; 2.0; 3.5; 5.0 |] else [| 1.0; 1.5; 2.0; 2.5; 3.0; 4.0; 5.0; 6.0 |]

let fig13_schemes nn =
  [
    Schemes.Ecmp;
    Schemes.Smore;
    Schemes.Ffc 1;
    Schemes.Ffc 2;
    Schemes.Teavar;
    Schemes.Arrow;
    Schemes.Flexile;
    Schemes.prete_default ~predictor:(nn_predictor nn) ();
    Schemes.Oracle;
  ]

(* Fig. 13 curves are reused by Table 4, so cache them. *)
let fig13_cache : (string, (string * (float * float) array) list) Hashtbl.t =
  Hashtbl.create 4

let fig13_curves topo_name =
  match Hashtbl.find_opt fig13_cache topo_name with
  | Some c -> c
  | None ->
    let env, _, _, nn = bundle topo_name in
    let scales = fig13_scales () in
    let curves =
      List.map
        (fun s ->
          let t0 = Unix.gettimeofday () in
          let curve = Availability.availability_curve env s ~scales in
          Printf.printf "  [%s] %-11s computed in %.1f s\n%!" topo_name (Schemes.name s)
            (Unix.gettimeofday () -. t0);
          (Schemes.name s, curve))
        (fig13_schemes nn)
    in
    Hashtbl.add fig13_cache topo_name curves;
    curves

(* ------------------------------------------------------------------ *)
(* Measurement-section experiments                                      *)
(* ------------------------------------------------------------------ *)

let fig1a () =
  section "Fig. 1a — transmission loss of four fibers that encounter cuts";
  let topo, _, ds = Lazy.force twan_dataset in
  (* Pick four fibers with a predictable cut and synthesize the trace
     around the event. *)
  let events =
    Array.to_list ds.Dataset.degradations
    |> List.filter (fun d -> d.Dataset.led_to_cut)
    |> List.filteri (fun i _ -> i < 4)
  in
  List.iter
    (fun (d : Dataset.degradation) ->
      let baseline = Telemetry.baseline_loss topo d.Dataset.d_fiber in
      let cut_at = 60 + int_of_float d.Dataset.gap_to_cut_s in
      let tr =
        Telemetry.synthesize ~seed:d.Dataset.d_fiber ~baseline ~healthy_s:60
          ~degradation:d.Dataset.features ~cut_at_s:cut_at ~total_s:(cut_at + 120) ()
      in
      let states = Telemetry.states tr in
      let count st = Array.fold_left (fun a s -> if s = st then a + 1 else a) 0 states in
      Printf.printf
        "fiber %2d: baseline %.1f dB | healthy %ds, degraded %ds (degree %.1f dB), cut at t=%ds (loss +%.0f dB)\n"
        d.Dataset.d_fiber baseline (count Telemetry.Healthy) (count Telemetry.Degraded)
        d.Dataset.features.Hazard.degree cut_at
        (Telemetry.cut_threshold +. 8.0))
    events;
  Printf.printf "(cuts are rare: %.2f per fiber-week on average across the year)\n"
    (float_of_int (Array.length ds.Dataset.cuts)
    /. float_of_int (Topology.num_fibers topo)
    /. 52.0)

let fig1b () =
  section "Fig. 1b — CDF of IP capacity lost per fiber cut (three regions)";
  Printf.printf "%-6s %8s %8s %8s %8s %8s\n" "topo" "p10" "median" "p90" "max" ">=4Tbps";
  List.iter
    (fun topo ->
      let losses =
        Array.init (Topology.num_fibers topo) (fun f ->
            Topology.capacity_lost_on_cut topo f /. 1000.0 (* Tbps *))
      in
      Printf.printf "%-6s %7.2fT %7.2fT %7.2fT %7.2fT %7.0f%%\n" topo.Topology.name
        (Stats.percentile losses 10.0) (Stats.median losses) (Stats.percentile losses 90.0)
        (snd (Stats.min_max losses))
        (100.0 *. (1.0 -. Stats.cdf_at losses 4.0)))
    (Topology.all ())

let fig1c () =
  section "Fig. 1c — flows / tunnels affected by a single fiber cut";
  Printf.printf "%-6s %14s %14s\n" "topo" "flows affected" "tunnels affected";
  List.iter
    (fun topo ->
      let traffic = Traffic.generate topo in
      let ts = Tunnels.build topo traffic.Traffic.pairs in
      let f_fr = ref [] and t_fr = ref [] in
      for fb = 0 to Topology.num_fibers topo - 1 do
        let ff, tf = Tunnels.affected_fraction ts fb in
        f_fr := ff :: !f_fr;
        t_fr := tf :: !t_fr
      done;
      Printf.printf "%-6s %13.0f%% %13.0f%%\n" topo.Topology.name
        (100.0 *. Stats.mean (Array.of_list !f_fr))
        (100.0 *. Stats.mean (Array.of_list !t_fr)))
    (Topology.all ());
  Printf.printf "(paper, B4: 33%% of flows, 13%% of tunnels)\n"

let fig4a () =
  section "Fig. 4a — length distribution of fiber degradations";
  let _, _, ds = Lazy.force twan_dataset in
  let durations = Dataset.durations ds in
  Printf.printf "events: %d\n" (Array.length durations);
  List.iter
    (fun p ->
      Printf.printf "  p%-3.0f %8.1f s\n" p (Stats.percentile durations p))
    [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0 ];
  Printf.printf "  fraction under 10 s: %.0f%% (paper: 50%%)\n"
    (100.0 *. Stats.cdf_at durations 10.0)

let fig4b () =
  section "Fig. 4b — a degradation preceding a cut; 3-minute polling misses it";
  let topo, _, _ = Lazy.force twan_dataset in
  let rng = Rng.create 404 in
  let f = { (Hazard.sample_features rng ~topo ~fiber:1 ~epoch:0) with
            Hazard.degree = 6.0; Hazard.duration_s = 45.0 } in
  let baseline = Telemetry.baseline_loss topo 1 in
  let tr =
    Telemetry.synthesize ~baseline ~healthy_s:65 ~degradation:f ~cut_at_s:110
      ~total_s:400 ()
  in
  Printf.printf "1 Hz telemetry: healthy 0-65 s, degraded 65-110 s, cut 110-400 s\n";
  Printf.printf "degradation visible at 1 s polling:   %b\n"
    (Telemetry.degradation_visible ~granularity_s:1 tr);
  Printf.printf "degradation visible at 180 s polling: %b\n"
    (Telemetry.degradation_visible ~granularity_s:180 tr);
  Printf.printf "180 s observer sees:";
  Array.iter
    (fun (t, st) ->
      Printf.printf " t=%.0fs:%s" t
        (match st with
        | Telemetry.Healthy -> "healthy"
        | Telemetry.Degraded -> "DEGRADED"
        | Telemetry.Cut -> "CUT"))
    (Telemetry.observed_states ~granularity_s:180 tr);
  print_newline ()

let fig5a () =
  section "Fig. 5a — time from degradation to the next cut";
  let _, _, ds = Lazy.force twan_dataset in
  let gaps = Dataset.gaps_to_next_cut ds in
  List.iter
    (fun t ->
      Printf.printf "  <= %8.0f s: %5.1f%%\n" t (100.0 *. Stats.cdf_at gaps t))
    [ 10.0; 100.0; 300.0; 1000.0; 10000.0; 86400.0 ];
  Printf.printf "  beyond one day: %.1f%% (paper: ~20%%; 60%% within 1e3 s)\n"
    (100.0 *. (1.0 -. Stats.cdf_at gaps 86400.0))

let fig5b () =
  section "Fig. 5b — normalized number of fiber events";
  let _, _, ds = Lazy.force twan_dataset in
  let cuts = float_of_int (Array.length ds.Dataset.cuts) in
  let degr = float_of_int (Array.length ds.Dataset.degradations) in
  let pred = float_of_int (Dataset.num_predictable ds) in
  Printf.printf "  fiber cuts        %.2f (normalized 1.00)\n" 1.0;
  Printf.printf "  degradations      %.2f\n" (degr /. cuts);
  Printf.printf "  predictable cuts  %.2f (paper: ~0.25)\n" (pred /. cuts);
  Printf.printf "  P(cut | degradation) = %.2f (paper: ~0.40)\n"
    (Dataset.hazard_fraction ds)

let fig6 () =
  section "Fig. 6 — failure proportion vs critical features";
  let _, _, ds = Lazy.force twan_dataset in
  let binned which bins =
    let values, outcomes = Dataset.feature_outcome ds which in
    let lo, hi = Stats.min_max values in
    let pos = Array.make bins 0 and tot = Array.make bins 0 in
    Array.iteri
      (fun i v ->
        let b = Stats.equal_width_bins ~bins ~lo ~hi v in
        tot.(b) <- tot.(b) + 1;
        if outcomes.(i) then pos.(b) <- pos.(b) + 1)
      values;
    (lo, hi, pos, tot)
  in
  List.iter
    (fun (name, which, bins) ->
      let lo, hi, pos, tot = binned which bins in
      Printf.printf "%s (range %.2f .. %.2f):\n " name lo hi;
      Array.iteri
        (fun b p ->
          if tot.(b) > 0 then
            Printf.printf " %2.0f%%" (100.0 *. float_of_int p /. float_of_int tot.(b))
          else Printf.printf "   -")
        pos;
      print_newline ())
    [ ("time of day", `Time, 12); ("degree (dB)", `Degree, 7);
      ("gradient", `Gradient, 8); ("fluctuation", `Fluctuation, 8) ]

let table1 () =
  section "Table 1 — chi-square tests on critical features";
  let _, _, ds = Lazy.force twan_dataset in
  Printf.printf "%-12s %-12s %s\n" "feature" "p-value" "verdict";
  List.iter
    (fun (name, which) ->
      let values, outcomes = Dataset.feature_outcome ds which in
      let r = Hypothesis.chi2_binned ~bins:10 ~values ~outcomes in
      Printf.printf "%-12s %-12.2e %s\n" name r.Hypothesis.p_value
        (if Hypothesis.reject r then "rejected (feature matters)" else "not rejected"))
    [ ("gradient", `Gradient); ("time", `Time); ("degree", `Degree);
      ("fluctuation", `Fluctuation) ];
  Printf.printf "(paper: 1.1e-7, 1e-6, 2.2e-13, 1e-11 — all rejected at 0.01)\n"

let table3 () =
  section "Table 3 — topologies";
  Printf.printf "%-6s %7s %9s %9s %8s %15s\n" "topo" "fibers" "IP links" "tunnels" "flows" "traffic matrices";
  List.iter
    (fun topo ->
      let traffic = Traffic.generate topo in
      let ts = Tunnels.build topo traffic.Traffic.pairs in
      Printf.printf "%-6s %7d %9d %9d %8d %15d\n" topo.Topology.name
        (Topology.num_fibers topo)
        (Topology.num_links topo / 2)
        (Array.length ts.Tunnels.tunnels)
        (Array.length ts.Tunnels.flows)
        (Array.length traffic.Traffic.matrices))
    (Topology.all ())

let table6 () =
  section "Table 6/7 — epoch contingency of degradations and cuts";
  let _, _, ds = Lazy.force twan_dataset in
  let tbl = Dataset.epoch_contingency ds in
  Printf.printf "                 #degradation   #no degradation\n";
  Printf.printf "  #failure      %10.0f %16.0f\n" tbl.(0).(0) tbl.(0).(1);
  Printf.printf "  #no failure   %10.0f %16.0f\n" tbl.(1).(0) tbl.(1).(1);
  let r = Hypothesis.chi2_contingency tbl in
  Printf.printf "chi-square %.1f, log10 p = %.0f => %s (paper: p < 1e-50)\n"
    r.Hypothesis.statistic r.Hypothesis.log10_p
    (if Hypothesis.reject r then "dependence confirmed" else "independent");
  (* Table 7: expected counts under independence (null not rejected). *)
  let total = tbl.(0).(0) +. tbl.(0).(1) +. tbl.(1).(0) +. tbl.(1).(1) in
  let row0 = tbl.(0).(0) +. tbl.(0).(1) and col0 = tbl.(0).(0) +. tbl.(1).(0) in
  Printf.printf "Under independence the joint cell would hold %.1f epochs (observed %.0f)\n"
    (row0 *. col0 /. total) tbl.(0).(0)

let fig10 () =
  section "Fig. 10/§5 — testbed scenario: healthy -> degraded -> cut";
  let topo, _, _ = Lazy.force twan_dataset in
  let rng = Rng.create 42 in
  let f = { (Hazard.sample_features rng ~topo ~fiber:0 ~epoch:0) with
            Hazard.degree = 5.5; Hazard.duration_s = 45.0; Hazard.gradient = 0.08;
            Hazard.fluctuation = 6 } in
  let baseline = Telemetry.baseline_loss topo 0 in
  let tr =
    Telemetry.synthesize ~baseline ~healthy_s:65 ~degradation:f ~cut_at_s:110
      ~total_s:400 ()
  in
  let states = Telemetry.states tr in
  let first st =
    let rec go i = if i >= Array.length states then -1 else if states.(i) = st then i else go (i + 1) in
    go 0
  in
  Printf.printf "VOA-emulated event on a %.0f dB-baseline span:\n" baseline;
  Printf.printf "  degradation detected at t = %d s (ground truth 65 s)\n"
    (first Telemetry.Degraded);
  Printf.printf "  cut detected at t = %d s (ground truth 110 s)\n" (first Telemetry.Cut)

let fig11 () =
  section "Fig. 11 — controller pipeline latency (testbed)";
  let env, _, _, nn = bundle "B4" in
  let topo = env.Availability.ts.Tunnels.topo in
  let demands = Traffic.demand env.Availability.traffic ~scale:2.0 ~epoch:12 in
  let events = Array.sub env.Availability.degr_events 0 8 in
  let update = Tunnel_update.react env.Availability.ts ~degraded_fiber:3 () in
  let probs =
    Calibrate.probabilities
      (Calibrate.Calibrated (nn_predictor nn))
      env.Availability.model
      { Calibrate.degraded = [ (3, env.Availability.degr_events.(3)) ]; Calibrate.will_cut = [] }
  in
  let merged = Tunnel_update.merged update in
  let (), report =
    Controller.run
      ~infer:(fun () -> ignore (Prete_ml.Mlp.predict_batch nn events))
      ~regen:(fun () -> ignore (Scenario.enumerate ~probs ()))
      ~te:(fun () ->
        ignore
          (Te.solve ~relaxation_start:false
             (Te.make_problem ~ts:merged ~demands ~probs ~beta:0.999 ())))
      ~n_new_tunnels:(Tunnel_update.num_new update)
      ()
  in
  Printf.printf "(a) pipeline timeline for a degradation on fiber 3 of %s:\n"
    topo.Topology.name;
  List.iter
    (fun t ->
      Printf.printf "  %-24s start %7.3f s   duration %7.3f s%s\n"
        (Controller.stage_name t.Controller.stage)
        t.Controller.start_s t.Controller.duration_s
        (match t.Controller.stage with
        | Controller.Detection | Controller.Tunnel_update -> "  [testbed constant]"
        | _ -> "  [measured]"))
    report.Controller.timeline;
  Printf.printf "  end-to-end: %.2f s (software stages excl. tunnel install: %.3f s)\n"
    report.Controller.end_to_end_s
    (report.Controller.end_to_end_s
    -. Controller.tunnel_update_time (Tunnel_update.num_new update));
  Printf.printf "(b) tunnel-update time (linear model and switch simulation):\n";
  Printf.printf "  %8s %10s %12s %12s\n" "tunnels" "linear" "simulated" "batch of 12";
  let serialized =
    Switchsim.fig11b_curve env.Availability.ts ~counts:[ 1; 5; 10; 20; 50; 100 ]
  in
  let batched =
    Switchsim.fig11b_curve ~batch:12 env.Availability.ts ~counts:[ 1; 5; 10; 20; 50; 100 ]
  in
  List.iter2
    (fun (n, t1) (_, t2) ->
      Printf.printf "  %8d %8.2f s %10.2f s %10.2f s\n" n
        (Controller.tunnel_update_time n) t1 t2)
    serialized batched;
  Printf.printf "  (paper: ~5 s for 20 tunnels serialized, linear; batching is the §5 mitigation)\n"

let fig12 () =
  section "Fig. 12 — degradation/cut linearity and degradation-probability CDF";
  let _, _, ds = Lazy.force twan_dataset in
  let counts = Dataset.per_fiber_counts ds in
  let xs = Array.map (fun (d, _) -> float_of_int d) counts in
  let ys = Array.map (fun (_, c) -> float_of_int c) counts in
  let slope, intercept = Stats.linear_fit xs ys in
  Printf.printf "(a) cuts vs degradations per fiber: slope %.2f, intercept %.2f, r = %.3f\n"
    slope intercept (Stats.pearson xs ys);
  Printf.printf "    (generative slope h/alpha = 1.6)\n";
  let model = Fiber_model.generate (Topology.twan ()) in
  let pd = model.Fiber_model.p_degrade in
  Printf.printf "(b) degradation probability across fibers (Weibull shape 0.8 scale 0.002):\n";
  List.iter
    (fun p -> Printf.printf "    p%-3.0f %.5f\n" p (Stats.percentile pd p))
    [ 10.0; 50.0; 90.0; 99.0 ];
  let fitted = Dist.Weibull.fit_mle pd in
  Printf.printf "    MLE fit of the generated values: shape %.2f scale %.4f\n"
    fitted.Dist.Weibull.shape fitted.Dist.Weibull.scale

(* ------------------------------------------------------------------ *)
(* Evaluation-section experiments                                       *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  section "Fig. 13 — availability vs demand scale (all schemes, all topologies)";
  let scales = fig13_scales () in
  List.iter
    (fun topo_name ->
      let curves = fig13_curves topo_name in
      Printf.printf "\n[%s] availability %% by demand scale:\n" topo_name;
      Printf.printf "%-12s" "scheme";
      Array.iter (fun s -> Printf.printf " %8.1fx" s) scales;
      print_newline ();
      List.iter
        (fun (name, curve) ->
          Printf.printf "%-12s" name;
          Array.iter (fun (_, a) -> Printf.printf " %9.4f" (100.0 *. a)) curve;
          print_newline ())
        curves)
    [ "IBM"; "B4"; "TWAN" ]

let table4 () =
  section "Table 4 — PreTE's satisfied-demand gain on IBM";
  let curves = fig13_curves "IBM" in
  let curve name = List.assoc name curves in
  let prete = curve "PreTE" in
  Printf.printf "%-14s" "availability";
  List.iter (fun n -> Printf.printf " %9s" n) [ "Flexile"; "FFC-1"; "FFC-2"; "TeaVar"; "ARROW" ];
  print_newline ();
  List.iter
    (fun target ->
      Printf.printf "%-14s" (Printf.sprintf "%.2f%%" (100.0 *. target));
      let prete_scale = Availability.max_scale_at prete ~target in
      List.iter
        (fun name ->
          let s = Availability.max_scale_at (curve name) ~target in
          if s <= 0.0 || prete_scale <= 0.0 then Printf.printf " %9s" "NA"
          else Printf.printf " %8.1fx" (prete_scale /. s))
        [ "Flexile"; "FFC-1"; "FFC-2"; "TeaVar"; "ARROW" ];
      Printf.printf "   (PreTE sustains %.1fx)\n" prete_scale)
    [ 0.9995; 0.999; 0.995; 0.99 ];
  Printf.printf "(paper, 99%%: Flexile 1.5x  FFC-1 3.4x  FFC-2 2.4x  TeaVar 2.4x  ARROW 2.8x)\n"

let table5 () =
  section "Table 5 — failure-prediction accuracy";
  let _, model, _ = Lazy.force twan_dataset in
  let corpus = Lazy.force twan_corpus in
  let eval name predict =
    let c = Prete_ml.Metrics.evaluate ~predict corpus.Prete_ml.Corpus.test in
    Printf.printf "%-10s P %.2f   R %.2f\n" name (Prete_ml.Metrics.precision c)
      (Prete_ml.Metrics.recall c)
  in
  let naive = Prete_ml.Baselines.naive_train model in
  eval "TeaVar" (Prete_ml.Baselines.naive_label naive);
  let st = Prete_ml.Baselines.statistic_train (Lazy.force twan_corpus).Prete_ml.Corpus.train in
  eval "Statistic" (Prete_ml.Baselines.statistic_label st);
  let dt = Prete_ml.Dtree.train (Lazy.force twan_corpus).Prete_ml.Corpus.train in
  eval "DT" (Prete_ml.Dtree.predict_label dt);
  eval "NN (ours)" (Prete_ml.Mlp.predict_label (Lazy.force twan_nn));
  Printf.printf "(paper: TeaVar ~0/~0, Statistic .45/.37, DT .68/.53, NN .81/.81)\n"

let fig14 () =
  section "Fig. 14 — prediction-error distribution (|p_hat - p*|)";
  let _, model, _ = Lazy.force twan_dataset in
  let corpus = Lazy.force twan_corpus in
  let nn = Lazy.force twan_nn in
  let actual =
    Array.map (fun (e : Prete_ml.Corpus.example) -> e.Prete_ml.Corpus.true_hazard)
      corpus.Prete_ml.Corpus.test
  in
  let report name predicted =
    let errs = Array.mapi (fun i p -> Float.abs (p -. actual.(i))) predicted in
    Printf.printf "%-8s mean %.3f   median %.3f   p90 %.3f\n" name (Stats.mean errs)
      (Stats.median errs) (Stats.percentile errs 90.0)
  in
  report "PreTE"
    (Array.map
       (fun (e : Prete_ml.Corpus.example) ->
         Prete_ml.Mlp.predict_proba nn e.Prete_ml.Corpus.features)
       corpus.Prete_ml.Corpus.test);
  let naive = Prete_ml.Baselines.naive_train model in
  report "TeaVar"
    (Array.map
       (fun (e : Prete_ml.Corpus.example) ->
         Prete_ml.Baselines.naive_proba naive e.Prete_ml.Corpus.features)
       corpus.Prete_ml.Corpus.test)

let fig15 () =
  section "Fig. 15 — impact of the prediction model on availability (IBM)";
  let env, _, _, nn = bundle "IBM" in
  let topo = env.Availability.ts.Tunnels.topo in
  let nf = Topology.num_fibers topo in
  let scales = if !quick then [| 1.0; 2.5; 4.0 |] else [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let static_prob = Stats.mean env.Availability.model.Fiber_model.p_cut in
  let variants =
    [
      ("TeaVar-pred", Schemes.prete_naive ~predictor:(fun _ -> static_prob) ());
      ("Statistic", Schemes.prete_default ~predictor:(fun _ -> env.Availability.model.Fiber_model.mean_hazard) ());
      ("PreTE (NN)", Schemes.prete_default ~predictor:(nn_predictor nn) ());
      ("Oracle-pred", Schemes.prete_default ~predictor:(Hazard.eval ~num_fibers:nf) ());
    ]
  in
  Printf.printf "%-12s" "model";
  Array.iter (fun s -> Printf.printf " %8.1fx" s) scales;
  print_newline ();
  List.iter
    (fun (name, scheme) ->
      Printf.printf "%-12s" name;
      Array.iter
        (fun scale ->
          let a = Availability.availability env scheme ~scale in
          Printf.printf " %9.4f" (100.0 *. a))
        scales;
      Printf.printf "\n%!")
    variants;
  Printf.printf "(availability in %%; paper: oracle > NN > statistic > TeaVar's static model)\n"

let fig16a () =
  section "Fig. 16a — impact of the new-tunnel ratio on availability (IBM)";
  let env, _, _, nn = bundle "IBM" in
  let scale = 3.0 in
  List.iter
    (fun ratio ->
      let scheme =
        if ratio <= 0.0 then Schemes.prete_naive ~predictor:(nn_predictor nn) ()
        else
          Schemes.Prete
            { Schemes.predictor = nn_predictor nn; Schemes.ratio; Schemes.update_tunnels = true }
      in
      let a = Availability.availability env scheme ~scale in
      Printf.printf "  ratio %.1f (%s): availability %.4f%% (%.2f nines)\n%!" ratio
        (if ratio <= 0.0 then "PreTE-naive" else "PreTE")
        (100.0 *. a) (Availability.nines a))
    [ 0.0; 0.5; 1.0; 2.0; 3.0 ];
  Printf.printf "(paper: PreTE-naive ~2 nines; ratio >= 1 lifts past 3 nines, then flattens)\n"

let fig16b () =
  section "Fig. 16b — impact of the new-tunnel ratio on TE runtime";
  let env, _, _, nn = bundle "B4" in
  let demands = Traffic.demand env.Availability.traffic ~scale:3.0 ~epoch:12 in
  List.iter
    (fun ratio ->
      let t0 = Unix.gettimeofday () in
      let update =
        if ratio > 0.0 then Some (Tunnel_update.react ~ratio env.Availability.ts ~degraded_fiber:3 ())
        else None
      in
      let ts =
        match update with Some u -> Tunnel_update.merged u | None -> env.Availability.ts
      in
      let probs =
        Calibrate.probabilities
          (Calibrate.Calibrated (nn_predictor nn))
          env.Availability.model
          { Calibrate.degraded = [ (3, env.Availability.degr_events.(3)) ];
            Calibrate.will_cut = [] }
      in
      let p = Te.make_problem ~ts ~demands ~probs ~beta:env.Availability.beta () in
      ignore (Te.solve ~relaxation_start:false p);
      let compute_s = Unix.gettimeofday () -. t0 in
      let n_new = match update with Some u -> Tunnel_update.num_new u | None -> 0 in
      let install_s = Controller.tunnel_update_time n_new in
      Printf.printf
        "  ratio %.1f: %3d new tunnels, optimization %.2f s + serialized install %.2f s = %.2f s\n%!"
        ratio n_new compute_s install_s (compute_s +. install_s))
    [ 0.0; 1.0; 2.0; 5.0 ];
  Printf.printf "(paper: <1 s with no updates, seconds at ratio 1, tens of seconds at ratio 5)\n"

let fig17 () =
  section "Fig. 17 — workload vs capacity uncertainty (B4)";
  let env, _, _, nn = bundle "B4" in
  let scales = [| 1.0; 2.7 |] in
  let pts = Uncertainty.fig17 env ~predictor:(nn_predictor nn) ~scales in
  Printf.printf "%-10s %6s  %s\n" "scheme" "scale" "availability";
  List.iter
    (fun (p : Uncertainty.fig17_point) ->
      Printf.printf "%-10s %5.1fx  %.4f%% (%.2f nines)\n"
        (p.Uncertainty.scheme ^ if p.Uncertainty.demand_prediction then "*" else "")
        p.Uncertainty.scale
        (100.0 *. p.Uncertainty.availability)
        (Availability.nines p.Uncertainty.availability))
    pts;
  Printf.printf "(paper: at scale 2.7 failure prediction gains far more than demand prediction)\n"

let fig18 () =
  section "Fig. 18 — production case (see examples/production_case.exe for the narrative)";
  (* Condensed: the numbers that matter. *)
  let fibers = [| (0, 1, 600.0); (1, 2, 700.0); (0, 2, 1200.0); (0, 3, 900.0); (3, 2, 950.0) |] in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 1000.0, [ f ]); (b, a, 1000.0, [ f ]) ])
         [ (0, (0, 1)); (1, (1, 2)); (2, (0, 2)); (3, (0, 3)); (4, (3, 2)) ])
  in
  let topo = Topology.make ~name:"fig18" ~node_names:[| "s1"; "s2"; "s3"; "s4" |] ~fibers ~links in
  let ts = Tunnels.build ~per_flow:2 topo [ (0, 1); (0, 2); (3, 2) ] in
  let demands = [| 700.0; 600.0; 300.0 |] in
  Printf.printf "traditional backup s1-s2-s3: link s1-s2 loaded to %.0fG/1000G -> %.0fG sustained loss\n"
    (demands.(0) +. demands.(1))
    (Float.max 0.0 (demands.(0) +. demands.(1) -. 1000.0));
  let update = Tunnel_update.react ts ~degraded_fiber:2 () in
  let merged = Tunnel_update.merged update in
  let p = Te.make_problem ~ts:merged ~demands ~probs:[| 0.001; 0.001; 0.4; 0.001; 0.001 |] ~beta:0.99 () in
  let sol = Te.solve p in
  let delivered flow =
    Float.min demands.(flow)
      (List.fold_left
         (fun acc tid ->
           let tn = merged.Tunnels.tunnels.(tid) in
           if Routing.uses_fiber topo tn.Tunnels.links 2 then acc else acc +. sol.Te.alloc.(tid))
         0.0 merged.Tunnels.of_flow.(flow))
  in
  Printf.printf "PreTE after the s1-s3 cut: delivers %.0f + %.0f + %.0f = %.0fG of %.0fG (no loss)\n"
    (delivered 0) (delivered 1) (delivered 2)
    (delivered 0 +. delivered 1 +. delivered 2)
    (Stats.sum demands)

let fig19 () =
  section "Fig. 19 — tunnel traffic variation by uncertainty type (B4)";
  let env, _, _, _ = bundle "B4" in
  let w = Uncertainty.workload_variation env ~scale:1.5 ~jitter:0.05 in
  let c = Uncertainty.capacity_variation env ~scale:1.5 in
  Printf.printf "%-28s %10s %10s\n" "source" "affected" "unaffected";
  Printf.printf "%-28s %9.3f %10.3f   (mean |delta|/demand)\n" "workload uncertainty"
    w.Uncertainty.affected_mean w.Uncertainty.unaffected_mean;
  Printf.printf "%-28s %9.3f %10.3f\n" "capacity uncertainty"
    c.Uncertainty.affected_mean c.Uncertainty.unaffected_mean;
  Printf.printf "%-28s %9.3f %10.3f   (p95)\n" "capacity uncertainty (p95)"
    c.Uncertainty.affected_p95 c.Uncertainty.unaffected_p95;
  Printf.printf "(paper: capacity uncertainty dominates for affected flows)\n"

let fig20a () =
  section "Fig. 20a — predictable cuts vs telemetry granularity";
  let _, _, ds = Lazy.force twan_dataset in
  Printf.printf "%10s %10s %11s\n" "polling" "coverage" "occurrence";
  List.iter
    (fun g ->
      let cov, occ = Telemetry.coverage_occurrence ~granularity_s:g ds in
      Printf.printf "%8d s %9.1f%% %10.1f%%\n" g (100.0 *. cov) (100.0 *. occ))
    [ 1; 5; 10; 30; 60; 180; 300 ];
  Printf.printf "(paper: 25%% coverage at 1 s falling to 2%% at 5 min)\n"

let fig20b () =
  section "Fig. 20b — impact of the predictable-cut share alpha (IBM)";
  let base_env, _, _, nn = bundle "IBM" in
  let topo = base_env.Availability.ts.Tunnels.topo in
  let scales = if !quick then [| 2.0; 4.0 |] else [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Printf.printf "%-10s" "alpha";
  Array.iter (fun s -> Printf.printf " %8.1fx" s) scales;
  print_newline ();
  List.iter
    (fun alpha ->
      let model = Fiber_model.generate ~alpha topo in
      let env =
        Availability.make_env ~model ~traffic:base_env.Availability.traffic
          ~tunnels:base_env.Availability.ts topo
      in
      Printf.printf "%-10s" (Printf.sprintf "%.0f%%" (100.0 *. alpha));
      Array.iter
        (fun scale ->
          let a =
            Availability.availability env
              (Schemes.prete_default ~predictor:(nn_predictor nn) ())
              ~scale
          in
          Printf.printf " %9.4f" (100.0 *. a))
        scales;
      Printf.printf "\n%!")
    [ 0.0; 0.25; 0.5; 1.0 ];
  Printf.printf "(availability in %%; paper: alpha = 1 keeps 3 nines even at 6x demand)\n"

let table8 () =
  section "Table 8 — NN feature ablation";
  let corpus = Lazy.force twan_corpus in
  let cfg = { Prete_ml.Mlp.default_config with Prete_ml.Mlp.epochs = nn_epochs () } in
  let eval name ablate =
    let nn = Prete_ml.Mlp.train ~config:cfg ?ablate corpus.Prete_ml.Corpus.train in
    let c =
      Prete_ml.Metrics.evaluate ~predict:(Prete_ml.Mlp.predict_label nn)
        corpus.Prete_ml.Corpus.test
    in
    Printf.printf "%-20s P %.2f   R %.2f   F1 %.2f   Acc %.2f\n%!" name
      (Prete_ml.Metrics.precision c) (Prete_ml.Metrics.recall c) (Prete_ml.Metrics.f1 c)
      (Prete_ml.Metrics.accuracy c)
  in
  List.iter
    (fun feat ->
      eval ("NN w/o " ^ Prete_ml.Mlp.feature_name feat) (Some feat))
    Prete_ml.Mlp.all_features;
  eval "NN-all" None;
  Printf.printf "(paper: NN-all best at 0.81; w/o fiber ID worst at F1 0.68)\n"

(* ------------------------------------------------------------------ *)
(* Ablations of our own design choices (DESIGN.md §4)                   *)
(* ------------------------------------------------------------------ *)

let mc_check () =
  section "Cross-check — Monte-Carlo simulator vs analytic availability (B4)";
  let env, _, _, nn = bundle "B4" in
  let scale = 3.0 in
  List.iter
    (fun scheme ->
      let a = Availability.availability env scheme ~scale in
      let r = Simulate.run ~epochs:(if !quick then 10_000 else 40_000) env scheme ~scale in
      Printf.printf
        "  %-12s analytic %.5f   MC %.5f   (%d cut epochs, %d multi-cut truncated analytically)\n%!"
        (Schemes.name scheme) a r.Simulate.availability r.Simulate.cut_epochs
        r.Simulate.multi_cut_epochs)
    [ Schemes.Ecmp; Schemes.Teavar; Schemes.Flexile;
      Schemes.prete_default ~predictor:(nn_predictor nn) () ]

let ablate_cutoff () =
  section "Ablation — scenario cutoff / order";
  let env, _, _, _ = bundle "B4" in
  let demands = Traffic.demand env.Availability.traffic ~scale:3.0 ~epoch:12 in
  let probs = env.Availability.model.Fiber_model.p_cut in
  List.iter
    (fun (label, max_order, cutoff) ->
      let t0 = Unix.gettimeofday () in
      let p =
        Te.make_problem ~ts:env.Availability.ts ~demands ~probs ~max_order ~cutoff
          ~beta:0.999 ()
      in
      let sol = Te.solve ~relaxation_start:false p in
      Printf.printf
        "  %-28s %4d scenarios  phi %.4f  served %.4f  %2d LPs %6d pivots  %.2f s\n%!"
        label
        (Array.length p.Te.scenarios.Scenario.scenarios)
        sol.Te.phi sol.Te.expected_served sol.Te.stats.Te.lp_solves
        sol.Te.stats.Te.lp_pivots
        (Unix.gettimeofday () -. t0))
    [
      ("single cuts", 1, 0.0);
      ("single cuts, cutoff 1e-3", 1, 1e-3);
      ("double cuts", 2, 0.0);
      ("double cuts, cutoff 1e-5", 2, 1e-5);
    ]

let ablate_mip () =
  section "Ablation — MIP strategy: heuristic vs Benders vs branch-and-bound";
  let fibers = [| (0, 1, 100.0); (0, 2, 100.0); (1, 2, 100.0) |] in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (0, 2)); (2, (1, 2)) ])
  in
  let topo = Topology.make ~name:"fig2" ~node_names:[| "s1"; "s2"; "s3" |] ~fibers ~links in
  let ts = Tunnels.build ~per_flow:2 topo [ (0, 1); (0, 2) ] in
  Printf.printf "small instance (the paper's Fig. 2 network):\n";
  List.iter
    (fun (d1, d2) ->
      let p =
        Te.make_problem ~ts ~demands:[| d1; d2 |] ~probs:[| 0.02; 0.03; 0.01 |] ~beta:0.9 ()
      in
      let time f = let t0 = Unix.gettimeofday () in let r = f () in (r, Unix.gettimeofday () -. t0) in
      let h, th = time (fun () -> (Te.solve ~second_phase:false p).Te.phi) in
      let b, tb = time (fun () -> (Te.solve_benders p).Te.phi) in
      let e, te_ = time (fun () -> (Te.solve_mip p).Te.phi) in
      Printf.printf
        "  demands (%4.1f, %4.1f): heuristic %.4f (%.3fs)  benders %.4f (%.3fs)  b&b %.4f (%.3fs)\n%!"
        d1 d2 h th b tb e te_)
    [ (10.0, 10.0); (15.0, 15.0); (12.0, 18.0) ];
  Printf.printf "\nB4 instance (heuristic vs Benders):\n";
  let env, _, _, _ = bundle "B4" in
  let demands = Traffic.demand env.Availability.traffic ~scale:4.0 ~epoch:12 in
  let p =
    Te.make_problem ~ts:env.Availability.ts ~demands
      ~probs:env.Availability.model.Fiber_model.p_cut ~beta:0.999 ()
  in
  let t0 = Unix.gettimeofday () in
  let h = Te.solve ~second_phase:false p in
  let th = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let b = Te.solve_benders ~max_iters:10 p in
  let tb = Unix.gettimeofday () -. t0 in
  Printf.printf "  heuristic phi %.4f (%.2f s, %d LPs)  benders phi %.4f (%.2f s, %d LPs, %d nodes)\n"
    h.Te.phi th h.Te.stats.Te.lp_solves b.Te.phi tb b.Te.stats.Te.lp_solves
    b.Te.stats.Te.mip_nodes


(* ------------------------------------------------------------------ *)
(* Warm-start ablation + BENCH_PR2.json evidence                        *)
(* ------------------------------------------------------------------ *)

(* Experiment-specific JSON fragments picked up by the driver when it
   writes BENCH_PR2.json.  "null" until the experiment has run. *)
let warmstart_json = ref "null"
let chaos_cache_json = ref "null"

let warmstart () =
  section "Warm-start ablation — cold vs warm simplex pivots (ablate_mip instances)";
  let fibers = [| (0, 1, 100.0); (0, 2, 100.0); (1, 2, 100.0) |] in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (0, 2)); (2, (1, 2)) ])
  in
  let topo = Topology.make ~name:"fig2" ~node_names:[| "s1"; "s2"; "s3" |] ~fibers ~links in
  let ts = Tunnels.build ~per_flow:2 topo [ (0, 1); (0, 2) ] in
  let demand_pairs = [ (10.0, 10.0); (15.0, 15.0); (12.0, 18.0) ] in
  let problem (d1, d2) =
    Te.make_problem ~ts ~demands:[| d1; d2 |] ~probs:[| 0.02; 0.03; 0.01 |] ~beta:0.9 ()
  in
  let open Prete_lp in
  (* Cold: every LP from scratch.  Warm: bases threaded across δ-fixpoint
     rounds / Benders iterations within a call, and across the successive
     instances (the controller-epoch pattern: each solve seeds the next). *)
  let entries = ref [] in
  let tot_cold = ref 0 and tot_warm = ref 0 in
  let run_strategy name solve_cold solve_warm =
    let carry = ref None in
    List.iter
      (fun pair ->
        let p = problem pair in
        let cold = solve_cold p in
        let warm = solve_warm ?warm:!carry p in
        carry := warm.Te.basis;
        let cst = cold.Te.solver and wst = warm.Te.solver in
        tot_cold := !tot_cold + cst.Solver_stats.pivots;
        tot_warm := !tot_warm + wst.Solver_stats.pivots;
        let dphi = Float.abs (cold.Te.phi -. warm.Te.phi) in
        if dphi > 1e-6 then
          Printf.printf "  WARNING: %s phi mismatch %.2e on (%g, %g)\n" name dphi
            (fst pair) (snd pair);
        Printf.printf
          "  %-9s demands (%4.1f, %4.1f): phi %.4f  cold %4d pivots  warm %4d pivots  \
           (p1 skips %d, repairs %d)\n%!"
          name (fst pair) (snd pair) warm.Te.phi cst.Solver_stats.pivots
          wst.Solver_stats.pivots wst.Solver_stats.phase1_skips
          wst.Solver_stats.repairs;
        entries :=
          Printf.sprintf
            "{\"strategy\": \"%s\", \"demands\": [%g, %g], \"phi_cold\": %.6f, \
             \"phi_warm\": %.6f, \"phi_delta\": %.3e, \"cold\": %s, \"warm\": %s}"
            name (fst pair) (snd pair) cold.Te.phi warm.Te.phi dphi
            (Solver_stats.to_json cst) (Solver_stats.to_json wst)
          :: !entries)
      demand_pairs
  in
  run_strategy "fixpoint"
    (fun p -> Te.solve ~second_phase:false ~relaxation_start:false ~warm_start:false p)
    (fun ?warm p -> Te.solve ~second_phase:false ~relaxation_start:false ?warm p);
  run_strategy "benders"
    (fun p -> Te.solve_benders ~warm_start:false p)
    (fun ?warm p -> Te.solve_benders ?warm p);
  run_strategy "mip"
    (fun p -> Te.solve_mip ~warm_start:false p)
    (fun ?warm p -> Te.solve_mip ?warm p);
  let ratio = float_of_int !tot_cold /. float_of_int (max 1 !tot_warm) in
  Printf.printf "  total: cold %d pivots, warm %d pivots — %.2fx fewer warm\n%!"
    !tot_cold !tot_warm ratio;
  warmstart_json :=
    Printf.sprintf
      "{\"instances\": [%s], \"total_cold_pivots\": %d, \"total_warm_pivots\": %d, \
       \"pivot_ratio\": %.3f}"
      (String.concat ", " (List.rev !entries))
      !tot_cold !tot_warm ratio;
  (* Plan-cache hit rate: replay chaos epochs (no faults) through the
     controller's structural plan cache. *)
  let env, _, _, nn = bundle "B4" in
  let scheme = Schemes.prete_default ~predictor:(nn_predictor nn) () in
  let r = Simulate.run_chaos ~epochs:(if !quick then 20 else 60) env scheme ~scale:2.0 in
  let hit_rate =
    let tot = r.Simulate.c_cache_hits + r.Simulate.c_cache_misses in
    if tot = 0 then 0.0 else float_of_int r.Simulate.c_cache_hits /. float_of_int tot
  in
  Printf.printf "  plan cache over %d chaos epochs: %d hits / %d misses (%.1f%%)\n%!"
    r.Simulate.c_epochs r.Simulate.c_cache_hits r.Simulate.c_cache_misses
    (100.0 *. hit_rate);
  chaos_cache_json :=
    Printf.sprintf
      "{\"epochs\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \
       \"hit_rate\": %.4f}"
      r.Simulate.c_epochs r.Simulate.c_cache_hits r.Simulate.c_cache_misses hit_rate

let fallback () =
  section "Fallback-path latency (Resilience ladder rungs, B4)";
  let env, _, _, nn = bundle "B4" in
  let ts = env.Availability.ts in
  let demands = Traffic.demand env.Availability.traffic ~scale:2.0 ~epoch:12 in
  let scheme = Schemes.prete_default ~predictor:(nn_predictor nn) () in
  let primary ?deadline ~warm () =
    Availability.Internal.plan_alloc_warm ?deadline ?warm env scheme ~demands
      ~degraded:None
  in
  let time ?(reps = 1) label f =
    let _, d = Controller.wall (fun () -> for _ = 1 to reps do f () done) in
    Printf.printf "  %-32s %10.3f ms\n%!" label (1000.0 *. d /. float_of_int reps)
  in
  let ladder = Resilience.create () in
  (* Rung 1: full primary solve (also warms the last-good cache). *)
  time "primary solve" (fun () ->
      ignore (Resilience.plan_epoch ladder ~ts ~demands ~primary:(primary ?deadline:None) ()));
  (* Same solve handed the ladder's retained basis (rung 0). *)
  time "primary solve, warm basis" (fun () ->
      ignore (Resilience.plan_epoch ladder ~ts ~demands ~primary:(primary ?deadline:None) ()));
  (* Anytime degraded incumbent under a 50 ms budget. *)
  time "primary, 50 ms budget" (fun () ->
      ignore
        (Resilience.plan_epoch ladder ~ts ~demands
           ~primary:(fun ~warm () ->
             primary ~deadline:(Prete_util.Clock.deadline_after 0.05) ~warm ())
           ()));
  (* Rung 2: primary times out instantly, last-good plan is revalidated. *)
  time ~reps:100 "cached fallback" (fun () ->
      ignore
        (Resilience.plan_epoch ladder ~ts ~demands
           ~primary:(fun ~warm:_ () -> raise Prete_lp.Simplex.Timeout)
           ()));
  (* Rung 3: cold ladder, straight to the equal split. *)
  time ~reps:100 "equal-split fallback (cold)" (fun () ->
      let cold = Resilience.create () in
      ignore
        (Resilience.plan_epoch cold ~ts ~demands
           ~primary:(fun ~warm:_ () -> raise Prete_lp.Simplex.Timeout)
           ()))

(* ------------------------------------------------------------------ *)
(* Parallel execution: pool scaling + determinism evidence              *)
(* ------------------------------------------------------------------ *)

let parallel_json = ref "null"

let parallel () =
  section "Parallel — domain-pool scaling for simulate / availability / Benders (B4)";
  let env, _, _, nn = bundle "B4" in
  let scheme = Schemes.prete_default ~predictor:(nn_predictor nn) () in
  let epochs = if !quick then 2_000 else 6_000 in
  let demands = Traffic.demand env.Availability.traffic ~scale:4.0 ~epoch:12 in
  let bp =
    Te.make_problem ~ts:env.Availability.ts ~demands
      ~probs:env.Availability.model.Fiber_model.p_cut ~beta:0.999 ()
  in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf "  host reports %d usable core(s)\n%!" host_cores;
  let runs = ref [] in
  let results = ref [] in
  List.iter
    (fun domains ->
      let pool = Prete_exec.Pool.create ~domains () in
      let time f = let r, w = Controller.wall f in (r, w) in
      let sim, sim_w = time (fun () -> Simulate.run ~epochs ~pool env scheme ~scale:2.0) in
      let avail, avail_w =
        time (fun () -> Availability.availability ~pool env scheme ~scale:3.0)
      in
      let bsol, benders_w =
        time (fun () -> Te.solve_benders ~max_iters:10 ~pool bp)
      in
      let stats = Prete_exec.Pool.stats pool in
      Prete_exec.Pool.shutdown pool;
      Printf.printf
        "  domains %d: simulate %6.2f s   availability %6.2f s   benders %6.2f s   \
         (%d tasks, %d steals)\n%!"
        domains sim_w avail_w benders_w stats.Prete_exec.Pool_stats.tasks
        stats.Prete_exec.Pool_stats.steals;
      results := (sim.Simulate.availability, avail, bsol.Te.phi) :: !results;
      runs :=
        Printf.sprintf
          "{\"domains\": %d, \"simulate_wall_s\": %.3f, \"availability_wall_s\": %.3f, \
           \"benders_wall_s\": %.3f, \"simulate_mc\": %.9f, \"availability\": %.9f, \
           \"benders_phi\": %.9f, \"pool\": %s}"
          domains sim_w avail_w benders_w sim.Simulate.availability avail bsol.Te.phi
          (Prete_exec.Pool_stats.to_json stats)
        :: !runs)
    [ 1; 2; 4 ];
  (* Determinism evidence: the three result triples must be bit-identical
     across domain counts. *)
  let identical =
    match !results with
    | [] -> true
    | r0 :: rest -> List.for_all (fun r -> r = r0) rest
  in
  Printf.printf "  results bit-identical across domain counts: %b\n%!" identical;
  parallel_json :=
    Printf.sprintf
      "{\"host_cores\": %d, \"epochs\": %d, \"bit_identical\": %b, \"runs\": [%s]}"
      host_cores epochs identical
      (String.concat ", " (List.rev !runs))

(* ------------------------------------------------------------------ *)
(* lp_scale: dense tableau vs sparse revised simplex on scaled TE LPs   *)
(* ------------------------------------------------------------------ *)

let lp_scale_json = ref "null"

(* A size-s instance: s flows spread over a k x k grid (one fiber per
   undirected edge), s scenarios (the no-failure state plus single cuts
   of the first s-1 fibers). *)
let lp_scale_instance ~k ~size =
  let topo = Topology.grid k in
  let n = k * k in
  let pairs =
    List.init size (fun i ->
        let src = i * 13 mod n in
        let dst = (src + 1 + (i * 29 mod (n - 1))) mod n in
        (src, dst))
  in
  let ts = Tunnels.build ~per_flow:3 topo pairs in
  (* Heavy enough that capacity binds and phi ends up strictly positive:
     the engine cross-check then compares a non-trivial optimum. *)
  let demands = Array.init size (fun f -> 12.0 +. (3.0 *. float_of_int (f mod 7))) in
  let cuts = Array.init size (fun q -> if q = 0 then None else Some (q - 1)) in
  (topo, ts, demands, cuts)

(* The fixed-delta TE LP with every scenario covered, built directly so
   both engines see the {e same} model: min phi s.t. capacity rows and,
   per (flow, scenario), surviving_alloc + d*phi >= d.  [cap_scale]
   scales link capacities only — an rhs-only perturbation, which is the
   warm-start case the revised engine must answer without a Phase-1
   restart. *)
let lp_scale_model ~cap_scale (topo, ts, demands, cuts) =
  let open Prete_lp in
  let m = Lp.create () in
  let nt = Array.length ts.Tunnels.tunnels in
  let a = Array.init nt (fun t -> Lp.add_var m (Printf.sprintf "a%d" t)) in
  let phi = Lp.add_var m ~ub:1.0 "phi" in
  List.iter
    (fun (lid, terms) ->
      let terms = List.map (fun (tid, c) -> (c, a.(tid))) terms in
      ignore
        (Lp.add_constraint m terms Lp.Le
           (cap_scale *. (Topology.link topo lid).Topology.capacity)))
    (Te.capacity_terms ts);
  let survives tid cut =
    match cut with
    | None -> true
    | Some fb ->
      not (Routing.uses_fiber topo ts.Tunnels.tunnels.(tid).Tunnels.links fb)
  in
  Array.iteri
    (fun f _ ->
      let d = demands.(f) in
      Array.iter
        (fun cut ->
          let terms =
            List.filter_map
              (fun tid -> if survives tid cut then Some (1.0, a.(tid)) else None)
              ts.Tunnels.of_flow.(f)
          in
          ignore (Lp.add_constraint m ((d, phi) :: terms) Lp.Ge d))
        cuts)
    ts.Tunnels.flows;
  Lp.set_objective m Lp.Minimize [ (1.0, phi) ];
  m

let lp_scale () =
  section "LP engine scaling — LU vs eta-file revised vs dense tableau";
  let open Prete_lp in
  let sizes =
    if !quick then [ (8, 3); (16, 4) ]
    else [ (8, 3); (16, 4); (32, 5); (64, 7); (128, 10); (256, 14) ]
  in
  (* Affordability caps: the dense oracle is O(rows^2 * cols) per pivot
     and opt-in; the eta engine's file grows per pivot, so past 128 it
     costs minutes while adding nothing.  The largest instances run the
     LU engine only, each engine's scaling exponent is fitted over its
     own points, and the cross-engine gates use the largest instance the
     LU and eta engines share. *)
  let dense_cap = 32 and eta_cap = 128 in
  let fail fmt = Printf.ksprintf (fun s -> Printf.printf "  FAIL: %s\n%!" s; exit 1) fmt in
  (* The timing window is strictly the [Simplex.solve] call — models are
     built and stats recorded outside it, so warm-vs-cold speedups stay
     honest at sizes where instance construction alone costs seconds. *)
  let solve ?warm engine pricing m =
    let st = Solver_stats.create () in
    let t0 = Unix.gettimeofday () in
    match Simplex.solve ?warm ~engine ~pricing m with
    | Simplex.Optimal sol ->
      let w = Unix.gettimeofday () -. t0 in
      Solver_stats.record st sol;
      Solver_stats.add_wall st "solve" w;
      (sol, st, w)
    | Simplex.Infeasible | Simplex.Unbounded -> fail "LP not optimal"
  in
  let entries = ref [] in
  let pts_lu = ref [] and pts_eta = ref [] and pts_dense = ref [] in
  let shared = ref None in
  List.iter
    (fun (size, k) ->
      let inst = lp_scale_instance ~k ~size in
      let model = lp_scale_model ~cap_scale:1.0 inst in
      let rows = Array.length (Lp.Internal.constraints model) in
      let sol_l, st_l, w_l = solve Simplex.Lu Simplex.Dantzig model in
      let eta =
        if size <= eta_cap then
          Some (solve Simplex.Revised Simplex.Dantzig model)
        else None
      in
      let dense =
        if !dense_oracle && size <= dense_cap then
          Some (solve Simplex.Dense Simplex.Dantzig model)
        else None
      in
      let dphi_eta =
        match eta with
        | Some (s, _, _) -> Float.abs (s.Simplex.objective -. sol_l.Simplex.objective)
        | None -> 0.0
      in
      if dphi_eta > 1e-9 then
        fail "LU/eta objective mismatch %.3e at size %d" dphi_eta size;
      let dphi_dense =
        match dense with
        | Some (s, _, _) -> Float.abs (s.Simplex.objective -. sol_l.Simplex.objective)
        | None -> 0.0
      in
      if dphi_dense > 1e-9 then
        fail "LU/dense objective mismatch %.3e at size %d" dphi_dense size;
      (* Warm re-solve of the rhs-only perturbation under the LU engine,
         against its own cold baseline. *)
      let model' = lp_scale_model ~cap_scale:0.95 inst in
      let sol_c, _, _ = solve Simplex.Lu Simplex.Dantzig model' in
      let sol_w, st_w, w_w =
        solve ~warm:sol_l.Simplex.basis Simplex.Lu Simplex.Dantzig model'
      in
      let dwarm = Float.abs (sol_w.Simplex.objective -. sol_c.Simplex.objective) in
      if dwarm > 1e-9 then
        fail "warm/cold objective mismatch %.3e at size %d" dwarm size;
      if st_w.Solver_stats.phase1_skips < 1 then
        fail "warm rhs-only re-solve restarted Phase 1 at size %d" size;
      if st_w.Solver_stats.refactorizations < 1 then
        fail "warm re-solve never refactorized at size %d" size;
      let eta_col =
        match eta with
        | Some (_, st_e, w_e) ->
          Printf.sprintf "eta %8.3f s / %5d pivots" w_e st_e.Solver_stats.pivots
        | None -> Printf.sprintf "eta   (capped at %d)" eta_cap
      in
      let dense_col =
        match dense with
        | Some (_, st_d, w_d) ->
          Printf.sprintf "dense %8.3f s / %5d pivots" w_d st_d.Solver_stats.pivots
        | None when not !dense_oracle -> "dense (off; --dense-oracle)"
        | None -> Printf.sprintf "dense (capped at %d)" dense_cap
      in
      Printf.printf
        "  %3dx%-3d (%5d rows): lu %8.3f s / %5d pivots (%d factors, %d ft, \
         %d flips, fill %d)   %s   %s   warm %8.3f s / %4d pivots   phi %.6f\n%!"
        size size rows w_l st_l.Solver_stats.pivots
        st_l.Solver_stats.refactorizations st_l.Solver_stats.ft_updates
        st_l.Solver_stats.bound_flips st_l.Solver_stats.lu_fill_nnz eta_col
        dense_col w_w st_w.Solver_stats.pivots sol_l.Simplex.objective;
      let r = float_of_int rows in
      pts_lu := (r, w_l) :: !pts_lu;
      (match eta with
      | Some (_, _, w_e) ->
        pts_eta := (r, w_e) :: !pts_eta;
        shared := Some (size, w_e, w_l)
      | None -> ());
      (match dense with
      | Some (_, _, w_d) -> pts_dense := (r, w_d) :: !pts_dense
      | None -> ());
      entries :=
        Printf.sprintf
          "{\"size\": %d, \"rows\": %d, \"phi\": %.9f, \"phi_delta_eta\": %.3e, \
           \"phi_delta_dense\": %.3e, \"warm_phi_delta\": %.3e, \"lu\": %s, \
           \"eta\": %s, \"dense\": %s, \"warm\": %s}"
          size rows sol_l.Simplex.objective dphi_eta dphi_dense dwarm
          (Solver_stats.to_json st_l)
          (match eta with
          | Some (_, st_e, _) -> Solver_stats.to_json st_e
          | None -> "null")
          (match dense with
          | Some (_, st_d, _) -> Solver_stats.to_json st_d
          | None -> "null")
          (Solver_stats.to_json st_w)
        :: !entries)
    sizes;
  (* Least-squares slope of ln(wall) vs ln(rows), fitted per engine over
     the points that engine actually ran. *)
  let exponent pts =
    let pts = List.rev_map (fun (r, w) -> (log r, log (Float.max 1e-6 w))) pts in
    let n = float_of_int (List.length pts) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    (sxy -. (sx *. sy /. n)) /. (sxx -. (sx *. sx /. n))
  in
  let fit pts = if List.length pts >= 2 then Some (exponent pts) else None in
  let exp_lu = exponent !pts_lu in
  let exp_eta = fit !pts_eta in
  let exp_dense = fit !pts_dense in
  let opt_s = function Some e -> Printf.sprintf "%.3f" e | None -> "null" in
  let speedup, shared_size =
    match !shared with
    | Some (size, w_e, w_l) -> (w_e /. Float.max 1e-9 w_l, size)
    | None -> (0.0, 0)
  in
  Printf.printf
    "  scaling exponent: lu %.2f, eta %s, dense %s; eta/lu speedup %.1fx at \
     the largest shared instance (%d)\n%!"
    exp_lu (opt_s exp_eta) (opt_s exp_dense) speedup shared_size;
  (* The PR-9 gates: LU must beat the eta engine by >= 2x on the largest
     instance both ran, and must not scale worse. *)
  if not !quick then begin
    if speedup < 2.0 then
      fail "LU speedup %.2fx < 2x over eta on the largest shared instance"
        speedup;
    match exp_eta with
    | Some e when exp_lu > e ->
      fail "LU scaling exponent %.3f exceeds eta's %.3f" exp_lu e
    | _ -> ()
  end;
  lp_scale_json :=
    Printf.sprintf
      "{\"sizes\": [%s], \"dense_oracle\": %b, \"dense_cap\": %d, \
       \"eta_cap\": %d, \"exponent_lu\": %.3f, \"exponent_eta\": %s, \
       \"exponent_dense\": %s, \"largest_shared_size\": %d, \
       \"eta_over_lu_speedup\": %.2f}"
      (String.concat ", " (List.rev !entries))
      !dense_oracle dense_cap eta_cap exp_lu (opt_s exp_eta) (opt_s exp_dense)
      shared_size speedup

(* ------------------------------------------------------------------ *)
(* Streaming runtime: detection latency, reaction latency, availability *)
(* ------------------------------------------------------------------ *)

let stream_json = ref "null"

let stream () =
  section "Streaming runtime — online detection -> prediction -> reaction (B4)";
  let env, _, _, _ = bundle "B4" in
  let epochs = if !quick then 200 else 800 in
  let cfg =
    {
      Prete_rt.Runtime.default_config with
      Prete_rt.Runtime.topology = "B4";
      epochs;
      seed = 123;
      scale = 2.0;
      predictor = Prete_rt.Runtime.Nn (nn_epochs ());
    }
  in
  Prete_exec.Pool.with_pool (fun pool ->
      let t0 = Unix.gettimeofday () in
      let r = Prete_rt.Runtime.run ~pool ~env cfg in
      let stream_w = Unix.gettimeofday () -. t0 in
      let m = r.Prete_rt.Runtime.r_metrics in
      Printf.printf
        "  %d epochs: %d with degradations, %d with cuts; %d alarms, %d reactions \
         (%.1f s)\n%!"
        r.Prete_rt.Runtime.r_epochs r.Prete_rt.Runtime.r_degr_epochs
        r.Prete_rt.Runtime.r_cut_epochs
        (Prete_rt.Metrics.counter m "alarms")
        (Prete_rt.Metrics.counter m "reactions")
        stream_w;
      Printf.printf
        "  detection latency mean %.1f s (%d detections); reaction-to-plan mean %.2f s\n%!"
        (Prete_rt.Metrics.hist_mean m "detection_latency_s")
        (Prete_rt.Metrics.hist_count m "detection_latency_s")
        (Prete_rt.Metrics.hist_mean m "reaction_latency_s");
      Printf.printf "  state-fiber cuts: %d reacted in time, %d missed\n%!"
        r.Prete_rt.Runtime.r_reacted_in_time r.Prete_rt.Runtime.r_missed;
      (* Cross-check: the instant policy must reproduce Simulate.run's
         availability bitwise — same seed, same env, the run's own
         scheme closure. *)
      let t0 = Unix.gettimeofday () in
      let sim =
        Simulate.run ~seed:cfg.Prete_rt.Runtime.seed ~epochs ~pool env
          r.Prete_rt.Runtime.r_scheme ~scale:cfg.Prete_rt.Runtime.scale
      in
      let sim_w = Unix.gettimeofday () -. t0 in
      let d_instant =
        Float.abs (r.Prete_rt.Runtime.r_avail_instant -. sim.Simulate.availability)
      in
      Printf.printf
        "  availability: stream %.5f / periodic-only %.5f / instant %.5f \
         (Simulate.run %.5f, |delta| %.1e)\n%!"
        r.Prete_rt.Runtime.r_avail_stream r.Prete_rt.Runtime.r_avail_periodic
        r.Prete_rt.Runtime.r_avail_instant sim.Simulate.availability d_instant;
      if d_instant > 1e-9 then begin
        Printf.printf "  FAIL: instant policy diverged from Simulate.run\n%!";
        exit 1
      end;
      if r.Prete_rt.Runtime.r_avail_stream < r.Prete_rt.Runtime.r_avail_periodic -. 1e-9
      then begin
        Printf.printf "  FAIL: streaming availability below periodic-only\n%!";
        exit 1
      end;
      (* Detour tier: stream+detour must dominate plain stream, and the
         activation path must stay under the modeled latency bound — no
         solver wall anywhere on it. *)
      let avail_detour =
        match r.Prete_rt.Runtime.r_avail_detour with
        | Some v -> v
        | None ->
          Printf.printf "  FAIL: detour tier unexpectedly disarmed\n%!";
          exit 1
      in
      let bound = Detours.latency_bound_s (Detours.build env.Availability.ts) in
      let install_max = Prete_rt.Metrics.hist_max m "detour_install_s" in
      Printf.printf
        "  detour tier: %d activations, %d flows patched, install max %.3f s \
         (bound %.3f s), handoff mean %.1f s; stream+detour %.5f\n%!"
        (Prete_rt.Metrics.counter m "detour_activations")
        (Prete_rt.Metrics.counter m "detour_flows_patched")
        install_max bound
        (Prete_rt.Metrics.hist_mean m "detour_handoff_s")
        avail_detour;
      if avail_detour < r.Prete_rt.Runtime.r_avail_stream -. 1e-9 then begin
        Printf.printf "  FAIL: stream+detour availability below stream\n%!";
        exit 1
      end;
      if install_max > bound +. 1e-9 then begin
        Printf.printf "  FAIL: detour install latency above modeled bound\n%!";
        exit 1
      end;
      (* Dominance must hold on every seed, not just the headline run:
         short oracle-predictor sweeps on the default topology. *)
      let sweep_seeds = if !quick then [ 7 ] else [ 7; 41; 991 ] in
      let sweep =
        List.map
          (fun seed ->
            let scfg =
              {
                Prete_rt.Runtime.default_config with
                Prete_rt.Runtime.epochs = (if !quick then 60 else 120);
                seed;
              }
            in
            let sr = Prete_rt.Runtime.run ~pool scfg in
            let s_stream = sr.Prete_rt.Runtime.r_avail_stream in
            let s_detour =
              Option.value ~default:neg_infinity
                sr.Prete_rt.Runtime.r_avail_detour
            in
            if s_detour < s_stream -. 1e-9 then begin
              Printf.printf
                "  FAIL: stream+detour below stream at seed %d\n%!" seed;
              exit 1
            end;
            Printf.printf "  seed %4d: stream %.5f -> stream+detour %.5f\n%!"
              seed s_stream s_detour;
            (seed, s_stream, s_detour))
          sweep_seeds
      in
      let sweep_json =
        String.concat ", "
          (List.map
             (fun (seed, s, d) ->
               Printf.sprintf
                 "{\"seed\": %d, \"stream\": %.9f, \"stream_detour\": %.9f}"
                 seed s d)
             sweep)
      in
      stream_json :=
        Printf.sprintf
          "{\"epochs\": %d, \"seed\": %d, \"scale\": %.2f, \"degr_epochs\": %d, \
           \"cut_epochs\": %d, \"reacted_in_time\": %d, \"missed\": %d, \
           \"availability\": {\"stream\": %.9f, \"periodic\": %.9f, \
           \"instant\": %.9f, \"stream_detour\": %.9f, \"simulate_run\": %.9f}, \
           \"detour\": {\"activations\": %d, \"flows_patched\": %d, \
           \"install_max_s\": %.6f, \"latency_bound_s\": %.6f, \
           \"handoff_mean_s\": %.3f, \"sweep\": [%s]}, \"wall_s\": \
           {\"stream\": %.3f, \"simulate\": %.3f}, \"metrics\": %s, \"solver\": %s}"
          epochs cfg.Prete_rt.Runtime.seed cfg.Prete_rt.Runtime.scale
          r.Prete_rt.Runtime.r_degr_epochs r.Prete_rt.Runtime.r_cut_epochs
          r.Prete_rt.Runtime.r_reacted_in_time r.Prete_rt.Runtime.r_missed
          r.Prete_rt.Runtime.r_avail_stream r.Prete_rt.Runtime.r_avail_periodic
          r.Prete_rt.Runtime.r_avail_instant avail_detour
          sim.Simulate.availability
          (Prete_rt.Metrics.counter m "detour_activations")
          (Prete_rt.Metrics.counter m "detour_flows_patched")
          install_max bound
          (Prete_rt.Metrics.hist_mean m "detour_handoff_s")
          sweep_json stream_w sim_w
          (Prete_rt.Metrics.to_json ~walls:false m)
          (Prete_lp.Solver_stats.to_json r.Prete_rt.Runtime.r_solver))

(* ------------------------------------------------------------------ *)
(* Detour tier vs fallback ladder: chaos-harness ablation               *)
(* ------------------------------------------------------------------ *)

let detour_json = ref "null"

let detour () =
  section "Detour tier vs ladder — chaos-harness ablation (B4)";
  let env, _, _, nn = bundle "B4" in
  let scheme = Schemes.prete_default ~predictor:(nn_predictor nn) () in
  let epochs = if !quick then 20 else 60 in
  let fail fmt = Printf.ksprintf (fun s -> Printf.printf "  FAIL: %s\n%!" s; exit 1) fmt in
  let dt = Detours.build env.Availability.ts in
  (* Same seeds and ground truth twice: once on the plain ladder, once
     with the Detour rung armed — every degradation epoch then answers
     with the precomputed patch instead of a fresh solve. *)
  let run detours =
    let t0 = Unix.gettimeofday () in
    (* Seed 3 yields degradation observations at both the quick and the
       full epoch counts; the default seed happens to see none in 20. *)
    let r = Simulate.run_chaos ~seed:3 ~epochs ?detours env scheme ~scale:2.0 in
    (r, Unix.gettimeofday () -. t0)
  in
  let base, base_w = run None in
  let armed, armed_w = run (Some dt) in
  let rungs (r : Simulate.chaos_result) =
    Printf.sprintf
      "detour %d / primary %d / cached %d / equal-split %d"
      r.Simulate.c_detour r.Simulate.c_primary r.Simulate.c_cached
      r.Simulate.c_equal_split
  in
  Printf.printf "  ladder only : avail %.5f in %6.1f s  (%s)\n%!"
    base.Simulate.c_availability base_w (rungs base);
  Printf.printf "  detour armed: avail %.5f in %6.1f s  (%s)\n%!"
    armed.Simulate.c_availability armed_w (rungs armed);
  let sum (r : Simulate.chaos_result) =
    r.Simulate.c_detour + r.Simulate.c_primary + r.Simulate.c_cached
    + r.Simulate.c_equal_split
  in
  if sum base <> base.Simulate.c_epochs || sum armed <> armed.Simulate.c_epochs
  then fail "rung counts do not sum to epochs";
  if base.Simulate.c_detour <> 0 then fail "detour rung fired while disarmed";
  if armed.Simulate.c_detour = 0 then
    fail "detour rung never fired while armed over %d epochs" epochs;
  let emit (r : Simulate.chaos_result) w =
    Printf.sprintf
      "{\"availability\": %.9f, \"detour\": %d, \"primary\": %d, \
       \"cached\": %d, \"equal_split\": %d, \"degraded_plans\": %d, \
       \"wall_s\": %.3f}"
      r.Simulate.c_availability r.Simulate.c_detour r.Simulate.c_primary
      r.Simulate.c_cached r.Simulate.c_equal_split r.Simulate.c_degraded_plans w
  in
  detour_json :=
    Printf.sprintf
      "{\"epochs\": %d, \"ladder\": %s, \"detour_armed\": %s, \
       \"avail_delta\": %.9f}"
      armed.Simulate.c_epochs (emit base base_w) (emit armed armed_w)
      (armed.Simulate.c_availability -. base.Simulate.c_availability)

(* ------------------------------------------------------------------ *)
(* Scenario sweep: per-workload-class availability floors               *)
(* ------------------------------------------------------------------ *)

let sweep_json = ref "null"

(* Stream-policy availability floors per workload class, pinned with
   margin below the minima measured across the default matrix at seed 3
   / 12 epochs / scale 2 (gravity 0.9610, diurnal 0.9887, flash 0.9289,
   coremelt 0.8876 — grid4 is the minimum for every class, so the
   floors hold for the --quick sub-matrix too). *)
let sweep_floors =
  [ ("gravity", 0.95); ("diurnal", 0.98); ("flash", 0.91); ("coremelt", 0.87) ]

let sweep_bench () =
  section "Scenario sweep — topology x traffic x profile x policy portfolio";
  let module Sweep = Prete_rt.Sweep in
  let topologies =
    if !quick then [ "Abilene"; "grid4" ] else [ "Abilene"; "B4"; "grid4" ]
  in
  let traffic = [ "gravity"; "diurnal"; "flash"; "coremelt" ] in
  let profiles = if !quick then [ "clean" ] else Sweep.profile_names in
  let epochs = 12 and seed = 3 and scale = 2.0 in
  let fail fmt =
    Printf.ksprintf (fun s -> Printf.printf "  FAIL: %s\n%!" s; exit 1) fmt
  in
  let class_of_spec spec =
    match String.index_opt spec ':' with
    | None -> spec
    | Some i -> String.sub spec 0 i
  in
  Prete_exec.Pool.with_pool @@ fun pool ->
  let t0 = Unix.gettimeofday () in
  let p = Sweep.run ~pool ~seed ~epochs ~scale ~topologies ~traffic ~profiles () in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "  %d topologies x %d traffic x %d profiles x %d policies: %d \
                 cells in %.1f s\n%!"
    (List.length topologies) (List.length traffic) (List.length profiles)
    (List.length Sweep.policies)
    (List.length p.Sweep.pt_cells)
    wall;
  (* Per-class stream minima vs the pinned floors. *)
  let stream_min =
    List.map
      (fun (cls, floor) ->
        let m =
          List.fold_left
            (fun acc (c : Sweep.cell) ->
              if c.Sweep.cl_policy = "stream" && class_of_spec c.Sweep.cl_traffic = cls
              then Float.min acc c.Sweep.cl_availability
              else acc)
            infinity p.Sweep.pt_cells
        in
        Printf.printf "  %-9s stream min %.5f (floor %.2f)\n%!" cls m floor;
        if m < floor then
          fail "%s stream availability %.5f under the %.2f floor" cls m floor;
        (cls, m, floor))
      sweep_floors
  in
  (* The detour tier must never cost availability, on any cell of the
     matrix. *)
  let detour_delta =
    let lookup policy (c : Sweep.cell) =
      List.find
        (fun (o : Sweep.cell) ->
          o.Sweep.cl_topology = c.Sweep.cl_topology
          && o.Sweep.cl_traffic = c.Sweep.cl_traffic
          && o.Sweep.cl_profile = c.Sweep.cl_profile
          && o.Sweep.cl_policy = policy)
        p.Sweep.pt_cells
    in
    List.fold_left
      (fun acc (c : Sweep.cell) ->
        if c.Sweep.cl_policy <> "stream" then acc
        else begin
          let d = (lookup "stream+detour" c).Sweep.cl_availability in
          let delta = d -. c.Sweep.cl_availability in
          if delta < -1e-9 then
            fail "stream+detour below stream on %s/%s/%s" c.Sweep.cl_topology
              c.Sweep.cl_traffic c.Sweep.cl_profile;
          Float.min acc delta
        end)
      infinity p.Sweep.pt_cells
  in
  Printf.printf "  stream+detour minimum delta over stream: %+.2e\n%!" detour_delta;
  (* Bit-identity: the whole portfolio JSON must not depend on the
     domain count. *)
  let j = Sweep.to_json p in
  let j1 =
    Prete_exec.Pool.with_pool ~domains:1 (fun pool1 ->
        Sweep.to_json
          (Sweep.run ~pool:pool1 ~seed ~epochs ~scale ~topologies ~traffic
             ~profiles ()))
  in
  if j <> j1 then fail "portfolio JSON not bit-identical at a single domain";
  Printf.printf "  portfolio bit-identical at a single domain (%d bytes)\n%!"
    (String.length j);
  sweep_json :=
    Printf.sprintf
      "{\"seed\": %d, \"epochs\": %d, \"scale\": %.2f, \
       \"matrix\": {\"topologies\": %d, \"traffic\": %d, \"profiles\": %d, \
       \"policies\": %d}, \"cells\": %d, \
       \"class_stream_min\": {%s}, \"floors\": {%s}, \
       \"detour_min_delta\": %.9f, \"single_domain_identical\": true, \
       \"wall_s\": %.3f}"
      seed epochs scale (List.length topologies) (List.length traffic)
      (List.length profiles)
      (List.length Sweep.policies)
      (List.length p.Sweep.pt_cells)
      (String.concat ", "
         (List.map (fun (c, m, _) -> Printf.sprintf "\"%s\": %.9f" c m) stream_min))
      (String.concat ", "
         (List.map (fun (c, _, f) -> Printf.sprintf "\"%s\": %.2f" c f) stream_min))
      detour_delta wall

(* ------------------------------------------------------------------ *)
(* stream_scale: fleet-scale sharded streaming throughput               *)
(* ------------------------------------------------------------------ *)

let stream_scale_json = ref "null"

(* Every fiber of a wan-family topology streams 1 Hz telemetry through
   regional shards.  Gates: bit-identical deterministic cores at every
   shard count and repeat, the accounting identity
   alarms = debounced + shed + batched on every run, >= 4x single-shard
   aggregate throughput (samples/s, per-shard busy-time denominators)
   and >= 4x sustained ticks/s at 4 shards, and the modeled reaction
   latency quantiles (Metrics.hist_quantile) within the ladder budget
   on the backpressure leg. *)
let stream_scale () =
  section "Sharded streaming — fleet throughput, coalescing, backpressure (wan26)";
  let module Rt = Prete_rt.Runtime in
  let module Sh = Prete_rt.Shard in
  let module M = Prete_rt.Metrics in
  let fail fmt =
    Printf.ksprintf (fun s -> Printf.printf "  FAIL: %s\n%!" s; exit 1) fmt
  in
  let epochs = if !quick then 3 else 6 in
  let repeats = if !quick then 2 else 3 in
  let base =
    { Rt.default_config with Rt.topology = "wan26"; epochs; seed = 11 }
  in
  Prete_exec.Pool.with_pool @@ fun pool ->
  let t0 = Unix.gettimeofday () in
  let legs =
    List.map
      (fun shards ->
        (shards, List.init repeats (fun _ -> Sh.run ~pool { base with Rt.shards })))
      [ 1; 4 ]
  in
  let all = List.concat_map snd legs in
  List.iter
    (fun r ->
      if not (Sh.accounted r) then
        fail "unaccounted reactions: %d alarms <> %d debounced + %d shed + %d batched"
          r.Sh.s_alarms r.Sh.s_debounced r.Sh.s_shed r.Sh.s_batched)
    all;
  let core = Sh.deterministic_core (List.hd all) in
  List.iter
    (fun r ->
      if not (String.equal core (Sh.deterministic_core r)) then
        fail "deterministic core differs at %d shards"
          r.Sh.s_partition.Sh.pt_shards)
    all;
  let best f rs = List.fold_left (fun acc r -> Float.max acc (f r)) 0.0 rs in
  let rate1 = best Sh.aggregate_rate (List.assoc 1 legs) in
  let rate4 = best Sh.aggregate_rate (List.assoc 4 legs) in
  let tick1 = best Sh.tick_rate (List.assoc 1 legs) in
  let tick4 = best Sh.tick_rate (List.assoc 4 legs) in
  let ratio = rate4 /. Float.max 1e-9 rate1 in
  let tick_ratio = tick4 /. Float.max 1e-9 tick1 in
  let show = List.hd (List.assoc 4 legs) in
  let fibers = Array.length show.Sh.s_partition.Sh.pt_region_of in
  Array.iter
    (fun ss ->
      Printf.printf "  shard %d: %2d fibers, %6d samples, busy %.3f s (%.2f Msamples/s)\n%!"
        ss.Sh.ss_region ss.Sh.ss_fibers ss.Sh.ss_samples ss.Sh.ss_busy_s
        (float_of_int ss.Sh.ss_samples /. Float.max ss.Sh.ss_busy_s 1e-9 /. 1e6))
    show.Sh.s_shards;
  Printf.printf
    "  %d fibers x %d flows, %d epochs: aggregate %.2f -> %.2f Msamples/s \
     (%.2fx), ticks/s %.0f -> %.0f (%.2fx)\n%!"
    fibers show.Sh.s_flows epochs (rate1 /. 1e6) (rate4 /. 1e6) ratio tick1
    tick4 tick_ratio;
  Printf.printf "  fibers x flows bandwidth: %.1f Mflow-samples/s at 4 shards\n%!"
    (rate4 *. float_of_int show.Sh.s_flows /. 1e6);
  if ratio < 4.0 then
    fail "aggregate throughput %.2fx single-shard < 4x at 4 shards" ratio;
  if tick_ratio < 4.0 then
    fail "sustained tick rate %.2fx single-shard < 4x at 4 shards" tick_ratio;
  (* Backpressure leg: a hair-trigger detector floods the coalescer so
     the bounded backlog and both shed policies actually fire. *)
  let bp_cfg policy =
    {
      base with
      Rt.epochs = 3;
      shards = 4;
      queue_bound = 2;
      debounce_s = 0;
      shed_policy = policy;
      detector =
        { Prete_rt.Detector.default_config with
          Prete_rt.Detector.cusum_k = 0.0; cusum_h = 0.01 };
    }
  in
  let bp = Sh.run ~pool (bp_cfg Rt.Drop_newest) in
  let bp_old = Sh.run ~pool (bp_cfg Rt.Drop_oldest) in
  List.iter
    (fun (name, r) ->
      if not (Sh.accounted r) then
        fail "unaccounted reactions on the %s backpressure leg" name;
      if r.Sh.s_shed = 0 then fail "%s backpressure leg shed nothing" name)
    [ ("drop-newest", bp); ("drop-oldest", bp_old) ];
  if bp.Sh.s_deferred = 0 then fail "backpressure leg deferred nothing";
  (* Shedding must stay partition-invariant: the same overloaded
     config at 1 shard sheds the same reactions. *)
  let bp1 = Sh.run ~pool { (bp_cfg Rt.Drop_newest) with Rt.shards = 1 } in
  if not (String.equal (Sh.deterministic_core bp) (Sh.deterministic_core bp1))
  then fail "shedding differs between 1 and 4 shards";
  let m = bp.Sh.s_metrics in
  let p50 = M.hist_quantile m "reaction_latency_s" 0.5 in
  let p99 = M.hist_quantile m "reaction_latency_s" 0.99 in
  let wait99 = M.hist_quantile m "queue_wait_s" 0.99 in
  Printf.printf
    "  backpressure: %d alarms = %d debounced + %d shed + %d batched; %d \
     batches, %d deferred (drop-oldest: %d shed)\n%!"
    bp.Sh.s_alarms bp.Sh.s_debounced bp.Sh.s_shed bp.Sh.s_batched
    bp.Sh.s_batches bp.Sh.s_deferred bp_old.Sh.s_shed;
  Printf.printf
    "  modeled reaction latency p50 %.2f s / p99 %.2f s; queue wait p99 %.1f s\n%!"
    p50 p99 wait99;
  if not (p50 > 0.0 && p50 <= p99) then
    fail "reaction latency quantiles inconsistent (p50 %.3f, p99 %.3f)" p50 p99;
  if p99 > 60.0 then fail "p99 modeled reaction latency %.1f s > 60 s" p99;
  let wall = Unix.gettimeofday () -. t0 in
  stream_scale_json :=
    Printf.sprintf
      "{\"topology\": \"wan26\", \"fibers\": %d, \"flows\": %d, \"epochs\": %d, \
       \"repeats\": %d, \"rate_1shard\": %.0f, \"rate_4shard\": %.0f, \
       \"ratio\": %.3f, \"tick_rate_1shard\": %.0f, \"tick_rate_4shard\": %.0f, \
       \"tick_ratio\": %.3f, \"flow_samples_per_s\": %.0f, \
       \"cores_identical\": true, \"accounted\": true, \
       \"backpressure\": {\"alarms\": %d, \"debounced\": %d, \"shed\": %d, \
       \"batched\": %d, \"batches\": %d, \"deferred\": %d, \
       \"shed_drop_oldest\": %d, \"partition_invariant_shed\": true, \
       \"reaction_p50_s\": %.3f, \"reaction_p99_s\": %.3f, \
       \"queue_wait_p99_s\": %.3f}, \"wall_s\": %.3f}"
      fibers show.Sh.s_flows epochs repeats rate1 rate4 ratio tick1 tick4
      tick_ratio
      (rate4 *. float_of_int show.Sh.s_flows)
      bp.Sh.s_alarms bp.Sh.s_debounced bp.Sh.s_shed bp.Sh.s_batched
      bp.Sh.s_batches bp.Sh.s_deferred bp_old.Sh.s_shed p50 p99 wait99 wall

(* ------------------------------------------------------------------ *)
(* dfl: decision-focused training — AUC vs delivered availability       *)
(* ------------------------------------------------------------------ *)

let dfl_json = ref "null"

(* The proxy-vs-objective experiment: fine-tune the log-loss warm start
   against the TE-loss oracle, then score BOTH models on BOTH axes —
   ranking quality (AUC on held-out telemetry) and delivered stream
   availability on identical sample paths (external predictor servers,
   so the runtime serves each model on the same seed).  Gates: the
   decision-focused model's stream availability is never below the
   log-loss model's on any sweep seed (the trainer's keep-the-warm-start
   guard makes ties the worst case); training is bit-identical at 1 and
   4 domains; and the online retrain leg hot-swaps at least one version
   with zero fallback predictions. *)
let dfl_bench () =
  section "Decision-focused training — AUC vs delivered availability (grid3)";
  let module Rt = Prete_rt.Runtime in
  let module M = Prete_rt.Metrics in
  let module Dfl = Prete_ml.Dfl in
  let fail fmt =
    Printf.ksprintf (fun s -> Printf.printf "  FAIL: %s\n%!" s; exit 1) fmt
  in
  let env, _, corpus, nn = bundle "grid3" in
  let t0 = Unix.gettimeofday () in
  let tcfg =
    {
      Dfl.Trainer.default_config with
      Dfl.Trainer.steps = (if !quick then 2 else 4);
      pairs = (if !quick then 1 else 2);
      seed = 7;
    }
  in
  let train domains =
    Prete_exec.Pool.with_pool ~domains @@ fun pool ->
    let oracle = Dfl.Oracle.create ~pool ~scale:2.0 env in
    Dfl.Trainer.finetune_mlp ~config:tcfg ~oracle nn
  in
  let df, report = train 4 in
  Printf.printf
    "  trainer: oracle loss %.6f -> tuned %.6f -> distilled %.6f (%s, %d \
     oracle calls)\n%!"
    report.Dfl.Trainer.initial_loss report.Dfl.Trainer.tuned_loss
    report.Dfl.Trainer.distilled_loss
    (if report.Dfl.Trainer.kept then "kept" else "reverted to warm start")
    report.Dfl.Trainer.loss_calls;
  (* Same seeded descent on one domain must reproduce the run above
     bit-for-bit — gradient evaluations are sequential by design. *)
  let df1, report1 = train 1 in
  let outputs m =
    Array.map
      (fun (e : Prete_ml.Corpus.example) ->
        Prete_ml.Mlp.predict_proba m e.Prete_ml.Corpus.features)
      corpus.Prete_ml.Corpus.test
  in
  if report1 <> report || outputs df1 <> outputs df then
    fail "training differs between 1 and 4 domains";
  Printf.printf "  determinism: 1-domain retrain bit-identical to 4-domain\n%!";
  let auc m =
    Prete_ml.Metrics.auc_examples ~scores:(outputs m) corpus.Prete_ml.Corpus.test
  in
  let ll_auc = auc nn and df_auc = auc df in
  (* Same sample path, two served models: external predictor servers
     pin the runtime to each model while seed/topology/scale fix the
     ground truth. *)
  let epochs = if !quick then 12 else 24 in
  let sweep_seeds = if !quick then [ 7 ] else [ 7; 41; 991 ] in
  let stream_avail seed m =
    Prete_exec.Pool.with_pool @@ fun pool ->
    let server =
      Prete_rt.Predictor.create
        ~fallback:(Prete_rt.Predictor.prior env.Availability.model)
        (fun f -> Prete_ml.Mlp.predict_proba m f)
    in
    let cfg = { Rt.default_config with Rt.topology = "grid3"; epochs; seed } in
    let r = Rt.run ~pool ~env ~predictor:server cfg in
    r.Rt.r_avail_stream
  in
  let sweep =
    List.map
      (fun seed ->
        let ll = stream_avail seed nn in
        let dfa = stream_avail seed df in
        Printf.printf "  seed %4d: log-loss %.5f -> decision-focused %.5f\n%!"
          seed ll dfa;
        if dfa < ll -. 1e-9 then
          fail "decision-focused availability below log-loss at seed %d" seed;
        (seed, ll, dfa))
      sweep_seeds
  in
  Printf.printf
    "  AUC: log-loss %.4f, decision-focused %.4f (availability is the \
     objective; ranking may give ground)\n%!"
    ll_auc df_auc;
  (* Online retrain leg: the runtime owns its model, consumes the
     measured alarm stream, and must hot-swap at least one dfl-v<n>
     version with zero dropped or fallback predictions. *)
  let retrain_cfg =
    {
      Rt.default_config with
      Rt.topology = "grid3";
      epochs;
      seed = 3;
      predictor = Rt.Nn 3;
      retrain =
        Some
          {
            Rt.rt_every = max 1 (epochs / 4);
            rt_steps = 1;
            rt_pairs = 1;
            rt_min_events = 1;
          };
    }
  in
  let rr = Prete_exec.Pool.with_pool (fun pool -> Rt.run ~pool ~env retrain_cfg) in
  let m = rr.Rt.r_metrics in
  let retrains = M.counter m "retrains" in
  let swaps = M.counter m "predictor_swaps" in
  let fallbacks = M.counter m "predictor_fallbacks" in
  Printf.printf
    "  retrain leg: %d retrains, %d swaps, %d fallbacks, swap latency max \
     %.6f s, stream availability %.5f\n%!"
    retrains swaps fallbacks
    (M.wall_hist_max m "swap_s")
    rr.Rt.r_avail_stream;
  if retrains < 1 || swaps < 1 then
    fail "online retrain never swapped a model version in %d epochs" epochs;
  if fallbacks > 0 then fail "predictions fell back during hot swaps";
  let wall = Unix.gettimeofday () -. t0 in
  let avg f = List.fold_left (fun a x -> a +. f x) 0.0 sweep
              /. float_of_int (List.length sweep) in
  dfl_json :=
    Printf.sprintf
      "{\"topology\": \"grid3\", \"epochs\": %d, \"trainer\": {\"steps\": %d, \
       \"pairs\": %d, \"seed\": %d, \"initial_loss\": %.9f, \"tuned_loss\": \
       %.9f, \"distilled_loss\": %.9f, \"kept\": %b, \"oracle_calls\": %d}, \
       \"domains_bit_identical\": true, \"models\": {\"logloss\": {\"auc\": \
       %.6f, \"availability\": %.9f}, \"decision\": {\"auc\": %.6f, \
       \"availability\": %.9f}}, \"sweep\": [%s], \"retrain\": {\"retrains\": \
       %d, \"swaps\": %d, \"fallbacks\": %d, \"availability\": %.9f}, \
       \"wall_s\": %.3f}"
      epochs tcfg.Dfl.Trainer.steps tcfg.Dfl.Trainer.pairs
      tcfg.Dfl.Trainer.seed report.Dfl.Trainer.initial_loss
      report.Dfl.Trainer.tuned_loss report.Dfl.Trainer.distilled_loss
      report.Dfl.Trainer.kept report.Dfl.Trainer.loss_calls ll_auc
      (avg (fun (_, ll, _) -> ll))
      df_auc
      (avg (fun (_, _, d) -> d))
      (String.concat ", "
         (List.map
            (fun (seed, ll, d) ->
              Printf.sprintf
                "{\"seed\": %d, \"logloss\": %.9f, \"decision\": %.9f}" seed ll
                d)
            sweep))
      retrains swaps fallbacks rr.Rt.r_avail_stream wall

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let kernels () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let env, _, _, nn = bundle "B4" in
  let topo = env.Availability.ts.Tunnels.topo in
  let demands = Traffic.demand env.Availability.traffic ~scale:2.0 ~epoch:12 in
  let probs = env.Availability.model.Fiber_model.p_cut in
  let problem = Te.make_problem ~ts:env.Availability.ts ~demands ~probs ~beta:0.999 () in
  let event = env.Availability.degr_events.(0) in
  let batch = Array.sub env.Availability.degr_events 0 8 in
  let small_lp () =
    let m = Prete_lp.Lp.create () in
    let x = Prete_lp.Lp.add_var m "x" and y = Prete_lp.Lp.add_var m "y" in
    ignore (Prete_lp.Lp.add_constraint m [ (1.0, x) ] Prete_lp.Lp.Le 4.0);
    ignore (Prete_lp.Lp.add_constraint m [ (2.0, y) ] Prete_lp.Lp.Le 12.0);
    ignore (Prete_lp.Lp.add_constraint m [ (3.0, x); (2.0, y) ] Prete_lp.Lp.Le 18.0);
    Prete_lp.Lp.set_objective m Prete_lp.Lp.Maximize [ (3.0, x); (5.0, y) ];
    ignore (Prete_lp.Simplex.solve m)
  in
  let tests =
    [
      Test.make ~name:"simplex_tiny" (Staged.stage small_lp);
      Test.make ~name:"te_solve_b4"
        (Staged.stage (fun () -> ignore (Te.solve ~relaxation_start:false problem)));
      Test.make ~name:"nn_inference"
        (Staged.stage (fun () -> ignore (Prete_ml.Mlp.predict_proba nn event)));
      Test.make ~name:"nn_inference_batch8"
        (Staged.stage (fun () -> ignore (Prete_ml.Mlp.predict_batch nn batch)));
      Test.make ~name:"scenario_enumeration"
        (Staged.stage (fun () -> ignore (Scenario.enumerate ~probs ())));
      Test.make ~name:"yen_k4_b4"
        (Staged.stage (fun () -> ignore (Routing.k_shortest topo ~k:4 ~src:0 ~dst:11 ())));
      Test.make ~name:"algorithm1_react"
        (Staged.stage (fun () ->
             ignore (Tunnel_update.react env.Availability.ts ~degraded_fiber:3 ())));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      let a = analyze results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "  %-24s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-24s (no estimate)\n%!" name)
        a)
    tests

(* ------------------------------------------------------------------ *)
(* Registry and driver                                                  *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1a", "loss time series of fibers that cut", fig1a);
    ("fig1b", "CDF of IP capacity lost per cut", fig1b);
    ("fig1c", "flows/tunnels affected per cut", fig1c);
    ("fig4a", "degradation length distribution", fig4a);
    ("fig4b", "coarse polling misses degradations", fig4b);
    ("fig5a", "degradation-to-cut delay distribution", fig5a);
    ("fig5b", "normalized event counts", fig5b);
    ("fig6", "failure proportion vs features", fig6);
    ("table1", "feature chi-square tests", table1);
    ("table3", "topology inventory", table3);
    ("table6", "epoch contingency + chi-square", table6);
    ("fig10", "testbed scenario timeline", fig10);
    ("fig11", "controller pipeline latency", fig11);
    ("fig12", "degradation/cut linearity, Weibull CDF", fig12);
    ("fig13", "availability vs demand scale", fig13);
    ("table4", "PreTE satisfied-demand gains", table4);
    ("table5", "predictor precision/recall", table5);
    ("fig14", "prediction error distribution", fig14);
    ("fig15", "prediction model vs availability", fig15);
    ("fig16a", "new-tunnel ratio vs availability", fig16a);
    ("fig16b", "new-tunnel ratio vs TE runtime", fig16b);
    ("fig17", "workload vs capacity uncertainty", fig17);
    ("fig18", "production case", fig18);
    ("fig19", "tunnel traffic variation", fig19);
    ("fig20a", "telemetry granularity", fig20a);
    ("fig20b", "predictable share alpha sweep", fig20b);
    ("table8", "NN feature ablation", table8);
    ("mc_check", "Monte-Carlo vs analytic cross-check", mc_check);
    ("ablate_cutoff", "scenario cutoff ablation", ablate_cutoff);
    ("ablate_mip", "MIP strategy ablation", ablate_mip);
    ("warmstart", "warm vs cold solver pivots + plan-cache hit rate", warmstart);
    ("fallback", "fallback-path latency per ladder rung", fallback);
    ("parallel", "domain-pool scaling: 1/2/4-domain walls + determinism", parallel);
    ("lp_scale", "LU vs eta vs dense simplex scaling on TE LPs", lp_scale);
    ("stream", "streaming runtime: detection/reaction latency + availability", stream);
    ("stream_scale", "sharded fleet streaming: throughput, coalescing, backpressure", stream_scale);
    ("detour", "precomputed detour tier vs ladder: chaos ablation", detour);
    ("sweep", "scenario matrix portfolio: per-class floors + determinism", sweep_bench);
    ("dfl", "decision-focused training: AUC vs delivered availability", dfl_bench);
  ]

let () =
  let only = ref [] in
  let run_kernels = ref false in
  let list_only = ref false in
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--kernels" :: rest ->
      run_kernels := true;
      parse rest
    | "--dense-oracle" :: rest ->
      dense_oracle := true;
      parse rest
    | "--list" :: rest ->
      list_only := true;
      parse rest
    | "--only" :: ids :: rest ->
      only := String.split_on_char ',' ids;
      parse rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 2
  in
  parse args;
  if !list_only then begin
    List.iter (fun (id, desc, _) -> Printf.printf "%-14s %s\n" id desc) experiments;
    Printf.printf "%-14s %s\n" "kernels" "Bechamel micro-benchmarks";
    exit 0
  end;
  let t0 = Unix.gettimeofday () in
  let selected =
    if !only = [] then experiments
    else
      List.map
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some e -> e
          | None when id = "kernels" -> ("kernels", "micro-benchmarks", kernels)
          | None ->
            Printf.eprintf "unknown experiment id %s (try --list)\n" id;
            exit 2)
        !only
  in
  let walls = ref [] in
  List.iter
    (fun (id, _, run) ->
      let w0 = Unix.gettimeofday () in
      run ();
      walls := (id, Unix.gettimeofday () -. w0) :: !walls)
    selected;
  if !run_kernels || !only = [] then kernels ();
  (* Machine-readable perf trajectory: per-experiment wall times plus
     each detailed section that actually ran (experiments left at their
     "null" sentinel are omitted instead of emitted as nulls). *)
  let json =
    let exps =
      List.rev_map
        (fun (id, w) -> Printf.sprintf "{\"id\": \"%s\", \"wall_s\": %.3f}" id w)
        !walls
    in
    let sections =
      List.filter_map
        (fun (name, r) ->
          if !r = "null" then None else Some (Printf.sprintf "\"%s\": %s" name !r))
        [
          ("warmstart", warmstart_json);
          ("plan_cache", chaos_cache_json);
          ("parallel", parallel_json);
          ("lp_scale", lp_scale_json);
          ("stream", stream_json);
          ("stream_scale", stream_scale_json);
          ("detour", detour_json);
          ("sweep", sweep_json);
          ("dfl", dfl_json);
        ]
    in
    Printf.sprintf "{\n  \"pr\": 10,\n  \"experiments\": [%s]%s\n}\n"
      (String.concat ", " exps)
      (String.concat ""
         (List.map (fun s -> Printf.sprintf ",\n  %s" s) sections))
  in
  let oc = open_out "BENCH_PR10.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\nWrote BENCH_PR10.json\n";
  Printf.printf "\nTotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
