(* Adversarial differential stress: LU vs dense on nasty random LPs. *)
open Prete_lp

let () =
  let fails = ref 0 and tried = ref 0 and opt = ref 0 in
  for seed = 0 to 1999 do
    let rng = Prete_util.Rng.create (seed + 777) in
    let nv = 1 + Prete_util.Rng.int rng 6 in
    let m = Lp.create () in
    let xs = Array.init nv (fun j ->
      let has_ub = Prete_util.Rng.int rng 3 > 0 in
      if has_ub then Lp.add_var m ~ub:(Prete_util.Rng.uniform rng 0.0 5.0) (Printf.sprintf "x%d" j)
      else Lp.add_var m (Printf.sprintf "x%d" j)) in
    let nc = 1 + Prete_util.Rng.int rng 6 in
    for _ = 1 to nc do
      let terms = ref [] in
      Array.iter (fun x ->
        if Prete_util.Rng.int rng 3 > 0 then
          terms := (Prete_util.Rng.uniform rng (-3.0) 3.0, x) :: !terms) xs;
      let sense = match Prete_util.Rng.int rng 3 with
        | 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq in
      let rhs = Prete_util.Rng.uniform rng (-2.0) 8.0 in
      if !terms <> [] then ignore (Lp.add_constraint m !terms sense rhs)
    done;
    (* salt: duplicate of row 0 at negative scale? keep positive + singleton rows *)
    let dir = if Prete_util.Rng.int rng 2 = 0 then Lp.Minimize else Lp.Maximize in
    Lp.set_objective m dir
      (Array.to_list (Array.map (fun x -> (Prete_util.Rng.uniform rng (-2.0) 2.0, x)) xs));
    incr tried;
    let r1 = (try Simplex.solve ~engine:Simplex.Lu m with e -> print_endline (Printexc.to_string e); Simplex.Infeasible) in
    let r2 = (try Simplex.solve ~engine:Simplex.Dense m with _ -> Simplex.Infeasible) in
    (match r1, r2 with
     | Simplex.Optimal a, Simplex.Optimal b ->
       incr opt;
       if abs_float (a.Simplex.objective -. b.Simplex.objective) > 1e-5 then begin
         incr fails;
         Printf.printf "seed %d: obj lu=%.9f dense=%.9f\n" seed a.Simplex.objective b.Simplex.objective
       end;
       if not (Simplex.feasible m a.Simplex.values) then begin
         incr fails; Printf.printf "seed %d: lu primal infeasible\n" seed
       end
     | Simplex.Infeasible, Simplex.Infeasible -> ()
     | Simplex.Unbounded, Simplex.Unbounded -> ()
     | a, b ->
       let s = function Simplex.Optimal _ -> "opt" | Simplex.Infeasible -> "infeas" | Simplex.Unbounded -> "unbdd" in
       incr fails;
       Printf.printf "seed %d: status lu=%s dense=%s\n" seed (s a) (s b))
  done;
  Printf.printf "tried=%d optimal-agree=%d failures=%d\n" !tried !opt !fails
