(* Deterministic seeded chaos tests: the fault-injection harness drives
   the controller through every fault class and the control loop must
   never throw — every epoch yields a feasible plan from some rung of
   the fallback ladder. *)

open Prete
open Prete_net

let square () =
  let fibers =
    [| (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0); (3, 0, 100.0); (0, 2, 500.0) |]
  in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (1, 2)); (2, (2, 3)); (3, (3, 0)); (4, (0, 2)) ])
  in
  Topology.make ~name:"square" ~node_names:[| "n0"; "n1"; "n2"; "n3" |] ~fibers ~links

let env = lazy (Availability.make_env (square ()))

let scheme () =
  let topo = square () in
  Schemes.prete_default
    ~predictor:(Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo))
    ()

let epochs = 60

let counts_sum r =
  Simulate.(r.c_primary + r.c_cached + r.c_equal_split)

(* The headline guarantee: with every fault class firing at once, at an
   aggressive rate, the controller-driven loop never raises and every
   epoch is served by exactly one ladder rung. *)
let test_never_throws_under_all_faults () =
  let env = Lazy.force env in
  let faults =
    List.map
      (fun fault -> { Faults.fault; rate = 0.8 })
      (Array.to_list Faults.all_classes)
  in
  let r =
    Simulate.run_chaos ~seed:42 ~epochs ~faults ~pressure_budget_s:0.002 env
      (scheme ()) ~scale:1.0
  in
  Alcotest.(check int) "epochs" epochs r.Simulate.c_epochs;
  Alcotest.(check int) "every epoch served by exactly one rung" epochs (counts_sum r);
  Alcotest.(check bool) "availability in [0,1]" true
    (r.Simulate.c_availability >= 0.0 && r.Simulate.c_availability <= 1.0);
  Alcotest.(check bool) "faults actually fired" true (r.Simulate.c_fault_epochs > 0)

(* Each class alone, at rate 1.0, must also be survivable. *)
let test_each_class_alone () =
  let env = Lazy.force env in
  Array.iter
    (fun fault ->
      let r =
        Simulate.run_chaos ~seed:7 ~epochs ~faults:[ { Faults.fault; rate = 1.0 } ]
          ~pressure_budget_s:0.0 env (scheme ()) ~scale:1.0
      in
      let name = Faults.class_name fault in
      Alcotest.(check int) (name ^ ": rungs cover epochs") epochs (counts_sum r);
      (* Dropout and solver pressure are unconditional; the sensor and
         signal faults only fire on epochs with the matching degradation
         state, so for them we only require survival. *)
      match fault with
      | Faults.Telemetry_dropout | Faults.Solver_pressure ->
          Alcotest.(check int) (name ^ ": all epochs faulted") epochs
            r.Simulate.c_fault_epochs
      | _ -> ())
    Faults.all_classes

(* Solver pressure with a zero budget starves the primary solve: the
   deadline is already expired, so every epoch lands on a fallback and
   the recorded root cause is the solver timeout. *)
let test_solver_pressure_starves_primary () =
  let env = Lazy.force env in
  let r =
    Simulate.run_chaos ~seed:5 ~epochs
      ~faults:[ { Faults.fault = Faults.Solver_pressure; rate = 1.0 } ]
      ~pressure_budget_s:0.0 env (scheme ()) ~scale:1.0
  in
  Alcotest.(check int) "no primary epochs" 0 r.Simulate.c_primary;
  Alcotest.(check int) "all epochs degraded" epochs r.Simulate.c_degraded_plans;
  Alcotest.(check bool) "solver-timeout is a recorded cause" true
    (List.mem_assoc "solver-timeout" r.Simulate.c_causes)

let test_dropout_produces_gaps () =
  let env = Lazy.force env in
  let r =
    Simulate.run_chaos ~seed:5 ~epochs
      ~faults:[ { Faults.fault = Faults.Telemetry_dropout; rate = 1.0 } ]
      env (scheme ()) ~scale:1.0
  in
  Alcotest.(check int) "every epoch is a gap" epochs r.Simulate.c_gap_epochs;
  Alcotest.(check int) "no primary under total dropout" 0 r.Simulate.c_primary

let test_deterministic () =
  let env = Lazy.force env in
  let faults = [ { Faults.fault = Faults.Noise_burst; rate = 0.5 } ] in
  let run () = Simulate.run_chaos ~seed:99 ~epochs ~faults env (scheme ()) ~scale:1.0 in
  let a = run () and b = run () in
  Alcotest.(check (float 0.0)) "availability" a.Simulate.c_availability
    b.Simulate.c_availability;
  Alcotest.(check int) "primary" a.Simulate.c_primary b.Simulate.c_primary;
  Alcotest.(check int) "equal split" a.Simulate.c_equal_split b.Simulate.c_equal_split

(* Fault-free chaos run = the plain control loop: the primary solve
   serves every epoch and nothing is degraded. *)
let test_fault_free_baseline_is_clean () =
  let env = Lazy.force env in
  let r = Simulate.run_chaos ~seed:11 ~epochs env (scheme ()) ~scale:1.0 in
  Alcotest.(check int) "all primary" epochs r.Simulate.c_primary;
  Alcotest.(check int) "no gaps" 0 r.Simulate.c_gap_epochs;
  Alcotest.(check int) "no faults" 0 r.Simulate.c_fault_epochs

let test_sweep_covers_all_classes () =
  let env = Lazy.force env in
  let baseline, entries =
    Simulate.chaos_sweep ~seed:3 ~epochs:30 env (scheme ()) ~scale:1.0
  in
  Alcotest.(check int) "one entry per class" (Array.length Faults.all_classes)
    (Array.length entries);
  Array.iter
    (fun e ->
      let name = Faults.class_name e.Simulate.sw_class in
      Alcotest.(check bool) (name ^ ": finite delta") true
        (Float.is_finite e.Simulate.sw_delta);
      Alcotest.(check (float 1e-12)) (name ^ ": delta consistent")
        (e.Simulate.sw_result.Simulate.c_availability
        -. baseline.Simulate.c_availability)
        e.Simulate.sw_delta)
    entries

let () =
  Alcotest.run "prete_chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "never throws under all faults" `Quick
            test_never_throws_under_all_faults;
          Alcotest.test_case "each class alone" `Quick test_each_class_alone;
          Alcotest.test_case "solver pressure starves primary" `Quick
            test_solver_pressure_starves_primary;
          Alcotest.test_case "dropout produces gaps" `Quick test_dropout_produces_gaps;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "fault-free baseline clean" `Quick
            test_fault_free_baseline_is_clean;
          Alcotest.test_case "sweep covers all classes" `Quick
            test_sweep_covers_all_classes;
        ] );
    ]
