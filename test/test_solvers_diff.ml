(* Differential testing of the three TE solving strategies.

   On randomly generated small instances the heuristic ({!Te.solve}), the
   exact MIP ({!Te.solve_mip}) and Benders decomposition
   ({!Te.solve_benders}) must agree on the optimal loss Φ, every returned
   allocation must pass the independent {!Prete_lp.Simplex.feasible}
   check against {!Resilience.capacity_model}, and warm-started re-solves
   must reproduce the cold objective bit-for-bit (within eps).

   Two generator regimes:
   - the Fig. 2 triangle, where the δ-rounding heuristic is provably
     vertex-exact: all three strategies must agree to 1e-6;
   - the square-with-diagonal, where the heuristic's rounding can land on
     a suboptimal coverage set: Benders and the MIP must still agree (both
     are exact), and the heuristic Φ is validated as an upper bound. *)

open Prete
open Prete_net

let triangle () =
  let fibers = [| (0, 1, 100.0); (0, 2, 100.0); (1, 2, 100.0) |] in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (0, 2)); (2, (1, 2)) ])
  in
  Topology.make ~name:"fig2" ~node_names:[| "s1"; "s2"; "s3" |] ~fibers ~links

let square () =
  let fibers =
    [| (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0); (3, 0, 100.0); (0, 2, 500.0) |]
  in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (1, 2)); (2, (2, 3)); (3, (3, 0)); (4, (0, 2)) ])
  in
  Topology.make ~name:"square" ~node_names:[| "n0"; "n1"; "n2"; "n3" |] ~fibers ~links

(* Random instance on a fixed topology shape: demands in [5, 20), cut
   probabilities in [0.005, 0.05), beta drawn from the levels the paper
   evaluates. *)
let random_problem ~square:sq rng =
  let topo = if sq then square () else triangle () in
  let pairs = if sq then [ (0, 2); (1, 3) ] else [ (0, 1); (0, 2) ] in
  let ts = Tunnels.build ~per_flow:2 topo pairs in
  let demands = Array.init 2 (fun _ -> Prete_util.Rng.uniform rng 5.0 20.0) in
  let probs =
    Array.init (Topology.num_fibers topo)
      (fun _ -> Prete_util.Rng.uniform rng 0.005 0.05)
  in
  let beta = [| 0.9; 0.95; 0.99 |].(Prete_util.Rng.int rng 3) in
  (ts, Te.make_problem ~ts ~demands ~probs ~beta ())

(* The capacity polytope built independently of the solvers: the
   allocation the solver returns must satisfy it (and its variable bounds)
   under the generic simplex feasibility checker. *)
let alloc_feasible ts (sol : Te.solution) =
  Prete_lp.Simplex.feasible (Resilience.capacity_model ts) sol.Te.alloc

(* Coverage constraint (Eqn. 5): the classes a solution marks covered
   must carry at least beta probability mass for every flow. *)
let coverage_ok (p : Te.problem) (sol : Te.solution) =
  let ok = ref true in
  Array.iteri
    (fun f cls ->
      let covered = ref 0.0 in
      Array.iteri
        (fun ci (c : Scenario.Classes.cls) ->
          if sol.Te.delta.(f).(ci) then
            covered := !covered +. c.Scenario.Classes.prob)
        cls;
      if !covered < p.Te.beta -. 1e-9 then ok := false)
    sol.Te.classes;
  !ok

let prop_triangle_three_way =
  QCheck.Test.make ~name:"solvers agree on random triangle instances"
    ~count:60
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 9000) in
      let ts, p = random_problem ~square:false rng in
      let h = Te.solve ~second_phase:false p in
      let e = Te.solve_mip p in
      let b = Te.solve_benders p in
      abs_float (h.Te.phi -. e.Te.phi) <= 1e-6
      && abs_float (b.Te.phi -. e.Te.phi) <= 1e-6
      && alloc_feasible ts h && alloc_feasible ts e && alloc_feasible ts b
      && coverage_ok p h && coverage_ok p e && coverage_ok p b)

let prop_square_exact_pair =
  QCheck.Test.make ~name:"benders matches mip on random square instances"
    ~count:40
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 17_000) in
      let ts, p = random_problem ~square:true rng in
      let h = Te.solve ~second_phase:false p in
      let e = Te.solve_mip p in
      let b = Te.solve_benders p in
      (* Both exact strategies agree; the rounding heuristic is a valid
         upper bound (exactness on this shape is not guaranteed). *)
      abs_float (b.Te.phi -. e.Te.phi) <= 1e-6
      && h.Te.phi >= e.Te.phi -. 1e-6
      && alloc_feasible ts h && alloc_feasible ts e && alloc_feasible ts b
      && coverage_ok p h && coverage_ok p e && coverage_ok p b)

let prop_warm_equals_cold =
  QCheck.Test.make ~name:"warm re-solve reproduces the cold objective"
    ~count:40
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 33_000) in
      let sq = Prete_util.Rng.int rng 2 = 0 in
      let ts, p = random_problem ~square:sq rng in
      let cold = Te.solve ~second_phase:false p in
      match cold.Te.basis with
      | None -> false (* a solved instance must surface its final basis *)
      | Some basis ->
        let warm = Te.solve ~second_phase:false ~warm:basis p in
        let cold_mip = Te.solve_mip ~warm_start:false p in
        let warm_mip = Te.solve_mip ~warm:basis p in
        abs_float (warm.Te.phi -. cold.Te.phi) <= 1e-9
        && abs_float (warm_mip.Te.phi -. cold_mip.Te.phi) <= 1e-6
        && alloc_feasible ts warm && alloc_feasible ts warm_mip)

let prop_benders_warm_chain =
  QCheck.Test.make
    ~name:"benders warm-chained across perturbed demands stays exact"
    ~count:30
    QCheck.(small_int)
    (fun seed ->
      (* The production pattern: consecutive epochs solve structurally
         identical problems with drifting demands, threading the basis.
         The chained Benders run must match a from-scratch MIP at every
         step. *)
      let rng = Prete_util.Rng.create (seed + 71_000) in
      let ts, p0 = random_problem ~square:false rng in
      let carry = ref None in
      let ok = ref true in
      for _ = 1 to 3 do
        let demands =
          Array.map
            (fun d -> Float.max 1.0 (d +. Prete_util.Rng.uniform rng (-2.0) 2.0))
            p0.Te.demands
        in
        let p = { p0 with Te.demands = demands } in
        let b = Te.solve_benders ?warm:!carry p in
        let e = Te.solve_mip ~warm_start:false p in
        if abs_float (b.Te.phi -. e.Te.phi) > 1e-6 || not (alloc_feasible ts b)
        then ok := false;
        carry := b.Te.basis
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Dense vs revised engine differential suite (raw LPs)                 *)
(* ------------------------------------------------------------------ *)

module Lp = Prete_lp.Lp
module Simplex = Prete_lp.Simplex
module Mip = Prete_lp.Mip
module Solver_stats = Prete_lp.Solver_stats

(* Random bounded LP, feasible by construction: continuous-uniform
   coefficients (ties and degenerate optima have measure zero, so the
   optimal basis — and with it the dual vector — is generically unique),
   rhs placed around a known point x0 >= 0.  [slack] controls the
   inequality slacks, so two calls with the same [rng] state and
   different slacks differ in rhs only. *)
let random_lp_coefs rng =
  let nv = 2 + Prete_util.Rng.int rng 6 in
  let nc = 2 + Prete_util.Rng.int rng 8 in
  let x0 = Array.init nv (fun _ -> Prete_util.Rng.uniform rng 0.0 5.0) in
  (* At most nv-1 equality rows: every Eq row passes through x0 by
     construction, so nv or more of them are linearly dependent and the
     optimal duals stop being unique — the engines could then disagree on
     the dual vector while both being right. *)
  let eq_left = ref (nv - 1) in
  let rows =
    Array.init nc (fun _ ->
        let coefs = Array.init nv (fun _ -> Prete_util.Rng.uniform rng (-3.0) 3.0) in
        let sense = Prete_util.Rng.int rng 3 in
        let sense =
          if sense = 2 && !eq_left <= 0 then Prete_util.Rng.int rng 2 else sense
        in
        if sense = 2 then decr eq_left;
        (coefs, sense, Prete_util.Rng.uniform rng 0.5 5.0))
  in
  let dir = if Prete_util.Rng.int rng 2 = 0 then Lp.Minimize else Lp.Maximize in
  let obj = Array.init nv (fun _ -> Prete_util.Rng.uniform rng (-2.0) 2.0) in
  (nv, x0, rows, dir, obj)

let build_lp ?(slack_scale = 1.0) (nv, x0, rows, dir, obj) =
  let m = Lp.create () in
  let xs = Array.init nv (fun j -> Lp.add_var m ~ub:50.0 (Printf.sprintf "x%d" j)) in
  Array.iter
    (fun (coefs, sense, slack) ->
      let lhs0 = ref 0.0 in
      Array.iteri (fun j c -> lhs0 := !lhs0 +. (c *. x0.(j))) coefs;
      let terms = Array.to_list (Array.mapi (fun j c -> (c, xs.(j))) coefs) in
      ignore
        (match sense with
        | 0 -> Lp.add_constraint m terms Lp.Le (!lhs0 +. (slack_scale *. slack))
        | 1 -> Lp.add_constraint m terms Lp.Ge (!lhs0 -. (slack_scale *. slack))
        | _ -> Lp.add_constraint m terms Lp.Eq !lhs0))
    rows;
  Lp.set_objective m dir (Array.to_list (Array.mapi (fun j c -> (c, xs.(j))) obj));
  m

let prop_engines_agree_feasible =
  QCheck.Test.make ~name:"dense and revised agree on random feasible LPs"
    ~count:150
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 41_000) in
      let spec = random_lp_coefs rng in
      let m = build_lp spec in
      match
        (Simplex.solve ~engine:Simplex.Dense m, Simplex.solve ~engine:Simplex.Revised m)
      with
      | Simplex.Optimal d, Simplex.Optimal r ->
        abs_float (d.Simplex.objective -. r.Simplex.objective) <= 1e-6
        && d.Simplex.engine = Simplex.Dense
        && r.Simplex.engine = Simplex.Revised
        && (let ok = ref true in
            for i = 0 to Lp.num_constraints m - 1 do
              if abs_float (Simplex.dual d i -. Simplex.dual r i) > 1e-6 then
                ok := false
            done;
            !ok)
      | _ -> false)

let prop_engines_agree_infeasible =
  QCheck.Test.make ~name:"dense and revised agree on infeasible LPs" ~count:80
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 53_000) in
      let ((nv, _, _, _, _) as spec) = random_lp_coefs rng in
      let m = build_lp spec in
      (* Contradictory pair on a fresh random direction: a.x >= r + 1 and
         a.x <= r - 1 can never both hold. *)
      let coefs = Array.init nv (fun _ -> Prete_util.Rng.uniform rng (-3.0) 3.0) in
      let terms =
        Array.to_list (Array.mapi (fun j c -> (c, Lp.var_of_index m j)) coefs)
      in
      let r = Prete_util.Rng.uniform rng (-5.0) 5.0 in
      ignore (Lp.add_constraint m terms Lp.Ge (r +. 1.0));
      ignore (Lp.add_constraint m terms Lp.Le (r -. 1.0));
      (match Simplex.solve ~engine:Simplex.Dense m with
      | Simplex.Infeasible -> true
      | _ -> false)
      &&
      match Simplex.solve ~engine:Simplex.Revised m with
      | Simplex.Infeasible -> true
      | _ -> false)

let prop_engines_agree_unbounded =
  QCheck.Test.make ~name:"dense and revised agree on unbounded LPs" ~count:80
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 67_000) in
      let ((_, _, _, dir, _) as spec) = random_lp_coefs rng in
      let m = build_lp spec in
      (* A ray the constraints never see: z is free upward and improves
         the objective, so the feasible instance becomes unbounded. *)
      let z = Lp.add_var m "z" in
      let zc = if dir = Lp.Maximize then 1.0 else -1.0 in
      let dirn, obj = Lp.Internal.objective m in
      let terms = ref [ (zc, z) ] in
      Array.iteri
        (fun j c -> if c <> 0.0 then terms := (c, Lp.var_of_index m j) :: !terms)
        obj;
      Lp.set_objective m dirn !terms;
      (match Simplex.solve ~engine:Simplex.Dense m with
      | Simplex.Unbounded -> true
      | _ -> false)
      &&
      match Simplex.solve ~engine:Simplex.Revised m with
      | Simplex.Unbounded -> true
      | _ -> false)

let prop_pricing_rules_agree =
  QCheck.Test.make ~name:"devex and partial pricing match dantzig objectives"
    ~count:80
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 83_000) in
      let m = build_lp (random_lp_coefs rng) in
      let obj pricing =
        match Simplex.solve ~engine:Simplex.Revised ~pricing m with
        | Simplex.Optimal s -> s.Simplex.objective
        | _ -> nan
      in
      let d = obj Simplex.Dantzig in
      abs_float (obj Simplex.Devex -. d) <= 1e-6
      && abs_float (obj Simplex.Partial -. d) <= 1e-6)

let prop_revised_warm_equals_cold =
  QCheck.Test.make
    ~name:"revised warm rhs-only re-solve reproduces the cold objective"
    ~count:80
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 97_000) in
      let spec = random_lp_coefs rng in
      let base = build_lp spec in
      let perturbed = build_lp ~slack_scale:0.7 spec in
      match Simplex.solve ~engine:Simplex.Revised base with
      | Simplex.Optimal cold ->
        let cold_p =
          match Simplex.solve ~engine:Simplex.Revised perturbed with
          | Simplex.Optimal s -> Some s.Simplex.objective
          | _ -> None
        in
        let warm_p =
          match
            Simplex.solve ~engine:Simplex.Revised ~warm:cold.Simplex.basis perturbed
          with
          | Simplex.Optimal s ->
            (* Same layout, rhs-only drift: the reinstall is exact, so the
               warm solve must not re-run Phase 1, and the reinstall
               itself must show up as a refactorization. *)
            if (not s.Simplex.phase1_skipped) || s.Simplex.refactorizations < 1 then
              None
            else Some s.Simplex.objective
          | _ -> None
        in
        (match (cold_p, warm_p) with
        | Some c, Some w -> abs_float (c -. w) <= 1e-9
        | _ -> true (* tightened capacities may make the instance infeasible *))
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* LU-engine differential suite: presolve + bounded variables + sparse
   LU basis against the eta-file and dense oracles.                     *)
(* ------------------------------------------------------------------ *)

let prop_lu_three_way_agree =
  QCheck.Test.make ~name:"lu matches eta and dense objectives and duals"
    ~count:150
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 101_000) in
      let spec = random_lp_coefs rng in
      let m = build_lp spec in
      match
        ( Simplex.solve ~engine:Simplex.Lu m,
          Simplex.solve ~engine:Simplex.Revised m,
          Simplex.solve ~engine:Simplex.Dense m )
      with
      | Simplex.Optimal l, Simplex.Optimal r, Simplex.Optimal d ->
        abs_float (l.Simplex.objective -. r.Simplex.objective) <= 1e-6
        && abs_float (l.Simplex.objective -. d.Simplex.objective) <= 1e-6
        && l.Simplex.engine = Simplex.Lu
        && Simplex.feasible m l.Simplex.values
        && (let ok = ref true in
            for i = 0 to Lp.num_constraints m - 1 do
              if abs_float (Simplex.dual l i -. Simplex.dual d i) > 1e-6 then
                ok := false
            done;
            !ok)
      | _ -> false)

let prop_lu_bound_respect =
  QCheck.Test.make
    ~name:"lu solutions respect 0 <= x <= u without explicit bound rows"
    ~count:100
    QCheck.(small_int)
    (fun seed ->
      (* Tight finite upper bounds that actually bind at the optimum:
         the bounded ratio test must stop at them (the eta/dense
         engines see the same bounds as explicit rows). *)
      let rng = Prete_util.Rng.create (seed + 113_000) in
      let nv = 2 + Prete_util.Rng.int rng 5 in
      let ub = Array.init nv (fun _ -> Prete_util.Rng.uniform rng 0.5 4.0) in
      let m = Lp.create () in
      let xs =
        Array.init nv (fun j ->
            Lp.add_var m ~ub:ub.(j) (Printf.sprintf "x%d" j))
      in
      let budget = Prete_util.Rng.uniform rng 1.0 6.0 in
      ignore
        (Lp.add_constraint m
           (Array.to_list (Array.map (fun x -> (1.0, x)) xs))
           Lp.Le budget);
      Lp.set_objective m Lp.Maximize
        (Array.to_list
           (Array.map (fun x -> (Prete_util.Rng.uniform rng 0.5 3.0, x)) xs));
      match
        (Simplex.solve ~engine:Simplex.Lu m, Simplex.solve ~engine:Simplex.Dense m)
      with
      | Simplex.Optimal l, Simplex.Optimal d ->
        abs_float (l.Simplex.objective -. d.Simplex.objective) <= 1e-6
        && Array.for_all2
             (fun v u -> v >= -1e-9 && v <= u +. 1e-9)
             l.Simplex.values ub
      | _ -> false)

let test_lu_bound_flips () =
  (* Loose budget row, binding upper bounds: every entering column
     traverses its own range, so the optimum is reached purely by bound
     flips — witnessed in the telemetry. *)
  let m = Lp.create () in
  let n = 8 in
  let xs =
    Array.init n (fun j ->
        Lp.add_var m ~ub:(1.0 +. float_of_int j) (Printf.sprintf "x%d" j))
  in
  ignore
    (Lp.add_constraint m
       (Array.to_list (Array.map (fun x -> (1.0, x)) xs))
       Lp.Le 1000.0);
  Lp.set_objective m Lp.Maximize
    (Array.to_list (Array.map (fun x -> (1.0, x)) xs));
  match Simplex.solve ~engine:Simplex.Lu m with
  | Simplex.Optimal s ->
    Alcotest.(check (float 1e-9)) "all at upper" 36.0 s.Simplex.objective;
    Array.iteri
      (fun j v ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "x%d at its bound" j)
          (1.0 +. float_of_int j) v)
      s.Simplex.values;
    Alcotest.(check bool) "bound flips recorded" true (s.Simplex.bound_flips >= n)
  | _ -> Alcotest.fail "bounded instance must be optimal"

let prop_lu_presolve_roundtrip =
  QCheck.Test.make
    ~name:"presolve+postsolve recovers the original-space optimum"
    ~count:100
    QCheck.(small_int)
    (fun seed ->
      (* Salt the instance with redundancy presolve must chew through:
         a scaled duplicate row, a singleton bound row and an empty
         column.  Both engines see the same salted model; the LU
         engine's answer must land back in the original space. *)
      let rng = Prete_util.Rng.create (seed + 127_000) in
      let spec = random_lp_coefs rng in
      let m = build_lp spec in
      let nv, _, rows, _, _ = spec in
      let (coefs0, sense0, _) = rows.(0) in
      let dup_sense =
        match sense0 with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq
      in
      let rhs0 = (Lp.Internal.constraints m).(0).Lp.Internal.rhs in
      ignore
        (Lp.add_constraint m
           (Array.to_list
              (Array.mapi (fun j c -> (1.7 *. c, Lp.var_of_index m j)) coefs0))
           dup_sense (1.7 *. rhs0));
      ignore
        (Lp.add_constraint m [ (3.0, Lp.var_of_index m 0) ] Lp.Le (3.0 *. 49.9));
      ignore (Lp.add_var m "pad");
      ignore nv;
      match
        (Simplex.solve ~engine:Simplex.Lu m, Simplex.solve ~engine:Simplex.Dense m)
      with
      | Simplex.Optimal l, Simplex.Optimal d ->
        abs_float (l.Simplex.objective -. d.Simplex.objective) <= 1e-6
        && Simplex.feasible m l.Simplex.values
        && Array.length l.Simplex.values = Lp.num_vars m
        && Array.length l.Simplex.duals = Lp.num_constraints m
        && l.Simplex.presolve_rows >= 1
        && l.Simplex.presolve_cols >= 1
      | _ -> false)

let prop_lu_warm_equals_cold =
  QCheck.Test.make
    ~name:"lu warm rhs-only re-solve reproduces the cold objective"
    ~count:80
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 139_000) in
      let spec = random_lp_coefs rng in
      let base = build_lp spec in
      let perturbed = build_lp ~slack_scale:0.7 spec in
      match Simplex.solve ~engine:Simplex.Lu base with
      | Simplex.Optimal cold ->
        let cold_p =
          match Simplex.solve ~engine:Simplex.Lu perturbed with
          | Simplex.Optimal s -> Some s.Simplex.objective
          | _ -> None
        in
        let warm_p =
          match
            Simplex.solve ~engine:Simplex.Lu ~warm:cold.Simplex.basis perturbed
          with
          | Simplex.Optimal s ->
            (* Presolve keeps the reduced structure across rhs-only
               drift, so the basis reinstalls exactly: no Phase 1, and
               the reinstall counts as an LU factorization. *)
            if
              (not s.Simplex.warm_used)
              || (not s.Simplex.phase1_skipped)
              || s.Simplex.refactorizations < 1
            then None
            else Some s.Simplex.objective
          | _ -> None
        in
        (match (cold_p, warm_p) with
        | Some c, Some w -> abs_float (c -. w) <= 1e-9
        | _ -> true (* tightened capacities may make the instance infeasible *))
      | _ -> false)

(* Branch-and-bound must forward the engine choice to every node re-solve;
   the per-engine counters in the stats record witness it. *)
let test_mip_engine_passdown () =
  let knapsack () =
    let m = Lp.create () in
    let xs =
      Array.init 6 (fun j -> Lp.add_var m ~binary:true (Printf.sprintf "b%d" j))
    in
    let w = [| 3.0; 5.0; 7.0; 4.0; 6.0; 2.0 |] in
    let v = [| 4.0; 6.0; 9.0; 5.0; 8.0; 3.0 |] in
    ignore
      (Lp.add_constraint m
         (Array.to_list (Array.mapi (fun j c -> (c, xs.(j))) w))
         Lp.Le 13.0);
    Lp.set_objective m Lp.Maximize
      (Array.to_list (Array.mapi (fun j c -> (c, xs.(j))) v));
    m
  in
  let run engine pricing =
    let st = Solver_stats.create () in
    (match Mip.solve ~stats:st ~engine ~pricing (knapsack ()) with
    | Mip.Optimal _ -> ()
    | _ -> Alcotest.fail "knapsack must solve to optimality");
    st
  in
  let st = run Simplex.Revised Simplex.Devex in
  Alcotest.(check bool) "several node LPs" true (st.Solver_stats.solves > 1);
  Alcotest.(check int) "all nodes revised" st.Solver_stats.solves
    st.Solver_stats.revised_solves;
  Alcotest.(check int) "no dense fallback" 0 st.Solver_stats.dense_solves;
  Alcotest.(check int) "pricing recorded per node" st.Solver_stats.solves
    (match List.assoc_opt "devex" st.Solver_stats.pricing_solves with
    | Some n -> n
    | None -> 0);
  let st = run Simplex.Dense Simplex.Dantzig in
  Alcotest.(check int) "all nodes dense" st.Solver_stats.solves
    st.Solver_stats.dense_solves;
  Alcotest.(check int) "no revised fallback" 0 st.Solver_stats.revised_solves

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "prete_solvers_diff"
    [
      ( "differential",
        qsuite
          [
            prop_triangle_three_way;
            prop_square_exact_pair;
            prop_warm_equals_cold;
            prop_benders_warm_chain;
          ] );
      ( "engine",
        qsuite
          [
            prop_engines_agree_feasible;
            prop_engines_agree_infeasible;
            prop_engines_agree_unbounded;
            prop_pricing_rules_agree;
            prop_revised_warm_equals_cold;
          ]
        @ [ Alcotest.test_case "mip forwards engine to nodes" `Quick
              test_mip_engine_passdown ] );
      ( "engine.lu",
        qsuite
          [
            prop_lu_three_way_agree;
            prop_lu_bound_respect;
            prop_lu_presolve_roundtrip;
            prop_lu_warm_equals_cold;
          ]
        @ [ Alcotest.test_case "bound flips reach the optimum" `Quick
              test_lu_bound_flips ] );
    ]
