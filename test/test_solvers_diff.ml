(* Differential testing of the three TE solving strategies.

   On randomly generated small instances the heuristic ({!Te.solve}), the
   exact MIP ({!Te.solve_mip}) and Benders decomposition
   ({!Te.solve_benders}) must agree on the optimal loss Φ, every returned
   allocation must pass the independent {!Prete_lp.Simplex.feasible}
   check against {!Resilience.capacity_model}, and warm-started re-solves
   must reproduce the cold objective bit-for-bit (within eps).

   Two generator regimes:
   - the Fig. 2 triangle, where the δ-rounding heuristic is provably
     vertex-exact: all three strategies must agree to 1e-6;
   - the square-with-diagonal, where the heuristic's rounding can land on
     a suboptimal coverage set: Benders and the MIP must still agree (both
     are exact), and the heuristic Φ is validated as an upper bound. *)

open Prete
open Prete_net

let triangle () =
  let fibers = [| (0, 1, 100.0); (0, 2, 100.0); (1, 2, 100.0) |] in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (0, 2)); (2, (1, 2)) ])
  in
  Topology.make ~name:"fig2" ~node_names:[| "s1"; "s2"; "s3" |] ~fibers ~links

let square () =
  let fibers =
    [| (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0); (3, 0, 100.0); (0, 2, 500.0) |]
  in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (1, 2)); (2, (2, 3)); (3, (3, 0)); (4, (0, 2)) ])
  in
  Topology.make ~name:"square" ~node_names:[| "n0"; "n1"; "n2"; "n3" |] ~fibers ~links

(* Random instance on a fixed topology shape: demands in [5, 20), cut
   probabilities in [0.005, 0.05), beta drawn from the levels the paper
   evaluates. *)
let random_problem ~square:sq rng =
  let topo = if sq then square () else triangle () in
  let pairs = if sq then [ (0, 2); (1, 3) ] else [ (0, 1); (0, 2) ] in
  let ts = Tunnels.build ~per_flow:2 topo pairs in
  let demands = Array.init 2 (fun _ -> Prete_util.Rng.uniform rng 5.0 20.0) in
  let probs =
    Array.init (Topology.num_fibers topo)
      (fun _ -> Prete_util.Rng.uniform rng 0.005 0.05)
  in
  let beta = [| 0.9; 0.95; 0.99 |].(Prete_util.Rng.int rng 3) in
  (ts, Te.make_problem ~ts ~demands ~probs ~beta ())

(* The capacity polytope built independently of the solvers: the
   allocation the solver returns must satisfy it (and its variable bounds)
   under the generic simplex feasibility checker. *)
let alloc_feasible ts (sol : Te.solution) =
  Prete_lp.Simplex.feasible (Resilience.capacity_model ts) sol.Te.alloc

(* Coverage constraint (Eqn. 5): the classes a solution marks covered
   must carry at least beta probability mass for every flow. *)
let coverage_ok (p : Te.problem) (sol : Te.solution) =
  let ok = ref true in
  Array.iteri
    (fun f cls ->
      let covered = ref 0.0 in
      Array.iteri
        (fun ci (c : Scenario.Classes.cls) ->
          if sol.Te.delta.(f).(ci) then
            covered := !covered +. c.Scenario.Classes.prob)
        cls;
      if !covered < p.Te.beta -. 1e-9 then ok := false)
    sol.Te.classes;
  !ok

let prop_triangle_three_way =
  QCheck.Test.make ~name:"solvers agree on random triangle instances"
    ~count:60
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 9000) in
      let ts, p = random_problem ~square:false rng in
      let h = Te.solve ~second_phase:false p in
      let e = Te.solve_mip p in
      let b = Te.solve_benders p in
      abs_float (h.Te.phi -. e.Te.phi) <= 1e-6
      && abs_float (b.Te.phi -. e.Te.phi) <= 1e-6
      && alloc_feasible ts h && alloc_feasible ts e && alloc_feasible ts b
      && coverage_ok p h && coverage_ok p e && coverage_ok p b)

let prop_square_exact_pair =
  QCheck.Test.make ~name:"benders matches mip on random square instances"
    ~count:40
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 17_000) in
      let ts, p = random_problem ~square:true rng in
      let h = Te.solve ~second_phase:false p in
      let e = Te.solve_mip p in
      let b = Te.solve_benders p in
      (* Both exact strategies agree; the rounding heuristic is a valid
         upper bound (exactness on this shape is not guaranteed). *)
      abs_float (b.Te.phi -. e.Te.phi) <= 1e-6
      && h.Te.phi >= e.Te.phi -. 1e-6
      && alloc_feasible ts h && alloc_feasible ts e && alloc_feasible ts b
      && coverage_ok p h && coverage_ok p e && coverage_ok p b)

let prop_warm_equals_cold =
  QCheck.Test.make ~name:"warm re-solve reproduces the cold objective"
    ~count:40
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 33_000) in
      let sq = Prete_util.Rng.int rng 2 = 0 in
      let ts, p = random_problem ~square:sq rng in
      let cold = Te.solve ~second_phase:false p in
      match cold.Te.basis with
      | None -> false (* a solved instance must surface its final basis *)
      | Some basis ->
        let warm = Te.solve ~second_phase:false ~warm:basis p in
        let cold_mip = Te.solve_mip ~warm_start:false p in
        let warm_mip = Te.solve_mip ~warm:basis p in
        abs_float (warm.Te.phi -. cold.Te.phi) <= 1e-9
        && abs_float (warm_mip.Te.phi -. cold_mip.Te.phi) <= 1e-6
        && alloc_feasible ts warm && alloc_feasible ts warm_mip)

let prop_benders_warm_chain =
  QCheck.Test.make
    ~name:"benders warm-chained across perturbed demands stays exact"
    ~count:30
    QCheck.(small_int)
    (fun seed ->
      (* The production pattern: consecutive epochs solve structurally
         identical problems with drifting demands, threading the basis.
         The chained Benders run must match a from-scratch MIP at every
         step. *)
      let rng = Prete_util.Rng.create (seed + 71_000) in
      let ts, p0 = random_problem ~square:false rng in
      let carry = ref None in
      let ok = ref true in
      for _ = 1 to 3 do
        let demands =
          Array.map
            (fun d -> Float.max 1.0 (d +. Prete_util.Rng.uniform rng (-2.0) 2.0))
            p0.Te.demands
        in
        let p = { p0 with Te.demands = demands } in
        let b = Te.solve_benders ?warm:!carry p in
        let e = Te.solve_mip ~warm_start:false p in
        if abs_float (b.Te.phi -. e.Te.phi) > 1e-6 || not (alloc_feasible ts b)
        then ok := false;
        carry := b.Te.basis
      done;
      !ok)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "prete_solvers_diff"
    [
      ( "differential",
        qsuite
          [
            prop_triangle_three_way;
            prop_square_exact_pair;
            prop_warm_equals_cold;
            prop_benders_warm_chain;
          ] );
    ]
