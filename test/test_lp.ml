(* Tests for the prete_lp substrate: modeling layer, two-phase simplex
   (including duals), and branch-and-bound MIP. *)

open Prete_lp

let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Modeling layer                                                       *)
(* ------------------------------------------------------------------ *)

let test_model_counts () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  let y = Lp.add_var m ~lb:1.0 ~ub:2.0 "y" in
  ignore (Lp.add_constraint m [ (1.0, x); (2.0, y) ] Lp.Le 10.0);
  Alcotest.(check int) "vars" 2 (Lp.num_vars m);
  Alcotest.(check int) "constraints" 1 (Lp.num_constraints m);
  Alcotest.(check string) "name" "y" (Lp.var_name m y)

let test_model_duplicate_terms_merge () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  ignore (Lp.add_constraint m [ (1.0, x); (2.0, x) ] Lp.Le 6.0);
  Lp.set_objective m Lp.Maximize [ (1.0, x) ];
  match Simplex.solve m with
  | Simplex.Optimal sol -> check_close 1e-9 "3x <= 6 -> x = 2" 2.0 (Simplex.value sol x)
  | _ -> Alcotest.fail "expected optimal"

let test_model_binary_bounds () =
  let m = Lp.create () in
  let b = Lp.add_var m ~binary:true "b" in
  Alcotest.(check (list int)) "binaries" [ (b :> int) ]
    (List.map (fun v -> (v : Lp.var :> int)) (Lp.binaries m));
  let lb, ub = (Lp.Internal.bounds m).((b :> int)) in
  check_close 0.0 "lb" 0.0 lb;
  check_close 0.0 "ub" 1.0 ub

let test_model_invalid_bounds () =
  let m = Lp.create () in
  Alcotest.check_raises "lb > ub" (Invalid_argument "Lp.add_var: lb > ub")
    (fun () -> ignore (Lp.add_var m ~lb:2.0 ~ub:1.0 "x"))

(* ------------------------------------------------------------------ *)
(* Simplex: known optima                                                *)
(* ------------------------------------------------------------------ *)

(* Dantzig's classic: max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18. *)
let test_simplex_dantzig () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  ignore (Lp.add_constraint m [ (1.0, x) ] Lp.Le 4.0);
  ignore (Lp.add_constraint m [ (2.0, y) ] Lp.Le 12.0);
  ignore (Lp.add_constraint m [ (3.0, x); (2.0, y) ] Lp.Le 18.0);
  Lp.set_objective m Lp.Maximize [ (3.0, x); (5.0, y) ];
  match Simplex.solve m with
  | Simplex.Optimal sol ->
    check_close 1e-9 "objective" 36.0 sol.Simplex.objective;
    check_close 1e-9 "x" 2.0 (Simplex.value sol x);
    check_close 1e-9 "y" 6.0 (Simplex.value sol y)
  | _ -> Alcotest.fail "expected optimal"

(* Minimization with >= rows (tiny diet problem). *)
let test_simplex_diet () =
  let m = Lp.create () in
  let a = Lp.add_var m "a" and b = Lp.add_var m "b" in
  ignore (Lp.add_constraint m [ (2.0, a); (1.0, b) ] Lp.Ge 8.0);
  ignore (Lp.add_constraint m [ (1.0, a); (2.0, b) ] Lp.Ge 8.0);
  Lp.set_objective m Lp.Minimize [ (3.0, a); (2.0, b) ];
  match Simplex.solve m with
  | Simplex.Optimal sol ->
    (* Optimal at intersection a = b = 8/3: cost 40/3;
       check against corners (4,0):12... (0,8):16, (8/3,8/3):13.33, (0? a=4,b=0 violates second) —
       corner candidates: (8,0) cost 24, (0,8) cost 16, (8/3,8/3) cost 40/3 ≈ 13.33. *)
    check_close 1e-9 "objective" (40.0 /. 3.0) sol.Simplex.objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  ignore (Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Eq 5.0);
  ignore (Lp.add_constraint m [ (1.0, x) ] Lp.Le 2.0);
  Lp.set_objective m Lp.Maximize [ (2.0, x); (1.0, y) ];
  match Simplex.solve m with
  | Simplex.Optimal sol ->
    check_close 1e-9 "objective" 7.0 sol.Simplex.objective;
    check_close 1e-9 "x" 2.0 (Simplex.value sol x);
    check_close 1e-9 "y" 3.0 (Simplex.value sol y)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  ignore (Lp.add_constraint m [ (1.0, x) ] Lp.Ge 2.0);
  ignore (Lp.add_constraint m [ (1.0, x) ] Lp.Le 1.0);
  Lp.set_objective m Lp.Minimize [ (1.0, x) ];
  match Simplex.solve m with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  Lp.set_objective m Lp.Maximize [ (1.0, x) ];
  match Simplex.solve m with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_bounds_shift () =
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:1.5 ~ub:3.5 "x" in
  Lp.set_objective m Lp.Maximize [ (2.0, x) ];
  (match Simplex.solve m with
  | Simplex.Optimal sol ->
    check_close 1e-9 "max at ub" 3.5 (Simplex.value sol x);
    check_close 1e-9 "objective" 7.0 sol.Simplex.objective
  | _ -> Alcotest.fail "expected optimal");
  Lp.set_objective m Lp.Minimize [ (2.0, x) ];
  match Simplex.solve m with
  | Simplex.Optimal sol -> check_close 1e-9 "min at lb" 1.5 (Simplex.value sol x)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_fixed_var () =
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:2.0 ~ub:2.0 "x" in
  let y = Lp.add_var m ~ub:10.0 "y" in
  ignore (Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Le 5.0);
  Lp.set_objective m Lp.Maximize [ (1.0, x); (1.0, y) ];
  match Simplex.solve m with
  | Simplex.Optimal sol ->
    check_close 1e-9 "x fixed" 2.0 (Simplex.value sol x);
    check_close 1e-9 "y" 3.0 (Simplex.value sol y)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_negative_rhs () =
  (* -x <= -3 is x >= 3; exercises the rhs flip. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:10.0 "x" in
  ignore (Lp.add_constraint m [ (-1.0, x) ] Lp.Le (-3.0));
  Lp.set_objective m Lp.Minimize [ (1.0, x) ];
  match Simplex.solve m with
  | Simplex.Optimal sol -> check_close 1e-9 "x = 3" 3.0 (Simplex.value sol x)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_degenerate () =
  (* Degenerate vertex (redundant constraints through a point). *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  ignore (Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Le 4.0);
  ignore (Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Le 4.0);
  ignore (Lp.add_constraint m [ (2.0, x); (2.0, y) ] Lp.Le 8.0);
  ignore (Lp.add_constraint m [ (1.0, x) ] Lp.Le 4.0);
  Lp.set_objective m Lp.Maximize [ (1.0, x); (1.0, y) ];
  match Simplex.solve m with
  | Simplex.Optimal sol -> check_close 1e-9 "objective" 4.0 sol.Simplex.objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_redundant_equalities () =
  (* Duplicated equality leaves an artificial basic at zero — must still
     solve. *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  ignore (Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Eq 3.0);
  ignore (Lp.add_constraint m [ (2.0, x); (2.0, y) ] Lp.Eq 6.0);
  Lp.set_objective m Lp.Maximize [ (1.0, x) ];
  match Simplex.solve m with
  | Simplex.Optimal sol -> check_close 1e-9 "x" 3.0 (Simplex.value sol x)
  | _ -> Alcotest.fail "expected optimal"

(* A 4-node max-flow encoded by hand: s->a (3), s->b (2), a->t (2),
   b->t (3), a->b (10).  Max flow = 5: a->t carries 2, the rest of s->a
   rides a->b to t. *)
let test_simplex_max_flow () =
  let m = Lp.create () in
  let sa = Lp.add_var m ~ub:3.0 "sa" in
  let sb = Lp.add_var m ~ub:2.0 "sb" in
  let at = Lp.add_var m ~ub:2.0 "at" in
  let bt = Lp.add_var m ~ub:3.0 "bt" in
  let ab = Lp.add_var m ~ub:10.0 "ab" in
  (* Conservation at a and b. *)
  ignore (Lp.add_constraint m [ (1.0, sa); (-1.0, at); (-1.0, ab) ] Lp.Eq 0.0);
  ignore (Lp.add_constraint m [ (1.0, sb); (1.0, ab); (-1.0, bt) ] Lp.Eq 0.0);
  Lp.set_objective m Lp.Maximize [ (1.0, at); (1.0, bt) ];
  match Simplex.solve m with
  | Simplex.Optimal sol -> check_close 1e-9 "max flow" 5.0 sol.Simplex.objective
  | _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Simplex: duals                                                       *)
(* ------------------------------------------------------------------ *)

let test_duals_strong_duality () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  let c1 = Lp.add_constraint m [ (1.0, x) ] Lp.Le 4.0 in
  let c2 = Lp.add_constraint m [ (2.0, y) ] Lp.Le 12.0 in
  let c3 = Lp.add_constraint m [ (3.0, x); (2.0, y) ] Lp.Le 18.0 in
  Lp.set_objective m Lp.Maximize [ (3.0, x); (5.0, y) ];
  match Simplex.solve m with
  | Simplex.Optimal sol ->
    let dual_obj =
      (Simplex.dual sol c1 *. 4.0)
      +. (Simplex.dual sol c2 *. 12.0)
      +. (Simplex.dual sol c3 *. 18.0)
    in
    check_close 1e-9 "b·y = objective" sol.Simplex.objective dual_obj;
    (* Known duals for this textbook instance: (0, 3/2, 1). *)
    check_close 1e-9 "y1" 0.0 (Simplex.dual sol c1);
    check_close 1e-9 "y2" 1.5 (Simplex.dual sol c2);
    check_close 1e-9 "y3" 1.0 (Simplex.dual sol c3)
  | _ -> Alcotest.fail "expected optimal"

let test_duals_shadow_price () =
  (* Finite-difference check: dual ≈ d obj / d rhs. *)
  let solve_with rhs =
    let m = Lp.create () in
    let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
    let c1 = Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Le rhs in
    ignore (Lp.add_constraint m [ (1.0, x); (3.0, y) ] Lp.Le 12.0);
    Lp.set_objective m Lp.Maximize [ (2.0, x); (3.0, y) ];
    match Simplex.solve m with
    | Simplex.Optimal sol -> (sol.Simplex.objective, Simplex.dual sol c1)
    | _ -> Alcotest.fail "expected optimal"
  in
  let obj0, dual0 = solve_with 6.0 in
  let obj1, _ = solve_with 6.01 in
  check_close 1e-6 "shadow price" ((obj1 -. obj0) /. 0.01) dual0

let test_duals_min_ge () =
  (* Minimization with >= rows: shadow prices are non-negative
     (raising a covering requirement cannot cheapen the diet). *)
  let m = Lp.create () in
  let a = Lp.add_var m "a" and b = Lp.add_var m "b" in
  let c1 = Lp.add_constraint m [ (2.0, a); (1.0, b) ] Lp.Ge 8.0 in
  let c2 = Lp.add_constraint m [ (1.0, a); (2.0, b) ] Lp.Ge 8.0 in
  Lp.set_objective m Lp.Minimize [ (3.0, a); (2.0, b) ];
  match Simplex.solve m with
  | Simplex.Optimal sol ->
    Alcotest.(check bool) "dual1 >= 0" true (Simplex.dual sol c1 >= -1e-9);
    Alcotest.(check bool) "dual2 >= 0" true (Simplex.dual sol c2 >= -1e-9);
    let dual_obj = (Simplex.dual sol c1 *. 8.0) +. (Simplex.dual sol c2 *. 8.0) in
    check_close 1e-9 "strong duality" sol.Simplex.objective dual_obj
  | _ -> Alcotest.fail "expected optimal"

let test_feasible_checker () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:5.0 "x" in
  let y = Lp.add_var m "y" in
  ignore (Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Le 6.0);
  ignore (Lp.add_constraint m [ (1.0, y) ] Lp.Ge 1.0);
  ignore (x, y);
  Alcotest.(check bool) "feasible point" true (Simplex.feasible m [| 2.0; 3.0 |]);
  Alcotest.(check bool) "violates row" false (Simplex.feasible m [| 5.0; 3.0 |]);
  Alcotest.(check bool) "violates bound" false (Simplex.feasible m [| 6.0; 0.0 |]);
  Alcotest.(check bool) "violates ge" false (Simplex.feasible m [| 1.0; 0.0 |])

(* Random LPs: optimum must be feasible and dominate random feasible
   points; strong duality must hold. *)
let prop_simplex_optimality =
  QCheck.Test.make ~name:"simplex dominates sampled feasible points" ~count:60
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 1000) in
      let nv = 2 + Prete_util.Rng.int rng 4 in
      let nc = 2 + Prete_util.Rng.int rng 4 in
      let m = Lp.create () in
      let vars = Array.init nv (fun i -> Lp.add_var m ~ub:10.0 (Printf.sprintf "x%d" i)) in
      let rows =
        Array.init nc (fun _ ->
            let coefs = Array.init nv (fun _ -> Prete_util.Rng.uniform rng 0.0 3.0) in
            let rhs = Prete_util.Rng.uniform rng 1.0 20.0 in
            let terms = Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) coefs) in
            ignore (Lp.add_constraint m terms Lp.Le rhs);
            (coefs, rhs))
      in
      let c = Array.init nv (fun _ -> Prete_util.Rng.uniform rng (-2.0) 5.0) in
      Lp.set_objective m Lp.Maximize
        (Array.to_list (Array.mapi (fun i ci -> (ci, vars.(i))) c));
      match Simplex.solve m with
      | Simplex.Optimal sol ->
        let feas = Simplex.feasible m sol.Simplex.values in
        (* Sample feasible points by scaling random rays to fit. *)
        let dominated = ref true in
        for _ = 1 to 50 do
          let dir = Array.init nv (fun _ -> Prete_util.Rng.float rng) in
          let scale = ref 10.0 in
          Array.iter
            (fun (coefs, rhs) ->
              let dot = ref 0.0 in
              Array.iteri (fun i d -> dot := !dot +. (coefs.(i) *. d)) dir;
              if !dot > 1e-9 then scale := Float.min !scale (rhs /. !dot))
            rows;
          let x = Array.map (fun d -> Float.min 10.0 (d *. !scale)) dir in
          if Simplex.feasible m x then begin
            let v = ref 0.0 in
            Array.iteri (fun i ci -> v := !v +. (ci *. x.(i))) c;
            if !v > sol.Simplex.objective +. 1e-6 then dominated := false
          end
        done;
        feas && !dominated
      | Simplex.Unbounded -> false (* impossible: box-bounded *)
      | Simplex.Infeasible -> false (* impossible: 0 is feasible *))

let prop_simplex_strong_duality =
  QCheck.Test.make ~name:"strong duality on random LPs" ~count:60
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 5000) in
      let nv = 2 + Prete_util.Rng.int rng 3 in
      let nc = 2 + Prete_util.Rng.int rng 3 in
      let m = Lp.create () in
      (* No finite ubs so every row is a model constraint and b·y must
         equal the optimum exactly. *)
      let vars = Array.init nv (fun i -> Lp.add_var m (Printf.sprintf "x%d" i)) in
      let rhss = Array.make nc 0.0 in
      for k = 0 to nc - 1 do
        let terms =
          Array.to_list
            (Array.map (fun v -> (Prete_util.Rng.uniform rng 0.5 3.0, v)) vars)
        in
        let rhs = Prete_util.Rng.uniform rng 1.0 20.0 in
        rhss.(k) <- rhs;
        ignore (Lp.add_constraint m terms Lp.Le rhs)
      done;
      let c = Array.map (fun _ -> Prete_util.Rng.uniform rng 0.1 4.0) vars in
      Lp.set_objective m Lp.Maximize
        (Array.to_list (Array.mapi (fun i ci -> (ci, vars.(i))) c));
      match Simplex.solve m with
      | Simplex.Optimal sol ->
        let dual_obj = ref 0.0 in
        for k = 0 to nc - 1 do
          dual_obj := !dual_obj +. (Simplex.dual sol k *. rhss.(k))
        done;
        Float.abs (!dual_obj -. sol.Simplex.objective) < 1e-6
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* MIP                                                                  *)
(* ------------------------------------------------------------------ *)

let test_mip_knapsack () =
  (* max 10a + 13b + 7c, 3a + 4b + 2c <= 5, binary -> a=c=1 (17). *)
  let m = Lp.create () in
  let a = Lp.add_var m ~binary:true "a" in
  let b = Lp.add_var m ~binary:true "b" in
  let c = Lp.add_var m ~binary:true "c" in
  ignore (Lp.add_constraint m [ (3.0, a); (4.0, b); (2.0, c) ] Lp.Le 5.0);
  Lp.set_objective m Lp.Maximize [ (10.0, a); (13.0, b); (7.0, c) ];
  match Mip.solve m with
  | Mip.Optimal sol ->
    check_close 1e-9 "objective" 17.0 sol.Mip.objective;
    check_close 1e-9 "a" 1.0 (Mip.value sol a);
    check_close 1e-9 "b" 0.0 (Mip.value sol b);
    check_close 1e-9 "c" 1.0 (Mip.value sol c)
  | _ -> Alcotest.fail "expected optimal"

let test_mip_no_binaries_is_lp () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:7.0 "x" in
  Lp.set_objective m Lp.Maximize [ (1.0, x) ];
  match Mip.solve m with
  | Mip.Optimal sol ->
    check_close 1e-9 "objective" 7.0 sol.Mip.objective;
    Alcotest.(check int) "single node" 1 sol.Mip.nodes
  | _ -> Alcotest.fail "expected optimal"

let test_mip_infeasible () =
  let m = Lp.create () in
  let a = Lp.add_var m ~binary:true "a" in
  let b = Lp.add_var m ~binary:true "b" in
  ignore (Lp.add_constraint m [ (1.0, a); (1.0, b) ] Lp.Ge 3.0);
  Lp.set_objective m Lp.Minimize [ (1.0, a) ];
  match Mip.solve m with
  | Mip.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_mip_mixed () =
  (* Mixed binary/continuous: fixed-charge flavour.
     max 5x - 10y, x <= 4y, x <= 3, y binary -> y=1, x=3, obj 5. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:3.0 "x" in
  let y = Lp.add_var m ~binary:true "y" in
  ignore (Lp.add_constraint m [ (1.0, x); (-4.0, y) ] Lp.Le 0.0);
  Lp.set_objective m Lp.Maximize [ (5.0, x); (-10.0, y) ];
  match Mip.solve m with
  | Mip.Optimal sol ->
    check_close 1e-9 "objective" 5.0 sol.Mip.objective;
    check_close 1e-9 "y" 1.0 (Mip.value sol y);
    check_close 1e-9 "x" 3.0 (Mip.value sol x)
  | _ -> Alcotest.fail "expected optimal"

(* Exhaustive cross-check on random pure-binary problems. *)
let prop_mip_matches_enumeration =
  QCheck.Test.make ~name:"MIP matches exhaustive enumeration" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 9000) in
      let nv = 2 + Prete_util.Rng.int rng 4 in
      let nc = 1 + Prete_util.Rng.int rng 3 in
      let m = Lp.create () in
      let vars = Array.init nv (fun i -> Lp.add_var m ~binary:true (Printf.sprintf "b%d" i)) in
      let rows =
        Array.init nc (fun _ ->
            let coefs = Array.init nv (fun _ -> Prete_util.Rng.uniform rng 0.0 3.0) in
            let rhs = Prete_util.Rng.uniform rng 1.0 (float_of_int nv *. 1.5) in
            let terms = Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) coefs) in
            ignore (Lp.add_constraint m terms Lp.Le rhs);
            (coefs, rhs))
      in
      let c = Array.init nv (fun _ -> Prete_util.Rng.uniform rng (-3.0) 5.0) in
      Lp.set_objective m Lp.Maximize
        (Array.to_list (Array.mapi (fun i ci -> (ci, vars.(i))) c));
      (* Enumerate all 2^nv assignments. *)
      let best = ref neg_infinity in
      for mask = 0 to (1 lsl nv) - 1 do
        let x = Array.init nv (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
        let ok =
          Array.for_all
            (fun (coefs, rhs) ->
              let dot = ref 0.0 in
              Array.iteri (fun i d -> dot := !dot +. (coefs.(i) *. d)) x;
              !dot <= rhs +. 1e-9)
            rows
        in
        if ok then begin
          let v = ref 0.0 in
          Array.iteri (fun i ci -> v := !v +. (ci *. x.(i))) c;
          if !v > !best then best := !v
        end
      done;
      match Mip.solve m with
      | Mip.Optimal sol -> Float.abs (sol.Mip.objective -. !best) < 1e-6
      | Mip.Infeasible -> !best = neg_infinity
      | Mip.Unbounded | Mip.Node_limit _ -> false)

let prop_mip_solution_integral_and_feasible =
  QCheck.Test.make ~name:"MIP incumbents integral and feasible" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 13000) in
      let nv = 2 + Prete_util.Rng.int rng 3 in
      let m = Lp.create () in
      let bvars = Array.init nv (fun i -> Lp.add_var m ~binary:true (Printf.sprintf "b%d" i)) in
      let x = Lp.add_var m ~ub:4.0 "x" in
      let terms = Array.to_list (Array.map (fun v -> (1.0, v)) bvars) in
      ignore (Lp.add_constraint m ((0.5, x) :: terms) Lp.Le 2.5);
      Lp.set_objective m Lp.Maximize ((1.0, x) :: terms);
      match Mip.solve m with
      | Mip.Optimal sol ->
        Simplex.feasible m sol.Mip.values
        && Array.for_all
             (fun v ->
               let xv = Mip.value sol v in
               Float.abs (xv -. Float.round xv) < 1e-6)
             bvars
      | _ -> false)

(* Transportation problem with a known optimum: 2 sources (30, 70),
   3 sinks (20, 50, 30), costs [[8;6;10];[9;12;13]] -> optimum 1000
   (classic instance: x12=30 ... computed below by enumeration logic). *)
let test_simplex_transportation () =
  let m = Lp.create () in
  let supply = [| 30.0; 70.0 |] and demand = [| 20.0; 50.0; 30.0 |] in
  let cost = [| [| 8.0; 6.0; 10.0 |]; [| 9.0; 12.0; 13.0 |] |] in
  let x = Array.init 2 (fun i -> Array.init 3 (fun j -> Lp.add_var m (Printf.sprintf "x%d%d" i j))) in
  for i = 0 to 1 do
    ignore (Lp.add_constraint m (Array.to_list (Array.map (fun v -> (1.0, v)) x.(i))) Lp.Eq supply.(i))
  done;
  for j = 0 to 2 do
    ignore (Lp.add_constraint m [ (1.0, x.(0).(j)); (1.0, x.(1).(j)) ] Lp.Eq demand.(j))
  done;
  let obj = ref [] in
  for i = 0 to 1 do
    for j = 0 to 2 do
      obj := (cost.(i).(j), x.(i).(j)) :: !obj
    done
  done;
  Lp.set_objective m Lp.Minimize !obj;
  match Simplex.solve m with
  | Simplex.Optimal sol ->
    (* Verify against exhaustive corner search over the transportation
       polytope parametrized by (x00, x01): x02 = 30-x00-x01, row 2 by
       column balance. *)
    let best = ref infinity in
    for a = 0 to 20 do
      for b = 0 to 50 do
        let a = float_of_int a and b = float_of_int b in
        let c = 30.0 -. a -. b in
        if c >= 0.0 && c <= 30.0 then begin
          let d = 20.0 -. a and e = 50.0 -. b and f = 30.0 -. c in
          if d >= 0.0 && e >= 0.0 && f >= 0.0 then begin
            let v =
              (8.0 *. a) +. (6.0 *. b) +. (10.0 *. c) +. (9.0 *. d) +. (12.0 *. e)
              +. (13.0 *. f)
            in
            if v < !best then best := v
          end
        end
      done
    done;
    check_close 1e-6 "matches exhaustive optimum" !best sol.Simplex.objective
  | _ -> Alcotest.fail "expected optimal"

(* Complementary slackness: dual > 0 only on tight rows; primal > 0 only
   on zero-reduced-cost columns (checked indirectly through objective
   equality which subsumes it, plus explicit slackness on rows). *)
let prop_complementary_slackness =
  QCheck.Test.make ~name:"complementary slackness on rows" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 31000) in
      let nv = 2 + Prete_util.Rng.int rng 3 in
      let nc = 2 + Prete_util.Rng.int rng 3 in
      let m = Lp.create () in
      let vars = Array.init nv (fun i -> Lp.add_var m (Printf.sprintf "x%d" i)) in
      let rows =
        Array.init nc (fun _ ->
            let coefs = Array.init nv (fun _ -> Prete_util.Rng.uniform rng 0.5 3.0) in
            let rhs = Prete_util.Rng.uniform rng 2.0 15.0 in
            let terms = Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) coefs) in
            let idx = Lp.add_constraint m terms Lp.Le rhs in
            (idx, coefs, rhs))
      in
      let c = Array.init nv (fun _ -> Prete_util.Rng.uniform rng 0.5 4.0) in
      Lp.set_objective m Lp.Maximize
        (Array.to_list (Array.mapi (fun i ci -> (ci, vars.(i))) c));
      match Simplex.solve m with
      | Simplex.Optimal sol ->
        Array.for_all
          (fun (idx, coefs, rhs) ->
            let lhs = ref 0.0 in
            Array.iteri (fun i cf -> lhs := !lhs +. (cf *. sol.Simplex.values.(i))) coefs;
            let slack = rhs -. !lhs in
            (* y_i * slack_i = 0 *)
            Float.abs (Simplex.dual sol idx *. slack) < 1e-6)
          rows
      | _ -> false)

let test_simplex_iteration_limit () =
  (* Anytime semantics: a pathological pivot limit in Phase 2 returns the
     current feasible vertex flagged degraded instead of raising. *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  ignore (Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Le 10.0);
  Lp.set_objective m Lp.Maximize [ (1.0, x); (1.0, y) ];
  (match Simplex.solve ~max_iters:0 m with
  | Simplex.Optimal sol ->
    Alcotest.(check bool) "degraded" true sol.Simplex.degraded;
    Alcotest.(check bool) "feasible incumbent" true (Simplex.feasible m sol.Simplex.values)
  | _ -> Alcotest.fail "expected a degraded incumbent");
  (* Budget expiry in Phase 1 (a Ge row needs an artificial pivot) has no
     incumbent to return and raises Timeout.  Two variables keep the row
     out of presolve's singleton reduction, so Phase 1 actually runs
     under every engine. *)
  let m1 = Lp.create () in
  let z = Lp.add_var m1 "z" and w = Lp.add_var m1 "w" in
  ignore (Lp.add_constraint m1 [ (1.0, z); (1.0, w) ] Lp.Ge 5.0);
  Lp.set_objective m1 Lp.Minimize [ (1.0, z); (1.0, w) ];
  Alcotest.check_raises "phase 1 budget" Simplex.Timeout (fun () ->
      ignore (Simplex.solve ~max_iters:0 m1))

(* ------------------------------------------------------------------ *)
(* Warm starting: a warm basis must never change results, only pivot
   counts.  Three staleness regimes: identical model (the reinstalled
   basis is already optimal), moved rhs (the dual-repair path), moved
   costs (primal Phase 2 work from a still-feasible vertex). *)

let random_warm_instance seed =
  let rng = Prete_util.Rng.create (seed + 7000) in
  let nv = 2 + Prete_util.Rng.int rng 3 in
  let nc = 2 + Prete_util.Rng.int rng 3 in
  let coefs =
    Array.init nc (fun _ ->
        Array.init nv (fun _ -> Prete_util.Rng.uniform rng 0.2 3.0))
  in
  let rhs = Array.init nc (fun _ -> Prete_util.Rng.uniform rng 2.0 20.0) in
  let cost = Array.init nv (fun _ -> Prete_util.Rng.uniform rng 0.1 4.0) in
  let build ~rhs ~cost =
    let m = Lp.create () in
    let vars =
      Array.init nv (fun i -> Lp.add_var m ~ub:15.0 (Printf.sprintf "x%d" i))
    in
    Array.iteri
      (fun k row ->
        ignore
          (Lp.add_constraint m
             (Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) row))
             Lp.Le rhs.(k)))
      coefs;
    Lp.set_objective m Lp.Maximize
      (Array.to_list (Array.mapi (fun i ci -> (ci, vars.(i))) cost));
    m
  in
  (build, rhs, cost, rng)

let opt = function
  | Simplex.Optimal sol -> sol
  | _ -> Alcotest.fail "expected optimal"

let prop_warm_identical_model =
  QCheck.Test.make ~name:"warm re-solve of the same model is free" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let build, rhs, cost, _ = random_warm_instance seed in
      let cold = opt (Simplex.solve (build ~rhs ~cost)) in
      let warm = opt (Simplex.solve ~warm:cold.Simplex.basis (build ~rhs ~cost)) in
      Float.abs (warm.Simplex.objective -. cold.Simplex.objective) < 1e-9
      && warm.Simplex.warm_used && warm.Simplex.phase1_skipped
      && (not warm.Simplex.repaired)
      && warm.Simplex.iterations = 0)

let prop_warm_stale_rhs =
  QCheck.Test.make ~name:"warm from a stale basis after rhs moves" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let build, rhs, cost, rng = random_warm_instance seed in
      let stale = opt (Simplex.solve (build ~rhs ~cost)) in
      let rhs' =
        Array.map
          (fun r -> Float.max 0.5 (r +. Prete_util.Rng.uniform rng (-4.0) 4.0))
          rhs
      in
      let cold = opt (Simplex.solve (build ~rhs:rhs' ~cost)) in
      let warm =
        opt (Simplex.solve ~warm:stale.Simplex.basis (build ~rhs:rhs' ~cost))
      in
      Float.abs (warm.Simplex.objective -. cold.Simplex.objective) < 1e-7
      && warm.Simplex.warm_used
      && Simplex.feasible (build ~rhs:rhs' ~cost) warm.Simplex.values)

let prop_warm_stale_costs =
  QCheck.Test.make ~name:"warm from a stale basis after costs move" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let build, rhs, cost, rng = random_warm_instance seed in
      let stale = opt (Simplex.solve (build ~rhs ~cost)) in
      let cost' =
        Array.map (fun c -> c +. Prete_util.Rng.uniform rng (-1.0) 2.0) cost
      in
      let cold = opt (Simplex.solve (build ~rhs ~cost:cost')) in
      let warm =
        opt (Simplex.solve ~warm:stale.Simplex.basis (build ~rhs ~cost:cost'))
      in
      (* The stale vertex stays primal feasible when only costs move, so
         Phase 1 must be skipped outright. *)
      Float.abs (warm.Simplex.objective -. cold.Simplex.objective) < 1e-7
      && warm.Simplex.warm_used && warm.Simplex.phase1_skipped)

let prop_warm_anytime_monotone =
  QCheck.Test.make
    ~name:"degraded warm incumbents are feasible and improve with budget"
    ~count:40
    QCheck.(small_int)
    (fun seed ->
      (* Deadline-regression guard: under a tightening pivot budget the
         solver must still return a feasible incumbent (never raise, never
         go infeasible) and a larger budget must never yield a worse
         objective than a smaller one. *)
      let build, rhs, cost, rng = random_warm_instance seed in
      let stale = opt (Simplex.solve (build ~rhs ~cost)) in
      let cost' =
        Array.map (fun c -> c +. Prete_util.Rng.uniform rng 0.0 3.0) cost
      in
      let m () = build ~rhs ~cost:cost' in
      let prev = ref neg_infinity in
      let ok = ref true in
      List.iter
        (fun budget ->
          let sol =
            opt (Simplex.solve ~warm:stale.Simplex.basis ~max_iters:budget (m ()))
          in
          if not (Simplex.feasible (m ()) sol.Simplex.values) then ok := false;
          if sol.Simplex.objective < !prev -. 1e-9 then ok := false;
          prev := sol.Simplex.objective)
        [ 0; 1; 2; 4; 8; 1000 ];
      let full = opt (Simplex.solve (m ())) in
      (* The largest budget reaches the true optimum. *)
      !ok && Float.abs (!prev -. full.Simplex.objective) < 1e-7)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "prete_lp"
    [
      ( "model",
        [
          Alcotest.test_case "counts and names" `Quick test_model_counts;
          Alcotest.test_case "duplicate terms merge" `Quick test_model_duplicate_terms_merge;
          Alcotest.test_case "binary bounds" `Quick test_model_binary_bounds;
          Alcotest.test_case "invalid bounds" `Quick test_model_invalid_bounds;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "dantzig max" `Quick test_simplex_dantzig;
          Alcotest.test_case "diet min" `Quick test_simplex_diet;
          Alcotest.test_case "equality rows" `Quick test_simplex_equality;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "bound shifting" `Quick test_simplex_bounds_shift;
          Alcotest.test_case "fixed variable" `Quick test_simplex_fixed_var;
          Alcotest.test_case "negative rhs flip" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate vertex" `Quick test_simplex_degenerate;
          Alcotest.test_case "redundant equalities" `Quick test_simplex_redundant_equalities;
          Alcotest.test_case "max flow" `Quick test_simplex_max_flow;
          Alcotest.test_case "transportation" `Quick test_simplex_transportation;
          Alcotest.test_case "iteration limit" `Quick test_simplex_iteration_limit;
        ] );
      ( "duals",
        [
          Alcotest.test_case "strong duality (known)" `Quick test_duals_strong_duality;
          Alcotest.test_case "shadow price" `Quick test_duals_shadow_price;
          Alcotest.test_case "min with >= rows" `Quick test_duals_min_ge;
          Alcotest.test_case "feasibility checker" `Quick test_feasible_checker;
        ] );
      ( "simplex.props",
        qsuite
          [ prop_simplex_optimality; prop_simplex_strong_duality; prop_complementary_slackness ] );
      ( "simplex.warm",
        qsuite
          [
            prop_warm_identical_model;
            prop_warm_stale_rhs;
            prop_warm_stale_costs;
            prop_warm_anytime_monotone;
          ] );
      ( "mip",
        [
          Alcotest.test_case "knapsack" `Quick test_mip_knapsack;
          Alcotest.test_case "no binaries = LP" `Quick test_mip_no_binaries_is_lp;
          Alcotest.test_case "infeasible" `Quick test_mip_infeasible;
          Alcotest.test_case "mixed integer" `Quick test_mip_mixed;
        ] );
      ( "mip.props",
        qsuite [ prop_mip_matches_enumeration; prop_mip_solution_integral_and_feasible ] );
    ]
