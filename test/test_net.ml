(* Tests for prete_net: topology construction (Table 3 statistics),
   routing algorithms, tunnel sets and traffic matrices. *)

open Prete_net

let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Topology                                                             *)
(* ------------------------------------------------------------------ *)

let test_table3_b4 () =
  let t = Topology.b4 () in
  Alcotest.(check int) "fibers" 19 (Topology.num_fibers t);
  Alcotest.(check int) "undirected IP links" 52 (Topology.num_links t / 2);
  Alcotest.(check int) "nodes" 12 t.Topology.num_nodes

let test_table3_ibm () =
  let t = Topology.ibm () in
  Alcotest.(check int) "fibers" 23 (Topology.num_fibers t);
  Alcotest.(check int) "undirected IP links" 85 (Topology.num_links t / 2);
  Alcotest.(check int) "nodes" 18 t.Topology.num_nodes

let test_table3_twan () =
  let t = Topology.twan () in
  (* Confidential topology: only O(50) fibers / O(100) links. *)
  Alcotest.(check bool) "O(50) fibers" true
    (Topology.num_fibers t >= 40 && Topology.num_fibers t <= 80);
  Alcotest.(check bool) "O(100) links" true
    (Topology.num_links t / 2 >= 80 && Topology.num_links t / 2 <= 150)

let test_topology_deterministic () =
  let a = Topology.b4 () and b = Topology.b4 () in
  Alcotest.(check bool) "structurally equal" true
    (a.Topology.fibers = b.Topology.fibers && a.Topology.links = b.Topology.links)

let test_topology_by_name () =
  Alcotest.(check string) "b4" "B4" (Topology.by_name "b4").Topology.name;
  Alcotest.check_raises "unknown"
    (Invalid_argument
       "Topology.by_name: unknown topology nope (known: IBM, B4, TWAN, \
        Abilene, SURFnet, grid<K>, wan<SITES>, wan<SITES>x<SEED>)")
    (fun () -> ignore (Topology.by_name "nope"))

let test_links_directed_pairs () =
  (* Every topology's links come in opposite directed pairs. *)
  List.iter
    (fun t ->
      let links = t.Topology.links in
      Alcotest.(check bool)
        (t.Topology.name ^ " has reverse for every link")
        true
        (Array.for_all
           (fun (l : Topology.link) ->
             Array.exists
               (fun (r : Topology.link) ->
                 r.Topology.src = l.Topology.dst
                 && r.Topology.dst = l.Topology.src
                 && r.Topology.fibers = l.Topology.fibers)
               links)
           links))
    (Topology.all ())

let test_fiber_link_consistency () =
  let t = Topology.ibm () in
  (* links_on_fiber inverts link.fibers. *)
  Array.iter
    (fun (l : Topology.link) ->
      List.iter
        (fun f ->
          Alcotest.(check bool) "link listed on its fiber" true
            (List.mem l.Topology.lid (Topology.links_lost_on_cut t f)))
        l.Topology.fibers)
    t.Topology.links

let test_cut_capacity_positive () =
  let t = Topology.b4 () in
  for f = 0 to Topology.num_fibers t - 1 do
    Alcotest.(check bool) "cut loses capacity" true
      (Topology.capacity_lost_on_cut t f >= 2000.0)
    (* at least the base 1000 Gbps pair *)
  done

let test_cut_capacity_range () =
  (* Fig. 1b shape: heterogeneous losses, the biggest cuts losing multiple
     Tbps. *)
  let t = Topology.ibm () in
  let losses =
    Array.init (Topology.num_fibers t) (fun f -> Topology.capacity_lost_on_cut t f)
  in
  let lo, hi = Prete_util.Stats.min_max losses in
  Alcotest.(check bool) "heterogeneous" true (hi > 2.0 *. lo);
  Alcotest.(check bool) "multi-Tbps max" true (hi >= 4000.0)

let test_make_validation () =
  Alcotest.check_raises "bad fiber endpoint"
    (Invalid_argument "Topology.make: bad fiber endpoints") (fun () ->
      ignore
        (Topology.make ~name:"x" ~node_names:[| "a"; "b" |]
           ~fibers:[| (0, 2, 100.0) |] ~links:[||]));
  Alcotest.check_raises "bad fiber ref"
    (Invalid_argument "Topology.make: bad fiber reference") (fun () ->
      ignore
        (Topology.make ~name:"x" ~node_names:[| "a"; "b" |]
           ~fibers:[| (0, 1, 100.0) |]
           ~links:[| (0, 1, 10.0, [ 3 ]) |]))

(* ------------------------------------------------------------------ *)
(* Routing                                                              *)
(* ------------------------------------------------------------------ *)

(* A small handmade topology with known paths: square with diagonal.
   Nodes 0-3; fibers: 0-1, 1-2, 2-3, 3-0, 0-2.  One link pair per fiber. *)
let square () =
  let fibers = [| (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0); (3, 0, 100.0); (0, 2, 500.0) |] in
  let links =
    Array.concat
      [
        Array.of_list
          (List.concat_map
             (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
             [ (0, (0, 1)); (1, (1, 2)); (2, (2, 3)); (3, (3, 0)); (4, (0, 2)) ]);
      ]
  in
  Topology.make ~name:"square" ~node_names:[| "n0"; "n1"; "n2"; "n3" |] ~fibers ~links

let hops (l : Topology.link) = ignore l; 1.0

let test_dijkstra_direct () =
  let t = square () in
  match Routing.shortest_path t ~weight:hops ~src:0 ~dst:2 () with
  | Some p ->
    Alcotest.(check int) "one hop via diagonal" 1 (List.length p);
    Alcotest.(check bool) "valid" true (Routing.path_valid t ~src:0 ~dst:2 p)
  | None -> Alcotest.fail "expected a path"

let test_dijkstra_forbidden () =
  let t = square () in
  (* Forbid the diagonal fiber's links: must take 2 hops. *)
  let forbidden_links lid = List.mem 4 (Topology.link t lid).Topology.fibers in
  match Routing.shortest_path t ~weight:hops ~forbidden_links ~src:0 ~dst:2 () with
  | Some p -> Alcotest.(check int) "two hops" 2 (List.length p)
  | None -> Alcotest.fail "expected a path"

let test_dijkstra_disconnected () =
  let t = square () in
  let forbidden_nodes v = v = 1 || v = 3 in
  let forbidden_links lid = List.mem 4 (Topology.link t lid).Topology.fibers in
  Alcotest.(check bool) "no path" true
    (Routing.shortest_path t ~weight:hops ~forbidden_links ~forbidden_nodes ~src:0
       ~dst:2 ()
    = None)

let test_yen_enumerates () =
  let t = square () in
  let paths = Routing.k_shortest t ~weight:hops ~k:3 ~src:0 ~dst:2 () in
  Alcotest.(check int) "three loopless paths" 3 (List.length paths);
  (* Ascending length: 1 hop, then two 2-hop paths. *)
  (match paths with
  | [ a; b; c ] ->
    Alcotest.(check int) "first" 1 (List.length a);
    Alcotest.(check int) "second" 2 (List.length b);
    Alcotest.(check int) "third" 2 (List.length c)
  | _ -> Alcotest.fail "expected 3 paths");
  List.iter
    (fun p ->
      Alcotest.(check bool) "valid loopless" true (Routing.path_valid t ~src:0 ~dst:2 p))
    paths

let test_yen_exhausts () =
  let t = square () in
  let paths = Routing.k_shortest t ~weight:hops ~k:10 ~src:0 ~dst:2 () in
  (* 0-2, 0-1-2, 0-3-2 and nothing else loopless. *)
  Alcotest.(check int) "exactly three exist" 3 (List.length paths);
  (* All distinct. *)
  Alcotest.(check int) "distinct" 3
    (List.length (List.sort_uniq compare paths))

let test_fiber_disjoint () =
  let t = square () in
  let paths = Routing.fiber_disjoint t ~weight:hops ~k:3 ~src:0 ~dst:2 () in
  Alcotest.(check int) "three disjoint routes" 3 (List.length paths);
  (* Pairwise fiber-disjoint. *)
  let fiber_sets = List.map (fun p -> Routing.path_fibers t p) paths in
  List.iteri
    (fun i fs1 ->
      List.iteri
        (fun j fs2 ->
          if i < j then
            Alcotest.(check bool) "disjoint" true
              (not (List.exists (fun f -> List.mem f fs2) fs1)))
        fiber_sets)
    fiber_sets

let test_path_helpers () =
  let t = square () in
  match Routing.shortest_path t ~weight:hops ~src:0 ~dst:3 () with
  | None -> Alcotest.fail "expected path"
  | Some p ->
    let nodes = Routing.path_nodes t p in
    Alcotest.(check (list int)) "nodes" [ 0; 3 ] nodes;
    Alcotest.(check bool) "uses fiber 3" true (Routing.uses_fiber t p 3);
    check_close 1e-9 "length" 100.0 (Routing.path_length_km t p)

let test_b4_all_pairs_connected () =
  let t = Topology.b4 () in
  let n = t.Topology.num_nodes in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then
        Alcotest.(check bool)
          (Printf.sprintf "path %d->%d" s d)
          true
          (Routing.shortest_path t ~src:s ~dst:d () <> None)
    done
  done

let prop_yen_sorted =
  QCheck.Test.make ~name:"yen paths sorted by cost" ~count:30
    QCheck.(pair small_nat small_nat)
    (fun (s, d) ->
      let t = Topology.ibm () in
      let n = t.Topology.num_nodes in
      let s = s mod n and d = d mod n in
      QCheck.assume (s <> d);
      let paths = Routing.k_shortest t ~k:4 ~src:s ~dst:d () in
      let costs =
        List.map
          (fun p ->
            List.fold_left
              (fun acc lid ->
                acc +. 50.0
                +. List.fold_left
                     (fun a f -> a +. (Topology.fiber t f).Topology.length_km)
                     0.0
                     (Topology.link t lid).Topology.fibers)
              0.0 p)
          paths
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && sorted rest
        | _ -> true
      in
      paths <> [] && sorted costs)

let prop_paths_loopless =
  QCheck.Test.make ~name:"yen paths valid and loopless" ~count:30
    QCheck.(pair small_nat small_nat)
    (fun (s, d) ->
      let t = Topology.b4 () in
      let n = t.Topology.num_nodes in
      let s = s mod n and d = d mod n in
      QCheck.assume (s <> d);
      let paths = Routing.k_shortest t ~k:5 ~src:s ~dst:d () in
      List.for_all (fun p -> Routing.path_valid t ~src:s ~dst:d p) paths)

(* ------------------------------------------------------------------ *)
(* Tunnels                                                              *)
(* ------------------------------------------------------------------ *)

let test_tunnels_table3_counts () =
  let topo = Topology.b4 () in
  let traffic = Traffic.generate topo in
  let ts = Tunnels.build topo traffic.Traffic.pairs in
  Alcotest.(check int) "52 flows" 52 (Array.length ts.Tunnels.flows);
  (* 4 tunnels per flow = 208 (Table 3), allowing a few flows with fewer
     distinct paths. *)
  let n = Array.length ts.Tunnels.tunnels in
  Alcotest.(check bool) (Printf.sprintf "~208 tunnels (%d)" n) true (n >= 190 && n <= 220)

let test_tunnels_belong_to_flows () =
  let topo = Topology.b4 () in
  let traffic = Traffic.generate topo in
  let ts = Tunnels.build topo traffic.Traffic.pairs in
  Array.iter
    (fun (tn : Tunnels.tunnel) ->
      let f = ts.Tunnels.flows.(tn.Tunnels.owner) in
      Alcotest.(check bool) "tunnel connects its flow endpoints" true
        (Routing.path_valid topo ~src:f.Tunnels.src ~dst:f.Tunnels.dst tn.Tunnels.links))
    ts.Tunnels.tunnels

let test_tunnels_survive_single_cut () =
  (* §4.2: at least one residual tunnel per flow under each single-fiber
     failure scenario (where the remaining graph allows one). *)
  let topo = Topology.b4 () in
  let traffic = Traffic.generate topo in
  let ts = Tunnels.build topo traffic.Traffic.pairs in
  let violations = ref 0 in
  Array.iter
    (fun (f : Tunnels.flow) ->
      for fid = 0 to Topology.num_fibers topo - 1 do
        let surviving =
          Tunnels.surviving_tunnels ts f.Tunnels.flow_id ~failed_fibers:[ fid ]
        in
        if surviving = [] then begin
          (* Only acceptable when the cut disconnects the pair. *)
          let forbidden_links lid =
            List.mem fid (Topology.link topo lid).Topology.fibers
          in
          match
            Routing.shortest_path topo ~forbidden_links ~src:f.Tunnels.src
              ~dst:f.Tunnels.dst ()
          with
          | Some _ -> incr violations
          | None -> ()
        end
      done)
    ts.Tunnels.flows;
  Alcotest.(check int) "no avoidable black holes" 0 !violations

let test_affected_fraction_b4 () =
  (* Fig. 1c: on B4 a large share of flows is touched by a single cut. *)
  let topo = Topology.b4 () in
  let traffic = Traffic.generate topo in
  let ts = Tunnels.build topo traffic.Traffic.pairs in
  let fractions =
    Array.init (Topology.num_fibers topo) (fun f ->
        fst (Tunnels.affected_fraction ts f))
  in
  let avg = Prete_util.Stats.mean fractions in
  Alcotest.(check bool)
    (Printf.sprintf "avg affected flow share %.2f in [0.1, 0.6]" avg)
    true
    (avg >= 0.1 && avg <= 0.6)

let test_tunnel_survives () =
  let topo = square () in
  let ts = Tunnels.build topo [ (0, 2) ] in
  let tn = List.hd (Tunnels.tunnels_of_flow ts 0) in
  let its_fibers = Routing.path_fibers topo tn.Tunnels.links in
  Alcotest.(check bool) "dies with its fiber" false
    (Tunnels.tunnel_survives ts tn ~failed_fibers:its_fibers);
  Alcotest.(check bool) "survives empty scenario" true
    (Tunnels.tunnel_survives ts tn ~failed_fibers:[])

(* ------------------------------------------------------------------ *)
(* Traffic                                                              *)
(* ------------------------------------------------------------------ *)

let test_traffic_sizes () =
  let topo = Topology.ibm () in
  let tr = Traffic.generate topo in
  Alcotest.(check int) "85 flows (Table 3)" 85 (List.length tr.Traffic.pairs);
  Alcotest.(check int) "24 matrices (Table 3)" 24 (Array.length tr.Traffic.matrices)

let test_traffic_positive () =
  let topo = Topology.b4 () in
  let tr = Traffic.generate topo in
  Array.iter
    (fun row -> Array.iter (fun d -> Alcotest.(check bool) "positive" true (d > 0.0)) row)
    tr.Traffic.matrices

let test_traffic_scaling_linear () =
  let topo = Topology.b4 () in
  let tr = Traffic.generate topo in
  let d1 = Traffic.total tr ~scale:1.0 ~epoch:0 in
  let d2 = Traffic.total tr ~scale:2.0 ~epoch:0 in
  check_close 1e-6 "linear in scale" (2.0 *. d1) d2

let test_traffic_diurnal () =
  check_close 1e-9 "peak at 21h" 1.0 (Traffic.diurnal_multiplier 21);
  check_close 1e-9 "trough at 9h" 0.6 (Traffic.diurnal_multiplier 9);
  for h = 0 to 23 do
    let m = Traffic.diurnal_multiplier h in
    Alcotest.(check bool) "bounded" true (m >= 0.6 -. 1e-9 && m <= 1.0 +. 1e-9)
  done

let test_traffic_calibration () =
  (* At scale 1, shortest-path routing should hit exactly the target
     utilization on the busiest link. *)
  let topo = Topology.b4 () in
  let tr = Traffic.generate ~utilization:0.35 topo in
  let link_load = Array.make (Topology.num_links topo) 0.0 in
  List.iteri
    (fun i (s, d) ->
      match Routing.shortest_path topo ~src:s ~dst:d () with
      | None -> Alcotest.fail "disconnected"
      | Some p ->
        List.iter
          (fun lid -> link_load.(lid) <- link_load.(lid) +. tr.Traffic.base.(i))
          p)
    tr.Traffic.pairs;
  let worst = ref 0.0 in
  Array.iteri
    (fun lid load ->
      let u = load /. (Topology.link topo lid).Topology.capacity in
      if u > !worst then worst := u)
    link_load;
  check_close 1e-6 "busiest link at target" 0.35 !worst

(* ------------------------------------------------------------------ *)
(* Topology_io                                                          *)
(* ------------------------------------------------------------------ *)

let test_io_roundtrip () =
  List.iter
    (fun t ->
      let t' = Topology_io.of_string (Topology_io.to_string t) in
      Alcotest.(check string) "name" t.Topology.name t'.Topology.name;
      Alcotest.(check int) "nodes" t.Topology.num_nodes t'.Topology.num_nodes;
      Alcotest.(check bool) "fibers equal" true (t.Topology.fibers = t'.Topology.fibers);
      Alcotest.(check bool) "links equal" true (t.Topology.links = t'.Topology.links))
    (Topology.all ())

let test_io_parses_handwritten () =
  let text =
    "# a triangle\n\
     topology tri\n\
     node a\n\
     node b\n\
     node c\n\
     fiber a b 100\n\
     fiber b c 200  # inline comment\n\
     link a b 400 0\n\
     link b a 400 0\n\
     link a c 100 0 1\n"
  in
  let t = Topology_io.of_string text in
  Alcotest.(check string) "name" "tri" t.Topology.name;
  Alcotest.(check int) "3 nodes" 3 t.Topology.num_nodes;
  Alcotest.(check int) "2 fibers" 2 (Topology.num_fibers t);
  Alcotest.(check int) "3 links" 3 (Topology.num_links t);
  (* The express link rides both fibers. *)
  Alcotest.(check (list int)) "express fibers" [ 0; 1 ] (Topology.link t 2).Topology.fibers

let test_io_errors () =
  let expect_line n text =
    try
      ignore (Topology_io.of_string text);
      Alcotest.fail "expected Parse_error"
    with Topology_io.Parse_error (line, _) -> Alcotest.(check int) "line" n line
  in
  expect_line 2 "topology x\nnode a\u{0020}b c\n";
  expect_line 3 "topology x\nnode a\nfiber a zz 10\n";
  expect_line 4 "topology x\nnode a\nnode b\nlink a b 10 7\n";
  expect_line 0 "node a\n";
  expect_line 2 "topology x\ntopology y\n" |> ignore

let test_io_file_roundtrip () =
  let t = Topology.b4 () in
  let path = Filename.temp_file "prete_topo" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topology_io.save t path;
      let t' = Topology_io.load path in
      Alcotest.(check bool) "file round trip" true (t.Topology.links = t'.Topology.links))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "prete_net"
    [
      ( "topology",
        [
          Alcotest.test_case "Table 3: B4" `Quick test_table3_b4;
          Alcotest.test_case "Table 3: IBM" `Quick test_table3_ibm;
          Alcotest.test_case "Table 3: TWAN" `Quick test_table3_twan;
          Alcotest.test_case "deterministic" `Quick test_topology_deterministic;
          Alcotest.test_case "by_name" `Quick test_topology_by_name;
          Alcotest.test_case "directed pairs" `Quick test_links_directed_pairs;
          Alcotest.test_case "fiber/link consistency" `Quick test_fiber_link_consistency;
          Alcotest.test_case "cut capacity positive" `Quick test_cut_capacity_positive;
          Alcotest.test_case "cut capacity range" `Quick test_cut_capacity_range;
          Alcotest.test_case "constructor validation" `Quick test_make_validation;
        ] );
      ( "routing",
        [
          Alcotest.test_case "dijkstra direct" `Quick test_dijkstra_direct;
          Alcotest.test_case "dijkstra forbidden" `Quick test_dijkstra_forbidden;
          Alcotest.test_case "dijkstra disconnected" `Quick test_dijkstra_disconnected;
          Alcotest.test_case "yen enumerates" `Quick test_yen_enumerates;
          Alcotest.test_case "yen exhausts" `Quick test_yen_exhausts;
          Alcotest.test_case "fiber disjoint" `Quick test_fiber_disjoint;
          Alcotest.test_case "path helpers" `Quick test_path_helpers;
          Alcotest.test_case "B4 connected" `Quick test_b4_all_pairs_connected;
        ] );
      ("routing.props", qsuite [ prop_yen_sorted; prop_paths_loopless ]);
      ( "tunnels",
        [
          Alcotest.test_case "Table 3 counts" `Quick test_tunnels_table3_counts;
          Alcotest.test_case "tunnels belong to flows" `Quick test_tunnels_belong_to_flows;
          Alcotest.test_case "survive single cuts" `Quick test_tunnels_survive_single_cut;
          Alcotest.test_case "Fig 1c affected fraction" `Quick test_affected_fraction_b4;
          Alcotest.test_case "tunnel_survives" `Quick test_tunnel_survives;
        ] );
      ( "topology_io",
        [
          Alcotest.test_case "round trip (built-ins)" `Quick test_io_roundtrip;
          Alcotest.test_case "handwritten file" `Quick test_io_parses_handwritten;
          Alcotest.test_case "parse errors" `Quick test_io_errors;
          Alcotest.test_case "file round trip" `Quick test_io_file_roundtrip;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "Table 3 sizes" `Quick test_traffic_sizes;
          Alcotest.test_case "positive demands" `Quick test_traffic_positive;
          Alcotest.test_case "linear scaling" `Quick test_traffic_scaling_linear;
          Alcotest.test_case "diurnal profile" `Quick test_traffic_diurnal;
          Alcotest.test_case "calibration" `Quick test_traffic_calibration;
        ] );
    ]
