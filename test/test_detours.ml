(* Tests for the localized fast-recovery tier: precomputed per-fiber
   detours (Prete_net.Detours), the Resilience Detour rung, and the
   determinism contract of the detour-armed streaming runtime. *)

open Prete
open Prete_net

let square () =
  let fibers =
    [| (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0); (3, 0, 100.0); (0, 2, 500.0) |]
  in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (1, 2)); (2, (2, 3)); (3, (3, 0)); (4, (0, 2)) ])
  in
  Topology.make ~name:"square" ~node_names:[| "n0"; "n1"; "n2"; "n3" |] ~fibers ~links

let fixture () =
  let topo = square () in
  let ts = Tunnels.build topo [ (0, 2); (1, 3) ] in
  (topo, ts)

let entry_key (e : Detours.entry) =
  (e.Detours.e_tunnel, e.Detours.e_detour, e.Detours.e_links, e.Detours.e_bottleneck)

let table_key dt fb =
  Option.map
    (fun pf ->
      ( List.map entry_key pf.Detours.pf_entries,
        pf.Detours.pf_flows,
        Array.map (fun t -> t.Tunnels.links) pf.Detours.pf_ts.Tunnels.tunnels ))
    (Detours.for_fiber dt fb)

(* ------------------------------------------------------------------ *)
(* Table construction                                                   *)
(* ------------------------------------------------------------------ *)

let test_build_tables_avoid_their_fiber () =
  let topo, ts = fixture () in
  let dt = Detours.build ts in
  let nf = Topology.num_fibers topo in
  let some = ref 0 in
  for fb = 0 to nf - 1 do
    match Detours.for_fiber dt fb with
    | None -> ()
    | Some pf ->
      incr some;
      Alcotest.(check int) "table fiber" fb pf.Detours.pf_fiber;
      Alcotest.(check bool) "has entries" true (pf.Detours.pf_entries <> []);
      let last = ref (-1) in
      List.iter
        (fun (e : Detours.entry) ->
          Alcotest.(check bool) "entries ascend by tunnel id" true
            (e.Detours.e_tunnel > !last);
          last := e.Detours.e_tunnel;
          Alcotest.(check bool) "base tunnel rides the fiber" true
            (Routing.uses_fiber topo
               ts.Tunnels.tunnels.(e.Detours.e_tunnel).Tunnels.links fb);
          Alcotest.(check bool) "detour avoids the fiber" false
            (Routing.uses_fiber topo e.Detours.e_links fb);
          Alcotest.(check bool) "positive bottleneck" true
            (e.Detours.e_bottleneck > 0.0);
          (* The extended set carries the detour under the same owner,
             endpoint-valid. *)
          let base = ts.Tunnels.tunnels.(e.Detours.e_tunnel) in
          let det = pf.Detours.pf_ts.Tunnels.tunnels.(e.Detours.e_detour) in
          Alcotest.(check int) "same owner" base.Tunnels.owner det.Tunnels.owner;
          let f = pf.Detours.pf_ts.Tunnels.flows.(base.Tunnels.owner) in
          Alcotest.(check bool) "detour connects the flow endpoints" true
            (Routing.path_valid topo ~src:f.Tunnels.src ~dst:f.Tunnels.dst
               det.Tunnels.links))
        pf.Detours.pf_entries;
      (* Base tunnels are untouched in the extended set. *)
      let nt = Array.length ts.Tunnels.tunnels in
      Alcotest.(check bool) "extended set grows" true
        (Array.length pf.Detours.pf_ts.Tunnels.tunnels > nt);
      for i = 0 to nt - 1 do
        Alcotest.(check bool) "base tunnel preserved" true
          (pf.Detours.pf_ts.Tunnels.tunnels.(i).Tunnels.links
          = ts.Tunnels.tunnels.(i).Tunnels.links)
      done;
      Alcotest.(check (list int)) "affected flows match the table"
        pf.Detours.pf_flows
        (Detours.affected_flows dt fb)
  done;
  Alcotest.(check bool) "at least one fiber has a table" true (!some > 0)

let test_build_deterministic_and_rebuild_identical () =
  let topo, ts = fixture () in
  let a = Detours.build ts in
  let b = Detours.build ts in
  let r = Detours.rebuild a ts in
  for fb = 0 to Topology.num_fibers topo - 1 do
    Alcotest.(check bool) "two builds agree" true (table_key a fb = table_key b fb);
    Alcotest.(check bool) "rebuild structurally identical" true
      (table_key a fb = table_key r fb)
  done

(* ------------------------------------------------------------------ *)
(* Splice                                                               *)
(* ------------------------------------------------------------------ *)

let loads topo (ts : Tunnels.t) alloc =
  let n = Topology.num_links topo in
  let load = Array.make n 0.0 in
  Array.iteri
    (fun tid t ->
      List.iter (fun l -> load.(l) <- load.(l) +. alloc.(tid)) t.Tunnels.links)
    ts.Tunnels.tunnels;
  load

let test_splice_moves_load_and_stays_feasible () =
  let topo, ts = fixture () in
  let dt = Detours.build ts in
  let demands = [| 5.0; 5.0 |] in
  let installed = Resilience.equal_split ts ~demands in
  let alloc = installed.Availability.p_alloc in
  let fb =
    (* First fiber with a table. *)
    let rec find i =
      if Detours.for_fiber dt i <> None then i else find (i + 1)
    in
    find 0
  in
  match Detours.splice dt ~fiber:fb ~alloc with
  | None -> Alcotest.fail "splice returned None on a bypassable fiber"
  | Some (ts', patched, rerouted, flows) ->
    Alcotest.(check bool) "rerouted some tunnels" true (rerouted > 0);
    Alcotest.(check bool) "patched some flows" true (flows > 0);
    Alcotest.(check int) "patched alloc indexed by the extended set"
      (Array.length ts'.Tunnels.tunnels)
      (Array.length patched);
    (* Evacuation semantics: totals never increase (the unreroutable
       remainder of a broken tunnel is dropped, not left on a dead
       path), and each flow's surviving allocation — tunnels avoiding
       the fiber, detours included — never decreases. *)
    let total (tset : Tunnels.t) a f =
      List.fold_left (fun acc tid -> acc +. a.(tid)) 0.0 tset.Tunnels.of_flow.(f)
    in
    let surviving (tset : Tunnels.t) a f =
      List.fold_left
        (fun acc tid ->
          if Routing.uses_fiber topo tset.Tunnels.tunnels.(tid).Tunnels.links fb
          then acc
          else acc +. a.(tid))
        0.0 tset.Tunnels.of_flow.(f)
    in
    Array.iteri
      (fun f _ ->
        Alcotest.(check bool)
          (Printf.sprintf "flow %d total never increases" f)
          true
          (total ts' patched f <= total ts alloc f +. 1e-9);
        Alcotest.(check bool)
          (Printf.sprintf "flow %d surviving allocation never decreases" f)
          true
          (surviving ts' patched f >= surviving ts alloc f -. 1e-9))
      ts.Tunnels.flows;
    (* No link oversubscribed (the installed plan wasn't either). *)
    let load = loads topo ts' patched in
    Array.iteri
      (fun l v ->
        Alcotest.(check bool)
          (Printf.sprintf "link %d within capacity" l)
          true
          (v <= (Topology.link topo l).Topology.capacity +. 1e-9))
      load;
    Alcotest.(check bool) "patched plan validates" true
      (Resilience.plan_feasible ts'
         {
           Availability.p_alloc = patched;
           p_ts = ts';
           p_admitted = installed.Availability.p_admitted;
           p_degraded = true;
         });
    (* Determinism: same inputs, same patch. *)
    (match Detours.splice dt ~fiber:fb ~alloc with
    | Some (_, patched2, _, _) ->
      Alcotest.(check bool) "splice is a pure function" true (patched = patched2)
    | None -> Alcotest.fail "second splice disagreed")

let test_splice_rejects_mismatched_alloc () =
  let _, ts = fixture () in
  let dt = Detours.build ts in
  Alcotest.(check bool) "length mismatch rejected" true
    (Detours.splice dt ~fiber:0 ~alloc:[| 1.0 |] = None)

let test_latency_model_bounded () =
  let topo, ts = fixture () in
  let dt = Detours.build ts in
  let bound = Detours.latency_bound_s dt in
  Alcotest.(check bool) "bound positive" true (bound > 0.0);
  for fb = 0 to Topology.num_fibers topo - 1 do
    let l = Detours.install_latency_s dt ~fiber:fb in
    Alcotest.(check bool) "latency positive" true (l > 0.0);
    Alcotest.(check bool) "latency under the bound" true (l <= bound +. 1e-12)
  done

(* ------------------------------------------------------------------ *)
(* The Detour rung                                                      *)
(* ------------------------------------------------------------------ *)

let detour_fixture () =
  let _, ts = fixture () in
  let dt = Detours.build ts in
  let demands = [| 5.0; 5.0 |] in
  let installed = Resilience.equal_split ts ~demands in
  let fb =
    let rec find i = if Detours.for_fiber dt i <> None then i else find (i + 1) in
    find 0
  in
  (ts, dt, demands, installed, fb)

let test_detour_patch_outcome () =
  let _, dt, _, installed, fb = detour_fixture () in
  match Resilience.detour_patch ~detours:dt ~installed ~fiber:fb with
  | None -> Alcotest.fail "detour_patch returned None on a bypassable fiber"
  | Some o ->
    Alcotest.(check bool) "detour rung" true (o.Resilience.rung = Resilience.Detour);
    Alcotest.(check bool) "detour cause" true
      (o.Resilience.cause = Some (Resilience.Detour_applied fb));
    Alcotest.(check bool) "patched plan marked degraded" true
      o.Resilience.plan.Availability.p_degraded;
    Alcotest.(check bool) "feasible against its own tunnel set" true
      (Resilience.plan_feasible o.Resilience.plan.Availability.p_ts
         o.Resilience.plan);
    Alcotest.(check bool) "no backoff charged" true (o.Resilience.backoff_s = 0.0)

let test_detour_rung_preempts_primary_and_never_caches () =
  let ts, dt, demands, installed, fb = detour_fixture () in
  let ladder = Resilience.create () in
  let called = ref false in
  let o =
    Resilience.plan_epoch ladder ~ts ~demands
      ~detour:(dt, installed, fb)
      ~primary:(fun ~warm:_ () ->
        called := true;
        (Resilience.equal_split ts ~demands, None))
      ()
  in
  Alcotest.(check bool) "detour rung served" true
    (o.Resilience.rung = Resilience.Detour);
  Alcotest.(check bool) "no solve on the activation path" false !called;
  Alcotest.(check bool) "detour never becomes last-good" true
    (Resilience.last_good ladder = None);
  (* Prime last-good with a primary success, then detour again: the
     cache must keep the primary plan, untouched. *)
  let o1 =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(fun ~warm:_ () -> (Resilience.equal_split ts ~demands, None))
      ()
  in
  Alcotest.(check bool) "primary rung" true (o1.Resilience.rung = Resilience.Primary);
  let cached = Resilience.last_good ladder in
  Alcotest.(check bool) "last-good primed" true (cached <> None);
  ignore
    (Resilience.plan_epoch ladder ~ts ~demands
       ~detour:(dt, installed, fb)
       ~primary:(fun ~warm:_ () -> (Resilience.equal_split ts ~demands, None))
       ());
  Alcotest.(check bool) "detour leaves last-good untouched" true
    (Resilience.last_good ladder == cached)

let test_detour_armed_chaos_counts () =
  (* run_chaos ~detours: the rung tally gains a detour column, sums
     still cover every epoch, and disarmed runs never count one. *)
  let topo = Topology.by_name "grid3" in
  let env = Availability.make_env topo in
  let scheme =
    Schemes.prete_default
      ~predictor:(Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo))
      ()
  in
  let dt = Detours.build env.Availability.ts in
  (* Seed 3 yields degradation observations within 30 epochs on grid3;
     the default seed happens to see none. *)
  let base = Simulate.run_chaos ~seed:3 ~epochs:30 env scheme ~scale:2.0 in
  let armed =
    Simulate.run_chaos ~seed:3 ~epochs:30 ~detours:dt env scheme ~scale:2.0
  in
  let sum (r : Simulate.chaos_result) =
    r.Simulate.c_detour + r.Simulate.c_primary + r.Simulate.c_cached
    + r.Simulate.c_equal_split
  in
  Alcotest.(check int) "disarmed: no detour epochs" 0 base.Simulate.c_detour;
  Alcotest.(check int) "disarmed: counts cover epochs" base.Simulate.c_epochs
    (sum base);
  Alcotest.(check int) "armed: counts cover epochs" armed.Simulate.c_epochs
    (sum armed);
  Alcotest.(check bool) "armed: detour rung fired" true (armed.Simulate.c_detour > 0)

(* ------------------------------------------------------------------ *)
(* Runtime determinism with the tier armed                              *)
(* ------------------------------------------------------------------ *)

let test_runtime_detour_deterministic_and_dominant () =
  let cfg =
    {
      Prete_rt.Runtime.default_config with
      Prete_rt.Runtime.topology = "grid3";
      epochs = 10;
      seed = 11;
    }
  in
  let run domains =
    Prete_exec.Pool.with_pool ~domains (fun pool -> Prete_rt.Runtime.run ~pool cfg)
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check string) "bit-identical core at 1 vs 4 domains"
    (Prete_rt.Runtime.deterministic_core r1)
    (Prete_rt.Runtime.deterministic_core r4);
  let det =
    match r1.Prete_rt.Runtime.r_avail_detour with
    | Some v -> v
    | None -> Alcotest.fail "detour tier should be armed by default"
  in
  Alcotest.(check bool) "stream+detour never below stream" true
    (det >= r1.Prete_rt.Runtime.r_avail_stream -. 1e-9);
  (* Disarmed config: no detour availability, core marks it null. *)
  let off =
    Prete_exec.Pool.with_pool ~domains:1 (fun pool ->
        Prete_rt.Runtime.run ~pool { cfg with Prete_rt.Runtime.detour = false })
  in
  Alcotest.(check bool) "disarmed run reports no detour availability" true
    (off.Prete_rt.Runtime.r_avail_detour = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prete_detours"
    [
      ( "tables",
        [
          Alcotest.test_case "detours avoid their fiber" `Quick
            test_build_tables_avoid_their_fiber;
          Alcotest.test_case "build deterministic, rebuild identical" `Quick
            test_build_deterministic_and_rebuild_identical;
        ] );
      ( "splice",
        [
          Alcotest.test_case "moves load, stays feasible" `Quick
            test_splice_moves_load_and_stays_feasible;
          Alcotest.test_case "rejects mismatched alloc" `Quick
            test_splice_rejects_mismatched_alloc;
          Alcotest.test_case "latency model bounded" `Quick test_latency_model_bounded;
        ] );
      ( "rung",
        [
          Alcotest.test_case "detour_patch outcome" `Quick test_detour_patch_outcome;
          Alcotest.test_case "preempts primary, never cached" `Quick
            test_detour_rung_preempts_primary_and_never_caches;
          Alcotest.test_case "chaos rung tally" `Slow test_detour_armed_chaos_counts;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "deterministic + dominant with tier armed" `Slow
            test_runtime_detour_deterministic_and_dominant;
        ] );
    ]
