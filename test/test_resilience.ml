(* Tests for the fault-tolerant control loop: the anytime (deadline /
   work-budget) solver semantics and the Resilience fallback ladder. *)

open Prete
open Prete_net

let check_close eps = Alcotest.(check (float eps))

let square () =
  let fibers =
    [| (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0); (3, 0, 100.0); (0, 2, 500.0) |]
  in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (1, 2)); (2, (2, 3)); (3, (3, 0)); (4, (0, 2)) ])
  in
  Topology.make ~name:"square" ~node_names:[| "n0"; "n1"; "n2"; "n3" |] ~fibers ~links

let fixture () =
  let topo = square () in
  let ts = Tunnels.build topo [ (0, 2); (1, 3) ] in
  (topo, ts)

let good_plan ts demands = Resilience.equal_split ts ~demands

let garbage_plan (ts : Tunnels.t) =
  (* Wildly oversubscribed: must fail validation. *)
  {
    Availability.p_alloc = Array.make (Array.length ts.Tunnels.tunnels) 1e6;
    p_ts = ts;
    p_admitted = None;
    p_degraded = false;
  }

(* ------------------------------------------------------------------ *)
(* Anytime solver semantics                                             *)
(* ------------------------------------------------------------------ *)

let test_te_expired_deadline_raises_timeout () =
  (* A deadline already in the past leaves no room for any incumbent. *)
  let _, ts = fixture () in
  let p =
    Te.make_problem ~ts ~demands:[| 5.0; 5.0 |]
      ~probs:[| 0.02; 0.03; 0.01; 0.02; 0.01 |] ~beta:0.9 ()
  in
  let stale = Prete_util.Clock.now () -. 1.0 in
  Alcotest.check_raises "solve" Prete_lp.Simplex.Timeout (fun () ->
      ignore (Te.solve ~deadline:stale p));
  Alcotest.check_raises "admission" Prete_lp.Simplex.Timeout (fun () ->
      ignore (Te.solve_admission ~deadline:stale p));
  Alcotest.check_raises "mip" Prete_lp.Simplex.Timeout (fun () ->
      ignore (Te.solve_mip ~deadline:stale p));
  Alcotest.check_raises "benders" Prete_lp.Simplex.Timeout (fun () ->
      ignore (Te.solve_benders ~deadline:stale p))

let test_te_generous_deadline_not_degraded () =
  let _, ts = fixture () in
  let p =
    Te.make_problem ~ts ~demands:[| 5.0; 5.0 |]
      ~probs:[| 0.02; 0.03; 0.01; 0.02; 0.01 |] ~beta:0.9 ()
  in
  let sol = Te.solve ~deadline:(Prete_util.Clock.deadline_after 3600.0) p in
  Alcotest.(check bool) "not degraded" false sol.Te.degraded;
  let unbounded = Te.solve p in
  check_close 1e-9 "same phi as unbounded solve" unbounded.Te.phi sol.Te.phi

let test_mip_node_limit_returns_incumbent_option () =
  let open Prete_lp in
  let m = Lp.create () in
  let a = Lp.add_var m ~binary:true "a" in
  let b = Lp.add_var m ~binary:true "b" in
  ignore (Lp.add_constraint m [ (1.0, a); (1.0, b) ] Lp.Le 1.0);
  Lp.set_objective m Lp.Maximize [ (2.0, a); (3.0, b) ];
  (match Mip.solve ~max_nodes:0 m with
  | Mip.Node_limit None -> ()
  | _ -> Alcotest.fail "expected Node_limit None when no node was explored");
  match Mip.solve m with
  | Mip.Optimal sol -> check_close 1e-9 "optimum" 3.0 sol.Mip.objective
  | _ -> Alcotest.fail "expected Optimal without a node limit"

(* ------------------------------------------------------------------ *)
(* Controller.wall / run                                                *)
(* ------------------------------------------------------------------ *)

let test_controller_wall_returns_result_and_duration () =
  let r, d = Controller.wall (fun () -> 40 + 2) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "non-negative duration" true (d >= 0.0)

let test_clock_monotone () =
  let t0 = Prete_util.Clock.now () in
  let t1 = Prete_util.Clock.now () in
  Alcotest.(check bool) "monotone" true (t1 >= t0);
  Alcotest.(check bool) "elapsed non-negative" true
    (Prete_util.Clock.elapsed_since t1 >= 0.0);
  Alcotest.(check bool) "unset deadline never expires" false
    (Prete_util.Clock.expired None);
  Alcotest.(check bool) "past deadline expires" true
    (Prete_util.Clock.expired (Some (t1 -. 1.0)))

(* ------------------------------------------------------------------ *)
(* Fallback ladder                                                      *)
(* ------------------------------------------------------------------ *)

let test_ladder_primary_success () =
  let _, ts = fixture () in
  let demands = [| 5.0; 5.0 |] in
  let ladder = Resilience.create () in
  let o =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(fun ~warm:_ () -> (good_plan ts demands, None))
      ()
  in
  Alcotest.(check bool) "primary rung" true (o.Resilience.rung = Resilience.Primary);
  Alcotest.(check bool) "no cause" true (o.Resilience.cause = None);
  Alcotest.(check int) "one attempt" 1 (List.length o.Resilience.attempts);
  Alcotest.(check bool) "feasible" true (Resilience.plan_feasible ts o.Resilience.plan)

let test_ladder_falls_back_to_cache () =
  let _, ts = fixture () in
  let demands = [| 5.0; 5.0 |] in
  let ladder = Resilience.create () in
  (* Warm the cache with a primary success... *)
  ignore
    (Resilience.plan_epoch ladder ~ts ~demands
       ~primary:(fun ~warm:_ () -> (good_plan ts demands, None))
       ());
  (* ...then time the primary out. *)
  let o =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(fun ~warm:_ () -> raise Prete_lp.Simplex.Timeout)
      ()
  in
  Alcotest.(check bool) "cached rung" true (o.Resilience.rung = Resilience.Cached);
  Alcotest.(check bool) "timeout cause" true
    (o.Resilience.cause = Some Resilience.Solver_timeout);
  Alcotest.(check bool) "feasible" true (Resilience.plan_feasible ts o.Resilience.plan)

let test_ladder_cold_cache_reaches_equal_split () =
  let _, ts = fixture () in
  let demands = [| 5.0; 5.0 |] in
  let ladder = Resilience.create () in
  let o =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(fun ~warm:_ () -> raise (Te.Infeasible_problem "beta too high"))
      ()
  in
  Alcotest.(check bool) "equal-split rung" true
    (o.Resilience.rung = Resilience.Equal_split);
  (match o.Resilience.cause with
  | Some (Resilience.Infeasible_beta _) -> ()
  | _ -> Alcotest.fail "expected Infeasible_beta as the root cause");
  Alcotest.(check int) "primary, cached, equal-split attempts" 3
    (List.length o.Resilience.attempts);
  Alcotest.(check bool) "feasible" true (Resilience.plan_feasible ts o.Resilience.plan)

let test_ladder_rejects_infeasible_primary_plan () =
  let _, ts = fixture () in
  let demands = [| 5.0; 5.0 |] in
  let ladder = Resilience.create () in
  let o =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(fun ~warm:_ () -> (garbage_plan ts, None))
      ()
  in
  Alcotest.(check bool) "not primary" true (o.Resilience.rung <> Resilience.Primary);
  Alcotest.(check bool) "rejected cause" true
    (o.Resilience.cause = Some Resilience.Plan_rejected);
  Alcotest.(check bool) "feasible" true (Resilience.plan_feasible ts o.Resilience.plan)

let test_ladder_retries_with_backoff () =
  let _, ts = fixture () in
  let demands = [| 5.0; 5.0 |] in
  let ladder = Resilience.create ~max_tries:3 ~base_backoff_s:0.5 () in
  let calls = ref 0 in
  let o =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(fun ~warm:_ () ->
        incr calls;
        if !calls < 3 then raise Prete_lp.Simplex.Timeout
        else (good_plan ts demands, None))
      ()
  in
  Alcotest.(check int) "three attempts" 3 !calls;
  Alcotest.(check bool) "primary rung after retries" true
    (o.Resilience.rung = Resilience.Primary);
  (* Charged backoff: 0.5 before try 2, 1.0 before try 3. *)
  check_close 1e-9 "exponential charged backoff" 1.5 o.Resilience.backoff_s

let test_ladder_telemetry_gap_skips_primary () =
  let _, ts = fixture () in
  let demands = [| 5.0; 5.0 |] in
  let ladder = Resilience.create () in
  let called = ref false in
  let o =
    Resilience.plan_epoch ladder ~ts ~demands ~telemetry_gap:true
      ~primary:(fun ~warm:_ () ->
        called := true;
        (good_plan ts demands, None))
      ()
  in
  Alcotest.(check bool) "primary never called" false !called;
  Alcotest.(check bool) "gap cause" true
    (o.Resilience.cause = Some Resilience.Telemetry_gap);
  Alcotest.(check bool) "fallback rung" true (o.Resilience.rung <> Resilience.Primary)

let test_ladder_notes_match_attempts () =
  let _, ts = fixture () in
  let demands = [| 5.0; 5.0 |] in
  let ladder = Resilience.create () in
  let o =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(fun ~warm:_ () -> raise Prete_lp.Simplex.Timeout)
      ()
  in
  let notes = Resilience.notes o in
  Alcotest.(check int) "one note per attempt" (List.length o.Resilience.attempts)
    (List.length notes);
  List.iter
    (fun n ->
      Alcotest.(check bool) "TE stage" true
        (n.Controller.note_stage = Controller.Te_compute))
    notes;
  (* Notes ride on the pipeline report. *)
  let (), report =
    Controller.run
      ~infer:(fun () -> ())
      ~regen:(fun () -> ())
      ~te:(fun () -> ())
      ~n_new_tunnels:0 ()
  in
  let report = Controller.with_notes report notes in
  Alcotest.(check int) "report carries notes" (List.length notes)
    (List.length report.Controller.notes)

(* ------------------------------------------------------------------ *)
(* Rung 0: warm-basis retention                                         *)
(* ------------------------------------------------------------------ *)

let te_fixture_problem ts demands =
  Te.make_problem ~ts ~demands ~probs:[| 0.02; 0.03; 0.01; 0.02; 0.01 |]
    ~beta:0.9 ()

let test_ladder_rung0_warm_basis () =
  let _, ts = fixture () in
  let demands = [| 5.0; 5.0 |] in
  let ladder = Resilience.create () in
  Alcotest.(check bool) "no basis initially" true
    (Resilience.last_basis ladder = None);
  (* A real basis from a real solve. *)
  let sol = Te.solve ~second_phase:false (te_fixture_problem ts demands) in
  let b =
    match sol.Te.basis with
    | Some b -> b
    | None -> Alcotest.fail "solved instance must surface its basis"
  in
  let seen_warm = ref None in
  let o1 =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(fun ~warm () ->
        seen_warm := warm;
        (good_plan ts demands, Some b))
      ()
  in
  Alcotest.(check bool) "primary rung" true (o1.Resilience.rung = Resilience.Primary);
  Alcotest.(check bool) "first epoch starts cold" true (!seen_warm = None);
  Alcotest.(check bool) "basis retained after success" true
    (Resilience.last_basis ladder = Some b);
  (* The next epoch's primary receives the retained basis as rung 0. *)
  let o2 =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(fun ~warm () ->
        seen_warm := warm;
        (good_plan ts demands, None))
      ()
  in
  Alcotest.(check bool) "second epoch warmed" true (!seen_warm = Some b);
  Alcotest.(check bool) "primary again" true (o2.Resilience.rung = Resilience.Primary);
  (* A primary returning no basis keeps the previous one... *)
  Alcotest.(check bool) "None return keeps basis" true
    (Resilience.last_basis ladder = Some b);
  (* ...and a failing epoch must not clobber it either. *)
  ignore
    (Resilience.plan_epoch ladder ~ts ~demands
       ~primary:(fun ~warm:_ () -> raise Prete_lp.Simplex.Timeout)
       ());
  Alcotest.(check bool) "fallback keeps basis" true
    (Resilience.last_basis ladder = Some b)

let test_ladder_deadline_regression () =
  (* End-to-end deadline pressure on a real TE primary: an already
     expired budget must degrade to a fallback rung (never raise) with a
     still-feasible plan, and a generous budget must recover to a clean
     warm-started primary. *)
  let _, ts = fixture () in
  let demands = [| 5.0; 5.0 |] in
  let p = te_fixture_problem ts demands in
  let primary ~deadline ~warm () =
    let sol = Te.solve ~second_phase:false ~deadline ?warm p in
    ( {
        Availability.p_alloc = sol.Te.alloc;
        p_ts = ts;
        p_admitted = None;
        p_degraded = sol.Te.degraded;
      },
      sol.Te.basis )
  in
  let ladder = Resilience.create () in
  (* Epoch 1: generous budget — clean primary, basis retained. *)
  let o1 =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(primary ~deadline:(Prete_util.Clock.deadline_after 3600.0))
      ()
  in
  Alcotest.(check bool) "generous: primary rung" true
    (o1.Resilience.rung = Resilience.Primary);
  Alcotest.(check bool) "generous: not degraded" false (Resilience.degraded o1);
  Alcotest.(check bool) "generous: basis retained" true
    (Resilience.last_basis ladder <> None);
  (* Epoch 2: expired budget — the solve times out, the ladder serves the
     cached plan, and the retained warm basis survives untouched. *)
  let o2 =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(primary ~deadline:(Prete_util.Clock.now () -. 1.0))
      ()
  in
  Alcotest.(check bool) "expired: fallback rung" true
    (o2.Resilience.rung = Resilience.Cached);
  Alcotest.(check bool) "expired: timeout cause" true
    (o2.Resilience.cause = Some Resilience.Solver_timeout);
  Alcotest.(check bool) "expired: still feasible" true
    (Resilience.plan_feasible ts o2.Resilience.plan);
  Alcotest.(check bool) "expired: degraded" true (Resilience.degraded o2);
  let retained = Resilience.last_basis ladder in
  Alcotest.(check bool) "expired: basis survives" true (retained <> None);
  (* Epoch 3: budget restored — the warm re-solve lands on the same phi
     as a cold solve (warm starting changes pivots, never results). *)
  let o3 =
    Resilience.plan_epoch ladder ~ts ~demands
      ~primary:(primary ~deadline:(Prete_util.Clock.deadline_after 3600.0))
      ()
  in
  Alcotest.(check bool) "recovered: primary rung" true
    (o3.Resilience.rung = Resilience.Primary);
  let cold = Te.solve ~second_phase:false p in
  let warm = Te.solve ~second_phase:false ?warm:retained p in
  check_close 1e-9 "warm phi = cold phi" cold.Te.phi warm.Te.phi

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop_ladder_plans_always_feasible =
  QCheck.Test.make ~name:"every ladder-emitted plan passes Simplex.feasible"
    ~count:60
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 9100) in
      let topo, ts = fixture () in
      let dt = Detours.build ts in
      let demands =
        Array.init 2 (fun _ -> Prete_util.Rng.uniform rng 0.0 100.0)
      in
      let ladder = Resilience.create () in
      (* Sometimes warm the cache first. *)
      if Prete_util.Rng.bool rng then
        ignore
          (Resilience.plan_epoch ladder ~ts ~demands
             ~primary:(fun ~warm:_ () -> (good_plan ts demands, None))
             ());
      let primary ~warm:_ () =
        match Prete_util.Rng.int rng 5 with
        | 0 -> raise Prete_lp.Simplex.Timeout
        | 1 -> raise (Prete_lp.Simplex.Numerical "synthetic")
        | 2 -> raise (Te.Infeasible_problem "synthetic")
        | 3 -> (garbage_plan ts, None)
        | _ -> (good_plan ts demands, None)
      in
      let gap = Prete_util.Rng.int rng 4 = 0 in
      (* Sometimes arm the Detour rung on a random fiber (tabled or
         not — an untabled fiber must fall through to the ladder). *)
      let detour =
        if Prete_util.Rng.int rng 3 = 0 then
          Some
            ( dt,
              good_plan ts demands,
              Prete_util.Rng.int rng (Topology.num_fibers topo) )
        else None
      in
      let cached_before = Resilience.last_good ladder in
      let o =
        Resilience.plan_epoch ladder ~ts ~demands ?detour ~telemetry_gap:gap
          ~primary ()
      in
      (* A detour-rung plan is indexed by its own extended tunnel set;
         every other rung's by the base set. *)
      Resilience.plan_feasible o.Resilience.plan.Availability.p_ts
        o.Resilience.plan
      && (o.Resilience.rung <> Resilience.Detour
         || Resilience.last_good ladder == cached_before))

let prop_equal_split_feasible_at_any_scale =
  QCheck.Test.make ~name:"equal split feasible even at absurd demand"
    ~count:60
    QCheck.(small_int)
    (fun seed ->
      let rng = Prete_util.Rng.create (seed + 9200) in
      let _, ts = fixture () in
      let demands =
        Array.init 2 (fun _ -> Prete_util.Rng.uniform rng 0.0 1e5)
      in
      Resilience.plan_feasible ts (Resilience.equal_split ts ~demands))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "prete_resilience"
    [
      ( "anytime",
        [
          Alcotest.test_case "expired deadline raises Timeout" `Quick
            test_te_expired_deadline_raises_timeout;
          Alcotest.test_case "generous deadline not degraded" `Quick
            test_te_generous_deadline_not_degraded;
          Alcotest.test_case "MIP node limit is anytime" `Quick
            test_mip_node_limit_returns_incumbent_option;
        ] );
      ( "controller",
        [
          Alcotest.test_case "wall returns result" `Quick
            test_controller_wall_returns_result_and_duration;
          Alcotest.test_case "monotonic clock" `Quick test_clock_monotone;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "primary success" `Quick test_ladder_primary_success;
          Alcotest.test_case "falls back to cache" `Quick test_ladder_falls_back_to_cache;
          Alcotest.test_case "cold cache equal split" `Quick
            test_ladder_cold_cache_reaches_equal_split;
          Alcotest.test_case "rejects infeasible primary" `Quick
            test_ladder_rejects_infeasible_primary_plan;
          Alcotest.test_case "retry with backoff" `Quick test_ladder_retries_with_backoff;
          Alcotest.test_case "telemetry gap skips primary" `Quick
            test_ladder_telemetry_gap_skips_primary;
          Alcotest.test_case "notes match attempts" `Quick test_ladder_notes_match_attempts;
          Alcotest.test_case "rung-0 warm basis retention" `Quick
            test_ladder_rung0_warm_basis;
          Alcotest.test_case "deadline regression end to end" `Quick
            test_ladder_deadline_regression;
        ] );
      ( "properties",
        qsuite [ prop_ladder_plans_always_feasible; prop_equal_split_feasible_at_any_scale ]
      );
    ]
