(* Fleet-scale sharded runtime (Prete_rt.Shard) tests.

   The load-bearing guarantees:
   - Shard.partition is a pure function of (topology, shards, seed): every
     fiber lands in exactly one region, regions are connected through
     shared endpoints, and the map is identical no matter what pool
     context surrounds the call;
   - the coalescer batches, defers, and sheds exactly as specified, and
     the accounting identity alarms = debounced + shed + batched holds;
   - Shard.run's deterministic core is bit-identical at any
     (shards x domains) combination, including under shedding, and
     replays from its own dump. *)

open Prete_net
open Prete_rt

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

(* ------------------------------------------------------------------ *)
(* Partition properties                                                *)
(* ------------------------------------------------------------------ *)

let topo_names = [ "grid3"; "grid4"; "wan12"; "wan26" ]

let gen_case =
  QCheck.make
    ~print:(fun (t, k, s) -> Printf.sprintf "(%s, shards:%d, seed:%d)" t k s)
    QCheck.Gen.(
      triple (oneofl topo_names) (int_range 1 8) (int_range 0 10_000))

(* Same adjacency the partitioner uses: fibers sharing an endpoint. *)
let adjacency topo =
  let n = Topology.num_fibers topo in
  Array.init n (fun i ->
      let a, b = (Topology.fiber topo i).Topology.endpoints in
      List.filter
        (fun j ->
          j <> i
          &&
          let a', b' = (Topology.fiber topo j).Topology.endpoints in
          a = a' || a = b' || b = a' || b = b')
        (List.init n Fun.id))

let prop_partition_covers =
  QCheck.Test.make ~name:"every fiber in exactly one region" ~count:60 gen_case
    (fun (name, shards, seed) ->
      let topo = Topology.by_name name in
      let n = Topology.num_fibers topo in
      let pt = Shard.partition topo ~shards ~seed in
      let seen = Array.make n 0 in
      Array.iter
        (fun members -> Array.iter (fun f -> seen.(f) <- seen.(f) + 1) members)
        pt.Shard.pt_regions;
      pt.Shard.pt_shards = min shards n
      && Array.for_all (fun c -> c = 1) seen
      && Array.for_all
           (fun f ->
             let r = pt.Shard.pt_region_of.(f) in
             r >= 0 && r < pt.Shard.pt_shards
             && Array.mem f pt.Shard.pt_regions.(r))
           (Array.init n Fun.id))

let prop_partition_pure =
  QCheck.Test.make
    ~name:"partition is a pure function of (env, seed) at any domain count"
    ~count:40 gen_case (fun (name, shards, seed) ->
      let topo = Topology.by_name name in
      let at domains =
        Prete_exec.Pool.with_pool ~domains (fun _pool ->
            Shard.partition topo ~shards ~seed)
      in
      let p1 = at 1 and p4 = at 4 in
      p1.Shard.pt_region_of = p4.Shard.pt_region_of
      && p1.Shard.pt_regions = p4.Shard.pt_regions
      && p1 = Shard.partition topo ~shards ~seed)

let prop_partition_connected =
  QCheck.Test.make ~name:"every region is connected via shared endpoints"
    ~count:60 gen_case (fun (name, shards, seed) ->
      let topo = Topology.by_name name in
      let adj = adjacency topo in
      let pt = Shard.partition topo ~shards ~seed in
      Array.for_all
        (fun members ->
          Array.length members <= 1
          ||
          let inside = Array.to_list members in
          let visited = Hashtbl.create 16 in
          let rec dfs f =
            if not (Hashtbl.mem visited f) then begin
              Hashtbl.replace visited f ();
              List.iter dfs (List.filter (fun g -> List.mem g inside) adj.(f))
            end
          in
          dfs members.(0);
          List.for_all (Hashtbl.mem visited) inside)
        pt.Shard.pt_regions)

let test_partition_rejects () =
  Alcotest.check_raises "non-positive shards"
    (Invalid_argument "Shard.partition: shards must be positive") (fun () ->
      ignore (Shard.partition (Topology.by_name "grid3") ~shards:0 ~seed:1))

(* ------------------------------------------------------------------ *)
(* Coalescer                                                           *)
(* ------------------------------------------------------------------ *)

let no_shed ~tick:_ _ = Alcotest.fail "unexpected shed"

let test_coalescer_immediate_and_deferred () =
  let c = Shard.Coalescer.create ~queue_bound:4 ~policy:Runtime.Drop_newest () in
  let batches = ref [] in
  let dispatch t items =
    batches := (t, items) :: !batches;
    t + 10
  in
  (* Controller free: same-tick arrivals launch as one batch. *)
  Shard.Coalescer.offer c ~now:5 ~dispatch ~shed:no_shed [ "a"; "b" ];
  Alcotest.(check int) "busy until completion" 15 (Shard.Coalescer.busy_until c);
  Alcotest.(check int) "no backlog" 0 (Shard.Coalescer.backlog c);
  (* Busy: the next arrival waits. *)
  Shard.Coalescer.offer c ~now:7 ~dispatch ~shed:no_shed [ "c" ];
  Alcotest.(check int) "staged" 1 (Shard.Coalescer.backlog c);
  (* Once free, the backlog launches at the free tick, then the new
     arrival waits behind the fresh solve. *)
  Shard.Coalescer.offer c ~now:20 ~dispatch ~shed:no_shed [ "d" ];
  Alcotest.(check int) "d staged behind the backlog batch" 1
    (Shard.Coalescer.backlog c);
  Shard.Coalescer.flush c ~dispatch;
  Alcotest.(check int) "drained" 0 (Shard.Coalescer.backlog c);
  Alcotest.(check (list (pair int (list string))))
    "batch schedule"
    [ (5, [ "a"; "b" ]); (15, [ "c" ]); (25, [ "d" ]) ]
    (List.rev !batches);
  let offered, nbatches, batched, shed, deferred = Shard.Coalescer.stats c in
  Alcotest.(check (list int)) "stats" [ 4; 3; 4; 0; 2 ]
    [ offered; nbatches; batched; shed; deferred ]

let test_coalescer_drop_newest () =
  let c = Shard.Coalescer.create ~queue_bound:1 ~policy:Runtime.Drop_newest () in
  let shed_log = ref [] in
  let shed ~tick x = shed_log := (tick, x) :: !shed_log in
  let dispatch t _ = t + 10 in
  Shard.Coalescer.offer c ~now:0 ~dispatch ~shed [ "a" ];
  Shard.Coalescer.offer c ~now:1 ~dispatch ~shed [ "b" ];
  Shard.Coalescer.offer c ~now:2 ~dispatch ~shed [ "c" ];
  Alcotest.(check (list (pair int string))) "arriving reaction shed"
    [ (2, "c") ] (List.rev !shed_log);
  let survivors = ref [] in
  Shard.Coalescer.flush c ~dispatch:(fun _ items ->
      survivors := items;
      0);
  Alcotest.(check (list string)) "oldest survived" [ "b" ] !survivors

let test_coalescer_drop_oldest () =
  let c = Shard.Coalescer.create ~queue_bound:1 ~policy:Runtime.Drop_oldest () in
  let shed_log = ref [] in
  let shed ~tick x = shed_log := (tick, x) :: !shed_log in
  let dispatch t _ = t + 10 in
  Shard.Coalescer.offer c ~now:0 ~dispatch ~shed [ "a" ];
  Shard.Coalescer.offer c ~now:1 ~dispatch ~shed [ "b" ];
  Shard.Coalescer.offer c ~now:2 ~dispatch ~shed [ "c" ];
  Alcotest.(check (list (pair int string))) "oldest staged evicted"
    [ (2, "b") ] (List.rev !shed_log);
  let survivors = ref [] in
  Shard.Coalescer.flush c ~dispatch:(fun _ items ->
      survivors := items;
      0);
  Alcotest.(check (list string)) "newest survived" [ "c" ] !survivors

let test_coalescer_bound_zero () =
  let c = Shard.Coalescer.create ~queue_bound:0 ~policy:Runtime.Drop_oldest () in
  let shed_log = ref [] in
  let shed ~tick x = shed_log := (tick, x) :: !shed_log in
  let dispatch t _ = t + 10 in
  Shard.Coalescer.offer c ~now:0 ~dispatch ~shed [ "a" ];
  Shard.Coalescer.offer c ~now:3 ~dispatch ~shed [ "b"; "c" ];
  Alcotest.(check (list (pair int string)))
    "nothing may wait: every busy-window arrival sheds"
    [ (3, "b"); (3, "c") ]
    (List.rev !shed_log);
  let offered, batches, batched, shed_n, deferred = Shard.Coalescer.stats c in
  Alcotest.(check (list int)) "stats" [ 3; 1; 1; 2; 0 ]
    [ offered; batches; batched; shed_n; deferred ];
  Alcotest.check_raises "negative bound rejected"
    (Invalid_argument "Shard.Coalescer.create: negative queue_bound")
    (fun () ->
      ignore
        (Shard.Coalescer.create ~queue_bound:(-1) ~policy:Runtime.Drop_newest
           ()))

(* ------------------------------------------------------------------ *)
(* The engine: shard/domain invariance, accounting, replay             *)
(* ------------------------------------------------------------------ *)

let sh_config =
  {
    Runtime.default_config with
    Runtime.topology = "grid3";
    epochs = 6;
    seed = 3;
    shards = 1;
  }

let run_at ~domains ~shards cfg =
  Prete_exec.Pool.with_pool ~domains (fun pool ->
      Shard.run ~pool { cfg with Runtime.shards })

let shared = lazy (run_at ~domains:1 ~shards:1 sh_config)

let test_shard_count_invariance () =
  let r1 = Lazy.force shared in
  let core = Shard.deterministic_core r1 in
  List.iter
    (fun (domains, shards) ->
      let r = run_at ~domains ~shards sh_config in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical core at %d shards x %d domains" shards
           domains)
        true
        (String.equal core (Shard.deterministic_core r)))
    [ (1, 2); (1, 4); (4, 4); (2, 3) ]

let test_shard_accounting_and_ring () =
  let r = Lazy.force shared in
  Alcotest.(check bool) "pipeline streamed every fiber" true
    (Prete_rt.Metrics.counter r.Shard.s_metrics "fibers_streamed"
    = r.Shard.s_epochs * Array.length r.Shard.s_partition.Shard.pt_region_of);
  Alcotest.(check bool) "alarms fired" true (r.Shard.s_alarms > 0);
  Alcotest.(check bool) "accounted" true (Shard.accounted r);
  Alcotest.(check int) "no ring drops at default capacity" 0
    (Ring.dropped r.Shard.s_ring);
  Alcotest.(check int) "ring_dropped counter is zero" 0
    (Prete_rt.Metrics.counter r.Shard.s_metrics "ring_dropped");
  Alcotest.(check bool) "streaming >= periodic-only" true
    (r.Shard.s_avail_stream >= r.Shard.s_avail_periodic -. 1e-9);
  Alcotest.(check bool) "throughput rates positive" true
    (Shard.aggregate_rate r > 0.0 && Shard.tick_rate r > 0.0)

let test_shard_replay () =
  let r = Lazy.force shared in
  let json = Shard.dump r in
  Alcotest.(check bool) "shard dump recognized" true (Shard.is_dump json);
  let cfg = Runtime.config_of_dump json in
  Alcotest.(check int) "config roundtrip: epochs" 6 cfg.Runtime.epochs;
  Alcotest.(check int) "config roundtrip: queue_bound" 64
    cfg.Runtime.queue_bound;
  let _, ok =
    Prete_exec.Pool.with_pool ~domains:2 (fun pool -> Shard.replay ~pool json)
  in
  Alcotest.(check bool) "replay reproduces the deterministic core" true ok;
  (* A Runtime dump must not be mistaken for a shard dump. *)
  let rt =
    Prete_exec.Pool.with_pool ~domains:1 (fun pool ->
        Runtime.run ~pool { sh_config with Runtime.epochs = 2 })
  in
  Alcotest.(check bool) "runtime dump not a shard dump" false
    (Shard.is_dump (Runtime.dump rt))

(* Shedding must not depend on the partition: a hair-trigger detector
   with a tight bound sheds identically at 1 and 4 shards. *)
let test_shed_partition_invariant () =
  let cfg =
    {
      sh_config with
      Runtime.epochs = 3;
      debounce_s = 0;
      queue_bound = 1;
      detector =
        {
          Detector.default_config with
          Detector.cusum_k = 0.0;
          cusum_h = 0.01;
        };
    }
  in
  let r1 = run_at ~domains:1 ~shards:1 cfg in
  let r4 = run_at ~domains:1 ~shards:4 cfg in
  Alcotest.(check bool) "overload actually sheds" true (r1.Shard.s_shed > 0);
  Alcotest.(check bool) "accounted under shedding" true
    (Shard.accounted r1 && Shard.accounted r4);
  Alcotest.(check int) "same sheds at 1 and 4 shards" r1.Shard.s_shed
    r4.Shard.s_shed;
  Alcotest.(check bool) "bit-identical core under shedding" true
    (String.equal
       (Shard.deterministic_core r1)
       (Shard.deterministic_core r4));
  (* Policy is behavior, not bookkeeping: drop-oldest on the same
     overload also balances its books. *)
  let ro =
    run_at ~domains:1 ~shards:4
      { cfg with Runtime.shed_policy = Runtime.Drop_oldest }
  in
  Alcotest.(check bool) "drop-oldest accounted" true (Shard.accounted ro)

let () =
  Alcotest.run "prete_rt_shard"
    [
      ( "partition",
        Alcotest.test_case "rejects non-positive shards" `Quick
          test_partition_rejects
        :: qsuite
             [
               prop_partition_covers;
               prop_partition_pure;
               prop_partition_connected;
             ] );
      ( "coalescer",
        [
          Alcotest.test_case "immediate + deferred batching" `Quick
            test_coalescer_immediate_and_deferred;
          Alcotest.test_case "drop-newest sheds the arrival" `Quick
            test_coalescer_drop_newest;
          Alcotest.test_case "drop-oldest evicts the head" `Quick
            test_coalescer_drop_oldest;
          Alcotest.test_case "bound zero sheds every waiter" `Quick
            test_coalescer_bound_zero;
        ] );
      ( "engine",
        [
          Alcotest.test_case "core invariant across shards x domains" `Quick
            test_shard_count_invariance;
          Alcotest.test_case "accounting identity + ring" `Quick
            test_shard_accounting_and_ring;
          Alcotest.test_case "dump/replay roundtrip" `Quick test_shard_replay;
          Alcotest.test_case "shedding is partition-invariant" `Quick
            test_shed_partition_invariant;
        ] );
    ]
