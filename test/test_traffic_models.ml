(* Property suite for the traffic-model library: gravity mass laws,
   diurnal periodicity and peak phase, surge conservation for flash
   crowds and coremelt floods, and seed-determinism of every generator. *)

open Prete_net

let topo_gen =
  QCheck.(
    map
      (fun i ->
        match i with
        | 0 -> Topology.abilene ()
        | 1 -> Topology.b4 ()
        | 2 -> Topology.grid 3
        | _ -> Topology.wan ~seed:i 10)
      (int_range 0 5))

let seed_gen = QCheck.int_range 0 50

let float_arrays_equal a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> x = y) a b

let classes_equal a b =
  Array.length a.Traffic_model.tm_classes = Array.length b.Traffic_model.tm_classes
  && Array.for_all2 float_arrays_equal a.Traffic_model.tm_classes
       b.Traffic_model.tm_classes

(* Row i and column i of the gravity matrix both sum to m_i(S - m_i)/S. *)
let prop_gravity_mass_law =
  QCheck.Test.make ~name:"gravity_parts: row/column mass law" ~count:30
    QCheck.(pair seed_gen topo_gen)
    (fun (seed, topo) ->
      let masses, matrix = Traffic_model.gravity_parts ~seed topo in
      let n = Array.length masses in
      let s = Array.fold_left ( +. ) 0.0 masses in
      let ok = ref true in
      for i = 0 to n - 1 do
        let expect = masses.(i) *. (s -. masses.(i)) /. s in
        let row = Array.fold_left ( +. ) 0.0 matrix.(i) in
        let col = ref 0.0 in
        for j = 0 to n - 1 do
          col := !col +. matrix.(j).(i)
        done;
        if
          matrix.(i).(i) <> 0.0
          || Float.abs (row -. expect) > 1e-9 *. expect
          || Float.abs (!col -. expect) > 1e-9 *. expect
        then ok := false
      done;
      !ok)

let prop_diurnal_periodic =
  QCheck.Test.make ~name:"diurnal: demands at e and e+24 bit-identical"
    ~count:30
    QCheck.(triple seed_gen topo_gen (int_range 0 100))
    (fun (seed, topo, e) ->
      let tm = Traffic_model.diurnal ~seed topo in
      Traffic_model.period tm = 24
      && float_arrays_equal
           (Traffic_model.demands tm ~scale:1.0 ~epoch:e)
           (Traffic_model.demands tm ~scale:1.0 ~epoch:(e + 24)))

(* The cosine multiplier is exactly 1.0 at tm_phase and strictly below
   everywhere else, so the phase hour carries the (unique) peak. *)
let prop_diurnal_peak_at_phase =
  QCheck.Test.make ~name:"diurnal: unique peak exactly at tm_phase" ~count:30
    QCheck.(pair seed_gen topo_gen)
    (fun (seed, topo) ->
      let tm = Traffic_model.diurnal ~seed topo in
      let phase = tm.Traffic_model.tm_phase in
      let peak = Traffic_model.demands tm ~scale:1.0 ~epoch:phase in
      Array.exists (fun v -> v > 0.0) peak
      && List.for_all
           (fun h ->
             h = phase
             ||
             let d = Traffic_model.demands tm ~scale:1.0 ~epoch:h in
             let lower = ref true in
             Array.iteri
               (fun i v -> if peak.(i) > 0.0 && v >= peak.(i) then lower := false)
               d;
             !lower)
           (List.init 24 Fun.id))

let surge_conservation name gen =
  QCheck.Test.make ~name ~count:30
    QCheck.(pair seed_gen topo_gen)
    (fun (seed, topo) ->
      let tm = gen ~seed topo in
      match tm.Traffic_model.tm_surge with
      | None -> false
      | Some (start, stop) ->
        let base = Traffic_model.baseline tm in
        0 <= start && start < stop && stop <= 24
        && List.for_all
             (fun h ->
               let d = Traffic_model.demands tm ~scale:1.0 ~epoch:h in
               if h >= start && h < stop then not (float_arrays_equal d base)
               else float_arrays_equal d base)
             (List.init 24 Fun.id))

let prop_flash_conserves_baseline =
  surge_conservation "flash: exactly baseline outside the surge window"
    (fun ~seed topo -> Traffic_model.flash_crowd ~seed topo)

let prop_coremelt_conserves_baseline =
  surge_conservation "coremelt: exactly baseline outside the surge window"
    (fun ~seed topo -> Traffic_model.coremelt ~seed topo)

let prop_flash_only_amplifies =
  QCheck.Test.make ~name:"flash: surge only amplifies, never drops a flow"
    ~count:30
    QCheck.(pair seed_gen topo_gen)
    (fun (seed, topo) ->
      let tm = Traffic_model.flash_crowd ~seed topo in
      let base = tm.Traffic_model.tm_classes.(0) in
      let surged = tm.Traffic_model.tm_classes.(1) in
      let amped = ref 0 in
      Array.iteri (fun i v -> if v > base.(i) then incr amped) surged;
      !amped >= 1
      && Array.for_all2 (fun s b -> s >= b) surged base)

(* Coremelt attack flows: one per fiber span, zero rate in the quiet
   class, strictly positive during the surge; baseline flows untouched. *)
let prop_coremelt_attack_flows =
  QCheck.Test.make ~name:"coremelt: per-span attack flows, quiet outside"
    ~count:30
    QCheck.(pair seed_gen topo_gen)
    (fun (seed, topo) ->
      let tm = Traffic_model.coremelt ~seed topo in
      let nb = tm.Traffic_model.tm_baseline_flows in
      let nf = Topology.num_fibers topo in
      let quiet = tm.Traffic_model.tm_classes.(0) in
      let surge = tm.Traffic_model.tm_classes.(1) in
      Traffic_model.num_flows tm = nb + nf
      && Array.length quiet = nb + nf
      && (let ok = ref true in
          for i = 0 to nb - 1 do
            if quiet.(i) <> surge.(i) then ok := false
          done;
          for i = nb to nb + nf - 1 do
            if quiet.(i) <> 0.0 || surge.(i) <= 0.0 then ok := false
          done;
          !ok)
      && List.for_all2
           (fun (a, b) (f : Topology.fiber) -> (a, b) = f.Topology.endpoints)
           (List.filteri (fun i _ -> i >= nb) tm.Traffic_model.tm_pairs)
           (Array.to_list (Array.init nf (Topology.fiber topo))))

let prop_same_seed_bit_identical =
  QCheck.Test.make ~name:"all kinds: same seed => bit-identical classes"
    ~count:20
    QCheck.(pair seed_gen topo_gen)
    (fun (seed, topo) ->
      List.for_all
        (fun kind ->
          let a = Traffic_model.generate ~seed kind topo in
          let b = Traffic_model.generate ~seed kind topo in
          classes_equal a b
          && a.Traffic_model.tm_schedule = b.Traffic_model.tm_schedule
          && a.Traffic_model.tm_pairs = b.Traffic_model.tm_pairs)
        Traffic_model.all_kinds)

let prop_demands_scale_linear =
  QCheck.Test.make ~name:"demands: scale is linear" ~count:20
    QCheck.(triple seed_gen topo_gen (int_range 0 47))
    (fun (seed, topo, e) ->
      let tm = Traffic_model.flash_crowd ~seed topo in
      let d1 = Traffic_model.demands tm ~scale:1.0 ~epoch:e in
      let d2 = Traffic_model.demands tm ~scale:2.0 ~epoch:e in
      Array.for_all2 (fun a b -> b = a *. 2.0) d1 d2)

let test_by_name_roundtrip () =
  let topo = Topology.grid 3 in
  List.iter
    (fun (spec, expect_name, expect_seed) ->
      let tm = Traffic_model.by_name spec topo in
      Alcotest.(check string) (spec ^ " name") expect_name (Traffic_model.name tm);
      Alcotest.(check int) (spec ^ " seed") expect_seed tm.Traffic_model.tm_seed)
    [
      ("gravity", "gravity", 0);
      ("diurnal:7", "diurnal:7", 7);
      ("FLASH:3", "flash:3", 3);
      ("coremelt", "coremelt", 0);
    ]

let test_by_name_unknown () =
  let topo = Topology.grid 3 in
  List.iter
    (fun bogus ->
      match Traffic_model.by_name bogus topo with
      | _ -> Alcotest.failf "by_name %S should raise" bogus
      | exception Invalid_argument msg ->
        List.iter
          (fun needle ->
            let nl = String.length needle and ml = String.length msg in
            let rec go i =
              i + nl <= ml && (String.sub msg i nl = needle || go (i + 1))
            in
            Alcotest.(check bool)
              (Printf.sprintf "%S mentions %s" bogus needle)
              true (go 0))
          Traffic_model.all_names)
    [ "nope"; "gravity:x"; "flashy" ]

let test_to_traffic_agrees_with_demands () =
  (* The env bridge must agree with [demands] at every hour — otherwise
     the runtime's standing view and the model's sequence diverge. *)
  let topo = Topology.abilene () in
  List.iter
    (fun kind ->
      let tm = Traffic_model.generate ~seed:5 kind topo in
      let tr = Traffic_model.to_traffic tm in
      Alcotest.(check bool)
        (Traffic_model.kind_name kind ^ " pairs")
        true
        (tr.Traffic.pairs = tm.Traffic_model.tm_pairs);
      for h = 0 to 23 do
        Alcotest.(check bool)
          (Printf.sprintf "%s hour %d" (Traffic_model.kind_name kind) h)
          true
          (float_arrays_equal tr.Traffic.matrices.(h)
             (Traffic_model.demands tm ~scale:1.0 ~epoch:h))
      done)
    Traffic_model.all_kinds

let test_negative_scale_rejected () =
  let tm = Traffic_model.gravity (Topology.grid 3) in
  Alcotest.check_raises "negative scale"
    (Invalid_argument "Traffic_model.demands: negative scale") (fun () ->
      ignore (Traffic_model.demands tm ~scale:(-1.0) ~epoch:0))

let () =
  Alcotest.run "prete_traffic_models"
    [
      ( "models",
        [
          Alcotest.test_case "by_name round-trip" `Quick test_by_name_roundtrip;
          Alcotest.test_case "by_name unknown lists kinds" `Quick
            test_by_name_unknown;
          Alcotest.test_case "to_traffic agrees with demands" `Quick
            test_to_traffic_agrees_with_demands;
          Alcotest.test_case "negative scale rejected" `Quick
            test_negative_scale_rejected;
        ] );
      ( "models.props",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_gravity_mass_law;
            prop_diurnal_periodic;
            prop_diurnal_peak_at_phase;
            prop_flash_conserves_baseline;
            prop_coremelt_conserves_baseline;
            prop_flash_only_amplifies;
            prop_coremelt_attack_flows;
            prop_same_seed_bit_identical;
            prop_demands_scale_linear;
          ] );
    ]
