(* Tests for prete_ml: corpus splitting/oversampling, encoder, metrics,
   decision tree, baselines and the MLP (Table 5 / Table 8 behaviour). *)

open Prete_ml
open Prete_optics

let check_close eps = Alcotest.(check (float eps))

(* Shared fixtures (generated once; tests are read-only on them). *)
let dataset =
  lazy
    (let topo = Prete_net.Topology.twan () in
     let model = Fiber_model.generate topo in
     (topo, model, Dataset.generate ~model ~horizon_days:200 topo))

let corpus = lazy (let _, _, ds = Lazy.force dataset in Corpus.of_dataset ds)

let trained_mlp =
  lazy
    (let c = Lazy.force corpus in
     Mlp.train ~config:{ Mlp.default_config with Mlp.epochs = 15 } c.Corpus.train)

let sample_feature () =
  let topo, _, _ = Lazy.force dataset in
  let rng = Prete_util.Rng.create 5 in
  Hazard.sample_features rng ~topo ~fiber:2 ~epoch:50

(* ------------------------------------------------------------------ *)
(* Corpus                                                               *)
(* ------------------------------------------------------------------ *)

let test_corpus_split_sizes () =
  let _, _, ds = Lazy.force dataset in
  let c = Lazy.force corpus in
  let total = Array.length c.Corpus.train + Array.length c.Corpus.test in
  Alcotest.(check int) "no events lost" (Array.length ds.Dataset.degradations) total;
  let frac =
    float_of_int (Array.length c.Corpus.train) /. float_of_int total
  in
  Alcotest.(check bool) "~80% train" true (frac >= 0.75 && frac <= 0.85)

let test_corpus_split_chronological_per_fiber () =
  (* For each fiber, every training example predates every test example. *)
  let _, _, ds = Lazy.force dataset in
  let c = Lazy.force corpus in
  let durations_key (e : Corpus.example) = e.Corpus.features.Hazard.duration_s in
  ignore durations_key;
  let last_train = Hashtbl.create 64 and first_test = Hashtbl.create 64 in
  (* Recover epochs by matching duration_s (unique w.h.p.) back to the
     dataset — instead, recompute split directly. *)
  let per_fiber = Hashtbl.create 64 in
  Array.iter
    (fun (d : Dataset.degradation) ->
      let k = d.Dataset.d_fiber in
      Hashtbl.replace per_fiber k
        (d :: (try Hashtbl.find per_fiber k with Not_found -> [])))
    ds.Dataset.degradations;
  Hashtbl.iter
    (fun k l ->
      let arr = Array.of_list (List.rev l) in
      let cut = Array.length arr * 8 / 10 in
      if cut > 0 && cut < Array.length arr then begin
        Hashtbl.replace last_train k arr.(cut - 1).Dataset.d_epoch;
        Hashtbl.replace first_test k arr.(cut).Dataset.d_epoch
      end)
    per_fiber;
  Hashtbl.iter
    (fun k lt ->
      match Hashtbl.find_opt first_test k with
      | Some ft -> Alcotest.(check bool) "train before test" true (lt <= ft)
      | None -> ())
    last_train;
  ignore c

let test_oversample_balances () =
  let c = Lazy.force corpus in
  let balanced = Corpus.oversample ~seed:17 c.Corpus.train in
  let b = Corpus.class_balance balanced in
  check_close 0.02 "balanced" 0.5 b;
  Alcotest.(check bool) "larger or equal" true
    (Array.length balanced >= Array.length c.Corpus.train)

let test_oversample_same_seed_bit_identical () =
  let c = Lazy.force corpus in
  let a = Corpus.oversample ~seed:99 c.Corpus.train in
  let b = Corpus.oversample ~seed:99 c.Corpus.train in
  Alcotest.(check bool) "same seed, same corpus" true (a = b);
  (* A different seed must shuffle differently (equal multisets, so only
     the order can differ — and with hundreds of examples it does). *)
  let d = Corpus.oversample ~seed:100 c.Corpus.train in
  Alcotest.(check int) "same size" (Array.length a) (Array.length d);
  Alcotest.(check bool) "different seed, different order" true (a <> d)

let test_oversample_degenerate () =
  let c = Lazy.force corpus in
  let pos = Array.of_list (List.filter (fun e -> e.Corpus.label) (Array.to_list c.Corpus.train)) in
  let out = Corpus.oversample ~seed:17 pos in
  Alcotest.(check int) "single class unchanged" (Array.length pos) (Array.length out);
  Alcotest.(check int) "empty ok" 0 (Array.length (Corpus.oversample ~seed:17 [||]))

(* ------------------------------------------------------------------ *)
(* Encoder                                                              *)
(* ------------------------------------------------------------------ *)

let test_encoder_dense_shape () =
  let c = Lazy.force corpus in
  let enc = Encoder.fit c.Corpus.train in
  let e = Encoder.encode enc (sample_feature ()) in
  Alcotest.(check int) "dense width" (Encoder.dense_width enc) (Array.length e.Encoder.dense);
  Alcotest.(check int) "5 numerics + 24 hours + 4 vendors" (5 + 24 + 4)
    (Encoder.dense_width enc)

let test_encoder_scaling_bounds () =
  let c = Lazy.force corpus in
  let enc = Encoder.fit c.Corpus.train in
  Array.iter
    (fun (ex : Corpus.example) ->
      let e = Encoder.encode enc ex.Corpus.features in
      Array.iter
        (fun v -> Alcotest.(check bool) "in [0,1]" true (v >= 0.0 && v <= 1.0))
        e.Encoder.dense)
    c.Corpus.test

let test_encoder_onehot () =
  let c = Lazy.force corpus in
  let enc = Encoder.fit c.Corpus.train in
  let f = { (sample_feature ()) with Hazard.time_of_day = 13.4; Hazard.vendor = 2 } in
  let e = Encoder.encode enc f in
  (* Exactly one hour bit and one vendor bit set. *)
  let hours = Array.sub e.Encoder.dense Encoder.num_numeric 24 in
  let vendors = Array.sub e.Encoder.dense (Encoder.num_numeric + 24) 4 in
  check_close 1e-12 "one hour" 1.0 (Prete_util.Stats.sum hours);
  check_close 1e-12 "hour 13" 1.0 hours.(13);
  check_close 1e-12 "one vendor" 1.0 (Prete_util.Stats.sum vendors);
  check_close 1e-12 "vendor 2" 1.0 vendors.(2)

let test_encoder_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Encoder.fit: empty training set")
    (fun () -> ignore (Encoder.fit [||]))

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_confusion () =
  let predicted = [| true; true; false; false; true |] in
  let actual = [| true; false; false; true; true |] in
  let c = Metrics.confusion ~predicted ~actual in
  Alcotest.(check int) "tp" 2 c.Metrics.tp;
  Alcotest.(check int) "fp" 1 c.Metrics.fp;
  Alcotest.(check int) "tn" 1 c.Metrics.tn;
  Alcotest.(check int) "fn" 1 c.Metrics.fn;
  check_close 1e-9 "precision" (2.0 /. 3.0) (Metrics.precision c);
  check_close 1e-9 "recall" (2.0 /. 3.0) (Metrics.recall c);
  check_close 1e-9 "accuracy" 0.6 (Metrics.accuracy c);
  check_close 1e-9 "f1" (2.0 /. 3.0) (Metrics.f1 c)

let test_metrics_degenerate () =
  let c = Metrics.confusion ~predicted:[| false; false |] ~actual:[| true; false |] in
  check_close 1e-9 "precision 0 when no positives predicted" 0.0 (Metrics.precision c);
  check_close 1e-9 "f1 0" 0.0 (Metrics.f1 c)

let test_metrics_mae () =
  check_close 1e-9 "mae" 0.25
    (Metrics.mean_abs_error ~predicted:[| 0.5; 1.0 |] ~actual:[| 0.75; 0.75 |])

(* ------------------------------------------------------------------ *)
(* Decision tree                                                        *)
(* ------------------------------------------------------------------ *)

let test_dtree_separable () =
  (* A perfectly separable toy problem: degree > 6.5 always cuts. *)
  let base = sample_feature () in
  let mk degree label =
    { Corpus.features = { base with Hazard.degree };
      Corpus.label = label;
      Corpus.true_hazard = (if label then 1.0 else 0.0) }
  in
  let examples =
    Array.init 200 (fun i ->
        let d = 3.0 +. (float_of_int i /. 199.0 *. 7.0) in
        mk d (d > 6.5))
  in
  let t = Dtree.train examples in
  Alcotest.(check bool) "classifies low" false
    (Dtree.predict_label t { base with Hazard.degree = 4.0 });
  Alcotest.(check bool) "classifies high" true
    (Dtree.predict_label t { base with Hazard.degree = 9.0 })

let test_dtree_depth_bounded () =
  let c = Lazy.force corpus in
  let t = Dtree.train ~config:{ Dtree.default_config with Dtree.max_depth = 4 } c.Corpus.train in
  Alcotest.(check bool) "depth <= 4" true (Dtree.depth t <= 4);
  Alcotest.(check bool) "has structure" true (Dtree.num_leaves t >= 2)

let test_dtree_beats_baselines () =
  let _, model, _ = Lazy.force dataset in
  let c = Lazy.force corpus in
  let t = Dtree.train c.Corpus.train in
  let dt_c = Metrics.evaluate ~predict:(Dtree.predict_label t) c.Corpus.test in
  let st = Baselines.statistic_train c.Corpus.train in
  let st_c = Metrics.evaluate ~predict:(Baselines.statistic_label st) c.Corpus.test in
  ignore model;
  Alcotest.(check bool) "DT F1 > statistic F1 (Table 5 ordering)" true
    (Metrics.f1 dt_c > Metrics.f1 st_c)

let test_dtree_proba_range () =
  let c = Lazy.force corpus in
  let t = Dtree.train c.Corpus.train in
  Array.iter
    (fun (e : Corpus.example) ->
      let p = Dtree.predict_proba t e.Corpus.features in
      Alcotest.(check bool) "in [0,1]" true (p >= 0.0 && p <= 1.0))
    c.Corpus.test

(* ------------------------------------------------------------------ *)
(* Baselines                                                            *)
(* ------------------------------------------------------------------ *)

let test_naive_never_fires () =
  (* Table 5: the static-probability approach has P ≈ R ≈ 0. *)
  let _, model, _ = Lazy.force dataset in
  let c = Lazy.force corpus in
  let n = Baselines.naive_train model in
  let conf = Metrics.evaluate ~predict:(Baselines.naive_label n) c.Corpus.test in
  Alcotest.(check int) "no positives" 0 (conf.Metrics.tp + conf.Metrics.fp);
  check_close 1e-9 "P=0" 0.0 (Metrics.precision conf);
  check_close 1e-9 "R=0" 0.0 (Metrics.recall conf)

let test_statistic_uses_fiber_rates () =
  let c = Lazy.force corpus in
  let s = Baselines.statistic_train c.Corpus.train in
  (* Probabilities must vary across fibers (the fiber-identity signal). *)
  let f = sample_feature () in
  let ps =
    List.init 20 (fun fid -> Baselines.statistic_proba s { f with Hazard.fiber = fid })
  in
  Alcotest.(check bool) "heterogeneous" true
    (List.exists (fun p -> Float.abs (p -. List.hd ps) > 0.05) ps)

let test_statistic_partial_recall () =
  (* The statistic model catches some but not all cuts (Table 5). *)
  let c = Lazy.force corpus in
  let s = Baselines.statistic_train c.Corpus.train in
  let conf = Metrics.evaluate ~predict:(Baselines.statistic_label s) c.Corpus.test in
  let r = Metrics.recall conf in
  Alcotest.(check bool) (Printf.sprintf "0 < recall %.2f < 0.6" r) true (r > 0.0 && r < 0.6)

(* ------------------------------------------------------------------ *)
(* MLP                                                                  *)
(* ------------------------------------------------------------------ *)

let test_mlp_learns_separable () =
  let base = sample_feature () in
  let mk degree label =
    { Corpus.features = { base with Hazard.degree };
      Corpus.label = label;
      Corpus.true_hazard = (if label then 1.0 else 0.0) }
  in
  let examples =
    Array.init 300 (fun i ->
        let d = 3.0 +. (float_of_int i /. 299.0 *. 7.0) in
        mk d (d > 6.5))
  in
  let t = Mlp.train ~config:{ Mlp.default_config with Mlp.epochs = 40 } examples in
  Alcotest.(check bool) "low degree -> no cut" false
    (Mlp.predict_label t { base with Hazard.degree = 3.5 });
  Alcotest.(check bool) "high degree -> cut" true
    (Mlp.predict_label t { base with Hazard.degree = 9.5 })

let test_mlp_proba_valid () =
  let t = Lazy.force trained_mlp in
  let c = Lazy.force corpus in
  Array.iter
    (fun (e : Corpus.example) ->
      let p = Mlp.predict_proba t e.Corpus.features in
      Alcotest.(check bool) "in (0,1)" true (p > 0.0 && p < 1.0))
    c.Corpus.test

let test_mlp_table5_performance () =
  (* Table 5 ordering and magnitude: NN reaches ~0.8 P/R, the best of all
     models. *)
  let _, model, _ = Lazy.force dataset in
  let c = Lazy.force corpus in
  let t = Lazy.force trained_mlp in
  let nn_c = Metrics.evaluate ~predict:(Mlp.predict_label t) c.Corpus.test in
  let p = Metrics.precision nn_c and r = Metrics.recall nn_c in
  Alcotest.(check bool) (Printf.sprintf "precision %.2f >= 0.7" p) true (p >= 0.7);
  Alcotest.(check bool) (Printf.sprintf "recall %.2f >= 0.7" r) true (r >= 0.7);
  let dt = Dtree.train c.Corpus.train in
  let dt_c = Metrics.evaluate ~predict:(Dtree.predict_label dt) c.Corpus.test in
  Alcotest.(check bool) "NN F1 >= DT F1" true (Metrics.f1 nn_c >= Metrics.f1 dt_c);
  let n = Baselines.naive_train model in
  let nv_c = Metrics.evaluate ~predict:(Baselines.naive_label n) c.Corpus.test in
  Alcotest.(check bool) "NN beats naive" true (Metrics.f1 nn_c > Metrics.f1 nv_c)

let test_mlp_prediction_error_beats_naive () =
  (* Fig. 14: the NN's probability error against the true hazard is far
     below the static-probability baseline's. *)
  let _, model, _ = Lazy.force dataset in
  let c = Lazy.force corpus in
  let t = Lazy.force trained_mlp in
  let actual = Array.map (fun e -> e.Corpus.true_hazard) c.Corpus.test in
  let nn_pred =
    Array.map (fun (e : Corpus.example) -> Mlp.predict_proba t e.Corpus.features) c.Corpus.test
  in
  let n = Baselines.naive_train model in
  let naive_pred =
    Array.map (fun (e : Corpus.example) -> Baselines.naive_proba n e.Corpus.features) c.Corpus.test
  in
  let nn_mae = Metrics.mean_abs_error ~predicted:nn_pred ~actual in
  let naive_mae = Metrics.mean_abs_error ~predicted:naive_pred ~actual in
  Alcotest.(check bool)
    (Printf.sprintf "NN MAE %.3f < naive MAE %.3f / 2" nn_mae naive_mae)
    true
    (nn_mae < naive_mae /. 2.0)

let test_mlp_ablation_fiber_id_worst () =
  (* Table 8: removing the fiber id hurts the most. *)
  let c = Lazy.force corpus in
  let cfg = { Mlp.default_config with Mlp.epochs = 15 } in
  let f1_of ablate =
    let t = Mlp.train ~config:cfg ?ablate c.Corpus.train in
    Metrics.f1 (Metrics.evaluate ~predict:(Mlp.predict_label t) c.Corpus.test)
  in
  let full = f1_of None in
  let wo_fiber = f1_of (Some Mlp.Fiber_id) in
  let wo_vendor = f1_of (Some Mlp.Vendor) in
  Alcotest.(check bool)
    (Printf.sprintf "w/o fiber id %.2f < full %.2f" wo_fiber full)
    true (wo_fiber < full);
  Alcotest.(check bool)
    (Printf.sprintf "w/o fiber id %.2f <= w/o vendor %.2f" wo_fiber wo_vendor)
    true (wo_fiber <= wo_vendor)

let test_mlp_batch_matches_single () =
  let t = Lazy.force trained_mlp in
  let c = Lazy.force corpus in
  let fs = Array.map (fun (e : Corpus.example) -> e.Corpus.features) (Array.sub c.Corpus.test 0 20) in
  let batch = Mlp.predict_batch t fs in
  Array.iteri
    (fun i f -> check_close 1e-12 "batch = single" (Mlp.predict_proba t f) batch.(i))
    fs

let test_mlp_deterministic () =
  let c = Lazy.force corpus in
  let cfg = { Mlp.default_config with Mlp.epochs = 3 } in
  let t1 = Mlp.train ~config:cfg c.Corpus.train in
  let t2 = Mlp.train ~config:cfg c.Corpus.train in
  let f = sample_feature () in
  check_close 1e-12 "same seed same model" (Mlp.predict_proba t1 f) (Mlp.predict_proba t2 f)

let test_mlp_invalid_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Mlp.train: empty training set")
    (fun () -> ignore (Mlp.train [||]));
  let base = sample_feature () in
  let ex = { Corpus.features = base; Corpus.label = true; Corpus.true_hazard = 1.0 } in
  Alcotest.check_raises "single class"
    (Invalid_argument "Mlp.train: single-class training set") (fun () ->
      ignore (Mlp.train [| ex; ex |]))

let test_mlp_nll_decreases () =
  (* More training epochs must not make the fit (on train) worse. *)
  let c = Lazy.force corpus in
  let small = Array.sub c.Corpus.train 0 400 in
  let t1 = Mlp.train ~config:{ Mlp.default_config with Mlp.epochs = 1 } small in
  let t20 = Mlp.train ~config:{ Mlp.default_config with Mlp.epochs = 20 } small in
  Alcotest.(check bool) "nll improves" true
    (Mlp.average_nll t20 small < Mlp.average_nll t1 small)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prete_ml"
    [
      ( "corpus",
        [
          Alcotest.test_case "split sizes" `Slow test_corpus_split_sizes;
          Alcotest.test_case "chronological per fiber" `Slow test_corpus_split_chronological_per_fiber;
          Alcotest.test_case "oversample balances" `Slow test_oversample_balances;
          Alcotest.test_case "oversample degenerate" `Slow test_oversample_degenerate;
          Alcotest.test_case "oversample same-seed bit-identical" `Slow
            test_oversample_same_seed_bit_identical;
        ] );
      ( "encoder",
        [
          Alcotest.test_case "dense shape" `Slow test_encoder_dense_shape;
          Alcotest.test_case "scaling bounds" `Slow test_encoder_scaling_bounds;
          Alcotest.test_case "one-hot" `Slow test_encoder_onehot;
          Alcotest.test_case "empty raises" `Quick test_encoder_empty_raises;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "confusion" `Quick test_metrics_confusion;
          Alcotest.test_case "degenerate" `Quick test_metrics_degenerate;
          Alcotest.test_case "mae" `Quick test_metrics_mae;
        ] );
      ( "dtree",
        [
          Alcotest.test_case "separable" `Quick test_dtree_separable;
          Alcotest.test_case "depth bounded" `Slow test_dtree_depth_bounded;
          Alcotest.test_case "beats baselines" `Slow test_dtree_beats_baselines;
          Alcotest.test_case "proba range" `Slow test_dtree_proba_range;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "naive never fires (Table 5)" `Slow test_naive_never_fires;
          Alcotest.test_case "statistic fiber rates" `Slow test_statistic_uses_fiber_rates;
          Alcotest.test_case "statistic partial recall" `Slow test_statistic_partial_recall;
        ] );
      ( "mlp",
        [
          Alcotest.test_case "learns separable" `Slow test_mlp_learns_separable;
          Alcotest.test_case "proba valid" `Slow test_mlp_proba_valid;
          Alcotest.test_case "Table 5 performance" `Slow test_mlp_table5_performance;
          Alcotest.test_case "Fig 14 error vs naive" `Slow test_mlp_prediction_error_beats_naive;
          Alcotest.test_case "Table 8 fiber-id ablation" `Slow test_mlp_ablation_fiber_id_worst;
          Alcotest.test_case "batch = single" `Slow test_mlp_batch_matches_single;
          Alcotest.test_case "deterministic" `Slow test_mlp_deterministic;
          Alcotest.test_case "invalid input" `Quick test_mlp_invalid_input;
          Alcotest.test_case "nll decreases" `Slow test_mlp_nll_decreases;
        ] );
    ]
