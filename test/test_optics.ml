(* Tests for prete_optics: ground-truth hazard, per-fiber probability
   model, event-log generation (measurement-section statistics) and
   telemetry synthesis/granularity analysis. *)

open Prete_optics
open Prete_util

let check_close eps = Alcotest.(check (float eps))

let small_dataset =
  lazy (Dataset.generate ~seed:11 ~horizon_days:120 (Prete_net.Topology.twan ()))

(* ------------------------------------------------------------------ *)
(* Hazard                                                               *)
(* ------------------------------------------------------------------ *)

let test_time_factor_anchors () =
  (* Paper Fig. 6: ~60% at midnight, ~20% at 6am. *)
  check_close 1e-9 "midnight" 0.60 (Hazard.time_factor 0.0);
  check_close 1e-9 "6am" 0.20 (Hazard.time_factor 6.0);
  check_close 1e-9 "wraps" (Hazard.time_factor 0.0) (Hazard.time_factor 24.0);
  check_close 1e-9 "interpolates" 0.40 (Hazard.time_factor 3.0)

let test_factor_monotonicity () =
  Alcotest.(check bool) "degree increasing" true
    (Hazard.degree_factor 9.0 > Hazard.degree_factor 4.0);
  Alcotest.(check bool) "gradient increasing" true
    (Hazard.gradient_factor 0.4 > Hazard.gradient_factor 0.01);
  Alcotest.(check bool) "fluctuation increasing" true
    (Hazard.fluctuation_factor 20 > Hazard.fluctuation_factor 1)

let test_fiber_factor_range () =
  for f = 0 to 49 do
    let v = Hazard.fiber_factor ~num_fibers:50 f in
    Alcotest.(check bool) "in [0.55, 1.45]" true (v >= 0.55 && v <= 1.45)
  done

let test_hazard_bounds () =
  let topo = Prete_net.Topology.twan () in
  let rng = Rng.create 1 in
  for _ = 1 to 500 do
    let f = Hazard.sample_features rng ~topo ~fiber:(Rng.int rng 50) ~epoch:(Rng.int rng 96) in
    let h = Hazard.eval ~num_fibers:50 f in
    Alcotest.(check bool) "clamped" true (h >= 0.02 && h <= 0.98)
  done

let test_hazard_mean_calibrated () =
  (* The generative hazard must average ~0.4 over the sampled feature
     distribution: "40% of fiber degradations lead to fiber cuts". *)
  let ds = Lazy.force small_dataset in
  let h = Dataset.hazard_fraction ds in
  Alcotest.(check bool) (Printf.sprintf "hazard %.3f in [0.34, 0.46]" h) true
    (h >= 0.34 && h <= 0.46)

let test_feature_sampling_ranges () =
  let topo = Prete_net.Topology.twan () in
  let rng = Rng.create 2 in
  for _ = 1 to 300 do
    let f = Hazard.sample_features rng ~topo ~fiber:3 ~epoch:77 in
    Alcotest.(check bool) "degree 3-10 dB" true
      (f.Hazard.degree >= 3.0 && f.Hazard.degree <= 10.0);
    Alcotest.(check bool) "time of day" true
      (f.Hazard.time_of_day >= 0.0 && f.Hazard.time_of_day < 24.0);
    Alcotest.(check bool) "gradient positive" true (f.Hazard.gradient > 0.0);
    Alcotest.(check bool) "duration positive" true (f.Hazard.duration_s > 0.0)
  done

(* ------------------------------------------------------------------ *)
(* Fiber model                                                          *)
(* ------------------------------------------------------------------ *)

let test_fiber_model_defaults () =
  let topo = Prete_net.Topology.b4 () in
  let m = Fiber_model.generate topo in
  Alcotest.(check int) "per fiber" (Prete_net.Topology.num_fibers topo)
    (Array.length m.Fiber_model.p_cut);
  check_close 1e-9 "alpha" 0.25 m.Fiber_model.alpha;
  check_close 1e-9 "slope 1.6" 1.6 (Fiber_model.slope m);
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "probabilities sane" true (p > 0.0 && p < 1.0);
      (* Linear relation p_cut = slope * p_degrade at alpha = 25%. *)
      check_close 1e-9 "linear relation" p
        (1.6 *. m.Fiber_model.p_degrade.(i)))
    m.Fiber_model.p_cut

let test_fiber_model_alpha_sweep () =
  let topo = Prete_net.Topology.b4 () in
  let base = Fiber_model.generate ~alpha:0.25 topo in
  let high = Fiber_model.generate ~alpha:1.0 topo in
  let zero = Fiber_model.generate ~alpha:0.0 topo in
  (* Total cut probability is invariant across alpha. *)
  Array.iteri
    (fun i p -> check_close 1e-12 "p_cut invariant" p high.Fiber_model.p_cut.(i))
    base.Fiber_model.p_cut;
  (* alpha = 0: no degradations ever precede cuts. *)
  Array.iter (fun p -> check_close 1e-12 "no degradations" 0.0 p) zero.Fiber_model.p_degrade;
  Array.iteri
    (fun i p -> check_close 1e-12 "all cuts unpredictable" base.Fiber_model.p_cut.(i) p)
    zero.Fiber_model.p_unpredictable;
  (* alpha = 1: no unpredictable channel. *)
  Array.iter (fun p -> check_close 1e-12 "all predictable" 0.0 p) high.Fiber_model.p_unpredictable

let test_fiber_model_deterministic () =
  let topo = Prete_net.Topology.ibm () in
  let a = Fiber_model.generate ~seed:9 topo and b = Fiber_model.generate ~seed:9 topo in
  Alcotest.(check bool) "same seed same model" true (a = b);
  let c = Fiber_model.generate ~seed:10 topo in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_fiber_model_validation () =
  let topo = Prete_net.Topology.b4 () in
  Alcotest.check_raises "alpha range"
    (Invalid_argument "Fiber_model.generate: alpha in [0,1]") (fun () ->
      ignore (Fiber_model.generate ~alpha:1.5 topo))

(* ------------------------------------------------------------------ *)
(* Dataset                                                              *)
(* ------------------------------------------------------------------ *)

let test_dataset_alpha_25 () =
  let ds = Lazy.force small_dataset in
  let f = Dataset.predictable_fraction ds in
  Alcotest.(check bool) (Printf.sprintf "predictable %.3f near 25%%" f) true
    (f >= 0.20 && f <= 0.30)

let test_dataset_chronological () =
  let ds = Lazy.force small_dataset in
  let ok = ref true in
  Array.iteri
    (fun i (d : Dataset.degradation) ->
      if i > 0 && d.Dataset.d_epoch < ds.Dataset.degradations.(i - 1).Dataset.d_epoch then
        ok := false)
    ds.Dataset.degradations;
  Alcotest.(check bool) "sorted by epoch" true !ok

let test_dataset_predictable_cuts_match () =
  let ds = Lazy.force small_dataset in
  let by_degr =
    Array.fold_left (fun a (d : Dataset.degradation) -> if d.Dataset.led_to_cut then a + 1 else a)
      0 ds.Dataset.degradations
  in
  Alcotest.(check int) "each cutting degradation yields a predictable cut"
    by_degr (Dataset.num_predictable ds)

let test_dataset_duration_median () =
  (* Fig. 4a: 50% of degradations last under 10 s. *)
  let ds = Lazy.force small_dataset in
  let m = Stats.median (Dataset.durations ds) in
  Alcotest.(check bool) (Printf.sprintf "median %.1f s near 10" m) true
    (m >= 6.0 && m <= 15.0)

let test_dataset_gap_structure () =
  (* Fig. 5a shape: a fast mass within the TE window and a long tail of
     unrelated cuts days later. *)
  let ds = Lazy.force small_dataset in
  let gaps = Dataset.gaps_to_next_cut ds in
  Alcotest.(check bool) "some gaps" true (Array.length gaps > 100);
  let within_1e3 = Stats.cdf_at gaps 1000.0 in
  let beyond_day = 1.0 -. Stats.cdf_at gaps 86400.0 in
  Alcotest.(check bool) "fast mass" true (within_1e3 >= 0.3);
  Alcotest.(check bool) "long tail" true (beyond_day >= 0.1);
  (* Predictable gaps sit inside the 5-minute window. *)
  Array.iter
    (fun (d : Dataset.degradation) ->
      if d.Dataset.led_to_cut then
        Alcotest.(check bool) "gap < 300 s" true (d.Dataset.gap_to_cut_s < 300.0))
    ds.Dataset.degradations

let test_dataset_contingency_rejects () =
  (* Tables 6: degradations and cuts dependent with overwhelming
     significance. *)
  let ds = Lazy.force small_dataset in
  let tbl = Dataset.epoch_contingency ds in
  let r = Hypothesis.chi2_contingency tbl in
  Alcotest.(check bool) "rejected" true (Hypothesis.reject r);
  Alcotest.(check bool) "p far below 1e-50" true (r.Hypothesis.log10_p < -50.0)

let test_dataset_contingency_totals () =
  let ds = Lazy.force small_dataset in
  let tbl = Dataset.epoch_contingency ds in
  let total = tbl.(0).(0) +. tbl.(0).(1) +. tbl.(1).(0) +. tbl.(1).(1) in
  let expected =
    float_of_int (Prete_net.Topology.num_fibers ds.Dataset.topo * ds.Dataset.horizon_epochs)
  in
  check_close 0.5 "fiber-epochs conserved" expected total

let test_dataset_features_significant () =
  (* Table 1: every critical feature rejects independence at 0.01. *)
  let ds = Lazy.force small_dataset in
  List.iter
    (fun which ->
      let values, outcomes = Dataset.feature_outcome ds which in
      let r = Hypothesis.chi2_binned ~bins:10 ~values ~outcomes in
      Alcotest.(check bool) "significant" true (Hypothesis.reject r))
    [ `Time; `Degree; `Gradient; `Fluctuation ]

let test_dataset_fig12_linear () =
  (* Fig. 12a: cuts grow linearly with degradations across fibers. *)
  let ds = Lazy.force small_dataset in
  let counts = Dataset.per_fiber_counts ds in
  let xs = Array.map (fun (d, _) -> float_of_int d) counts in
  let ys = Array.map (fun (_, c) -> float_of_int c) counts in
  let corr = Stats.pearson xs ys in
  Alcotest.(check bool) (Printf.sprintf "correlation %.3f" corr) true (corr > 0.9);
  let slope, _ = Stats.linear_fit xs ys in
  Alcotest.(check bool) (Printf.sprintf "slope %.2f near 1.6" slope) true
    (slope >= 1.2 && slope <= 2.0)

let test_dataset_deterministic () =
  let topo = Prete_net.Topology.b4 () in
  let a = Dataset.generate ~seed:3 ~horizon_days:10 topo in
  let b = Dataset.generate ~seed:3 ~horizon_days:10 topo in
  Alcotest.(check int) "same degradations" (Array.length a.Dataset.degradations)
    (Array.length b.Dataset.degradations);
  Alcotest.(check bool) "same cuts" true (a.Dataset.cuts = b.Dataset.cuts)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                            *)
(* ------------------------------------------------------------------ *)

let sample_features () =
  let topo = Prete_net.Topology.twan () in
  let rng = Rng.create 21 in
  Hazard.sample_features rng ~topo ~fiber:0 ~epoch:0

let test_classify () =
  Alcotest.(check bool) "healthy" true (Telemetry.classify ~baseline:20.0 21.0 = Telemetry.Healthy);
  Alcotest.(check bool) "degraded" true (Telemetry.classify ~baseline:20.0 25.0 = Telemetry.Degraded);
  Alcotest.(check bool) "cut" true (Telemetry.classify ~baseline:20.0 31.0 = Telemetry.Cut)

let test_synthesize_structure () =
  (* The §5 testbed scenario: healthy 0-65 s, degraded 65-110 s,
     cut 110-400 s. *)
  let f = { (sample_features ()) with Hazard.degree = 6.0; Hazard.duration_s = 45.0;
            Hazard.gradient = 0.05; Hazard.fluctuation = 3 } in
  let tr =
    Telemetry.synthesize ~baseline:20.0 ~healthy_s:65 ~degradation:f ~cut_at_s:110
      ~total_s:400 ()
  in
  let st = Telemetry.states tr in
  Alcotest.(check int) "length" 400 (Array.length st);
  Alcotest.(check bool) "starts healthy" true (st.(10) = Telemetry.Healthy);
  Alcotest.(check bool) "degraded mid" true (st.(80) = Telemetry.Degraded);
  Alcotest.(check bool) "cut after 110" true (st.(200) = Telemetry.Cut);
  Alcotest.(check bool) "cut at end" true (st.(399) = Telemetry.Cut)

let test_fine_sampling_sees_degradation () =
  let f = { (sample_features ()) with Hazard.degree = 6.0; Hazard.duration_s = 45.0 } in
  let tr =
    Telemetry.synthesize ~baseline:20.0 ~healthy_s:65 ~degradation:f ~cut_at_s:110
      ~total_s:400 ()
  in
  Alcotest.(check bool) "1 s sampling sees it" true
    (Telemetry.degradation_visible ~granularity_s:1 tr)

let test_coarse_sampling_misses_short_degradation () =
  (* Fig. 4b: 3-minute polling misses a short-lived degradation. *)
  let f = { (sample_features ()) with Hazard.degree = 6.0; Hazard.duration_s = 8.0 } in
  let tr =
    Telemetry.synthesize ~baseline:20.0 ~healthy_s:100 ~degradation:f ~cut_at_s:108
      ~total_s:400 ()
  in
  Alcotest.(check bool) "180 s sampling misses it" false
    (Telemetry.degradation_visible ~granularity_s:180 tr)

let test_corrupt_dropout_masks_degradation () =
  (* A dropout window over the whole degradation makes the monitor report
     baseline readings: fine-grained sampling no longer sees it. *)
  let f = { (sample_features ()) with Hazard.degree = 6.0; Hazard.duration_s = 45.0 } in
  let tr =
    Telemetry.synthesize ~baseline:20.0 ~healthy_s:65 ~degradation:f ~cut_at_s:110
      ~total_s:400 ()
  in
  Alcotest.(check bool) "visible before corruption" true
    (Telemetry.degradation_visible ~granularity_s:1 tr);
  let masked =
    Telemetry.corrupt [ Telemetry.Dropout { start_s = 60; len_s = 55 } ] tr
  in
  Alcotest.(check bool) "masked by dropout" false
    (Telemetry.degradation_visible ~granularity_s:1 masked);
  (* The input trace is untouched. *)
  Alcotest.(check bool) "original intact" true
    (Telemetry.degradation_visible ~granularity_s:1 tr)

let test_corrupt_stuck_freezes_value () =
  let f = { (sample_features ()) with Hazard.degree = 6.0; Hazard.duration_s = 45.0 } in
  let tr =
    Telemetry.synthesize ~baseline:20.0 ~healthy_s:65 ~degradation:f ~cut_at_s:110
      ~total_s:400 ()
  in
  let stuck =
    Telemetry.corrupt [ Telemetry.Stuck { start_s = 50; len_s = 300 } ] tr
  in
  let states = Telemetry.states stuck in
  (* The sensor froze on a healthy reading, so the cut at 110 s is
     invisible until the window ends at 350 s. *)
  Alcotest.(check bool) "cut hidden while stuck" true (states.(200) = Telemetry.Healthy);
  Alcotest.(check bool) "cut visible after window" true (states.(399) = Telemetry.Cut)

let test_observed_states_count () =
  let tr = Telemetry.synthesize ~baseline:20.0 ~healthy_s:400 ~total_s:400 () in
  Alcotest.(check int) "polls" 4 (Array.length (Telemetry.observed_states ~granularity_s:100 tr))

let test_observed_states_delegates_to_downsample () =
  (* Regression pin for the Fig. 20a machinery: [observed_states] must be
     exactly [classify ∘ Timeseries.downsample] — same poll instants
     (t0-offset multiples of the period), same sampled values, no
     independent reimplementation drifting from the offline path. *)
  let degradation =
    {
      Hazard.fiber = 0;
      region = 0;
      vendor = 0;
      length_km = 80.0;
      time_of_day = 2.0;
      degree = 5.0;
      gradient = 0.2;
      fluctuation = 8;
      duration_s = 90.0;
    }
  in
  let tr =
    Telemetry.synthesize ~seed:21 ~baseline:18.0 ~healthy_s:120 ~degradation
      ~cut_at_s:260 ~total_s:400 ()
  in
  List.iter
    (fun granularity_s ->
      let got = Telemetry.observed_states ~granularity_s tr in
      let expected =
        Array.map
          (fun { Timeseries.t; v } ->
            (tr.Telemetry.t0 +. t, Telemetry.classify ~baseline:tr.Telemetry.baseline v))
          (Timeseries.downsample ~period:granularity_s tr.Telemetry.samples)
      in
      Alcotest.(check bool)
        (Printf.sprintf "delegation at %d s" granularity_s)
        true (got = expected);
      Array.iteri
        (fun i (t, _) ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "poll instant %d at %d s" i granularity_s)
            (tr.Telemetry.t0 +. float_of_int (i * granularity_s))
            t)
        got)
    [ 1; 7; 60; 300 ]

let test_coverage_decreases_with_granularity () =
  (* Fig. 20a: coverage falls from ~25% at 1 s to ~2% at 5 min. *)
  let ds = Lazy.force small_dataset in
  let cov1, occ1 = Telemetry.coverage_occurrence ~granularity_s:1 ds in
  let cov60, _ = Telemetry.coverage_occurrence ~granularity_s:60 ds in
  let cov300, occ300 = Telemetry.coverage_occurrence ~granularity_s:300 ds in
  Alcotest.(check bool) (Printf.sprintf "cov(1s)=%.3f near 0.25" cov1) true
    (cov1 >= 0.18 && cov1 <= 0.30);
  Alcotest.(check bool) "monotone" true (cov1 >= cov60 && cov60 >= cov300);
  Alcotest.(check bool) (Printf.sprintf "cov(300s)=%.3f near 0.02" cov300) true
    (cov300 <= 0.05);
  Alcotest.(check bool) "occurrence below 10% at 5 min" true (occ300 < 0.10);
  Alcotest.(check bool) "occurrence meaningful at 1 s" true (occ1 > 0.2)

let test_baseline_loss_varies () =
  let topo = Prete_net.Topology.b4 () in
  let b0 = Telemetry.baseline_loss topo 0 in
  Alcotest.(check bool) "sane range" true (b0 > 10.0 && b0 < 30.0)

let prop_trace_states_ordered =
  QCheck.Test.make ~name:"healthy before cut in synthesized traces" ~count:30
    QCheck.(int_range 10 120)
    (fun dur ->
      let f = { (sample_features ()) with Hazard.duration_s = float_of_int dur } in
      let tr =
        Telemetry.synthesize ~baseline:18.0 ~healthy_s:50
          ~degradation:f ~cut_at_s:(50 + dur) ~total_s:(50 + dur + 60) ()
      in
      let st = Telemetry.states tr in
      (* After the cut instant everything reads Cut. *)
      let ok = ref true in
      for i = 50 + dur to Array.length st - 1 do
        if st.(i) <> Telemetry.Cut then ok := false
      done;
      !ok)

(* Alpha sweep at the dataset level: alpha = 0 produces no predictable
   cuts; alpha = 1 produces only predictable ones. *)
let test_dataset_alpha_extremes () =
  let topo = Prete_net.Topology.b4 () in
  let zero =
    Dataset.generate ~seed:5 ~horizon_days:60 ~model:(Fiber_model.generate ~alpha:0.0 topo)
      topo
  in
  Alcotest.(check int) "alpha=0: no degradations at all" 0
    (Array.length zero.Dataset.degradations);
  Alcotest.(check bool) "alpha=0: cuts still happen" true
    (Array.length zero.Dataset.cuts > 0);
  let one =
    Dataset.generate ~seed:5 ~horizon_days:60 ~model:(Fiber_model.generate ~alpha:1.0 topo)
      topo
  in
  Array.iter
    (fun (c : Dataset.cut) ->
      Alcotest.(check bool) "alpha=1: every cut predictable" true c.Dataset.c_predictable)
    one.Dataset.cuts

let test_dataset_horizon_scales_events () =
  let topo = Prete_net.Topology.b4 () in
  let short = Dataset.generate ~seed:6 ~horizon_days:50 topo in
  let long = Dataset.generate ~seed:6 ~horizon_days:200 topo in
  let r =
    float_of_int (Array.length long.Dataset.degradations)
    /. float_of_int (max 1 (Array.length short.Dataset.degradations))
  in
  Alcotest.(check bool) (Printf.sprintf "events scale with horizon (%.1fx)" r) true
    (r > 2.5 && r < 6.0)

let prop_coverage_monotone_in_granularity =
  QCheck.Test.make ~name:"coverage non-increasing in polling period" ~count:10
    QCheck.(pair (int_range 1 50) (int_range 1 50))
    (fun (g1, g2) ->
      let ds = Lazy.force small_dataset in
      let g1, g2 = (min g1 g2, max g1 g2) in
      let c1, _ = Telemetry.coverage_occurrence ~granularity_s:g1 ds in
      let c2, _ = Telemetry.coverage_occurrence ~granularity_s:g2 ds in
      (* Monte-Carlo phases differ, allow small noise. *)
      c1 +. 0.02 >= c2)

(* ------------------------------------------------------------------ *)
(* Snr                                                                  *)
(* ------------------------------------------------------------------ *)

let test_snr_chain_monotone () =
  (* More loss -> lower OSNR -> lower Q -> higher BER. *)
  let q_of loss =
    Snr.q_of_db (Snr.q_squared_db ~osnr_db:(Snr.osnr_db ~tx_power_dbm:0.0 ~loss_db:loss ()) ())
  in
  Alcotest.(check bool) "q decreasing in loss" true (q_of 20.0 > q_of 25.0);
  (* Compare BERs inside the sensitive Q range (erfc saturates for large
     Q in double precision). *)
  Alcotest.(check bool) "ber increasing" true
    (Snr.ber ~q:(q_of 45.0) > Snr.ber ~q:(q_of 42.0))

let test_snr_ber_extremes () =
  check_close 1e-9 "huge q -> ~0" 0.0 (Snr.ber ~q:8.0);
  check_close 1e-6 "q 0 -> coin flip" 0.5 (Snr.ber ~q:0.0)

let test_snr_margin_thresholds () =
  (* With tx power set for a 10 dB margin, the paper's degradation window
     (3-10 dB) still decodes and a >=10 dB event does not. *)
  let baseline = 18.0 in
  let tx = Snr.tx_power_for ~baseline_loss_db:baseline () in
  check_close 0.01 "margin is 10 dB" 10.0 (Snr.loss_margin_db ~tx_power_dbm:tx ~baseline_loss_db:baseline);
  let decodable_at extra =
    let loss = baseline +. extra in
    let o = Snr.osnr_db ~tx_power_dbm:tx ~loss_db:loss () in
    let q = Snr.q_of_db (Snr.q_squared_db ~osnr_db:o ()) in
    Snr.decodable ~ber:(Snr.ber ~q) ()
  in
  Alcotest.(check bool) "healthy decodes" true (decodable_at 0.0);
  Alcotest.(check bool) "+3 dB decodes" true (decodable_at 3.0);
  Alcotest.(check bool) "+9.9 dB decodes" true (decodable_at 9.9);
  Alcotest.(check bool) "+10.5 dB does not" false (decodable_at 10.5);
  Alcotest.(check bool) "+18 dB (cut) does not" false (decodable_at 18.0)

let test_snr_trace_decodability () =
  (* The Fig. 4b trace: decodable through the degradation, not after the
     cut — the §3.1 statement. *)
  let baseline = 18.0 in
  let tx = Snr.tx_power_for ~baseline_loss_db:baseline () in
  let f = { (sample_features ()) with Hazard.degree = 6.0; Hazard.duration_s = 30.0;
            Hazard.gradient = 0.02; Hazard.fluctuation = 0 } in
  let tr =
    Telemetry.synthesize ~baseline ~healthy_s:50 ~degradation:f ~cut_at_s:80
      ~total_s:120 ()
  in
  let dec = Snr.trace_decodable ~tx_power_dbm:tx tr in
  Alcotest.(check bool) "healthy decodes" true dec.(10);
  Alcotest.(check bool) "degraded still decodes" true dec.(60);
  Alcotest.(check bool) "cut does not" false dec.(100)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "prete_optics"
    [
      ( "hazard",
        [
          Alcotest.test_case "time anchors (Fig 6)" `Quick test_time_factor_anchors;
          Alcotest.test_case "factor monotonicity" `Quick test_factor_monotonicity;
          Alcotest.test_case "fiber factor range" `Quick test_fiber_factor_range;
          Alcotest.test_case "hazard bounds" `Quick test_hazard_bounds;
          Alcotest.test_case "mean hazard ~40%" `Slow test_hazard_mean_calibrated;
          Alcotest.test_case "feature sampling ranges" `Quick test_feature_sampling_ranges;
        ] );
      ( "fiber_model",
        [
          Alcotest.test_case "defaults and linearity" `Quick test_fiber_model_defaults;
          Alcotest.test_case "alpha sweep invariants" `Quick test_fiber_model_alpha_sweep;
          Alcotest.test_case "deterministic" `Quick test_fiber_model_deterministic;
          Alcotest.test_case "validation" `Quick test_fiber_model_validation;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "alpha ~25% (Fig 5b)" `Slow test_dataset_alpha_25;
          Alcotest.test_case "chronological" `Slow test_dataset_chronological;
          Alcotest.test_case "predictable cuts match" `Slow test_dataset_predictable_cuts_match;
          Alcotest.test_case "duration median (Fig 4a)" `Slow test_dataset_duration_median;
          Alcotest.test_case "gap structure (Fig 5a)" `Slow test_dataset_gap_structure;
          Alcotest.test_case "contingency rejects (Table 6)" `Slow test_dataset_contingency_rejects;
          Alcotest.test_case "contingency totals" `Slow test_dataset_contingency_totals;
          Alcotest.test_case "features significant (Table 1)" `Slow test_dataset_features_significant;
          Alcotest.test_case "linear relation (Fig 12a)" `Slow test_dataset_fig12_linear;
          Alcotest.test_case "deterministic" `Quick test_dataset_deterministic;
          Alcotest.test_case "alpha extremes" `Slow test_dataset_alpha_extremes;
          Alcotest.test_case "horizon scaling" `Slow test_dataset_horizon_scales_events;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "testbed trace structure (Fig 10)" `Quick test_synthesize_structure;
          Alcotest.test_case "fine sampling sees degradation" `Quick test_fine_sampling_sees_degradation;
          Alcotest.test_case "coarse sampling misses (Fig 4b)" `Quick test_coarse_sampling_misses_short_degradation;
          Alcotest.test_case "observed states count" `Quick test_observed_states_count;
          Alcotest.test_case "observed states delegate to downsample (Fig 20a)"
            `Quick test_observed_states_delegates_to_downsample;
          Alcotest.test_case "dropout masks degradation" `Quick
            test_corrupt_dropout_masks_degradation;
          Alcotest.test_case "stuck sensor freezes value" `Quick
            test_corrupt_stuck_freezes_value;
          Alcotest.test_case "coverage vs granularity (Fig 20a)" `Slow test_coverage_decreases_with_granularity;
          Alcotest.test_case "baseline loss" `Quick test_baseline_loss_varies;
        ] );
      ( "telemetry.props",
        qsuite [ prop_trace_states_ordered; prop_coverage_monotone_in_granularity ] );
      ( "snr",
        [
          Alcotest.test_case "chain monotone" `Quick test_snr_chain_monotone;
          Alcotest.test_case "BER extremes" `Quick test_snr_ber_extremes;
          Alcotest.test_case "degradation window decodes (3.1)" `Quick test_snr_margin_thresholds;
          Alcotest.test_case "trace decodability" `Quick test_snr_trace_decodability;
        ] );
    ]
