(* Streaming runtime (prete_rt) tests.

   The load-bearing guarantees:
   - online incremental features == offline Timeseries functions, bit-exact,
     on randomized traces with injected gaps / reordering / duplicates;
   - the event queue and ingest are deterministic and order-correct;
   - Runtime.run is bit-identical across domain counts and replayable from
     its own dump;
   - the instant policy reproduces Simulate.run's availability on the same
     seed, and streaming availability never falls below periodic-only. *)

open Prete
open Prete_net
open Prete_optics
open Prete_rt
module Ts = Prete_util.Timeseries

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Equeue                                                              *)
(* ------------------------------------------------------------------ *)

let test_equeue_order () =
  let q = Equeue.create () in
  List.iter (fun (t, x) -> Equeue.push q ~time:t x)
    [ (5, "e"); (1, "a"); (3, "c"); (1, "b"); (3, "d") ];
  let popped = ref [] in
  let rec go () =
    match Equeue.pop q with
    | Some (t, x) -> popped := (t, x) :: !popped; go ()
    | None -> ()
  in
  go ();
  Alcotest.(check (list (pair int string)))
    "time order, FIFO within a tick"
    [ (1, "a"); (1, "b"); (3, "c"); (3, "d"); (5, "e") ]
    (List.rev !popped);
  Alcotest.(check bool) "empty" true (Equeue.is_empty q)

let test_equeue_pop_until () =
  let q = Equeue.create () in
  List.iter (fun t -> Equeue.push q ~time:t t) [ 4; 0; 2; 7 ];
  Alcotest.(check (list (pair int int)))
    "pops everything due" [ (0, 0); (2, 2); (4, 4) ]
    (Equeue.pop_until q ~time:4);
  Alcotest.(check (option int)) "later event left" (Some 7) (Equeue.peek_time q);
  Alcotest.(check int) "length" 1 (Equeue.length q)

let prop_equeue_sorted =
  QCheck.Test.make ~name:"equeue pops sorted by (time, insertion)" ~count:100
    QCheck.(list (int_range 0 50))
    (fun times ->
      let q = Equeue.create () in
      List.iteri (fun i t -> Equeue.push q ~time:t (t, i)) times;
      let out = ref [] in
      let rec go () =
        match Equeue.pop q with
        | Some (_, x) -> out := x :: !out; go ()
        | None -> ()
      in
      go ();
      let out = List.rev !out in
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (a, i) (b, j) -> compare (a, i) (b, j))
      in
      out = expected)

(* ------------------------------------------------------------------ *)
(* Metrics / Ring                                                      *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Metrics.incr ~by:4 m "x";
  Metrics.incr m "y";
  Alcotest.(check int) "x" 5 (Metrics.counter m "x");
  Alcotest.(check int) "unknown is 0" 0 (Metrics.counter m "zzz");
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check (option (float 0.0))) "gauge" (Some 2.5) (Metrics.gauge m "g")

let test_metrics_histogram () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "lat") [ 0.5; 0.75; 1.5; 3.0; 0.0 ];
  Alcotest.(check int) "count" 5 (Metrics.hist_count m "lat");
  Alcotest.(check (float 1e-12)) "sum" 5.75 (Metrics.hist_sum m "lat");
  Alcotest.(check (float 1e-12)) "mean" 1.15 (Metrics.hist_mean m "lat");
  let core = Metrics.to_json ~walls:false m in
  Alcotest.(check bool) "core has histogram" true (contains core "\"lat\"");
  Alcotest.(check bool) "core has no walls" false (contains core "wall_s");
  Metrics.add_wall m "stage" 0.25;
  Alcotest.(check bool) "walls json" true
    (contains (Metrics.walls_json m) "\"stage\"")

let test_metrics_quantile () =
  let m = Metrics.create () in
  Alcotest.(check (float 0.0)) "empty histogram" 0.0
    (Metrics.hist_quantile m "lat" 0.5);
  (* Single repeated value: every quantile is that value (the in-bucket
     interpolation clamps to the observed range). *)
  for _ = 1 to 10 do
    Metrics.observe m "one" 5.0
  done;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "degenerate hist at q=%.2f" q)
        5.0
        (Metrics.hist_quantile m "one" q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* Spread values: quantiles are monotone in q, stay within the observed
     range, and land within a factor of 2 of the true quantile. *)
  List.iter (Metrics.observe m "lat") [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 ];
  let p50 = Metrics.hist_quantile m "lat" 0.5 in
  let p99 = Metrics.hist_quantile m "lat" 0.99 in
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99);
  Alcotest.(check bool) "p50 within range" true (p50 >= 1.0 && p50 <= 32.0);
  Alcotest.(check bool) "p50 within 2x of true median" true
    (p50 >= 2.0 && p50 <= 8.0);
  Alcotest.(check bool) "p99 near the top" true (p99 >= 16.0 && p99 <= 32.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.hist_quantile: q must be in [0, 1]") (fun () ->
      ignore (Metrics.hist_quantile m "lat" 1.5))

let test_ring_bounded () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check bool) "fresh ring not overflowed" false (Ring.overflowed r);
  for i = 0 to 4 do
    Ring.push r ~tick:i ~kind:"k" ~fiber:i ~value:(float_of_int i)
  done;
  Alcotest.(check int) "total" 5 (Ring.total r);
  Alcotest.(check int) "dropped" 2 (Ring.dropped r);
  Alcotest.(check bool) "overflowed" true (Ring.overflowed r);
  let e = Ring.entries r in
  Alcotest.(check int) "retained" 3 (Array.length e);
  Alcotest.(check (list int)) "oldest first" [ 2; 3; 4 ]
    (Array.to_list (Array.map (fun x -> x.Ring.seq) e))

(* ------------------------------------------------------------------ *)
(* Online ingest: gap parity with Timeseries.interpolate_missing       *)
(* ------------------------------------------------------------------ *)

(* Deliver [present] samples with bounded random delays through the
   ingest's event loop; return the emitted (t, v) stream. *)
let run_ingest ~horizon ~delays present =
  let n = Array.length present in
  let q = Equeue.create () in
  Array.iteri
    (fun t ov ->
      match ov with
      | Some v -> Equeue.push q ~time:(t + delays.(t)) (t, v)
      | None -> ())
    present;
  let ing = Online.ingest_create ~horizon () in
  let out = ref [] in
  for now = 0 to n - 1 + horizon do
    List.iter (fun (_, (t, v)) -> Online.offer ing ~t ~v) (Equeue.pop_until q ~time:now);
    List.iter (fun tv -> out := tv :: !out) (Online.drain ing ~now)
  done;
  List.iter (fun tv -> out := tv :: !out) (Online.flush ing ~upto:(n - 1));
  (List.rev !out, ing)

let gen_gappy_trace =
  QCheck.Gen.(
    int_range 10 120 >>= fun n ->
    int_range 0 3 >>= fun horizon ->
    array_repeat n (pair (float_bound_exclusive 30.0) (int_range 0 99))
    >>= fun raw ->
    array_repeat n (int_range 0 (max 0 horizon)) >>= fun delays ->
    int_range 0 (n - 1) >>= fun keep ->
    let present =
      Array.mapi
        (fun i (v, gap_draw) ->
          (* ~15% gaps, but force index [keep] present so at least one
             sample exists. *)
          if i <> keep && gap_draw < 15 then None else Some v)
        raw
    in
    return (present, delays, horizon))

let prop_ingest_matches_offline =
  QCheck.Test.make ~name:"online gap fill == Timeseries.interpolate_missing"
    ~count:200
    (QCheck.make gen_gappy_trace)
    (fun (present, delays, horizon) ->
      let emitted, _ = run_ingest ~horizon ~delays present in
      let n = Array.length present in
      if List.length emitted <> n then false
      else begin
        let offline = Ts.interpolate_missing present in
        List.for_all2
          (fun (t, v) i -> t = i && Float.equal v offline.(i))
          emitted
          (List.init n Fun.id)
      end)

let prop_ingest_counts_dups =
  QCheck.Test.make ~name:"duplicate delivery changes nothing but the counter"
    ~count:100
    (QCheck.make gen_gappy_trace)
    (fun (present, delays, horizon) ->
      let emitted, _ = run_ingest ~horizon ~delays present in
      (* Re-run with every present sample delivered twice. *)
      let n = Array.length present in
      let q = Equeue.create () in
      Array.iteri
        (fun t ov ->
          match ov with
          | Some v ->
            Equeue.push q ~time:(t + delays.(t)) (t, v);
            Equeue.push q ~time:(t + delays.(t)) (t, v)
          | None -> ())
        present;
      let ing = Online.ingest_create ~horizon () in
      let out = ref [] in
      for now = 0 to n - 1 + horizon do
        List.iter
          (fun (_, (t, v)) -> Online.offer ing ~t ~v)
          (Equeue.pop_until q ~time:now);
        List.iter (fun tv -> out := tv :: !out) (Online.drain ing ~now)
      done;
      List.iter (fun tv -> out := tv :: !out) (Online.flush ing ~upto:(n - 1));
      List.rev !out = emitted && Online.dups ing > 0
      || Array.for_all (( = ) None) present)

let test_ingest_leading_trailing_gaps () =
  let present = [| None; None; Some 4.0; None; Some 6.0; None; None |] in
  let delays = Array.make 7 0 in
  let emitted, ing = run_ingest ~horizon:2 ~delays present in
  Alcotest.(check (list (pair int (float 0.0))))
    "lead <- first, interior lerp, trail <- last"
    [ (0, 4.0); (1, 4.0); (2, 4.0); (3, 5.0); (4, 6.0); (5, 6.0); (6, 6.0) ]
    emitted;
  Alcotest.(check int) "filled counts gaps" 5 (Online.filled ing)

(* ------------------------------------------------------------------ *)
(* Online accumulator: feature parity with offline Timeseries          *)
(* ------------------------------------------------------------------ *)

let prop_acc_matches_offline =
  QCheck.Test.make ~name:"incremental features == offline at every prefix"
    ~count:200
    QCheck.(pair (float_bound_exclusive 20.0) (array_of_size Gen.(int_range 1 60) (float_bound_exclusive 10.0)))
    (fun (baseline, seg) ->
      let acc = Online.acc_create ~baseline () in
      let n = Array.length seg in
      let ok = ref true in
      for i = 0 to n - 1 do
        Online.acc_add acc seg.(i);
        let prefix = Array.sub seg 0 (i + 1) in
        if
          not
            (Float.equal (Online.degree acc) (Ts.degree ~baseline prefix)
            && Float.equal (Online.mean_abs_gradient acc)
                 (Ts.mean_abs_gradient prefix)
            && Online.fluctuation_count acc = Ts.fluctuation_count prefix
            && Online.acc_count acc = i + 1)
        then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Detector vs offline segmentation                                    *)
(* ------------------------------------------------------------------ *)

(* Offline reference: maximal runs of Degraded samples, with the
   terminator deciding seg_cut; an unterminated trailing run stays open
   (no Segment_end). *)
let offline_segments ~baseline (tr : Telemetry.trace) =
  let states = Telemetry.states tr in
  let segs = ref [] in
  let start = ref None in
  Array.iteri
    (fun i st ->
      match (st, !start) with
      | Telemetry.Degraded, None -> start := Some i
      | Telemetry.Degraded, Some _ -> ()
      | (Telemetry.Healthy | Telemetry.Cut), Some s ->
        let slice = Array.sub tr.Telemetry.samples s (i - s) in
        segs :=
          ( s,
            Ts.degree ~baseline slice,
            Ts.mean_abs_gradient slice,
            Ts.fluctuation_count slice,
            i - s,
            st = Telemetry.Cut )
          :: !segs;
        start := None
      | (Telemetry.Healthy | Telemetry.Cut), None -> ())
    states;
  List.rev !segs

let run_detector ~baseline tr =
  let det = Detector.create ~baseline () in
  let events = ref [] in
  Array.iteri
    (fun i v ->
      List.iter (fun e -> events := e :: !events) (Detector.step det ~at:i ~v))
    tr.Telemetry.samples;
  (det, List.rev !events)

let degr_feats =
  {
    Hazard.fiber = 0;
    region = 0;
    vendor = 0;
    length_km = 100.0;
    time_of_day = 12.0;
    degree = 5.0;
    gradient = 0.3;
    fluctuation = 12;
    duration_s = 40.0;
  }

let test_detector_segments_match_offline () =
  let baseline = 15.0 in
  let tr =
    Telemetry.synthesize ~seed:5 ~baseline ~healthy_s:60 ~degradation:degr_feats
      ~cut_at_s:100 ~total_s:180 ()
  in
  let _, events = run_detector ~baseline tr in
  let got =
    List.filter_map
      (function
        | Detector.Segment_end s ->
          Some
            ( s.Detector.seg_start,
              s.Detector.seg_degree,
              s.Detector.seg_gradient,
              s.Detector.seg_fluctuation,
              s.Detector.seg_duration_s,
              s.Detector.seg_cut )
        | _ -> None)
      events
  in
  let want = offline_segments ~baseline tr in
  Alcotest.(check int) "segment count" (List.length want) (List.length got);
  List.iter2
    (fun (s, d, g, f, n, c) (s', d', g', f', n', c') ->
      Alcotest.(check int) "start" s s';
      Alcotest.(check bool) "degree bit-exact" true (Float.equal d d');
      Alcotest.(check bool) "gradient bit-exact" true (Float.equal g g');
      Alcotest.(check int) "fluctuation" f f';
      Alcotest.(check int) "duration" n n';
      Alcotest.(check bool) "cut flag" c c')
    want got

let test_detector_alarm_at_onset () =
  let baseline = 15.0 in
  let tr =
    Telemetry.synthesize ~seed:7 ~baseline ~healthy_s:60 ~degradation:degr_feats
      ~total_s:160 ()
  in
  let states = Telemetry.states tr in
  let onset =
    let rec find i =
      if states.(i) = Telemetry.Degraded then i else find (i + 1)
    in
    find 0
  in
  let _, events = run_detector ~baseline tr in
  let alarms =
    List.filter_map
      (function Detector.Alarm { at; _ } -> Some at | _ -> None)
      events
  in
  (* One alarm per degraded episode (the synthesized ramp may dip below
     the +3 dB threshold and split the degradation into several runs). *)
  let episodes =
    Array.to_list states
    |> List.fold_left
         (fun (n, prev) st ->
           ((if st = Telemetry.Degraded && prev <> Telemetry.Degraded then n + 1
             else n),
            st))
         (0, Telemetry.Healthy)
    |> fst
  in
  Alcotest.(check int) "one alarm per degraded episode" episodes
    (List.length alarms);
  Alcotest.(check int) "first alarm on the first degraded sample" onset
    (List.hd alarms)

let test_detector_quiet_on_healthy () =
  let baseline = 15.0 in
  let tr = Telemetry.synthesize ~seed:9 ~baseline ~healthy_s:300 ~total_s:300 () in
  let det, events = run_detector ~baseline tr in
  Alcotest.(check int) "no events" 0 (List.length events);
  Alcotest.(check bool) "cusum below threshold" true
    (Detector.cusum_score det < Detector.default_config.Detector.cusum_h);
  Alcotest.(check bool) "not in a segment" false (Detector.in_segment det)

(* ------------------------------------------------------------------ *)
(* Predictor server                                                    *)
(* ------------------------------------------------------------------ *)

let test_predictor_stale_and_swap () =
  let model = Fiber_model.generate (Topology.by_name "grid3") in
  let p = Predictor.create ~fallback:(Predictor.prior model) (fun _ -> 0.9) in
  let v, fb = Predictor.predict p degr_feats in
  Alcotest.(check (float 0.0)) "serving model" 0.9 v;
  Alcotest.(check bool) "no fallback" false fb;
  Predictor.mark_stale p;
  let v, fb = Predictor.predict p degr_feats in
  Alcotest.(check (float 0.0)) "stale falls back to prior"
    model.Fiber_model.mean_hazard v;
  Alcotest.(check bool) "fallback flagged" true fb;
  Predictor.swap p (fun _ -> 0.7);
  let v, fb = Predictor.predict p degr_feats in
  Alcotest.(check (float 0.0)) "swapped model serves" 0.7 v;
  Alcotest.(check bool) "staleness cleared" false fb;
  Alcotest.(check string) "version bumped" "v1" (Predictor.version p);
  let served, fell_back, swaps = Predictor.stats p in
  Alcotest.(check (list int)) "stats" [ 3; 1; 1 ] [ served; fell_back; swaps ]

(* ------------------------------------------------------------------ *)
(* Runtime: determinism, replay, policy ordering                       *)
(* ------------------------------------------------------------------ *)

let rt_config =
  {
    Runtime.default_config with
    Runtime.topology = "grid3";
    epochs = 12;
    seed = 3;
    stale_after = Some 2;
  }

let run_at ~domains cfg =
  Prete_exec.Pool.with_pool ~domains (fun pool -> Runtime.run ~pool cfg)

let shared = lazy (run_at ~domains:1 rt_config)

let test_runtime_deterministic_across_domains () =
  let r1 = Lazy.force shared in
  let core1 = Runtime.deterministic_core r1 in
  List.iter
    (fun domains ->
      let r = run_at ~domains rt_config in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical core at %d domains" domains)
        true
        (String.equal core1 (Runtime.deterministic_core r)))
    [ 2; 4 ]

let test_runtime_replay () =
  let r = Lazy.force shared in
  let json = Runtime.dump r in
  let cfg = Runtime.config_of_dump json in
  Alcotest.(check int) "config roundtrip: epochs" 12 cfg.Runtime.epochs;
  Alcotest.(check (option int)) "config roundtrip: stale_after" (Some 2)
    cfg.Runtime.stale_after;
  let _, ok =
    Prete_exec.Pool.with_pool ~domains:2 (fun pool -> Runtime.replay ~pool json)
  in
  Alcotest.(check bool) "replay reproduces the deterministic core" true ok

let test_runtime_policies_and_simulate_parity () =
  let r = Lazy.force shared in
  Alcotest.(check bool) "pipeline saw degradations" true (r.Runtime.r_degr_epochs > 0);
  Alcotest.(check bool) "detections fired" true (r.Runtime.r_detections <> []);
  Alcotest.(check bool) "streaming >= periodic-only" true
    (r.Runtime.r_avail_stream >= r.Runtime.r_avail_periodic -. 1e-9);
  let env = Availability.make_env (Topology.by_name "grid3") in
  let sim =
    Prete_exec.Pool.with_pool ~domains:2 (fun pool ->
        Simulate.run ~seed:3 ~epochs:12 ~pool env r.Runtime.r_scheme ~scale:2.0)
  in
  Alcotest.(check bool) "instant == Simulate.run on the same seed" true
    (Float.abs (r.Runtime.r_avail_instant -. sim.Simulate.availability) <= 1e-12)

let test_runtime_event_log_consistent () =
  let r = Lazy.force shared in
  let entries = Ring.entries r.Runtime.r_ring in
  Alcotest.(check bool) "event log non-empty" true (Array.length entries > 0);
  (* At the default capacity the ring must hold the whole event log:
     zero drops, and the surfaced counter agrees. *)
  Alcotest.(check int) "no ring drops at default capacity" 0
    (Ring.dropped r.Runtime.r_ring);
  Alcotest.(check bool) "ring not overflowed" false
    (Ring.overflowed r.Runtime.r_ring);
  Alcotest.(check int) "ring_dropped counter is zero" 0
    (Metrics.counter r.Runtime.r_metrics "ring_dropped");
  let m = r.Runtime.r_metrics in
  let count kind =
    Array.fold_left
      (fun acc e -> if e.Ring.kind = kind then acc + 1 else acc)
      0 entries
  in
  let installed =
    List.length
      (List.filter (fun d -> d.Runtime.d_install <> None) r.Runtime.r_detections)
  in
  Alcotest.(check int) "one react event per installed detection" installed
    (count "react");
  Alcotest.(check int) "one install event per react event" (count "react")
    (count "install");
  Alcotest.(check int) "alarm events match the alarm counter"
    (Metrics.counter m "alarms") (count "alarm");
  Alcotest.(check bool) "at least one reaction batch ran" true
    (Metrics.counter m "reactions" > 0);
  (* Every detection's alarm never precedes its onset, and installs come
     strictly after alarms. *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "alarm after onset" true (d.Runtime.d_alarm >= d.Runtime.d_onset);
      match d.Runtime.d_install with
      | Some i -> Alcotest.(check bool) "install after alarm" true (i > d.Runtime.d_alarm)
      | None -> ())
    r.Runtime.r_detections

let () =
  Alcotest.run "prete_rt"
    [
      ( "equeue",
        [
          Alcotest.test_case "ordering + FIFO ties" `Quick test_equeue_order;
          Alcotest.test_case "pop_until" `Quick test_equeue_pop_until;
        ]
        @ qsuite [ prop_equeue_sorted ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + gauges" `Quick test_metrics_counters;
          Alcotest.test_case "histograms + wall split" `Quick test_metrics_histogram;
          Alcotest.test_case "histogram quantiles" `Quick test_metrics_quantile;
          Alcotest.test_case "ring bounded" `Quick test_ring_bounded;
        ] );
      ( "online.props",
        qsuite
          [
            prop_ingest_matches_offline;
            prop_ingest_counts_dups;
            prop_acc_matches_offline;
          ] );
      ( "online",
        [
          Alcotest.test_case "gap edges" `Quick test_ingest_leading_trailing_gaps;
        ] );
      ( "detector",
        [
          Alcotest.test_case "segments == offline segmentation" `Quick
            test_detector_segments_match_offline;
          Alcotest.test_case "alarm at onset" `Quick test_detector_alarm_at_onset;
          Alcotest.test_case "quiet on healthy" `Quick test_detector_quiet_on_healthy;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "stale fallback + hot swap" `Quick
            test_predictor_stale_and_swap;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "bit-identical at 1/2/4 domains" `Slow
            test_runtime_deterministic_across_domains;
          Alcotest.test_case "dump -> replay roundtrip" `Slow test_runtime_replay;
          Alcotest.test_case "policy ordering + Simulate parity" `Slow
            test_runtime_policies_and_simulate_parity;
          Alcotest.test_case "event log consistent" `Quick
            test_runtime_event_log_consistent;
        ] );
    ]
