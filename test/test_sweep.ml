(* Sweep portfolio: bit-identical JSON at any domain count, plus a
   schema regression pin so downstream consumers can rely on the cell
   grid shape and key set. *)

module Sweep = Prete_rt.Sweep

let topologies = [ "grid3"; "grid4" ]
let traffic = [ "gravity"; "coremelt" ]
let profs = [ "clean" ]

let run_at ~domains =
  Prete_exec.Pool.with_pool ~domains (fun pool ->
      Sweep.run ~pool ~seed:5 ~epochs:6 ~scale:2.0 ~topologies ~traffic
        ~profiles:profs ())

(* The schema/grid/ordering tests all inspect the same portfolio; run
   the matrix once for them. *)
let portfolio2 = lazy (run_at ~domains:2)

let count_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let n = ref 0 in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then incr n
  done;
  !n

let test_bit_identical_across_domains () =
  let j1 = Sweep.to_json (run_at ~domains:1) in
  let j4 = Sweep.to_json (run_at ~domains:4) in
  Alcotest.(check string) "portfolio JSON identical at 1 vs 4 domains" j1 j4

let test_schema () =
  let p = Lazy.force portfolio2 in
  let json = Sweep.to_json p in
  let cells = 2 * 2 * 1 * List.length Sweep.policies in
  Alcotest.(check int) "cell count" cells (List.length p.Sweep.pt_cells);
  Alcotest.(check int) "combo count" (2 * 2 * 1) (List.length p.Sweep.pt_combos);
  Alcotest.(check int)
    "one policy key per cell" cells
    (count_substring json "\"policy\":");
  (* Every serialized key downstream consumers bind to, pinned. *)
  List.iter
    (fun key ->
      Alcotest.(check bool) ("has " ^ key) true (count_substring json key > 0))
    [
      "\"prete_sweep\": 1";
      "\"seed\": 5";
      "\"epochs\": 6";
      "\"matrix\":";
      "\"topologies\":";
      "\"traffic\":";
      "\"profiles\":";
      "\"policies\":";
      "\"cells\":";
      "\"combos\":";
      "\"phi\":";
      "\"availability\":";
      "\"nines\":";
      "\"flows\":";
      "\"degr_epochs\":";
      "\"cut_epochs\":";
      "\"detections\":";
      "\"reacted_in_time\":";
      "\"missed\":";
      "\"alarms\":";
      "\"reactions\":";
      "\"rungs\":";
      "\"detour\":";
      "\"activations\":";
      "\"rescued_epochs\":";
      "\"flows_patched\":";
      "\"solver\":";
      "\"solves\":";
      "\"warm_solves\":";
      "\"pivots\":";
      "\"cache_hits\":";
      "\"cache_misses\":";
    ];
  Alcotest.(check int) "no nulls" 0 (count_substring json "null");
  (* Every ladder rung appears in every combo, even when untaken. *)
  List.iter
    (fun rung ->
      Alcotest.(check int)
        ("rung " ^ rung ^ " in every combo")
        (List.length p.Sweep.pt_combos)
        (count_substring json ("\"" ^ rung ^ "\":")))
    [ "equal-split" ]

let test_cell_grid_complete () =
  let p = Lazy.force portfolio2 in
  List.iter
    (fun topo ->
      List.iter
        (fun tr ->
          List.iter
            (fun pf ->
              List.iter
                (fun policy ->
                  let hit =
                    List.exists
                      (fun (c : Sweep.cell) ->
                        c.Sweep.cl_topology = topo && c.Sweep.cl_traffic = tr
                        && c.Sweep.cl_profile = pf && c.Sweep.cl_policy = policy)
                      p.Sweep.pt_cells
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf "cell %s/%s/%s/%s present" topo tr pf policy)
                    true hit)
                Sweep.policies)
            profs)
        traffic)
    topologies;
  List.iter
    (fun (c : Sweep.cell) ->
      Alcotest.(check bool)
        "availability in [0,1]" true
        (c.Sweep.cl_availability >= 0.0 && c.Sweep.cl_availability <= 1.0);
      Alcotest.(check bool) "phi in [0,1]" true
        (c.Sweep.cl_phi >= 0.0 && c.Sweep.cl_phi <= 1.0))
    p.Sweep.pt_cells

let test_detour_no_worse_than_stream () =
  let p = Lazy.force portfolio2 in
  let find policy topo tr pf =
    (List.find
       (fun (c : Sweep.cell) ->
         c.Sweep.cl_topology = topo && c.Sweep.cl_traffic = tr
         && c.Sweep.cl_profile = pf && c.Sweep.cl_policy = policy)
       p.Sweep.pt_cells)
      .Sweep.cl_availability
  in
  List.iter
    (fun topo ->
      List.iter
        (fun tr ->
          List.iter
            (fun pf ->
              Alcotest.(check bool)
                (Printf.sprintf "detour >= stream on %s/%s/%s" topo tr pf)
                true
                (find "stream+detour" topo tr pf >= find "stream" topo tr pf -. 1e-9))
            profs)
        traffic)
    topologies

let test_unknown_axis_entries_rejected () =
  List.iter
    (fun (msg, f) -> Alcotest.(check bool) msg true (match f () with
       | (_ : Sweep.portfolio) -> false
       | exception Invalid_argument _ -> true))
    [
      ( "unknown profile",
        fun () ->
          Sweep.run ~seed:5 ~epochs:2 ~topologies:[ "grid3" ]
            ~traffic:[ "gravity" ] ~profiles:[ "nope" ] () );
      ( "empty axis",
        fun () ->
          Sweep.run ~seed:5 ~epochs:2 ~topologies:[] ~traffic:[ "gravity" ]
            ~profiles:[ "clean" ] () );
      ( "unknown traffic",
        fun () ->
          Sweep.run ~seed:5 ~epochs:2 ~topologies:[ "grid3" ]
            ~traffic:[ "bursty" ] ~profiles:[ "clean" ] () );
    ]

let () =
  Alcotest.run "prete_sweep"
    [
      ( "sweep",
        [
          Alcotest.test_case "bit-identical across domain counts" `Quick
            test_bit_identical_across_domains;
          Alcotest.test_case "schema pinned" `Quick test_schema;
          Alcotest.test_case "cell grid complete" `Quick test_cell_grid_complete;
          Alcotest.test_case "detour no worse than stream" `Quick
            test_detour_no_worse_than_stream;
          Alcotest.test_case "bad axis entries rejected" `Quick
            test_unknown_axis_entries_rejected;
        ] );
    ]
