(* Cross-library integration tests: the full PreTE pipeline from synthetic
   telemetry to an availability verdict, plus consistency checks that span
   module boundaries (formulation equivalences, evaluation invariants). *)

open Prete
open Prete_net

let check_close eps = Alcotest.(check (float eps))

(* One shared end-to-end fixture on B4. *)
let pipeline =
  lazy
    (let topo = Topology.b4 () in
     let traffic = Traffic.generate topo in
     let ts = Tunnels.build topo traffic.Traffic.pairs in
     let model = Prete_optics.Fiber_model.generate topo in
     let ds = Prete_optics.Dataset.generate ~model ~horizon_days:300 topo in
     let corpus = Prete_ml.Corpus.of_dataset ds in
     let nn =
       Prete_ml.Mlp.train
         ~config:{ Prete_ml.Mlp.default_config with Prete_ml.Mlp.epochs = 12 }
         corpus.Prete_ml.Corpus.train
     in
     (topo, traffic, ts, model, ds, corpus, nn))

(* ------------------------------------------------------------------ *)
(* End-to-end pipeline                                                  *)
(* ------------------------------------------------------------------ *)

let test_pipeline_nn_feeds_calibration () =
  let topo, _, _, model, _, _, nn = Lazy.force pipeline in
  let rng = Prete_util.Rng.create 7 in
  let event = Prete_optics.Hazard.sample_features rng ~topo ~fiber:4 ~epoch:10 in
  let obs = { Calibrate.degraded = [ (4, event) ]; Calibrate.will_cut = [] } in
  let probs =
    Calibrate.probabilities
      (Calibrate.Calibrated (Prete_ml.Mlp.predict_proba nn))
      model obs
  in
  (* The NN's output lands in the degraded slot; everything else follows
     Theorem 4.1. *)
  check_close 1e-9 "p_NN propagated" (Prete_ml.Mlp.predict_proba nn event) probs.(4);
  Alcotest.(check bool) "degraded fiber looks much riskier" true
    (probs.(4) > 5.0 *. probs.(0))

let test_pipeline_degradation_to_optimization () =
  let topo, traffic, ts, model, _, _, nn = Lazy.force pipeline in
  ignore topo;
  let rng = Prete_util.Rng.create 8 in
  let fiber = 2 in
  let event = Prete_optics.Hazard.sample_features rng ~topo ~fiber ~epoch:20 in
  let obs = { Calibrate.degraded = [ (fiber, event) ]; Calibrate.will_cut = [] } in
  let probs =
    Calibrate.probabilities
      (Calibrate.Calibrated (Prete_ml.Mlp.predict_proba nn))
      model obs
  in
  let update = Tunnel_update.react ts ~degraded_fiber:fiber () in
  let merged = Tunnel_update.merged update in
  let demands = Traffic.demand traffic ~scale:2.0 ~epoch:12 in
  let p = Te.make_problem ~ts:merged ~demands ~probs ~beta:0.999 () in
  let sol = Te.solve p in
  Alcotest.(check bool) "solved" true (sol.Te.phi >= 0.0 && sol.Te.phi <= 1.0);
  (* The degraded fiber's scenario class must be covered for every flow it
     can affect: its probability is far above the 1-beta budget. *)
  Array.iteri
    (fun f cls ->
      Array.iteri
        (fun ci (c : Scenario.Classes.cls) ->
          (* Classes containing the degraded-fiber scenario. *)
          let has_degraded =
            List.exists
              (fun qi ->
                p.Te.scenarios.Scenario.scenarios.(qi).Scenario.fibers = [ fiber ])
              c.Scenario.Classes.members
          in
          if has_degraded && c.Scenario.Classes.prob > 0.1 then
            Alcotest.(check bool) "high-probability class covered" true
              sol.Te.delta.(f).(ci))
        cls)
    sol.Te.classes

let test_pipeline_controller_budget () =
  (* The end-to-end reaction fits inside a typical degradation-to-cut gap
     (§5: the pipeline is feasible). *)
  let topo, traffic, ts, model, _, _, nn = Lazy.force pipeline in
  ignore topo;
  let update = Tunnel_update.react ts ~degraded_fiber:3 () in
  let merged = Tunnel_update.merged update in
  let demands = Traffic.demand traffic ~scale:2.0 ~epoch:12 in
  let rng = Prete_util.Rng.create 9 in
  let event = Prete_optics.Hazard.sample_features rng ~topo ~fiber:3 ~epoch:30 in
  let obs = { Calibrate.degraded = [ (3, event) ]; Calibrate.will_cut = [] } in
  let probs =
    Calibrate.probabilities (Calibrate.Calibrated (Prete_ml.Mlp.predict_proba nn)) model obs
  in
  let (), report =
    Controller.run
      ~infer:(fun () -> ignore (Prete_ml.Mlp.predict_proba nn event))
      ~regen:(fun () -> ignore (Scenario.enumerate ~probs ()))
      ~te:(fun () ->
        ignore
          (Te.solve ~relaxation_start:false
             (Te.make_problem ~ts:merged ~demands ~probs ~beta:0.999 ())))
      ~n_new_tunnels:(Tunnel_update.num_new update)
      ()
  in
  (* Median degradation-to-cut gap in the generator is ~60 s; tunnel
     updates dominate. *)
  Alcotest.(check bool)
    (Printf.sprintf "pipeline %.1f s fits a 60 s gap with ratio-limited updates"
       report.Controller.end_to_end_s)
    true
    (Controller.within_budget report ~gap_to_cut_s:60.0
    || Tunnel_update.num_new update > 40)

(* ------------------------------------------------------------------ *)
(* Formulation consistency                                              *)
(* ------------------------------------------------------------------ *)

let test_losses_consistent_with_optimizer () =
  (* The loss the availability evaluator recomputes from the allocation
     agrees with the optimizer's covered-class guarantee. *)
  let _, traffic, ts, model, _, _, _ = Lazy.force pipeline in
  let demands = Traffic.demand traffic ~scale:3.0 ~epoch:12 in
  let p =
    Te.make_problem ~ts ~demands ~probs:model.Prete_optics.Fiber_model.p_cut ~beta:0.999 ()
  in
  let sol = Te.solve ~second_phase:false p in
  Array.iteri
    (fun f cls ->
      Array.iteri
        (fun ci c ->
          if sol.Te.delta.(f).(ci) then
            Alcotest.(check bool) "covered class within phi" true
              (Te.class_loss p ~alloc:sol.Te.alloc ~flow:f c <= sol.Te.phi +. 1e-6))
        cls)
    sol.Te.classes

let test_second_phase_never_hurts_served () =
  let _, traffic, ts, model, _, _, _ = Lazy.force pipeline in
  let demands = Traffic.demand traffic ~scale:4.0 ~epoch:12 in
  let p =
    Te.make_problem ~ts ~demands ~probs:model.Prete_optics.Fiber_model.p_cut ~beta:0.999 ()
  in
  let expected_served alloc =
    (* Probability- and demand-weighted served fraction. *)
    let classes = Te.classes_of p in
    let total = Prete_util.Stats.sum demands in
    let acc = ref 0.0 in
    Array.iteri
      (fun f cls ->
        let d = demands.(f) in
        if d > 0.0 then
          Array.iter
            (fun (c : Scenario.Classes.cls) ->
              let served = 1.0 -. Te.class_loss p ~alloc ~flow:f c in
              acc := !acc +. (d /. total *. c.Scenario.Classes.prob *. served))
            cls)
      classes;
    !acc
  in
  let one = Te.solve ~second_phase:false p in
  let two = Te.solve p in
  Alcotest.(check bool) "phase B improves expected served" true
    (expected_served two.Te.alloc >= expected_served one.Te.alloc -. 1e-6);
  check_close 1e-6 "reported matches recomputed" (expected_served two.Te.alloc)
    two.Te.expected_served

let test_admission_vs_loss_formulation () =
  (* The structural difference the evaluation relies on: the admission
     variant rate-limits (b <= d), the loss variant does not, and at low
     demand both serve everything. *)
  let _, traffic, ts, model, _, _, _ = Lazy.force pipeline in
  let demands = Traffic.demand traffic ~scale:0.5 ~epoch:12 in
  let p =
    Te.make_problem ~ts ~demands ~probs:model.Prete_optics.Fiber_model.p_cut ~beta:0.999 ()
  in
  let adm = Te.solve_admission p in
  Array.iteri
    (fun f b -> check_close 1e-6 "full admission at low scale" demands.(f) b)
    adm.Te.admitted;
  let sol = Te.solve p in
  check_close 1e-6 "zero loss at low scale" 0.0 sol.Te.phi

(* ------------------------------------------------------------------ *)
(* Availability evaluation invariants                                   *)
(* ------------------------------------------------------------------ *)

let env_b4 = lazy (Availability.make_env (Topology.b4 ()))

let test_oracle_dominates_everyone () =
  let env = Lazy.force env_b4 in
  let topo = env.Availability.ts.Tunnels.topo in
  let predictor = Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo) in
  let scale = 3.0 in
  let oracle = Availability.availability env Schemes.Oracle ~scale in
  List.iter
    (fun scheme ->
      let a = Availability.availability env scheme ~scale in
      Alcotest.(check bool)
        (Printf.sprintf "oracle %.4f >= %s %.4f" oracle (Schemes.name scheme) a)
        true
        (oracle >= a -. 1e-6))
    [
      Schemes.Ecmp; Schemes.Ffc 1; Schemes.Teavar; Schemes.Arrow; Schemes.Flexile;
      Schemes.prete_default ~predictor ();
    ]

let test_prete_predictor_quality_matters () =
  (* Fig. 15's mechanism: a better predictor yields availability at least
     as good as treating degradations as static noise. *)
  let env = Lazy.force env_b4 in
  let topo = env.Availability.ts.Tunnels.topo in
  let truth = Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo) in
  let static = Prete_util.Stats.mean env.Availability.model.Prete_optics.Fiber_model.p_cut in
  let scale = 3.0 in
  let a_oracle_pred =
    Availability.availability env (Schemes.prete_default ~predictor:truth ()) ~scale
  in
  let a_blind =
    Availability.availability env
      (Schemes.prete_naive ~predictor:(fun _ -> static) ())
      ~scale
  in
  Alcotest.(check bool)
    (Printf.sprintf "true-hazard predictor %.4f >= blind static %.4f" a_oracle_pred a_blind)
    true
    (a_oracle_pred >= a_blind -. 1e-6)

let test_availability_deterministic () =
  let env = Lazy.force env_b4 in
  let a1 = Availability.availability env Schemes.Teavar ~scale:2.5 in
  let a2 = Availability.availability env Schemes.Teavar ~scale:2.5 in
  check_close 1e-12 "deterministic" a1 a2

let test_alpha_one_beats_alpha_zero () =
  (* Fig. 20b's mechanism: with every cut predictable, PreTE approaches
     the oracle; with none, it degenerates to static TE. *)
  let topo = Topology.b4 () in
  let traffic = Traffic.generate topo in
  let ts = Tunnels.build topo traffic.Traffic.pairs in
  let predictor = Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo) in
  let avail alpha =
    let model = Prete_optics.Fiber_model.generate ~alpha topo in
    let env = Availability.make_env ~model ~traffic ~tunnels:ts topo in
    Availability.availability env (Schemes.prete_default ~predictor ()) ~scale:3.0
  in
  let a0 = avail 0.0 and a1 = avail 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "alpha=1 (%.4f) > alpha=0 (%.4f)" a1 a0)
    true (a1 > a0)

let test_tau_zero_flexile_approaches_oracle () =
  (* With an instant controller, the reactive scheme is the per-outcome
     optimum — the oracle. *)
  let topo = Topology.b4 () in
  let env0 = Availability.make_env ~tau_flexile:0.0 topo in
  let scale = 3.0 in
  let flexile = Availability.availability env0 Schemes.Flexile ~scale in
  let oracle = Availability.availability env0 Schemes.Oracle ~scale in
  check_close 1e-6 "tau=0 Flexile = Oracle" oracle flexile

(* ------------------------------------------------------------------ *)
(* Monte-Carlo simulator vs analytic evaluator                          *)
(* ------------------------------------------------------------------ *)

let test_simulator_matches_analytic () =
  let env = Lazy.force env_b4 in
  List.iter
    (fun scheme ->
      let a = Availability.availability env scheme ~scale:3.0 in
      let r = Simulate.run ~epochs:20_000 env scheme ~scale:3.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: analytic %.4f vs MC %.4f" (Schemes.name scheme) a
           r.Simulate.availability)
        true
        (Float.abs (a -. r.Simulate.availability) < 0.005))
    [ Schemes.Teavar; Schemes.Ecmp ]

let test_simulator_counts_plausible () =
  let env = Lazy.force env_b4 in
  let r = Simulate.run ~epochs:10_000 env Schemes.Teavar ~scale:1.0 in
  Alcotest.(check int) "epochs" 10_000 r.Simulate.epochs;
  (* Expected cut-epoch rate ~ 1 - prod(1 - p_cut) with both channels. *)
  let expected =
    1.0
    -. Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0
         env.Availability.model.Prete_optics.Fiber_model.p_cut
  in
  let observed = float_of_int r.Simulate.cut_epochs /. 10_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "cut rate %.3f near %.3f" observed expected)
    true
    (Float.abs (observed -. expected) < 0.02);
  Alcotest.(check bool) "multi-cut epochs are rare" true
    (r.Simulate.multi_cut_epochs * 10 < r.Simulate.cut_epochs)

let test_simulator_deterministic () =
  let env = Lazy.force env_b4 in
  let r1 = Simulate.run ~seed:5 ~epochs:2_000 env Schemes.Teavar ~scale:2.0 in
  let r2 = Simulate.run ~seed:5 ~epochs:2_000 env Schemes.Teavar ~scale:2.0 in
  check_close 1e-12 "same seed same result" r1.Simulate.availability r2.Simulate.availability

let test_simulator_invalid () =
  let env = Lazy.force env_b4 in
  Alcotest.check_raises "bad epochs"
    (Invalid_argument "Simulate.run: epochs must be positive") (fun () ->
      ignore (Simulate.run ~epochs:0 env Schemes.Teavar ~scale:1.0))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prete_integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "NN feeds calibration" `Slow test_pipeline_nn_feeds_calibration;
          Alcotest.test_case "degradation to optimization" `Slow
            test_pipeline_degradation_to_optimization;
          Alcotest.test_case "controller budget" `Slow test_pipeline_controller_budget;
        ] );
      ( "formulation",
        [
          Alcotest.test_case "losses consistent" `Slow test_losses_consistent_with_optimizer;
          Alcotest.test_case "second phase helps" `Slow test_second_phase_never_hurts_served;
          Alcotest.test_case "admission vs loss form" `Slow test_admission_vs_loss_formulation;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "MC matches analytic" `Slow test_simulator_matches_analytic;
          Alcotest.test_case "event counts plausible" `Slow test_simulator_counts_plausible;
          Alcotest.test_case "deterministic" `Slow test_simulator_deterministic;
          Alcotest.test_case "invalid input" `Quick test_simulator_invalid;
        ] );
      ( "availability",
        [
          Alcotest.test_case "oracle dominates" `Slow test_oracle_dominates_everyone;
          Alcotest.test_case "predictor quality matters" `Slow test_prete_predictor_quality_matters;
          Alcotest.test_case "deterministic" `Slow test_availability_deterministic;
          Alcotest.test_case "alpha=1 beats alpha=0" `Slow test_alpha_one_beats_alpha_zero;
          Alcotest.test_case "tau=0 Flexile = Oracle" `Slow test_tau_zero_flexile_approaches_oracle;
        ] );
    ]
