(* Tests for the prete core: scenarios, Eqn.-1 calibration, Algorithm 1
   tunnel updates, the TE optimization (heuristic vs exact MIP vs Benders),
   TE schemes, availability evaluation, controller pipeline, and the
   uncertainty study. *)

open Prete
open Prete_net

let check_close eps = Alcotest.(check (float eps))

(* Small fixture: square topology with diagonal (known paths). *)
let square () =
  let fibers =
    [| (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0); (3, 0, 100.0); (0, 2, 500.0) |]
  in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (1, 2)); (2, (2, 3)); (3, (3, 0)); (4, (0, 2)) ])
  in
  Topology.make ~name:"square" ~node_names:[| "n0"; "n1"; "n2"; "n3" |] ~fibers ~links

let b4_env =
  lazy
    (let topo = Topology.b4 () in
     Availability.make_env topo)

let predictor_true topo f =
  Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo) f

(* ------------------------------------------------------------------ *)
(* Scenario                                                             *)
(* ------------------------------------------------------------------ *)

let test_scenario_single_order () =
  let probs = [| 0.1; 0.2 |] in
  let set = Scenario.enumerate ~probs () in
  Alcotest.(check int) "1 + N scenarios" 3 (Array.length set.Scenario.scenarios);
  check_close 1e-12 "no-failure prob" (0.9 *. 0.8) (Scenario.no_failure set).Scenario.prob;
  check_close 1e-12 "covered" (0.72 +. (0.1 *. 0.8) +. (0.9 *. 0.2)) set.Scenario.covered_prob;
  check_close 1e-12 "residual" (0.1 *. 0.2) set.Scenario.residual_prob

let test_scenario_order2 () =
  let probs = [| 0.1; 0.2; 0.3 |] in
  let set = Scenario.enumerate ~probs ~max_order:2 () in
  Alcotest.(check int) "1 + 3 + 3 scenarios" 7 (Array.length set.Scenario.scenarios);
  (* Explicit probability of the {0, 2} scenario. *)
  let s02 =
    Array.to_list set.Scenario.scenarios
    |> List.find (fun s -> s.Scenario.fibers = [ 0; 2 ])
  in
  check_close 1e-12 "pair probability" (0.1 *. 0.8 *. 0.3) s02.Scenario.prob

let test_scenario_cutoff () =
  let probs = [| 0.5; 0.001 |] in
  let set = Scenario.enumerate ~probs ~cutoff:0.01 () in
  (* The 0.001-fiber single-cut scenario (prob ~0.0005) is cut off. *)
  Alcotest.(check int) "cutoff drops rare scenario" 2 (Array.length set.Scenario.scenarios);
  Alcotest.(check bool) "no-failure kept" true
    (Array.exists (fun s -> s.Scenario.fibers = []) set.Scenario.scenarios)

let test_scenario_normalize () =
  let probs = [| 0.1; 0.2; 0.3 |] in
  let set = Scenario.normalize (Scenario.enumerate ~probs ()) in
  check_close 1e-12 "covered = 1" 1.0 set.Scenario.covered_prob;
  let sum = Array.fold_left (fun a s -> a +. s.Scenario.prob) 0.0 set.Scenario.scenarios in
  check_close 1e-12 "probs sum to 1" 1.0 sum

let test_scenario_probability () =
  let probs = [| 0.1; 0.2; 0.3 |] in
  check_close 1e-12 "explicit" (0.1 *. 0.8 *. 0.7) (Scenario.probability ~probs [ 0 ]);
  check_close 1e-12 "empty" (0.9 *. 0.8 *. 0.7) (Scenario.probability ~probs [])

let test_scenario_invalid () =
  Alcotest.check_raises "bad prob"
    (Invalid_argument "Scenario.enumerate: probability out of [0,1]") (fun () ->
      ignore (Scenario.enumerate ~probs:[| 1.5 |] ()))

let test_scenario_classes () =
  let topo = square () in
  let ts = Tunnels.build topo [ (0, 2) ] in
  let probs = Array.make (Topology.num_fibers topo) 0.1 in
  let set = Scenario.enumerate ~probs () in
  let tunnels = Tunnels.tunnels_of_flow ts 0 in
  let classes = Scenario.Classes.of_flow ts ~tunnels set in
  (* Class probabilities sum to the covered probability. *)
  let psum =
    Array.fold_left (fun a c -> a +. c.Scenario.Classes.prob) 0.0 classes
  in
  check_close 1e-12 "class mass" set.Scenario.covered_prob psum;
  (* Members partition the scenario set. *)
  let member_count =
    Array.fold_left (fun a c -> a + List.length c.Scenario.Classes.members) 0 classes
  in
  Alcotest.(check int) "partition" (Array.length set.Scenario.scenarios) member_count;
  (* Scenarios that kill no tunnel of the flow share the full-survivor
     class with the no-failure scenario. *)
  Alcotest.(check bool) "at least 2 classes" true (Array.length classes >= 2)

(* ------------------------------------------------------------------ *)
(* Calibrate                                                            *)
(* ------------------------------------------------------------------ *)

let test_calibrate_eqn1 () =
  let topo = Topology.b4 () in
  let model = Prete_optics.Fiber_model.generate topo in
  let rng = Prete_util.Rng.create 3 in
  let feats = Prete_optics.Hazard.sample_features rng ~topo ~fiber:2 ~epoch:0 in
  let obs = { Calibrate.degraded = [ (2, feats) ]; Calibrate.will_cut = [] } in
  let p = Calibrate.probabilities (Calibrate.Calibrated (fun _ -> 0.42)) model obs in
  check_close 1e-12 "degraded fiber gets p_NN" 0.42 p.(2);
  (* Theorem 4.1 branch. *)
  check_close 1e-12 "others get (1-alpha) p_i"
    ((1.0 -. model.Prete_optics.Fiber_model.alpha)
    *. model.Prete_optics.Fiber_model.p_cut.(5))
    p.(5)

let test_calibrate_static_oracle () =
  let topo = Topology.b4 () in
  let model = Prete_optics.Fiber_model.generate topo in
  let obs = { Calibrate.degraded = []; Calibrate.will_cut = [ 7 ] } in
  let st = Calibrate.probabilities Calibrate.Static model obs in
  Alcotest.(check bool) "static = p_i" true (st = model.Prete_optics.Fiber_model.p_cut);
  let oracle = Calibrate.probabilities Calibrate.Oracle model obs in
  check_close 1e-12 "cutting fiber" 1.0 oracle.(7);
  check_close 1e-12 "other fiber" 0.0 oracle.(0)

let test_calibrate_clamps () =
  let topo = Topology.b4 () in
  let model = Prete_optics.Fiber_model.generate topo in
  let rng = Prete_util.Rng.create 3 in
  let feats = Prete_optics.Hazard.sample_features rng ~topo ~fiber:0 ~epoch:0 in
  let obs = { Calibrate.degraded = [ (0, feats) ]; Calibrate.will_cut = [] } in
  let p = Calibrate.probabilities (Calibrate.Calibrated (fun _ -> 7.0)) model obs in
  check_close 1e-12 "clamped to 1" 1.0 p.(0)

(* ------------------------------------------------------------------ *)
(* Tunnel_update (Algorithm 1)                                          *)
(* ------------------------------------------------------------------ *)

let b4_tunnels =
  lazy
    (let topo = Topology.b4 () in
     let traffic = Traffic.generate topo in
     Tunnels.build topo traffic.Traffic.pairs)

let test_algorithm1_disjoint_from_degraded () =
  let ts = Lazy.force b4_tunnels in
  let upd = Tunnel_update.react ts ~degraded_fiber:3 () in
  Alcotest.(check bool) "created some tunnels" true (Tunnel_update.num_new upd > 0);
  Array.iter
    (fun (tn : Tunnels.tunnel) ->
      Alcotest.(check bool) "avoids degraded fiber" false
        (Routing.uses_fiber ts.Tunnels.topo tn.Tunnels.links 3))
    upd.Tunnel_update.new_tunnels

let test_algorithm1_only_affected_flows () =
  let ts = Lazy.force b4_tunnels in
  let fiber = 3 in
  let upd = Tunnel_update.react ts ~degraded_fiber:fiber () in
  let affected = Tunnels.flows_affected_by_cut ts fiber in
  Array.iteri
    (fun f new_ids ->
      if new_ids <> [] then
        Alcotest.(check bool) "flow is affected" true (List.mem f affected))
    upd.Tunnel_update.new_of_flow

let test_algorithm1_ratio_scales () =
  let ts = Lazy.force b4_tunnels in
  let n1 = Tunnel_update.num_new (Tunnel_update.react ~ratio:1.0 ts ~degraded_fiber:3 ()) in
  let n2 = Tunnel_update.num_new (Tunnel_update.react ~ratio:2.0 ts ~degraded_fiber:3 ()) in
  let n0 = Tunnel_update.num_new (Tunnel_update.react ~ratio:0.0 ts ~degraded_fiber:3 ()) in
  Alcotest.(check int) "ratio 0 creates nothing" 0 n0;
  Alcotest.(check bool) "ratio 2 creates more" true (n2 > n1)

let test_algorithm1_merged_consistent () =
  let ts = Lazy.force b4_tunnels in
  let upd = Tunnel_update.react ts ~degraded_fiber:0 () in
  let merged = Tunnel_update.merged upd in
  Alcotest.(check int) "tunnel count"
    (Array.length ts.Tunnels.tunnels + Tunnel_update.num_new upd)
    (Array.length merged.Tunnels.tunnels);
  (* Ids are consistent with positions. *)
  Array.iteri
    (fun i (tn : Tunnels.tunnel) -> Alcotest.(check int) "id = index" i tn.Tunnels.tunnel_id)
    merged.Tunnels.tunnels;
  (* of_flow lists every new tunnel under its owner. *)
  Array.iter
    (fun (tn : Tunnels.tunnel) ->
      Alcotest.(check bool) "listed under owner" true
        (List.mem tn.Tunnels.tunnel_id merged.Tunnels.of_flow.(tn.Tunnels.owner)))
    upd.Tunnel_update.new_tunnels;
  Alcotest.(check bool) "is_new split" true
    (Tunnel_update.is_new upd (Array.length ts.Tunnels.tunnels))

let test_algorithm1_no_duplicates () =
  let ts = Lazy.force b4_tunnels in
  let upd = Tunnel_update.react ts ~degraded_fiber:5 () in
  let merged = Tunnel_update.merged upd in
  Array.iteri
    (fun f tids ->
      ignore f;
      let paths = List.map (fun tid -> merged.Tunnels.tunnels.(tid).Tunnels.links) tids in
      Alcotest.(check int) "no duplicate paths per flow"
        (List.length paths)
        (List.length (List.sort_uniq compare paths)))
    merged.Tunnels.of_flow

(* ------------------------------------------------------------------ *)
(* Te: optimization                                                     *)
(* ------------------------------------------------------------------ *)

(* Tiny instance where numbers can be checked by hand: the paper's Fig. 2
   network — 3 nodes, links s1s2, s1s3, s2s3 of capacity 10; flows s1→s2
   (one tunnel) and s1→s3 (two tunnels). *)
let fig2_topology () =
  let fibers = [| (0, 1, 100.0); (0, 2, 100.0); (1, 2, 100.0) |] in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (0, 2)); (2, (1, 2)) ])
  in
  Topology.make ~name:"fig2" ~node_names:[| "s1"; "s2"; "s3" |] ~fibers ~links

let fig2_problem ~demands ~probs ~beta =
  let topo = fig2_topology () in
  let ts = Tunnels.build ~per_flow:2 topo [ (0, 1); (0, 2) ] in
  Te.make_problem ~ts ~demands ~probs ~beta ()

let test_te_fig2_feasible () =
  (* Fig. 2 probabilities; both flows demand 10: feasible with zero loss
     at beta = 0.99 only by dropping lossy scenarios. *)
  let p = fig2_problem ~demands:[| 10.0; 10.0 |] ~probs:[| 0.005; 0.009; 0.001 |] ~beta:0.99 in
  let sol = Te.solve p in
  check_close 1e-6 "phi = 0 (the paper's 10-unit solution)" 0.0 sol.Te.phi;
  (* Allocation respects capacity. *)
  Alcotest.(check bool) "expected served close to 1" true (sol.Te.expected_served > 0.98)

let test_te_phi_positive_when_scarce () =
  let p = fig2_problem ~demands:[| 15.0; 15.0 |] ~probs:[| 0.005; 0.009; 0.001 |] ~beta:0.99 in
  let sol = Te.solve p in
  Alcotest.(check bool) (Printf.sprintf "phi %.3f > 0" sol.Te.phi) true (sol.Te.phi > 0.01)

let test_te_solution_feasible () =
  let p = fig2_problem ~demands:[| 8.0; 9.0 |] ~probs:[| 0.005; 0.009; 0.001 |] ~beta:0.99 in
  let sol = Te.solve p in
  (* Capacity feasibility. *)
  let topo = p.Te.ts.Tunnels.topo in
  let load = Array.make (Topology.num_links topo) 0.0 in
  Array.iter
    (fun (tn : Tunnels.tunnel) ->
      List.iter
        (fun lid -> load.(lid) <- load.(lid) +. sol.Te.alloc.(tn.Tunnels.tunnel_id))
        tn.Tunnels.links)
    p.Te.ts.Tunnels.tunnels;
  Array.iteri
    (fun lid l ->
      Alcotest.(check bool) "within capacity" true
        (l <= (Topology.link topo lid).Topology.capacity +. 1e-6))
    load;
  (* Covered classes meet (1 - phi) of demand. *)
  Array.iteri
    (fun f cls ->
      Array.iteri
        (fun ci (c : Scenario.Classes.cls) ->
          if sol.Te.delta.(f).(ci) then begin
            let loss = Te.class_loss p ~alloc:sol.Te.alloc ~flow:f c in
            Alcotest.(check bool) "covered loss <= phi" true (loss <= sol.Te.phi +. 1e-6)
          end)
        cls)
    sol.Te.classes;
  (* Coverage (5). *)
  Array.iteri
    (fun f cls ->
      let covered =
        Array.to_list cls
        |> List.mapi (fun ci c ->
               if sol.Te.delta.(f).(ci) then c.Scenario.Classes.prob else 0.0)
        |> List.fold_left ( +. ) 0.0
      in
      Alcotest.(check bool) "coverage >= beta" true (covered >= p.Te.beta -. 1e-9))
    sol.Te.classes

let test_te_heuristic_matches_mip () =
  (* On small instances the heuristic must find the exact optimum. *)
  List.iter
    (fun (d1, d2, beta) ->
      let p =
        fig2_problem ~demands:[| d1; d2 |] ~probs:[| 0.02; 0.03; 0.01 |] ~beta
      in
      let h = Te.solve ~second_phase:false p in
      let e = Te.solve_mip p in
      check_close 1e-5
        (Printf.sprintf "phi at (%g, %g, %g)" d1 d2 beta)
        e.Te.phi h.Te.phi)
    [ (10.0, 10.0, 0.9); (15.0, 15.0, 0.9); (12.0, 18.0, 0.95); (20.0, 5.0, 0.9) ]

let test_te_benders_matches_mip () =
  List.iter
    (fun (d1, d2, beta) ->
      let p =
        fig2_problem ~demands:[| d1; d2 |] ~probs:[| 0.02; 0.03; 0.01 |] ~beta
      in
      let b = Te.solve_benders p in
      let e = Te.solve_mip p in
      check_close 1e-3
        (Printf.sprintf "phi at (%g, %g, %g)" d1 d2 beta)
        e.Te.phi b.Te.phi)
    [ (10.0, 10.0, 0.9); (15.0, 15.0, 0.9); (12.0, 18.0, 0.95) ]

let test_te_benders_converges_b4 () =
  (* Benders on a real topology instance terminates and agrees with the
     heuristic's bound direction. *)
  let topo = Topology.b4 () in
  let traffic = Traffic.generate topo in
  let ts = Tunnels.build topo traffic.Traffic.pairs in
  let model = Prete_optics.Fiber_model.generate topo in
  let demands = Traffic.demand traffic ~scale:2.0 ~epoch:12 in
  let p = Te.make_problem ~ts ~demands ~probs:model.Prete_optics.Fiber_model.p_cut ~beta:0.99 () in
  let b = Te.solve_benders p in
  let h = Te.solve ~second_phase:false p in
  Alcotest.(check bool) "benders <= heuristic + eps" true (b.Te.phi <= h.Te.phi +. 1e-3)

let test_te_monotone_in_beta () =
  (* Raising beta cannot reduce the optimal loss. *)
  let phi beta =
    (Te.solve ~second_phase:false
       (fig2_problem ~demands:[| 15.0; 15.0 |] ~probs:[| 0.02; 0.03; 0.01 |] ~beta))
      .Te.phi
  in
  Alcotest.(check bool) "phi(0.999) >= phi(0.9)" true (phi 0.999 >= phi 0.9 -. 1e-9)

let test_te_make_problem_validation () =
  let topo = fig2_topology () in
  let ts = Tunnels.build ~per_flow:2 topo [ (0, 1) ] in
  Alcotest.check_raises "demand mismatch"
    (Invalid_argument "Te.make_problem: demands/flows mismatch") (fun () ->
      ignore (Te.make_problem ~ts ~demands:[| 1.0; 2.0 |] ~probs:[| 0.1; 0.1; 0.1 |] ~beta:0.9 ()))

let test_te_beta_above_truncated_mass () =
  (* Five fibers at p = 0.05, truncated at order 1: the enumerated
     scenarios cover ~0.9774 of the probability mass.  Asking for
     β = 0.999 without normalization is impossible and must be rejected
     eagerly by [make_problem]; with normalization (the default) the
     covered mass is rescaled to 1 and the problem solves. *)
  let topo = square () in
  let ts = Tunnels.build topo [ (0, 2) ] in
  let demands = [| 5.0 |] in
  let probs = Array.make (Topology.num_fibers topo) 0.05 in
  (match
     Te.make_problem ~ts ~demands ~probs ~max_order:1 ~beta:0.999 ~normalize:false ()
   with
  | exception Te.Infeasible_problem msg ->
      let mentions_beta =
        let n = String.length msg and m = String.length "beta" in
        let rec scan i = i + m <= n && (String.sub msg i m = "beta" || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) "message names beta" true mentions_beta
  | _ -> Alcotest.fail "expected Infeasible_problem for beta above covered mass");
  (* Same construction with normalization succeeds and solves. *)
  let p = Te.make_problem ~ts ~demands ~probs ~max_order:1 ~beta:0.999 () in
  let sol = Te.solve p in
  Alcotest.(check bool) "solves once normalized" true (sol.Te.phi >= 0.0);
  Alcotest.(check bool) "not degraded" false sol.Te.degraded

let test_te_admission_caps () =
  let p = fig2_problem ~demands:[| 25.0; 25.0 |] ~probs:[| 0.02; 0.03; 0.01 |] ~beta:0.9 in
  let adm = Te.solve_admission p in
  Array.iteri
    (fun f b ->
      Alcotest.(check bool) "b <= d" true (b <= p.Te.demands.(f) +. 1e-9);
      Alcotest.(check bool) "b >= 0" true (b >= -1e-9))
    adm.Te.admitted;
  (* Covered classes support the admitted rate. *)
  Array.iteri
    (fun f cls ->
      Array.iteri
        (fun ci (c : Scenario.Classes.cls) ->
          if adm.Te.adm_delta.(f).(ci) then begin
            let surviving =
              List.fold_left
                (fun acc tid -> acc +. adm.Te.adm_alloc.(tid))
                0.0 c.Scenario.Classes.survivors
            in
            Alcotest.(check bool) "survivors carry admission" true
              (surviving >= adm.Te.admitted.(f) -. 1e-6)
          end)
        cls)
    adm.Te.adm_classes

let test_te_admission_saturates_when_abundant () =
  let p = fig2_problem ~demands:[| 3.0; 3.0 |] ~probs:[| 0.02; 0.03; 0.01 |] ~beta:0.9 in
  let adm = Te.solve_admission p in
  Array.iteri
    (fun f b -> check_close 1e-6 "full admission" p.Te.demands.(f) b)
    adm.Te.admitted

let test_te_admission_skip_unprotectable () =
  (* A flow with a single tunnel cannot survive its own fiber's cut: full
     coverage forces b = 0 unless unprotectable classes are skipped
     (FFC-k semantics). *)
  let topo = fig2_topology () in
  (* Hand-built single-tunnel flow: Tunnels.build would repair in a
     residual tunnel per §4.2, which is exactly what we must avoid here. *)
  let direct =
    List.find_map
      (fun (lid, dst) -> if dst = 1 then Some lid else None)
      (Topology.neighbors topo 0)
    |> Option.get
  in
  let ts =
    {
      Tunnels.topo;
      Tunnels.flows = [| { Tunnels.flow_id = 0; Tunnels.src = 0; Tunnels.dst = 1 } |];
      Tunnels.tunnels = [| { Tunnels.tunnel_id = 0; Tunnels.owner = 0; Tunnels.links = [ direct ] } |];
      Tunnels.of_flow = [| [ 0 ] |];
    }
  in
  let p = Te.make_problem ~ts ~demands:[| 5.0 |] ~probs:[| 0.02; 0.03; 0.01 |] ~beta:0.999 () in
  let strict = Te.solve_admission ~max_rounds:1 p in
  check_close 1e-9 "strict coverage blocks admission" 0.0 strict.Te.admitted.(0);
  let lenient = Te.solve_admission ~max_rounds:1 ~skip_unprotectable:true p in
  check_close 1e-6 "skipping unprotectable admits" 5.0 lenient.Te.admitted.(0)

let test_te_new_tunnels_reduce_loss () =
  (* Algorithm 1's value inside the optimization: with the degraded
     fiber's class forced covered, new tunnels reduce the optimal loss. *)
  let topo = Topology.b4 () in
  let traffic = Traffic.generate topo in
  let ts = Tunnels.build topo traffic.Traffic.pairs in
  let nf = Topology.num_fibers topo in
  let demands = Traffic.demand traffic ~scale:4.0 ~epoch:12 in
  (* Degradation on a heavily-used fiber. *)
  let fiber = 3 in
  let probs = Array.init nf (fun i -> if i = fiber then 0.4 else 0.003) in
  let phi_of ts =
    (Te.solve ~second_phase:false (Te.make_problem ~ts ~demands ~probs ~beta:0.999 ())).Te.phi
  in
  let base = phi_of ts in
  let merged = Tunnel_update.merged (Tunnel_update.react ts ~degraded_fiber:fiber ()) in
  let with_new = phi_of merged in
  Alcotest.(check bool)
    (Printf.sprintf "phi with new tunnels %.4f <= base %.4f" with_new base)
    true (with_new <= base +. 1e-9)

let test_te_order2_classes () =
  (* Order-2 scenario sets produce a finer class partition that still
     partitions the scenario space. *)
  let topo = fig2_topology () in
  let ts = Tunnels.build ~per_flow:2 topo [ (0, 1); (0, 2) ] in
  let p1 = Te.make_problem ~ts ~demands:[| 5.0; 5.0 |] ~probs:[| 0.02; 0.03; 0.01 |] ~beta:0.9 () in
  let p2 =
    Te.make_problem ~ts ~demands:[| 5.0; 5.0 |] ~probs:[| 0.02; 0.03; 0.01 |] ~max_order:2
      ~beta:0.9 ()
  in
  Alcotest.(check int) "order-1 scenarios" 4 (Array.length p1.Te.scenarios.Scenario.scenarios);
  Alcotest.(check int) "order-2 scenarios" 7 (Array.length p2.Te.scenarios.Scenario.scenarios);
  let classes = Te.classes_of p2 in
  Array.iter
    (fun cls ->
      let members = Array.fold_left (fun a c -> a + List.length c.Scenario.Classes.members) 0 cls in
      Alcotest.(check int) "partition" 7 members;
      let mass = Array.fold_left (fun a c -> a +. c.Scenario.Classes.prob) 0.0 cls in
      check_close 1e-9 "mass 1 (normalized)" 1.0 mass)
    classes;
  (* Order-2 protection can only increase the optimum loss. *)
  let s1 = Te.solve ~second_phase:false p1 and s2 = Te.solve ~second_phase:false p2 in
  Alcotest.(check bool) "phi(order2) >= phi(order1) - eps" true (s2.Te.phi >= s1.Te.phi -. 1e-6)

let prop_scenario_probs_match_helper =
  QCheck.Test.make ~name:"enumerated probabilities match closed form" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range 0.0 0.4))
    (fun ps ->
      let probs = Array.of_list ps in
      let set = Scenario.enumerate ~probs ~max_order:2 () in
      Array.for_all
        (fun (s : Scenario.t) ->
          Float.abs (s.Scenario.prob -. Scenario.probability ~probs s.Scenario.fibers)
          < 1e-12)
        set.Scenario.scenarios)

let prop_heuristic_bounds_optimum =
  QCheck.Test.make ~name:"heuristic phi sandwiched by exact optimum and all-covered"
    ~count:12
    QCheck.(triple (float_range 5.0 20.0) (float_range 5.0 20.0) (float_range 0.85 0.97))
    (fun (d1, d2, beta) ->
      let topo = fig2_topology () in
      let ts = Tunnels.build ~per_flow:2 topo [ (0, 1); (0, 2) ] in
      let p = Te.make_problem ~ts ~demands:[| d1; d2 |] ~probs:[| 0.03; 0.04; 0.02 |] ~beta () in
      let h = (Te.solve ~second_phase:false p).Te.phi in
      let exact = (Te.solve_mip p).Te.phi in
      (* Validity: the heuristic never reports better than the optimum;
         quality: on these instances it should be within 0.15 of it. *)
      h >= exact -. 1e-6 && h <= exact +. 0.15)

(* ------------------------------------------------------------------ *)
(* Availability                                                          *)
(* ------------------------------------------------------------------ *)

let test_availability_states_normalized () =
  let env = Lazy.force b4_env in
  let states = Availability.Internal.degradation_states env in
  let sum = Array.fold_left (fun a (_, p) -> a +. p) 0.0 states in
  check_close 1e-9 "states sum to 1" 1.0 sum;
  let outcomes = Availability.Internal.cut_outcomes env ~degraded:(Some 2) in
  let sum2 = Array.fold_left (fun a (_, p) -> a +. p) 0.0 outcomes in
  check_close 1e-9 "outcomes sum to 1" 1.0 sum2

let test_availability_degraded_fiber_dominates () =
  (* In a degraded state the degraded fiber's cut outcome carries roughly
     the hazard mass (~0.4), orders of magnitude above the others. *)
  let env = Lazy.force b4_env in
  let n = 2 in
  let outcomes = Availability.Internal.cut_outcomes env ~degraded:(Some n) in
  let p_n =
    Array.to_list outcomes
    |> List.find_map (fun (c, p) -> if c = Some n then Some p else None)
    |> Option.get
  in
  (* Its conditional cut probability is the event's hazard — far above
     every unpredictable-channel outcome. *)
  Array.iter
    (fun (c, p) ->
      match c with
      | Some m when m <> n ->
        Alcotest.(check bool) "degraded fiber dominates others" true (p_n > p)
      | _ -> ())
    outcomes;
  Alcotest.(check bool)
    (Printf.sprintf "p_n %.3f tracks hazard %.3f" p_n env.Availability.true_hazard.(n))
    true
    (p_n > 0.5 *. env.Availability.true_hazard.(n))

let test_availability_max_served_bounds () =
  let env = Lazy.force b4_env in
  let demands = Traffic.demand env.Availability.traffic ~scale:0.5 ~epoch:12 in
  let served = Availability.Internal.max_served env ~demands ~cuts:[] in
  Array.iter (fun s -> check_close 1e-6 "all served at low scale" 1.0 s) served;
  let served_cut = Availability.Internal.max_served env ~demands ~cuts:[ 0 ] in
  Array.iter
    (fun s -> Alcotest.(check bool) "bounded" true (s >= -1e-9 && s <= 1.0 +. 1e-9))
    served_cut

let test_availability_in_unit_range () =
  let env = Lazy.force b4_env in
  List.iter
    (fun scheme ->
      let a = Availability.availability env scheme ~scale:2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s availability %.4f in [0,1]" (Schemes.name scheme) a)
        true (a >= 0.0 && a <= 1.0))
    [ Schemes.Ecmp; Schemes.Ffc 1; Schemes.Teavar; Schemes.Flexile ]

let test_availability_paper_ordering () =
  (* The Fig. 13 story at a capacity-stressed scale: Oracle >= PreTE >
     TeaVar > ECMP-ish; everything in [0, 1]. *)
  let env = Lazy.force b4_env in
  let topo = env.Availability.ts.Tunnels.topo in
  let predictor = predictor_true topo in
  let scale = 3.0 in
  let a_teavar = Availability.availability env Schemes.Teavar ~scale in
  let a_prete = Availability.availability env (Schemes.prete_default ~predictor ()) ~scale in
  let a_oracle = Availability.availability env Schemes.Oracle ~scale in
  let a_ecmp = Availability.availability env Schemes.Ecmp ~scale in
  Alcotest.(check bool)
    (Printf.sprintf "PreTE %.4f > TeaVar %.4f" a_prete a_teavar)
    true (a_prete > a_teavar);
  Alcotest.(check bool)
    (Printf.sprintf "Oracle %.4f >= PreTE %.4f" a_oracle a_prete)
    true (a_oracle >= a_prete -. 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "TeaVar %.4f > ECMP %.4f" a_teavar a_ecmp)
    true (a_teavar > a_ecmp)

let test_availability_smore () =
  (* SMORE (failure-oblivious, optimized split) sits between ECMP and
     the failure-aware schemes, and meets all demand at low scale. *)
  let env = Lazy.force b4_env in
  let a_smore_low = Availability.availability env Schemes.Smore ~scale:1.0 in
  (* Failure-oblivious: even at low scale it eats cut losses, but the
     no-cut scenario (most of the mass) is fully served. *)
  Alcotest.(check bool)
    (Printf.sprintf "low-scale availability %.4f > 0.97" a_smore_low)
    true (a_smore_low > 0.97);
  let scale = 3.0 in
  let a_smore = Availability.availability env Schemes.Smore ~scale in
  let a_ecmp = Availability.availability env Schemes.Ecmp ~scale in
  Alcotest.(check bool)
    (Printf.sprintf "SMORE %.4f >= ECMP %.4f" a_smore a_ecmp)
    true (a_smore >= a_ecmp -. 1e-6)

let test_availability_prete_beats_naive () =
  (* Fig. 16a: creating new tunnels helps at a stressed scale. *)
  let env = Lazy.force b4_env in
  let topo = env.Availability.ts.Tunnels.topo in
  let predictor = predictor_true topo in
  let scale = 3.0 in
  let a_full = Availability.availability env (Schemes.prete_default ~predictor ()) ~scale in
  let a_naive = Availability.availability env (Schemes.prete_naive ~predictor ()) ~scale in
  Alcotest.(check bool)
    (Printf.sprintf "PreTE %.5f >= PreTE-naive %.5f" a_full a_naive)
    true (a_full >= a_naive -. 1e-9)

let test_availability_decreasing_in_scale () =
  let env = Lazy.force b4_env in
  let curve =
    Availability.availability_curve env Schemes.Teavar ~scales:[| 1.0; 2.5; 4.0 |]
  in
  let a1 = snd curve.(0) and a2 = snd curve.(1) and a3 = snd curve.(2) in
  Alcotest.(check bool) "non-increasing (tolerance)" true
    (a1 >= a2 -. 0.01 && a2 >= a3 -. 0.01)

let test_max_scale_at () =
  let curve = [| (1.0, 0.9999); (2.0, 0.995); (3.0, 0.985); (4.0, 0.97) |] in
  let s = Availability.max_scale_at curve ~target:0.99 in
  (* Crossing between 2.0 and 3.0: 0.995 -> 0.985, target 0.99 at 2.5. *)
  check_close 1e-9 "interpolated" 2.5 s;
  check_close 1e-9 "never meets" 0.0
    (Availability.max_scale_at curve ~target:0.99999);
  check_close 1e-9 "always meets" 4.0 (Availability.max_scale_at curve ~target:0.9)

let test_nines () =
  check_close 1e-9 "2 nines" 2.0 (Availability.nines 0.99);
  check_close 1e-9 "3 nines" 3.0 (Availability.nines 0.999);
  check_close 1e-9 "cap" 6.0 (Availability.nines 1.0)

(* ------------------------------------------------------------------ *)
(* Controller                                                           *)
(* ------------------------------------------------------------------ *)

let test_controller_timeline () =
  let (), r =
    Controller.run
      ~infer:(fun () -> ())
      ~regen:(fun () -> ())
      ~te:(fun () -> ())
      ~n_new_tunnels:20 ()
  in
  Alcotest.(check int) "five stages" 5 (List.length r.Controller.timeline);
  (* Stages are contiguous. *)
  let rec contiguous = function
    | a :: (b : Controller.timing) :: rest ->
      Float.abs (a.Controller.start_s +. a.Controller.duration_s -. b.Controller.start_s)
      < 1e-9
      && contiguous (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "contiguous" true (contiguous r.Controller.timeline);
  (* 20 tunnels at 250 ms each = 5 s (Fig. 11b). *)
  let update =
    List.find (fun t -> t.Controller.stage = Controller.Tunnel_update) r.Controller.timeline
  in
  check_close 1e-9 "5 s for 20 tunnels" 5.0 update.Controller.duration_s

let test_controller_linear_updates () =
  check_close 1e-9 "zero" 0.0 (Controller.tunnel_update_time 0);
  check_close 1e-9 "linear" (2.0 *. Controller.tunnel_update_time 10)
    (Controller.tunnel_update_time 20)

let test_controller_budget () =
  let (), r =
    Controller.run
      ~infer:(fun () -> ())
      ~regen:(fun () -> ())
      ~te:(fun () -> ())
      ~n_new_tunnels:4 ()
  in
  Alcotest.(check bool) "fits in 60 s gap" true (Controller.within_budget r ~gap_to_cut_s:60.0);
  Alcotest.(check bool) "misses 0.1 s gap" false (Controller.within_budget r ~gap_to_cut_s:0.1)

(* ------------------------------------------------------------------ *)
(* Switchsim                                                            *)
(* ------------------------------------------------------------------ *)

let test_switchsim_linear_serialized () =
  (* Fig. 11b: serialized installation is linear, ~0.25 s per tunnel. *)
  let ts = Lazy.force b4_tunnels in
  let curve = Switchsim.fig11b_curve ts ~counts:[ 10; 20; 40 ] in
  (match curve with
  | [ (_, t10); (_, t20); (_, t40) ] ->
    Alcotest.(check bool)
      (Printf.sprintf "roughly linear: %.2f %.2f %.2f" t10 t20 t40)
      true
      (t20 > 1.6 *. t10 && t20 < 2.4 *. t10 && t40 > 1.6 *. t20 && t40 < 2.4 *. t20);
    Alcotest.(check bool)
      (Printf.sprintf "20 tunnels ~5 s (got %.2f)" t20)
      true
      (t20 > 3.0 && t20 < 8.0)
  | _ -> Alcotest.fail "expected 3 samples")

let test_switchsim_batching_speedup () =
  (* §5: batching a dozen tunnels at a time cuts the total time. *)
  let ts = Lazy.force b4_tunnels in
  let tunnels = List.filteri (fun i _ -> i < 48) (Array.to_list ts.Tunnels.tunnels) in
  let serial = Switchsim.install ts tunnels in
  let batched = Switchsim.install ~batch:12 ts tunnels in
  Alcotest.(check bool)
    (Printf.sprintf "batched %.2f s at least 3x faster than %.2f s"
       batched.Switchsim.total_s serial.Switchsim.total_s)
    true
    (batched.Switchsim.total_s *. 3.0 < serial.Switchsim.total_s);
  Alcotest.(check int) "same session count" serial.Switchsim.sessions
    batched.Switchsim.sessions

let test_switchsim_sessions_count_routers () =
  let ts = Lazy.force b4_tunnels in
  let tn = ts.Tunnels.tunnels.(0) in
  let o = Switchsim.install ts [ tn ] in
  Alcotest.(check int) "one session per router on the path"
    (List.length tn.Tunnels.links + 1)
    o.Switchsim.sessions;
  Alcotest.(check int) "one completion" 1 (Array.length o.Switchsim.per_tunnel_s)

let test_switchsim_deterministic_and_valid () =
  let ts = Lazy.force b4_tunnels in
  let tunnels = List.filteri (fun i _ -> i < 10) (Array.to_list ts.Tunnels.tunnels) in
  let a = Switchsim.install ts tunnels and b = Switchsim.install ts tunnels in
  check_close 1e-12 "deterministic" a.Switchsim.total_s b.Switchsim.total_s;
  Array.iter
    (fun t ->
      Alcotest.(check bool) "completion within total" true
        (t > 0.0 && t <= a.Switchsim.total_s +. 1e-9))
    a.Switchsim.per_tunnel_s;
  Alcotest.check_raises "bad batch" (Invalid_argument "Switchsim.install: batch must be positive")
    (fun () -> ignore (Switchsim.install ~batch:0 ts tunnels))

(* ------------------------------------------------------------------ *)
(* Uncertainty                                                          *)
(* ------------------------------------------------------------------ *)

let test_uncertainty_fig19_shape () =
  (* Capacity uncertainty moves affected tunnels much more than workload
     uncertainty moves anything. *)
  let env = Lazy.force b4_env in
  let w = Uncertainty.workload_variation env ~scale:1.5 ~jitter:0.05 in
  let c = Uncertainty.capacity_variation env ~scale:1.5 in
  Alcotest.(check bool)
    (Printf.sprintf "capacity affected %.3f > workload affected %.3f"
       c.Uncertainty.affected_mean w.Uncertainty.affected_mean)
    true
    (c.Uncertainty.affected_mean > w.Uncertainty.affected_mean);
  Alcotest.(check bool) "capacity: affected >> unaffected" true
    (c.Uncertainty.affected_mean > c.Uncertainty.unaffected_mean)

let test_uncertainty_fig17_shape () =
  let env = Lazy.force b4_env in
  let topo = env.Availability.ts.Tunnels.topo in
  let predictor = predictor_true topo in
  let pts = Uncertainty.fig17 env ~predictor ~scales:[| 3.0 |] in
  Alcotest.(check int) "4 points" 4 (List.length pts);
  let get scheme dp =
    (List.find
       (fun p -> p.Uncertainty.scheme = scheme && p.Uncertainty.demand_prediction = dp)
       pts)
      .Uncertainty.availability
  in
  (* Failure prediction dominates demand prediction when loaded. *)
  Alcotest.(check bool) "PreTE > TeaVar*" true (get "PreTE" false > get "TeaVar" true);
  Alcotest.(check bool) "PreTE* >= PreTE - eps" true
    (get "PreTE" true >= get "PreTE" false -. 0.002)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prete_core"
    [
      ( "scenario",
        [
          Alcotest.test_case "single order" `Quick test_scenario_single_order;
          Alcotest.test_case "order 2" `Quick test_scenario_order2;
          Alcotest.test_case "cutoff" `Quick test_scenario_cutoff;
          Alcotest.test_case "normalize" `Quick test_scenario_normalize;
          Alcotest.test_case "probability" `Quick test_scenario_probability;
          Alcotest.test_case "invalid" `Quick test_scenario_invalid;
          Alcotest.test_case "classes partition" `Quick test_scenario_classes;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "Eqn 1" `Quick test_calibrate_eqn1;
          Alcotest.test_case "static and oracle" `Quick test_calibrate_static_oracle;
          Alcotest.test_case "clamps" `Quick test_calibrate_clamps;
        ] );
      ( "algorithm1",
        [
          Alcotest.test_case "disjoint from degraded fiber" `Quick test_algorithm1_disjoint_from_degraded;
          Alcotest.test_case "only affected flows" `Quick test_algorithm1_only_affected_flows;
          Alcotest.test_case "ratio scales count" `Quick test_algorithm1_ratio_scales;
          Alcotest.test_case "merged consistent" `Quick test_algorithm1_merged_consistent;
          Alcotest.test_case "no duplicates" `Quick test_algorithm1_no_duplicates;
        ] );
      ( "te",
        [
          Alcotest.test_case "Fig 2 feasible" `Quick test_te_fig2_feasible;
          Alcotest.test_case "phi > 0 when scarce" `Quick test_te_phi_positive_when_scarce;
          Alcotest.test_case "solution feasible" `Quick test_te_solution_feasible;
          Alcotest.test_case "heuristic = MIP" `Quick test_te_heuristic_matches_mip;
          Alcotest.test_case "Benders = MIP" `Quick test_te_benders_matches_mip;
          Alcotest.test_case "Benders on B4" `Slow test_te_benders_converges_b4;
          Alcotest.test_case "monotone in beta" `Quick test_te_monotone_in_beta;
          Alcotest.test_case "validation" `Quick test_te_make_problem_validation;
          Alcotest.test_case "beta above truncated mass" `Quick
            test_te_beta_above_truncated_mass;
          Alcotest.test_case "admission caps" `Quick test_te_admission_caps;
          Alcotest.test_case "admission saturates" `Quick test_te_admission_saturates_when_abundant;
          Alcotest.test_case "admission skip unprotectable" `Quick test_te_admission_skip_unprotectable;
          Alcotest.test_case "new tunnels reduce loss" `Slow test_te_new_tunnels_reduce_loss;
          Alcotest.test_case "order-2 classes" `Quick test_te_order2_classes;
        ] );
      ( "availability",
        [
          Alcotest.test_case "states normalized" `Slow test_availability_states_normalized;
          Alcotest.test_case "degraded fiber dominates" `Slow test_availability_degraded_fiber_dominates;
          Alcotest.test_case "max served bounds" `Slow test_availability_max_served_bounds;
          Alcotest.test_case "unit range" `Slow test_availability_in_unit_range;
          Alcotest.test_case "paper ordering (Fig 13)" `Slow test_availability_paper_ordering;
          Alcotest.test_case "SMORE between ECMP and aware" `Slow test_availability_smore;
          Alcotest.test_case "PreTE >= naive (Fig 16a)" `Slow test_availability_prete_beats_naive;
          Alcotest.test_case "decreasing in scale" `Slow test_availability_decreasing_in_scale;
          Alcotest.test_case "max_scale_at" `Quick test_max_scale_at;
          Alcotest.test_case "nines" `Quick test_nines;
        ] );
      ( "te.props",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_scenario_probs_match_helper; prop_heuristic_bounds_optimum ] );
      ( "controller",
        [
          Alcotest.test_case "timeline (Fig 11a)" `Quick test_controller_timeline;
          Alcotest.test_case "linear updates (Fig 11b)" `Quick test_controller_linear_updates;
          Alcotest.test_case "budget check" `Quick test_controller_budget;
        ] );
      ( "switchsim",
        [
          Alcotest.test_case "linear serialized (Fig 11b)" `Quick test_switchsim_linear_serialized;
          Alcotest.test_case "batching speedup" `Quick test_switchsim_batching_speedup;
          Alcotest.test_case "sessions per router" `Quick test_switchsim_sessions_count_routers;
          Alcotest.test_case "deterministic + valid" `Quick test_switchsim_deterministic_and_valid;
        ] );
      ( "uncertainty",
        [
          Alcotest.test_case "Fig 19 shape" `Slow test_uncertainty_fig19_shape;
          Alcotest.test_case "Fig 17 shape" `Slow test_uncertainty_fig17_shape;
        ] );
    ]
