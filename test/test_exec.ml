(* Tests for the prete_exec domain pool: unit behavior of parallel_for /
   parallel_map (coverage, chunking, exceptions, reentrancy, stats) and
   the subsystem's central contract — every parallelized entry point
   (Simulate.run, Simulate.run_chaos, Availability.availability,
   Te.solve_benders) returns bit-identical results at any domain count. *)

open Prete
open Prete_net
module Pool = Prete_exec.Pool
module Pool_stats = Prete_exec.Pool_stats

let with_pool domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let domain_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_map_matches_sequential () =
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          List.iter
            (fun n ->
              let xs = Array.init n (fun i -> i) in
              let expect = Array.map (fun x -> (x * x) + 1) xs in
              let got = Pool.parallel_map pool (fun x -> (x * x) + 1) xs in
              Alcotest.(check (array int))
                (Printf.sprintf "domains=%d n=%d" domains n)
                expect got)
            [ 0; 1; 7; 64; 257 ]))
    domain_counts

let test_map_chunk_sizes () =
  with_pool 4 (fun pool ->
      let xs = Array.init 100 string_of_int in
      let expect = Array.map String.length xs in
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "chunk=%d" chunk)
            expect
            (Pool.parallel_map pool ~chunk String.length xs))
        [ 1; 3; 100; 1000 ])

let test_for_each_index_once () =
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          let n = 237 in
          let hits = Array.make n 0 in
          Pool.parallel_for pool ~chunk:10 n (fun lo hi ->
              for i = lo to hi - 1 do
                hits.(i) <- hits.(i) + 1
              done);
          Alcotest.(check (array int))
            (Printf.sprintf "each index once at domains=%d" domains)
            (Array.make n 1) hits))
    domain_counts

let test_for_chunk_decomposition () =
  (* The decomposition is a function of (n, chunk) only: contiguous
     [lo, hi) ranges of size [chunk] with one ragged tail. *)
  with_pool 2 (fun pool ->
      let seen = ref [] in
      let m = Mutex.create () in
      Pool.parallel_for pool ~chunk:10 37 (fun lo hi ->
          Mutex.lock m;
          seen := (lo, hi) :: !seen;
          Mutex.unlock m);
      let got = List.sort compare !seen in
      Alcotest.(check (list (pair int int)))
        "chunks" [ (0, 10); (10, 20); (20, 30); (30, 37) ] got)

let test_for_empty_and_invalid () =
  with_pool 2 (fun pool ->
      Pool.parallel_for pool 0 (fun _ _ -> Alcotest.fail "body on n=0");
      Pool.parallel_for pool (-3) (fun _ _ -> Alcotest.fail "body on n<0");
      match Pool.parallel_for pool ~chunk:0 5 (fun _ _ -> ()) with
      | () -> Alcotest.fail "chunk=0 accepted"
      | exception Invalid_argument _ -> ())

let test_exception_propagates () =
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "re-raised at domains=%d" domains)
            (Failure "boom")
            (fun () ->
              ignore
                (Pool.parallel_map pool ~chunk:4
                   (fun i -> if i = 57 then failwith "boom" else i)
                   (Array.init 100 (fun i -> i))))))
    domain_counts

let test_pool_usable_after_exception () =
  with_pool 2 (fun pool ->
      (try ignore (Pool.parallel_map pool (fun _ -> failwith "x") [| 1; 2; 3 |])
       with Failure _ -> ());
      Alcotest.(check (array int))
        "next job fine" [| 2; 4; 6 |]
        (Pool.parallel_map pool (fun x -> 2 * x) [| 1; 2; 3 |]))

let test_nested_jobs_serialize () =
  with_pool 2 (fun pool ->
      let got =
        Pool.parallel_map pool ~chunk:1
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.parallel_map pool ~chunk:1 (fun j -> i * j) [| 1; 2; 3 |]))
          (Array.init 6 (fun i -> i))
      in
      Alcotest.(check (array int)) "nested" [| 0; 6; 12; 18; 24; 30 |] got;
      let s = Pool.stats pool in
      Alcotest.(check bool) "nested jobs ran inline" true
        (s.Pool_stats.inline_jobs > 0))

let test_stats_counters () =
  with_pool 2 (fun pool ->
      Pool.reset_stats pool;
      ignore (Pool.parallel_map pool ~chunk:8 (fun x -> x) (Array.init 64 (fun i -> i)));
      let s = Pool.stats pool in
      Alcotest.(check int) "domains" 2 s.Pool_stats.domains;
      Alcotest.(check int) "one job" 1 s.Pool_stats.jobs;
      Alcotest.(check int) "eight tasks" 8 s.Pool_stats.tasks;
      Pool.reset_stats pool;
      Alcotest.(check int) "reset" 0 (Pool.stats pool).Pool_stats.jobs)

let test_single_lane_runs_inline () =
  with_pool 1 (fun pool ->
      Pool.reset_stats pool;
      ignore (Pool.parallel_map pool (fun x -> x + 1) (Array.init 32 (fun i -> i)));
      let s = Pool.stats pool in
      Alcotest.(check int) "one job" 1 s.Pool_stats.jobs;
      Alcotest.(check int) "ran inline" 1 s.Pool_stats.inline_jobs;
      Alcotest.(check int) "no steals" 0 s.Pool_stats.steals)

let test_sequential_cutoff () =
  (* Default-chunked jobs at or below the cutoff collapse to one chunk
     and run inline even on a multi-lane pool; above it they fan out; an
     explicit ~chunk bypasses the cutoff entirely. *)
  with_pool 4 (fun pool ->
      let n = Pool.sequential_cutoff in
      Pool.reset_stats pool;
      ignore (Pool.parallel_map pool (fun x -> x + 1) (Array.init n (fun i -> i)));
      let s = Pool.stats pool in
      Alcotest.(check int) "small job inline" 1 s.Pool_stats.inline_jobs;
      Alcotest.(check int) "single chunk" 1 s.Pool_stats.tasks;
      Pool.reset_stats pool;
      ignore
        (Pool.parallel_map pool (fun x -> x + 1) (Array.init (3 * n) (fun i -> i)));
      let s = Pool.stats pool in
      Alcotest.(check int) "large job fans out" 0 s.Pool_stats.inline_jobs;
      Alcotest.(check bool) "several chunks" true (s.Pool_stats.tasks > 1);
      Pool.reset_stats pool;
      ignore
        (Pool.parallel_map pool ~chunk:1 (fun x -> x + 1) (Array.init 8 (fun i -> i)));
      let s = Pool.stats pool in
      Alcotest.(check int) "explicit chunk bypasses cutoff" 0 s.Pool_stats.inline_jobs;
      Alcotest.(check int) "one chunk per element" 8 s.Pool_stats.tasks)

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check (array int))
    "inline after shutdown" [| 1; 4; 9 |]
    (Pool.parallel_map pool (fun x -> x * x) [| 1; 2; 3 |])

let test_default_domains_env () =
  let old = Sys.getenv_opt "PRETE_DOMAINS" in
  let restore () =
    match old with
    | Some v -> Unix.putenv "PRETE_DOMAINS" v
    | None -> Unix.putenv "PRETE_DOMAINS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "PRETE_DOMAINS" "3";
      Alcotest.(check int) "parsed" 3 (Pool.default_domains ());
      Unix.putenv "PRETE_DOMAINS" "zebra";
      Alcotest.(check int) "unparsable -> 1" 1 (Pool.default_domains ());
      Unix.putenv "PRETE_DOMAINS" "-2";
      Alcotest.(check int) "non-positive -> 1" 1 (Pool.default_domains ()))

(* ------------------------------------------------------------------ *)
(* Determinism across domain counts (the subsystem contract)            *)
(* ------------------------------------------------------------------ *)

let env_b4 = lazy (Availability.make_env (Topology.b4 ()))

let oracle_scheme env =
  let topo = env.Availability.ts.Tunnels.topo in
  Schemes.prete_default
    ~predictor:(Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo))
    ()

let all_equal name = function
  | [] -> ()
  | r0 :: rest ->
    List.iteri
      (fun i r ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: run %d identical to run 0" name (i + 1))
          true (r = r0))
      rest

let test_simulate_bit_identical () =
  let env = Lazy.force env_b4 in
  let scheme = oracle_scheme env in
  all_equal "Simulate.run"
    (List.map
       (fun d ->
         with_pool d (fun pool ->
             Simulate.run ~seed:11 ~epochs:1_500 ~pool env scheme ~scale:2.0))
       domain_counts)

let test_availability_bit_identical () =
  let env = Lazy.force env_b4 in
  List.iter
    (fun scheme ->
      all_equal
        (Printf.sprintf "Availability (%s)" (Schemes.name scheme))
        (List.map
           (fun d ->
             with_pool d (fun pool ->
                 Availability.availability ~pool env scheme ~scale:3.0))
           domain_counts))
    [ oracle_scheme env; Schemes.Flexile ]

let square () =
  let fibers =
    [| (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0); (3, 0, 100.0); (0, 2, 500.0) |]
  in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (1, 2)); (2, (2, 3)); (3, (3, 0)); (4, (0, 2)) ])
  in
  Topology.make ~name:"square" ~node_names:[| "n0"; "n1"; "n2"; "n3" |] ~fibers ~links

let test_benders_bit_identical () =
  let topo = square () in
  let ts = Tunnels.build ~per_flow:2 topo [ (0, 2); (1, 3) ] in
  let p =
    Te.make_problem ~ts ~demands:[| 14.0; 9.0 |]
      ~probs:[| 0.02; 0.03; 0.01; 0.015; 0.025 |] ~beta:0.95 ()
  in
  let runs =
    List.map
      (fun d ->
        with_pool d (fun pool ->
            let s = Te.solve_benders ~pool p in
            (* Compare the mathematical content (solver telemetry carries
               wall-clock times, which legitimately differ). *)
            (s.Te.phi, s.Te.alloc, s.Te.delta, s.Te.stats)))
      domain_counts
  in
  all_equal "Te.solve_benders" runs

let test_chaos_bit_identical () =
  let env = Lazy.force env_b4 in
  let scheme = oracle_scheme env in
  let faults = [ { Faults.fault = Faults.Noise_burst; rate = 0.5 } ] in
  all_equal "Simulate.run_chaos"
    (List.map
       (fun d ->
         with_pool d (fun pool ->
             Simulate.run_chaos ~seed:7 ~epochs:150 ~faults ~fault_seed:3 ~pool
               env scheme ~scale:2.0))
       [ 1; 4 ])

let test_chaos_under_pool_sane () =
  (* The chaos guarantees (no raise, plans always produced) must hold when
     the shards run on a multi-domain pool. *)
  let env = Lazy.force env_b4 in
  let scheme = oracle_scheme env in
  with_pool 4 (fun pool ->
      let r =
        Simulate.run_chaos ~seed:5 ~epochs:120
          ~faults:[ { Faults.fault = Faults.Telemetry_dropout; rate = 0.7 } ]
          ~fault_seed:9 ~pool env scheme ~scale:2.0
      in
      Alcotest.(check int) "every epoch served by exactly one rung"
        r.Simulate.c_epochs
        (r.Simulate.c_primary + r.Simulate.c_cached + r.Simulate.c_equal_split);
      Alcotest.(check bool) "gaps observed" true (r.Simulate.c_gap_epochs > 0);
      Alcotest.(check bool) "availability sane" true
        (r.Simulate.c_availability > 0.0 && r.Simulate.c_availability <= 1.0))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prete_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "map chunk sizes" `Quick test_map_chunk_sizes;
          Alcotest.test_case "for covers each index once" `Quick test_for_each_index_once;
          Alcotest.test_case "for chunk decomposition" `Quick test_for_chunk_decomposition;
          Alcotest.test_case "for empty/invalid" `Quick test_for_empty_and_invalid;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "usable after exception" `Quick test_pool_usable_after_exception;
          Alcotest.test_case "nested jobs serialize" `Quick test_nested_jobs_serialize;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "single lane inline" `Quick test_single_lane_runs_inline;
          Alcotest.test_case "sequential cutoff" `Quick test_sequential_cutoff;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "PRETE_DOMAINS parsing" `Quick test_default_domains_env;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "Simulate.run bit-identical" `Slow test_simulate_bit_identical;
          Alcotest.test_case "Availability bit-identical" `Slow test_availability_bit_identical;
          Alcotest.test_case "Benders bit-identical" `Slow test_benders_bit_identical;
          Alcotest.test_case "chaos bit-identical" `Slow test_chaos_bit_identical;
          Alcotest.test_case "chaos sane on pool" `Slow test_chaos_under_pool_sane;
        ] );
    ]
