(* Property suite for the topology zoo: every generator yields a
   connected graph whose degree and span-length samples respect the
   declared Zoo bounds, names round-trip through by_name, and the seeded
   family is a pure function of its parameters. *)

open Prete_net

let zoo_instances () =
  [ Topology.abilene (); Topology.surfnet () ]
  @ List.map (fun (seed, sites) -> Topology.wan ~seed sites)
      [ (0, 8); (1, 12); (5, 20); (9, 33) ]

let fiber_degrees (t : Topology.t) =
  let deg = Array.make t.Topology.num_nodes 0 in
  Array.iter
    (fun (f : Topology.fiber) ->
      let a, b = f.Topology.endpoints in
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    t.Topology.fibers;
  deg

let connected (t : Topology.t) =
  let n = t.Topology.num_nodes in
  let adj = Array.make n [] in
  Array.iter
    (fun (f : Topology.fiber) ->
      let a, b = f.Topology.endpoints in
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    t.Topology.fibers;
  let seen = Array.make n false in
  let q = Queue.create () in
  Queue.add 0 q;
  seen.(0) <- true;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun u ->
        if not seen.(u) then begin
          seen.(u) <- true;
          Queue.add u q
        end)
      adj.(v)
  done;
  Array.for_all Fun.id seen

let test_connected () =
  List.iter
    (fun (t : Topology.t) ->
      Alcotest.(check bool) (t.Topology.name ^ " connected") true (connected t))
    (zoo_instances ())

let test_degree_bounds () =
  List.iter
    (fun (t : Topology.t) ->
      let deg = fiber_degrees t in
      Array.iteri
        (fun v d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s node %d degree %d <= max" t.Topology.name v d)
            true
            (d <= Topology.Zoo.max_degree))
        deg;
      let avg =
        2.0
        *. float_of_int (Topology.num_fibers t)
        /. float_of_int t.Topology.num_nodes
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s avg degree %.2f in band" t.Topology.name avg)
        true
        (avg >= Topology.Zoo.min_avg_degree && avg <= Topology.Zoo.max_avg_degree))
    (zoo_instances ())

let test_span_length_bounds () =
  List.iter
    (fun (t : Topology.t) ->
      Array.iter
        (fun (f : Topology.fiber) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s length %.1f in bounds" t.Topology.name
               f.Topology.fname f.Topology.length_km)
            true
            (f.Topology.length_km >= Topology.Zoo.min_span_km
            && f.Topology.length_km <= Topology.Zoo.max_span_km))
        t.Topology.fibers)
    (zoo_instances ())

let test_by_name_roundtrip () =
  (* Every registered name resolves to a topology carrying that exact
     name, case-insensitively. *)
  List.iter
    (fun name ->
      Alcotest.(check string) name name (Topology.by_name name).Topology.name;
      Alcotest.(check string)
        (name ^ " lowercase")
        name
        (Topology.by_name (String.lowercase_ascii name)).Topology.name)
    (Topology.names ());
  (* all () is exactly the registered names, in registry order. *)
  Alcotest.(check (list string))
    "all = names"
    (Topology.names ())
    (List.map (fun (t : Topology.t) -> t.Topology.name) (Topology.all ()));
  (* Parameterized families round-trip their printed name. *)
  List.iter
    (fun name ->
      Alcotest.(check string) name name (Topology.by_name name).Topology.name)
    [ "grid4"; "wan12"; "wan12x5" ]

let test_by_name_unknown_lists_names () =
  List.iter
    (fun bogus ->
      match Topology.by_name bogus with
      | _ -> Alcotest.failf "by_name %S should raise" bogus
      | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error for %S names the input" bogus)
          true
          (let has needle =
             let nl = String.length needle and ml = String.length msg in
             let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
             go 0
           in
           has bogus && has "Abilene" && has "SURFnet" && has "grid<K>"
           && has "wan<SITES>"))
    [ "nope"; "gridx"; "wan3x"; "abilene2" ]

(* Same seed ⇒ bit-identical topology (structural equality covers every
   field: names, fibers, links, adjacency). *)
let prop_wan_deterministic =
  QCheck.Test.make ~name:"wan: same (seed, sites) => bit-identical topology"
    ~count:30
    QCheck.(pair (int_range 0 50) (int_range 4 28))
    (fun (seed, sites) ->
      let a = Topology.wan ~seed sites and b = Topology.wan ~seed sites in
      a = b)

let prop_wan_well_formed =
  QCheck.Test.make ~name:"wan: connected, degrees and lengths in Zoo bounds"
    ~count:30
    QCheck.(pair (int_range 0 50) (int_range 4 28))
    (fun (seed, sites) ->
      let t = Topology.wan ~seed sites in
      let deg = fiber_degrees t in
      connected t
      && Array.for_all (fun d -> d >= 2 && d <= Topology.Zoo.max_degree) deg
      && Array.for_all
           (fun (f : Topology.fiber) ->
             f.Topology.length_km >= Topology.Zoo.min_span_km
             && f.Topology.length_km <= Topology.Zoo.max_span_km)
           t.Topology.fibers)

let prop_seed_changes_topology =
  QCheck.Test.make ~name:"wan: different seeds differ (sites >= 8)" ~count:20
    QCheck.(pair (int_range 0 40) (int_range 8 28))
    (fun (seed, sites) ->
      Topology.wan ~seed sites <> Topology.wan ~seed:(seed + 1) sites)

let test_zoo_fixed_instances_deterministic () =
  List.iter
    (fun (name, gen) ->
      let a : Topology.t = gen () and b : Topology.t = gen () in
      Alcotest.(check bool) (name ^ " bit-identical") true (a = b))
    [ ("abilene", Topology.abilene); ("surfnet", Topology.surfnet) ]

let test_surfnet_shape () =
  let t = Topology.surfnet () in
  Alcotest.(check int) "sites" 50 t.Topology.num_nodes;
  Alcotest.(check bool)
    "span count surfNet-class" true
    (let nf = Topology.num_fibers t in
     nf >= 55 && nf <= 75)

let () =
  Alcotest.run "prete_topo_zoo"
    [
      ( "zoo",
        [
          Alcotest.test_case "connected" `Quick test_connected;
          Alcotest.test_case "degree bounds" `Quick test_degree_bounds;
          Alcotest.test_case "span length bounds" `Quick test_span_length_bounds;
          Alcotest.test_case "by_name round-trip" `Quick test_by_name_roundtrip;
          Alcotest.test_case "by_name unknown lists names" `Quick
            test_by_name_unknown_lists_names;
          Alcotest.test_case "fixed instances deterministic" `Quick
            test_zoo_fixed_instances_deterministic;
          Alcotest.test_case "surfnet shape" `Quick test_surfnet_shape;
        ] );
      ( "zoo.props",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_wan_deterministic; prop_wan_well_formed; prop_seed_changes_topology ]
      );
    ]
