(* Tests for the prete_util substrate: RNG, special functions,
   distributions, statistics, hypothesis tests, matrices, time series. *)

open Prete_util

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xa = List.init 8 (fun _ -> Rng.int64 a) in
  let xb = List.init 8 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "different seeds differ" true (xa <> xb)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = List.init 8 (fun _ -> Rng.int64 a) in
  let xb = List.init 8 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_float_range () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_bounds () =
  let r = Rng.create 12 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_rng_int_uniformity () =
  let r = Rng.create 13 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Rng.int r 5 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (Float.abs (freq -. 0.2) < 0.01))
    counts

let test_rng_bernoulli_freq () =
  let r = Rng.create 14 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  check_close 0.01 "bernoulli(0.3)" 0.3 freq

let test_rng_gaussian_moments () =
  let r = Rng.create 15 in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian r) in
  check_close 0.03 "mean 0" 0.0 (Stats.mean xs);
  check_close 0.03 "std 1" 1.0 (Stats.std xs)

let test_rng_shuffle_permutation () =
  let r = Rng.create 16 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle r b;
  let sb = Array.copy b in
  Array.sort compare sb;
  Alcotest.(check (array int)) "multiset preserved" a sb

let test_rng_choice_member () =
  let r = Rng.create 17 in
  let a = [| 2; 4; 8; 16 |] in
  for _ = 1 to 100 do
    let x = Rng.choice r a in
    Alcotest.(check bool) "element of array" true (Array.exists (( = ) x) a)
  done

let test_rng_invalid_args () =
  let r = Rng.create 0 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "choice empty" (Invalid_argument "Rng.choice: empty array")
    (fun () -> ignore (Rng.choice r [||]))

(* Property tests for the split-stream contract prete_exec relies on:
   the k-th substream split from a seed is a pure function of (seed, k),
   sibling substreams are pairwise distinct, splitting does not disturb
   what the parent would have produced by further splits, and substream
   output stays statistically unbiased. *)

let nth_split seed k =
  let m = Rng.create seed in
  for _ = 1 to k do
    ignore (Rng.split m)
  done;
  Rng.split m

let draws n rng = List.init n (fun _ -> Rng.int64 rng)

let prop_split_function_of_seed_and_index =
  QCheck.Test.make ~name:"split stream is a function of (seed, index)" ~count:100
    QCheck.(pair small_int (int_bound 12))
    (fun (seed, k) -> draws 8 (nth_split seed k) = draws 8 (nth_split seed k))

let prop_split_siblings_distinct =
  QCheck.Test.make ~name:"sibling split streams pairwise distinct" ~count:60
    QCheck.small_int
    (fun seed ->
      let m = Rng.create seed in
      let streams = List.init 8 (fun _ -> draws 4 (Rng.split m)) in
      let rec pairwise = function
        | [] -> true
        | x :: rest -> List.for_all (( <> ) x) rest && pairwise rest
      in
      pairwise streams)

let prop_split_count_does_not_reorder =
  QCheck.Test.make ~name:"earlier splits unaffected by later ones" ~count:60
    QCheck.(pair small_int (int_bound 10))
    (fun (seed, extra) ->
      (* Stream k from a master that splits k+1 times equals stream k from
         one that splits k+1+extra times: adding components later never
         perturbs existing ones. *)
      let take n m = List.init n (fun _ -> Rng.split m) in
      let a = take 3 (Rng.create seed) in
      let b =
        let m = Rng.create seed in
        let first = take 3 m in
        ignore (take extra m);
        first
      in
      List.for_all2 (fun x y -> draws 4 x = draws 4 y) a b)

let prop_split_stream_unbiased =
  QCheck.Test.make ~name:"split streams remain unbiased" ~count:40
    QCheck.(pair small_int (int_bound 12))
    (fun (seed, k) ->
      let rng = nth_split seed k in
      let n = 2000 in
      let hits = ref 0 in
      for _ = 1 to n do
        if Rng.bool rng then incr hits
      done;
      Float.abs ((float_of_int !hits /. float_of_int n) -. 0.5) < 0.06)

let prop_split_independent_of_parent_tail =
  QCheck.Test.make ~name:"substream differs from parent remainder" ~count:60
    QCheck.small_int
    (fun seed ->
      let m = Rng.create seed in
      let sub = Rng.split m in
      draws 8 sub <> draws 8 m)

(* ------------------------------------------------------------------ *)
(* Special                                                              *)
(* ------------------------------------------------------------------ *)

let test_log_gamma_values () =
  check_close 1e-10 "Γ(1)=1" 0.0 (Special.log_gamma 1.0);
  check_close 1e-10 "Γ(5)=24" (log 24.0) (Special.log_gamma 5.0);
  check_close 1e-10 "Γ(0.5)=√π" (0.5 *. log Float.pi) (Special.log_gamma 0.5);
  check_close 1e-9 "Γ(10)=362880" (log 362880.0) (Special.log_gamma 10.0)

let test_gamma_recurrence () =
  (* Γ(x+1) = x·Γ(x) over a grid. *)
  List.iter
    (fun x ->
      check_close 1e-8
        (Printf.sprintf "recurrence at %g" x)
        (Special.log_gamma (x +. 1.0))
        (log x +. Special.log_gamma x))
    [ 0.3; 0.7; 1.5; 2.25; 6.0; 11.5 ]

let test_gamma_pq_complement () =
  List.iter
    (fun (a, x) ->
      check_close 1e-10
        (Printf.sprintf "P+Q=1 at a=%g x=%g" a x)
        1.0
        (Special.gamma_p a x +. Special.gamma_q a x))
    [ (0.5, 0.2); (1.0, 1.0); (2.5, 4.0); (10.0, 3.0); (10.0, 30.0) ]

let test_chi2_sf_known () =
  (* Classic critical values: P(χ²_1 > 3.841) ≈ 0.05, etc. *)
  check_close 1e-3 "df=1" 0.05 (Special.chi2_sf ~df:1 3.841);
  check_close 1e-3 "df=2" 0.05 (Special.chi2_sf ~df:2 5.991);
  check_close 1e-3 "df=5" 0.05 (Special.chi2_sf ~df:5 11.070);
  check_close 1e-4 "df=2 exact" (exp (-1.0)) (Special.chi2_sf ~df:2 2.0)

let test_chi2_sf_bounds () =
  Alcotest.(check bool) "sf(0)=1" true (Special.chi2_sf ~df:3 0.0 = 1.0);
  Alcotest.(check bool)
    "sf decreasing" true
    (Special.chi2_sf ~df:3 1.0 > Special.chi2_sf ~df:3 5.0)

let test_log_chi2_sf_consistency () =
  List.iter
    (fun x ->
      check_close 1e-8
        (Printf.sprintf "log sf at %g" x)
        (log (Special.chi2_sf ~df:4 x))
        (Special.log_chi2_sf ~df:4 x))
    [ 0.5; 2.0; 10.0; 25.0 ]

let test_log_chi2_sf_extreme () =
  (* Must stay finite where the plain p-value underflows (paper: p<1e-50). *)
  let lp = Special.log_chi2_sf ~df:1 300.0 in
  Alcotest.(check bool) "finite" true (Float.is_finite lp);
  Alcotest.(check bool) "deep tail" true (lp /. log 10.0 < -50.0)

let test_erf_known () =
  check_close 1e-6 "erf 0" 0.0 (Special.erf 0.0);
  check_close 1e-4 "erf 1" 0.8427007 (Special.erf 1.0);
  check_close 1e-4 "erf -1" (-0.8427007) (Special.erf (-1.0));
  check_close 1e-6 "erf big" 1.0 (Special.erf 6.0)

let prop_gamma_p_monotone =
  QCheck.Test.make ~name:"gamma_p monotone in x" ~count:200
    QCheck.(pair (float_range 0.1 20.0) (pair (float_range 0.0 30.0) (float_range 0.0 5.0)))
    (fun (a, (x, dx)) ->
      Special.gamma_p a (x +. dx) +. 1e-12 >= Special.gamma_p a x)

(* ------------------------------------------------------------------ *)
(* Dist                                                                 *)
(* ------------------------------------------------------------------ *)

let test_weibull_cdf_quantile () =
  let w = Dist.Weibull.create ~shape:0.8 ~scale:0.002 in
  List.iter
    (fun p ->
      check_close 1e-9
        (Printf.sprintf "cdf(quantile %g)" p)
        p
        (Dist.Weibull.cdf w (Dist.Weibull.quantile w p)))
    [ 0.01; 0.25; 0.5; 0.9; 0.999 ]

let test_weibull_sample_mean () =
  let w = Dist.Weibull.create ~shape:1.5 ~scale:2.0 in
  let r = Rng.create 21 in
  let xs = Array.init 100_000 (fun _ -> Dist.Weibull.sample w r) in
  check_close 0.02 "sample mean ≈ analytic" (Dist.Weibull.mean w) (Stats.mean xs)

let test_weibull_exponential_special_case () =
  (* shape = 1 is Exponential(1/scale). *)
  let w = Dist.Weibull.create ~shape:1.0 ~scale:2.0 in
  check_close 1e-12 "cdf matches exponential"
    (Dist.Exponential.cdf ~rate:0.5 3.0)
    (Dist.Weibull.cdf w 3.0)

let test_weibull_fit_recovers () =
  let w = Dist.Weibull.create ~shape:0.8 ~scale:0.002 in
  let r = Rng.create 22 in
  let xs = Array.init 20_000 (fun _ -> Dist.Weibull.sample w r) in
  let fitted = Dist.Weibull.fit_mle xs in
  check_close 0.05 "shape" 0.8 fitted.Dist.Weibull.shape;
  check_close 0.0005 "scale" 0.002 fitted.Dist.Weibull.scale

let test_weibull_pdf_integrates () =
  let w = Dist.Weibull.create ~shape:2.0 ~scale:1.0 in
  (* Trapezoid integral of the pdf approximates the cdf. *)
  let n = 2000 and hi = 3.0 in
  let h = hi /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let x0 = float_of_int i *. h and x1 = float_of_int (i + 1) *. h in
    acc := !acc +. (0.5 *. h *. (Dist.Weibull.pdf w x0 +. Dist.Weibull.pdf w x1))
  done;
  check_close 1e-4 "∫pdf = cdf" (Dist.Weibull.cdf w hi) !acc

let test_geometric_mean () =
  let r = Rng.create 23 in
  let p = 0.2 in
  let xs = Array.init 100_000 (fun _ -> float_of_int (Dist.Geometric.sample ~p r)) in
  check_close 0.1 "mean = (1-p)/p" ((1.0 -. p) /. p) (Stats.mean xs)

let test_geometric_pmf_sums () =
  let p = 0.3 in
  let total = ref 0.0 in
  for k = 0 to 200 do
    total := !total +. Dist.Geometric.pmf ~p k
  done;
  check_close 1e-9 "pmf sums to 1" 1.0 !total

let test_poisson_mean () =
  let r = Rng.create 24 in
  List.iter
    (fun mean ->
      let xs = Array.init 50_000 (fun _ -> float_of_int (Dist.Poisson.sample ~mean r)) in
      check_close (0.05 *. (mean +. 1.0)) (Printf.sprintf "poisson %g" mean) mean (Stats.mean xs))
    [ 0.5; 3.0; 50.0 ]

let test_categorical_freq () =
  let r = Rng.create 25 in
  let weights = [| 1.0; 3.0; 6.0 |] in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Dist.Categorical.sample ~weights r in
    counts.(i) <- counts.(i) + 1
  done;
  check_close 0.01 "w0" 0.1 (float_of_int counts.(0) /. float_of_int n);
  check_close 0.01 "w1" 0.3 (float_of_int counts.(1) /. float_of_int n);
  check_close 0.01 "w2" 0.6 (float_of_int counts.(2) /. float_of_int n)

let prop_weibull_cdf_monotone =
  QCheck.Test.make ~name:"weibull cdf monotone" ~count:200
    QCheck.(triple (float_range 0.2 5.0) (float_range 0.001 10.0) (pair (float_range 0.0 20.0) (float_range 0.0 5.0)))
    (fun (shape, scale, (x, dx)) ->
      let w = Dist.Weibull.create ~shape ~scale in
      Dist.Weibull.cdf w (x +. dx) +. 1e-12 >= Dist.Weibull.cdf w x)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean xs);
  check_close 1e-9 "variance" (32.0 /. 7.0) (Stats.variance xs);
  check_float "median" 4.5 (Stats.median xs)

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 4.0 (Stats.percentile xs 100.0);
  check_float "p50" 2.5 (Stats.percentile xs 50.0);
  check_float "p25" 1.75 (Stats.percentile xs 25.0)

let test_stats_percentile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.percentile xs 50.0);
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.0; 1.0; 2.0 |] xs

let test_stats_ecdf () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  let pts = Stats.ecdf xs in
  Alcotest.(check int) "len" 3 (Array.length pts);
  check_float "first val" 1.0 (fst pts.(0));
  check_close 1e-12 "last prob" 1.0 (snd pts.(2));
  check_close 1e-12 "cdf_at" (2.0 /. 3.0) (Stats.cdf_at xs 2.5)

let test_stats_histogram () =
  let xs = [| 0.0; 0.1; 0.9; 1.0; 0.5 |] in
  let h = Stats.histogram ~bins:2 xs in
  let total = Array.fold_left (fun a (_, _, c) -> a + c) 0 h in
  Alcotest.(check int) "counts sum" 5 total;
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "low bin" 2 c0;
  Alcotest.(check int) "high bin" 3 c1

let test_stats_pearson () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  check_close 1e-12 "perfect corr" 1.0 (Stats.pearson xs ys);
  let ys_neg = Array.map (fun x -> -.x) xs in
  check_close 1e-12 "anti corr" (-1.0) (Stats.pearson xs ys_neg)

let test_stats_linear_fit () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) -. 1.0) xs in
  let a, b = Stats.linear_fit xs ys in
  check_close 1e-12 "slope" 3.0 a;
  check_close 1e-12 "intercept" (-1.0) b

let test_stats_normalize () =
  let xs = [| 2.0; 4.0; 6.0 |] in
  Alcotest.(check (array (float 1e-12))) "scaled" [| 0.0; 0.5; 1.0 |] (Stats.normalize xs);
  Alcotest.(check (array (float 1e-12))) "constant -> zeros" [| 0.0; 0.0 |]
    (Stats.normalize [| 5.0; 5.0 |])

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile within min..max" ~count:200
    QCheck.(pair (array_of_size (Gen.int_range 1 40) (float_range (-100.) 100.)) (float_range 0.0 100.0))
    (fun (xs, p) ->
      let v = Stats.percentile xs p in
      let lo, hi = Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance non-negative" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 40) (float_range (-50.) 50.))
    (fun xs -> Stats.variance xs >= -1e-9)

(* ------------------------------------------------------------------ *)
(* Hypothesis                                                           *)
(* ------------------------------------------------------------------ *)

let test_chi2_contingency_known () =
  (* Textbook 2x2 example: chi2 = N (ad-bc)^2 / ((a+b)(c+d)(a+c)(b+d)). *)
  let table = [| [| 20.0; 30.0 |]; [| 30.0; 20.0 |] |] in
  let r = Hypothesis.chi2_contingency table in
  check_close 1e-9 "statistic" 4.0 r.Hypothesis.statistic;
  Alcotest.(check int) "df" 1 r.Hypothesis.df;
  check_close 1e-3 "p" 0.0455 r.Hypothesis.p_value

let test_chi2_contingency_independent () =
  (* Perfectly proportional table: statistic 0, p-value 1. *)
  let table = [| [| 10.0; 20.0 |]; [| 30.0; 60.0 |] |] in
  let r = Hypothesis.chi2_contingency table in
  check_close 1e-9 "statistic 0" 0.0 r.Hypothesis.statistic;
  check_close 1e-9 "p = 1" 1.0 r.Hypothesis.p_value;
  Alcotest.(check bool) "not rejected" false (Hypothesis.reject r)

let test_chi2_paper_table6 () =
  (* The paper's Table 6 normalized counts must reject decisively. *)
  let table = [| [| 1.0; 2.6 |]; [| 1.5; 6516.7 |] |] in
  let r = Hypothesis.chi2_contingency table in
  Alcotest.(check bool) "rejected" true (Hypothesis.reject r);
  Alcotest.(check bool) "extreme p-value" true (r.Hypothesis.log10_p < -50.0)

let test_chi2_paper_table7 () =
  (* Table 7: expected counts under independence -> should NOT reject. *)
  let table = [| [| 1.2; 3151.8 |]; [| 2144.8; 5655630.2 |] |] in
  let r = Hypothesis.chi2_contingency table in
  Alcotest.(check bool) "not rejected" false (Hypothesis.reject r)

let test_chi2_binned_correlated () =
  let rng = Rng.create 31 in
  let n = 5000 in
  let values = Array.init n (fun _ -> Rng.float rng) in
  let outcomes = Array.map (fun v -> Rng.bernoulli rng (0.1 +. (0.8 *. v))) values in
  let r = Hypothesis.chi2_binned ~bins:10 ~values ~outcomes in
  Alcotest.(check bool) "correlated rejected" true (Hypothesis.reject r)

let test_chi2_binned_uncorrelated () =
  let rng = Rng.create 32 in
  let n = 5000 in
  let values = Array.init n (fun _ -> Rng.float rng) in
  let outcomes = Array.init n (fun _ -> Rng.bernoulli rng 0.4) in
  let r = Hypothesis.chi2_binned ~bins:10 ~values ~outcomes in
  Alcotest.(check bool) "independent not rejected at 1e-4" false
    (Hypothesis.reject ~alpha:1e-4 r)

let test_chi2_invalid () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Hypothesis.chi2_contingency: ragged table") (fun () ->
      ignore (Hypothesis.chi2_contingency [| [| 1.0; 2.0 |]; [| 1.0 |] |]))

(* ------------------------------------------------------------------ *)
(* Matrix                                                               *)
(* ------------------------------------------------------------------ *)

let test_matrix_identity () =
  let rng = Rng.create 41 in
  let a = Matrix.random rng 4 4 1.0 in
  Alcotest.(check bool) "A·I = A" true (Matrix.equal a (Matrix.matmul a (Matrix.identity 4)));
  Alcotest.(check bool) "I·A = A" true (Matrix.equal a (Matrix.matmul (Matrix.identity 4) a))

let test_matrix_matmul_known () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.matmul a b in
  Alcotest.(check (array (array (float 1e-12)))) "product"
    [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]
    (Matrix.to_arrays c)

let test_matrix_transpose_involution () =
  let rng = Rng.create 42 in
  let a = Matrix.random rng 3 5 2.0 in
  Alcotest.(check bool) "(Aᵀ)ᵀ = A" true (Matrix.equal a (Matrix.transpose (Matrix.transpose a)))

let test_matrix_gemv () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  Alcotest.(check (array (float 1e-12))) "gemv" [| 14.0; 32.0 |]
    (Matrix.gemv a [| 1.0; 2.0; 3.0 |])

let test_matrix_add_sub () =
  let rng = Rng.create 43 in
  let a = Matrix.random rng 3 3 1.0 and b = Matrix.random rng 3 3 1.0 in
  Alcotest.(check bool) "a+b-b = a" true
    (Matrix.equal ~eps:1e-12 a (Matrix.sub (Matrix.add a b) b))

let test_matrix_dim_checks () =
  let a = Matrix.create 2 3 and b = Matrix.create 2 3 in
  Alcotest.check_raises "matmul mismatch"
    (Invalid_argument "Matrix.matmul: dimension mismatch") (fun () ->
      ignore (Matrix.matmul a b))

let test_vec_softmax () =
  let p = Matrix.Vec.softmax [| 1.0; 2.0; 3.0 |] in
  check_close 1e-12 "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 p);
  Alcotest.(check int) "argmax last" 2 (Matrix.Vec.argmax p);
  (* Shift invariance. *)
  let q = Matrix.Vec.softmax [| 1001.0; 1002.0; 1003.0 |] in
  Array.iteri (fun i x -> check_close 1e-9 "shift invariant" x q.(i)) p

let prop_matmul_transpose =
  QCheck.Test.make ~name:"(AB)ᵀ = BᵀAᵀ" ~count:50
    QCheck.(triple small_nat small_nat small_nat)
    (fun (m, n, k) ->
      let m = 1 + (m mod 6) and n = 1 + (n mod 6) and k = 1 + (k mod 6) in
      let rng = Rng.create ((m * 100) + (n * 10) + k) in
      let a = Matrix.random rng m n 1.0 and b = Matrix.random rng n k 1.0 in
      Matrix.equal ~eps:1e-9
        (Matrix.transpose (Matrix.matmul a b))
        (Matrix.matmul (Matrix.transpose b) (Matrix.transpose a)))

(* ------------------------------------------------------------------ *)
(* Timeseries                                                           *)
(* ------------------------------------------------------------------ *)

let test_interpolate_inner_gap () =
  let xs = [| Some 1.0; None; None; Some 4.0 |] in
  Alcotest.(check (array (float 1e-12))) "linear"
    [| 1.0; 2.0; 3.0; 4.0 |]
    (Timeseries.interpolate_missing xs)

let test_interpolate_edges () =
  let xs = [| None; Some 2.0; None; Some 4.0; None |] in
  Alcotest.(check (array (float 1e-12))) "edges clamp"
    [| 2.0; 2.0; 3.0; 4.0; 4.0 |]
    (Timeseries.interpolate_missing xs)

let test_interpolate_all_missing () =
  Alcotest.check_raises "no samples"
    (Invalid_argument "Timeseries.interpolate_missing: no samples present")
    (fun () -> ignore (Timeseries.interpolate_missing [| None; None |]))

let test_degree () =
  check_float "max excursion" 5.0
    (Timeseries.degree ~baseline:1.0 [| 2.0; 6.0; 3.0 |]);
  check_float "never below baseline -> 0" 0.0
    (Timeseries.degree ~baseline:10.0 [| 2.0; 6.0 |])

let test_gradient () =
  check_float "flat" 0.0 (Timeseries.mean_abs_gradient [| 3.0; 3.0; 3.0 |]);
  check_float "steps" 2.0 (Timeseries.mean_abs_gradient [| 0.0; 2.0; 0.0 |]);
  check_float "short" 0.0 (Timeseries.mean_abs_gradient [| 1.0 |])

let test_fluctuation () =
  Alcotest.(check int) "filters small changes" 2
    (Timeseries.fluctuation_count ~threshold:0.01 [| 0.0; 0.005; 0.5; 0.505; 1.0 |]);
  Alcotest.(check int) "default threshold" 1
    (Timeseries.fluctuation_count [| 0.0; 0.02 |])

let test_downsample () =
  let xs = Array.init 10 float_of_int in
  let s = Timeseries.downsample ~period:3 xs in
  Alcotest.(check int) "count" 4 (Array.length s);
  check_float "first" 0.0 s.(0).Timeseries.v;
  check_float "second" 3.0 s.(1).Timeseries.v;
  check_float "last" 9.0 s.(3).Timeseries.v

let test_max_windows () =
  let xs = [| 1.0; 9.0; 2.0; 3.0; 0.0 |] in
  Alcotest.(check (array (float 1e-12))) "maxes" [| 9.0; 3.0; 0.0 |]
    (Timeseries.max_over_windows ~period:2 xs)

let test_moving_average_constant () =
  let xs = Array.make 10 4.0 in
  Alcotest.(check (array (float 1e-12))) "constant preserved" xs
    (Timeseries.moving_average ~window:3 xs)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "prete_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformity;
          Alcotest.test_case "bernoulli freq" `Quick test_rng_bernoulli_freq;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "choice member" `Quick test_rng_choice_member;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid_args;
        ] );
      qsuite "rng.split.props"
        [
          prop_split_function_of_seed_and_index;
          prop_split_siblings_distinct;
          prop_split_count_does_not_reorder;
          prop_split_stream_unbiased;
          prop_split_independent_of_parent_tail;
        ];
      ( "special",
        [
          Alcotest.test_case "log_gamma values" `Quick test_log_gamma_values;
          Alcotest.test_case "gamma recurrence" `Quick test_gamma_recurrence;
          Alcotest.test_case "P+Q=1" `Quick test_gamma_pq_complement;
          Alcotest.test_case "chi2 critical values" `Quick test_chi2_sf_known;
          Alcotest.test_case "chi2 bounds" `Quick test_chi2_sf_bounds;
          Alcotest.test_case "log sf consistency" `Quick test_log_chi2_sf_consistency;
          Alcotest.test_case "log sf deep tail" `Quick test_log_chi2_sf_extreme;
          Alcotest.test_case "erf" `Quick test_erf_known;
        ] );
      qsuite "special.props" [ prop_gamma_p_monotone ];
      ( "dist",
        [
          Alcotest.test_case "weibull cdf/quantile" `Quick test_weibull_cdf_quantile;
          Alcotest.test_case "weibull sample mean" `Slow test_weibull_sample_mean;
          Alcotest.test_case "weibull shape=1 is exp" `Quick test_weibull_exponential_special_case;
          Alcotest.test_case "weibull MLE fit" `Slow test_weibull_fit_recovers;
          Alcotest.test_case "weibull pdf integrates" `Quick test_weibull_pdf_integrates;
          Alcotest.test_case "geometric mean" `Slow test_geometric_mean;
          Alcotest.test_case "geometric pmf sums" `Quick test_geometric_pmf_sums;
          Alcotest.test_case "poisson mean" `Slow test_poisson_mean;
          Alcotest.test_case "categorical freq" `Slow test_categorical_freq;
        ] );
      qsuite "dist.props" [ prop_weibull_cdf_monotone ];
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile no mutation" `Quick test_stats_percentile_does_not_mutate;
          Alcotest.test_case "ecdf" `Quick test_stats_ecdf;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "pearson" `Quick test_stats_pearson;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "normalize" `Quick test_stats_normalize;
        ] );
      qsuite "stats.props" [ prop_percentile_bounded; prop_variance_nonneg ];
      ( "hypothesis",
        [
          Alcotest.test_case "2x2 known statistic" `Quick test_chi2_contingency_known;
          Alcotest.test_case "independent table" `Quick test_chi2_contingency_independent;
          Alcotest.test_case "paper Table 6 rejects" `Quick test_chi2_paper_table6;
          Alcotest.test_case "paper Table 7 holds" `Quick test_chi2_paper_table7;
          Alcotest.test_case "binned correlated" `Quick test_chi2_binned_correlated;
          Alcotest.test_case "binned independent" `Quick test_chi2_binned_uncorrelated;
          Alcotest.test_case "invalid input" `Quick test_chi2_invalid;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity" `Quick test_matrix_identity;
          Alcotest.test_case "matmul known" `Quick test_matrix_matmul_known;
          Alcotest.test_case "transpose involution" `Quick test_matrix_transpose_involution;
          Alcotest.test_case "gemv" `Quick test_matrix_gemv;
          Alcotest.test_case "add/sub" `Quick test_matrix_add_sub;
          Alcotest.test_case "dimension checks" `Quick test_matrix_dim_checks;
          Alcotest.test_case "softmax" `Quick test_vec_softmax;
        ] );
      qsuite "matrix.props" [ prop_matmul_transpose ];
      ( "timeseries",
        [
          Alcotest.test_case "interpolate inner gap" `Quick test_interpolate_inner_gap;
          Alcotest.test_case "interpolate edges" `Quick test_interpolate_edges;
          Alcotest.test_case "interpolate all missing" `Quick test_interpolate_all_missing;
          Alcotest.test_case "degree" `Quick test_degree;
          Alcotest.test_case "gradient" `Quick test_gradient;
          Alcotest.test_case "fluctuation" `Quick test_fluctuation;
          Alcotest.test_case "downsample" `Quick test_downsample;
          Alcotest.test_case "max windows" `Quick test_max_windows;
          Alcotest.test_case "moving average" `Quick test_moving_average_constant;
        ] );
    ]
