(* Isolated differential tests for the sparse LU kernel (Sparse.Lu):
   factorize / ftran / btran / Forrest–Tomlin update are checked against
   dense Gaussian elimination on seeded random basis matrices.  The
   simplex-level suites (test_solvers_diff) then pin the engine built on
   top; this file localizes kernel regressions. *)

open Prete_lp

let rand_state seed = Random.State.make [| 0x15eed; seed |]

(* Dense solve B x = rhs by Gaussian elimination with partial pivoting;
   returns None when B is singular. *)
let dense_solve b rhs =
  let m = Array.length rhs in
  let a = Array.init m (fun i -> Array.copy b.(i)) in
  let x = Array.copy rhs in
  let piv_of = Array.make m 0 in
  let used = Array.make m false in
  let ok = ref true in
  for c = 0 to m - 1 do
    if !ok then begin
      let p = ref (-1) and best = ref 1e-9 in
      for i = 0 to m - 1 do
        if (not used.(i)) && Float.abs a.(i).(c) > !best then begin
          best := Float.abs a.(i).(c);
          p := i
        end
      done;
      if !p = -1 then ok := false
      else begin
        used.(!p) <- true;
        piv_of.(c) <- !p;
        let inv = 1.0 /. a.(!p).(c) in
        for i = 0 to m - 1 do
          if i <> !p && a.(i).(c) <> 0.0 then begin
            let f = a.(i).(c) *. inv in
            for j = 0 to m - 1 do
              a.(i).(j) <- a.(i).(j) -. (f *. a.(!p).(j))
            done;
            x.(i) <- x.(i) -. (f *. x.(!p))
          end
        done
      end
    end
  done;
  if not !ok then None
  else Some (Array.init m (fun c -> x.(piv_of.(c)) /. a.(piv_of.(c)).(c)))

(* A random sparse m×n matrix whose first m columns are guaranteed
   nonsingular (identity + noise); extra columns are candidate entering
   columns for update tests. *)
let random_mat st ~m ~n =
  let trips = ref [] in
  for i = 0 to m - 1 do
    trips := (i, i, 1.0 +. Random.State.float st 2.0) :: !trips
  done;
  for j = 0 to n - 1 do
    let cnt = 1 + Random.State.int st 4 in
    for _ = 1 to cnt do
      let i = Random.State.int st m in
      let v = Random.State.float st 4.0 -. 2.0 in
      if v <> 0.0 then trips := (i, j, v) :: !trips
    done
  done;
  Sparse.of_triplets ~rows:m ~cols:n !trips

let col_dense a j m =
  let x = Array.make m 0.0 in
  Sparse.scatter_col a j x;
  x

let check_vec ~tol name expect got =
  Array.iteri
    (fun i e ->
      if Float.abs (e -. got.(i)) > tol then
        Alcotest.failf "%s: component %d: expected %.12g got %.12g" name i e got.(i))
    expect

(* ftran/btran agree with a dense solve of the factorized basis. *)
let test_factorize_solves () =
  for seed = 1 to 20 do
    let st = rand_state seed in
    let m = 3 + Random.State.int st 20 in
    let a = random_mat st ~m ~n:(2 * m) in
    let targets = Array.init m (fun i -> i) in
    let crash = Array.init m (fun i -> i) in
    let basis_out = Array.make m (-1) in
    let f, dropped = Sparse.Lu.factorize a ~targets ~crash ~basis_out in
    Alcotest.(check (list int)) "nothing dropped" [] dropped;
    (* Dense basis matrix in basis_out order: column of row r is whatever
       ends up basic there; B's column order is irrelevant to solves as
       long as we compare consistently.  ftran solves B z = rhs where B's
       columns are the basic set in *some* pairing; the result is indexed
       by row, with z.(r) the multiplier of the column basic in row r. *)
    let bd =
      Array.init m (fun i ->
          Array.init m (fun r ->
              let c = col_dense a basis_out.(r) m in
              c.(i)))
    in
    let rhs = Array.init m (fun _ -> Random.State.float st 10.0 -. 5.0) in
    (match dense_solve bd rhs with
    | None -> Alcotest.fail "dense oracle found basis singular"
    | Some z ->
      let x = Array.copy rhs in
      Sparse.Lu.ftran f x;
      check_vec ~tol:1e-8 "ftran" z x);
    (* btran: y = B⁻ᵀ c  <=>  Bᵀ y = c  <=>  y solves the transposed
       dense system. *)
    let c = Array.init m (fun _ -> Random.State.float st 10.0 -. 5.0) in
    let bdt = Array.init m (fun i -> Array.init m (fun j -> bd.(j).(i))) in
    (match dense_solve bdt c with
    | None -> Alcotest.fail "dense oracle found basis^T singular"
    | Some y ->
      let v = Array.copy c in
      Sparse.Lu.btran f v;
      check_vec ~tol:1e-8 "btran" y v)
  done

(* Forrest–Tomlin updates keep ftran/btran exact vs a dense oracle of the
   updated basis. *)
let test_updates () =
  for seed = 1 to 20 do
    let st = rand_state (1000 + seed) in
    let m = 4 + Random.State.int st 16 in
    let n = 3 * m in
    let a = random_mat st ~m ~n in
    let targets = Array.init m (fun i -> i) in
    let crash = Array.init m (fun i -> i) in
    let basis = Array.make m (-1) in
    let f, dropped = Sparse.Lu.factorize a ~targets ~crash ~basis_out:basis in
    Alcotest.(check (list int)) "nothing dropped" [] dropped;
    let fref = ref f in
    let steps = 8 + Random.State.int st 8 in
    for _ = 1 to steps do
      let f = !fref in
      (* Pick a random entering column not currently basic and a random
         leaving row, but only commit when the update is stable and the
         new basis nonsingular. *)
      let q = m + Random.State.int st (n - m) in
      let in_basis = Array.exists (fun c -> c = q) basis in
      if not in_basis then begin
        let rl = Random.State.int st m in
        let w = col_dense a q m in
        Sparse.Lu.ftran f w;
        (* The FT update needs a usable pivot in the leaving row. *)
        if Float.abs w.(rl) > 1e-6 then
          if Sparse.Lu.update f ~leaving_row:rl then begin
            basis.(rl) <- q;
            (* Verify against the dense oracle of the updated basis. *)
            let bd =
              Array.init m (fun i ->
                  Array.init m (fun r ->
                      let c = col_dense a basis.(r) m in
                      c.(i)))
            in
            let rhs = Array.init m (fun _ -> Random.State.float st 4.0 -. 2.0) in
            match dense_solve bd rhs with
            | None -> Alcotest.fail "updated basis singular in oracle"
            | Some z ->
              let x = Array.copy rhs in
              Sparse.Lu.ftran f x;
              check_vec ~tol:1e-7 "ftran after update" z x;
              let c = Array.init m (fun _ -> Random.State.float st 4.0 -. 2.0) in
              let bdt = Array.init m (fun i -> Array.init m (fun j -> bd.(j).(i))) in
              (match dense_solve bdt c with
              | None -> Alcotest.fail "updated basis^T singular in oracle"
              | Some y ->
                let v = Array.copy c in
                Sparse.Lu.btran f v;
                check_vec ~tol:1e-7 "btran after update" y v)
          end
          else begin
            (* Refused update: refactorize from the intended new basis,
               mirroring what the simplex engine does. *)
            basis.(rl) <- q;
            let basis_out = Array.make m (-1) in
            let f', dropped =
              Sparse.Lu.factorize a ~targets:basis ~crash ~basis_out
            in
            Alcotest.(check (list int)) "refactor clean" [] dropped;
            Array.blit basis_out 0 basis 0 m;
            fref := f'
          end
      end
    done
  done

(* Rank-deficient target sets: dropped columns are reported and the
   uncovered rows fall back to their crash columns. *)
let test_singular_drop () =
  let m = 6 in
  (* Columns 0..5 identity crash; columns 6 and 7 are the same vector
     (duplicate => one of them cannot be pivoted). *)
  let trips = ref [] in
  for i = 0 to m - 1 do
    trips := (i, i, 1.0) :: !trips
  done;
  List.iter (fun c -> trips := (0, c, 1.0) :: (1, c, 2.0) :: !trips) [ 6; 7 ];
  let a = Sparse.of_triplets ~rows:m ~cols:8 !trips in
  let targets = [| 6; 7; 2; 3; 4; 5 |] in
  let crash = Array.init m (fun i -> i) in
  let basis_out = Array.make m (-1) in
  let _f, dropped = Sparse.Lu.factorize a ~targets ~crash ~basis_out in
  Alcotest.(check int) "one column dropped" 1 (List.length dropped);
  Array.iteri
    (fun r c ->
      if not (List.mem c dropped) then
        Alcotest.(check bool) (Printf.sprintf "row %d covered" r) true (c >= 0))
    basis_out

let () =
  Alcotest.run "lu"
    [
      ( "kernel",
        [
          Alcotest.test_case "factorize ftran/btran vs dense" `Quick
            test_factorize_solves;
          Alcotest.test_case "forrest-tomlin updates vs dense" `Quick test_updates;
          Alcotest.test_case "singular targets drop to crash" `Quick
            test_singular_drop;
        ] );
    ]
