(* Decision-focused training: the TE-loss oracle, the perturbation
   gradient estimator, the output-space trainer + distillation, and the
   runtime's online retrain/hot-swap loop. *)

open Prete_net
open Prete_optics
open Prete
open Prete_ml
module Rng = Prete_util.Rng
module Pool = Prete_exec.Pool

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let env = lazy (Availability.make_env (Topology.by_name "grid3"))

let corpus =
  lazy
    (let env = Lazy.force env in
     let topo = env.Availability.ts.Tunnels.topo in
     Corpus.of_dataset (Dataset.generate ~model:env.Availability.model topo))

let mlp =
  lazy
    (Mlp.train
       ~config:{ Mlp.default_config with Mlp.epochs = 3 }
       (Lazy.force corpus).Corpus.train)

let some_features =
  {
    Hazard.fiber = 0;
    region = 0;
    vendor = 0;
    length_km = 120.0;
    time_of_day = 2.0;
    degree = 6.0;
    gradient = 0.2;
    fluctuation = 8;
    duration_s = 60.0;
  }

(* A synthetic quadratic surrogate over [0,1]^n with analytic gradient
   2 a_i (p_i - b_i): the estimator contract says FD is exact on these
   up to rounding. *)
let quadratic ~a ~b p =
  let s = ref 0.0 in
  Array.iteri (fun i pi -> s := !s +. (a.(i) *. (pi -. b.(i)) ** 2.0)) p;
  !s

let grad_quadratic ~a ~b p = Array.mapi (fun i pi -> 2.0 *. a.(i) *. (pi -. b.(i))) p

let random_case seed =
  let rng = Rng.create (seed + 1) in
  let n = 1 + Rng.int rng 8 in
  let a = Array.init n (fun _ -> Rng.uniform rng 0.5 3.0) in
  let b = Array.init n (fun _ -> Rng.float rng) in
  (* Interior point: both probes of the default c = 0.05 stay two-sided. *)
  let p = Array.init n (fun _ -> Rng.uniform rng 0.1 0.9) in
  (a, b, p)

(* ------------------------------------------------------------------ *)
(* Estimator                                                           *)
(* ------------------------------------------------------------------ *)

let prop_fd_quadratic =
  QCheck.Test.make ~name:"FD on quadratics: sign agreement, <=10% magnitude"
    ~count:80
    QCheck.(small_int)
    (fun seed ->
      let a, b, p = random_case seed in
      let loss = quadratic ~a ~b in
      let g =
        Dfl.Estimator.estimate ~c:0.02 ~seed ~method_:Dfl.Estimator.Fd ~loss p
      in
      let exact = grad_quadratic ~a ~b p in
      Array.for_all2
        (fun gi ei ->
          if Float.abs ei < 1e-6 then Float.abs gi < 1e-3
          else
            (* Central differences are exact on quadratics, so 10% is a
               loose ceiling; sign must match outright. *)
            gi *. ei > 0.0 && Float.abs (gi -. ei) <= 0.1 *. Float.abs ei)
        g exact)

let test_fd_one_sided_clamp () =
  (* A probe at the boundary goes one-sided but still divides by the
     realized width: the estimate stays finite and sign-correct. *)
  let a = [| 1.0 |] and b = [| 0.5 |] in
  let loss = quadratic ~a ~b in
  let g =
    Dfl.Estimator.estimate ~c:0.1 ~seed:1 ~method_:Dfl.Estimator.Fd ~loss
      [| 0.0 |]
  in
  Alcotest.(check bool) "finite" true (Float.is_finite g.(0));
  Alcotest.(check bool) "descends toward 0.5" true (g.(0) < 0.0)

let test_spsa_1d_exact () =
  (* In one dimension SPSA collapses to a central difference: exact on a
     quadratic regardless of the Rademacher draw. *)
  let a = [| 2.0 |] and b = [| 0.3 |] in
  let loss = quadratic ~a ~b in
  let p = [| 0.6 |] in
  let g =
    Dfl.Estimator.estimate ~c:0.05 ~seed:42
      ~method_:(Dfl.Estimator.Spsa { pairs = 1 })
      ~loss p
  in
  let exact = (grad_quadratic ~a ~b p).(0) in
  Alcotest.(check (float 1e-9)) "exact in 1d" exact g.(0)

let test_spsa_sign_agreement () =
  (* Fixed-seed multi-dimensional case with enough pairs to average the
     cross-coordinate noise below the smallest gradient component. *)
  let a = [| 1.0; 2.0; 1.5 |] and b = [| 0.2; 0.9; 0.5 |] in
  let loss = quadratic ~a ~b in
  let p = [| 0.7; 0.3; 0.8 |] in
  let g =
    Dfl.Estimator.estimate ~c:0.02 ~seed:7
      ~method_:(Dfl.Estimator.Spsa { pairs = 400 })
      ~loss p
  in
  let exact = grad_quadratic ~a ~b p in
  Array.iteri
    (fun i gi ->
      Alcotest.(check bool)
        (Printf.sprintf "sign at %d" i)
        true
        (gi *. exact.(i) > 0.0))
    g

let test_estimator_deterministic () =
  let a, b, p = random_case 99 in
  let loss = quadratic ~a ~b in
  let est seed =
    Dfl.Estimator.estimate ~seed ~method_:(Dfl.Estimator.Spsa { pairs = 3 })
      ~loss p
  in
  Alcotest.(check bool) "same seed, same estimate" true (est 5 = est 5);
  if Array.length p > 1 then
    Alcotest.(check bool) "different seed, different estimate" true (est 5 <> est 6)

let test_estimator_validation () =
  let loss p = p.(0) in
  Alcotest.check_raises "empty vector"
    (Invalid_argument "Dfl.Estimator.estimate: empty vector") (fun () ->
      ignore (Dfl.Estimator.estimate ~seed:1 ~method_:Dfl.Estimator.Fd ~loss [||]));
  Alcotest.check_raises "bad c"
    (Invalid_argument "Dfl.Estimator.estimate: c must be positive") (fun () ->
      ignore
        (Dfl.Estimator.estimate ~c:0.0 ~seed:1 ~method_:Dfl.Estimator.Fd ~loss
           [| 0.5 |]));
  Alcotest.check_raises "bad pairs"
    (Invalid_argument "Dfl.Estimator.estimate: pairs must be positive")
    (fun () ->
      ignore
        (Dfl.Estimator.estimate ~seed:1
           ~method_:(Dfl.Estimator.Spsa { pairs = 0 })
           ~loss [| 0.5 |]))

(* ------------------------------------------------------------------ *)
(* Trainer.tune on synthetic losses (no oracle)                        *)
(* ------------------------------------------------------------------ *)

let tune_cfg =
  { Dfl.Trainer.default_config with Dfl.Trainer.steps = 6; pairs = 2; seed = 11 }

let test_tune_improves_quadratic () =
  let a = [| 1.0; 1.0; 1.0; 1.0 |] and b = [| 0.2; 0.8; 0.5; 0.35 |] in
  let loss = quadratic ~a ~b in
  let q0 = [| 0.6; 0.4; 0.3; 0.7 |] in
  let q, best, calls, trace = Dfl.Trainer.tune tune_cfg ~loss q0 in
  Alcotest.(check bool) "improved" true (best < loss q0);
  Alcotest.(check bool) "best matches returned point" true
    (Float.abs (best -. loss q) < 1e-12);
  Alcotest.(check bool) "calls counted" true (calls > 0);
  (* The trace is (step, loss) at init plus each accepted step, strictly
     decreasing. *)
  let rec decreasing = function
    | (_, l1) :: ((_, l2) :: _ as rest) -> l1 > l2 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "trace decreasing" true (decreasing trace);
  Alcotest.(check bool) "trace starts at step 0" true
    (match trace with (0, _) :: _ -> true | _ -> false)

let test_tune_never_regresses () =
  (* A hostile loss surface: tune must return something no worse than
     the (clamped) start. *)
  let rng = Rng.create 4 in
  let noise = Array.init 64 (fun _ -> Rng.float rng) in
  let loss p =
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun i pi -> noise.(i mod 64) *. Float.abs (pi -. 0.5)) p)
  in
  let q0 = [| 0.1; 0.9; 0.5 |] in
  let _, best, _, _ = Dfl.Trainer.tune tune_cfg ~loss q0 in
  Alcotest.(check bool) "no regression" true (best <= loss (Array.map (fun x -> x) q0) +. 1e-9)

let test_tune_deterministic () =
  let a = [| 1.5; 0.7 |] and b = [| 0.25; 0.75 |] in
  let loss = quadratic ~a ~b in
  let q0 = [| 0.5; 0.5 |] in
  let r1 = Dfl.Trainer.tune tune_cfg ~loss q0 in
  let r2 = Dfl.Trainer.tune tune_cfg ~loss q0 in
  Alcotest.(check bool) "bit-identical" true (r1 = r2)

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let test_oracle_shape_and_calls () =
  let env = Lazy.force env in
  Pool.with_pool ~domains:1 (fun pool ->
      let o = Dfl.Oracle.create ~pool ~scale:2.0 env in
      let nf =
        Topology.num_fibers env.Availability.ts.Tunnels.topo
      in
      Alcotest.(check int) "dim = fibers" nf (Dfl.Oracle.dim o);
      Alcotest.(check int) "events per fiber" nf
        (Array.length (Dfl.Oracle.events o));
      Array.iteri
        (fun i f -> Alcotest.(check int) "event fiber id" i f.Hazard.fiber)
        (Dfl.Oracle.events o);
      Alcotest.(check int) "no calls yet" 0 (Dfl.Oracle.calls o);
      let probs = Array.make nf 0.4 in
      let av = Dfl.Oracle.availability o probs in
      Alcotest.(check bool) "availability in [0,1]" true (av >= 0.0 && av <= 1.0);
      let l = Dfl.Oracle.loss o probs in
      Alcotest.(check (float 1e-12)) "loss = 1 - availability" (1.0 -. av) l;
      Alcotest.(check int) "calls counted" 2 (Dfl.Oracle.calls o);
      Alcotest.check_raises "wrong dimension"
        (Invalid_argument "Dfl.Oracle: probability vector has wrong dimension")
        (fun () -> ignore (Dfl.Oracle.availability o [| 0.5 |])))

let test_oracle_pure_in_probs () =
  (* The anchored warm start makes the oracle a pure function of the
     probability vector: re-evaluating the same vector — on the same
     oracle or a fresh one — reproduces the value bit-for-bit, first
     call included. *)
  let env = Lazy.force env in
  Pool.with_pool ~domains:1 (fun pool ->
      let nf = Topology.num_fibers env.Availability.ts.Tunnels.topo in
      let probs = Array.init nf (fun i -> 0.1 +. (0.05 *. float_of_int (i mod 5))) in
      let o1 = Dfl.Oracle.create ~pool ~scale:2.0 env in
      let first = Dfl.Oracle.availability o1 probs in
      let again = Dfl.Oracle.availability o1 probs in
      Alcotest.(check (float 0.0)) "re-evaluation identical" first again;
      let o2 = Dfl.Oracle.create ~pool ~scale:2.0 env in
      Alcotest.(check (float 0.0))
        "fresh oracle agrees" first
        (Dfl.Oracle.availability o2 probs))

(* ------------------------------------------------------------------ *)
(* Model fine-tuning primitives                                        *)
(* ------------------------------------------------------------------ *)

let test_mlp_finetune_tracks_targets () =
  let m = Lazy.force mlp in
  let c = Lazy.force corpus in
  let feats =
    Array.sub (Array.map (fun e -> e.Corpus.features) c.Corpus.train) 0 6
  in
  let goal = [| 0.9; 0.1; 0.8; 0.2; 0.7; 0.3 |] in
  let before = Array.map (Mlp.predict_proba m) feats in
  let targets = Array.map2 (fun f q -> (f, q)) feats goal in
  let m' = Mlp.finetune ~epochs:400 m ~targets in
  let after = Array.map (Mlp.predict_proba m') feats in
  (* The source model is never mutated. *)
  Alcotest.(check bool) "source unchanged" true
    (before = Array.map (Mlp.predict_proba m) feats);
  let err xs =
    Array.fold_left ( +. ) 0.0
      (Array.map2 (fun p q -> Float.abs (p -. q)) xs goal)
  in
  Alcotest.(check bool) "outputs moved toward targets" true
    (err after < err before);
  Alcotest.check_raises "target outside [0,1]"
    (Invalid_argument "Mlp.finetune: target outside [0, 1]") (fun () ->
      ignore (Mlp.finetune m ~targets:[| (feats.(0), 1.5) |]))

let test_dtree_finetune_tracks_targets () =
  let c = Lazy.force corpus in
  let t = Dtree.train c.Corpus.train in
  let feats =
    Array.sub (Array.map (fun e -> e.Corpus.features) c.Corpus.train) 0 8
  in
  let goal = Array.init 8 (fun i -> if i mod 2 = 0 then 0.95 else 0.05) in
  let targets = Array.map2 (fun f q -> (f, q)) feats goal in
  let t' = Dtree.finetune t ~targets in
  let err m =
    Array.fold_left ( +. ) 0.0
      (Array.map2
         (fun f q -> Float.abs (Dtree.predict_proba m f -. q))
         feats goal)
  in
  Alcotest.(check bool) "leaves moved toward targets" true (err t' <= err t);
  (* Features routed to no target-carrying leaf keep their prior. *)
  Array.iter
    (fun (e : Corpus.example) ->
      let p = Dtree.predict_proba t' e.Corpus.features in
      Alcotest.(check bool) "proba in range" true (p >= 0.0 && p <= 1.0))
    c.Corpus.test;
  Alcotest.check_raises "target outside [0,1]"
    (Invalid_argument "Dtree.finetune: target outside [0, 1]") (fun () ->
      ignore (Dtree.finetune t ~targets:[| (feats.(0), -0.1) |]))

(* ------------------------------------------------------------------ *)
(* End-to-end trainer: bit-identical at any domain count               *)
(* ------------------------------------------------------------------ *)

let test_trainer_bit_identical_across_domains () =
  let env = Lazy.force env in
  let m = Lazy.force mlp in
  let cfg =
    { Dfl.Trainer.default_config with Dfl.Trainer.steps = 1; pairs = 1; seed = 3 }
  in
  let go domains =
    Pool.with_pool ~domains (fun pool ->
        let oracle = Dfl.Oracle.create ~pool ~scale:2.0 env in
        let m', report = Dfl.Trainer.finetune_mlp ~config:cfg ~oracle m in
        let outs = Array.map (Mlp.predict_proba m') (Dfl.Oracle.events oracle) in
        (report, outs))
  in
  let r1, o1 = go 1 in
  let r4, o4 = go 4 in
  Alcotest.(check bool) "report bit-identical at 1 vs 4 domains" true (r1 = r4);
  Alcotest.(check bool) "model outputs bit-identical" true (o1 = o4);
  Alcotest.(check bool) "tuned never worse than initial" true
    (r1.Dfl.Trainer.tuned_loss <= r1.Dfl.Trainer.initial_loss);
  (* The guard: a kept model's distilled loss beats the warm start;
     otherwise the warm start itself is returned. *)
  if r1.Dfl.Trainer.kept then
    Alcotest.(check bool) "kept only when distillation held" true
      (r1.Dfl.Trainer.distilled_loss < r1.Dfl.Trainer.initial_loss)

(* ------------------------------------------------------------------ *)
(* Predictor: hot swap under concurrent predicts                       *)
(* ------------------------------------------------------------------ *)

let test_swap_under_concurrent_predicts () =
  let server =
    Prete_rt.Predictor.create ~fallback:(fun _ -> 0.5) (fun _ -> 0.3)
  in
  let n_workers = 3 and per_worker = 20_000 and n_swaps = 16 in
  let bad = Atomic.make 0 in
  let workers =
    List.init n_workers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_worker do
              let p, fell_back = Prete_rt.Predictor.predict server some_features in
              (* Every answer comes from a live model version — never the
                 fallback, never a torn value. *)
              if fell_back || not (p = 0.3 || p = 0.7) then Atomic.incr bad
            done))
  in
  for i = 1 to n_swaps do
    Prete_rt.Predictor.swap
      ~name:(Printf.sprintf "dfl-v%d" i)
      server
      (fun _ -> if i mod 2 = 0 then 0.3 else 0.7)
  done;
  List.iter Domain.join workers;
  let served, fell_back, swaps = Prete_rt.Predictor.stats server in
  Alcotest.(check int) "every predict served" (n_workers * per_worker) served;
  Alcotest.(check int) "no fallback spike during swaps" 0 fell_back;
  Alcotest.(check int) "all swaps recorded" n_swaps swaps;
  Alcotest.(check int) "no torn predictions" 0 (Atomic.get bad);
  Alcotest.(check string)
    "latest version serving"
    (Printf.sprintf "dfl-v%d" n_swaps)
    (Prete_rt.Predictor.version server)

(* ------------------------------------------------------------------ *)
(* Runtime config: retrain dump/replay tolerance                       *)
(* ------------------------------------------------------------------ *)

let test_retrain_config_roundtrip () =
  let rc =
    { Prete_rt.Runtime.rt_every = 5; rt_steps = 3; rt_pairs = 2; rt_min_events = 4 }
  in
  let cfg = { Prete_rt.Runtime.default_config with Prete_rt.Runtime.retrain = Some rc } in
  let json =
    Printf.sprintf "{\"config\": %s}"
      (Prete_rt.Runtime.Internal.config_to_json cfg)
  in
  let back = Prete_rt.Runtime.config_of_dump json in
  Alcotest.(check bool) "retrain roundtrips" true (back.Prete_rt.Runtime.retrain = Some rc);
  (* Off serializes as retrain_every 0 and parses back off. *)
  let off_json =
    Printf.sprintf "{\"config\": %s}"
      (Prete_rt.Runtime.Internal.config_to_json Prete_rt.Runtime.default_config)
  in
  let off = Prete_rt.Runtime.config_of_dump off_json in
  Alcotest.(check bool) "off roundtrips" true (off.Prete_rt.Runtime.retrain = None)

let strip_fields json keys =
  List.fold_left
    (fun acc key ->
      match Prete_rt.Runtime.Internal.field_raw acc key with
      | None -> acc
      | Some v ->
        let pat = Printf.sprintf "\"%s\": %s, " key v in
        (match String.index_opt acc '{' with
        | None -> acc
        | Some _ ->
          let plen = String.length pat and n = String.length acc in
          let rec find i =
            if i + plen > n then None
            else if String.sub acc i plen = pat then Some i
            else find (i + 1)
          in
          (match find 0 with
          | None -> acc
          | Some i ->
            String.sub acc 0 i ^ String.sub acc (i + plen) (n - i - plen))))
    json keys

let test_retrain_legacy_dump_parses_off () =
  let json =
    Printf.sprintf "{\"config\": %s}"
      (Prete_rt.Runtime.Internal.config_to_json Prete_rt.Runtime.default_config)
  in
  let legacy =
    strip_fields json
      [ "retrain_every"; "retrain_steps"; "retrain_pairs"; "retrain_min_events" ]
  in
  Alcotest.(check bool) "fields gone" true
    (Prete_rt.Runtime.Internal.field_raw legacy "retrain_every" = None);
  let back = Prete_rt.Runtime.config_of_dump legacy in
  Alcotest.(check bool) "legacy dump parses as off" true
    (back.Prete_rt.Runtime.retrain = None)

let test_retrain_shard_invariant () =
  (* The online retrain loop is part of the deterministic core: the same
     armed config must produce byte-identical cores — retrains counter
     included — at any (shards x domains) combination. *)
  let cfg =
    {
      Prete_rt.Runtime.default_config with
      Prete_rt.Runtime.topology = "grid3";
      epochs = 8;
      seed = 3;
      predictor = Prete_rt.Runtime.Nn 2;
      retrain =
        Some
          {
            Prete_rt.Runtime.rt_every = 4;
            rt_steps = 1;
            rt_pairs = 1;
            rt_min_events = 1;
          };
    }
  in
  let run ~domains ~shards =
    Pool.with_pool ~domains (fun pool ->
        Prete_rt.Shard.run ~pool { cfg with Prete_rt.Runtime.shards })
  in
  let r1 = run ~domains:1 ~shards:1 in
  let retrains =
    Prete_rt.Metrics.counter r1.Prete_rt.Shard.s_metrics "retrains"
  in
  Alcotest.(check bool) "retrain fired" true (retrains >= 1);
  let r2 = run ~domains:2 ~shards:2 in
  Alcotest.(check bool)
    "core bit-identical at 2 shards x 2 domains" true
    (String.equal
       (Prete_rt.Shard.deterministic_core r1)
       (Prete_rt.Shard.deterministic_core r2))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "prete_dfl"
    [
      ("estimator.props", qsuite [ prop_fd_quadratic ]);
      ( "estimator",
        [
          Alcotest.test_case "FD one-sided clamp" `Quick test_fd_one_sided_clamp;
          Alcotest.test_case "SPSA exact in 1d" `Quick test_spsa_1d_exact;
          Alcotest.test_case "SPSA sign agreement" `Quick test_spsa_sign_agreement;
          Alcotest.test_case "deterministic" `Quick test_estimator_deterministic;
          Alcotest.test_case "validation" `Quick test_estimator_validation;
        ] );
      ( "tune",
        [
          Alcotest.test_case "improves a quadratic" `Quick test_tune_improves_quadratic;
          Alcotest.test_case "never regresses" `Quick test_tune_never_regresses;
          Alcotest.test_case "deterministic" `Quick test_tune_deterministic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "shape and call accounting" `Slow test_oracle_shape_and_calls;
          Alcotest.test_case "pure in probs" `Slow test_oracle_pure_in_probs;
        ] );
      ( "finetune",
        [
          Alcotest.test_case "mlp tracks targets" `Slow test_mlp_finetune_tracks_targets;
          Alcotest.test_case "dtree tracks targets" `Slow test_dtree_finetune_tracks_targets;
          Alcotest.test_case "bit-identical at 1 vs 4 domains" `Slow
            test_trainer_bit_identical_across_domains;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "swap under concurrent predicts" `Quick
            test_swap_under_concurrent_predicts;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "retrain config roundtrip" `Quick
            test_retrain_config_roundtrip;
          Alcotest.test_case "legacy dump parses off" `Quick
            test_retrain_legacy_dump_parses_off;
          Alcotest.test_case "retrain shard-invariant" `Slow
            test_retrain_shard_invariant;
        ] );
    ]
