(* The paper's motivating example (§2.2, §3.3, Figs. 2/3/7).

   A three-node network s1-s2-s3 with 10-unit links and failure
   probabilities 0.005 (s1s2), 0.009 (s1s3), 0.001 (s2s3).  Flow s1->s2
   uses one tunnel, flow s1->s3 two tunnels.

   - TeaVar (static probabilities, admission control): admits 10 units in
     total at beta = 99%.
   - An oracle that knows link s1s2 will not fail admits 20 units.
   - When s1s2 degrades, PreTE creates the new tunnel s1-s3-s2 and keeps
     serving both flows after the cut (Fig. 7), where TeaVar's rate
     adaptation drops to 5 units (Fig. 2c).

   Run with: dune exec examples/motivating_example.exe *)

open Prete
open Prete_net

let topology () =
  let fibers = [| (0, 1, 100.0); (0, 2, 100.0); (1, 2, 100.0) |] in
  let links =
    Array.of_list
      (List.concat_map
         (fun (f, (a, b)) -> [ (a, b, 10.0, [ f ]); (b, a, 10.0, [ f ]) ])
         [ (0, (0, 1)); (1, (0, 2)); (2, (1, 2)) ])
  in
  Topology.make ~name:"fig2" ~node_names:[| "s1"; "s2"; "s3" |] ~fibers ~links

let fiber_s1s2 = 0

(* The paper's tunnel sets: flow s1->s2 has a single tunnel (the direct
   link); flow s1->s3 has two (direct and via s2).  Hand-built rather than
   via [Tunnels.build], which would add residual tunnels per §4.2. *)
let paper_tunnels topo =
  let path nodes =
    (* Directed link ids along a node sequence. *)
    let rec walk = function
      | a :: (b :: _ as rest) ->
        let lid =
          List.find_map
            (fun (lid, dst) -> if dst = b then Some lid else None)
            (Topology.neighbors topo a)
          |> Option.get
        in
        lid :: walk rest
      | _ -> []
    in
    walk nodes
  in
  let tunnels =
    [|
      { Tunnels.tunnel_id = 0; Tunnels.owner = 0; Tunnels.links = path [ 0; 1 ] };
      { Tunnels.tunnel_id = 1; Tunnels.owner = 1; Tunnels.links = path [ 0; 2 ] };
      { Tunnels.tunnel_id = 2; Tunnels.owner = 1; Tunnels.links = path [ 0; 1; 2 ] };
    |]
  in
  {
    Tunnels.topo;
    Tunnels.flows =
      [|
        { Tunnels.flow_id = 0; Tunnels.src = 0; Tunnels.dst = 1 };
        { Tunnels.flow_id = 1; Tunnels.src = 0; Tunnels.dst = 2 };
      |];
    Tunnels.tunnels;
    Tunnels.of_flow = [| [ 0 ]; [ 1; 2 ] |];
  }

let () =
  let topo = topology () in
  let ts = paper_tunnels topo in
  let demands = [| 10.0; 10.0 |] in
  let probs = [| 0.005; 0.009; 0.001 |] in

  Printf.printf "=== Fig. 2: TeaVar with static probabilities ===\n";
  let p = Te.make_problem ~ts ~demands ~probs ~beta:0.99 () in
  let adm = Te.solve_admission p in
  let total = Prete_util.Stats.sum adm.Te.admitted in
  Printf.printf "TeaVar admits %.1f + %.1f = %.1f units at beta = 99%%\n"
    adm.Te.admitted.(0) adm.Te.admitted.(1) total;

  (* Rate adaptation when s1s2 actually fails (Fig. 2c): flows fall back
     to the tunnels that survive. *)
  let surviving_after_cut alloc flow =
    List.fold_left
      (fun acc tid ->
        let tn = ts.Tunnels.tunnels.(tid) in
        if Routing.uses_fiber topo tn.Tunnels.links fiber_s1s2 then acc
        else acc +. alloc.(tid))
      0.0 ts.Tunnels.of_flow.(flow)
  in
  let s0 = surviving_after_cut adm.Te.adm_alloc 0 in
  let s1 = surviving_after_cut adm.Te.adm_alloc 1 in
  Printf.printf "After an s1s2 cut, rate adaptation delivers %.1f + %.1f = %.1f units (Fig. 2c)\n\n"
    (Float.min s0 adm.Te.admitted.(0))
    (Float.min s1 adm.Te.admitted.(1))
    (Float.min s0 adm.Te.admitted.(0) +. Float.min s1 adm.Te.admitted.(1));

  Printf.printf "=== Fig. 3: oracle that knows s1s2 will not fail ===\n";
  let oracle_probs = [| 0.0; 0.009; 0.001 |] in
  let p_oracle = Te.make_problem ~ts ~demands ~probs:oracle_probs ~beta:0.99 () in
  let adm_oracle = Te.solve_admission p_oracle in
  Printf.printf "Oracle admits %.1f + %.1f = %.1f units — %0.1fx TeaVar (Fig. 3b)\n\n"
    adm_oracle.Te.admitted.(0) adm_oracle.Te.admitted.(1)
    (Prete_util.Stats.sum adm_oracle.Te.admitted)
    (Prete_util.Stats.sum adm_oracle.Te.admitted /. Float.max 1.0 total);

  Printf.printf "=== Fig. 7: PreTE reacts to a degradation on s1s2 ===\n";
  (* Algorithm 1: flow s1->s2 gets the new tunnel s1-s3-s2. *)
  let update = Tunnel_update.react ts ~degraded_fiber:fiber_s1s2 () in
  Printf.printf "Algorithm 1 creates %d new tunnel(s):\n" (Tunnel_update.num_new update);
  Array.iter
    (fun (tn : Tunnels.tunnel) ->
      let nodes = Routing.path_nodes topo tn.Tunnels.links in
      Printf.printf "  flow %d: %s\n" tn.Tunnels.owner
        (String.concat "-"
           (List.map (fun v -> topo.Topology.node_names.(v)) nodes)))
    update.Tunnel_update.new_tunnels;
  let merged = Tunnel_update.merged update in
  (* The degradation raises s1s2's probability (say the NN predicts 0.4). *)
  let prete_probs = [| 0.4; 0.009; 0.001 |] in
  let p_prete = Te.make_problem ~ts:merged ~demands ~probs:prete_probs ~beta:0.99 () in
  let sol = Te.solve p_prete in
  let surviving_with merged_ts alloc flow =
    List.fold_left
      (fun acc tid ->
        let tn = merged_ts.Tunnels.tunnels.(tid) in
        if Routing.uses_fiber topo tn.Tunnels.links fiber_s1s2 then acc
        else acc +. alloc.(tid))
      0.0 merged_ts.Tunnels.of_flow.(flow)
  in
  let r0 = Float.min demands.(0) (surviving_with merged sol.Te.alloc 0) in
  let r1 = Float.min demands.(1) (surviving_with merged sol.Te.alloc 1) in
  Printf.printf
    "When the cut then happens, PreTE still delivers %.1f + %.1f = %.1f units (Fig. 7b)\n"
    r0 r1 (r0 +. r1);
  Printf.printf "PreTE max loss at beta 99%%: %.3f\n" sol.Te.phi
