examples/degradation_analysis.ml: Array Dataset Fiber_model Hypothesis List Prete_ml Prete_net Prete_optics Prete_util Printf Stats Telemetry
