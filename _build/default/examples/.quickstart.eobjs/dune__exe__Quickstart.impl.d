examples/quickstart.ml: Array Availability Calibrate Format Prete Prete_ml Prete_net Prete_optics Prete_util Printf Schemes Te Topology Traffic Tunnel_update Tunnels
