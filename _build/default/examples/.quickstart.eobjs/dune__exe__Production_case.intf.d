examples/production_case.mli:
