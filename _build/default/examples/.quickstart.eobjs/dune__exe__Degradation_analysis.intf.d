examples/degradation_analysis.mli:
