examples/production_case.ml: Array Controller Float List Prete Prete_net Prete_util Printf Routing Scenario String Te Topology Tunnel_update Tunnels
