examples/quickstart.mli:
