examples/motivating_example.ml: Array Float List Option Prete Prete_net Prete_util Printf Routing String Te Topology Tunnel_update Tunnels
