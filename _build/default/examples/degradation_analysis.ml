(* Measurement-study walkthrough (§3): generate a year of synthetic optical
   telemetry, reproduce the statistics that evidence fiber-cut
   predictability, and train/compare the failure predictors.

   Run with: dune exec examples/degradation_analysis.exe *)

open Prete_optics
open Prete_util

let () =
  let topo = Prete_net.Topology.twan () in
  let model = Fiber_model.generate topo in
  let ds = Dataset.generate ~model topo in
  Printf.printf "One synthetic year on %s: %d degradations, %d cuts\n\n"
    topo.Prete_net.Topology.name
    (Array.length ds.Dataset.degradations)
    (Array.length ds.Dataset.cuts);

  (* §3.1: degradations are ephemeral (Fig. 4a). *)
  let durations = Dataset.durations ds in
  Printf.printf "Degradation durations: median %.1f s, p90 %.1f s (Fig. 4a: 50%% < 10 s)\n"
    (Stats.median durations) (Stats.percentile durations 90.0);

  (* §3.1: time from degradation to the next cut (Fig. 5a). *)
  let gaps = Dataset.gaps_to_next_cut ds in
  Printf.printf "Degradation->cut gaps: %.0f%% within 1000 s, %.0f%% beyond a day (Fig. 5a)\n"
    (100.0 *. Stats.cdf_at gaps 1000.0)
    (100.0 *. (1.0 -. Stats.cdf_at gaps 86400.0));

  (* §3.1: share of predictable cuts (Fig. 5b) and the chi-square test
     (Table 6). *)
  Printf.printf "Predictable cuts: %.1f%% of all cuts; P(cut | degradation) = %.2f\n"
    (100.0 *. Dataset.predictable_fraction ds)
    (Dataset.hazard_fraction ds);
  let tbl = Dataset.epoch_contingency ds in
  let r = Hypothesis.chi2_contingency tbl in
  Printf.printf
    "Chi-square on 15-min epochs: statistic %.1f, log10 p = %.0f (Table 6: p < 1e-50)\n\n"
    r.Hypothesis.statistic r.Hypothesis.log10_p;

  (* §3.2: critical features (Fig. 6 / Table 1). *)
  Printf.printf "Feature significance (Table 1):\n";
  List.iter
    (fun (name, which) ->
      let values, outcomes = Dataset.feature_outcome ds which in
      let r = Hypothesis.chi2_binned ~bins:10 ~values ~outcomes in
      Printf.printf "  %-12s p-value %.2e %s\n" name r.Hypothesis.p_value
        (if Hypothesis.reject r then "(rejected: feature matters)" else ""))
    [ ("time", `Time); ("degree", `Degree); ("gradient", `Gradient);
      ("fluctuation", `Fluctuation) ];

  (* §4.1 / Table 5: predictor comparison. *)
  Printf.printf "\nPredictor comparison (Table 5):\n";
  let corpus = Prete_ml.Corpus.of_dataset ds in
  let eval name predict =
    let c = Prete_ml.Metrics.evaluate ~predict corpus.Prete_ml.Corpus.test in
    Printf.printf "  %-10s P = %.2f  R = %.2f\n" name
      (Prete_ml.Metrics.precision c) (Prete_ml.Metrics.recall c)
  in
  let naive = Prete_ml.Baselines.naive_train model in
  eval "TeaVar" (Prete_ml.Baselines.naive_label naive);
  let st = Prete_ml.Baselines.statistic_train corpus.Prete_ml.Corpus.train in
  eval "Statistic" (Prete_ml.Baselines.statistic_label st);
  let dt = Prete_ml.Dtree.train corpus.Prete_ml.Corpus.train in
  eval "DT" (Prete_ml.Dtree.predict_label dt);
  let nn =
    Prete_ml.Mlp.train
      ~config:{ Prete_ml.Mlp.default_config with Prete_ml.Mlp.epochs = 20 }
      corpus.Prete_ml.Corpus.train
  in
  eval "NN (ours)" (Prete_ml.Mlp.predict_label nn);

  (* §8 / Fig. 20a: what coarse telemetry would have seen. *)
  Printf.printf "\nTelemetry granularity (Fig. 20a):\n";
  List.iter
    (fun g ->
      let cov, occ = Telemetry.coverage_occurrence ~granularity_s:g ds in
      Printf.printf "  %4d s polling: coverage %.1f%%, occurrence %.1f%%\n" g
        (100.0 *. cov) (100.0 *. occ))
    [ 1; 10; 60; 180; 300 ]
