(* Quickstart: run PreTE end-to-end on the B4 topology.

   Builds the topology, traffic and tunnels; trains the failure-prediction
   NN on a synthetic year of optical telemetry; then walks one TE period
   that observes a fiber degradation: calibrate probabilities (Eqn. 1),
   create new tunnels (Algorithm 1), optimize (Eqns. 2-8) and compare
   availability against TeaVar.

   Run with: dune exec examples/quickstart.exe *)

open Prete
open Prete_net

let () =
  (* 1. Network substrate: topology, demands, tunnels. *)
  let topo = Topology.b4 () in
  Format.printf "Topology: %a@." Topology.pp_summary topo;
  let traffic = Traffic.generate topo in
  let ts = Tunnels.build topo traffic.Traffic.pairs in
  Printf.printf "Flows: %d, tunnels: %d\n"
    (Array.length ts.Tunnels.flows)
    (Array.length ts.Tunnels.tunnels);

  (* 2. Optical layer: per-fiber probabilities and two years of telemetry. *)
  let model = Prete_optics.Fiber_model.generate topo in
  let dataset = Prete_optics.Dataset.generate ~horizon_days:730 ~model topo in
  Printf.printf "Synthetic telemetry (2y): %d degradations, %d cuts (%.0f%% predictable)\n"
    (Array.length dataset.Prete_optics.Dataset.degradations)
    (Array.length dataset.Prete_optics.Dataset.cuts)
    (100.0 *. Prete_optics.Dataset.predictable_fraction dataset);

  (* 3. Train the failure predictor (Appendix A.2 recipe). *)
  let corpus = Prete_ml.Corpus.of_dataset dataset in
  let nn =
    Prete_ml.Mlp.train
      ~config:{ Prete_ml.Mlp.default_config with Prete_ml.Mlp.epochs = 25 }
      corpus.Prete_ml.Corpus.train
  in
  let conf =
    Prete_ml.Metrics.evaluate ~predict:(Prete_ml.Mlp.predict_label nn)
      corpus.Prete_ml.Corpus.test
  in
  Printf.printf "NN predictor: precision %.2f, recall %.2f\n"
    (Prete_ml.Metrics.precision conf)
    (Prete_ml.Metrics.recall conf);

  (* 4. One TE period with a degradation signal on fiber 3. *)
  let degraded_fiber = 3 in
  let rng = Prete_util.Rng.create 99 in
  let event =
    Prete_optics.Hazard.sample_features rng ~topo ~fiber:degraded_fiber ~epoch:48
  in
  let p_nn = Prete_ml.Mlp.predict_proba nn event in
  Printf.printf "\nDegradation on fiber %d: degree %.1f dB, predicted cut probability %.2f\n"
    degraded_fiber event.Prete_optics.Hazard.degree p_nn;

  (* Eqn. 1 calibration. *)
  let obs =
    { Calibrate.degraded = [ (degraded_fiber, event) ]; Calibrate.will_cut = [] }
  in
  let probs =
    Calibrate.probabilities
      (Calibrate.Calibrated (Prete_ml.Mlp.predict_proba nn))
      model obs
  in

  (* Algorithm 1: new tunnels disjoint from the degraded fiber. *)
  let update = Tunnel_update.react ts ~degraded_fiber () in
  Printf.printf "Algorithm 1 established %d new tunnels for affected flows\n"
    (Tunnel_update.num_new update);
  let merged = Tunnel_update.merged update in

  (* The optimization (Eqns. 2-8). *)
  let demands = Traffic.demand traffic ~scale:2.5 ~epoch:12 in
  let problem = Te.make_problem ~ts:merged ~demands ~probs ~beta:0.99 () in
  let sol = Te.solve problem in
  Printf.printf "PreTE optimization: max loss %.4f at beta 0.99, served %.4f (%d LPs, %d pivots)\n"
    sol.Te.phi sol.Te.expected_served sol.Te.stats.Te.lp_solves sol.Te.stats.Te.lp_pivots;

  (* 5. Availability comparison at a capacity-stressed demand scale. *)
  let env = Availability.make_env ~model ~traffic ~tunnels:ts topo in
  let scale = 3.0 in
  let prete =
    Availability.availability env
      (Schemes.prete_default ~predictor:(Prete_ml.Mlp.predict_proba nn) ())
      ~scale
  in
  let teavar = Availability.availability env Schemes.Teavar ~scale in
  Printf.printf "\nAvailability at %.1fx demand: PreTE %.4f%% vs TeaVar %.4f%%\n"
    scale (100.0 *. prete) (100.0 *. teavar);
  Printf.printf "(%.1f vs %.1f nines)\n" (Availability.nines prete) (Availability.nines teavar)
