test/test_ml.ml: Alcotest Array Baselines Corpus Dataset Dtree Encoder Fiber_model Float Hashtbl Hazard Lazy List Metrics Mlp Prete_ml Prete_net Prete_optics Prete_util Printf
