test/test_util.ml: Alcotest Array Dist Float Gen Hypothesis List Matrix Prete_util Printf QCheck QCheck_alcotest Rng Special Stats Timeseries
