test/test_optics.ml: Alcotest Array Dataset Fiber_model Hazard Hypothesis Lazy List Prete_net Prete_optics Prete_util Printf QCheck QCheck_alcotest Rng Snr Stats Telemetry
