test/test_net.ml: Alcotest Array Filename Fun List Prete_net Prete_util Printf QCheck QCheck_alcotest Routing Sys Topology Topology_io Traffic Tunnels
