test/test_lp.ml: Alcotest Array Float List Lp Mip Prete_lp Prete_util Printf QCheck QCheck_alcotest Simplex
