open Prete_optics

type naive = { p_cut : float array }

let naive_train (m : Fiber_model.t) = { p_cut = Array.copy m.Fiber_model.p_cut }

let naive_proba n (f : Hazard.features) =
  let nf = Array.length n.p_cut in
  if nf = 0 then 0.0 else n.p_cut.(((f.Hazard.fiber mod nf) + nf) mod nf)

let naive_label n f = naive_proba n f >= 0.5

type statistic = { rate : float array; seen : bool array; global : float }

let statistic_train examples =
  if Array.length examples = 0 then invalid_arg "Baselines.statistic_train: empty";
  let max_fiber =
    Array.fold_left
      (fun acc (e : Corpus.example) -> max acc e.Corpus.features.Hazard.fiber)
      0 examples
  in
  let n = Array.make (max_fiber + 1) 0 and pos = Array.make (max_fiber + 1) 0 in
  Array.iter
    (fun (e : Corpus.example) ->
      let f = e.Corpus.features.Hazard.fiber in
      n.(f) <- n.(f) + 1;
      if e.Corpus.label then pos.(f) <- pos.(f) + 1)
    examples;
  let global = Corpus.class_balance examples in
  let rate =
    Array.init (max_fiber + 1) (fun i ->
        if n.(i) = 0 then global else float_of_int pos.(i) /. float_of_int n.(i))
  in
  { rate; seen = Array.map (fun c -> c > 0) n; global }

let statistic_proba s (f : Hazard.features) =
  let fid = f.Hazard.fiber in
  if fid >= 0 && fid < Array.length s.rate && s.seen.(fid) then s.rate.(fid)
  else s.global

let statistic_label s f = statistic_proba s f >= 0.5
