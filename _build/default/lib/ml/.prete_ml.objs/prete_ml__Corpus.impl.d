lib/ml/corpus.ml: Array List Prete_net Prete_optics Prete_util Rng
