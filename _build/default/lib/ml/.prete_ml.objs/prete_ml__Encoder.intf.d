lib/ml/encoder.mli: Corpus Prete_optics
