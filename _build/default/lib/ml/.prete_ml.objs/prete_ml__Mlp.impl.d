lib/ml/mlp.ml: Array Corpus Encoder Float Hazard Matrix Prete_optics Prete_util Rng
