lib/ml/metrics.mli: Corpus Prete_optics
