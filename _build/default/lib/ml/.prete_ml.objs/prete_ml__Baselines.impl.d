lib/ml/baselines.ml: Array Corpus Fiber_model Hazard Prete_optics
