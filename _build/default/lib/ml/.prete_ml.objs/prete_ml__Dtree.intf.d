lib/ml/dtree.mli: Corpus Prete_optics
