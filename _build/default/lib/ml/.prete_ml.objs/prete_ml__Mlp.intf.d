lib/ml/mlp.mli: Corpus Prete_optics
