lib/ml/baselines.mli: Corpus Prete_optics
