lib/ml/dtree.ml: Array Corpus Hazard List Prete_optics
