lib/ml/encoder.ml: Array Corpus Float Hazard Prete_optics
