lib/ml/metrics.ml: Array Corpus Float
