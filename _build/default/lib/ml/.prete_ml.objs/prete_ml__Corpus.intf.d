lib/ml/corpus.mli: Prete_optics
