(** Binary-classification metrics (Table 5, Table 8). *)

type confusion = { tp : int; fp : int; tn : int; fn : int }

val confusion : predicted:bool array -> actual:bool array -> confusion
(** Raises [Invalid_argument] on length mismatch. *)

val precision : confusion -> float
(** TP / (TP + FP); 0 when undefined. *)

val recall : confusion -> float
(** TP / (TP + FN); 0 when undefined. *)

val f1 : confusion -> float
val accuracy : confusion -> float

val mean_abs_error : predicted:float array -> actual:float array -> float
(** Mean |p̂ − p*| — the Fig. 14 prediction-error metric. *)

val evaluate :
  predict:(Prete_optics.Hazard.features -> bool) -> Corpus.example array -> confusion
(** Run a labeller over a test set. *)
