open Prete_optics

let num_numeric = 5
let num_hours = 24
let num_vendors = 4
let num_regions_const = 3

type t = {
  lo : float array;  (** Per-numeric min over the training set. *)
  hi : float array;
  n_fibers : int;
}

type encoded = { dense : float array; fiber : int; region : int }

let numeric (f : Hazard.features) =
  [|
    f.Hazard.degree;
    f.Hazard.gradient;
    float_of_int f.Hazard.fluctuation;
    f.Hazard.length_km;
    f.Hazard.duration_s;
  |]

let fit examples =
  if Array.length examples = 0 then invalid_arg "Encoder.fit: empty training set";
  let lo = Array.make num_numeric infinity and hi = Array.make num_numeric neg_infinity in
  let n_fibers = ref 0 in
  Array.iter
    (fun (e : Corpus.example) ->
      let v = numeric e.Corpus.features in
      for i = 0 to num_numeric - 1 do
        if v.(i) < lo.(i) then lo.(i) <- v.(i);
        if v.(i) > hi.(i) then hi.(i) <- v.(i)
      done;
      if e.Corpus.features.Hazard.fiber >= !n_fibers then
        n_fibers := e.Corpus.features.Hazard.fiber + 1)
    examples;
  { lo; hi; n_fibers = max 1 !n_fibers }

let dense_width _t = num_numeric + num_hours + num_vendors

let num_fibers t = t.n_fibers
let num_regions _ = num_regions_const

let encode t (f : Hazard.features) =
  let dense = Array.make (num_numeric + num_hours + num_vendors) 0.0 in
  let v = numeric f in
  for i = 0 to num_numeric - 1 do
    let range = t.hi.(i) -. t.lo.(i) in
    (* Clamp test-time values into the fitted range. *)
    dense.(i) <-
      (if range <= 0.0 then 0.0
       else Float.max 0.0 (Float.min 1.0 ((v.(i) -. t.lo.(i)) /. range)))
  done;
  let hour = int_of_float f.Hazard.time_of_day mod num_hours in
  dense.(num_numeric + max 0 hour) <- 1.0;
  let vendor = ((f.Hazard.vendor mod num_vendors) + num_vendors) mod num_vendors in
  dense.(num_numeric + num_hours + vendor) <- 1.0;
  {
    dense;
    fiber = ((f.Hazard.fiber mod t.n_fibers) + t.n_fibers) mod t.n_fibers;
    region = ((f.Hazard.region mod num_regions_const) + num_regions_const) mod num_regions_const;
  }
