(** Feature encoding (Appendix A.2).

    Continuous variables (degree, gradient, fluctuation, length, duration)
    are min-max scaled to [0, 1] with statistics fitted on the training
    set; time of day is one-hot over 24 hourly buckets; vendor is one-hot;
    fiber id and region are passed through as indices for the network's
    trainable embeddings (their one-hot × embedding-matrix product). *)

type t
(** Fitted encoder. *)

type encoded = {
  dense : float array;  (** Scaled numerics ++ time one-hot ++ vendor one-hot. *)
  fiber : int;
  region : int;
}

val num_numeric : int
(** 5: degree, gradient, fluctuation, length_km, duration_s. *)

val fit : Corpus.example array -> t
(** Learn the min-max ranges.  Raises [Invalid_argument] on empty data. *)

val encode : t -> Prete_optics.Hazard.features -> encoded

val dense_width : t -> int
(** Length of the [dense] vector: numerics + 24 + #vendors. *)

val num_fibers : t -> int
val num_regions : t -> int
