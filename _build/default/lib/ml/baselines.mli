(** Non-neural failure predictors compared in Table 5.

    - {b Naive} (the paper labels it "TeaVar"): ignores the degradation
      signal entirely and predicts each fiber's static failure probability
      p_i, which is ≪ 0.5 — so it never predicts a failure and scores
      P ≈ R ≈ 0.
    - {b Statistic}: the empirical per-fiber P(cut | degradation) from the
      training window; predicts failure when the fiber's rate exceeds 1/2.
      Captures the fiber-identity signal but none of the event features. *)

type naive

val naive_train : Prete_optics.Fiber_model.t -> naive
val naive_proba : naive -> Prete_optics.Hazard.features -> float
val naive_label : naive -> Prete_optics.Hazard.features -> bool

type statistic

val statistic_train : Corpus.example array -> statistic
(** Raises [Invalid_argument] on an empty training set. *)

val statistic_proba : statistic -> Prete_optics.Hazard.features -> float
(** Per-fiber empirical rate; the global rate for unseen fibers. *)

val statistic_label : statistic -> Prete_optics.Hazard.features -> bool
