type confusion = { tp : int; fp : int; tn : int; fn : int }

let confusion ~predicted ~actual =
  if Array.length predicted <> Array.length actual then
    invalid_arg "Metrics.confusion: length mismatch";
  let c = ref { tp = 0; fp = 0; tn = 0; fn = 0 } in
  Array.iteri
    (fun i p ->
      let a = actual.(i) in
      c :=
        (match (p, a) with
        | true, true -> { !c with tp = !c.tp + 1 }
        | true, false -> { !c with fp = !c.fp + 1 }
        | false, false -> { !c with tn = !c.tn + 1 }
        | false, true -> { !c with fn = !c.fn + 1 }))
    predicted;
  !c

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let precision c = ratio c.tp (c.tp + c.fp)
let recall c = ratio c.tp (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let accuracy c = ratio (c.tp + c.tn) (c.tp + c.fp + c.tn + c.fn)

let mean_abs_error ~predicted ~actual =
  if Array.length predicted <> Array.length actual then
    invalid_arg "Metrics.mean_abs_error: length mismatch";
  if Array.length predicted = 0 then invalid_arg "Metrics.mean_abs_error: empty";
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. Float.abs (p -. actual.(i))) predicted;
  !acc /. float_of_int (Array.length predicted)

let evaluate ~predict examples =
  let predicted = Array.map (fun (e : Corpus.example) -> predict e.Corpus.features) examples in
  let actual = Array.map (fun (e : Corpus.example) -> e.Corpus.label) examples in
  confusion ~predicted ~actual
