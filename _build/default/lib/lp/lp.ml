type var = int

type sense = Le | Ge | Eq

type direction = Minimize | Maximize

type term = float * var

type vinfo = { name : string; lb : float; ub : float; is_binary : bool }

type constr_rec = {
  terms : (int * float) list;
  sense : sense;
  rhs : float;
  cname : string;
}

type model = {
  mutable vars : vinfo list; (* reversed *)
  mutable nvars : int;
  mutable constrs : constr_rec list; (* reversed *)
  mutable nconstrs : int;
  mutable obj_dir : direction;
  mutable obj_terms : term list;
}

let create () =
  { vars = []; nvars = 0; constrs = []; nconstrs = 0;
    obj_dir = Minimize; obj_terms = [] }

let add_var m ?(lb = 0.0) ?(ub = infinity) ?(binary = false) name =
  let lb, ub = if binary then (0.0, 1.0) else (lb, ub) in
  if lb > ub then invalid_arg "Lp.add_var: lb > ub";
  let v = m.nvars in
  m.vars <- { name; lb; ub; is_binary = binary } :: m.vars;
  m.nvars <- v + 1;
  v

(* Merge duplicate variables so the solvers see one coefficient each. *)
let normalize_terms m terms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c, v) ->
      if v < 0 || v >= m.nvars then invalid_arg "Lp: variable out of range";
      let prev = try Hashtbl.find tbl v with Not_found -> 0.0 in
      Hashtbl.replace tbl v (prev +. c))
    terms;
  Hashtbl.fold (fun v c acc -> if c <> 0.0 then (v, c) :: acc else acc) tbl []

let add_constraint m ?(name = "") terms sense rhs =
  let idx = m.nconstrs in
  let cname = if name = "" then Printf.sprintf "c%d" idx else name in
  m.constrs <- { terms = normalize_terms m terms; sense; rhs; cname } :: m.constrs;
  m.nconstrs <- idx + 1;
  idx

let set_objective m dir terms =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= m.nvars then invalid_arg "Lp.set_objective: variable out of range")
    terms;
  m.obj_dir <- dir;
  m.obj_terms <- terms

let num_vars m = m.nvars
let num_constraints m = m.nconstrs

let vars_array m = Array.of_list (List.rev m.vars)

let var_name m v =
  if v < 0 || v >= m.nvars then invalid_arg "Lp.var_name: out of range";
  (vars_array m).(v).name

let var_of_index m i =
  if i < 0 || i >= m.nvars then invalid_arg "Lp.var_of_index: out of range";
  i

let binaries m =
  let arr = vars_array m in
  let acc = ref [] in
  for i = Array.length arr - 1 downto 0 do
    if arr.(i).is_binary then acc := i :: !acc
  done;
  !acc

module Internal = struct
  type constr = { terms : (int * float) list; sense : sense; rhs : float; cname : string }

  let bounds m = Array.map (fun v -> (v.lb, v.ub)) (vars_array m)

  let constraints m =
    Array.of_list
      (List.rev_map
         (fun (c : constr_rec) ->
           { terms = c.terms; sense = c.sense; rhs = c.rhs; cname = c.cname })
         m.constrs)

  let objective m =
    let coefs = Array.make m.nvars 0.0 in
    List.iter (fun (c, v) -> coefs.(v) <- coefs.(v) +. c) m.obj_terms;
    (m.obj_dir, coefs)
end

let pp fmt m =
  let vars = vars_array m in
  let dir = match m.obj_dir with Minimize -> "min" | Maximize -> "max" in
  Format.fprintf fmt "@[<v>%s " dir;
  List.iter (fun (c, v) -> Format.fprintf fmt "%+g·%s " c vars.(v).name) m.obj_terms;
  Format.fprintf fmt "@,";
  List.iter
    (fun c ->
      Format.fprintf fmt "  %s: " c.cname;
      List.iter (fun (v, coef) -> Format.fprintf fmt "%+g·%s " coef vars.(v).name) c.terms;
      let s = match c.sense with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
      Format.fprintf fmt "%s %g@," s c.rhs)
    (List.rev m.constrs);
  Array.iter
    (fun v -> Format.fprintf fmt "  %g <= %s <= %g@," v.lb v.name v.ub)
    vars;
  Format.fprintf fmt "@]"
