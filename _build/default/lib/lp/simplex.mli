(** Two-phase primal simplex for {!Lp} models.

    Replaces the Gurobi LP path of the paper's implementation.  The solver
    uses a dense tableau: Phase 1 minimizes the sum of artificial variables
    to find a basic feasible solution, Phase 2 optimizes the user objective.
    Entering columns follow Dantzig's rule with an automatic switch to
    Bland's rule (guaranteeing termination) after a degeneracy threshold.

    Normalization: variables are shifted to zero lower bound, finite upper
    bounds become additional rows, binary declarations are relaxed to
    [0, 1].  Free variables (infinite lower bound) are not supported — the
    TE formulations never produce them.

    Duals are reported as shadow prices of the original constraints:
    [dual sol i] is ∂(objective)/∂(rhs of constraint i) at the optimum,
    regardless of constraint sense or optimization direction. *)

type solution = {
  objective : float;  (** Optimal objective in the original direction. *)
  values : float array;  (** Primal values indexed by variable. *)
  duals : float array;  (** Shadow prices indexed by constraint. *)
  iterations : int;  (** Total simplex pivots across both phases. *)
}

type outcome = Optimal of solution | Infeasible | Unbounded

exception Numerical of string
(** Raised when the pivot limit is exceeded (an instance far outside the
    sizes this solver is designed for, or severe degeneracy). *)

val solve : ?max_iters:int -> Lp.model -> outcome
(** Solve the continuous relaxation of the model.  [max_iters] defaults to
    200_000 pivots. *)

val value : solution -> Lp.var -> float
val dual : solution -> int -> float

val feasible : ?eps:float -> Lp.model -> float array -> bool
(** [feasible m x] checks a candidate point against every constraint and
    bound of the model; used by tests and by the MIP layer to validate
    incumbents. Default [eps] 1e-6. *)
