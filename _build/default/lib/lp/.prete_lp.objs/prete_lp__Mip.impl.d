lib/lp/mip.ml: Array Float List Lp Printf Simplex
