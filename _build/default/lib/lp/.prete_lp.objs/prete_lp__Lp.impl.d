lib/lp/lp.ml: Array Format Hashtbl List Printf
