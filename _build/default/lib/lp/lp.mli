(** Linear-programming modeling layer.

    A small modeling DSL in the spirit of the JuMP models the paper's Julia
    implementation builds for Gurobi: create variables with bounds, add
    linear constraints, set a linear objective, then hand the model to
    {!Simplex} (pure LPs) or {!Mip} (models with binary variables).

    Variables carry lower/upper bounds; the solvers normalize bounds
    internally (shift to zero lower bound, upper bounds become rows), so the
    modeling layer stays close to the paper's formulation (Eqns. 2–8). *)

type var = private int
(** Variable handle, valid only for the model that created it. *)

type model

type sense = Le | Ge | Eq

type direction = Minimize | Maximize

type term = float * var
(** A linear term [coefficient * variable]. *)

val create : unit -> model

val add_var :
  model -> ?lb:float -> ?ub:float -> ?binary:bool -> string -> var
(** [add_var m name] adds a variable with default bounds [0, +∞).  [~binary]
    marks the variable integral in {0,1} (and forces bounds [0,1]); the pure
    LP solver treats it as its continuous relaxation.  Raises
    [Invalid_argument] if [lb > ub]. *)

val add_constraint : model -> ?name:string -> term list -> sense -> float -> int
(** [add_constraint m terms sense rhs] adds [Σ terms (sense) rhs] and
    returns the constraint index (used to query duals).  Terms may repeat a
    variable; coefficients are summed. *)

val set_objective : model -> direction -> term list -> unit
(** Sets the linear objective (constant offset not supported — add it to
    reported values externally if needed). *)

val num_vars : model -> int
val num_constraints : model -> int
val var_name : model -> var -> string
val var_of_index : model -> int -> var
(** Inverse of the variable index; raises [Invalid_argument] out of range. *)

val binaries : model -> var list
(** Variables declared binary, in creation order. *)

(** Internal accessors used by the solvers (stable, but not part of the
    user-facing API). *)
module Internal : sig
  type constr = { terms : (int * float) list; sense : sense; rhs : float; cname : string }

  val bounds : model -> (float * float) array
  val constraints : model -> constr array
  val objective : model -> direction * float array
  (** Objective as a dense coefficient vector over variable indices. *)
end

val pp : Format.formatter -> model -> unit
(** Human-readable dump of the model (for debugging small instances). *)
