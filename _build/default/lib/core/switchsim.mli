(** Discrete-event simulation of tunnel installation on switches.

    Establishing a tunnel means updating routing configuration on every
    router along the path (§2); the testbed's controller serializes tunnel
    creations to keep its resource cost constant, giving the linear
    ~250 ms-per-tunnel behaviour of Fig. 11b.  The paper suggests batching
    ("update a dozen tunnels at a time", §5) to cut the total time for
    large updates.

    This module simulates the controller↔switch interaction at the level
    of configuration sessions: installing a tunnel opens one session per
    router on its path; sessions to different routers proceed in parallel
    within a batch, while batches are serialized.  Per-session latency is a
    deterministic-seeded lognormal around the testbed's observed medians,
    so the serialized single-tunnel cost reproduces Fig. 11b's slope and
    batching shows the §5 speedup. *)

type config = {
  session_median_s : float;  (** Median per-router config-session time (0.15 s). *)
  session_sigma : float;  (** Lognormal shape of session latency (0.35). *)
  ack_s : float;  (** Controller-side acknowledgement overhead per tunnel (0.02 s). *)
  seed : int;
}

val default_config : config

type outcome = {
  total_s : float;  (** Wall-clock to install all tunnels. *)
  per_tunnel_s : float array;  (** Completion time of each tunnel (offset). *)
  sessions : int;  (** Router config sessions opened. *)
}

val install :
  ?config:config ->
  ?batch:int ->
  Prete_net.Tunnels.t ->
  Prete_net.Tunnels.tunnel list ->
  outcome
(** [install ts tunnels] simulates installing [tunnels].  [batch] (default
    1 = the testbed's serialized strategy) installs that many tunnels
    concurrently: a batch completes when its slowest tunnel does, and a
    tunnel completes when its slowest router session does.  Raises
    [Invalid_argument] on [batch <= 0]. *)

val fig11b_curve :
  ?config:config -> ?batch:int -> Prete_net.Tunnels.t -> counts:int list ->
  (int * float) list
(** Install time versus tunnel count, sampling tunnels deterministically
    from the tunnel set — the Fig. 11b series (and its batched variant). *)
