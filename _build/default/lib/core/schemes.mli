(** The TE schemes compared in the evaluation (§6.1, Table 9).

    All schemes share the tunnel/LP substrate so comparisons are
    apples-to-apples:

    - {b ECMP}: demand split equally across the flow's equal-cost shortest
      tunnels; no failure awareness, capacity-oblivious.
    - {b SMORE}: semi-oblivious TE — load-balancing ratios over the
      precomputed tunnels minimizing the max link utilization of the
      current traffic matrix; failure-oblivious (Table 9).
    - {b FFC-k}: no traffic loss under any combination of up to [k] fiber
      cuts — every scenario class covered, probability-oblivious.
    - {b TeaVar}: the probabilistic formulation with {e static} failure
      probabilities p_i and no tunnel updates.
    - {b ARROW}: TeaVar's allocation plus optical restoration that
      rebuilds lost capacity 8 s after a cut (availability accounting in
      {!Availability}).
    - {b Flexile}: reactive — allocates for the no-failure case and
      recomputes the optimal allocation after each failure, paying a
      convergence window.
    - {b PreTE}: Eqn. 1 calibrated probabilities (predictor on degrading
      fibers, (1−α)p_i otherwise) plus Algorithm 1 tunnel updates.
      [ratio] scales new tunnels per affected tunnel (Fig. 16);
      [update_tunnels = false] gives PreTE-naive.
    - {b Oracle}: knows the failure outcome; per-scenario optimal. *)

type prete_config = {
  predictor : Prete_optics.Hazard.features -> float;
      (** p_NN in Eqn. 1 — any of the prete_ml models. *)
  ratio : float;  (** New tunnels per affected tunnel (Fig. 16). *)
  update_tunnels : bool;  (** [false] = PreTE-naive. *)
}

type t =
  | Ecmp
  | Smore
  | Ffc of int
  | Teavar
  | Arrow
  | Flexile
  | Prete of prete_config
  | Oracle

val name : t -> string

val prete_default :
  predictor:(Prete_optics.Hazard.features -> float) -> unit -> t
(** PreTE with ratio 1 and tunnel updates on. *)

val prete_naive :
  predictor:(Prete_optics.Hazard.features -> float) -> unit -> t

val is_degradation_aware : t -> bool
(** True for PreTE variants: the allocation depends on the degradation
    state of the epoch. *)
