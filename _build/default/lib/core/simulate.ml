open Prete_net
open Prete_optics

type result = {
  availability : float;
  epochs : int;
  degradation_epochs : int;
  cut_epochs : int;
  multi_cut_epochs : int;
}

(* Surviving allocated rate under a set of simultaneous cuts. *)
let surviving (ts : Tunnels.t) alloc flow ~cuts =
  List.fold_left
    (fun acc tid ->
      let tn = ts.Tunnels.tunnels.(tid) in
      let dead =
        List.exists (fun fb -> Routing.uses_fiber ts.Tunnels.topo tn.Tunnels.links fb) cuts
      in
      if dead then acc else acc +. alloc.(tid))
    0.0 ts.Tunnels.of_flow.(flow)

(* ECMP under a multi-cut: equal split over surviving minimum-cost tunnels
   with proportional throttling on overloaded links (the multi-cut twin of
   the analytic evaluator's model). *)
let ecmp_delivered (ts : Tunnels.t) demands ~cuts =
  let topo = ts.Tunnels.topo in
  let nt = Array.length ts.Tunnels.tunnels in
  let rate = Array.make nt 0.0 in
  let cost tid =
    Routing.path_length_km topo ts.Tunnels.tunnels.(tid).Tunnels.links
    +. (50.0 *. float_of_int (List.length ts.Tunnels.tunnels.(tid).Tunnels.links))
  in
  Array.iteri
    (fun f _ ->
      let d = demands.(f) in
      if d > 0.0 then begin
        let alive =
          List.filter
            (fun tid ->
              not
                (List.exists
                   (fun fb ->
                     Routing.uses_fiber topo ts.Tunnels.tunnels.(tid).Tunnels.links fb)
                   cuts))
            ts.Tunnels.of_flow.(f)
        in
        let best = List.fold_left (fun acc tid -> Float.min acc (cost tid)) infinity alive in
        let eq = List.filter (fun tid -> cost tid <= best +. 1e-6) alive in
        let n = List.length eq in
        if n > 0 then List.iter (fun tid -> rate.(tid) <- d /. float_of_int n) eq
      end)
    ts.Tunnels.flows;
  let load = Array.make (Topology.num_links topo) 0.0 in
  Array.iteri
    (fun tid r ->
      if r > 0.0 then
        List.iter (fun lid -> load.(lid) <- load.(lid) +. r)
          ts.Tunnels.tunnels.(tid).Tunnels.links)
    rate;
  let factor lid =
    let c = (Topology.link topo lid).Topology.capacity in
    if load.(lid) <= c then 1.0 else c /. load.(lid)
  in
  Array.mapi
    (fun f _ ->
      let d = demands.(f) in
      if d <= 0.0 then 1.0
      else
        let got =
          List.fold_left
            (fun acc tid ->
              let r = rate.(tid) in
              if r <= 0.0 then acc
              else
                acc
                +. r
                   *. List.fold_left
                        (fun b lid -> Float.min b (factor lid))
                        1.0
                        ts.Tunnels.tunnels.(tid).Tunnels.links)
            0.0 ts.Tunnels.of_flow.(f)
        in
        Float.min 1.0 (got /. d))
    ts.Tunnels.flows

let run ?(seed = 123) ?(epochs = 20_000) (env : Availability.env) scheme ~scale =
  if epochs <= 0 then invalid_arg "Simulate.run: epochs must be positive";
  let rng = Prete_util.Rng.create seed in
  let demands =
    Traffic.demand env.Availability.traffic ~scale ~epoch:env.Availability.epoch
  in
  let total_demand = Float.max 1e-9 (Prete_util.Stats.sum demands) in
  let topo = env.Availability.ts.Tunnels.topo in
  let nf = Topology.num_fibers topo in
  let num_fibers = nf in
  (* Plans cached per degradation state (at most one degrading fiber is
     planned for; extra simultaneous degradations keep the first plan,
     mirroring the truncation the analytic evaluator applies). *)
  let plan_cache : (int option, Availability.plan) Hashtbl.t = Hashtbl.create 64 in
  let plan degraded =
    match Hashtbl.find_opt plan_cache degraded with
    | Some p -> p
    | None ->
      let p = Availability.Internal.plan_alloc env scheme ~demands ~degraded in
      Hashtbl.add plan_cache degraded p;
      p
  in
  let served_cache : (int list, float array) Hashtbl.t = Hashtbl.create 64 in
  let served cuts =
    let key = List.sort compare cuts in
    match Hashtbl.find_opt served_cache key with
    | Some s -> s
    | None ->
      let s = Availability.Internal.max_served env ~demands ~cuts:key in
      Hashtbl.add served_cache key s;
      s
  in
  let acc = ref 0.0 in
  let degr_epochs = ref 0 and cut_epochs = ref 0 and multi = ref 0 in
  for _ = 1 to epochs do
    (* Sample the epoch's degradations and cuts. *)
    let degraded = ref [] in
    let cuts = ref [] in
    for fb = 0 to nf - 1 do
      if Prete_util.Rng.bernoulli rng env.Availability.model.Fiber_model.p_degrade.(fb)
      then begin
        degraded := fb :: !degraded;
        (* Fresh event features; ground truth decides the outcome. *)
        let feats = Hazard.sample_features rng ~topo ~fiber:fb ~epoch:(Prete_util.Rng.int rng 96) in
        if Prete_util.Rng.bernoulli rng (Hazard.eval ~num_fibers feats) then
          cuts := fb :: !cuts
      end
      else if
        Prete_util.Rng.bernoulli rng
          env.Availability.model.Fiber_model.p_unpredictable.(fb)
      then cuts := fb :: !cuts
    done;
    if !degraded <> [] then incr degr_epochs;
    if !cuts <> [] then incr cut_epochs;
    if List.length !cuts > 1 then incr multi;
    let state = match List.rev !degraded with [] -> None | fb :: _ -> Some fb in
    let p = plan state in
    let ts = p.Availability.p_ts and alloc = p.Availability.p_alloc in
    let cap f =
      match p.Availability.p_admitted with None -> demands.(f) | Some b -> b.(f)
    in
    let cuts = !cuts in
    let delivered =
      match scheme with
      | Schemes.Ecmp -> ecmp_delivered ts demands ~cuts
      | Schemes.Oracle -> served cuts
      | Schemes.Smore | Schemes.Ffc _ | Schemes.Teavar | Schemes.Prete _ ->
        Array.init (Array.length ts.Tunnels.flows) (fun f ->
            let d = demands.(f) in
            if d <= 0.0 then 1.0
            else Float.min 1.0 (Float.min (cap f) (surviving ts alloc f ~cuts) /. d))
      | Schemes.Arrow ->
        Array.init (Array.length ts.Tunnels.flows) (fun f ->
            let d = demands.(f) in
            if d <= 0.0 then 1.0
            else begin
              let affected =
                List.exists
                  (fun fb ->
                    List.exists
                      (fun tid ->
                        alloc.(tid) > 1e-9
                        && Routing.uses_fiber topo ts.Tunnels.tunnels.(tid).Tunnels.links fb)
                      ts.Tunnels.of_flow.(f))
                  cuts
              in
              if not affected then
                Float.min 1.0 (Float.min (cap f) (surviving ts alloc f ~cuts) /. d)
              else begin
                let w = env.Availability.tau_arrow /. env.Availability.epoch_seconds in
                let during = Float.min (cap f) (surviving ts alloc f ~cuts) /. d in
                let after = Float.min (cap f) (surviving ts alloc f ~cuts:[]) /. d in
                Float.min 1.0 ((w *. during) +. ((1.0 -. w) *. after))
              end
            end)
      | Schemes.Flexile ->
        let post = served cuts in
        Array.init (Array.length ts.Tunnels.flows) (fun f ->
            let d = demands.(f) in
            if d <= 0.0 then 1.0
            else begin
              let w = env.Availability.tau_flexile /. env.Availability.epoch_seconds in
              let pre = Float.min 1.0 (surviving ts alloc f ~cuts /. d) in
              (w *. Float.min pre post.(f)) +. ((1.0 -. w) *. post.(f))
            end)
    in
    let epoch_avail = ref 0.0 in
    Array.iteri (fun f dl -> epoch_avail := !epoch_avail +. (demands.(f) *. dl)) delivered;
    acc := !acc +. (!epoch_avail /. total_demand)
  done;
  {
    availability = !acc /. float_of_int epochs;
    epochs;
    degradation_epochs = !degr_epochs;
    cut_epochs = !cut_epochs;
    multi_cut_epochs = !multi;
  }
