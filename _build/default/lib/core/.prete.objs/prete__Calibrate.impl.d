lib/core/calibrate.ml: Array Fiber_model Float Hazard List Prete_optics
