lib/core/switchsim.ml: Array Float List Prete_net Prete_util Topology Tunnels
