lib/core/te.mli: Prete_net Scenario
