lib/core/availability.mli: Prete_net Prete_optics Schemes
