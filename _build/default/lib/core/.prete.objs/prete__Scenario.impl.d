lib/core/scenario.ml: Array Float Hashtbl List Prete_net
