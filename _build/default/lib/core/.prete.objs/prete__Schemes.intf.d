lib/core/schemes.mli: Prete_optics
