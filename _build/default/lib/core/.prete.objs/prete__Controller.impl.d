lib/core/controller.ml: List Unix
