lib/core/tunnel_update.mli: Prete_net
