lib/core/scenario.mli: Prete_net
