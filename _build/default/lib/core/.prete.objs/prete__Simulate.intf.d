lib/core/simulate.mli: Availability Schemes
