lib/core/controller.mli:
