lib/core/switchsim.mli: Prete_net
