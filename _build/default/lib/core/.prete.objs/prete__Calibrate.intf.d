lib/core/calibrate.mli: Prete_optics
