lib/core/simulate.ml: Array Availability Fiber_model Float Hashtbl Hazard List Prete_net Prete_optics Prete_util Routing Schemes Topology Traffic Tunnels
