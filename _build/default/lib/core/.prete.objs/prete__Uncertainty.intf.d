lib/core/uncertainty.mli: Availability Prete_optics
