lib/core/schemes.ml: Prete_optics Printf
