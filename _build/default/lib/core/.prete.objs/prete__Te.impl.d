lib/core/te.ml: Array Float Hashtbl List Lp Mip Prete_lp Prete_net Prete_util Printf Scenario Simplex Topology Tunnels
