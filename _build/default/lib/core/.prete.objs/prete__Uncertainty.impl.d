lib/core/uncertainty.ml: Array Availability Float Lazy List Prete_net Prete_util Routing Schemes Topology Traffic Tunnels
