lib/core/tunnel_update.ml: Array Float List Prete_net Routing Topology Tunnels
