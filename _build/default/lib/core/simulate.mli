(** Monte-Carlo epoch simulator.

    Samples a sequence of TE epochs from the generative optical model —
    per epoch: which fibers degrade, which degradations become cuts (via
    the ground-truth hazard of freshly sampled event features), which
    fibers cut without warning — and plays a TE scheme against the drawn
    sample path, including epochs with {e multiple} simultaneous cuts that
    the analytic evaluator truncates away.

    Used to cross-validate {!Availability.availability}: on schemes with
    instantaneous reaction the two agree within Monte-Carlo noise (see the
    integration tests), and the simulator additionally quantifies the
    truncation error of the analytic single-cut scenario space. *)

type result = {
  availability : float;  (** Demand-weighted mean delivered fraction. *)
  epochs : int;
  degradation_epochs : int;  (** Epochs with at least one degradation. *)
  cut_epochs : int;  (** Epochs with at least one cut. *)
  multi_cut_epochs : int;  (** Epochs the analytic evaluator truncates. *)
}

val run :
  ?seed:int ->
  ?epochs:int ->
  Availability.env ->
  Schemes.t ->
  scale:float ->
  result
(** [run env scheme ~scale] simulates [epochs] (default 20_000) TE periods.
    Plans are cached per degradation state, so the cost is one plan per
    distinct degrading fiber plus O(epochs) bookkeeping.

    Reaction windows: proactive schemes (ECMP, FFC, TeaVar, PreTE, Oracle)
    adapt instantly; ARROW charges its restoration window and Flexile its
    convergence window per cut epoch, as in the analytic evaluator.
    Raises [Invalid_argument] for non-positive [epochs]. *)
