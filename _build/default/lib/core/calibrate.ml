open Prete_optics

type estimator =
  | Static
  | Calibrated of (Hazard.features -> float)
  | Oracle

type observation = {
  degraded : (int * Hazard.features) list;
  will_cut : int list;
}

let probabilities est (model : Fiber_model.t) obs =
  let nf = Array.length model.Fiber_model.p_cut in
  List.iter
    (fun (f, _) ->
      if f < 0 || f >= nf then invalid_arg "Calibrate.probabilities: fiber out of range")
    obs.degraded;
  match est with
  | Static -> Array.copy model.Fiber_model.p_cut
  | Oracle ->
    Array.init nf (fun n -> if List.mem n obs.will_cut then 1.0 else 0.0)
  | Calibrated predictor ->
    Array.init nf (fun n ->
        match List.assoc_opt n obs.degraded with
        | Some features -> Float.max 0.0 (Float.min 1.0 (predictor features))
        | None ->
          (* Theorem 4.1: no signal → (1 − α) p_i. *)
          (1.0 -. model.Fiber_model.alpha) *. model.Fiber_model.p_cut.(n))

let mean_hazard_predictor (model : Fiber_model.t) _features = model.Fiber_model.mean_hazard
