(** Failure-probability calibration (§4.1, Eqn. 1).

    At each TE period every fiber gets a failure probability for the next
    period.  PreTE's calibration is conditional on the degradation signal:

    {v
      p = p_NN             when the fiber is degrading
      p = (1 − α) · p_i    otherwise        (Theorem 4.1)
    v}

    Baselines plug in other estimators: the static p_i (TeaVar and the
    other prior schemes), the oracle (1 if the fiber will actually cut,
    0 otherwise), or a non-NN predictor (Table 5 / Fig. 15 comparisons). *)

type estimator =
  | Static
      (** Always p_i — degradation-oblivious (TeaVar/FFC/ARROW/Flexile). *)
  | Calibrated of (Prete_optics.Hazard.features -> float)
      (** Eqn. 1 with the given predictor for degrading fibers. *)
  | Oracle
      (** Future knowledge: 1 for fibers that will cut, 0 otherwise. *)

type observation = {
  degraded : (int * Prete_optics.Hazard.features) list;
      (** Fibers currently degrading, with the observed event features. *)
  will_cut : int list;
      (** Ground truth for the next period — visible to [Oracle] only. *)
}

val probabilities :
  estimator -> Prete_optics.Fiber_model.t -> observation -> float array
(** Per-fiber failure probability for the next TE period. *)

val mean_hazard_predictor : Prete_optics.Fiber_model.t -> Prete_optics.Hazard.features -> float
(** The "Statistic"-grade predictor usable in [Calibrated]: ignores the
    features and returns the model's mean hazard (0.4). *)
