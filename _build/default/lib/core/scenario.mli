(** Failure scenarios Q and their probabilities (§4.3 "TE input").

    A failure scenario is a set of simultaneously-cut fibers; its
    probability under independent per-fiber failure probabilities
    p = (p₁ … p_N) is [Π (q̂ₙ pₙ + (1 − q̂ₙ)(1 − pₙ))].  Like TeaVar and
    the paper, we truncate the scenario set with a cutoff: the no-failure
    scenario, all single cuts, and (optionally) double cuts whose
    probability exceeds the cutoff.  Omitted probability mass is reported
    so callers can check it is negligible against 1 − β. *)

type t = {
  fibers : int list;  (** Cut fibers (sorted). *)
  prob : float;
}

type set = {
  scenarios : t array;
  covered_prob : float;  (** Σ probabilities of retained scenarios. *)
  residual_prob : float;  (** 1 − covered (mass of truncated scenarios). *)
}

val enumerate :
  probs:float array -> ?max_order:int -> ?cutoff:float -> unit -> set
(** [enumerate ~probs ()] builds the truncated scenario set.  [max_order]
    (default 1) bounds how many simultaneous cuts a scenario may contain;
    [cutoff] (default 0.0) drops scenarios less probable than it.  The
    no-failure scenario is always retained.  Raises [Invalid_argument] on
    probabilities outside [0, 1]. *)

val no_failure : set -> t
(** The empty scenario (always present). *)

val normalize : set -> set
(** Rescale probabilities to sum to 1 — i.e. condition on the truncated
    scenario space.  The availability level β is then interpreted relative
    to the modeled scenarios, which is how cutoff-based TE evaluation
    (TeaVar §5.1) treats truncation. *)

val probability : probs:float array -> int list -> float
(** Probability of an explicit scenario under independence. *)

(** Per-flow scenario classes: scenarios that leave a flow with the same
    surviving tunnel set are interchangeable in the optimization, so they
    share loss variables (the pruning that keeps instances inside
    dense-simplex reach — see DESIGN.md). *)
module Classes : sig
  type cls = {
    survivors : int list;  (** Surviving tunnel ids (sorted). *)
    members : int list;  (** Scenario indices collapsed into this class. *)
    prob : float;  (** Σ member probabilities. *)
  }

  val of_flow :
    Prete_net.Tunnels.t ->
    tunnels:Prete_net.Tunnels.tunnel list ->
    set ->
    cls array
  (** Group a scenario set by the surviving subset of [tunnels] (the
      flow's pre-established plus newly-created tunnels). *)
end
