open Prete_net

type variation_stats = {
  affected_mean : float;
  unaffected_mean : float;
  affected_p95 : float;
  unaffected_p95 : float;
}

let surviving_rate (ts : Tunnels.t) alloc flow ~cut =
  List.fold_left
    (fun acc tid ->
      let tn = ts.Tunnels.tunnels.(tid) in
      let dead =
        match cut with
        | None -> false
        | Some fb -> Routing.uses_fiber ts.Tunnels.topo tn.Tunnels.links fb
      in
      if dead then acc else acc +. alloc.(tid))
    0.0 ts.Tunnels.of_flow.(flow)

let stats_of groups =
  let affected, unaffected = groups in
  let safe_mean xs = if Array.length xs = 0 then 0.0 else Prete_util.Stats.mean xs in
  let safe_p95 xs = if Array.length xs = 0 then 0.0 else Prete_util.Stats.percentile xs 95.0 in
  {
    affected_mean = safe_mean affected;
    unaffected_mean = safe_mean unaffected;
    affected_p95 = safe_p95 affected;
    unaffected_p95 = safe_p95 unaffected;
  }

(* Reference cut for the affected/unaffected split: the fiber touching the
   most flows. *)
let reference_cut (env : Availability.env) =
  let ts = env.Availability.ts in
  let topo = ts.Tunnels.topo in
  let best = ref 0 and best_count = ref (-1) in
  for fb = 0 to Topology.num_fibers topo - 1 do
    let c = List.length (Tunnels.flows_affected_by_cut ts fb) in
    if c > !best_count then begin
      best := fb;
      best_count := c
    end
  done;
  !best

let static_plan (env : Availability.env) ~demands =
  Availability.Internal.plan_alloc env Schemes.Teavar ~demands ~degraded:None

let workload_variation (env : Availability.env) ~scale ~jitter =
  if jitter < 0.0 then invalid_arg "Uncertainty.workload_variation: negative jitter";
  let ts = env.Availability.ts in
  let demands =
    Traffic.demand env.Availability.traffic ~scale ~epoch:env.Availability.epoch
  in
  let rng = Prete_util.Rng.create 77 in
  let demands' =
    Array.map (fun d -> d *. (1.0 +. Prete_util.Rng.uniform rng (-.jitter) jitter)) demands
  in
  let plan = static_plan env ~demands in
  let plan' = static_plan env ~demands:demands' in
  let cut = reference_cut env in
  let affected_flows = Tunnels.flows_affected_by_cut ts cut in
  let affected = ref [] and unaffected = ref [] in
  Array.iter
    (fun (tn : Tunnels.tunnel) ->
      let f = tn.Tunnels.owner in
      let d = demands.(f) in
      if d > 0.0 then begin
        let delta =
          Float.abs
            (plan'.Availability.p_alloc.(tn.Tunnels.tunnel_id)
            -. plan.Availability.p_alloc.(tn.Tunnels.tunnel_id))
          /. d
        in
        if List.mem f affected_flows then affected := delta :: !affected
        else unaffected := delta :: !unaffected
      end)
    ts.Tunnels.tunnels;
  stats_of (Array.of_list !affected, Array.of_list !unaffected)

let capacity_variation (env : Availability.env) ~scale =
  let ts = env.Availability.ts in
  let topo = ts.Tunnels.topo in
  let demands =
    Traffic.demand env.Availability.traffic ~scale ~epoch:env.Availability.epoch
  in
  let plan = static_plan env ~demands in
  let alloc = plan.Availability.p_alloc in
  let affected = ref [] and unaffected = ref [] in
  for fb = 0 to Topology.num_fibers topo - 1 do
    let affected_flows = Tunnels.flows_affected_by_cut ts fb in
    Array.iter
      (fun (tn : Tunnels.tunnel) ->
        let f = tn.Tunnels.owner in
        let d = demands.(f) in
        if d > 0.0 then begin
          (* Actual tunnel traffic before the failure: the flow spreads
             its demand proportionally to the allocation caps (which may
             exceed the demand). *)
          let total_alloc = surviving_rate ts alloc f ~cut:None in
          let before =
            if total_alloc <= 1e-9 then 0.0
            else Float.min d total_alloc *. (alloc.(tn.Tunnels.tunnel_id) /. total_alloc)
          in
          (* Rate adaptation after the cut: the flow rescales onto the
             surviving tunnels within their caps. *)
          let dead = Routing.uses_fiber topo tn.Tunnels.links fb in
          let surv = surviving_rate ts alloc f ~cut:(Some fb) in
          let after =
            if dead then 0.0
            else if surv <= 1e-9 then 0.0
            else Float.min d surv *. (alloc.(tn.Tunnels.tunnel_id) /. surv)
          in
          let delta = Float.abs (after -. before) /. d in
          if List.mem f affected_flows then affected := delta :: !affected
          else unaffected := delta :: !unaffected
        end)
      ts.Tunnels.tunnels
  done;
  stats_of (Array.of_list !affected, Array.of_list !unaffected)

type fig17_point = {
  scheme : string;
  demand_prediction : bool;
  scale : float;
  availability : float;
}

(* Availability with a demand mismatch: the plan is computed for the
   previous epoch's demands (no prediction) or the current ones
   (prediction = the * variants); delivery is judged against the current
   demands. *)
let availability_mismatch (env : Availability.env) scheme ~plan_demands ~actual_demands =
  let states = Availability.Internal.degradation_states env in
  let ts0 = env.Availability.ts in
  let n_flows = Array.length ts0.Tunnels.flows in
  let total_demand = Float.max 1e-9 (Prete_util.Stats.sum actual_demands) in
  let base =
    lazy (Availability.Internal.plan_alloc env scheme ~demands:plan_demands ~degraded:None)
  in
  let total = ref 0.0 in
  Array.iter
    (fun (degraded, p_s) ->
      let plan =
        if Schemes.is_degradation_aware scheme then
          Availability.Internal.plan_alloc env scheme ~demands:plan_demands ~degraded
        else Lazy.force base
      in
      let ts = plan.Availability.p_ts in
      let outcomes = Availability.Internal.cut_outcomes env ~degraded in
      let state_avail = ref 0.0 in
      Array.iter
        (fun (cut, p_q) ->
          let acc = ref 0.0 in
          for f = 0 to n_flows - 1 do
            let d = actual_demands.(f) in
            if d > 0.0 then begin
              let surv = surviving_rate ts plan.Availability.p_alloc f ~cut in
              let cap =
                match plan.Availability.p_admitted with
                | None -> d
                | Some b -> b.(f)
              in
              let delivered = Float.min 1.0 (Float.min cap surv /. d) in
              acc := !acc +. (d *. delivered)
            end
          done;
          state_avail := !state_avail +. (p_q *. (!acc /. total_demand)))
        outcomes;
      total := !total +. (p_s *. !state_avail))
    states;
  !total

let fig17 (env : Availability.env) ~predictor ~scales =
  let actual_epoch = env.Availability.epoch in
  let points = ref [] in
  Array.iter
    (fun scale ->
      let actual = Traffic.demand env.Availability.traffic ~scale ~epoch:actual_epoch in
      (* Without demand prediction the plan is based on the previous TE
         period's demands; workload drift within one 5-minute period is
         small (Appendix A.7), modeled as a ±2% per-flow error. *)
      let rng = Prete_util.Rng.create 171 in
      let stale =
        Array.map (fun d -> d *. (1.0 +. Prete_util.Rng.uniform rng (-0.02) 0.02)) actual
      in
      List.iter
        (fun (scheme, name) ->
          List.iter
            (fun demand_prediction ->
              let plan_demands = if demand_prediction then actual else stale in
              let availability =
                availability_mismatch env scheme ~plan_demands ~actual_demands:actual
              in
              points :=
                { scheme = name; demand_prediction; scale; availability } :: !points)
            [ false; true ])
        [
          (Schemes.Teavar, "TeaVar");
          (Schemes.prete_default ~predictor (), "PreTE");
        ])
    scales;
  List.rev !points
