(** Workload vs. capacity uncertainty (Fig. 17, Fig. 19, Appendix A.7).

    Two sources perturb tunnel traffic between TE periods: demand
    fluctuation (workload uncertainty) and failures (capacity
    uncertainty).  The paper measures (Fig. 19) that workload-driven
    variation is small for affected and unaffected flows alike, while
    capacity-driven variation is large for affected flows; and (Fig. 17)
    that predicting failures buys much more availability than predicting
    demands once the network is loaded. *)

type variation_stats = {
  affected_mean : float;  (** Mean relative tunnel-traffic change among
                              tunnels of flows the failure touches. *)
  unaffected_mean : float;
  affected_p95 : float;
  unaffected_p95 : float;
}

val workload_variation :
  Availability.env -> scale:float -> jitter:float -> variation_stats
(** Tunnel-level |Δtraffic|/capacity between the allocation for the
    current demands and for demands jittered by ±[jitter] (relative),
    with "affected" defined against a reference single-fiber cut. *)

val capacity_variation : Availability.env -> scale:float -> variation_stats
(** Tunnel-level traffic change between the pre-failure allocation and
    the post-failure rate-adapted traffic, averaged over single-fiber
    cuts. *)

type fig17_point = {
  scheme : string;
  demand_prediction : bool;  (** The * variants. *)
  scale : float;
  availability : float;
}

val fig17 :
  Availability.env ->
  predictor:(Prete_optics.Hazard.features -> float) ->
  scales:float array ->
  fig17_point list
(** TeaVar / TeaVar* / PreTE / PreTE* availability: without demand
    prediction a scheme allocates for the previous epoch's demands and is
    evaluated against the current ones. *)
