type prete_config = {
  predictor : Prete_optics.Hazard.features -> float;
  ratio : float;
  update_tunnels : bool;
}

type t =
  | Ecmp
  | Smore
  | Ffc of int
  | Teavar
  | Arrow
  | Flexile
  | Prete of prete_config
  | Oracle

let name = function
  | Ecmp -> "ECMP"
  | Smore -> "SMORE"
  | Ffc k -> Printf.sprintf "FFC-%d" k
  | Teavar -> "TeaVar"
  | Arrow -> "ARROW"
  | Flexile -> "Flexile"
  | Prete { update_tunnels = true; _ } -> "PreTE"
  | Prete { update_tunnels = false; _ } -> "PreTE-naive"
  | Oracle -> "Oracle"

let prete_default ~predictor () = Prete { predictor; ratio = 1.0; update_tunnels = true }

let prete_naive ~predictor () = Prete { predictor; ratio = 0.0; update_tunnels = false }

let is_degradation_aware = function Prete _ -> true | _ -> false
