type t = { fibers : int list; prob : float }

type set = { scenarios : t array; covered_prob : float; residual_prob : float }

let probability ~probs fibers =
  Array.to_list probs
  |> List.mapi (fun n p -> if List.mem n fibers then p else 1.0 -. p)
  |> List.fold_left ( *. ) 1.0

let enumerate ~probs ?(max_order = 1) ?(cutoff = 0.0) () =
  Array.iter
    (fun p ->
      if p < 0.0 || p > 1.0 then invalid_arg "Scenario.enumerate: probability out of [0,1]")
    probs;
  if max_order < 0 then invalid_arg "Scenario.enumerate: max_order must be >= 0";
  let n = Array.length probs in
  let none = probability ~probs [] in
  let acc = ref [ { fibers = []; prob = none } ] in
  if max_order >= 1 then
    for i = 0 to n - 1 do
      let p = probability ~probs [ i ] in
      if p >= cutoff && probs.(i) > 0.0 then acc := { fibers = [ i ]; prob = p } :: !acc
    done;
  if max_order >= 2 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let p = probability ~probs [ i; j ] in
        if p >= cutoff && probs.(i) > 0.0 && probs.(j) > 0.0 then
          acc := { fibers = [ i; j ]; prob = p } :: !acc
      done
    done;
  if max_order >= 3 then invalid_arg "Scenario.enumerate: max_order > 2 unsupported";
  let scenarios = Array.of_list (List.rev !acc) in
  let covered_prob = Array.fold_left (fun a s -> a +. s.prob) 0.0 scenarios in
  { scenarios; covered_prob; residual_prob = Float.max 0.0 (1.0 -. covered_prob) }

let normalize set =
  if set.covered_prob <= 0.0 then invalid_arg "Scenario.normalize: zero covered mass";
  let k = 1.0 /. set.covered_prob in
  {
    scenarios = Array.map (fun s -> { s with prob = s.prob *. k }) set.scenarios;
    covered_prob = 1.0;
    residual_prob = 0.0;
  }

let no_failure set =
  match Array.to_list set.scenarios |> List.find_opt (fun s -> s.fibers = []) with
  | Some s -> s
  | None -> invalid_arg "Scenario.no_failure: missing (corrupt set)"

module Classes = struct
  type cls = { survivors : int list; members : int list; prob : float }

  let of_flow ts ~tunnels set =
    let table = Hashtbl.create 16 in
    Array.iteri
      (fun qi s ->
        let survivors =
          List.filter_map
            (fun (tn : Prete_net.Tunnels.tunnel) ->
              if Prete_net.Tunnels.tunnel_survives ts tn ~failed_fibers:s.fibers then
                Some tn.Prete_net.Tunnels.tunnel_id
              else None)
            tunnels
        in
        let key = List.sort compare survivors in
        let members, prob =
          try Hashtbl.find table key with Not_found -> ([], 0.0)
        in
        Hashtbl.replace table key (qi :: members, prob +. s.prob))
      set.scenarios;
    let out =
      Hashtbl.fold
        (fun survivors (members, prob) acc ->
          { survivors; members = List.rev members; prob } :: acc)
        table []
    in
    (* Deterministic order: by first member scenario index. *)
    Array.of_list
      (List.sort
         (fun a b -> compare (List.hd a.members) (List.hd b.members))
         out)
end
