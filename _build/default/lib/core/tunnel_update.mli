(** Algorithm 1: reactive tunnel updates on a degradation event (§4.2).

    When fiber [e] degrades, every flow with tunnels traversing [e] gets new
    tunnels computed on the graph with [e] deleted, so the new paths are
    disjoint from the degraded fiber.  The paper's sensitivity study
    (Fig. 16) varies the {e ratio} of new tunnels per affected tunnel;
    Algorithm 1 itself uses ratio 1 (Λ new tunnels for Λ affected). *)

type t = {
  base : Prete_net.Tunnels.t;
  degraded_fiber : int;
  new_tunnels : Prete_net.Tunnels.tunnel array;
      (** Ids continue after the base set's. *)
  new_of_flow : int list array;  (** New tunnel ids per flow. *)
}

val react :
  ?ratio:float -> Prete_net.Tunnels.t -> degraded_fiber:int -> unit -> t
(** [react ts ~degraded_fiber ()] runs Algorithm 1.  [ratio] (default 1.0)
    scales the number of new tunnels per affected tunnel (Fig. 16); 0 means
    no updates (PreTE-naive).  New paths avoid the degraded fiber and
    duplicate neither each other nor existing tunnels; fewer may be
    returned when the residual graph runs out of paths. *)

val merged : t -> Prete_net.Tunnels.t
(** Base and new tunnels as one set (for the optimizer: T_f ∪ Y_f^s). *)

val num_new : t -> int

val is_new : t -> int -> bool
(** Whether a tunnel id belongs to the update. *)
