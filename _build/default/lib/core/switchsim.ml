open Prete_net

type config = {
  session_median_s : float;
  session_sigma : float;
  ack_s : float;
  seed : int;
}

(* Calibrated so a typical 2-3-router tunnel lands near the 0.25 s/tunnel
   slope the testbed measured (Fig. 11b): the tunnel's sessions run in
   parallel, so its cost is the max of its router sessions plus the
   controller acknowledgement. *)
let default_config =
  { session_median_s = 0.15; session_sigma = 0.35; ack_s = 0.02; seed = 31 }

type outcome = {
  total_s : float;
  per_tunnel_s : float array;
  sessions : int;
}

let install ?(config = default_config) ?(batch = 1) (ts : Tunnels.t) tunnels =
  if batch <= 0 then invalid_arg "Switchsim.install: batch must be positive";
  let rng = Prete_util.Rng.create config.seed in
  let session_time () =
    Prete_util.Dist.Lognormal.sample ~mu:(log config.session_median_s)
      ~sigma:config.session_sigma rng
  in
  let topo = ts.Tunnels.topo in
  let sessions = ref 0 in
  (* Routers on a tunnel's path: source plus every hop destination. *)
  let routers (tn : Tunnels.tunnel) =
    match tn.Tunnels.links with
    | [] -> []
    | first :: _ as links ->
      (Topology.link topo first).Topology.src
      :: List.map (fun lid -> (Topology.link topo lid).Topology.dst) links
  in
  let tunnel_time tn =
    let rs = routers tn in
    sessions := !sessions + List.length rs;
    List.fold_left (fun acc _ -> Float.max acc (session_time ())) 0.0 rs +. config.ack_s
  in
  let clock = ref 0.0 in
  let completion = ref [] in
  let rec batches = function
    | [] -> ()
    | l ->
      let now, rest =
        let rec take k acc = function
          | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        take batch [] l
      in
      (* Tunnels in a batch run concurrently: the batch costs its slowest
         member; each member completes at its own offset. *)
      let durations = List.map tunnel_time now in
      List.iter (fun d -> completion := (!clock +. d) :: !completion) durations;
      clock := !clock +. List.fold_left Float.max 0.0 durations;
      batches rest
  in
  batches tunnels;
  {
    total_s = !clock;
    per_tunnel_s = Array.of_list (List.rev !completion);
    sessions = !sessions;
  }

let fig11b_curve ?(config = default_config) ?(batch = 1) (ts : Tunnels.t) ~counts =
  let all = Array.to_list ts.Tunnels.tunnels in
  List.map
    (fun n ->
      if n < 0 then invalid_arg "Switchsim.fig11b_curve: negative count";
      let chosen = List.filteri (fun i _ -> i < n) all in
      if List.length chosen < n then
        invalid_arg "Switchsim.fig11b_curve: not enough tunnels";
      (n, (install ~config ~batch ts chosen).total_s))
    counts
