open Prete_net

type t = {
  base : Tunnels.t;
  degraded_fiber : int;
  new_tunnels : Tunnels.tunnel array;
  new_of_flow : int list array;
}

let react ?(ratio = 1.0) (ts : Tunnels.t) ~degraded_fiber () =
  if ratio < 0.0 then invalid_arg "Tunnel_update.react: negative ratio";
  if degraded_fiber < 0 || degraded_fiber >= Topology.num_fibers ts.Tunnels.topo then
    invalid_arg "Tunnel_update.react: fiber out of range";
  let topo = ts.Tunnels.topo in
  let next_id = ref (Array.length ts.Tunnels.tunnels) in
  let new_tunnels = ref [] in
  let new_of_flow = Array.make (Array.length ts.Tunnels.flows) [] in
  (* Step 1: delete the degraded link(s) — every IP link riding the fiber. *)
  let forbidden_links lid =
    List.mem degraded_fiber (Topology.link topo lid).Topology.fibers
  in
  Array.iter
    (fun (f : Tunnels.flow) ->
      let flow_id = f.Tunnels.flow_id in
      let existing = Tunnels.tunnels_of_flow ts flow_id in
      (* Step 2: Λ = number of tunnels traversing the degraded fiber. *)
      let lambda =
        List.length
          (List.filter
             (fun (tn : Tunnels.tunnel) ->
               Routing.uses_fiber topo tn.Tunnels.links degraded_fiber)
             existing)
      in
      if lambda > 0 && ratio > 0.0 then begin
        let want = int_of_float (Float.ceil (ratio *. float_of_int lambda)) in
        let existing_paths = List.map (fun tn -> tn.Tunnels.links) existing in
        (* Candidate paths in G' = G minus the degraded fiber: fiber-
           disjoint first, then k-shortest, skipping duplicates. *)
        let weight (l : Topology.link) =
          List.fold_left
            (fun acc fb -> acc +. (Topology.fiber topo fb).Topology.length_km)
            50.0 l.Topology.fibers
        in
        let avoid_weight (l : Topology.link) =
          if forbidden_links l.Topology.lid then 1e9 else weight l
        in
        let candidates =
          Routing.fiber_disjoint topo ~weight:avoid_weight ~k:(want + 2)
            ~src:f.Tunnels.src ~dst:f.Tunnels.dst ()
          @ Routing.k_shortest topo ~weight:avoid_weight ~k:(want + 4)
              ~src:f.Tunnels.src ~dst:f.Tunnels.dst ()
        in
        let fresh =
          List.filter
            (fun p ->
              (not (List.mem p existing_paths))
              && not (Routing.uses_fiber topo p degraded_fiber))
            candidates
        in
        let dedup =
          let seen = ref [] in
          List.filter
            (fun p ->
              if List.mem p !seen then false
              else begin
                seen := p :: !seen;
                true
              end)
            fresh
        in
        List.iteri
          (fun i p ->
            if i < want then begin
              let id = !next_id in
              incr next_id;
              new_tunnels :=
                { Tunnels.tunnel_id = id; Tunnels.owner = flow_id; Tunnels.links = p }
                :: !new_tunnels;
              new_of_flow.(flow_id) <- id :: new_of_flow.(flow_id)
            end)
          dedup
      end)
    ts.Tunnels.flows;
  Array.iteri (fun i l -> new_of_flow.(i) <- List.rev l) new_of_flow;
  {
    base = ts;
    degraded_fiber;
    new_tunnels = Array.of_list (List.rev !new_tunnels);
    new_of_flow;
  }

let merged t =
  let base = t.base in
  {
    base with
    Tunnels.tunnels = Array.append base.Tunnels.tunnels t.new_tunnels;
    Tunnels.of_flow =
      Array.mapi (fun i l -> l @ t.new_of_flow.(i)) base.Tunnels.of_flow;
  }

let num_new t = Array.length t.new_tunnels

let is_new t tid = tid >= Array.length t.base.Tunnels.tunnels
