lib/net/tunnels.mli: Routing Topology
