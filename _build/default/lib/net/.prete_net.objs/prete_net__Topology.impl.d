lib/net/topology.ml: Array Format List Printf String
