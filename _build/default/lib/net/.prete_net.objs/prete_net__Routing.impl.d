lib/net/routing.ml: Array Hashtbl List Topology
