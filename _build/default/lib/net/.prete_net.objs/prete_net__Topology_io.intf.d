lib/net/topology_io.mli: Topology
