lib/net/tunnels.ml: Array Hashtbl List Printf Routing Seq Topology
