lib/net/topology_io.ml: Array Buffer Fun List Printf String Topology
