lib/net/traffic.mli: Topology
