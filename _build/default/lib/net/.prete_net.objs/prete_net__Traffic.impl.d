lib/net/traffic.ml: Array Float List Prete_util Routing Topology
