type flow = { flow_id : int; src : Topology.node; dst : Topology.node }

type tunnel = { tunnel_id : int; owner : int; links : Routing.path }

type t = {
  topo : Topology.t;
  flows : flow array;
  tunnels : tunnel array;
  of_flow : int list array;
}

let build ?(per_flow = 4) topo pairs =
  if per_flow <= 0 then invalid_arg "Tunnels.build: per_flow must be positive";
  let flows =
    Array.of_list (List.mapi (fun i (src, dst) -> { flow_id = i; src; dst }) pairs)
  in
  let tunnels = ref [] in
  let of_flow = Array.make (Array.length flows) [] in
  let next_id = ref 0 in
  (* Fibers whose cut would leave the chosen set with no survivor even
     though a surviving path exists in the topology (§4.2 requires at
     least one residual tunnel under every failure scenario). *)
  let black_holes f chosen =
    let nf = Topology.num_fibers topo in
    let rec scan fid acc =
      if fid = nf then List.rev acc
      else
        let all_use =
          chosen <> []
          && List.for_all (fun p -> Routing.uses_fiber topo p fid) chosen
        in
        if all_use then begin
          let forbidden_links lid =
            List.mem fid (Topology.link topo lid).Topology.fibers
          in
          match
            Routing.shortest_path topo ~forbidden_links ~src:f.src ~dst:f.dst ()
          with
          | Some repair -> scan (fid + 1) ((fid, repair) :: acc)
          | None -> scan (fid + 1) acc
        end
        else scan (fid + 1) acc
    in
    scan 0 []
  in
  Array.iter
    (fun f ->
      let disjoint =
        Routing.fiber_disjoint topo ~k:per_flow ~src:f.src ~dst:f.dst ()
      in
      let shortest =
        Routing.k_shortest topo ~k:(2 * per_flow) ~src:f.src ~dst:f.dst ()
      in
      let dedup ps =
        let seen = ref [] in
        List.filter
          (fun p ->
            if List.mem p !seen then false
            else begin
              seen := p :: !seen;
              true
            end)
          ps
      in
      let candidates = dedup (disjoint @ shortest) in
      let base = List.filteri (fun i _ -> i < per_flow) candidates in
      (* Repair pass: append paths restoring coverage of black-hole
         fibers.  Adding a tunnel can only shrink the black-hole set, so
         the loop terminates within [num_fibers] rounds; a few flows may
         end up with slightly more than [per_flow] tunnels, which is the
         price of the §4.2 residual-tunnel guarantee. *)
      let rec repair chosen budget =
        if budget = 0 then chosen
        else
          match black_holes f chosen with
          | [] -> chosen
          | (_, repair_path) :: _ ->
            if List.mem repair_path chosen then chosen
            else repair (chosen @ [ repair_path ]) (budget - 1)
      in
      let paths = dedup (repair base (Topology.num_fibers topo)) in
      if paths = [] then
        invalid_arg
          (Printf.sprintf "Tunnels.build: no path for flow %d (%d -> %d)"
             f.flow_id f.src f.dst);
      List.iter
        (fun p ->
          let id = !next_id in
          incr next_id;
          tunnels := { tunnel_id = id; owner = f.flow_id; links = p } :: !tunnels;
          of_flow.(f.flow_id) <- id :: of_flow.(f.flow_id))
        paths)
    flows;
  Array.iteri (fun i l -> of_flow.(i) <- List.rev l) of_flow;
  { topo; flows; tunnels = Array.of_list (List.rev !tunnels); of_flow }

let tunnels_of_flow t fid =
  if fid < 0 || fid >= Array.length t.flows then
    invalid_arg "Tunnels.tunnels_of_flow: out of range";
  List.map (fun tid -> t.tunnels.(tid)) t.of_flow.(fid)

let tunnel_survives t tunnel ~failed_fibers =
  not
    (List.exists
       (fun f -> Routing.uses_fiber t.topo tunnel.links f)
       failed_fibers)

let tunnels_through_fiber t fid =
  Array.to_list
    (Array.of_seq
       (Seq.filter
          (fun tn -> Routing.uses_fiber t.topo tn.links fid)
          (Array.to_seq t.tunnels)))

let flows_affected_by_cut t fid =
  let affected = Hashtbl.create 16 in
  List.iter
    (fun tn -> Hashtbl.replace affected tn.owner ())
    (tunnels_through_fiber t fid);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) affected [])

let affected_fraction t fid =
  let n_flows = Array.length t.flows and n_tunnels = Array.length t.tunnels in
  if n_flows = 0 || n_tunnels = 0 then (0.0, 0.0)
  else
    let af = List.length (flows_affected_by_cut t fid) in
    let at = List.length (tunnels_through_fiber t fid) in
    (float_of_int af /. float_of_int n_flows, float_of_int at /. float_of_int n_tunnels)

let surviving_tunnels t fid ~failed_fibers =
  List.filter (fun tn -> tunnel_survives t tn ~failed_fibers) (tunnels_of_flow t fid)
