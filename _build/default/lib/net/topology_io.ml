exception Parse_error of int * string

let to_string (t : Topology.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "topology %s\n" t.Topology.name);
  Array.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "node %s\n" n))
    t.Topology.node_names;
  Array.iter
    (fun (f : Topology.fiber) ->
      let a, b = f.Topology.endpoints in
      Buffer.add_string buf
        (Printf.sprintf "fiber %s %s %g\n" t.Topology.node_names.(a)
           t.Topology.node_names.(b) f.Topology.length_km))
    t.Topology.fibers;
  Array.iter
    (fun (l : Topology.link) ->
      Buffer.add_string buf
        (Printf.sprintf "link %s %s %g %s\n" t.Topology.node_names.(l.Topology.src)
           t.Topology.node_names.(l.Topology.dst) l.Topology.capacity
           (String.concat " " (List.map string_of_int l.Topology.fibers))))
    t.Topology.links;
  Buffer.contents buf

let of_string text =
  let name = ref None in
  let nodes = ref [] in
  (* reversed *)
  let fibers = ref [] in
  let links = ref [] in
  let node_index nm lineno =
    let rec find i = function
      | [] -> raise (Parse_error (lineno, "unknown node " ^ nm))
      | x :: _ when x = nm -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 (List.rev !nodes)
  in
  let float_of s lineno what =
    match float_of_string_opt s with
    | Some v -> v
    | None -> raise (Parse_error (lineno, "bad " ^ what ^ ": " ^ s))
  in
  let int_of s lineno what =
    match int_of_string_opt s with
    | Some v -> v
    | None -> raise (Parse_error (lineno, "bad " ^ what ^ ": " ^ s))
  in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         let line =
           match String.index_opt line '#' with
           | Some j -> String.sub line 0 j
           | None -> line
         in
         let words =
           String.split_on_char ' ' line
           |> List.filter (fun w -> String.trim w <> "")
           |> List.map String.trim
         in
         match words with
         | [] -> ()
         | [ "topology"; n ] ->
           if !name <> None then raise (Parse_error (lineno, "duplicate topology line"));
           name := Some n
         | [ "node"; n ] ->
           if List.mem n !nodes then raise (Parse_error (lineno, "duplicate node " ^ n));
           nodes := n :: !nodes
         | [ "fiber"; a; b; km ] ->
           fibers :=
             (node_index a lineno, node_index b lineno, float_of km lineno "length")
             :: !fibers
         | "link" :: src :: dst :: cap :: (_ :: _ as fids) ->
           let fiber_count = List.length !fibers in
           let fids =
             List.map
               (fun s ->
                 let f = int_of s lineno "fiber index" in
                 if f < 0 || f >= fiber_count then
                   raise (Parse_error (lineno, "fiber index out of range: " ^ s));
                 f)
               fids
           in
           links :=
             (node_index src lineno, node_index dst lineno, float_of cap lineno "capacity", fids)
             :: !links
         | keyword :: _ -> raise (Parse_error (lineno, "unrecognized line: " ^ keyword)));
  let name =
    match !name with
    | Some n -> n
    | None -> raise (Parse_error (0, "missing 'topology <name>' line"))
  in
  Topology.make ~name
    ~node_names:(Array.of_list (List.rev !nodes))
    ~fibers:(Array.of_list (List.rev !fibers))
    ~links:(Array.of_list (List.rev !links))

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
