type path = int list

let path_nodes topo = function
  | [] -> invalid_arg "Routing.path_nodes: empty path"
  | first :: _ as links ->
    let src = (Topology.link topo first).Topology.src in
    let rec walk at = function
      | [] -> []
      | lid :: rest ->
        let l = Topology.link topo lid in
        if l.Topology.src <> at then
          invalid_arg "Routing.path_nodes: disconnected link sequence";
        l.Topology.dst :: walk l.Topology.dst rest
    in
    src :: walk src links

let path_fibers topo links =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun lid ->
      List.filter_map
        (fun f ->
          if Hashtbl.mem seen f then None
          else begin
            Hashtbl.add seen f ();
            Some f
          end)
        (Topology.link topo lid).Topology.fibers)
    links

let path_length_km topo links =
  List.fold_left
    (fun acc f -> acc +. (Topology.fiber topo f).Topology.length_km)
    0.0
    (path_fibers topo links)

let path_valid topo ~src ~dst path =
  match path with
  | [] -> false
  | _ -> (
    try
      let nodes = path_nodes topo path in
      let rec no_repeat seen = function
        | [] -> true
        | n :: rest -> (not (List.mem n seen)) && no_repeat (n :: seen) rest
      in
      List.hd nodes = src
      && List.nth nodes (List.length nodes - 1) = dst
      && no_repeat [] nodes
    with Invalid_argument _ -> false)

let uses_link path lid = List.mem lid path

let uses_fiber topo path fid = List.mem fid (path_fibers topo path)

let default_weight topo (l : Topology.link) =
  List.fold_left
    (fun acc f -> acc +. (Topology.fiber topo f).Topology.length_km)
    50.0 l.Topology.fibers

let shortest_path topo ?weight ?(forbidden_links = fun _ -> false)
    ?(forbidden_nodes = fun _ -> false) ~src ~dst () =
  let weight = match weight with Some w -> w | None -> default_weight topo in
  let n = topo.Topology.num_nodes in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Routing.shortest_path: node out of range";
  if src = dst then invalid_arg "Routing.shortest_path: src = dst";
  let dist = Array.make n infinity in
  let via = Array.make n (-1) in
  (* link id used to reach each node *)
  let visited = Array.make n false in
  dist.(src) <- 0.0;
  let exception Done in
  (try
     for _ = 1 to n do
       (* O(V^2) scan: topologies are tens of nodes. *)
       let u = ref (-1) in
       for v = 0 to n - 1 do
         if (not visited.(v)) && dist.(v) < infinity
            && (!u = -1 || dist.(v) < dist.(!u))
         then u := v
       done;
       if !u = -1 then raise Done;
       let u = !u in
       if u = dst then raise Done;
       visited.(u) <- true;
       List.iter
         (fun (lid, v) ->
           if
             (not visited.(v))
             && (not (forbidden_links lid))
             && not (forbidden_nodes v)
           then begin
             let l = Topology.link topo lid in
             let d = dist.(u) +. weight l in
             if d < dist.(v) then begin
               dist.(v) <- d;
               via.(v) <- lid
             end
           end)
         (Topology.neighbors topo u)
     done
   with Done -> ());
  if dist.(dst) = infinity then None
  else begin
    let rec back v acc =
      if v = src then acc
      else
        let lid = via.(v) in
        back (Topology.link topo lid).Topology.src (lid :: acc)
    in
    Some (back dst [])
  end

let path_cost topo weight p =
  List.fold_left (fun acc lid -> acc +. weight (Topology.link topo lid)) 0.0 p

let k_shortest topo ?weight ~k ~src ~dst () =
  let weight = match weight with Some w -> w | None -> default_weight topo in
  if k <= 0 then invalid_arg "Routing.k_shortest: k must be positive";
  match shortest_path topo ~weight ~src ~dst () with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    let candidates = ref [] in
    (* Candidates are (cost, path), kept sorted ascending on insertion. *)
    let add_candidate p =
      if
        (not (List.mem p !accepted))
        && not (List.exists (fun (_, q) -> q = p) !candidates)
      then begin
        let c = path_cost topo weight p in
        let rec insert = function
          | [] -> [ (c, p) ]
          | (c', _) :: _ as l when c < c' -> (c, p) :: l
          | x :: rest -> x :: insert rest
        in
        candidates := insert !candidates
      end
    in
    (try
       while List.length !accepted < k do
         let prev = List.hd !accepted in
         let prev_nodes = Array.of_list (path_nodes topo prev) in
         let prev_links = Array.of_list prev in
         for i = 0 to Array.length prev_links - 1 do
           let spur_node = prev_nodes.(i) in
           let root = Array.to_list (Array.sub prev_links 0 i) in
           (* Links leaving the spur node that any accepted path with the
              same root uses must be removed. *)
           let removed_links =
             List.filter_map
               (fun p ->
                 let pl = Array.of_list p in
                 if Array.length pl > i && Array.to_list (Array.sub pl 0 i) = root
                 then Some pl.(i)
                 else None)
               !accepted
           in
           (* Root nodes (except the spur) are forbidden for looplessness. *)
           let root_nodes = Array.to_list (Array.sub prev_nodes 0 i) in
           let spur =
             shortest_path topo ~weight
               ~forbidden_links:(fun lid -> List.mem lid removed_links)
               ~forbidden_nodes:(fun v -> List.mem v root_nodes)
               ~src:spur_node ~dst ()
           in
           match spur with
           | Some sp -> add_candidate (root @ sp)
           | None -> ()
         done;
         match !candidates with
         | [] -> raise Exit
         | (_, best) :: rest ->
           candidates := rest;
           accepted := best :: !accepted
       done
     with Exit -> ());
    (* [accepted] is reverse-ordered (best last) because we cons. *)
    List.rev !accepted

let fiber_disjoint topo ?weight ~k ~src ~dst () =
  let weight = match weight with Some w -> w | None -> default_weight topo in
  if k <= 0 then invalid_arg "Routing.fiber_disjoint: k must be positive";
  let used_fibers = Hashtbl.create 16 in
  let rec loop acc remaining =
    if remaining = 0 then List.rev acc
    else
      let forbidden_links lid =
        List.exists
          (fun f -> Hashtbl.mem used_fibers f)
          (Topology.link topo lid).Topology.fibers
      in
      match shortest_path topo ~weight ~forbidden_links ~src ~dst () with
      | None -> List.rev acc
      | Some p ->
        List.iter (fun f -> Hashtbl.replace used_fibers f ()) (path_fibers topo p);
        loop (p :: acc) (remaining - 1)
  in
  loop [] k
