type t = {
  pairs : (Topology.node * Topology.node) list;
  base : float array;
  matrices : float array array;
}

(* Deterministic site weight: larger sites generate more traffic. *)
let site_weight i = 1.0 +. float_of_int ((i * 37) mod 13)

let diurnal_multiplier hour =
  let h = ((hour mod 24) + 24) mod 24 in
  (* Cosine profile peaking at 21:00, trough at 09:00: values in [0.6, 1]. *)
  0.8 +. (0.2 *. cos (2.0 *. Float.pi *. float_of_int (h - 21) /. 24.0))

let default_num_flows topo =
  match topo.Topology.name with
  | "B4" -> 52
  | "IBM" -> 85
  | "TWAN" -> 25
  | _ -> min 50 (topo.Topology.num_nodes * (topo.Topology.num_nodes - 1) / 2)

let generate ?num_flows ?(utilization = 0.75) topo =
  let num_flows =
    match num_flows with Some n -> n | None -> default_num_flows topo
  in
  if num_flows <= 0 then invalid_arg "Traffic.generate: num_flows must be positive";
  let n = topo.Topology.num_nodes in
  (* All ordered pairs ranked by gravity weight, deterministically
     tie-broken by pair index. *)
  let scored = ref [] in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then
        scored := (site_weight s *. site_weight d, (s, d)) :: !scored
    done
  done;
  let ranked =
    List.sort
      (fun (w1, p1) (w2, p2) -> match compare w2 w1 with 0 -> compare p1 p2 | c -> c)
      !scored
  in
  let chosen = List.filteri (fun i _ -> i < num_flows) ranked in
  if List.length chosen < num_flows then
    invalid_arg "Traffic.generate: not enough node pairs";
  let pairs = List.map snd chosen in
  let raw = Array.of_list (List.map fst chosen) in
  (* Calibrate: route each flow on its shortest path, find the busiest
     link load per unit of total demand, then scale to the target
     utilization. *)
  let link_load = Array.make (Topology.num_links topo) 0.0 in
  List.iteri
    (fun i (s, d) ->
      match Routing.shortest_path topo ~src:s ~dst:d () with
      | None -> invalid_arg "Traffic.generate: disconnected pair"
      | Some p -> List.iter (fun lid -> link_load.(lid) <- link_load.(lid) +. raw.(i)) p)
    pairs;
  let worst = ref 0.0 in
  Array.iteri
    (fun lid load ->
      let u = load /. (Topology.link topo lid).Topology.capacity in
      if u > !worst then worst := u)
    link_load;
  let factor = if !worst > 0.0 then utilization /. !worst else 1.0 in
  let base = Array.map (fun w -> w *. factor) raw in
  let matrices =
    Array.init 24 (fun h -> Array.map (fun b -> b *. diurnal_multiplier h) base)
  in
  { pairs; base; matrices }

let demand t ~scale ~epoch =
  if scale < 0.0 then invalid_arg "Traffic.demand: negative scale";
  let m = t.matrices.(((epoch mod 24) + 24) mod 24) in
  Array.map (fun d -> d *. scale) m

let total t ~scale ~epoch = Prete_util.Stats.sum (demand t ~scale ~epoch)
