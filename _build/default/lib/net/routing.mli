(** Path computation over {!Topology}.

    Provides the two tunnel-routing algorithms the paper uses (§4.2):
    k-shortest-path routing (Yen's algorithm) and fiber-disjoint routing
    (successive shortest paths with fiber exclusion).  Paths are lists of
    directed link ids from source to destination. *)

type path = int list
(** Directed link ids, in traversal order. *)

val path_nodes : Topology.t -> path -> Topology.node list
(** Nodes visited, source first.  Raises [Invalid_argument] on a
    disconnected or empty link sequence. *)

val path_fibers : Topology.t -> path -> int list
(** Deduplicated fiber ids traversed by the path. *)

val path_length_km : Topology.t -> path -> float

val path_valid : Topology.t -> src:Topology.node -> dst:Topology.node -> path -> bool
(** True when the links chain from [src] to [dst] without repeating a node. *)

val uses_link : path -> int -> bool
val uses_fiber : Topology.t -> path -> int -> bool

val shortest_path :
  Topology.t ->
  ?weight:(Topology.link -> float) ->
  ?forbidden_links:(int -> bool) ->
  ?forbidden_nodes:(Topology.node -> bool) ->
  src:Topology.node ->
  dst:Topology.node ->
  unit ->
  path option
(** Dijkstra.  Default weight is fiber length in km (+ a small hop cost so
    hop count tie-breaks).  [forbidden_*] prune the graph. *)

val k_shortest :
  Topology.t ->
  ?weight:(Topology.link -> float) ->
  k:int ->
  src:Topology.node ->
  dst:Topology.node ->
  unit ->
  path list
(** Yen's k-shortest loopless paths, ascending length; fewer than [k] when
    the graph runs out of distinct paths. *)

val fiber_disjoint :
  Topology.t ->
  ?weight:(Topology.link -> float) ->
  k:int ->
  src:Topology.node ->
  dst:Topology.node ->
  unit ->
  path list
(** Greedy fiber-disjoint paths: each successive shortest path avoids every
    fiber used by the previous ones.  Consecutive results share no fiber
    (hence survive any single cut that kills an earlier one). *)
