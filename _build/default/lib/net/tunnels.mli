(** Flows (source–destination site pairs) and their tunnel sets.

    A TE policy routes each flow over a small set of pre-established tunnels
    (4 per flow in Table 3), built with both k-shortest-path and
    fiber-disjoint routing (§4.2 "Tunnel initialization").  The module also
    answers the reachability questions Algorithm 1 and the availability
    evaluation need: which tunnels traverse a fiber, which flows a cut
    affects, and which tunnels survive a failure scenario. *)

type flow = { flow_id : int; src : Topology.node; dst : Topology.node }

type tunnel = {
  tunnel_id : int;
  owner : int;  (** Flow id. *)
  links : Routing.path;
}

type t = {
  topo : Topology.t;
  flows : flow array;
  tunnels : tunnel array;
  of_flow : int list array;  (** Tunnel ids per flow id. *)
}

val build : ?per_flow:int -> Topology.t -> (Topology.node * Topology.node) list -> t
(** [build topo pairs] creates one flow per pair and up to [per_flow]
    (default 4) tunnels each: fiber-disjoint paths first (availability
    under cuts), then k-shortest paths to fill, deduplicated.  Flows with
    no path raise [Invalid_argument]. *)

val tunnels_of_flow : t -> int -> tunnel list

val tunnel_survives : t -> tunnel -> failed_fibers:int list -> bool
(** A tunnel survives when it traverses none of the failed fibers. *)

val tunnels_through_fiber : t -> int -> tunnel list

val flows_affected_by_cut : t -> int -> int list
(** Flow ids owning at least one tunnel through the fiber. *)

val affected_fraction : t -> int -> float * float
(** [(flow_fraction, tunnel_fraction)] affected by cutting the fiber —
    the quantities of Fig. 1c. *)

val surviving_tunnels : t -> int -> failed_fibers:int list -> tunnel list
(** Surviving tunnels of a flow under a failure scenario. *)
