(** Plain-text serialization of topologies.

    A downstream user reproducing the paper on their own WAN needs to feed
    a custom topology in; this module defines a small line-oriented format
    and a strict parser for it.

    {v
    # comments and blank lines ignored
    topology <name>
    node <name>                      # nodes in id order
    fiber <a> <b> <length_km>        # by node name; fiber ids in order
    link <src> <dst> <capacity_gbps> <fiber> [<fiber> ...]
    v}

    Every [link] line declares one directed IP link; use two lines for a
    bidirectional pair.  Fibers are referenced by index (creation order).
    The parser reports the first offending line on error. *)

exception Parse_error of int * string
(** Line number (1-based) and description. *)

val to_string : Topology.t -> string
(** Serialize; [of_string (to_string t)] is structurally equal to [t] up
    to derived attributes. *)

val of_string : string -> Topology.t
(** Parse.  Raises {!Parse_error} on malformed input and
    [Invalid_argument] when the assembled topology fails
    {!Topology.make}'s validation. *)

val save : Topology.t -> string -> unit
(** [save t path] writes the serialized topology to a file. *)

val load : string -> Topology.t
(** [load path] reads and parses a topology file.  Raises [Sys_error] on
    I/O failure, {!Parse_error} on malformed content. *)
