module Weibull = struct
  type t = { shape : float; scale : float }

  let create ~shape ~scale =
    if shape <= 0.0 || scale <= 0.0 then
      invalid_arg "Weibull.create: parameters must be positive";
    { shape; scale }

  let sample t rng =
    let rec positive () =
      let u = Rng.float rng in
      if u > 0.0 then u else positive ()
    in
    t.scale *. ((-.log (positive ())) ** (1.0 /. t.shape))

  let pdf t x =
    if x < 0.0 then 0.0
    else
      let z = x /. t.scale in
      t.shape /. t.scale
      *. (z ** (t.shape -. 1.0))
      *. exp (-.(z ** t.shape))

  let cdf t x = if x <= 0.0 then 0.0 else 1.0 -. exp (-.((x /. t.scale) ** t.shape))

  let quantile t p =
    if p < 0.0 || p >= 1.0 then invalid_arg "Weibull.quantile: p in [0,1)";
    t.scale *. ((-.log (1.0 -. p)) ** (1.0 /. t.shape))

  let mean t = t.scale *. Special.gamma (1.0 +. (1.0 /. t.shape))

  let variance t =
    let g1 = Special.gamma (1.0 +. (1.0 /. t.shape)) in
    let g2 = Special.gamma (1.0 +. (2.0 /. t.shape)) in
    t.scale *. t.scale *. (g2 -. (g1 *. g1))

  (* Profile-likelihood Newton iteration: solve
       f(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0
     then scale = (sum(x^k)/n)^(1/k). *)
  let fit_mle xs =
    let xs = Array.of_list (List.filter (fun x -> x > 0.0) (Array.to_list xs)) in
    let n = Array.length xs in
    if n < 2 then invalid_arg "Weibull.fit_mle: need at least two positive samples";
    let nf = float_of_int n in
    let mean_ln = Array.fold_left (fun a x -> a +. log x) 0.0 xs /. nf in
    let f k =
      let s = ref 0.0 and sl = ref 0.0 in
      Array.iter
        (fun x ->
          let xk = x ** k in
          s := !s +. xk;
          sl := !sl +. (xk *. log x))
        xs;
      (!sl /. !s) -. (1.0 /. k) -. mean_ln
    in
    (* Bisection: f is increasing in k; bracket then bisect for robustness. *)
    let lo = ref 1e-3 and hi = ref 1.0 in
    while f !hi < 0.0 && !hi < 1e3 do
      hi := !hi *. 2.0
    done;
    while f !lo > 0.0 && !lo > 1e-9 do
      lo := !lo /. 2.0
    done;
    for _ = 1 to 100 do
      let mid = 0.5 *. (!lo +. !hi) in
      if f mid < 0.0 then lo := mid else hi := mid
    done;
    let shape = 0.5 *. (!lo +. !hi) in
    let sum_xk = Array.fold_left (fun a x -> a +. (x ** shape)) 0.0 xs in
    let scale = (sum_xk /. nf) ** (1.0 /. shape) in
    { shape; scale }
end

module Exponential = struct
  let sample ~rate rng =
    if rate <= 0.0 then invalid_arg "Exponential.sample: rate must be positive";
    let rec positive () =
      let u = Rng.float rng in
      if u > 0.0 then u else positive ()
    in
    -.log (positive ()) /. rate

  let cdf ~rate x = if x <= 0.0 then 0.0 else 1.0 -. exp (-.rate *. x)
end

module Geometric = struct
  let sample ~p rng =
    if p <= 0.0 || p > 1.0 then invalid_arg "Geometric.sample: p in (0,1]";
    if p = 1.0 then 0
    else
      let rec positive () =
        let u = Rng.float rng in
        if u > 0.0 then u else positive ()
      in
      int_of_float (Float.floor (log (positive ()) /. log (1.0 -. p)))

  let pmf ~p k =
    if k < 0 then 0.0 else p *. ((1.0 -. p) ** float_of_int k)
end

module Poisson = struct
  let sample ~mean rng =
    if mean < 0.0 then invalid_arg "Poisson.sample: mean must be non-negative";
    if mean = 0.0 then 0
    else if mean < 30.0 then begin
      let limit = exp (-.mean) in
      let k = ref 0 and prod = ref (Rng.float rng) in
      while !prod > limit do
        incr k;
        prod := !prod *. Rng.float rng
      done;
      !k
    end
    else
      (* Normal approximation with continuity correction. *)
      let z = Rng.gaussian rng in
      max 0 (int_of_float (Float.round (mean +. (sqrt mean *. z))))
end

module Categorical = struct
  let sample ~weights rng =
    let total = Array.fold_left ( +. ) 0.0 weights in
    if total <= 0.0 then invalid_arg "Categorical.sample: total weight must be positive";
    let u = Rng.float rng *. total in
    let n = Array.length weights in
    let rec scan i acc =
      if i = n - 1 then i
      else
        let acc = acc +. weights.(i) in
        if u < acc then i else scan (i + 1) acc
    in
    scan 0 0.0
end

module Lognormal = struct
  let sample ~mu ~sigma rng = exp (mu +. (sigma *. Rng.gaussian rng))
end
