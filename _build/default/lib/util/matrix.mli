(** Dense row-major float matrices and vectors.

    This is the numeric substrate shared by the neural-network library
    (forward/backward passes) and parts of the LP solver.  Dimensions are
    checked on every operation; all raising operations raise
    [Invalid_argument] with the operation name. *)

type t
(** A dense matrix of floats. *)

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val identity : int -> t

val matmul : t -> t -> t
(** [matmul a b] with compatible inner dimensions. *)

val gemv : t -> float array -> float array
(** Matrix–vector product. *)

val transpose : t -> t
val map : (float -> float) -> t -> t
val mapi : (int -> int -> float -> float) -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val hadamard : t -> t -> t

val add_inplace : t -> t -> unit
(** [add_inplace acc x] accumulates [x] into [acc]. *)

val row : t -> int -> float array
val set_row : t -> int -> float array -> unit

val random : Rng.t -> int -> int -> float -> t
(** [random rng rows cols scale] has entries uniform in [\[-scale, scale\]]. *)

val frobenius : t -> float
(** Frobenius norm. *)

val sum : t -> float
val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Vector helpers used alongside matrices. *)
module Vec : sig
  val dot : float array -> float array -> float
  val add : float array -> float array -> float array
  val sub : float array -> float array -> float array
  val scale : float -> float array -> float array
  val norm2 : float array -> float
  val argmax : float array -> int
  val softmax : float array -> float array
  (** Numerically stable: shifts by the max before exponentiating. *)
end
