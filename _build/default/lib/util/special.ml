(* Lanczos approximation, g = 7, n = 9 coefficients (Godfrey). *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: requires x > 0";
  if x < 0.5 then
    (* Reflection: Γ(x)Γ(1-x) = π / sin(πx). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t
    +. log !a

let gamma x = exp (log_gamma x)

let max_iter = 500
let eps = 3e-15
let fpmin = 1e-300

(* Series expansion of P(a,x), valid and fast for x < a + 1. *)
let gamma_p_series a x =
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let del = ref !sum in
  let result = ref nan in
  (try
     for _ = 1 to max_iter do
       ap := !ap +. 1.0;
       del := !del *. x /. !ap;
       sum := !sum +. !del;
       if Float.abs !del < Float.abs !sum *. eps then begin
         result := !sum *. exp ((-.x) +. (a *. log x) -. log_gamma a);
         raise Exit
       end
     done;
     failwith "Special.gamma_p: series did not converge"
   with Exit -> ());
  !result

(* Log of Q(a,x) via Lentz continued fraction, valid for x >= a + 1. *)
let log_gamma_q_cf a x =
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  (try
     for i = 1 to max_iter do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.0;
       d := (an *. !d) +. !b;
       if Float.abs !d < fpmin then d := fpmin;
       c := !b +. (an /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < eps then raise Exit
     done;
     failwith "Special.gamma_q: continued fraction did not converge"
   with Exit -> ());
  (-.x) +. (a *. log x) -. log_gamma a +. log !h

let gamma_p a x =
  if a <= 0.0 || x < 0.0 then invalid_arg "Special.gamma_p: a > 0, x >= 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. exp (log_gamma_q_cf a x)

let gamma_q a x =
  if a <= 0.0 || x < 0.0 then invalid_arg "Special.gamma_q: a > 0, x >= 0";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else exp (log_gamma_q_cf a x)

let chi2_sf ~df x =
  if df <= 0 then invalid_arg "Special.chi2_sf: df must be positive";
  if x <= 0.0 then 1.0 else gamma_q (float_of_int df /. 2.0) (x /. 2.0)

let log_chi2_sf ~df x =
  if df <= 0 then invalid_arg "Special.log_chi2_sf: df must be positive";
  if x <= 0.0 then 0.0
  else
    let a = float_of_int df /. 2.0 and xh = x /. 2.0 in
    if xh < a +. 1.0 then log (1.0 -. gamma_p_series a xh)
    else log_gamma_q_cf a xh

(* Abramowitz & Stegun 7.1.26, max error 1.5e-7 — adequate for the few
   places an erf shows up (confidence intervals in reports). *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let a1 = 0.254829592 and a2 = -0.284496736 and a3 = 1.421413741 in
  let a4 = -1.453152027 and a5 = 1.061405429 in
  let poly = ((((a5 *. t +. a4) *. t +. a3) *. t +. a2) *. t +. a1) *. t in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))
