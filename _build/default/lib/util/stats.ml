let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let sum = Array.fold_left ( +. ) 0.0
let sumi = Array.fold_left ( + ) 0

let mean xs =
  check_nonempty "Stats.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    ss /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p in [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let median xs = percentile xs 50.0

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let ecdf xs =
  check_nonempty "Stats.ecdf" xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = float_of_int (Array.length sorted) in
  Array.mapi (fun i v -> (v, float_of_int (i + 1) /. n)) sorted

let cdf_at xs v =
  check_nonempty "Stats.cdf_at" xs;
  let c = Array.fold_left (fun a x -> if x <= v then a + 1 else a) 0 xs in
  float_of_int c /. float_of_int (Array.length xs)

let equal_width_bins ~bins ~lo ~hi v =
  if bins <= 0 then invalid_arg "Stats.equal_width_bins: bins must be positive";
  if hi <= lo then 0
  else
    let idx = int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int bins) in
    max 0 (min (bins - 1) idx)

let histogram ~bins xs =
  check_nonempty "Stats.histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo, hi = min_max xs in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = equal_width_bins ~bins ~lo ~hi x in
      counts.(i) <- counts.(i) + 1)
    xs;
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  Array.mapi
    (fun i c ->
      let l = lo +. (float_of_int i *. width) in
      (l, l +. width, c))
    counts

let pearson xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.pearson: length mismatch";
  check_nonempty "Stats.pearson" xs;
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let a = x -. mx and b = ys.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b))
    xs;
  if !dx = 0.0 || !dy = 0.0 then 0.0 else !num /. sqrt (!dx *. !dy)

let linear_fit xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.linear_fit: length mismatch";
  check_nonempty "Stats.linear_fit" xs;
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i x ->
      let a = x -. mx in
      num := !num +. (a *. (ys.(i) -. my));
      den := !den +. (a *. a))
    xs;
  let slope = if !den = 0.0 then 0.0 else !num /. !den in
  (slope, my -. (slope *. mx))

let normalize xs =
  check_nonempty "Stats.normalize" xs;
  let lo, hi = min_max xs in
  if hi = lo then Array.make (Array.length xs) 0.0
  else Array.map (fun x -> (x -. lo) /. (hi -. lo)) xs
