(** Chi-square hypothesis tests.

    PreTE (§3.1, §3.2, Appendix A.1) establishes the statistical
    relationship between fiber degradations and fiber cuts with a chi-square
    independence test over a 2×2 contingency table of 15-minute epochs, and
    validates each degradation feature with a chi-square test over
    equal-width bins of the feature value. *)

type result = {
  statistic : float;  (** Chi-square statistic. *)
  df : int;  (** Degrees of freedom. *)
  p_value : float;  (** Survival-function value; 0.0 on underflow. *)
  log10_p : float;  (** log10 of the p-value, finite even when
                        [p_value] underflows (Table 6 reports p < 1e-50). *)
}

val chi2_contingency : float array array -> result
(** Chi-square test of independence on an r×c table of observed counts
    (floats so normalized tables are accepted).  Expected counts are the
    usual product of marginals over the grand total.  Raises
    [Invalid_argument] on ragged or degenerate (zero marginal) tables. *)

val chi2_binned :
  bins:int -> values:float array -> outcomes:bool array -> result
(** Independence test between a continuous feature and a binary outcome:
    values are split into [bins] equal-width bins and a bins×2 contingency
    table of (bin, outcome) counts is tested.  Bins with no observations are
    dropped (reducing the degrees of freedom accordingly). *)

val reject : ?alpha:float -> result -> bool
(** [reject r] is [true] when the null hypothesis is rejected at
    significance [alpha] (default 0.01, the threshold used in the paper). *)
