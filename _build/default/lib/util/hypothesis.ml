type result = { statistic : float; df : int; p_value : float; log10_p : float }

let chi2_contingency table =
  let rows = Array.length table in
  if rows < 2 then invalid_arg "Hypothesis.chi2_contingency: need >= 2 rows";
  let cols = Array.length table.(0) in
  if cols < 2 then invalid_arg "Hypothesis.chi2_contingency: need >= 2 cols";
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Hypothesis.chi2_contingency: ragged table")
    table;
  let row_sum = Array.map Stats.sum table in
  let col_sum =
    Array.init cols (fun j ->
        Array.fold_left (fun acc row -> acc +. row.(j)) 0.0 table)
  in
  let total = Stats.sum row_sum in
  if total <= 0.0 then invalid_arg "Hypothesis.chi2_contingency: empty table";
  Array.iter
    (fun s ->
      if s <= 0.0 then
        invalid_arg "Hypothesis.chi2_contingency: zero marginal")
    row_sum;
  Array.iter
    (fun s ->
      if s <= 0.0 then
        invalid_arg "Hypothesis.chi2_contingency: zero marginal")
    col_sum;
  let stat = ref 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let expected = row_sum.(i) *. col_sum.(j) /. total in
      let d = table.(i).(j) -. expected in
      stat := !stat +. (d *. d /. expected)
    done
  done;
  let df = (rows - 1) * (cols - 1) in
  let p = Special.chi2_sf ~df !stat in
  let log10_p = Special.log_chi2_sf ~df !stat /. log 10.0 in
  { statistic = !stat; df; p_value = p; log10_p }

let chi2_binned ~bins ~values ~outcomes =
  if Array.length values <> Array.length outcomes then
    invalid_arg "Hypothesis.chi2_binned: length mismatch";
  if Array.length values = 0 then
    invalid_arg "Hypothesis.chi2_binned: empty data";
  let lo, hi = Stats.min_max values in
  let pos = Array.make bins 0.0 and neg = Array.make bins 0.0 in
  Array.iteri
    (fun i v ->
      let b = Stats.equal_width_bins ~bins ~lo ~hi v in
      if outcomes.(i) then pos.(b) <- pos.(b) +. 1.0
      else neg.(b) <- neg.(b) +. 1.0)
    values;
  (* Drop empty bins: they carry no information and break the expected
     counts. *)
  let rows = ref [] in
  for b = bins - 1 downto 0 do
    if pos.(b) +. neg.(b) > 0.0 then rows := [| pos.(b); neg.(b) |] :: !rows
  done;
  let table = Array.of_list !rows in
  if Array.length table < 2 then
    invalid_arg "Hypothesis.chi2_binned: all data in a single bin";
  (* Guard against a zero outcome-marginal (all-positive or all-negative
     datasets): the test is undefined there. *)
  chi2_contingency table

let reject ?(alpha = 0.01) r = r.p_value < alpha
