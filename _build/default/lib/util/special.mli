(** Special mathematical functions.

    Implemented from Numerical Recipes-style algorithms: Lanczos
    approximation for the log-gamma function, series and continued-fraction
    expansions for the regularized incomplete gamma function.  Accuracy is
    roughly 1e-12 relative over the ranges exercised by the statistics code
    (chi-square tails, Weibull moments). *)

val log_gamma : float -> float
(** [log_gamma x] for [x > 0]. *)

val gamma : float -> float
(** Gamma function, [exp (log_gamma x)] for [x > 0]. *)

val gamma_p : float -> float -> float
(** Regularized lower incomplete gamma [P(a, x) = γ(a,x)/Γ(a)],
    [a > 0], [x >= 0]. *)

val gamma_q : float -> float -> float
(** Regularized upper incomplete gamma [Q(a, x) = 1 - P(a, x)]. *)

val chi2_sf : df:int -> float -> float
(** [chi2_sf ~df x] is the survival function (p-value) of the chi-square
    distribution with [df] degrees of freedom at statistic [x]. *)

val erf : float -> float
(** Error function. *)

val log_chi2_sf : df:int -> float -> float
(** Natural log of {!chi2_sf}; usable when the p-value underflows
    (e.g. reporting "p < 1e-50" as the paper does). *)
