type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

(* Take the top 53 bits for a uniform double in [0,1). *)
let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low bits to avoid modulo bias. *)
  let mask =
    let rec grow m = if m >= n - 1 then m else grow ((m * 2) + 1) in
    grow 1
  in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (int64 t) (Int64.of_int mask)) in
    if v < n then v else draw ()
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t < p

let gaussian t =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))
