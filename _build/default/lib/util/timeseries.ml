type sample = { t : float; v : float }

let interpolate_missing xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Timeseries.interpolate_missing: empty";
  let present = ref [] in
  Array.iteri (fun i x -> match x with Some v -> present := (i, v) :: !present | None -> ()) xs;
  match List.rev !present with
  | [] -> invalid_arg "Timeseries.interpolate_missing: no samples present"
  | (first_i, first_v) :: _ as points ->
    let out = Array.make n 0.0 in
    (* Leading gap takes first value. *)
    for i = 0 to first_i do
      out.(i) <- first_v
    done;
    let rec fill = function
      | [] -> ()
      | [ (i, v) ] ->
        for j = i to n - 1 do
          out.(j) <- v
        done
      | (i0, v0) :: ((i1, v1) :: _ as rest) ->
        out.(i0) <- v0;
        let span = float_of_int (i1 - i0) in
        for j = i0 + 1 to i1 - 1 do
          let w = float_of_int (j - i0) /. span in
          out.(j) <- ((1.0 -. w) *. v0) +. (w *. v1)
        done;
        fill rest
    in
    fill points;
    out

let degree ~baseline seg =
  Array.fold_left (fun acc v -> Float.max acc (v -. baseline)) 0.0 seg

let mean_abs_gradient seg =
  let n = Array.length seg in
  if n < 2 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 1 to n - 1 do
      acc := !acc +. Float.abs (seg.(i) -. seg.(i - 1))
    done;
    !acc /. float_of_int (n - 1)
  end

let fluctuation_count ?(threshold = 0.01) seg =
  let n = Array.length seg in
  let count = ref 0 in
  for i = 1 to n - 1 do
    if Float.abs (seg.(i) -. seg.(i - 1)) > threshold then incr count
  done;
  !count

let downsample ~period xs =
  if period <= 0 then invalid_arg "Timeseries.downsample: period must be positive";
  let n = Array.length xs in
  let m = (n + period - 1) / period in
  Array.init m (fun k ->
      let i = k * period in
      { t = float_of_int i; v = xs.(i) })

let max_over_windows ~period xs =
  if period <= 0 then invalid_arg "Timeseries.max_over_windows: period must be positive";
  let n = Array.length xs in
  let m = (n + period - 1) / period in
  Array.init m (fun k ->
      let lo = k * period in
      let hi = min n (lo + period) in
      let acc = ref xs.(lo) in
      for i = lo + 1 to hi - 1 do
        acc := Float.max !acc xs.(i)
      done;
      !acc)

let moving_average ~window xs =
  if window < 1 then invalid_arg "Timeseries.moving_average: window >= 1";
  let n = Array.length xs in
  let half = window / 2 in
  Array.init n (fun i ->
      let lo = max 0 (i - half) and hi = min (n - 1) (i + half) in
      let acc = ref 0.0 in
      for j = lo to hi do
        acc := !acc +. xs.(j)
      done;
      !acc /. float_of_int (hi - lo + 1))
