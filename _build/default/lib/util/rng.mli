(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    splitmix64 (Steele et al., OOPSLA 2014): a 64-bit state advanced by a
    Weyl sequence and finalized with a variant of the MurmurHash3 mixer.  It
    is fast, has no measurable bias on the statistics we need, and — unlike
    [Stdlib.Random] — supports cheap independent substreams via {!split}. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Use one
    split per logical component so that adding draws in one component does
    not perturb another. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> float
(** Standard normal draw (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on
    an empty array. *)
