(** Time-series utilities over regularly sampled signals.

    Used by the optical-telemetry layer: per-second transmission-loss traces
    are interpolated (the paper notes fine-grained collection loses samples),
    degradation features are extracted from the degraded segment, and traces
    are downsampled to emulate coarse-grained legacy telemetry (Fig. 20a). *)

type sample = { t : float; v : float }
(** One sample: time in seconds, value (transmission loss, dB). *)

val interpolate_missing : float option array -> float array
(** Fill [None] gaps by linear interpolation between the nearest present
    neighbours; leading/trailing gaps take the nearest present value.
    Raises [Invalid_argument] when no sample is present at all. *)

val degree : baseline:float -> float array -> float
(** Loss change when entering the degraded state: maximum excursion of the
    segment above [baseline] (paper §3.2 "degree"). *)

val mean_abs_gradient : float array -> float
(** Mean absolute difference between adjacent samples (paper "gradient");
    0 for segments shorter than two samples. *)

val fluctuation_count : ?threshold:float -> float array -> int
(** Number of adjacent-sample changes larger than [threshold] in absolute
    value (default 0.01 dB, the paper's noise filter). *)

val downsample : period:int -> float array -> sample array
(** Keep one sample every [period] seconds (the value at the sampling
    instant, emulating polling), starting at index 0. *)

val max_over_windows : period:int -> float array -> float array
(** Maximum per consecutive window; an alternative aggregation used to
    check downsampling conclusions are not an artifact of point sampling. *)

val moving_average : window:int -> float array -> float array
(** Centered moving average with edge clamping; [window >= 1]. *)
