lib/util/matrix.mli: Format Rng
