lib/util/stats.mli:
