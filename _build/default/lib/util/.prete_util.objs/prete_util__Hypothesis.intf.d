lib/util/hypothesis.mli:
