lib/util/special.mli:
