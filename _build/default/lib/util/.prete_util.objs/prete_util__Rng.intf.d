lib/util/rng.mli:
