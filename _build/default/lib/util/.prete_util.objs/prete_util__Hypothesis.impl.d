lib/util/hypothesis.ml: Array Special Stats
