lib/util/timeseries.mli:
