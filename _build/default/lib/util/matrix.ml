type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: dims must be positive";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length a.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Matrix.of_arrays: ragged")
    a;
  init rows cols (fun i j -> a.(i).(j))

let rows m = m.rows
let cols m = m.cols

let to_arrays m =
  Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.set: out of bounds";
  m.data.((i * m.cols) + j) <- v

let copy m = { m with data = Array.copy m.data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.matmul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let gemv m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.gemv: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let map f m = { m with data = Array.map f m.data }

let mapi f m = init m.rows m.cols (fun i j -> f i j (get m i j))

let zip name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch");
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let add a b = zip "Matrix.add" ( +. ) a b
let sub a b = zip "Matrix.sub" ( -. ) a b
let hadamard a b = zip "Matrix.hadamard" ( *. ) a b
let scale s m = map (fun x -> s *. x) m

let add_inplace acc x =
  if acc.rows <> x.rows || acc.cols <> x.cols then
    invalid_arg "Matrix.add_inplace: dimension mismatch";
  for i = 0 to Array.length acc.data - 1 do
    acc.data.(i) <- acc.data.(i) +. x.data.(i)
  done

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.row: out of bounds";
  Array.sub m.data (i * m.cols) m.cols

let set_row m i v =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.set_row: out of bounds";
  if Array.length v <> m.cols then invalid_arg "Matrix.set_row: length mismatch";
  Array.blit v 0 m.data (i * m.cols) m.cols

let random rng rows cols scale =
  init rows cols (fun _ _ -> Rng.uniform rng (-.scale) scale)

let frobenius m =
  sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 m.data)

let sum m = Array.fold_left ( +. ) 0.0 m.data

let equal ?(eps = 1e-12) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "@[<h>";
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt "%10.4f " (get m i j)
    done;
    Format.fprintf fmt "@]@,"
  done;
  Format.fprintf fmt "@]"

module Vec = struct
  let check2 name a b =
    if Array.length a <> Array.length b then invalid_arg (name ^ ": length mismatch")

  let dot a b =
    check2 "Vec.dot" a b;
    let acc = ref 0.0 in
    Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
    !acc

  let add a b =
    check2 "Vec.add" a b;
    Array.mapi (fun i x -> x +. b.(i)) a

  let sub a b =
    check2 "Vec.sub" a b;
    Array.mapi (fun i x -> x -. b.(i)) a

  let scale s a = Array.map (fun x -> s *. x) a

  let norm2 a = sqrt (dot a a)

  let argmax a =
    if Array.length a = 0 then invalid_arg "Vec.argmax: empty";
    let best = ref 0 in
    Array.iteri (fun i x -> if x > a.(!best) then best := i) a;
    !best

  let softmax a =
    if Array.length a = 0 then invalid_arg "Vec.softmax: empty";
    let m = Array.fold_left Float.max a.(0) a in
    let e = Array.map (fun x -> exp (x -. m)) a in
    let s = Array.fold_left ( +. ) 0.0 e in
    Array.map (fun x -> x /. s) e
end
