(** Probability distributions: sampling, density, cumulative functions and
    simple fitting.

    The Weibull distribution is central to the PreTE reproduction: the paper
    (§6.1) generates per-fiber degradation probabilities from a
    Weibull(shape = 0.8, scale = 0.002) and derives failure probabilities
    through a linear degradation↔cut relationship. *)

module Weibull : sig
  type t = { shape : float; scale : float }

  val create : shape:float -> scale:float -> t
  (** Requires both parameters strictly positive. *)

  val sample : t -> Rng.t -> float
  (** Inverse-CDF sampling. *)

  val pdf : t -> float -> float
  val cdf : t -> float -> float

  val quantile : t -> float -> float
  (** [quantile t p] for [p] in [\[0, 1)]. *)

  val mean : t -> float
  val variance : t -> float

  val fit_mle : float array -> t
  (** Maximum-likelihood fit by Newton iteration on the profile likelihood
      of the shape parameter.  Requires at least two positive samples. *)
end

module Exponential : sig
  val sample : rate:float -> Rng.t -> float
  val cdf : rate:float -> float -> float
end

module Geometric : sig
  val sample : p:float -> Rng.t -> int
  (** Number of failures before the first success; support {0, 1, ...}. *)

  val pmf : p:float -> int -> float
end

module Poisson : sig
  val sample : mean:float -> Rng.t -> int
  (** Knuth multiplication method for small means, normal approximation
      with continuity correction for large means. *)
end

module Categorical : sig
  val sample : weights:float array -> Rng.t -> int
  (** Index drawn proportionally to non-negative [weights];
      requires a positive total. *)
end

module Lognormal : sig
  val sample : mu:float -> sigma:float -> Rng.t -> float
end
