(** Descriptive statistics, empirical CDFs, histograms and binning.

    These back every measurement-style figure in the reproduction
    (Figs. 1b, 4a, 5a, 6, 12b, 14, 19). *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val std : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation between
    order statistics.  Does not mutate its argument. *)

val median : float array -> float

val min_max : float array -> float * float

val ecdf : float array -> (float * float) array
(** Empirical CDF as sorted [(value, P(X <= value))] points. *)

val cdf_at : float array -> float -> float
(** [cdf_at xs v] is the empirical probability that a sample is [<= v]. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** Equal-width histogram over the data range;
    each cell is [(lo, hi, count)]. *)

val equal_width_bins : bins:int -> lo:float -> hi:float -> float -> int
(** Bin index of a value in an equal-width binning of [\[lo, hi\]];
    values outside the range are clamped to the first/last bin. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length arrays. *)

val linear_fit : float array -> float array -> float * float
(** Least-squares fit [y ≈ a·x + b]; returns [(a, b)]. *)

val normalize : float array -> float array
(** Min-max scale into [\[0, 1\]]; constant arrays map to all zeros. *)

val sum : float array -> float
val sumi : int array -> int
