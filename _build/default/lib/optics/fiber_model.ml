open Prete_util

type t = {
  alpha : float;
  mean_hazard : float;
  p_degrade : float array;
  p_cut : float array;
  p_unpredictable : float array;
}

let default_weibull = Dist.Weibull.create ~shape:0.8 ~scale:0.002

let mean_hazard_default = 0.4

let reference_alpha = 0.25

let generate ?(seed = 7) ?(weibull = default_weibull) ?(alpha = reference_alpha)
    ?(mean_hazard = mean_hazard_default) topo =
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Fiber_model.generate: alpha in [0,1]";
  if mean_hazard <= 0.0 || mean_hazard > 1.0 then
    invalid_arg "Fiber_model.generate: mean_hazard in (0,1]";
  let rng = Rng.create seed in
  let nf = Prete_net.Topology.num_fibers topo in
  let base = Array.init nf (fun _ -> Dist.Weibull.sample weibull rng) in
  (* Cap draws: the Weibull tail can exceed 1 in pathological draws. *)
  let base = Array.map (fun w -> Float.min 0.2 w) base in
  let slope = mean_hazard /. reference_alpha in
  let p_cut = Array.map (fun w -> Float.min 0.5 (slope *. w)) base in
  let p_degrade = Array.map (fun p -> Float.min 0.9 (alpha *. p /. mean_hazard)) p_cut in
  let p_unpredictable = Array.map (fun p -> (1.0 -. alpha) *. p) p_cut in
  { alpha; mean_hazard; p_degrade; p_cut; p_unpredictable }

let slope t = t.mean_hazard /. reference_alpha
