(** Ground-truth degradation→cut hazard model.

    The paper measures (Fig. 6) how the probability that a degrading fiber
    goes on to cut depends on four critical features — time of day, degree,
    gradient, fluctuation — plus intrinsic fiber attributes (fiber identity
    dominating, Table 8).  Since the production dataset is unavailable, this
    module {e defines} that dependence as the generative ground truth:

    - time of day: ≈60% at midnight falling to ≈20% at 6 am (unplanned
      human-intervention hypothesis), interpolated through the paper's
      anchor points;
    - degree: monotone increasing in the 3–10 dB degradation range;
    - gradient: small gradients (fiber aging) rarely cut;
    - fluctuation: frequent >0.01 dB swings raise the hazard;
    - fiber identity / region / vendor / length: a per-fiber multiplier
      that carries most of the signal.

    Factors combine multiplicatively around a base calibrated so the mean
    hazard over the feature distribution is ≈0.4 (the paper's "40% of
    degradations lead to cuts").  The learning stack (prete_ml) never sees
    this function — only sampled (features, outcome) pairs — so prediction
    error against the true hazard (Fig. 14) is meaningful. *)

type features = {
  fiber : int;
  region : int;
  vendor : int;
  length_km : float;
  time_of_day : float;  (** Hours, [0, 24). *)
  degree : float;  (** dB step into the degraded state, 3–10. *)
  gradient : float;  (** Mean |Δloss| between adjacent 1 Hz samples, dB. *)
  fluctuation : int;  (** Count of >0.01 dB adjacent changes. *)
  duration_s : float;  (** Degradation length, seconds. *)
}

val time_factor : float -> float
(** Failure proportion by hour (Fig. 6 "time" panel). *)

val degree_factor : float -> float
val gradient_factor : float -> float
val fluctuation_factor : int -> float

val fiber_factor : num_fibers:int -> int -> float
(** Per-fiber multiplier in [0.55, 1.45], deterministic in the fiber id. *)

val eval : num_fibers:int -> features -> float
(** True cut probability within the next TE period, clamped to
    [0.02, 0.98]. *)

val sample_features :
  Prete_util.Rng.t -> topo:Prete_net.Topology.t -> fiber:int -> epoch:int -> features
(** Draw a degradation event's features: time of day from the epoch (15-min
    epochs), degree uniform in 3–10 dB, gradient lognormal, fluctuation
    Poisson coupled to the gradient, duration lognormal with median 10 s
    (Fig. 4a). *)

val epoch_seconds : float
(** TE-period / measurement epoch length: 900 s (15-minute epochs, §2.1). *)
