(** Physical-layer SNR and FEC decodability model.

    §3.1 defines a degradation as a 3–10 dB transmission-loss rise that
    "observably affects the SNR in the physical layer, but the signal
    still supports ... error-free decoding", while a ≥10 dB rise (a cut)
    does not.  This module grounds those thresholds in the standard
    optical budget chain:

    - OSNR from the link budget: [OSNR ≈ 58 + P_tx − loss − NF] (dBm/dB,
      0.1 nm reference bandwidth, single amplified span);
    - Q factor from OSNR: [Q² (dB) = OSNR + 10·log10(2·B_ref / R_s)];
    - pre-FEC BER from Q: [BER = ½·erfc(Q/√2)];
    - decodable iff BER is below the SD-FEC limit (2e-2).

    With the transmit power set for a 10 dB margin over a fiber's healthy
    baseline loss ({!tx_power_for}), any degradation inside the paper's
    3–10 dB window still decodes and a ≥10 dB event does not — i.e. the
    OpTel-style telemetry thresholds used in {!Telemetry} fall out of the
    FEC limit rather than being assumed. *)

val osnr_db :
  tx_power_dbm:float -> loss_db:float -> ?noise_figure_db:float -> unit -> float
(** Single-span OSNR (dB, 0.1 nm RBW); noise figure defaults to 5 dB. *)

val q_squared_db : osnr_db:float -> ?symbol_rate_gbaud:float -> unit -> float
(** Q² in dB; symbol rate defaults to 32 GBaud (B_ref = 12.5 GHz). *)

val q_of_db : float -> float
(** Linear Q from Q² in dB. *)

val ber : q:float -> float
(** Pre-FEC bit-error rate ½·erfc(Q/√2). *)

val fec_limit : float
(** 2e-2, a typical soft-decision FEC threshold. *)

val decodable : ?limit:float -> ber:float -> unit -> bool

val tx_power_for : baseline_loss_db:float -> ?margin_db:float -> unit -> float
(** Transmit power giving exactly [margin_db] (default 10 dB) of extra
    loss tolerance above the healthy baseline before the FEC limit. *)

val loss_margin_db : tx_power_dbm:float -> baseline_loss_db:float -> float
(** How many dB of additional loss the channel tolerates before failing
    FEC, under the given launch power. *)

val trace_decodable : tx_power_dbm:float -> Telemetry.trace -> bool array
(** Per-sample decodability of a telemetry trace. *)
