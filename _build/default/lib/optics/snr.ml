(* Constants: 58 dB is 10 log10(h·ν·B_ref) referenced to 1 mW at 1550 nm
   with B_ref = 12.5 GHz (0.1 nm); the usual single-span OSNR shortcut. *)
let span_constant = 58.0
let default_noise_figure = 5.0
let default_symbol_rate = 32.0
let reference_bandwidth_ghz = 12.5

let osnr_db ~tx_power_dbm ~loss_db ?(noise_figure_db = default_noise_figure) () =
  span_constant +. tx_power_dbm -. loss_db -. noise_figure_db

let q_squared_db ~osnr_db ?(symbol_rate_gbaud = default_symbol_rate) () =
  if symbol_rate_gbaud <= 0.0 then invalid_arg "Snr.q_squared_db: symbol rate";
  osnr_db +. (10.0 *. log10 (2.0 *. reference_bandwidth_ghz /. symbol_rate_gbaud))

let q_of_db q2_db = 10.0 ** (q2_db /. 20.0)

let erfc x = 1.0 -. Prete_util.Special.erf x

let ber ~q = 0.5 *. erfc (q /. sqrt 2.0)

let fec_limit = 2e-2

let decodable ?(limit = fec_limit) ~ber:b () = b <= limit

(* Q at the FEC limit: solve ½ erfc(q/√2) = limit by bisection (erfc is
   monotone decreasing). *)
let q_at_fec_limit =
  lazy
    (let f q = ber ~q -. fec_limit in
     let lo = ref 0.0 and hi = ref 10.0 in
     for _ = 1 to 80 do
       let mid = 0.5 *. (!lo +. !hi) in
       if f mid > 0.0 then lo := mid else hi := mid
     done;
     0.5 *. (!lo +. !hi))

let osnr_at_fec_limit () =
  let q = Lazy.force q_at_fec_limit in
  (* Invert the q chain: Q²(dB) -> OSNR. *)
  (20.0 *. log10 q)
  -. (10.0 *. log10 (2.0 *. reference_bandwidth_ghz /. default_symbol_rate))

let tx_power_for ~baseline_loss_db ?(margin_db = 10.0) () =
  if margin_db < 0.0 then invalid_arg "Snr.tx_power_for: negative margin";
  (* At loss = baseline + margin we sit exactly at the FEC limit. *)
  osnr_at_fec_limit () -. span_constant +. default_noise_figure +. baseline_loss_db
  +. margin_db

let loss_margin_db ~tx_power_dbm ~baseline_loss_db =
  let limit_loss =
    span_constant +. tx_power_dbm -. default_noise_figure -. osnr_at_fec_limit ()
  in
  limit_loss -. baseline_loss_db

let trace_decodable ~tx_power_dbm (tr : Telemetry.trace) =
  Array.map
    (fun loss ->
      let o = osnr_db ~tx_power_dbm ~loss_db:loss () in
      let q = q_of_db (q_squared_db ~osnr_db:o ()) in
      decodable ~ber:(ber ~q) ())
    tr.Telemetry.samples
