lib/optics/snr.ml: Array Lazy Prete_util Telemetry
