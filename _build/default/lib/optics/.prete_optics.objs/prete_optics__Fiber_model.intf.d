lib/optics/fiber_model.mli: Prete_net Prete_util
