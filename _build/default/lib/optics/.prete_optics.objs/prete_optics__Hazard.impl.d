lib/optics/hazard.ml: Array Dist Float Prete_net Prete_util Rng
