lib/optics/hazard.mli: Prete_net Prete_util
