lib/optics/telemetry.ml: Array Dataset Float Hazard Prete_net Prete_util Rng Timeseries
