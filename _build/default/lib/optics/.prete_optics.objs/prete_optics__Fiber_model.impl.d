lib/optics/fiber_model.ml: Array Dist Float Prete_net Prete_util Rng
