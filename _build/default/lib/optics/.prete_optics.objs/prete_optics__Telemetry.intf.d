lib/optics/telemetry.mli: Dataset Hazard Prete_net
