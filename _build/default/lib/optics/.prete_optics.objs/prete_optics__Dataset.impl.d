lib/optics/dataset.ml: Array Dist Fiber_model Float Hashtbl Hazard List Prete_net Prete_util Rng
