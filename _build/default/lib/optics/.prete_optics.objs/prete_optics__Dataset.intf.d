lib/optics/dataset.mli: Fiber_model Hazard Prete_net
