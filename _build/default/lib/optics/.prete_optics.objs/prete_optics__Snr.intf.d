lib/optics/snr.mli: Telemetry
