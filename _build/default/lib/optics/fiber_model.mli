(** Per-fiber failure/degradation probability model (§6.1).

    For each fiber the paper draws a degradation probability from a
    Weibull(shape 0.8, scale 0.002) and derives the cut probability from
    the empirically linear degradation↔cut relationship (Fig. 12); 25% of
    cuts are preceded by a degradation (α).

    Parametrization used here (per 15-minute epoch, per fiber):

    - [w]: Weibull draw — the degradation probability at the empirical
      α = 25%;
    - cut probability [p_i = slope · w] with [slope = h̄ / α] where
      [h̄ ≈ 0.4] is the mean hazard ("40% of degradations cut");
    - for a configurable α (Fig. 20b sweeps), the degradation probability
      becomes [p_d = α · p_i / h̄] and the unpredictable-cut probability
      [p_u = (1 − α) · p_i], keeping the total cut probability invariant
      so availability comparisons across α are fair. *)

type t = {
  alpha : float;  (** Fraction of cuts preceded by a degradation. *)
  mean_hazard : float;  (** h̄, mean P(cut | degradation). *)
  p_degrade : float array;  (** Per-fiber degradation probability / epoch. *)
  p_cut : float array;  (** Per-fiber total cut probability / epoch. *)
  p_unpredictable : float array;  (** Cut probability with no preceding signal. *)
}

val default_weibull : Prete_util.Dist.Weibull.t
(** Weibull(shape = 0.8, scale = 0.002), the paper's §6.1 parameters. *)

val mean_hazard_default : float
(** 0.4. *)

val generate :
  ?seed:int ->
  ?weibull:Prete_util.Dist.Weibull.t ->
  ?alpha:float ->
  ?mean_hazard:float ->
  Prete_net.Topology.t ->
  t
(** Deterministic given [seed] (default 7).  [alpha] defaults to 0.25.
    Raises [Invalid_argument] for [alpha] outside [0, 1]. *)

val slope : t -> float
(** The linear coefficient relating cut to degradation counts at
    α = 25% ([h̄ / 0.25] = 1.6 with defaults, Fig. 12a). *)
