open Prete_util

type features = {
  fiber : int;
  region : int;
  vendor : int;
  length_km : float;
  time_of_day : float;
  degree : float;
  gradient : float;
  fluctuation : int;
  duration_s : float;
}

let epoch_seconds = 900.0

(* Piecewise-linear through the paper's Fig. 6 anchors:
   (0h, 0.60) (6h, 0.20) (12h, 0.35) (18h, 0.45) (24h, 0.60). *)
let time_anchors = [| (0.0, 0.60); (6.0, 0.20); (12.0, 0.35); (18.0, 0.45); (24.0, 0.60) |]

let time_factor h =
  let h = Float.rem (Float.rem h 24.0 +. 24.0) 24.0 in
  let n = Array.length time_anchors in
  let rec seg i =
    if i >= n - 1 then n - 2
    else
      let x0, _ = time_anchors.(i) and x1, _ = time_anchors.(i + 1) in
      if h >= x0 && h <= x1 then i else seg (i + 1)
  in
  let i = seg 0 in
  let x0, y0 = time_anchors.(i) and x1, y1 = time_anchors.(i + 1) in
  let w = (h -. x0) /. (x1 -. x0) in
  ((1.0 -. w) *. y0) +. (w *. y1)

(* Larger degradation degree -> higher hazard (Fig. 6 "degree"). *)
let degree_factor d =
  let d = Float.max 3.0 (Float.min 10.0 d) in
  0.20 +. (0.60 *. (d -. 3.0) /. 7.0)

(* Small gradients are slow aging, rarely cuts (Fig. 6 "gradient").
   Saturating rise over the typical 0..0.5 dB/sample range. *)
let gradient_factor g =
  let g = Float.max 0.0 g in
  0.15 +. (0.65 *. (1.0 -. exp (-6.0 *. g)))

(* Frequent fluctuations -> mechanical stress -> higher hazard. *)
let fluctuation_factor c =
  let c = float_of_int (max 0 c) in
  0.20 +. (0.60 *. (1.0 -. exp (-0.15 *. c)))

let fiber_factor ~num_fibers fid =
  if num_fibers <= 0 then invalid_arg "Hazard.fiber_factor: num_fibers";
  let fid = ((fid mod num_fibers) + num_fibers) mod num_fibers in
  (* Spread deterministically over [0.55, 1.45]. *)
  let u = float_of_int ((fid * 131) mod num_fibers) /. float_of_int (max 1 (num_fibers - 1)) in
  Float.min 1.45 (0.55 +. (0.9 *. u))

(* Minor intrinsic factors. *)
let region_factor r = 0.9 +. (0.1 *. float_of_int (r mod 3))
let vendor_factor v = 0.95 +. (0.05 *. float_of_int (v mod 4))
let length_factor km = 0.9 +. (0.2 *. Float.min 1.0 (km /. 3000.0))

(* Calibration constant chosen so the mean over sampled features is ~0.4:
   the geometric combination of factors (each averaging ~0.4) is
   re-centered multiplicatively. *)
let calibration = 9.6

(* Sharpening exponent: pushes the hazard away from 1/2 so outcomes are
   mostly determined by the features.  Without it the Bayes-optimal
   classifier tops out near 70% accuracy, well below the 81%
   precision/recall the paper's NN reaches on production data (Table 5) —
   i.e. real fiber behaviour is more feature-deterministic than a plain
   product of mild factors. *)
let sharpen gamma p =
  let a = p ** gamma and b = (1.0 -. p) ** gamma in
  a /. (a +. b)

let eval ~num_fibers f =
  let raw =
    calibration
    *. time_factor f.time_of_day
    *. degree_factor f.degree
    *. gradient_factor f.gradient
    *. fluctuation_factor f.fluctuation
    *. fiber_factor ~num_fibers f.fiber
    *. region_factor f.region
    *. vendor_factor f.vendor
    *. length_factor f.length_km
  in
  let clamped = Float.max 0.02 (Float.min 0.98 raw) in
  Float.max 0.02 (Float.min 0.98 (sharpen 2.2 clamped))

let sample_features rng ~topo ~fiber ~epoch =
  let fb = Prete_net.Topology.fiber topo fiber in
  (* 96 15-minute epochs per day. *)
  let hour_base = float_of_int (epoch mod 96) *. 0.25 in
  let time_of_day = Float.rem (hour_base +. Rng.uniform rng 0.0 0.25) 24.0 in
  let degree = Rng.uniform rng 3.0 10.0 in
  let gradient = Dist.Lognormal.sample ~mu:(log 0.08) ~sigma:1.0 rng in
  (* Fluctuation count tracks the gradient: jittery segments swing often. *)
  let fluctuation =
    Dist.Poisson.sample ~mean:(2.0 +. (30.0 *. Float.min 0.5 gradient)) rng
  in
  let duration_s = Dist.Lognormal.sample ~mu:(log 10.0) ~sigma:1.4 rng in
  {
    fiber;
    region = fb.Prete_net.Topology.region;
    vendor = fb.Prete_net.Topology.vendor;
    length_km = fb.Prete_net.Topology.length_km;
    time_of_day;
    degree;
    gradient;
    fluctuation;
    duration_s;
  }
