open Prete_util

type degradation = {
  d_fiber : int;
  d_epoch : int;
  features : Hazard.features;
  true_hazard : float;
  led_to_cut : bool;
  gap_to_cut_s : float;
}

type cut = { c_fiber : int; c_epoch : int; c_predictable : bool }

type t = {
  topo : Prete_net.Topology.t;
  model : Fiber_model.t;
  horizon_epochs : int;
  degradations : degradation array;
  cuts : cut array;
}

let epochs_per_day = 96

let generate ?(seed = 11) ?(horizon_days = 365) ?model topo =
  if horizon_days <= 0 then invalid_arg "Dataset.generate: horizon_days must be positive";
  let model =
    match model with Some m -> m | None -> Fiber_model.generate topo
  in
  let rng = Rng.create seed in
  let nf = Prete_net.Topology.num_fibers topo in
  let horizon_epochs = horizon_days * epochs_per_day in
  let degradations = ref [] and cuts = ref [] in
  let num_fibers = nf in
  for epoch = 0 to horizon_epochs - 1 do
    for fiber = 0 to nf - 1 do
      (* Degradation channel. *)
      if Rng.bernoulli rng model.Fiber_model.p_degrade.(fiber) then begin
        let features = Hazard.sample_features rng ~topo ~fiber ~epoch in
        let true_hazard = Hazard.eval ~num_fibers features in
        let led_to_cut = Rng.bernoulli rng true_hazard in
        let gap_to_cut_s =
          if led_to_cut then
            (* Cuts follow the degradation within the TE period: a
               lognormal delay with median 60 s, capped to the 5-minute
               predictability window the operators use (§3.1). *)
            Float.min 299.0 (Dist.Lognormal.sample ~mu:(log 60.0) ~sigma:0.9 rng)
          else infinity
        in
        degradations :=
          { d_fiber = fiber; d_epoch = epoch; features; true_hazard; led_to_cut; gap_to_cut_s }
          :: !degradations;
        if led_to_cut then
          cuts := { c_fiber = fiber; c_epoch = epoch; c_predictable = true } :: !cuts
      end;
      (* Independent unpredictable-cut channel. *)
      if Rng.bernoulli rng model.Fiber_model.p_unpredictable.(fiber) then
        cuts := { c_fiber = fiber; c_epoch = epoch; c_predictable = false } :: !cuts
    done
  done;
  {
    topo;
    model;
    horizon_epochs;
    degradations = Array.of_list (List.rev !degradations);
    cuts = Array.of_list (List.rev !cuts);
  }

let num_predictable t =
  Array.fold_left (fun acc c -> if c.c_predictable then acc + 1 else acc) 0 t.cuts

let predictable_fraction t =
  let n = Array.length t.cuts in
  if n = 0 then 0.0 else float_of_int (num_predictable t) /. float_of_int n

let hazard_fraction t =
  let n = Array.length t.degradations in
  if n = 0 then 0.0
  else
    let pos = Array.fold_left (fun a d -> if d.led_to_cut then a + 1 else a) 0 t.degradations in
    float_of_int pos /. float_of_int n

let gaps_to_next_cut t =
  (* Per fiber, merge-walk degradations against the sorted cut epochs. *)
  let nf = Prete_net.Topology.num_fibers t.topo in
  let cuts_of_fiber = Array.make nf [] in
  Array.iter
    (fun c -> cuts_of_fiber.(c.c_fiber) <- c.c_epoch :: cuts_of_fiber.(c.c_fiber))
    t.cuts;
  let cuts_of_fiber = Array.map (fun l -> Array.of_list (List.rev l)) cuts_of_fiber in
  let gaps = ref [] in
  Array.iter
    (fun d ->
      if d.led_to_cut then gaps := d.gap_to_cut_s :: !gaps
      else begin
        (* Next unrelated cut on the same fiber, if any. *)
        let cs = cuts_of_fiber.(d.d_fiber) in
        let rec find i =
          if i >= Array.length cs then None
          else if cs.(i) > d.d_epoch then Some cs.(i)
          else find (i + 1)
        in
        match find 0 with
        | Some e ->
          gaps := (float_of_int (e - d.d_epoch) *. Hazard.epoch_seconds) :: !gaps
        | None -> ()
      end)
    t.degradations;
  Array.of_list (List.rev !gaps)

let per_fiber_counts t =
  let nf = Prete_net.Topology.num_fibers t.topo in
  let d = Array.make nf 0 and c = Array.make nf 0 in
  Array.iter (fun x -> d.(x.d_fiber) <- d.(x.d_fiber) + 1) t.degradations;
  Array.iter (fun x -> c.(x.c_fiber) <- c.(x.c_fiber) + 1) t.cuts;
  Array.init nf (fun i -> (d.(i), c.(i)))

let epoch_contingency t =
  (* Count fiber-epochs by (failure?, degradation?).  Both events landing
     in the same epoch count in the joint cell — the Table 6 layout. *)
  let degr = Hashtbl.create 1024 and cut = Hashtbl.create 1024 in
  Array.iter (fun d -> Hashtbl.replace degr (d.d_fiber, d.d_epoch) ()) t.degradations;
  Array.iter (fun c -> Hashtbl.replace cut (c.c_fiber, c.c_epoch) ()) t.cuts;
  let both = ref 0 in
  Hashtbl.iter (fun k () -> if Hashtbl.mem cut k then incr both) degr;
  let nd = Hashtbl.length degr and ncut = Hashtbl.length cut in
  let nf = Prete_net.Topology.num_fibers t.topo in
  let total = nf * t.horizon_epochs in
  let fb = float_of_int !both in
  let f_cut_only = float_of_int (ncut - !both) in
  let f_degr_only = float_of_int (nd - !both) in
  let f_neither = float_of_int (total - nd - ncut + !both) in
  [| [| fb; f_cut_only |]; [| f_degr_only; f_neither |] |]

let feature_outcome t which =
  let values =
    Array.map
      (fun d ->
        match which with
        | `Time -> d.features.Hazard.time_of_day
        | `Degree -> d.features.Hazard.degree
        | `Gradient -> d.features.Hazard.gradient
        | `Fluctuation -> float_of_int d.features.Hazard.fluctuation)
      t.degradations
  in
  let outcomes = Array.map (fun d -> d.led_to_cut) t.degradations in
  (values, outcomes)

let durations t = Array.map (fun d -> d.features.Hazard.duration_s) t.degradations
