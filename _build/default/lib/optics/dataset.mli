(** Synthetic one-year optical event log (degradations and cuts).

    Stand-in for the paper's year of per-second production telemetry: a
    discrete-event simulation at 15-minute epoch granularity.  Per fiber and
    epoch, a degradation occurs with the fiber's [p_degrade]; its features
    are drawn by {!Hazard.sample_features} and it leads to a cut within the
    epoch with the ground-truth hazard probability.  Independently, an
    unpredictable cut occurs with [p_unpredictable].

    The log backs Figs. 4a, 5a, 5b, 6, 12 and Tables 1/6/7, and is the
    training corpus for the failure predictors (prete_ml). *)

type degradation = {
  d_fiber : int;
  d_epoch : int;
  features : Hazard.features;
  true_hazard : float;  (** Ground-truth P(cut | this event). *)
  led_to_cut : bool;
  gap_to_cut_s : float;  (** Degradation-start → cut delay (when
                             [led_to_cut]); [infinity] otherwise. *)
}

type cut = { c_fiber : int; c_epoch : int; c_predictable : bool }

type t = {
  topo : Prete_net.Topology.t;
  model : Fiber_model.t;
  horizon_epochs : int;
  degradations : degradation array;  (** Chronological. *)
  cuts : cut array;  (** Chronological. *)
}

val generate :
  ?seed:int -> ?horizon_days:int -> ?model:Fiber_model.t -> Prete_net.Topology.t -> t
(** Default: seed 11, 365 days (96 epochs/day), model from
    {!Fiber_model.generate} with defaults. *)

val num_predictable : t -> int

val predictable_fraction : t -> float
(** Empirical α: predictable cuts / all cuts (≈25%, Fig. 5b). *)

val hazard_fraction : t -> float
(** Empirical P(cut | degradation) (≈40%). *)

val gaps_to_next_cut : t -> float array
(** For each degradation, seconds to the next cut on the same fiber
    (related or not) — the Fig. 5a distribution.  Degradations never
    followed by a cut are omitted. *)

val per_fiber_counts : t -> (int * int) array
(** (degradations, cuts) per fiber — Fig. 12a's linear relationship. *)

val epoch_contingency : t -> float array array
(** 2×2 table of fiber-epochs: rows failure/no-failure, columns
    degradation/no-degradation — the Table 6 layout. *)

val feature_outcome :
  t -> [ `Time | `Degree | `Gradient | `Fluctuation ] -> float array * bool array
(** Feature values and cut outcomes across degradation events, for the
    Fig. 6 curves and Table 1 chi-square tests. *)

val durations : t -> float array
(** Degradation durations in seconds (Fig. 4a). *)
