open Prete_util

type state = Healthy | Degraded | Cut

let degradation_threshold = 3.0
let cut_threshold = 10.0

let baseline_loss topo fid =
  let f = Prete_net.Topology.fiber topo fid in
  (* Amplified line systems keep end-to-end loss modest; scale mildly with
     span length so fibers are distinguishable in plots. *)
  15.0 +. (f.Prete_net.Topology.length_km /. 500.0)

let classify ~baseline v =
  let d = v -. baseline in
  if d >= cut_threshold then Cut
  else if d >= degradation_threshold then Degraded
  else Healthy

type trace = { t0 : float; samples : float array; baseline : float }

let synthesize ?(seed = 3) ~baseline ~healthy_s ?degradation ?cut_at_s ~total_s () =
  if total_s <= 0 || healthy_s < 0 || healthy_s > total_s then
    invalid_arg "Telemetry.synthesize: bad segment lengths";
  (match cut_at_s with
  | Some c when c < 0 || c > total_s -> invalid_arg "Telemetry.synthesize: bad cut time"
  | _ -> ());
  let rng = Rng.create seed in
  let noise () = 0.02 *. Rng.gaussian rng in
  let samples = Array.make total_s 0.0 in
  for i = 0 to total_s - 1 do
    samples.(i) <- baseline +. noise ()
  done;
  (match degradation with
  | None -> ()
  | Some f ->
    let d_start = healthy_s in
    let d_len =
      let by_features = int_of_float (Float.ceil f.Hazard.duration_s) in
      let until_cut =
        match cut_at_s with Some c -> c - d_start | None -> total_s - d_start
      in
      max 1 (min by_features until_cut)
    in
    (* Degraded loss wanders around baseline + degree with excursions of
       the event's gradient scale; inject [fluctuation] larger swings. *)
    let level = f.Hazard.degree in
    for i = d_start to min (total_s - 1) (d_start + d_len - 1) do
      let wiggle = f.Hazard.gradient *. Rng.gaussian rng in
      samples.(i) <- baseline +. level +. wiggle +. noise ()
    done;
    let swings = f.Hazard.fluctuation in
    for _ = 1 to swings do
      let i = d_start + Rng.int rng (max 1 d_len) in
      if i < total_s then
        samples.(i) <- samples.(i) +. Rng.uniform rng (-1.5) 1.5
    done);
  (match cut_at_s with
  | None -> ()
  | Some c ->
    for i = c to total_s - 1 do
      samples.(i) <- baseline +. cut_threshold +. 8.0 +. noise ()
    done);
  { t0 = 0.0; samples; baseline }

let states tr = Array.map (classify ~baseline:tr.baseline) tr.samples

let observed_states ~granularity_s tr =
  if granularity_s <= 0 then invalid_arg "Telemetry.observed_states: granularity";
  let obs = Timeseries.downsample ~period:granularity_s tr.samples in
  Array.map
    (fun { Timeseries.t; v } -> (tr.t0 +. t, classify ~baseline:tr.baseline v))
    obs

let degradation_visible ~granularity_s tr =
  let obs = observed_states ~granularity_s tr in
  let rec scan i =
    if i >= Array.length obs then false
    else
      match snd obs.(i) with
      | Degraded -> true
      | Cut -> false
      | Healthy -> scan (i + 1)
  in
  scan 0

type fault =
  | Dropout of { start_s : int; len_s : int }
  | Stuck of { start_s : int; len_s : int }
  | Burst of { start_s : int; len_s : int; amp : float }

let corrupt ?(seed = 11) faults tr =
  let rng = Rng.create seed in
  let n = Array.length tr.samples in
  let samples = Array.copy tr.samples in
  let window start_s len_s =
    let lo = max 0 start_s in
    let hi = min (n - 1) (start_s + len_s - 1) in
    (lo, hi)
  in
  List.iter
    (fun fault ->
      match fault with
      | Dropout { start_s; len_s } ->
        let lo, hi = window start_s len_s in
        for i = lo to hi do
          (* No reading: downstream consumers see a clean baseline. *)
          samples.(i) <- tr.baseline
        done
      | Stuck { start_s; len_s } ->
        let lo, hi = window start_s len_s in
        let held = if lo > 0 then samples.(lo - 1) else tr.baseline in
        for i = lo to hi do
          samples.(i) <- held
        done
      | Burst { start_s; len_s; amp } ->
        let lo, hi = window start_s len_s in
        for i = lo to hi do
          samples.(i) <- samples.(i) +. (amp *. Rng.gaussian rng)
        done)
    faults;
  { tr with samples }

let coverage_occurrence ?(seed = 5) ~granularity_s ds =
  if granularity_s <= 0 then invalid_arg "Telemetry.coverage_occurrence: granularity";
  let rng = Rng.create seed in
  let g = float_of_int granularity_s in
  let detected = ref 0 in
  Array.iter
    (fun (d : Dataset.degradation) ->
      if d.Dataset.led_to_cut then begin
        (* The degradation is observable from its start until the cut (or
           its own end, whichever is first); the poller's phase is
           uniform in [0, g). *)
        let window =
          Float.min d.Dataset.features.Hazard.duration_s d.Dataset.gap_to_cut_s
        in
        let phase = Rng.uniform rng 0.0 g in
        (* A poll lands in [0, window) iff phase < window (mod g). *)
        let hits =
          if window >= g then true
          else
            phase < window
        in
        if hits then incr detected
      end)
    ds.Dataset.degradations;
  let n_cuts = Array.length ds.Dataset.cuts in
  let n_degr = Array.length ds.Dataset.degradations in
  let coverage = if n_cuts = 0 then 0.0 else float_of_int !detected /. float_of_int n_cuts in
  let occurrence =
    if n_degr = 0 then 0.0 else float_of_int !detected /. float_of_int n_degr
  in
  (coverage, occurrence)
