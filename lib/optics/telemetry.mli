(** Synthetic 1 Hz optical telemetry traces and granularity analysis.

    Reproduces the trace-level artifacts of the measurement study: the
    transmission-loss time series of Figs. 1a and 4b (healthy → degraded →
    cut), and the data-granularity experiment of Fig. 20a (coarse sampling
    misses the short-lived degradations that make cuts predictable).

    Conventions (after OpTel): a fiber's healthy transmission loss is its
    baseline; a {e degradation} raises loss by 3–10 dB (decodable but
    SNR-impaired); a {e cut} raises loss by ≥10 dB. *)

type state = Healthy | Degraded | Cut

val baseline_loss : Prete_net.Topology.t -> int -> float
(** Healthy transmission loss (dB) of a fiber, length-dependent. *)

val degradation_threshold : float
(** +3 dB over baseline. *)

val cut_threshold : float
(** +10 dB over baseline. *)

val classify : baseline:float -> float -> state

type trace = {
  t0 : float;  (** Start time (s). *)
  samples : float array;  (** 1 Hz loss samples (dB). *)
  baseline : float;
}

val synthesize :
  ?seed:int ->
  baseline:float ->
  healthy_s:int ->
  ?degradation:Hazard.features ->
  ?cut_at_s:int ->
  total_s:int ->
  unit ->
  trace
(** Build a trace: [healthy_s] seconds of noisy baseline; optionally a
    degradation segment whose degree/gradient/fluctuation follow the given
    features; optionally a cut at [cut_at_s] (loss jumps ≥10 dB for the
    remainder).  Total length [total_s]. *)

val states : trace -> state array
(** Per-second classification of the trace. *)

val observed_states : granularity_s:int -> trace -> (float * state) array
(** States visible when polling every [granularity_s] seconds — what a
    legacy minute-level telemetry system sees (Fig. 4b's black circles). *)

val degradation_visible : granularity_s:int -> trace -> bool
(** True when at least one polled sample lands in the degraded state
    before any cut sample. *)

type fault =
  | Dropout of { start_s : int; len_s : int }
      (** The monitor reports nothing; downstream sees baseline readings,
          masking whatever the fiber is actually doing. *)
  | Stuck of { start_s : int; len_s : int }
      (** Samples frozen at the last value before [start_s]. *)
  | Burst of { start_s : int; len_s : int; amp : float }
      (** Additive Gaussian noise of standard deviation [amp] dB. *)

val corrupt : ?seed:int -> fault list -> trace -> trace
(** Apply monitoring faults to a trace (fresh copy; the input is not
    mutated).  Windows are clamped to the trace; later faults in the
    list see the effect of earlier ones.  These are the trace-level
    analogues of the epoch-level fault classes in the core library's
    [Faults] module, used to test what {!classify} and
    {!degradation_visible} conclude from a faulty monitor. *)

val coverage_occurrence :
  ?seed:int -> granularity_s:int -> Dataset.t -> float * float
(** Monte-Carlo over the event log with a random polling phase per event:
    [(coverage, occurrence)] where coverage = detected predictable cuts /
    all cuts and occurrence = detected predictable cuts / all degradations
    (Fig. 20a).  A predictable cut is detected when a poll lands inside
    its degradation window before the cut instant. *)
