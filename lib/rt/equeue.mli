(** Deterministic discrete-event queue.

    A binary min-heap keyed by [(time, seq)]: events pop in time order,
    and events scheduled for the same time pop in insertion order (the
    sequence number is assigned by {!push}).  Time is a logical tick —
    the runtime never reads a wall clock in the hot path — so the pop
    order is a pure function of the push history. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:int -> 'a -> unit
(** Schedule an event.  [time] may be in the past relative to already
    popped events; the queue itself does not enforce monotonicity (the
    ingest layer decides what a late event means). *)

val pop : 'a t -> (int * 'a) option
(** Earliest [(time, event)], FIFO within a tick; [None] when empty. *)

val pop_until : 'a t -> time:int -> (int * 'a) list
(** Pop every event with time ≤ [time], in order. *)

val peek_time : 'a t -> int option
val length : 'a t -> int
val is_empty : 'a t -> bool
