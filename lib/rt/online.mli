(** Online sample ingest and O(1)-per-sample incremental feature
    extraction.

    Two guarantees, both exercised by the qcheck suite in [test_rt]:

    - {b Gap parity}: feeding the present samples of a trace (in any
      arrival order within the reorder horizon) and draining produces
      exactly the array {!Prete_util.Timeseries.interpolate_missing}
      computes from the same present/missing pattern — the same floats,
      not approximately.  Interior gaps use the identical lerp
      arithmetic between the nearest present neighbours; leading and
      trailing gaps take the nearest present value.
    - {b Feature parity}: an accumulator fed a segment's samples in
      timestamp order reports, at any point, exactly what the offline
      {!Prete_util.Timeseries} functions ([degree], [mean_abs_gradient],
      [fluctuation_count]) return on the prefix consumed so far — the
      accumulators replicate the offline folds' operation order, so
      equality is bit-exact, not within a tolerance. *)

(** {1 Incremental features} *)

type acc

val acc_create : ?fluct_threshold:float -> baseline:float -> unit -> acc
(** [fluct_threshold] defaults to the offline default (0.01 dB). *)

val acc_add : acc -> float -> unit
(** O(1). *)

val acc_count : acc -> int
(** Samples consumed — the segment duration in seconds at 1 Hz. *)

val degree : acc -> float
val mean_abs_gradient : acc -> float
val fluctuation_count : acc -> int

(** {1 Reorder-tolerant ingest with online gap interpolation}

    Per-fiber stream assembly: samples arrive tagged with their source
    timestamp, possibly late (bounded by [horizon] ticks), duplicated,
    or never (a gap).  {!drain} finalizes every timestamp at least
    [horizon] ticks behind the current tick — by then any genuine sample
    for it must have arrived — emitting present samples as-is and
    filling gaps by interpolating against the nearest present
    neighbours ({!Prete_util.Timeseries.interpolate_missing}'s exact
    arithmetic).  An interior gap is held until its right neighbour
    arrives; {!flush} closes the stream, filling a trailing gap with
    the last present value. *)

type ingest

val ingest_create : ?horizon:int -> unit -> ingest
(** [horizon] (default 3) is the maximum arrival delay in ticks;
    arrivals later than that are counted [late] and dropped. *)

val offer : ingest -> t:int -> v:float -> unit
(** Deliver a sample for source timestamp [t]. *)

val drain : ingest -> now:int -> (int * float) list
(** Finalized [(timestamp, value)] pairs in timestamp order, gaps
    filled.  Never emits a timestamp twice. *)

val flush : ingest -> upto:int -> (int * float) list
(** End of stream: finalize everything through timestamp [upto]
    (trailing gaps take the last present value).  Raises
    [Invalid_argument] if no sample was ever present. *)

val dups : ingest -> int
val late : ingest -> int
val filled : ingest -> int
(** Gap timestamps synthesized by interpolation so far. *)
