(** Fleet-scale sharded streaming runtime: regional shards over the
    domain pool, batched cross-shard re-solves, and explicit
    backpressure.

    {!Runtime.run} scores one sample path on one event loop, streaming
    only the fibers that degrade.  This engine is the fleet-scale
    counterpart: the topology is partitioned into connected fiber
    {e regions} (a seeded graph partition — {!partition}), and every
    region becomes a shard that owns its slice of the pipeline:

    - its own discrete-event queue ({!Equeue}) carrying the 1 Hz
      arrivals of {e all} its fibers — healthy fibers stream baseline
      telemetry too, which is what makes throughput a first-class
      quantity here;
    - its own {!Online} ingest and {!Detector} instance per fiber;
    - its own {!Predictor} server (same underlying model, per-shard
      serving stats) and its own structural plan cache — the shard's
      last-good reactive plans;
    - its own {!Metrics} registry and measured busy seconds.

    Shards run across the existing {!Prete_exec.Pool} as
    per-(epoch × shard) tasks with tick-barrier semantics: every
    shard's loop for epoch [e] completes before the merge stage
    consumes epoch [e], so the merged alarm stream is a pure function
    of the input, not of scheduling.

    {b Cross-shard coalescer.}  Alarms from all shards merge at the
    barrier in (tick, fiber) order and flow into one controller-side
    coalescer: alarms arriving while the controller is free launch a
    batched re-solve immediately (all same-tick alarms, across shards,
    in one solve reusing the warm-start plan cache); alarms arriving
    while it is busy — the modeled {!Prete.Controller.batch_latency}
    window — are staged in the per-shard reaction queues.  When the
    controller frees, the whole backlog coalesces into the next batch.

    {b Backpressure.}  The staging backlog is bounded by
    [config.queue_bound], enforced on the joint occupancy of the
    per-shard queues (so shedding is independent of the shard count —
    see the determinism note).  At the bound the configured
    {!Runtime.shed_policy} fires: [Drop_newest] rejects the arriving
    reaction, [Drop_oldest] evicts the oldest staged one.  Every shed
    reaction is counted ([shed] counter, ["shed"] ring event) and every
    reaction that waited at least one tick is counted as deferred —
    the accounting identity [alarms = debounced + shed + batched]
    ({!accounted}) is gated in the tests and the [stream_scale] bench.

    {b Determinism.}  The deterministic core is bit-identical at any
    (shards × domains) combination: fiber streams are drawn from
    per-(epoch, fiber) RNG substreams split in a fixed global order
    (never from a shard-local stream), the merge consumes shard outputs
    in (epoch, fiber) order behind the tick barrier, the coalescer sees
    the partition-independent merged alarm stream, plan-cache keys are
    target-salted so the per-shard caches partition the key space
    exactly as one global cache would, and the backlog bound is joint
    rather than per-queue.  Partition-{e dependent} quantities
    (per-shard tallies, cross-region batch counts, predictor swap
    totals, busy seconds) live in the per-shard registries and the aux
    registry, which the core excludes. *)

(** {1 Partitioning} *)

type partition = {
  pt_shards : int;  (** Regions actually built ([min shards num_fibers]). *)
  pt_seed : int;
  pt_region_of : int array;  (** Fiber id → region id. *)
  pt_regions : int array array;  (** Region id → sorted member fiber ids. *)
}

val partition : Prete_net.Topology.t -> shards:int -> seed:int -> partition
(** Seeded graph partition of the fiber set into [min shards num_fibers]
    regions — a pure function of (topology, shards, seed); no pool, no
    clock, no global state.  Seed fibers are picked by one RNG draw
    plus farthest-first spreading over the fiber-adjacency graph
    (fibers sharing an endpoint), then regions grow smallest-first,
    claiming the least unclaimed adjacent fiber, so sizes stay balanced
    while every region is connected (guaranteed on connected
    topologies — all built-in ones).  Raises [Invalid_argument] for
    non-positive [shards]. *)

(** {1 The coalescer}

    Exposed for direct unit testing; {!run} drives it with the real
    controller. *)

module Coalescer : sig
  type 'a t

  val create :
    queue_bound:int -> policy:Runtime.shed_policy -> unit -> 'a t
  (** Raises [Invalid_argument] for negative [queue_bound] (0 is legal:
      nothing may wait — every reaction arriving at a busy controller
      sheds). *)

  val offer :
    'a t ->
    now:int ->
    dispatch:(int -> 'a list -> int) ->
    shed:(tick:int -> 'a -> unit) ->
    'a list ->
    unit
  (** Deliver the reactions arriving at tick [now] (one call per tick,
      [now] non-decreasing across calls).  Any backlog whose wait ended
      before [now] is dispatched first.  [dispatch tick batch] performs
      the batched re-solve and returns its completion tick (the
      controller stays busy until then; a return ≤ [tick] still
      occupies it for one tick).  [shed] is told about every reaction
      dropped at the bound. *)

  val flush :
    'a t -> dispatch:(int -> 'a list -> int) -> unit
  (** Drain the remaining backlog (the controller catches up), batch by
      batch at its modeled free ticks. *)

  val busy_until : 'a t -> int
  val backlog : 'a t -> int

  val stats : 'a t -> int * int * int * int * int
  (** [(offered, batches, batched, shed, deferred)]: reactions offered,
      batched solves launched, reactions served by them, reactions
      shed, reactions that waited ≥ 1 tick before being served. *)
end

(** {1 Running} *)

type shard_stat = {
  ss_region : int;
  ss_fibers : int;  (** Member fibers. *)
  ss_samples : int;  (** Telemetry samples this shard ingested. *)
  ss_alarms : int;
  ss_busy_s : float;
      (** Measured wall seconds inside this shard's event loops (arrival
          push, pop, ingest, drain, detect) — the denominator of the
          shard's sustained rate.  Excluded from the core. *)
  ss_metrics : Metrics.t;  (** The shard's own registry. *)
}

type result = {
  s_config : Runtime.config;
  s_partition : partition;
  s_flows : int;
  s_epochs : int;
  s_degr_epochs : int;
  s_cut_epochs : int;
  s_detections : Runtime.detection list;  (** Chronological. *)
  s_reacted_in_time : int;
  s_missed : int;
  s_avail_stream : float;
  s_avail_periodic : float;
  s_avail_instant : float;
  s_alarms : int;
  s_batches : int;  (** Batched controller re-solves launched. *)
  s_batched : int;  (** Reactions served by them. *)
  s_shed : int;
  s_deferred : int;
  s_debounced : int;
  s_metrics : Metrics.t;  (** Global registry — part of the core. *)
  s_aux : Metrics.t;
      (** Partition-dependent execution stats (cross-region batches,
          predictor swaps summed over servers, ...) — never in the
          core. *)
  s_ring : Ring.t;
  s_shards : shard_stat array;
  s_solver : Prete_lp.Solver_stats.t;
}

val run : ?pool:Prete_exec.Pool.t -> Runtime.config -> result
(** Stream [config.epochs] TE periods of the full fiber fleet through
    [config.shards] regional shards.  Ground truth is the exact sample
    path {!Prete.Simulate.run} draws from [config.seed]; availability
    policies (instant / stream / periodic) are evaluated with the same
    arithmetic as {!Runtime.run}.  The detour tier is {!Runtime.run}'s
    concern — this engine exercises the controller path.  Raises
    [Invalid_argument] for non-positive epochs or shards, or an unknown
    topology. *)

val accounted : result -> bool
(** [s_alarms = s_debounced + s_shed + s_batched] — no reaction
    unaccounted for. *)

val aggregate_rate : result -> float
(** Sustained ingest bandwidth of the fleet, samples/second: the sum
    over shards of [ss_samples / ss_busy_s].  Each shard's rate is
    measured against its own busy seconds, so the sum is the rate the
    fleet sustains when every shard owns an execution lane — the
    quantity the [stream_scale] bench gates (×flows for the
    fibers×flows form). *)

val tick_rate : result -> float
(** Sustained ticks/second of the slowest shard (the tick barrier's
    critical path): [min] over shards of processed ticks / busy
    seconds. *)

(** {1 Dump / replay} *)

val dump : result -> string
(** Full JSON: ["prete_rt_shard"] header, flat ["config"] section,
    deterministic ["core"] section (summary, availabilities, global
    metrics without walls, event log — no shard count anywhere inside),
    the per-shard section, aux metrics, solver and wall sections. *)

val deterministic_core : result -> string
(** The ["core"] object alone — byte-comparable across any
    (shards × domains) combination and replays of the same seed. *)

val is_dump : string -> bool
(** Whether a JSON string is a {!dump} (checks the header) — how the
    CLI tells shard dumps from {!Runtime.dump}s on replay. *)

val replay : ?pool:Prete_exec.Pool.t -> string -> result * bool
(** Re-run a dumped configuration; [true] when the fresh
    {!deterministic_core} is byte-equal to the dumped one. *)
