(** Impaired arrival schedules for telemetry traces.

    Turns a synthesized 1 Hz trace into the arrival sequence a collector
    actually sees: each sample may be dropped (a gap), delayed past its
    source tick (reordering), or delivered twice (duplication).  All
    draws come from the caller's RNG substream, so a fiber's schedule is
    a pure function of its seed — the determinism contract's only
    requirement on the transport layer. *)

type impairments = {
  gap_rate : float;  (** P(sample never arrives). *)
  dup_rate : float;  (** P(an extra copy arrives). *)
  reorder_rate : float;  (** P(delivery is delayed ≥ 1 tick). *)
  max_delay : int;  (** Max delivery delay, ticks (the ingest horizon). *)
}

val no_impairments : impairments
val default_impairments : impairments
(** 2% gaps, 1% dups, 5% reordered with delays up to 3 ticks. *)

type arrival = {
  a_tick : int;  (** Delivery tick. *)
  a_t : int;  (** Source timestamp. *)
  a_v : float;  (** Sample value. *)
}

val schedule :
  Prete_util.Rng.t -> impairments -> Prete_optics.Telemetry.trace -> arrival list
(** Arrivals in source-timestamp order (delivery order is what the event
    queue sorts by; ties broken by insertion order, i.e. source order). *)
