(** Scenario matrix runner.

    Crosses {topology × traffic model × fault profile × policy} into one
    {e portfolio}: each (topology, traffic, profile) combo is one
    {!Runtime.run} on the domain pool, scored under all four reaction
    policies (periodic / stream / stream+detour / instant), with the
    combo's standing-plan Φ, per-cell availability, ladder/detour
    tallies, and solver counters.  Everything in the portfolio — and its
    JSON — is bit-identical at any domain count: the runtime and
    simulator uphold the contract per run, and the JSON carries no wall
    clocks. *)

(** {1 Fault profiles} *)

type profile = {
  pf_name : string;
  pf_impairments : Stream.impairments;  (** Telemetry transport quality. *)
  pf_deadline_s : float option;  (** Solver deadline handed to the runtime. *)
  pf_debounce_s : int;
}

val profiles : profile list
(** Built-in profiles: ["clean"] (default impairments, no deadline) and
    ["lossy"] (12% gaps, 4% dups, 25% reorder with delays up to 6 ticks,
    a 0.25 s solver deadline). *)

val profile_names : string list

val profile_by_name : string -> profile
(** Raises [Invalid_argument] listing the known profiles. *)

val policies : string list
(** Cell policies, in portfolio order:
    ["periodic"; "stream"; "stream+detour"; "instant"]. *)

(** {1 Portfolio} *)

type cell = {
  cl_topology : string;
  cl_traffic : string;
  cl_profile : string;
  cl_policy : string;
  cl_phi : float;
      (** Standing-plan unmet fraction of the combo at baseline demands
          (same value across the combo's four policy cells). *)
  cl_availability : float;
  cl_nines : float;
}

type combo = {
  cb_topology : string;
  cb_traffic : string;
  cb_profile : string;
  cb_flows : int;
  cb_degr_epochs : int;
  cb_cut_epochs : int;
  cb_detections : int;
  cb_reacted : int;
  cb_missed : int;
  cb_alarms : int;
  cb_reactions : int;
  cb_rungs : (string * int) list;
      (** Ladder rung tallies, every rung present (possibly 0). *)
  cb_detour_activations : int;
  cb_detour_rescued : int;
  cb_detour_flows_patched : int;
  cb_solver_solves : int;
  cb_solver_warm_solves : int;
  cb_solver_pivots : int;
  cb_solver_cache_hits : int;
  cb_solver_cache_misses : int;
  cb_lp_engine : string;  (** Engine the combo's runtime ran under. *)
  cb_solver_ft_updates : int;  (** LU engine: Forrest–Tomlin updates. *)
  cb_solver_bound_flips : int;  (** LU engine: ratio-test bound flips. *)
  cb_solver_lu_fill_nnz : int;  (** LU engine: factor fill-in nonzeros. *)
  cb_solver_presolve_rows : int;  (** LU engine: presolve-removed rows. *)
  cb_solver_presolve_cols : int;  (** LU engine: presolve-removed cols. *)
}

type portfolio = {
  pt_seed : int;
  pt_epochs : int;
  pt_scale : float;
  pt_topologies : string list;
  pt_traffic : string list;
  pt_profiles : string list;
  pt_policies : string list;
  pt_cells : cell list;
      (** One per (topology × traffic × profile × policy), in nested
          matrix order with [policies] innermost. *)
  pt_combos : combo list;
      (** One per (topology × traffic × profile), same nesting. *)
}

val run :
  ?pool:Prete_exec.Pool.t ->
  ?seed:int ->
  ?epochs:int ->
  ?scale:float ->
  topologies:string list ->
  traffic:string list ->
  profiles:string list ->
  unit ->
  portfolio
(** Runs the full matrix (topologies resolved via
    [Topology.by_name], traffic via [Traffic_model.by_name], profiles
    via {!profile_by_name}).  Defaults: seed 123, epochs 12, scale 1.0,
    a private pool.  Raises [Invalid_argument] on an empty axis or an
    unknown name. *)

val standing_phi :
  Prete.Availability.env -> Prete.Schemes.t -> demands:float array -> float
(** Unmet fraction of the scheme's no-degradation plan at the given
    demands. *)

val to_json : portfolio -> string
(** The portfolio JSON: header, matrix axes, cells, combos.  %.17g
    floats, no wall clocks — byte-identical across domain counts. *)

val find_cells : portfolio -> policy:string -> cell list
