(** Bounded event-trace ring buffer.

    The runtime logs one entry per pipeline event (degradation onset,
    alarm, reaction, install, cut, segment end, ...).  The buffer keeps
    the most recent [capacity] entries; older entries are counted as
    dropped, never silently lost from the tallies.  Sequence numbers are
    assigned at push in arrival order, so the dumped log is a total
    order — the determinism contract compares it byte-for-byte. *)

type entry = {
  seq : int;  (** Global arrival index (monotone). *)
  tick : int;  (** Logical second the event happened at. *)
  kind : string;  (** Machine-friendly tag, e.g. ["alarm"]. *)
  fiber : int;  (** Subject fiber; [-1] when not fiber-scoped. *)
  value : float;  (** Event payload (score, latency, batch size...). *)
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] for non-positive capacity. *)

val push : t -> tick:int -> kind:string -> fiber:int -> value:float -> unit

val entries : t -> entry array
(** Retained entries, oldest first. *)

val total : t -> int
(** Entries ever pushed. *)

val dropped : t -> int
(** [max 0 (total - capacity)] — entries overwritten by later pushes.
    The runtimes surface this as the [ring_dropped] metrics counter, and
    the tier-1 stream tests assert it stays zero at the default
    capacity: a dropped entry means the dumped event log is no longer
    the full total order. *)

val overflowed : t -> bool
(** [dropped t > 0]. *)

val to_json : t -> string
(** JSON array of the retained entries (oldest first) — the replayable
    event log. *)
