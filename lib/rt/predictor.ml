type t = {
  mutable model : Prete_optics.Hazard.features -> float;
  mutable name : string;
  mutable stale : bool;
  fallback : Prete_optics.Hazard.features -> float;
  mutable served : int;
  mutable fell_back : int;
  mutable swaps : int;
  lock : Mutex.t;
}

let create ?(name = "v0") ~fallback model =
  {
    model;
    name;
    stale = false;
    fallback;
    served = 0;
    fell_back = 0;
    swaps = 0;
    lock = Mutex.create ();
  }

let prior (model : Prete_optics.Fiber_model.t) _feats =
  model.Prete_optics.Fiber_model.mean_hazard

let guarded t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let predict t feats =
  guarded t (fun () ->
      t.served <- t.served + 1;
      if t.stale then begin
        t.fell_back <- t.fell_back + 1;
        (t.fallback feats, true)
      end
      else (t.model feats, false))

let swap t ?name model =
  guarded t (fun () ->
      t.model <- model;
      t.swaps <- t.swaps + 1;
      t.stale <- false;
      match name with
      | Some n -> t.name <- n
      | None -> t.name <- Printf.sprintf "v%d" t.swaps)

let mark_stale t = guarded t (fun () -> t.stale <- true)
let is_stale t = guarded t (fun () -> t.stale)
let version t = guarded t (fun () -> t.name)
let stats t = guarded t (fun () -> (t.served, t.fell_back, t.swaps))
