type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q =
  let cap = max 16 (2 * Array.length q.heap) in
  let heap = Array.make cap q.heap.(0) in
  Array.blit q.heap 0 heap 0 q.size;
  q.heap <- heap

let push q ~time payload =
  let e = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 e;
  if q.size = Array.length q.heap then grow q;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  (* Sift up. *)
  let i = ref (q.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less q.heap.(!i) q.heap.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = q.heap.(p) in
    q.heap.(p) <- q.heap.(!i);
    q.heap.(!i) <- tmp;
    i := p
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < q.size && less q.heap.(l) q.heap.(!m) then m := l;
        if r < q.size && less q.heap.(r) q.heap.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          let tmp = q.heap.(!m) in
          q.heap.(!m) <- q.heap.(!i);
          q.heap.(!i) <- tmp;
          i := !m
        end
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let pop_until q ~time =
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match peek_time q with
    | Some t when t <= time -> (
      match pop q with
      | Some e -> out := e :: !out
      | None -> continue := false)
    | _ -> continue := false
  done;
  List.rev !out

let length q = q.size
let is_empty q = q.size = 0
