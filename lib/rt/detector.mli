(** Online degradation detector: EWMA baseline tracker + CUSUM-style
    change-point against the telemetry thresholds, with incremental
    segment features.

    Fed finalized samples in timestamp order (from {!Online.drain}), the
    detector classifies each against the configured baseline exactly as
    {!Prete_optics.Telemetry.classify} does, runs a one-sided CUSUM on
    the EWMA-debiased excess while healthy, and accumulates an
    {!Online.acc} over the current degraded segment:

    - {b Alarm}: fired once per episode, either when the CUSUM score
      crosses [cusum_h] (early warning on slow ramps below the +3 dB
      step) or at the first sample classified Degraded — whichever comes
      first.
    - {b Segment end}: emitted when the run of Degraded-classified
      samples ends (recovery, or a Cut-classified sample); carries the
      accumulated features, which agree bit-exactly with the offline
      {!Prete_util.Timeseries} extraction over the same samples. *)

type config = {
  ewma_alpha : float;  (** Baseline tracker step (healthy samples only). *)
  cusum_k : float;  (** CUSUM drift allowance, dB. *)
  cusum_h : float;  (** CUSUM decision threshold, dB·samples. *)
  fluct_threshold : float;  (** Offline fluctuation threshold (0.01 dB). *)
  degr_threshold : float;  (** {!Prete_optics.Telemetry.degradation_threshold}. *)
  cut_threshold : float;  (** {!Prete_optics.Telemetry.cut_threshold}. *)
}

val default_config : config

type segment = {
  seg_start : int;  (** Timestamp of the first degraded sample. *)
  seg_end : int;  (** Timestamp of the sample that ended the segment. *)
  seg_degree : float;
  seg_gradient : float;
  seg_fluctuation : int;
  seg_duration_s : int;  (** Degraded samples consumed (1 Hz seconds). *)
  seg_cut : bool;  (** Ended by a Cut-classified sample. *)
}

type event =
  | Degr_start of int  (** First Degraded-classified timestamp. *)
  | Alarm of { at : int; score : float }
  | Segment_end of segment

type t

val create : ?config:config -> baseline:float -> unit -> t

val step : t -> at:int -> v:float -> event list
(** Consume one finalized sample; events in occurrence order. *)

val in_segment : t -> bool
val cusum_score : t -> float
val baseline_estimate : t -> float

val current_features : t -> (float * float * int * int) option
(** [(degree, mean_abs_gradient, fluctuation, duration_s)] of the open
    segment so far — what the predictor sees at alarm time, before the
    segment completes. *)
