(** Predictor server: a hot-swappable cut-probability model with a
    stale-model fallback.

    Wraps any [Hazard.features -> float] model (the prete_ml MLP/CART,
    the ground-truth hazard, ...) behind a mutex so a training loop on
    another domain can {!swap} in a fresh model while the reaction stage
    keeps serving.  When the current model is marked stale (e.g. its
    training horizon aged out and no replacement arrived), predictions
    fall back to the hazard-free prior — the fiber model's mean hazard,
    which is exactly the static [(1-α)p] prior PreTE uses for fibers it
    has no degradation signal for. *)

type t

val create :
  ?name:string ->
  fallback:(Prete_optics.Hazard.features -> float) ->
  (Prete_optics.Hazard.features -> float) ->
  t
(** [create ~fallback model] starts serving [model] (version name
    defaults to ["v0"]). *)

val prior : Prete_optics.Fiber_model.t -> Prete_optics.Hazard.features -> float
(** The hazard-free prior: the model's mean hazard, independent of the
    event features — the standard [fallback]. *)

val predict : t -> Prete_optics.Hazard.features -> float * bool
(** [(probability, used_fallback)]. *)

val swap : t -> ?name:string -> (Prete_optics.Hazard.features -> float) -> unit
(** Install a new model version atomically; clears staleness. *)

val mark_stale : t -> unit
val is_stale : t -> bool
val version : t -> string

val stats : t -> int * int * int
(** [(served, fallbacks, swaps)]. *)
