open Prete_net
open Prete_optics
open Prete
module Rng = Prete_util.Rng
module Clock = Prete_util.Clock
module Pool = Prete_exec.Pool

let epoch_len = Runtime.Internal.epoch_len

(* ------------------------------------------------------------------ *)
(* Partitioning                                                        *)
(* ------------------------------------------------------------------ *)

type partition = {
  pt_shards : int;
  pt_seed : int;
  pt_region_of : int array;
  pt_regions : int array array;
}

(* Fibers are adjacent when they share an endpoint site — the line
   graph of the fiber layer.  Connected topology ⇒ connected line
   graph, which is what makes single-seed BFS growth yield connected
   regions. *)
let fiber_adjacency topo =
  let n = Topology.num_fibers topo in
  let by_node : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (f : Topology.fiber) ->
      let a, b = f.Topology.endpoints in
      List.iter
        (fun v ->
          Hashtbl.replace by_node v
            (f.Topology.fid :: Option.value ~default:[] (Hashtbl.find_opt by_node v)))
        (if a = b then [ a ] else [ a; b ]))
    topo.Topology.fibers;
  Array.init n (fun i ->
      let a, b = (Topology.fiber topo i).Topology.endpoints in
      Option.value ~default:[] (Hashtbl.find_opt by_node a)
      @ Option.value ~default:[] (Hashtbl.find_opt by_node b)
      |> List.filter (fun j -> j <> i)
      |> List.sort_uniq compare)

let partition topo ~shards ~seed =
  if shards <= 0 then invalid_arg "Shard.partition: shards must be positive";
  let n = Topology.num_fibers topo in
  let k = min shards n in
  let adj = fiber_adjacency topo in
  (* Seed fibers: one RNG draw anchors the partition to the seed, then
     farthest-first spreading keeps the remaining anchors apart. *)
  let rng = Rng.create (seed lxor 0x7a11) in
  let seeds = Array.make k 0 in
  seeds.(0) <- Rng.int rng n;
  let dist = Array.make n max_int in
  let bfs_relax src =
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if dist.(u) + 1 < dist.(v) then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v queue
          end)
        adj.(u)
    done
  in
  bfs_relax seeds.(0);
  for i = 1 to k - 1 do
    let best = ref 0 and best_d = ref min_int in
    for f = 0 to n - 1 do
      let d = if dist.(f) = max_int then n + 1 else dist.(f) in
      if d > !best_d then begin
        best := f;
        best_d := d
      end
    done;
    seeds.(i) <- !best;
    bfs_relax !best
  done;
  let region_of = Array.make n (-1) in
  let sizes = Array.make k 0 in
  (* Per-region frontier: unclaimed fibers adjacent to the region,
     kept as sorted de-duplicated lists so the claim order is a pure
     function of the graph. *)
  let frontier = Array.make k [] in
  let claim r f =
    region_of.(f) <- r;
    sizes.(r) <- sizes.(r) + 1;
    for r' = 0 to k - 1 do
      frontier.(r') <- List.filter (fun g -> g <> f) frontier.(r')
    done;
    frontier.(r) <-
      List.sort_uniq compare
        (List.filter (fun g -> region_of.(g) < 0) adj.(f) @ frontier.(r))
  in
  Array.iteri
    (fun r s -> if region_of.(s) < 0 then claim r s else claim r (
       (* Farthest-first can land on an already claimed fiber only when
          the graph is smaller than k; fall back to the least unclaimed. *)
       let rec first_free f = if region_of.(f) < 0 then f else first_free (f + 1) in
       first_free 0))
    seeds;
  let assigned = ref k in
  while !assigned < n do
    (* Grow the smallest region that can still grow — balanced sizes
       without ever breaking region connectivity. *)
    let best = ref (-1) in
    for r = k - 1 downto 0 do
      if frontier.(r) <> [] && (!best < 0 || sizes.(r) <= sizes.(!best)) then
        best := r
    done;
    if !best >= 0 then claim !best (List.hd frontier.(!best))
    else begin
      (* Disconnected fiber graph (no built-in topology): hand the
         least unclaimed fiber to the smallest region. *)
      let f = ref 0 in
      while region_of.(!f) >= 0 do incr f done;
      let r = ref 0 in
      for r' = 1 to k - 1 do
        if sizes.(r') < sizes.(!r) then r := r'
      done;
      claim !r !f
    end;
    incr assigned
  done;
  let members = Array.make k [] in
  for f = n - 1 downto 0 do
    members.(region_of.(f)) <- f :: members.(region_of.(f))
  done;
  {
    pt_shards = k;
    pt_seed = seed;
    pt_region_of = region_of;
    pt_regions = Array.map Array.of_list members;
  }

(* ------------------------------------------------------------------ *)
(* Coalescer                                                           *)
(* ------------------------------------------------------------------ *)

module Coalescer = struct
  type 'a entry = { en_tick : int; en_item : 'a }

  type 'a t = {
    c_bound : int;
    c_policy : Runtime.shed_policy;
    mutable c_busy_until : int;
    mutable c_staged : 'a entry list;  (* oldest first *)
    mutable c_len : int;
    mutable c_offered : int;
    mutable c_batches : int;
    mutable c_batched : int;
    mutable c_shed : int;
    mutable c_deferred : int;
  }

  let create ~queue_bound ~policy () =
    if queue_bound < 0 then
      invalid_arg "Shard.Coalescer.create: negative queue_bound";
    {
      c_bound = queue_bound;
      c_policy = policy;
      c_busy_until = min_int;
      c_staged = [];
      c_len = 0;
      c_offered = 0;
      c_batches = 0;
      c_batched = 0;
      c_shed = 0;
      c_deferred = 0;
    }

  let launch t ~tick ~dispatch items =
    t.c_batches <- t.c_batches + 1;
    t.c_batched <- t.c_batched + List.length items;
    let free_at = dispatch tick items in
    t.c_busy_until <- max free_at (tick + 1)

  (* Serve the backlog the moment the controller frees: the whole
     accumulated backlog coalesces into one batched re-solve. *)
  let service t ~now ~dispatch =
    while t.c_staged <> [] && t.c_busy_until <= now do
      let head = List.hd t.c_staged in
      let tick = max t.c_busy_until head.en_tick in
      let items = List.map (fun e -> e.en_item) t.c_staged in
      t.c_deferred <- t.c_deferred + t.c_len;
      t.c_staged <- [];
      t.c_len <- 0;
      launch t ~tick ~dispatch items
    done

  let offer t ~now ~dispatch ~shed items =
    service t ~now ~dispatch;
    t.c_offered <- t.c_offered + List.length items;
    if t.c_busy_until <= now then launch t ~tick:now ~dispatch items
    else
      List.iter
        (fun it ->
          if t.c_len >= t.c_bound then begin
            t.c_shed <- t.c_shed + 1;
            match t.c_policy with
            | Runtime.Drop_newest -> shed ~tick:now it
            | Runtime.Drop_oldest -> (
              match t.c_staged with
              | old :: rest ->
                shed ~tick:now old.en_item;
                t.c_staged <- rest @ [ { en_tick = now; en_item = it } ]
              | [] ->
                (* bound = 0: nothing staged to evict. *)
                shed ~tick:now it)
          end
          else begin
            t.c_staged <- t.c_staged @ [ { en_tick = now; en_item = it } ];
            t.c_len <- t.c_len + 1
          end)
        items

  let flush t ~dispatch =
    while t.c_staged <> [] do
      let head = List.hd t.c_staged in
      let tick = max t.c_busy_until head.en_tick in
      let items = List.map (fun e -> e.en_item) t.c_staged in
      t.c_deferred <- t.c_deferred + t.c_len;
      t.c_staged <- [];
      t.c_len <- 0;
      launch t ~tick ~dispatch items
    done

  let busy_until t = t.c_busy_until
  let backlog t = t.c_len
  let stats t = (t.c_offered, t.c_batches, t.c_batched, t.c_shed, t.c_deferred)
end

(* ------------------------------------------------------------------ *)
(* Per-shard stream processing                                         *)
(* ------------------------------------------------------------------ *)

(* What one fiber's 1 Hz stream produced within its epoch; ticks are
   epoch-relative, the merge globalizes them. *)
type fiber_out = {
  sf_fiber : int;
  sf_truth : Hazard.features option;  (* [None]: healthy baseline stream *)
  sf_onset : int;  (* -1 when healthy *)
  sf_cut_at : int option;
  sf_events : (int * string * float) list;
  sf_alarm : int option;
  sf_alarm_feats : (float * float * int * int) option;
  sf_samples : int;
  sf_dups : int;
  sf_late : int;
  sf_filled : int;
  sf_segments : int;
  sf_cut_segments : int;
}

(* Workload generation: the fiber's trace and impaired arrival
   schedule, drawn from its private RNG substream.  The draw sequence
   for degrading fibers mirrors Runtime.process_fiber; healthy fibers
   draw the trace seed then the schedule.  Never inside the measured
   loop — a deployment receives samples, it does not synthesize them. *)
let synth_fiber (cfg : Runtime.config) ~topo ~rng ~fb ~truth ~cut =
  let trace_seed = Rng.int rng 1_000_000 in
  let baseline = Telemetry.baseline_loss topo fb in
  let onset, cut_at, trace =
    match truth with
    | Some (tr : Hazard.features) ->
      let dur = int_of_float (Float.ceil tr.Hazard.duration_s) in
      let seg_len = max 1 (min dur (epoch_len - 120)) in
      let span = epoch_len - 120 - seg_len in
      let onset = 60 + if span > 0 then Rng.int rng span else 0 in
      let cut_at = if cut then Some (onset + seg_len) else None in
      ( onset,
        cut_at,
        Telemetry.synthesize ~seed:trace_seed ~baseline ~healthy_s:onset
          ~degradation:tr ?cut_at_s:cut_at ~total_s:epoch_len () )
    | None ->
      ( -1,
        None,
        Telemetry.synthesize ~seed:trace_seed ~baseline ~healthy_s:epoch_len
          ~total_s:epoch_len () )
  in
  (onset, cut_at, Stream.schedule rng cfg.Runtime.impairments trace)

(* One shard × one epoch: a single event queue carrying every member
   fiber's arrivals, per-fiber ingest and detector state, one logical
   tick loop.  The returned busy seconds cover exactly the event-loop
   work (arrival push, pop, ingest, drain, detect, flush). *)
let process_region (cfg : Runtime.config) ~topo ~fibers ~rngs ~truth_of
    ~cut_of =
  let m = Array.length fibers in
  let synths =
    Array.mapi
      (fun i fb ->
        synth_fiber cfg ~topo ~rng:rngs.(i) ~fb ~truth:(truth_of fb)
          ~cut:(cut_of fb))
      fibers
  in
  let horizon = cfg.Runtime.impairments.Stream.max_delay in
  let ings = Array.init m (fun _ -> Online.ingest_create ~horizon ()) in
  let dets =
    Array.init m (fun i ->
        Detector.create ~config:cfg.Runtime.detector
          ~baseline:(Telemetry.baseline_loss topo fibers.(i))
          ())
  in
  let events = Array.make m [] in
  let alarm = Array.make m None in
  let alarm_feats = Array.make m None in
  let segments = Array.make m 0 in
  let cut_segments = Array.make m 0 in
  let feed i (t, v) =
    List.iter
      (fun ev ->
        match ev with
        | Detector.Degr_start t' ->
          let onset, _, _ = synths.(i) in
          events.(i) <- (t', "degr_seen", float_of_int (t' - onset)) :: events.(i)
        | Detector.Alarm { at; score } ->
          events.(i) <- (at, "alarm", score) :: events.(i);
          if alarm.(i) = None then begin
            alarm.(i) <- Some at;
            alarm_feats.(i) <- Detector.current_features dets.(i)
          end
        | Detector.Segment_end seg ->
          segments.(i) <- segments.(i) + 1;
          if seg.Detector.seg_cut then cut_segments.(i) <- cut_segments.(i) + 1;
          events.(i) <- (t, "segment_end", seg.Detector.seg_degree) :: events.(i))
      (Detector.step dets.(i) ~at:t ~v)
  in
  let q = Equeue.create () in
  let t0 = Clock.now () in
  Array.iteri
    (fun i (_, _, arrivals) ->
      List.iter (fun a -> Equeue.push q ~time:a.Stream.a_tick (i, a)) arrivals)
    synths;
  for now = 0 to epoch_len - 1 + horizon do
    List.iter
      (fun (_, (i, a)) -> Online.offer ings.(i) ~t:a.Stream.a_t ~v:a.Stream.a_v)
      (Equeue.pop_until q ~time:now);
    for i = 0 to m - 1 do
      List.iter (feed i) (Online.drain ings.(i) ~now)
    done
  done;
  for i = 0 to m - 1 do
    let _, _, arrivals = synths.(i) in
    if arrivals <> [] then
      List.iter (feed i) (Online.flush ings.(i) ~upto:(epoch_len - 1))
  done;
  let busy = Clock.elapsed_since t0 in
  let outs =
    Array.mapi
      (fun i fb ->
        let onset, cut_at, arrivals = synths.(i) in
        {
          sf_fiber = fb;
          sf_truth = truth_of fb;
          sf_onset = onset;
          sf_cut_at = cut_at;
          sf_events = List.rev events.(i);
          sf_alarm = alarm.(i);
          sf_alarm_feats = alarm_feats.(i);
          sf_samples = List.length arrivals;
          sf_dups = Online.dups ings.(i);
          sf_late = Online.late ings.(i);
          sf_filled = Online.filled ings.(i);
          sf_segments = segments.(i);
          sf_cut_segments = cut_segments.(i);
        })
      fibers
  in
  (outs, busy)

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

type shard_stat = {
  ss_region : int;
  ss_fibers : int;
  ss_samples : int;
  ss_alarms : int;
  ss_busy_s : float;
  ss_metrics : Metrics.t;
}

type result = {
  s_config : Runtime.config;
  s_partition : partition;
  s_flows : int;
  s_epochs : int;
  s_degr_epochs : int;
  s_cut_epochs : int;
  s_detections : Runtime.detection list;
  s_reacted_in_time : int;
  s_missed : int;
  s_avail_stream : float;
  s_avail_periodic : float;
  s_avail_instant : float;
  s_alarms : int;
  s_batches : int;
  s_batched : int;
  s_shed : int;
  s_deferred : int;
  s_debounced : int;
  s_metrics : Metrics.t;
  s_aux : Metrics.t;
  s_ring : Ring.t;
  s_shards : shard_stat array;
  s_solver : Prete_lp.Solver_stats.t;
}

(* Static feature record for a fiber with no sampled degradation event
   (a detector false positive on a healthy stream): intrinsic fiber
   attributes plus the epoch's time of day; the measured excursion is
   overlaid by Runtime.Internal.measured_features. *)
let static_features topo ~fb ~epoch =
  let f = Topology.fiber topo fb in
  {
    Hazard.fiber = fb;
    region = f.Topology.region;
    vendor = f.Topology.vendor;
    length_km = f.Topology.length_km;
    time_of_day =
      mod_float (float_of_int epoch *. (Hazard.epoch_seconds /. 3600.0)) 24.0;
    degree = 0.0;
    gradient = 0.0;
    fluctuation = 0;
    duration_s = 0.0;
  }

let run ?pool (cfg : Runtime.config) =
  if cfg.Runtime.epochs <= 0 then
    invalid_arg "Shard.run: epochs must be positive";
  if cfg.Runtime.shards <= 0 then
    invalid_arg "Shard.run: shards must be positive";
  let engine =
    match Prete_lp.Simplex.engine_of_string cfg.Runtime.lp_engine with
    | Some e -> e
    | None ->
      invalid_arg ("Shard.run: unknown lp_engine " ^ cfg.Runtime.lp_engine)
  in
  let saved_engine = !Prete_lp.Simplex.default_engine in
  Prete_lp.Simplex.default_engine := engine;
  let owns_pool = pool = None in
  let pool = match pool with Some p -> p | None -> Pool.create () in
  Fun.protect
    ~finally:(fun () ->
      Prete_lp.Simplex.default_engine := saved_engine;
      if owns_pool then Pool.shutdown pool)
  @@ fun () ->
  let open Runtime in
  let base_topo = Topology.by_name cfg.topology in
  let tm =
    match cfg.traffic with
    | "fixed" -> None
    | spec -> Some (Traffic_model.by_name spec base_topo)
  in
  let env =
    match tm with
    | None -> Availability.make_env base_topo
    | Some m ->
      Availability.make_env
        ~traffic:(Traffic_model.to_traffic m)
        ~tunnels:(Tunnels.build base_topo m.Traffic_model.tm_pairs)
        base_topo
  in
  let topo = env.Availability.ts.Tunnels.topo in
  let ts = env.Availability.ts in
  let n = Topology.num_fibers topo in
  let flows = Array.length ts.Tunnels.flows in
  let pt = partition topo ~shards:cfg.shards ~seed:cfg.seed in
  let k = pt.pt_shards in
  let demands =
    Traffic.demand env.Availability.traffic ~scale:cfg.scale
      ~epoch:env.Availability.epoch
  in
  let demands_at e =
    match tm with
    | None -> demands
    | Some m -> Traffic_model.demands m ~scale:cfg.scale ~epoch:e
  in
  let metrics = Metrics.create () in
  let aux = Metrics.create () in
  let ring = Ring.create ~capacity:cfg.ring_capacity in
  let solver = Prete_lp.Solver_stats.create () in
  let sh_metrics = Array.init k (fun _ -> Metrics.create ()) in
  (* Per-shard predictor servers over one shared model: predictions are
     pure given the model and staleness, so the answer never depends on
     which server serves it — only the per-shard serving stats do. *)
  let model = Runtime.Internal.build_model cfg.predictor env topo in
  let fallback = Predictor.prior env.Availability.model in
  let servers = Array.init k (fun _ -> Predictor.create ~fallback model) in
  (* Online decision-focused retraining: one engine for the whole fleet.
     Measured events arrive in the coalescer's deterministic dispatch
     order and predictions are pure given the shared model, so the
     retrain decisions and tuned versions are identical at any shard
     count; a fired retrain hot-swaps every regional server. *)
  let retrain_state =
    match cfg.retrain with
    | Some rc when rc.rt_every > 0 ->
      Some
        (Runtime.Internal.Retrain.create ~pool ~seed:cfg.seed ~scale:cfg.scale
           ~env rc model)
    | _ -> None
  in
  let scheme =
    Schemes.prete_default
      ~predictor:(fun f -> fst (Predictor.predict servers.(0) f))
      ()
  in
  (* Phase 1 — ground truth: the exact sample path Simulate.run draws. *)
  let samples =
    Metrics.time metrics "sample" (fun () ->
        let rngs =
          Simulate.Internal.epoch_streams ~seed:cfg.seed ~epochs:cfg.epochs
        in
        Pool.parallel_map pool (Simulate.Internal.sample_epoch env) rngs)
  in
  (* Per-(epoch, fiber) RNG substreams, split in a fixed global order so
     a fiber's stream never depends on the region it landed in. *)
  let rt_master = Rng.create (cfg.seed lxor 0xf1ee7) in
  let fiber_rngs =
    Array.init cfg.epochs (fun _ ->
        let er = Rng.split rt_master in
        Array.init n (fun _ -> Rng.split er))
  in
  let truth_of_epoch e =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (fb, tr) -> Hashtbl.replace tbl fb tr)
      samples.(e).Simulate.Internal.es_degraded;
    tbl
  in
  let truths = Array.init cfg.epochs truth_of_epoch in
  (* Phase 2 — shard loops: one task per (epoch, shard), tick-barrier
     semantics per epoch enforced by the merge below; each task writes
     only its own slot of the results matrix. *)
  let runs = Array.make (cfg.epochs * k) [||] in
  let busy = Array.make (cfg.epochs * k) 0.0 in
  let tasks = Array.init (cfg.epochs * k) Fun.id in
  Metrics.time metrics "detect" (fun () ->
      Pool.parallel_iter pool
        (fun idx ->
          let e = idx / k and s = idx mod k in
          let fibers = pt.pt_regions.(s) in
          let rngs = Array.map (fun fb -> fiber_rngs.(e).(fb)) fibers in
          let truth_of fb = Hashtbl.find_opt truths.(e) fb in
          let cut_of fb = List.mem fb samples.(e).Simulate.Internal.es_cuts in
          let outs, b =
            process_region cfg ~topo ~fibers ~rngs ~truth_of ~cut_of
          in
          runs.(idx) <- outs;
          busy.(idx) <- b)
        tasks);
  (* Phase 3 — merge + coalesced reactions: sequential over epochs in
     (epoch, fiber) order, so everything the controller sees is a pure
     function of the input, independent of shards and domains. *)
  let ladder = Resilience.create () in
  let caches = Array.init k (fun _ -> Controller.cache ~capacity:4096 ()) in
  let last_reaction : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let installs : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let detections = ref [] in
  let rung_counts = Hashtbl.create 4 in
  let co =
    Coalescer.create ~queue_bound:cfg.queue_bound ~policy:cfg.shed_policy ()
  in
  let byf = Array.init cfg.epochs (fun _ -> Array.make n None) in
  Metrics.time metrics "react" (fun () ->
      for e = 0 to cfg.epochs - 1 do
        let base = e * epoch_len in
        let demands = demands_at e in
        (match cfg.stale_after with
        | Some j when e = j -> Array.iter Predictor.mark_stale servers
        | Some j when e = 2 * j && j > 0 ->
          Array.iter (fun srv -> Predictor.swap srv model) servers
        | _ -> ());
        for s = 0 to k - 1 do
          Array.iter
            (fun sf -> byf.(e).(sf.sf_fiber) <- Some sf)
            runs.((e * k) + s)
        done;
        let epoch_events = ref [] in
        let ev tick kind fiber value =
          epoch_events := (tick, kind, fiber, value) :: !epoch_events
        in
        (* Ground truth + detector events + tallies, in fiber order. *)
        for fb = 0 to n - 1 do
          match byf.(e).(fb) with
          | None -> ()
          | Some sf ->
            let sm = sh_metrics.(pt.pt_region_of.(fb)) in
            if sf.sf_onset >= 0 then ev (base + sf.sf_onset) "degr_true" fb 0.0;
            List.iter
              (fun (t, kind, v) -> ev (base + t) kind fb v)
              sf.sf_events;
            Option.iter (fun c -> ev (base + c) "cut" fb 0.0) sf.sf_cut_at;
            List.iter
              (fun m ->
                Metrics.incr ~by:sf.sf_samples m "samples";
                Metrics.incr ~by:sf.sf_dups m "dups";
                Metrics.incr ~by:sf.sf_late m "late";
                Metrics.incr ~by:sf.sf_filled m "gaps_filled";
                Metrics.incr ~by:sf.sf_segments m "segments";
                Metrics.incr ~by:sf.sf_cut_segments m "cut_segments")
              [ metrics; sm ]
        done;
        (* Cuts with no degradation signal at all. *)
        List.iter
          (fun fb ->
            if
              not
                (List.exists
                   (fun (fb', _) -> fb' = fb)
                   samples.(e).Simulate.Internal.es_degraded)
            then begin
              ev base "cut_silent" fb 0.0;
              Metrics.incr metrics "silent_cuts"
            end)
          samples.(e).Simulate.Internal.es_cuts;
        (* Alarms → debounce → the cross-shard coalescer, per tick in
           (tick, fiber) order. *)
        let alarmed = ref [] in
        for fb = n - 1 downto 0 do
          match byf.(e).(fb) with
          | Some ({ sf_alarm = Some a; _ } as sf) ->
            alarmed := (base + a, sf) :: !alarmed
          | _ -> ()
        done;
        let alarmed =
          List.stable_sort (fun (a, _) (b, _) -> compare a b) !alarmed
        in
        let rec groups = function
          | [] -> []
          | (t, sf) :: rest ->
            let same, later = List.partition (fun (t', _) -> t' = t) rest in
            (t, sf :: List.map snd same) :: groups later
        in
        let dispatch g members =
          let nb = List.length members in
          Metrics.incr metrics "reactions";
          Metrics.observe metrics "batch_size" (float_of_int nb);
          let member_regions =
            List.map (fun sf -> pt.pt_region_of.(sf.sf_fiber)) members
            |> List.sort_uniq compare
          in
          if List.length member_regions > 1 then
            Metrics.incr aux "cross_region_batches";
          let predicted =
            List.map
              (fun sf ->
                let truth =
                  match sf.sf_truth with
                  | Some tr -> tr
                  | None -> static_features topo ~fb:sf.sf_fiber ~epoch:e
                in
                let feats =
                  Runtime.Internal.measured_features truth sf.sf_alarm_feats
                in
                let srv = servers.(pt.pt_region_of.(sf.sf_fiber)) in
                let p, fell_back = Predictor.predict srv feats in
                (sf, feats, p, fell_back))
              members
          in
          Option.iter
            (fun st ->
              List.iter
                (fun (sf, feats, _, _) ->
                  Runtime.Internal.Retrain.record st ~tick:g ~fiber:sf.sf_fiber
                    feats)
                predicted)
            retrain_state;
          let target =
            match samples.(e).Simulate.Internal.es_state with
            | Some fb when List.exists (fun sf -> sf.sf_fiber = fb) members ->
              fb
            | _ -> (
              match members with
              | sf :: _ -> sf.sf_fiber
              | [] -> assert false)
          in
          let key =
            Controller.plan_key ~ts ~demands
              ~probs:env.Availability.model.Fiber_model.p_cut
              ~salt:[ 2000 + target ] ()
          in
          let upd = Tunnel_update.react ts ~degraded_fiber:target () in
          let n_new = Tunnel_update.num_new upd in
          let cache = caches.(pt.pt_region_of.(target)) in
          (match Controller.cache_find cache key with
          | Some (_ : Availability.plan) -> ()
          | None ->
            let degr_features = Array.copy env.Availability.degr_events in
            List.iter
              (fun (sf, feats, _, _) -> degr_features.(sf.sf_fiber) <- feats)
              predicted;
            let primary ~warm () =
              Availability.Internal.plan_alloc_warm ?deadline:cfg.deadline_s
                ?warm ~degr_features env scheme ~demands
                ~degraded:(Some target)
            in
            let outcome, _report =
              Controller.run ~solver_stats:solver
                ~infer:(fun () -> ())
                ~regen:(fun () -> ())
                ~te:(fun () ->
                  Resilience.plan_epoch ladder ~ts ~demands ~primary ())
                ~n_new_tunnels:n_new ()
            in
            let rung = Resilience.rung_name outcome.Resilience.rung in
            Hashtbl.replace rung_counts rung
              (1 + Option.value ~default:0 (Hashtbl.find_opt rung_counts rung));
            Controller.cache_store cache key
              ~degraded:(Resilience.degraded outcome)
              outcome.Resilience.plan);
          let latency =
            Controller.batch_latency ~members:nb ~n_new_tunnels:n_new
          in
          let install = g + int_of_float (Float.ceil latency) in
          Metrics.observe metrics "reaction_latency_s" latency;
          List.iter
            (fun (sf, _, p, fell_back) ->
              let fb = sf.sf_fiber in
              Hashtbl.replace last_reaction fb g;
              Hashtbl.replace installs (e, fb) install;
              Metrics.observe metrics "queue_wait_s"
                (float_of_int (max 0 (g - (base + Option.get sf.sf_alarm))));
              if sf.sf_onset >= 0 then
                Metrics.observe metrics "detection_latency_s"
                  (float_of_int
                     (Option.get sf.sf_alarm - sf.sf_onset));
              ev g "react" fb latency;
              ev install "install" fb p;
              detections :=
                {
                  Runtime.d_epoch = e;
                  d_fiber = fb;
                  d_onset = (if sf.sf_onset >= 0 then base + sf.sf_onset else -1);
                  d_alarm = base + Option.get sf.sf_alarm;
                  d_install = Some install;
                  d_prob = p;
                  d_fallback = fell_back;
                  d_cut = Option.map (fun c -> base + c) sf.sf_cut_at;
                }
                :: !detections)
            predicted;
          install
        in
        let shed ~tick sf =
          let fb = sf.sf_fiber in
          Metrics.incr metrics "shed";
          Metrics.incr sh_metrics.(pt.pt_region_of.(fb)) "shed";
          ev tick "shed" fb 0.0;
          detections :=
            {
              Runtime.d_epoch = e;
              d_fiber = fb;
              d_onset = (if sf.sf_onset >= 0 then base + sf.sf_onset else -1);
              d_alarm = base + Option.get sf.sf_alarm;
              d_install = None;
              d_prob = 0.0;
              d_fallback = false;
              d_cut = Option.map (fun c -> base + c) sf.sf_cut_at;
            }
            :: !detections
        in
        List.iter
          (fun (g, members) ->
            Metrics.incr ~by:(List.length members) metrics "alarms";
            List.iter
              (fun sf ->
                Metrics.incr sh_metrics.(pt.pt_region_of.(sf.sf_fiber)) "alarms")
              members;
            let eligible, debounced =
              List.partition
                (fun sf ->
                  match Hashtbl.find_opt last_reaction sf.sf_fiber with
                  | Some t -> g - t >= cfg.debounce_s
                  | None -> true)
                members
            in
            List.iter
              (fun sf ->
                Metrics.incr metrics "debounced";
                detections :=
                  {
                    Runtime.d_epoch = e;
                    d_fiber = sf.sf_fiber;
                    d_onset =
                      (if sf.sf_onset >= 0 then base + sf.sf_onset else -1);
                    d_alarm = g;
                    d_install = None;
                    d_prob = 0.0;
                    d_fallback = false;
                    d_cut = Option.map (fun c -> base + c) sf.sf_cut_at;
                  }
                  :: !detections)
              debounced;
            if eligible <> [] then
              Coalescer.offer co ~now:g ~dispatch ~shed eligible)
          (groups alarmed);
        (* Epoch barrier: the controller catches up before the next
           epoch's merge, so every batch is intra-epoch. *)
        Coalescer.flush co ~dispatch;
        Option.iter
          (fun st ->
            match
              Metrics.time metrics "retrain" (fun () ->
                  Runtime.Internal.Retrain.step st ~epoch:e)
            with
            | None -> ()
            | Some (m, name) ->
              Metrics.incr metrics "retrains";
              let t0 = Clock.now () in
              Array.iter (fun srv -> Predictor.swap ~name srv m) servers;
              Metrics.observe_wall metrics "swap_s" (Clock.elapsed_since t0))
          retrain_state;
        let evs = Array.of_list (List.rev !epoch_events) in
        let order = Array.init (Array.length evs) Fun.id in
        Array.stable_sort
          (fun i j ->
            let ti, _, _, _ = evs.(i) and tj, _, _, _ = evs.(j) in
            compare (ti, i) (tj, j))
          order;
        Array.iter
          (fun i ->
            let tick, kind, fiber, value = evs.(i) in
            Ring.push ring ~tick ~kind ~fiber ~value)
          order
      done);
  let detections = List.rev !detections in
  Hashtbl.fold
    (fun rung c () -> Metrics.incr ~by:c metrics ("rung_" ^ rung))
    rung_counts ();
  (* Phase 4 — evaluation: same arithmetic as Runtime.run. *)
  let state_instant =
    Array.map (fun s -> s.Simulate.Internal.es_state) samples
  in
  let epoch_cuts = Array.map (fun s -> s.Simulate.Internal.es_cuts) samples in
  let reacted = ref 0 and missed = ref 0 in
  let state_stream =
    Array.mapi
      (fun e (s : Simulate.Internal.epoch_sample) ->
        match s.es_state with
        | None -> None
        | Some fb ->
          let deadline =
            match byf.(e).(fb) with
            | Some { sf_cut_at = Some c; _ } -> (e * epoch_len) + c - 1
            | _ -> (e * epoch_len) + epoch_len - 1
          in
          let in_time =
            match Hashtbl.find_opt installs (e, fb) with
            | Some i -> i <= deadline
            | None -> false
          in
          let cut = List.mem fb s.es_cuts in
          if cut then if in_time then incr reacted else incr missed;
          if in_time then Some fb else None)
      samples
  in
  let state_periodic = Array.make cfg.epochs None in
  let class_demands =
    match tm with
    | None -> [| demands |]
    | Some m ->
      Array.map (Array.map (fun d -> d *. cfg.scale)) m.Traffic_model.tm_classes
  in
  let eval state =
    match tm with
    | None ->
      Simulate.Internal.eval_epochs pool env scheme ~demands ~state ~epoch_cuts
    | Some m ->
      Simulate.Internal.eval_epochs_classes pool env scheme ~class_demands
        ~class_of:(Traffic_model.class_of m) ~state ~epoch_cuts
  in
  let avail_stream =
    Metrics.time metrics "eval_stream" (fun () -> eval state_stream)
  in
  let avail_periodic =
    Metrics.time metrics "eval_periodic" (fun () -> eval state_periodic)
  in
  let avail_instant =
    Metrics.time metrics "eval_instant" (fun () -> eval state_instant)
  in
  let degr_epochs =
    Array.fold_left
      (fun acc (s : Simulate.Internal.epoch_sample) ->
        if s.es_degraded <> [] then acc + 1 else acc)
      0 samples
  in
  let cut_epochs =
    Array.fold_left
      (fun acc (s : Simulate.Internal.epoch_sample) ->
        if s.es_cuts <> [] then acc + 1 else acc)
      0 samples
  in
  (* Plan-cache traffic summed over the per-shard caches: the keys are
     target-salted, so the sum equals what one global cache would see. *)
  let hits, misses =
    Array.fold_left
      (fun (h, m) c ->
        let h', m' = Controller.cache_stats c in
        (h + h', m + m'))
      (0, 0) caches
  in
  Metrics.incr ~by:hits metrics "plan_cache_hits";
  Metrics.incr ~by:misses metrics "plan_cache_misses";
  let served, fell_back, swaps =
    Array.fold_left
      (fun (a, b, c) srv ->
        let a', b', c' = Predictor.stats srv in
        (a + a', b + b', c + c'))
      (0, 0, 0) servers
  in
  Metrics.incr ~by:served metrics "predictor_served";
  Metrics.incr ~by:fell_back metrics "predictor_fallbacks";
  (* Swap totals scale with the server count — partition-dependent, so
     they stay out of the core. *)
  Metrics.incr ~by:swaps aux "predictor_swaps";
  let offered, batches, batched, shed_n, deferred =
    Coalescer.stats co
  in
  let alarms = Metrics.counter metrics "alarms" in
  let debounced = Metrics.counter metrics "debounced" in
  ignore offered;
  Metrics.incr ~by:batches metrics "coalesced_batches";
  Metrics.incr ~by:batched metrics "batched_reactions";
  Metrics.incr ~by:deferred metrics "deferred";
  Metrics.incr ~by:!reacted metrics "reacted_in_time";
  Metrics.incr ~by:!missed metrics "missed_cuts";
  Metrics.incr ~by:(cfg.epochs * n) metrics "fibers_streamed";
  Metrics.incr ~by:(Ring.dropped ring) metrics "ring_dropped";
  Metrics.set_gauge metrics "avail_stream" avail_stream;
  Metrics.set_gauge metrics "avail_periodic" avail_periodic;
  Metrics.set_gauge metrics "avail_instant" avail_instant;
  Metrics.set_gauge aux "shards" (float_of_int k);
  let shard_stats =
    Array.init k (fun s ->
        let samples_n = ref 0 and alarms_n = ref 0 and busy_s = ref 0.0 in
        for e = 0 to cfg.epochs - 1 do
          busy_s := !busy_s +. busy.((e * k) + s);
          Array.iter
            (fun sf ->
              samples_n := !samples_n + sf.sf_samples;
              if sf.sf_alarm <> None then incr alarms_n)
            runs.((e * k) + s)
        done;
        Metrics.add_wall sh_metrics.(s) "loop" !busy_s;
        {
          ss_region = s;
          ss_fibers = Array.length pt.pt_regions.(s);
          ss_samples = !samples_n;
          ss_alarms = !alarms_n;
          ss_busy_s = !busy_s;
          ss_metrics = sh_metrics.(s);
        })
  in
  {
    s_config = cfg;
    s_partition = pt;
    s_flows = flows;
    s_epochs = cfg.epochs;
    s_degr_epochs = degr_epochs;
    s_cut_epochs = cut_epochs;
    s_detections = detections;
    s_reacted_in_time = !reacted;
    s_missed = !missed;
    s_avail_stream = avail_stream;
    s_avail_periodic = avail_periodic;
    s_avail_instant = avail_instant;
    s_alarms = alarms;
    s_batches = batches;
    s_batched = batched;
    s_shed = shed_n;
    s_deferred = deferred;
    s_debounced = debounced;
    s_metrics = metrics;
    s_aux = aux;
    s_ring = ring;
    s_shards = shard_stats;
    s_solver = solver;
  }

let accounted r = r.s_alarms = r.s_debounced + r.s_shed + r.s_batched

let aggregate_rate r =
  Array.fold_left
    (fun acc ss ->
      acc +. (float_of_int ss.ss_samples /. Float.max ss.ss_busy_s 1e-9))
    0.0 r.s_shards

let tick_rate r =
  let ticks =
    r.s_epochs
    * (epoch_len + r.s_config.Runtime.impairments.Stream.max_delay)
  in
  Array.fold_left
    (fun acc ss ->
      Float.min acc (float_of_int ticks /. Float.max ss.ss_busy_s 1e-9))
    infinity r.s_shards

(* ------------------------------------------------------------------ *)
(* Dump / replay                                                       *)
(* ------------------------------------------------------------------ *)

let deterministic_core r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"summary\": {";
  Buffer.add_string b
    (Printf.sprintf
       "\"epochs\": %d, \"fibers\": %d, \"flows\": %d, \"degr_epochs\": %d, \
        \"cut_epochs\": %d, \"detections\": %d, \"alarms\": %d, \
        \"batches\": %d, \"batched\": %d, \"shed\": %d, \"deferred\": %d, \
        \"debounced\": %d, \"reacted_in_time\": %d, \"missed\": %d}, "
       r.s_epochs
       (Array.length r.s_partition.pt_region_of)
       r.s_flows r.s_degr_epochs r.s_cut_epochs
       (List.length r.s_detections)
       r.s_alarms r.s_batches r.s_batched r.s_shed r.s_deferred r.s_debounced
       r.s_reacted_in_time r.s_missed);
  Buffer.add_string b
    (Printf.sprintf
       "\"availability\": {\"stream\": %.17g, \"periodic\": %.17g, \
        \"instant\": %.17g}, "
       r.s_avail_stream r.s_avail_periodic r.s_avail_instant);
  Buffer.add_string b "\"metrics\": ";
  Buffer.add_string b (Metrics.to_json ~walls:false r.s_metrics);
  Buffer.add_string b ", \"events\": ";
  Buffer.add_string b (Ring.to_json r.s_ring);
  Buffer.add_string b "}";
  Buffer.contents b

let dump r =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"prete_rt_shard\": 1,\n\"config\": ";
  Buffer.add_string b (Runtime.Internal.config_to_json r.s_config);
  Buffer.add_string b ",\n\"core\": ";
  Buffer.add_string b (deterministic_core r);
  Buffer.add_string b ",\n\"shards\": [";
  Array.iteri
    (fun i ss ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"region\": %d, \"fibers\": %d, \"samples\": %d, \"alarms\": %d, \
            \"busy_s\": %.6f, \"metrics\": %s}"
           ss.ss_region ss.ss_fibers ss.ss_samples ss.ss_alarms ss.ss_busy_s
           (Metrics.to_json ss.ss_metrics)))
    r.s_shards;
  Buffer.add_string b "],\n\"aux\": ";
  Buffer.add_string b (Metrics.to_json ~walls:false r.s_aux);
  Buffer.add_string b ",\n\"solver\": ";
  Buffer.add_string b (Prete_lp.Solver_stats.to_json r.s_solver);
  Buffer.add_string b ",\n\"wall_s\": ";
  Buffer.add_string b (Metrics.walls_json r.s_metrics);
  Buffer.add_string b "}\n";
  Buffer.contents b

let is_dump json = Runtime.Internal.field_raw json "prete_rt_shard" <> None

let replay ?pool json =
  let cfg = Runtime.config_of_dump json in
  let dumped_core =
    match Runtime.Internal.object_at json "core" with
    | Some c -> c
    | None -> failwith "Shard.replay: no core section"
  in
  let r = run ?pool cfg in
  (r, String.equal (deterministic_core r) dumped_core)
