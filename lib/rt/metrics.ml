type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : (int, int) Hashtbl.t;  (* binary exponent -> count *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  walls : (string, float ref) Hashtbl.t;
  (* Wall-clock histograms live outside the deterministic core: like
     [walls] they are serialized only when [~walls:true], so dump/replay
     comparisons of [to_json ~walls:false] stay bit-identical. *)
  whists : (string, hist) Hashtbl.t;
  lock : Mutex.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    walls = Hashtbl.create 16;
    whists = Hashtbl.create 8;
    lock = Mutex.create ();
  }

let guarded t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let incr ?(by = 1) t name =
  guarded t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.counters name (ref by))

let counter t name =
  guarded t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let set_gauge t name v =
  guarded t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace t.gauges name (ref v))

let gauge t name =
  guarded t (fun () -> Option.map ( ! ) (Hashtbl.find_opt t.gauges name))

(* Bucket of v: the binary exponent e with 2^(e-1) <= v < 2^e, from
   frexp (exact — no log rounding at bucket boundaries); non-positive
   values collapse into a single underflow bucket below every real
   exponent. *)
let underflow_bucket = -1074

let bucket_of v =
  if v <= 0.0 then underflow_bucket
  else
    let _, e = Float.frexp v in
    e

let observe_into tbl name v =
  let h =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
      let h =
        {
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          buckets = Hashtbl.create 8;
        }
      in
      Hashtbl.replace tbl name h;
      h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_min <- Float.min h.h_min v;
  h.h_max <- Float.max h.h_max v;
  let b = bucket_of v in
  Hashtbl.replace h.buckets b
    (1 + Option.value ~default:0 (Hashtbl.find_opt h.buckets b))

let observe t name v = guarded t (fun () -> observe_into t.hists name v)
let observe_wall t name v = guarded t (fun () -> observe_into t.whists name v)

let wall_hist_count t name =
  guarded t (fun () ->
      match Hashtbl.find_opt t.whists name with Some h -> h.h_count | None -> 0)

let wall_hist_mean t name =
  guarded t (fun () ->
      match Hashtbl.find_opt t.whists name with
      | Some h when h.h_count > 0 -> h.h_sum /. float_of_int h.h_count
      | _ -> 0.0)

let wall_hist_max t name =
  guarded t (fun () ->
      match Hashtbl.find_opt t.whists name with
      | Some h when h.h_count > 0 -> h.h_max
      | _ -> 0.0)

let hist_count t name =
  guarded t (fun () ->
      match Hashtbl.find_opt t.hists name with Some h -> h.h_count | None -> 0)

let hist_sum t name =
  guarded t (fun () ->
      match Hashtbl.find_opt t.hists name with Some h -> h.h_sum | None -> 0.0)

let hist_mean t name =
  guarded t (fun () ->
      match Hashtbl.find_opt t.hists name with
      | Some h when h.h_count > 0 -> h.h_sum /. float_of_int h.h_count
      | _ -> 0.0)

let hist_max t name =
  guarded t (fun () ->
      match Hashtbl.find_opt t.hists name with
      | Some h when h.h_count > 0 -> h.h_max
      | _ -> 0.0)

(* Nearest-rank quantile over the log-histogram, linearly interpolated
   inside the bucket the rank lands in.  Pure integer/float arithmetic
   over the bucket table, so the estimate is deterministic — the bench
   gates compare it across runs. *)
let hist_quantile t name q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Metrics.hist_quantile: q must be in [0, 1]";
  guarded t (fun () ->
      match Hashtbl.find_opt t.hists name with
      | None -> 0.0
      | Some h when h.h_count = 0 -> 0.0
      | Some h ->
        let rank =
          max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count)))
        in
        let buckets =
          Hashtbl.fold (fun e n acc -> (e, n) :: acc) h.buckets []
          |> List.sort compare
        in
        let rec walk cum = function
          | [] -> h.h_max
          | (e, n) :: rest ->
            if cum + n < rank then walk (cum + n) rest
            else if e = underflow_bucket then Float.min h.h_min 0.0
            else begin
              let lo = Float.ldexp 1.0 (e - 1) and hi = Float.ldexp 1.0 e in
              let frac = float_of_int (rank - cum) /. float_of_int n in
              let v = lo +. ((hi -. lo) *. frac) in
              Float.max h.h_min (Float.min h.h_max v)
            end
        in
        walk 0 buckets)

let add_wall t name s =
  guarded t (fun () ->
      match Hashtbl.find_opt t.walls name with
      | Some r -> r := !r +. s
      | None -> Hashtbl.replace t.walls name (ref s))

let time t name f =
  let t0 = Prete_util.Clock.now () in
  Fun.protect
    ~finally:(fun () -> add_wall t name (Prete_util.Clock.elapsed_since t0))
    f

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hist_json h =
  let buckets =
    Hashtbl.fold (fun e n acc -> (e, n) :: acc) h.buckets []
    |> List.sort compare
    |> List.map (fun (e, n) -> Printf.sprintf "[%d, %d]" e n)
  in
  if h.h_count = 0 then "{\"count\": 0}"
  else
    Printf.sprintf
      "{\"count\": %d, \"sum\": %.9g, \"min\": %.9g, \"max\": %.9g, \
       \"buckets\": [%s]}"
      h.h_count h.h_sum h.h_min h.h_max
      (String.concat ", " buckets)

let walls_json t =
  guarded t (fun () ->
      Printf.sprintf "{%s}"
        (String.concat ", "
           (sorted_bindings t.walls ( ! )
           |> List.map (fun (k, v) -> Printf.sprintf "\"%s\": %.6f" k v))))

let to_json ?(walls = true) t =
  guarded t (fun () ->
      let counters =
        sorted_bindings t.counters ( ! )
        |> List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v)
      in
      let gauges =
        sorted_bindings t.gauges ( ! )
        |> List.map (fun (k, v) -> Printf.sprintf "\"%s\": %.9g" k v)
      in
      let hists =
        sorted_bindings t.hists Fun.id
        |> List.map (fun (k, h) -> Printf.sprintf "\"%s\": %s" k (hist_json h))
      in
      let sections =
        [
          Printf.sprintf "\"counters\": {%s}" (String.concat ", " counters);
          Printf.sprintf "\"gauges\": {%s}" (String.concat ", " gauges);
          Printf.sprintf "\"histograms\": {%s}" (String.concat ", " hists);
        ]
        @
        if walls then
          [
            Printf.sprintf "\"wall_s\": {%s}"
              (String.concat ", "
                 (sorted_bindings t.walls ( ! )
                 |> List.map (fun (k, v) -> Printf.sprintf "\"%s\": %.6f" k v)));
            Printf.sprintf "\"wall_histograms\": {%s}"
              (String.concat ", "
                 (sorted_bindings t.whists Fun.id
                 |> List.map (fun (k, h) ->
                        Printf.sprintf "\"%s\": %s" k (hist_json h))));
          ]
        else []
      in
      Printf.sprintf "{%s}" (String.concat ", " sections))
