type entry = { seq : int; tick : int; kind : string; fiber : int; value : float }

type t = {
  capacity : int;
  buf : entry array;
  mutable count : int;  (* total pushed *)
}

let dummy = { seq = -1; tick = 0; kind = ""; fiber = -1; value = 0.0 }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { capacity; buf = Array.make capacity dummy; count = 0 }

let push t ~tick ~kind ~fiber ~value =
  t.buf.(t.count mod t.capacity) <- { seq = t.count; tick; kind; fiber; value };
  t.count <- t.count + 1

let total t = t.count
let dropped t = max 0 (t.count - t.capacity)
let overflowed t = t.count > t.capacity

let entries t =
  let n = min t.count t.capacity in
  let first = t.count - n in
  Array.init n (fun i -> t.buf.((first + i) mod t.capacity))

let entry_json e =
  Printf.sprintf
    "{\"seq\": %d, \"t\": %d, \"kind\": \"%s\", \"fiber\": %d, \"v\": %.9g}"
    e.seq e.tick e.kind e.fiber e.value

let to_json t =
  let es = entries t in
  Printf.sprintf "[%s]"
    (String.concat ", " (Array.to_list (Array.map entry_json es)))
