open Prete_net
open Prete
module Pool = Prete_exec.Pool

(* ------------------------------------------------------------------ *)
(* Fault profiles                                                      *)
(* ------------------------------------------------------------------ *)

type profile = {
  pf_name : string;
  pf_impairments : Stream.impairments;
  pf_deadline_s : float option;
  pf_debounce_s : int;
}

let profiles =
  [
    {
      pf_name = "clean";
      pf_impairments = Stream.default_impairments;
      pf_deadline_s = None;
      pf_debounce_s = 30;
    };
    {
      pf_name = "lossy";
      pf_impairments =
        { Stream.gap_rate = 0.12; dup_rate = 0.04; reorder_rate = 0.25; max_delay = 6 };
      pf_deadline_s = Some 0.25;
      pf_debounce_s = 30;
    };
  ]

let profile_names = List.map (fun p -> p.pf_name) profiles

let profile_by_name name =
  match List.find_opt (fun p -> p.pf_name = name) profiles with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Sweep.profile_by_name: unknown fault profile %s (known: %s)"
         name
         (String.concat ", " profile_names))

let policies = [ "periodic"; "stream"; "stream+detour"; "instant" ]

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

type cell = {
  cl_topology : string;
  cl_traffic : string;
  cl_profile : string;
  cl_policy : string;
  cl_phi : float;
  cl_availability : float;
  cl_nines : float;
}

type combo = {
  cb_topology : string;
  cb_traffic : string;
  cb_profile : string;
  cb_flows : int;
  cb_degr_epochs : int;
  cb_cut_epochs : int;
  cb_detections : int;
  cb_reacted : int;
  cb_missed : int;
  cb_alarms : int;
  cb_reactions : int;
  cb_rungs : (string * int) list;
  cb_detour_activations : int;
  cb_detour_rescued : int;
  cb_detour_flows_patched : int;
  cb_solver_solves : int;
  cb_solver_warm_solves : int;
  cb_solver_pivots : int;
  cb_solver_cache_hits : int;
  cb_solver_cache_misses : int;
  cb_lp_engine : string;
  cb_solver_ft_updates : int;
  cb_solver_bound_flips : int;
  cb_solver_lu_fill_nnz : int;
  cb_solver_presolve_rows : int;
  cb_solver_presolve_cols : int;
}

type portfolio = {
  pt_seed : int;
  pt_epochs : int;
  pt_scale : float;
  pt_topologies : string list;
  pt_traffic : string list;
  pt_profiles : string list;
  pt_policies : string list;
  pt_cells : cell list;
  pt_combos : combo list;
}

(* Standing-plan unmet fraction Φ of a combo: how much baseline demand
   the PreTE no-degradation plan leaves unserved before any failure. *)
let standing_phi (env : Availability.env) scheme ~demands =
  let plan = Availability.Internal.plan_alloc env scheme ~demands ~degraded:None in
  let ts = plan.Availability.p_ts in
  let alloc = plan.Availability.p_alloc in
  let served = ref 0.0 and total = ref 0.0 in
  Array.iter
    (fun (f : Tunnels.flow) ->
      let fid = f.Tunnels.flow_id in
      let d = demands.(fid) in
      if d > 0.0 then begin
        let got =
          List.fold_left (fun acc tid -> acc +. alloc.(tid)) 0.0
            ts.Tunnels.of_flow.(fid)
        in
        let got =
          match plan.Availability.p_admitted with
          | None -> got
          | Some b -> Float.min got b.(fid)
        in
        served := !served +. Float.min d got;
        total := !total +. d
      end)
    ts.Tunnels.flows;
  if !total <= 0.0 then 0.0 else 1.0 -. (!served /. !total)

let rung_names = [ "detour"; "primary"; "cached"; "equal-split" ]

let run ?pool ?(seed = 123) ?(epochs = 12) ?(scale = 1.0) ~topologies ~traffic
    ~profiles:wanted () =
  if topologies = [] || traffic = [] || wanted = [] then
    invalid_arg "Sweep.run: every matrix axis needs at least one entry";
  let profs = List.map profile_by_name wanted in
  let owns_pool = pool = None in
  let pool = match pool with Some p -> p | None -> Pool.create () in
  Fun.protect ~finally:(fun () -> if owns_pool then Pool.shutdown pool)
  @@ fun () ->
  let cells = ref [] and combos = ref [] in
  List.iter
    (fun topo_name ->
      let topo = Topology.by_name topo_name in
      List.iter
        (fun spec ->
          let tm = Traffic_model.by_name spec topo in
          (* Env and tunnels are shared across the combo's fault
             profiles: the scenario is the same network under the same
             workload, only the telemetry transport differs. *)
          let env =
            Availability.make_env
              ~traffic:(Traffic_model.to_traffic tm)
              ~tunnels:(Tunnels.build topo tm.Traffic_model.tm_pairs)
              topo
          in
          let nf = Topology.num_fibers topo in
          let phi_scheme =
            Schemes.prete_default
              ~predictor:(Prete_optics.Hazard.eval ~num_fibers:nf)
              ()
          in
          let standing =
            Array.map (fun d -> d *. scale) (Traffic_model.baseline tm)
          in
          let phi = standing_phi env phi_scheme ~demands:standing in
          List.iter
            (fun pf ->
              let cfg =
                {
                  Runtime.default_config with
                  Runtime.topology = topo_name;
                  traffic = spec;
                  epochs;
                  seed;
                  scale;
                  impairments = pf.pf_impairments;
                  deadline_s = pf.pf_deadline_s;
                  debounce_s = pf.pf_debounce_s;
                  detour = true;
                  (* Inherit the session engine (e.g. --lp-engine) at
                     sweep time, not the module-init default. *)
                  lp_engine =
                    Prete_lp.Simplex.engine_name
                      !Prete_lp.Simplex.default_engine;
                }
              in
              let r = Runtime.run ~pool ~env cfg in
              let avail = function
                | "periodic" -> r.Runtime.r_avail_periodic
                | "stream" -> r.Runtime.r_avail_stream
                | "stream+detour" -> (
                  match r.Runtime.r_avail_detour with
                  | Some v -> v
                  | None -> r.Runtime.r_avail_stream)
                | "instant" -> r.Runtime.r_avail_instant
                | p -> invalid_arg ("Sweep.run: unknown policy " ^ p)
              in
              List.iter
                (fun policy ->
                  let a = avail policy in
                  cells :=
                    {
                      cl_topology = topo_name;
                      cl_traffic = spec;
                      cl_profile = pf.pf_name;
                      cl_policy = policy;
                      cl_phi = phi;
                      cl_availability = a;
                      cl_nines = Availability.nines a;
                    }
                    :: !cells)
                policies;
              let m = r.Runtime.r_metrics in
              let s = r.Runtime.r_solver in
              combos :=
                {
                  cb_topology = topo_name;
                  cb_traffic = spec;
                  cb_profile = pf.pf_name;
                  cb_flows = Traffic_model.num_flows tm;
                  cb_degr_epochs = r.Runtime.r_degr_epochs;
                  cb_cut_epochs = r.Runtime.r_cut_epochs;
                  cb_detections = List.length r.Runtime.r_detections;
                  cb_reacted = r.Runtime.r_reacted_in_time;
                  cb_missed = r.Runtime.r_missed;
                  cb_alarms = Metrics.counter m "alarms";
                  cb_reactions = Metrics.counter m "reactions";
                  cb_rungs =
                    List.map (fun rg -> (rg, Metrics.counter m ("rung_" ^ rg))) rung_names;
                  cb_detour_activations = Metrics.counter m "detour_activations";
                  cb_detour_rescued = Metrics.counter m "detour_rescued_epochs";
                  cb_detour_flows_patched = Metrics.counter m "detour_flows_patched";
                  cb_solver_solves = s.Prete_lp.Solver_stats.solves;
                  cb_solver_warm_solves = s.Prete_lp.Solver_stats.warm_solves;
                  cb_solver_pivots = s.Prete_lp.Solver_stats.pivots;
                  cb_solver_cache_hits = s.Prete_lp.Solver_stats.cache_hits;
                  cb_solver_cache_misses = s.Prete_lp.Solver_stats.cache_misses;
                  cb_lp_engine = cfg.Runtime.lp_engine;
                  cb_solver_ft_updates = s.Prete_lp.Solver_stats.ft_updates;
                  cb_solver_bound_flips = s.Prete_lp.Solver_stats.bound_flips;
                  cb_solver_lu_fill_nnz = s.Prete_lp.Solver_stats.lu_fill_nnz;
                  cb_solver_presolve_rows =
                    s.Prete_lp.Solver_stats.presolve_rows;
                  cb_solver_presolve_cols =
                    s.Prete_lp.Solver_stats.presolve_cols;
                }
                :: !combos)
            profs)
        traffic)
    topologies;
  {
    pt_seed = seed;
    pt_epochs = epochs;
    pt_scale = scale;
    pt_topologies = topologies;
    pt_traffic = traffic;
    pt_profiles = wanted;
    pt_policies = policies;
    pt_cells = List.rev !cells;
    pt_combos = List.rev !combos;
  }

(* ------------------------------------------------------------------ *)
(* Portfolio JSON                                                      *)
(* ------------------------------------------------------------------ *)

(* Hand-built, %.17g floats, no wall clocks anywhere: the portfolio is
   part of the bit-identical-at-any-domain-count contract (the sweep
   smoke byte-compares it across domain counts). *)

let string_list_json l =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "\"%s\"") l) ^ "]"

let cell_json c =
  Printf.sprintf
    "{\"topology\": \"%s\", \"traffic\": \"%s\", \"profile\": \"%s\", \
     \"policy\": \"%s\", \"phi\": %.17g, \"availability\": %.17g, \
     \"nines\": %.17g}"
    c.cl_topology c.cl_traffic c.cl_profile c.cl_policy c.cl_phi
    c.cl_availability c.cl_nines

let combo_json c =
  let rungs =
    String.concat ", "
      (List.map (fun (rg, n) -> Printf.sprintf "\"%s\": %d" rg n) c.cb_rungs)
  in
  Printf.sprintf
    "{\"topology\": \"%s\", \"traffic\": \"%s\", \"profile\": \"%s\", \
     \"flows\": %d, \"degr_epochs\": %d, \"cut_epochs\": %d, \
     \"detections\": %d, \"reacted_in_time\": %d, \"missed\": %d, \
     \"alarms\": %d, \"reactions\": %d, \"rungs\": {%s}, \
     \"detour\": {\"activations\": %d, \"rescued_epochs\": %d, \
     \"flows_patched\": %d}, \
     \"solver\": {\"engine\": \"%s\", \"solves\": %d, \"warm_solves\": %d, \
     \"pivots\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \
     \"ft_updates\": %d, \"bound_flips\": %d, \"lu_fill_nnz\": %d, \
     \"presolve_rows\": %d, \"presolve_cols\": %d}}"
    c.cb_topology c.cb_traffic c.cb_profile c.cb_flows c.cb_degr_epochs
    c.cb_cut_epochs c.cb_detections c.cb_reacted c.cb_missed c.cb_alarms
    c.cb_reactions rungs c.cb_detour_activations c.cb_detour_rescued
    c.cb_detour_flows_patched c.cb_lp_engine c.cb_solver_solves
    c.cb_solver_warm_solves c.cb_solver_pivots c.cb_solver_cache_hits
    c.cb_solver_cache_misses c.cb_solver_ft_updates c.cb_solver_bound_flips
    c.cb_solver_lu_fill_nnz c.cb_solver_presolve_rows
    c.cb_solver_presolve_cols

let to_json p =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"prete_sweep\": 1,\n\"seed\": %d, \"epochs\": %d, \"scale\": %.17g,\n"
       p.pt_seed p.pt_epochs p.pt_scale);
  Buffer.add_string b
    (Printf.sprintf
       "\"matrix\": {\"topologies\": %s, \"traffic\": %s, \"profiles\": %s, \
        \"policies\": %s},\n"
       (string_list_json p.pt_topologies)
       (string_list_json p.pt_traffic)
       (string_list_json p.pt_profiles)
       (string_list_json p.pt_policies));
  Buffer.add_string b "\"cells\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map cell_json p.pt_cells));
  Buffer.add_string b "\n],\n\"combos\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map combo_json p.pt_combos));
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let find_cells p ~policy = List.filter (fun c -> c.cl_policy = policy) p.pt_cells
