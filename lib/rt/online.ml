(* Incremental accumulators replicate the offline folds' operation order
   (see Prete_util.Timeseries): [degree] is the running
   [Float.max acc (v -. baseline)] fold from 0.0, [mean_abs_gradient]
   sums |Δ| in arrival order and divides once at read time,
   [fluctuation_count] counts strict >threshold steps — so the values
   are bit-identical to the offline functions on the same prefix, not
   merely close. *)

type acc = {
  baseline : float;
  threshold : float;
  mutable n : int;
  mutable last : float;
  mutable deg : float;
  mutable grad_sum : float;
  mutable fluct : int;
}

let acc_create ?(fluct_threshold = 0.01) ~baseline () =
  {
    baseline;
    threshold = fluct_threshold;
    n = 0;
    last = 0.0;
    deg = 0.0;
    grad_sum = 0.0;
    fluct = 0;
  }

let acc_add a v =
  a.deg <- Float.max a.deg (v -. a.baseline);
  if a.n > 0 then begin
    let d = Float.abs (v -. a.last) in
    a.grad_sum <- a.grad_sum +. d;
    if d > a.threshold then a.fluct <- a.fluct + 1
  end;
  a.last <- v;
  a.n <- a.n + 1

let acc_count a = a.n
let degree a = a.deg

let mean_abs_gradient a =
  if a.n < 2 then 0.0 else a.grad_sum /. float_of_int (a.n - 1)

let fluctuation_count a = a.fluct

(* ------------------------------------------------------------------ *)
(* Reorder-tolerant ingest                                              *)
(* ------------------------------------------------------------------ *)

type ingest = {
  horizon : int;
  pending : (int, float) Hashtbl.t;
  mutable next : int;  (* next timestamp to finalize *)
  mutable last_present : (int * float) option;  (* last emitted present *)
  mutable max_seen : int;
  mutable dups : int;
  mutable late : int;
  mutable filled : int;
}

let ingest_create ?(horizon = 3) () =
  if horizon < 0 then invalid_arg "Online.ingest_create: negative horizon";
  {
    horizon;
    pending = Hashtbl.create 32;
    next = 0;
    last_present = None;
    max_seen = -1;
    dups = 0;
    late = 0;
    filled = 0;
  }

let offer g ~t ~v =
  if t < g.next then g.late <- g.late + 1
  else if Hashtbl.mem g.pending t then g.dups <- g.dups + 1
  else begin
    Hashtbl.replace g.pending t v;
    if t > g.max_seen then g.max_seen <- t
  end

(* Smallest present timestamp in (after, upto], or None.  A timestamp's
   presence is only {e final} once it is at or behind the finalization
   frontier (no arrival can still land there), so the caller bounds
   [upto] by the frontier — this is what makes online gap interpolation
   agree with the offline pass over the completed trace: both use the
   true nearest present neighbours. *)
let next_present g ~after ~upto =
  let rec scan t =
    if t > upto then None
    else
      match Hashtbl.find_opt g.pending t with
      | Some v -> Some (t, v)
      | None -> scan (t + 1)
  in
  scan (after + 1)

(* Finalize everything at or behind [frontier].  [closing] additionally
   fills a trailing gap (stream over: no right neighbour will ever
   come). *)
let finalize g ~frontier ~closing =
  let out = ref [] in
  let emit t v = out := (t, v) :: !out in
  let continue = ref true in
  while !continue && g.next <= frontier do
    match Hashtbl.find_opt g.pending g.next with
    | Some v ->
      Hashtbl.remove g.pending g.next;
      emit g.next v;
      g.last_present <- Some (g.next, v);
      g.next <- g.next + 1
    | None -> (
      match next_present g ~after:g.next ~upto:frontier with
      | Some (t1, v1) ->
        (* Interior (or leading) gap with a determined right neighbour:
           the exact Timeseries.interpolate_missing arithmetic. *)
        (match g.last_present with
        | None ->
          for j = g.next to t1 - 1 do
            emit j v1;
            g.filled <- g.filled + 1
          done
        | Some (i0, v0) ->
          let span = float_of_int (t1 - i0) in
          for j = g.next to t1 - 1 do
            let w = float_of_int (j - i0) /. span in
            emit j (((1.0 -. w) *. v0) +. (w *. v1));
            g.filled <- g.filled + 1
          done);
        g.next <- t1
      | None ->
        if closing then begin
          (match g.last_present with
          | None -> invalid_arg "Online.flush: no samples present"
          | Some (_, v0) ->
            for j = g.next to frontier do
              emit j v0;
              g.filled <- g.filled + 1
            done);
          g.next <- frontier + 1
        end
        else continue := false (* right neighbour not yet determined *))
  done;
  List.rev !out

let drain g ~now = finalize g ~frontier:(now - g.horizon) ~closing:false
let flush g ~upto = finalize g ~frontier:upto ~closing:true
let dups g = g.dups
let late g = g.late
let filled g = g.filled
