type config = {
  ewma_alpha : float;
  cusum_k : float;
  cusum_h : float;
  fluct_threshold : float;
  degr_threshold : float;
  cut_threshold : float;
}

let default_config =
  {
    ewma_alpha = 0.05;
    cusum_k = 0.5;
    cusum_h = 4.0;
    fluct_threshold = 0.01;
    degr_threshold = Prete_optics.Telemetry.degradation_threshold;
    cut_threshold = Prete_optics.Telemetry.cut_threshold;
  }

type segment = {
  seg_start : int;
  seg_end : int;
  seg_degree : float;
  seg_gradient : float;
  seg_fluctuation : int;
  seg_duration_s : int;
  seg_cut : bool;
}

type event =
  | Degr_start of int
  | Alarm of { at : int; score : float }
  | Segment_end of segment

type cls = Healthy | Degraded | Cut

type t = {
  cfg : config;
  baseline : float;
  mutable est : float;  (* EWMA estimate of the healthy level *)
  mutable score : float;  (* one-sided CUSUM *)
  mutable seg : (int * Online.acc) option;  (* open segment: start, features *)
  mutable alarmed : bool;  (* an alarm fired this episode *)
}

let create ?(config = default_config) ~baseline () =
  { cfg = config; baseline; est = baseline; score = 0.0; seg = None; alarmed = false }

(* Same thresholds and comparison sense as Telemetry.classify, against
   the configured (true) baseline. *)
let classify t v =
  let d = v -. t.baseline in
  if d >= t.cfg.cut_threshold then Cut
  else if d >= t.cfg.degr_threshold then Degraded
  else Healthy

let close_segment t ~at ~cut =
  match t.seg with
  | None -> []
  | Some (start, acc) ->
    let seg =
      {
        seg_start = start;
        seg_end = at;
        seg_degree = Online.degree acc;
        seg_gradient = Online.mean_abs_gradient acc;
        seg_fluctuation = Online.fluctuation_count acc;
        seg_duration_s = Online.acc_count acc;
        seg_cut = cut;
      }
    in
    t.seg <- None;
    t.score <- 0.0;
    t.alarmed <- false;
    [ Segment_end seg ]

let step t ~at ~v =
  match classify t v with
  | Degraded ->
    let events = ref [] in
    (match t.seg with
    | Some (_, acc) -> Online.acc_add acc v
    | None ->
      let acc =
        Online.acc_create ~fluct_threshold:t.cfg.fluct_threshold
          ~baseline:t.baseline ()
      in
      Online.acc_add acc v;
      t.seg <- Some (at, acc);
      events := Degr_start at :: !events;
      if not t.alarmed then begin
        t.alarmed <- true;
        events := Alarm { at; score = t.score } :: !events
      end);
    List.rev !events
  | Cut ->
    (* The cut sample itself is not part of the degraded segment (the
       offline segmentation stops at the last Degraded sample). *)
    close_segment t ~at ~cut:true
  | Healthy ->
    let closed = close_segment t ~at ~cut:false in
    (* CUSUM on the EWMA-debiased excess: catches slow ramps that sit
       below the +3 dB step classifier. *)
    t.score <- Float.max 0.0 (t.score +. (v -. t.est -. t.cfg.cusum_k));
    t.est <- t.est +. (t.cfg.ewma_alpha *. (v -. t.est));
    if t.score >= t.cfg.cusum_h && not t.alarmed then begin
      t.alarmed <- true;
      closed @ [ Alarm { at; score = t.score } ]
    end
    else closed

let in_segment t = t.seg <> None
let cusum_score t = t.score
let baseline_estimate t = t.est

let current_features t =
  match t.seg with
  | None -> None
  | Some (_, acc) ->
    Some
      ( Online.degree acc,
        Online.mean_abs_gradient acc,
        Online.fluctuation_count acc,
        Online.acc_count acc )
