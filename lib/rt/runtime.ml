open Prete_net
open Prete_optics
open Prete
module Rng = Prete_util.Rng
module Pool = Prete_exec.Pool

type predictor_kind = Hazard_oracle | Prior_only | Nn of int

let predictor_kind_name = function
  | Hazard_oracle -> "hazard"
  | Prior_only -> "prior"
  | Nn n -> Printf.sprintf "nn:%d" n

let predictor_kind_of_string s =
  match s with
  | "hazard" -> Hazard_oracle
  | "prior" -> Prior_only
  | _ ->
    (match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "nn" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt rest with
      | Some n when n > 0 -> Nn n
      | _ -> failwith ("Runtime.predictor_kind_of_string: " ^ s))
    | _ -> failwith ("Runtime.predictor_kind_of_string: " ^ s))

type shed_policy = Drop_newest | Drop_oldest

let shed_policy_name = function
  | Drop_newest -> "drop-newest"
  | Drop_oldest -> "drop-oldest"

let shed_policy_of_string = function
  | "drop-newest" -> Drop_newest
  | "drop-oldest" -> Drop_oldest
  | s -> failwith ("Runtime.shed_policy_of_string: " ^ s)

type retrain = {
  rt_every : int;
  rt_steps : int;
  rt_pairs : int;
  rt_min_events : int;
}

let default_retrain = { rt_every = 10; rt_steps = 2; rt_pairs = 2; rt_min_events = 1 }

type config = {
  topology : string;
  traffic : string;
  epochs : int;
  seed : int;
  scale : float;
  detector : Detector.config;
  impairments : Stream.impairments;
  debounce_s : int;
  deadline_s : float option;
  predictor : predictor_kind;
  stale_after : int option;
  detour : bool;
  ring_capacity : int;
  shards : int;
  queue_bound : int;
  shed_policy : shed_policy;
  lp_engine : string;
  retrain : retrain option;
}

let default_config =
  {
    topology = "B4";
    traffic = "fixed";
    epochs = 40;
    seed = 123;
    scale = 2.0;
    detector = Detector.default_config;
    impairments = Stream.default_impairments;
    debounce_s = 30;
    deadline_s = None;
    predictor = Hazard_oracle;
    stale_after = None;
    detour = true;
    ring_capacity = 4096;
    shards = 1;
    queue_bound = 64;
    shed_policy = Drop_newest;
    lp_engine = Prete_lp.Simplex.engine_name !Prete_lp.Simplex.default_engine;
    retrain = None;
  }

type detection = {
  d_epoch : int;
  d_fiber : int;
  d_onset : int;
  d_alarm : int;
  d_install : int option;
  d_prob : float;
  d_fallback : bool;
  d_cut : int option;
}

type result = {
  r_config : config;
  r_epochs : int;
  r_degr_epochs : int;
  r_cut_epochs : int;
  r_detections : detection list;
  r_reacted_in_time : int;
  r_missed : int;
  r_avail_stream : float;
  r_avail_periodic : float;
  r_avail_instant : float;
  r_avail_detour : float option;
  r_metrics : Metrics.t;
  r_ring : Ring.t;
  r_solver : Prete_lp.Solver_stats.t;
  r_scheme : Schemes.t;
}

(* ------------------------------------------------------------------ *)
(* Per-epoch detection (parallel, pure)                                *)
(* ------------------------------------------------------------------ *)

let epoch_len = int_of_float Hazard.epoch_seconds (* 900 *)

(* What one fiber's stream produced within its epoch.  Ticks are
   epoch-relative; the sequential merge globalizes them. *)
type fiber_run = {
  fr_fiber : int;
  fr_onset : int;
  fr_cut_at : int option;
  fr_truth : Hazard.features;
  fr_events : (int * string * float) list; (* (tick, kind, value), in order *)
  fr_alarm : int option;
  fr_alarm_feats : (float * float * int * int) option;
  fr_samples : int;
  fr_dups : int;
  fr_late : int;
  fr_filled : int;
  fr_segments : int;
  fr_cut_segments : int;
}

let process_fiber cfg ~topo ~rng ~fb ~(truth : Hazard.features) ~cut =
  (* Draw order per fiber is part of the determinism contract: trace
     seed, onset offset, then the transport schedule. *)
  let trace_seed = Rng.int rng 1_000_000 in
  let dur = int_of_float (Float.ceil truth.Hazard.duration_s) in
  let seg_len = max 1 (min dur (epoch_len - 120)) in
  let span = epoch_len - 120 - seg_len in
  let onset = 60 + if span > 0 then Rng.int rng span else 0 in
  let cut_at = if cut then Some (onset + seg_len) else None in
  let baseline = Telemetry.baseline_loss topo fb in
  let trace =
    Telemetry.synthesize ~seed:trace_seed ~baseline ~healthy_s:onset
      ~degradation:truth ?cut_at_s:cut_at ~total_s:epoch_len ()
  in
  let arrivals = Stream.schedule rng cfg.impairments trace in
  let q = Equeue.create () in
  List.iter (fun a -> Equeue.push q ~time:a.Stream.a_tick a) arrivals;
  let ing = Online.ingest_create ~horizon:cfg.impairments.Stream.max_delay () in
  let det = Detector.create ~config:cfg.detector ~baseline () in
  let events = ref [] in
  let alarm = ref None and alarm_feats = ref None in
  let segments = ref 0 and cut_segments = ref 0 in
  let on_event at = function
    | Detector.Degr_start t ->
      events := (t, "degr_seen", float_of_int (t - onset)) :: !events
    | Detector.Alarm { at = t; score } ->
      events := (t, "alarm", score) :: !events;
      if !alarm = None then begin
        alarm := Some t;
        alarm_feats := Detector.current_features det
      end
    | Detector.Segment_end seg ->
      incr segments;
      if seg.Detector.seg_cut then incr cut_segments;
      events := (at, "segment_end", seg.Detector.seg_degree) :: !events
  in
  let feed (t, v) = List.iter (on_event t) (Detector.step det ~at:t ~v) in
  (* The event loop proper: one logical tick per second, delivering the
     tick's arrivals and finalizing everything the reorder horizon
     allows.  A few extra ticks at the end let the last delayed
     arrivals land before the stream closes. *)
  for now = 0 to epoch_len - 1 + cfg.impairments.Stream.max_delay do
    List.iter
      (fun (_, a) -> Online.offer ing ~t:a.Stream.a_t ~v:a.Stream.a_v)
      (Equeue.pop_until q ~time:now);
    List.iter feed (Online.drain ing ~now)
  done;
  if arrivals <> [] then List.iter feed (Online.flush ing ~upto:(epoch_len - 1));
  {
    fr_fiber = fb;
    fr_onset = onset;
    fr_cut_at = cut_at;
    fr_truth = truth;
    fr_events = List.rev !events;
    fr_alarm = !alarm;
    fr_alarm_feats = !alarm_feats;
    fr_samples = List.length arrivals;
    fr_dups = Online.dups ing;
    fr_late = Online.late ing;
    fr_filled = Online.filled ing;
    fr_segments = !segments;
    fr_cut_segments = !cut_segments;
  }

let process_epoch cfg ~topo ~rng (s : Simulate.Internal.epoch_sample) =
  List.map
    (fun (fb, truth) ->
      process_fiber cfg ~topo ~rng ~fb ~truth
        ~cut:(List.mem fb s.Simulate.Internal.es_cuts))
    s.Simulate.Internal.es_degraded

(* ------------------------------------------------------------------ *)
(* Predictor construction                                              *)
(* ------------------------------------------------------------------ *)

let build_model kind (env : Availability.env) topo =
  match kind with
  | Hazard_oracle ->
    let nf = Topology.num_fibers topo in
    fun f -> Hazard.eval ~num_fibers:nf f
  | Prior_only -> Predictor.prior env.Availability.model
  | Nn train_epochs ->
    let ds = Dataset.generate ~model:env.Availability.model topo in
    let corpus = Prete_ml.Corpus.of_dataset ds in
    let mlp =
      Prete_ml.Mlp.train
        ~config:{ Prete_ml.Mlp.default_config with epochs = train_epochs }
        corpus.Prete_ml.Corpus.train
    in
    Prete_ml.Mlp.predict_proba mlp

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let measured_features (truth : Hazard.features) = function
  | Some (deg, grad, fluct, dur) ->
    {
      truth with
      Hazard.degree = deg;
      gradient = grad;
      fluctuation = fluct;
      duration_s = float_of_int dur;
    }
  | None ->
    (* CUSUM early warning before any sample classified as degraded:
       no measured excursion yet. *)
    { truth with Hazard.degree = 0.0; gradient = 0.0; fluctuation = 0; duration_s = 0.0 }

(* ------------------------------------------------------------------ *)
(* Online decision-focused retraining                                   *)
(* ------------------------------------------------------------------ *)

(* Shared by the single-node run and the sharded runtime: consumes the
   measured event stream (detector at-alarm features, not oracle truth),
   and at epoch boundaries tunes the current model's outputs against the
   realized TE loss ({!Prete_ml.Dfl}), installing the tuned vector as a
   per-fiber delta on top of the running closure.  Everything here is a
   pure function of (seed, epoch, collected events) — the measured set
   is keyed per fiber with explicit tick tie-breaking, so the retrain
   decision and the produced model are identical at any shard or domain
   count. *)
module Retrain = struct
  type state = {
    rc : retrain;
    seed : int;
    measured : (int, int * Hazard.features) Hashtbl.t;
    mutable events : int;
    mutable count : int;
    mutable model : Hazard.features -> float;
    oracle : Prete_ml.Dfl.Oracle.t Lazy.t;
  }

  let create ~pool ~seed ~scale ~env rc model =
    {
      rc;
      seed;
      measured = Hashtbl.create 32;
      events = 0;
      count = 0;
      model;
      oracle = lazy (Prete_ml.Dfl.Oracle.create ~pool ~scale env);
    }

  (* Latest measured features win; on equal ticks the later record wins,
     which is safe because equal-tick records for one fiber carry the
     same detector snapshot. *)
  let record st ~tick ~fiber feats =
    (match Hashtbl.find_opt st.measured fiber with
    | Some (t, _) when t > tick -> ()
    | _ -> Hashtbl.replace st.measured fiber (tick, feats));
    st.events <- st.events + 1

  let due st ~epoch =
    st.rc.rt_every > 0
    && (epoch + 1) mod st.rc.rt_every = 0
    && st.events >= st.rc.rt_min_events

  (* When due, tune and return the composed model plus its version name.
     The swap is unconditional on a fired retrain: if descent found no
     improving step the delta is zero and the new version is functionally
     identical, but the version history still records the attempt. *)
  let step st ~epoch =
    if not (due st ~epoch) then None
    else begin
      let oracle = Lazy.force st.oracle in
      let reps = Prete_ml.Dfl.Oracle.events oracle in
      let nf = Array.length reps in
      let evs =
        Array.init nf (fun i ->
            match Hashtbl.find_opt st.measured i with
            | Some (_, f) -> f
            | None -> reps.(i))
      in
      let q0 = Array.map st.model evs in
      let tcfg =
        {
          Prete_ml.Dfl.Trainer.default_config with
          steps = st.rc.rt_steps;
          pairs = st.rc.rt_pairs;
          seed = st.seed lxor (0xdf1 + epoch);
        }
      in
      let qstar, _, _, _ =
        Prete_ml.Dfl.Trainer.tune tcfg
          ~loss:(Prete_ml.Dfl.Oracle.loss oracle)
          q0
      in
      let delta = Array.init nf (fun i -> qstar.(i) -. q0.(i)) in
      let prev = st.model in
      let model f =
        let fb = ((f.Hazard.fiber mod nf) + nf) mod nf in
        Float.max 1e-4 (Float.min 0.9999 (prev f +. delta.(fb)))
      in
      st.model <- model;
      st.count <- st.count + 1;
      st.events <- 0;
      Some (model, Printf.sprintf "dfl-v%d" st.count)
    end
end

let run ?pool ?env ?predictor cfg =
  if cfg.epochs <= 0 then invalid_arg "Runtime.run: epochs must be positive";
  let engine =
    match Prete_lp.Simplex.engine_of_string cfg.lp_engine with
    | Some e -> e
    | None -> invalid_arg ("Runtime.run: unknown lp_engine " ^ cfg.lp_engine)
  in
  let saved_engine = !Prete_lp.Simplex.default_engine in
  Prete_lp.Simplex.default_engine := engine;
  let owns_pool = pool = None in
  let pool = match pool with Some p -> p | None -> Pool.create () in
  Fun.protect
    ~finally:(fun () ->
      Prete_lp.Simplex.default_engine := saved_engine;
      if owns_pool then Pool.shutdown pool)
  @@ fun () ->
  (* Traffic source: the legacy fixed matrix set ("fixed") or a seeded
     generated model whose demand sequence varies per epoch. *)
  let base_topo =
    match env with
    | Some e -> e.Availability.ts.Tunnels.topo
    | None -> Topology.by_name cfg.topology
  in
  let tm =
    match cfg.traffic with
    | "fixed" -> None
    | spec -> Some (Traffic_model.by_name spec base_topo)
  in
  let env =
    match env with
    | Some e -> e
    | None -> (
      match tm with
      | None -> Availability.make_env base_topo
      | Some m ->
        Availability.make_env
          ~traffic:(Traffic_model.to_traffic m)
          ~tunnels:(Tunnels.build base_topo m.Traffic_model.tm_pairs)
          base_topo)
  in
  let topo = env.Availability.ts.Tunnels.topo in
  let ts = env.Availability.ts in
  (match tm with
  | Some m
    when Traffic_model.num_flows m <> Array.length ts.Tunnels.flows ->
    invalid_arg "Runtime.run: env tunnels do not match the traffic model"
  | _ -> ());
  let demands =
    Traffic.demand env.Availability.traffic ~scale:cfg.scale
      ~epoch:env.Availability.epoch
  in
  (* With a model, plans and patches anchor on the baseline class; the
     fixed path keeps the exact legacy demand vector. *)
  let standing_demands =
    match tm with
    | None -> demands
    | Some m -> Array.map (fun d -> d *. cfg.scale) (Traffic_model.baseline m)
  in
  let demands_at e =
    match tm with
    | None -> demands
    | Some m -> Traffic_model.demands m ~scale:cfg.scale ~epoch:e
  in
  let metrics = Metrics.create () in
  let ring = Ring.create ~capacity:cfg.ring_capacity in
  let solver = Prete_lp.Solver_stats.create () in
  (* [swap_model]: the fresh version the stale/swap drill re-installs.
     With an externally supplied server we have no model to offer, so
     the drill only marks stale (predictions stay on the fallback). *)
  let server, swap_model =
    match predictor with
    | Some p -> (p, None)
    | None ->
      let model = build_model cfg.predictor env topo in
      (Predictor.create ~fallback:(Predictor.prior env.Availability.model) model,
       Some model)
  in
  (* Online retraining needs the running model as a plain closure to
     compose deltas onto, so it is only armed when this run built the
     model itself; an externally supplied server keeps whatever
     retraining loop its owner runs. *)
  let retrain_state =
    match (cfg.retrain, swap_model) with
    | Some rc, Some m when rc.rt_every > 0 ->
      Some (Retrain.create ~pool ~seed:cfg.seed ~scale:cfg.scale ~env rc m)
    | _ -> None
  in
  let scheme =
    Schemes.prete_default ~predictor:(fun f -> fst (Predictor.predict server f)) ()
  in
  (* Localized fast-recovery tier: per-fiber detour tables over the base
     tunnel set, plus the standing plan they patch.  Both are pure
     functions of topology + tunnel set (+ demands), so the tier keeps
     the bit-identical-at-any-domain-count contract. *)
  let detours = if cfg.detour then Some (Detours.build ts) else None in
  let base_plan =
    lazy
      (Availability.Internal.plan_alloc env scheme ~demands:standing_demands
         ~degraded:None)
  in
  (* Phase 1 — ground truth: the exact sample path Simulate.run draws. *)
  let samples =
    Metrics.time metrics "sample" (fun () ->
        let rngs = Simulate.Internal.epoch_streams ~seed:cfg.seed ~epochs:cfg.epochs in
        Pool.parallel_map pool (Simulate.Internal.sample_epoch env) rngs)
  in
  (* Phase 2 — detection: every degrading fiber's 1 Hz stream, processed
     per epoch on the pool from pre-split runtime substreams. *)
  let rt_master = Rng.create (cfg.seed lxor 0x5eed) in
  let rt_rngs = Array.init cfg.epochs (fun _ -> Rng.split rt_master) in
  let epoch_runs =
    Metrics.time metrics "detect" (fun () ->
        Pool.parallel_map pool
          (fun e -> process_epoch cfg ~topo ~rng:rt_rngs.(e) samples.(e))
          (Array.init cfg.epochs Fun.id))
  in
  (* Phase 3 — reaction: sequential over epochs (the ladder's retained
     basis and the plan cache are deliberately order-dependent). *)
  let ladder = Resilience.create () in
  let cache = Controller.cache () in
  let last_reaction : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let installs : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let detour_patches : (int, Resilience.outcome option) Hashtbl.t =
    Hashtbl.create 16
  in
  let detour_installs : (int * int, int * Availability.plan) Hashtbl.t =
    Hashtbl.create 64
  in
  let detections = ref [] in
  let rung_counts = Hashtbl.create 4 in
  Metrics.time metrics "react" (fun () ->
      for e = 0 to cfg.epochs - 1 do
        let base = e * epoch_len in
        (* Shadowed per epoch: the plan key, the warm solve, and the
           ladder all see the epoch's own demand class (the legacy fixed
           path returns the identical outer vector). *)
        let demands = demands_at e in
        (match cfg.stale_after with
        | Some k when e = k -> Predictor.mark_stale server
        | Some k when e = 2 * k && k > 0 ->
          Option.iter (fun m -> Predictor.swap server m) swap_model
        | _ -> ());
        let frs = epoch_runs.(e) in
        let epoch_events = ref [] in
        let ev tick kind fiber value =
          epoch_events := (tick, kind, fiber, value) :: !epoch_events
        in
        (* Ground truth + detector events, per fiber in fiber order. *)
        List.iter
          (fun fr ->
            ev (base + fr.fr_onset) "degr_true" fr.fr_fiber 0.0;
            List.iter
              (fun (t, kind, v) -> ev (base + t) kind fr.fr_fiber v)
              fr.fr_events;
            Option.iter (fun c -> ev (base + c) "cut" fr.fr_fiber 0.0) fr.fr_cut_at;
            Metrics.incr ~by:fr.fr_samples metrics "samples";
            Metrics.incr ~by:fr.fr_dups metrics "dups";
            Metrics.incr ~by:fr.fr_late metrics "late";
            Metrics.incr ~by:fr.fr_filled metrics "gaps_filled";
            Metrics.incr ~by:fr.fr_segments metrics "segments";
            Metrics.incr ~by:fr.fr_cut_segments metrics "cut_segments")
          frs;
        (* Cuts with no degradation signal at all. *)
        List.iter
          (fun fb ->
            if not (List.exists (fun fr -> fr.fr_fiber = fb) frs) then begin
              ev base "cut_silent" fb 0.0;
              Metrics.incr metrics "silent_cuts"
            end)
          samples.(e).Simulate.Internal.es_cuts;
        (* Alarms → debounce → batches (one per alarm tick). *)
        let alarmed =
          List.filter_map
            (fun fr -> Option.map (fun a -> (base + a, fr)) fr.fr_alarm)
            frs
          |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
        in
        let rec batches = function
          | [] -> []
          | (t, fr) :: rest ->
            let same, later = List.partition (fun (t', _) -> t' = t) rest in
            (t, fr :: List.map snd same) :: batches later
        in
        List.iter
          (fun (g, members) ->
            Metrics.incr ~by:(List.length members) metrics "alarms";
            let eligible, debounced =
              List.partition
                (fun fr ->
                  match Hashtbl.find_opt last_reaction fr.fr_fiber with
                  | Some t -> g - t >= cfg.debounce_s
                  | None -> true)
                members
            in
            List.iter
              (fun fr ->
                Metrics.incr metrics "debounced";
                detections :=
                  {
                    d_epoch = e;
                    d_fiber = fr.fr_fiber;
                    d_onset = base + fr.fr_onset;
                    d_alarm = g;
                    d_install = None;
                    d_prob = 0.0;
                    d_fallback = false;
                    d_cut = Option.map (fun c -> base + c) fr.fr_cut_at;
                  }
                  :: !detections)
              debounced;
            if eligible <> [] then begin
              let n = List.length eligible in
              Metrics.incr metrics "reactions";
              Metrics.observe metrics "batch_size" (float_of_int n);
              (* Detour tier: immediate reaction below the controller —
                 each alarmed fiber's precomputed patch goes in at the
                 detection tick plus its modeled O(affected-flows)
                 switch-over, while the batched solve proceeds below.
                 The patch is a pure function of the fiber, so it is
                 computed once per fiber and reused across epochs. *)
              (match detours with
              | None -> ()
              | Some dt ->
                List.iter
                  (fun fr ->
                    let fb = fr.fr_fiber in
                    let patch =
                      match Hashtbl.find_opt detour_patches fb with
                      | Some p -> p
                      | None ->
                        let p =
                          Resilience.detour_patch ~detours:dt
                            ~installed:(Lazy.force base_plan) ~fiber:fb
                        in
                        Hashtbl.replace detour_patches fb p;
                        p
                    in
                    match patch with
                    | None -> ()
                    | Some o ->
                      let lat = Detours.install_latency_s dt ~fiber:fb in
                      let itick = g + int_of_float (Float.ceil lat) in
                      Hashtbl.replace detour_installs (e, fb)
                        (itick, o.Resilience.plan);
                      Metrics.incr metrics "detour_activations";
                      Metrics.incr
                        ~by:(List.length (Detours.affected_flows dt fb))
                        metrics "detour_flows_patched";
                      Metrics.observe metrics "detour_install_s" lat;
                      ev itick "detour" fb lat)
                  eligible);
              let predicted =
                List.map
                  (fun fr ->
                    let feats = measured_features fr.fr_truth fr.fr_alarm_feats in
                    let p, fell_back = Predictor.predict server feats in
                    (fr, feats, p, fell_back))
                  eligible
              in
              Option.iter
                (fun st ->
                  List.iter
                    (fun (fr, feats, _, _) ->
                      Retrain.record st ~tick:g ~fiber:fr.fr_fiber feats)
                    predicted)
                retrain_state;
              (* Target: the epoch's planned-for fiber when it is in the
                 batch, else the first alarmed fiber. *)
              let target =
                match samples.(e).Simulate.Internal.es_state with
                | Some fb when List.exists (fun (fr, _, _, _) -> fr.fr_fiber = fb) predicted
                  -> fb
                | _ -> (match eligible with fr :: _ -> fr.fr_fiber | [] -> assert false)
              in
              let key =
                Controller.plan_key ~ts ~demands
                  ~probs:env.Availability.model.Fiber_model.p_cut
                  ~salt:[ 1000 + target ] ()
              in
              let upd = Tunnel_update.react ts ~degraded_fiber:target () in
              let n_new = Tunnel_update.num_new upd in
              (match Controller.cache_find cache key with
              | Some (_ : Availability.plan) -> ()
              | None ->
                let degr_features = Array.copy env.Availability.degr_events in
                List.iter
                  (fun (fr, feats, _, _) -> degr_features.(fr.fr_fiber) <- feats)
                  predicted;
                let primary ~warm () =
                  Availability.Internal.plan_alloc_warm ?deadline:cfg.deadline_s
                    ?warm ~degr_features env scheme ~demands
                    ~degraded:(Some target)
                in
                let outcome, _report =
                  Controller.run ~solver_stats:solver
                    ~infer:(fun () -> ())
                    ~regen:(fun () -> ())
                    ~te:(fun () ->
                      Resilience.plan_epoch ladder ~ts ~demands ~primary ())
                    ~n_new_tunnels:n_new ()
                in
                let rung = Resilience.rung_name outcome.Resilience.rung in
                Hashtbl.replace rung_counts rung
                  (1 + Option.value ~default:0 (Hashtbl.find_opt rung_counts rung));
                Controller.cache_store cache key
                  ~degraded:(Resilience.degraded outcome)
                  outcome.Resilience.plan);
              let latency =
                Controller.batch_latency ~members:n ~n_new_tunnels:n_new
              in
              let install = g + int_of_float (Float.ceil latency) in
              Metrics.observe metrics "reaction_latency_s" latency;
              List.iter
                (fun (fr, _, p, fell_back) ->
                  Hashtbl.replace last_reaction fr.fr_fiber g;
                  Hashtbl.replace installs (e, fr.fr_fiber) install;
                  Metrics.observe metrics "detection_latency_s"
                    (float_of_int (g - (base + fr.fr_onset)));
                  ev g "react" fr.fr_fiber latency;
                  ev install "install" fr.fr_fiber p;
                  (match Hashtbl.find_opt detour_installs (e, fr.fr_fiber) with
                  | Some (dtick, _) ->
                    (* Warm plan replaces the patch on arrival: the
                       handoff window is how long the patch carried. *)
                    Metrics.observe metrics "detour_handoff_s"
                      (float_of_int (max 0 (install - dtick)))
                  | None -> ());
                  detections :=
                    {
                      d_epoch = e;
                      d_fiber = fr.fr_fiber;
                      d_onset = base + fr.fr_onset;
                      d_alarm = g;
                      d_install = Some install;
                      d_prob = p;
                      d_fallback = fell_back;
                      d_cut = Option.map (fun c -> base + c) fr.fr_cut_at;
                    }
                    :: !detections)
                predicted
            end)
          (batches alarmed);
        (* Epoch boundary: fire the decision-focused retrain when due
           and hot-swap the new version in.  The tuned model is
           deterministic; only the measured swap latency is wall-clock,
           and it lands in the non-core wall histogram. *)
        Option.iter
          (fun st ->
            match
              Metrics.time metrics "retrain" (fun () -> Retrain.step st ~epoch:e)
            with
            | None -> ()
            | Some (m, name) ->
              Metrics.incr metrics "retrains";
              let t0 = Prete_util.Clock.now () in
              Predictor.swap ~name server m;
              Metrics.observe_wall metrics "swap_s"
                (Prete_util.Clock.elapsed_since t0))
          retrain_state;
        (* Flush the epoch's events to the ring in tick order (stable:
           insertion order breaks ties). *)
        let evs = Array.of_list (List.rev !epoch_events) in
        let order = Array.init (Array.length evs) Fun.id in
        Array.stable_sort
          (fun i j ->
            let (ti, _, _, _) = evs.(i) and (tj, _, _, _) = evs.(j) in
            compare (ti, i) (tj, j))
          order;
        Array.iter
          (fun i ->
            let tick, kind, fiber, value = evs.(i) in
            Ring.push ring ~tick ~kind ~fiber ~value)
          order
      done);
  let detections = List.rev !detections in
  Hashtbl.fold (fun rung c () -> Metrics.incr ~by:c metrics ("rung_" ^ rung)) rung_counts ();
  (* Phase 4 — evaluation: three policies, identical arithmetic. *)
  let state_instant =
    Array.map (fun s -> s.Simulate.Internal.es_state) samples
  in
  let epoch_cuts = Array.map (fun s -> s.Simulate.Internal.es_cuts) samples in
  let reacted = ref 0 and missed = ref 0 in
  let state_stream =
    Array.mapi
      (fun e (s : Simulate.Internal.epoch_sample) ->
        match s.es_state with
        | None -> None
        | Some fb ->
          let fr = List.find_opt (fun fr -> fr.fr_fiber = fb) epoch_runs.(e) in
          let deadline =
            match fr with
            | Some { fr_cut_at = Some c; _ } -> (e * epoch_len) + c - 1
            | _ -> (e * epoch_len) + epoch_len - 1
          in
          let in_time =
            match Hashtbl.find_opt installs (e, fb) with
            | Some i -> i <= deadline
            | None -> false
          in
          let cut = List.mem fb s.es_cuts in
          if cut then if in_time then incr reacted else incr missed;
          if in_time then Some fb else None)
      samples
  in
  let state_periodic = Array.make cfg.epochs None in
  let class_demands =
    match tm with
    | None -> [| demands |]
    | Some m ->
      Array.map (Array.map (fun d -> d *. cfg.scale)) m.Traffic_model.tm_classes
  in
  let eval ?epoch_plan state =
    match tm with
    | None ->
      Simulate.Internal.eval_epochs ?epoch_plan pool env scheme ~demands ~state
        ~epoch_cuts
    | Some m ->
      Simulate.Internal.eval_epochs_classes ?epoch_plan pool env scheme
        ~class_demands ~class_of:(Traffic_model.class_of m) ~state ~epoch_cuts
  in
  let avail_stream = Metrics.time metrics "eval_stream" (fun () -> eval state_stream) in
  let avail_periodic =
    Metrics.time metrics "eval_periodic" (fun () -> eval state_periodic)
  in
  let avail_instant =
    Metrics.time metrics "eval_instant" (fun () -> eval state_instant)
  in
  (* stream+detour: identical to stream except that epochs whose
     predicted cut materialized but whose warm plan missed the deadline
     are served the detour patch — when the patch itself installed
     before the cut.  Restricting the override to materialized cuts
     keeps the policy dominant over plain stream: the patched plan only
     adds surviving allocation for tunnels that are dead either way. *)
  let detour_rescued = ref 0 in
  let detour_override =
    Array.init cfg.epochs (fun e ->
        let s = samples.(e) in
        match s.Simulate.Internal.es_state with
        | Some fb
          when List.mem fb s.Simulate.Internal.es_cuts
               && state_stream.(e) = None -> (
          match Hashtbl.find_opt detour_installs (e, fb) with
          | Some (tick, plan) ->
            let deadline =
              match
                List.find_opt (fun fr -> fr.fr_fiber = fb) epoch_runs.(e)
              with
              | Some { fr_cut_at = Some c; _ } -> (e * epoch_len) + c - 1
              | _ -> (e * epoch_len) + epoch_len - 1
            in
            if tick <= deadline then begin
              incr detour_rescued;
              Some plan
            end
            else None
          | None -> None)
        | _ -> None)
  in
  let avail_detour =
    match detours with
    | None -> None
    | Some _ ->
      Some
        (Metrics.time metrics "eval_detour" (fun () ->
             eval ~epoch_plan:(fun e -> detour_override.(e)) state_stream))
  in
  Metrics.incr ~by:!detour_rescued metrics "detour_rescued_epochs";
  let degr_epochs =
    Array.fold_left
      (fun acc (s : Simulate.Internal.epoch_sample) ->
        if s.es_degraded <> [] then acc + 1 else acc)
      0 samples
  in
  let cut_epochs =
    Array.fold_left
      (fun acc (s : Simulate.Internal.epoch_sample) ->
        if s.es_cuts <> [] then acc + 1 else acc)
      0 samples
  in
  let hits, misses = Controller.cache_stats cache in
  Metrics.incr ~by:hits metrics "plan_cache_hits";
  Metrics.incr ~by:misses metrics "plan_cache_misses";
  let served, fell_back, swaps = Predictor.stats server in
  Metrics.incr ~by:served metrics "predictor_served";
  Metrics.incr ~by:fell_back metrics "predictor_fallbacks";
  Metrics.incr ~by:swaps metrics "predictor_swaps";
  Metrics.incr ~by:!reacted metrics "reacted_in_time";
  Metrics.incr ~by:!missed metrics "missed_cuts";
  (* Surfaced even at zero so the tier-1 tests can assert the dumped
     event log is the complete total order (no ring overwrites). *)
  Metrics.incr ~by:(Ring.dropped ring) metrics "ring_dropped";
  Metrics.set_gauge metrics "avail_stream" avail_stream;
  Metrics.set_gauge metrics "avail_periodic" avail_periodic;
  Metrics.set_gauge metrics "avail_instant" avail_instant;
  Option.iter (Metrics.set_gauge metrics "avail_detour") avail_detour;
  {
    r_config = cfg;
    r_epochs = cfg.epochs;
    r_degr_epochs = degr_epochs;
    r_cut_epochs = cut_epochs;
    r_detections = detections;
    r_reacted_in_time = !reacted;
    r_missed = !missed;
    r_avail_stream = avail_stream;
    r_avail_periodic = avail_periodic;
    r_avail_instant = avail_instant;
    r_avail_detour = avail_detour;
    r_metrics = metrics;
    r_ring = ring;
    r_solver = solver;
    r_scheme = scheme;
  }

(* ------------------------------------------------------------------ *)
(* Dump / replay                                                       *)
(* ------------------------------------------------------------------ *)

let config_to_json (c : config) =
  let b = Buffer.create 512 in
  let f name v = Buffer.add_string b (Printf.sprintf "\"%s\": %.17g, " name v) in
  let i name v = Buffer.add_string b (Printf.sprintf "\"%s\": %d, " name v) in
  Buffer.add_string b "{";
  Buffer.add_string b (Printf.sprintf "\"topology\": \"%s\", " c.topology);
  Buffer.add_string b (Printf.sprintf "\"traffic\": \"%s\", " c.traffic);
  i "epochs" c.epochs;
  i "seed" c.seed;
  f "scale" c.scale;
  f "ewma_alpha" c.detector.Detector.ewma_alpha;
  f "cusum_k" c.detector.Detector.cusum_k;
  f "cusum_h" c.detector.Detector.cusum_h;
  f "fluct_threshold" c.detector.Detector.fluct_threshold;
  f "degr_threshold" c.detector.Detector.degr_threshold;
  f "cut_threshold" c.detector.Detector.cut_threshold;
  f "gap_rate" c.impairments.Stream.gap_rate;
  f "dup_rate" c.impairments.Stream.dup_rate;
  f "reorder_rate" c.impairments.Stream.reorder_rate;
  i "max_delay" c.impairments.Stream.max_delay;
  i "debounce_s" c.debounce_s;
  Buffer.add_string b
    (match c.deadline_s with
    | Some d -> Printf.sprintf "\"deadline_s\": %.17g, " d
    | None -> "\"deadline_s\": null, ");
  Buffer.add_string b
    (Printf.sprintf "\"predictor\": \"%s\", " (predictor_kind_name c.predictor));
  Buffer.add_string b
    (match c.stale_after with
    | Some k -> Printf.sprintf "\"stale_after\": %d, " k
    | None -> "\"stale_after\": null, ");
  Buffer.add_string b (Printf.sprintf "\"detour\": %b, " c.detour);
  Buffer.add_string b (Printf.sprintf "\"ring_capacity\": %d, " c.ring_capacity);
  i "shards" c.shards;
  i "queue_bound" c.queue_bound;
  Buffer.add_string b
    (Printf.sprintf "\"shed_policy\": \"%s\", " (shed_policy_name c.shed_policy));
  (* Flat retrain fields; retrain_every 0 (or, in older dumps, all four
     missing) means online retraining is off. *)
  let rc = Option.value ~default:{ rt_every = 0; rt_steps = 0; rt_pairs = 0; rt_min_events = 0 } c.retrain in
  i "retrain_every" rc.rt_every;
  i "retrain_steps" rc.rt_steps;
  i "retrain_pairs" rc.rt_pairs;
  i "retrain_min_events" rc.rt_min_events;
  Buffer.add_string b (Printf.sprintf "\"lp_engine\": \"%s\"}" c.lp_engine);
  Buffer.contents b

let deterministic_core r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"summary\": {";
  Buffer.add_string b
    (Printf.sprintf
       "\"epochs\": %d, \"degr_epochs\": %d, \"cut_epochs\": %d, \
        \"detections\": %d, \"reacted_in_time\": %d, \"missed\": %d}, "
       r.r_epochs r.r_degr_epochs r.r_cut_epochs
       (List.length r.r_detections)
       r.r_reacted_in_time r.r_missed);
  Buffer.add_string b
    (Printf.sprintf
       "\"availability\": {\"stream\": %.17g, \"periodic\": %.17g, \
        \"instant\": %.17g, \"stream_detour\": %s}, "
       r.r_avail_stream r.r_avail_periodic r.r_avail_instant
       (match r.r_avail_detour with
       | Some v -> Printf.sprintf "%.17g" v
       | None -> "null"));
  Buffer.add_string b "\"metrics\": ";
  Buffer.add_string b (Metrics.to_json ~walls:false r.r_metrics);
  Buffer.add_string b ", \"events\": ";
  Buffer.add_string b (Ring.to_json r.r_ring);
  Buffer.add_string b "}";
  Buffer.contents b

let dump r =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"prete_rt\": 1,\n\"config\": ";
  Buffer.add_string b (config_to_json r.r_config);
  Buffer.add_string b ",\n\"core\": ";
  Buffer.add_string b (deterministic_core r);
  Buffer.add_string b ",\n\"solver\": ";
  Buffer.add_string b (Prete_lp.Solver_stats.to_json r.r_solver);
  Buffer.add_string b ",\n\"wall_s\": ";
  Buffer.add_string b (Metrics.walls_json r.r_metrics);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Minimal flat-JSON field scanner — enough for config_to_json output. *)
let field_raw json key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and n = String.length json in
  let rec find i =
    if i + plen > n then None
    else if String.sub json i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j ->
    let j = ref j in
    while !j < n && json.[!j] = ' ' do incr j done;
    if !j >= n then None
    else if json.[!j] = '"' then begin
      let k = String.index_from json (!j + 1) '"' in
      Some (String.sub json (!j + 1) (k - !j - 1))
    end
    else begin
      let start = !j in
      while !j < n && json.[!j] <> ',' && json.[!j] <> '}' do incr j done;
      Some (String.trim (String.sub json start (!j - start)))
    end

let object_at json key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and n = String.length json in
  let rec find i =
    if i + plen > n then None
    else if String.sub json i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j ->
    let j = ref j in
    while !j < n && json.[!j] <> '{' do incr j done;
    if !j >= n then None
    else begin
      let start = !j and depth = ref 0 and stop = ref (-1) and in_str = ref false in
      (try
         for k = start to n - 1 do
           let c = json.[k] in
           if !in_str then (if c = '"' && json.[k - 1] <> '\\' then in_str := false)
           else
             match c with
             | '"' -> in_str := true
             | '{' -> incr depth
             | '}' ->
               decr depth;
               if !depth = 0 then begin
                 stop := k;
                 raise Exit
               end
             | _ -> ()
         done
       with Exit -> ());
      if !stop < 0 then None else Some (String.sub json start (!stop - start + 1))
    end

let config_of_dump json =
  let cfg =
    match object_at json "config" with
    | Some c -> c
    | None -> failwith "Runtime.config_of_dump: no config section"
  in
  let req key =
    match field_raw cfg key with
    | Some v -> v
    | None -> failwith ("Runtime.config_of_dump: missing " ^ key)
  in
  let fl key = float_of_string (req key) in
  let it key = int_of_string (req key) in
  let opt_of conv key = match req key with "null" -> None | v -> Some (conv v) in
  {
    topology = req "topology";
    (* Dumps predating the traffic-model library carry no field. *)
    traffic = (match field_raw cfg "traffic" with Some v -> v | None -> "fixed");
    epochs = it "epochs";
    seed = it "seed";
    scale = fl "scale";
    detector =
      {
        Detector.ewma_alpha = fl "ewma_alpha";
        cusum_k = fl "cusum_k";
        cusum_h = fl "cusum_h";
        fluct_threshold = fl "fluct_threshold";
        degr_threshold = fl "degr_threshold";
        cut_threshold = fl "cut_threshold";
      };
    impairments =
      {
        Stream.gap_rate = fl "gap_rate";
        dup_rate = fl "dup_rate";
        reorder_rate = fl "reorder_rate";
        max_delay = it "max_delay";
      };
    debounce_s = it "debounce_s";
    deadline_s = opt_of float_of_string "deadline_s";
    predictor = predictor_kind_of_string (req "predictor");
    stale_after = opt_of int_of_string "stale_after";
    detour = bool_of_string (req "detour");
    ring_capacity = it "ring_capacity";
    (* Dumps predating the sharded runtime carry none of the three. *)
    shards =
      (match field_raw cfg "shards" with Some v -> int_of_string v | None -> 1);
    queue_bound =
      (match field_raw cfg "queue_bound" with
      | Some v -> int_of_string v
      | None -> default_config.queue_bound);
    shed_policy =
      (match field_raw cfg "shed_policy" with
      | Some v -> shed_policy_of_string v
      | None -> default_config.shed_policy);
    (* Dumps predating the LU engine were produced under the eta-file
       revised engine; replay them with it so cores keep matching. *)
    lp_engine =
      (match field_raw cfg "lp_engine" with Some v -> v | None -> "revised");
    (* Dumps predating online retraining carry no fields: off. *)
    retrain =
      (match field_raw cfg "retrain_every" with
      | None | Some "0" -> None
      | Some v ->
        let it key d =
          match field_raw cfg key with Some s -> int_of_string s | None -> d
        in
        Some
          {
            rt_every = int_of_string v;
            rt_steps = it "retrain_steps" default_retrain.rt_steps;
            rt_pairs = it "retrain_pairs" default_retrain.rt_pairs;
            rt_min_events = it "retrain_min_events" default_retrain.rt_min_events;
          });
  }

let replay ?pool json =
  let cfg = config_of_dump json in
  let dumped_core =
    match object_at json "core" with
    | Some c -> c
    | None -> failwith "Runtime.replay: no core section"
  in
  let r = run ?pool cfg in
  (r, String.equal (deterministic_core r) dumped_core)

module Internal = struct
  let epoch_len = epoch_len
  let build_model = build_model
  let measured_features = measured_features
  let config_to_json = config_to_json
  let field_raw = field_raw
  let object_at = object_at

  module Retrain = Retrain
end
