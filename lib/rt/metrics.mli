(** Runtime metrics registry: counters, gauges, log-scale histograms and
    per-stage wall timings.

    Everything except the walls is driven by logical quantities (tick
    counts, modeled latencies, event tallies), so the deterministic
    snapshot — {!to_json} with [walls:false] — is bit-identical across
    runs of the same seed at any domain count.  Wall timings are real
    measured seconds and live in a separate section that determinism
    comparisons exclude.

    Histograms bucket by binary exponent: a value [v > 0] lands in the
    bucket [e] with [2^(e-1) <= v < 2^e] (computed with [Float.frexp],
    no transcendental rounding), non-positive values in a dedicated
    underflow bucket.  All operations are mutex-guarded. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** Reading an unknown counter returns 0. *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float option

val observe : t -> string -> float -> unit
(** Add a sample to a histogram (created on first use). *)

val hist_count : t -> string -> int
val hist_sum : t -> string -> float
val hist_mean : t -> string -> float
val hist_max : t -> string -> float
(** 0 when the histogram is empty or unknown. *)

val hist_quantile : t -> string -> float -> float
(** [hist_quantile t name q] estimates the [q]-quantile ([q] in [0, 1],
    e.g. 0.5 / 0.99) from the binary-exponent buckets: the nearest-rank
    bucket is found by cumulative count and the value is linearly
    interpolated inside it, clamped to the exact observed [min]/[max].
    Within a factor of 2 of the true sample quantile by construction,
    and — like every non-wall quantity here — deterministic, so the
    bench throughput/latency gates can compare it across runs.  0 when
    the histogram is empty or unknown; the underflow bucket reports
    [min(h_min, 0)].  Raises [Invalid_argument] for [q] outside
    [0, 1]. *)

val observe_wall : t -> string -> float -> unit
(** Add a sample to a wall-clock histogram (created on first use).
    Same bucketing as {!observe}, but the histogram lives with the wall
    timings: it is serialized only when [to_json ~walls:true], so
    measured latencies (e.g. model hot-swap times) never perturb the
    deterministic core. *)

val wall_hist_count : t -> string -> int
val wall_hist_mean : t -> string -> float
val wall_hist_max : t -> string -> float
(** 0 when the wall histogram is empty or unknown. *)

val add_wall : t -> string -> float -> unit
(** Accumulate measured wall seconds under a stage name. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk, charging its wall time to the stage. *)

val walls_json : t -> string
(** Just the measured wall-seconds map, as a JSON object. *)

val to_json : ?walls:bool -> t -> string
(** Stable snapshot (names sorted).  [walls] (default [true]) includes
    the measured [wall_s] section; pass [false] for the deterministic
    core used by replay and cross-domain comparisons. *)
