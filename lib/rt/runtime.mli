(** The streaming telemetry runtime: online detection → prediction →
    reaction over a deterministic discrete-event loop at 1 Hz.

    One run replays the {e same} generative epoch ground truth that
    {!Prete.Simulate.run} draws from a seed, but at sample granularity:
    every degrading fiber gets a synthesized 1 Hz loss trace, the trace
    is pushed through an impaired transport ({!Stream}), reassembled by
    the reorder-tolerant ingest ({!Online}), and watched by the online
    change-point detector ({!Detector}).  Alarms are debounced, batched
    per tick, scored by the hot-swappable predictor server
    ({!Predictor}), and turned into reactive plans by
    {!Prete.Controller.run} under the {!Prete.Resilience} fallback
    ladder, reusing the warm-start plan cache.

    {b Evaluation.}  Three reaction policies are scored on the identical
    sample path with {!Prete.Simulate.Internal.eval_epochs}'s
    arithmetic:

    - {e instant}: the plan for an epoch's degrading fiber is always in
      place — bitwise equal to {!Prete.Simulate.run}'s availability on
      the same seed, scheme and env;
    - {e stream}: the reactive plan counts only for epochs where this
      runtime's pipeline installed it before the fiber's cut tick (or
      before epoch end when no cut follows);
    - {e periodic}: no intra-epoch reaction at all — the base plan
      serves every epoch (the "periodic re-solve only" baseline);
    - {e stream+detour} (when [config.detour]): stream, plus the
      localized recovery tier — on a Detector alarm the fiber's
      precomputed detour patch ({!Prete_net.Detours} via
      {!Prete.Resilience.detour_patch}) installs after a modeled
      O(affected-flows) switch-over, with no solver anywhere on the
      activation path; the warm reactive plan replaces the patch on
      arrival.  In the evaluation the patch rescues exactly the epochs
      whose predicted cut materialized but whose warm plan missed the
      deadline, so [r_avail_detour >= r_avail_stream] holds by
      construction.

    Plan {e contents} in the evaluation come from the same per-state
    plan table {!Prete.Simulate.run} uses, so the stream−periodic and
    instant−stream gaps isolate reaction {e timing}, not plan noise.

    {b Determinism.}  Identical seed ⇒ bit-identical event log, metrics
    core and availabilities at any domain count: epoch processing runs
    on pre-split RNG substreams, all latencies in the event log are
    modeled (logical) quantities, and measured wall times live in a
    separate section that {!deterministic_core} excludes. *)

type predictor_kind =
  | Hazard_oracle  (** Ground-truth hazard — the perfect predictor. *)
  | Prior_only  (** Hazard-free mean-hazard prior ({!Predictor.prior}). *)
  | Nn of int
      (** MLP trained on the env model's dataset for the given number of
          training epochs (deterministic: seeded corpus + seeded init). *)

val predictor_kind_name : predictor_kind -> string
(** ["hazard"], ["prior"], ["nn:<epochs>"]. *)

val predictor_kind_of_string : string -> predictor_kind
(** Inverse of {!predictor_kind_name}; raises [Failure] otherwise. *)

type shed_policy =
  | Drop_newest
      (** Reject the arriving reaction when the coalescer backlog is
          full. *)
  | Drop_oldest
      (** Evict the oldest staged reaction to admit the arriving one. *)

val shed_policy_name : shed_policy -> string
(** ["drop-newest"] / ["drop-oldest"]. *)

val shed_policy_of_string : string -> shed_policy
(** Inverse of {!shed_policy_name}; raises [Failure] otherwise. *)

type retrain = {
  rt_every : int;  (** Retrain at every epoch boundary divisible by this. *)
  rt_steps : int;  (** SPSA descent steps per retrain. *)
  rt_pairs : int;  (** Perturbation pairs per gradient estimate. *)
  rt_min_events : int;
      (** Minimum measured alarm events collected since the last retrain
          before one fires (a due boundary with fewer events is skipped,
          the window keeps accumulating). *)
}

val default_retrain : retrain
(** Every 10 epochs, 2 steps × 2 pairs, at least 1 measured event. *)

type config = {
  topology : string;  (** {!Prete_net.Topology.by_name} name. *)
  traffic : string;
      (** ["fixed"] (default) keeps the legacy static matrix set;
          otherwise a {!Prete_net.Traffic_model.by_name} spec
          (e.g. ["diurnal"], ["coremelt:7"]) — the runtime then plans
          and evaluates each epoch against the demand class the model's
          schedule selects, with plans/patches anchored on the baseline
          class. *)
  epochs : int;  (** TE periods to stream (900 s each). *)
  seed : int;  (** Ground-truth sample-path seed (as in Simulate). *)
  scale : float;  (** Demand scale. *)
  detector : Detector.config;
  impairments : Stream.impairments;
  debounce_s : int;  (** Min seconds between reactions to one fiber. *)
  deadline_s : float option;  (** Anytime budget per primary solve. *)
  predictor : predictor_kind;
  stale_after : int option;
      (** Mark the serving model stale at this epoch (predictions fall
          back to the prior) and hot-swap a fresh version at twice it —
          exercises the stale/swap path deterministically. *)
  detour : bool;
      (** Arm the localized fast-recovery tier: precomputed per-fiber
          detours install at Detector-alarm time, below the controller
          ([prete_cli stream --no-detour] disarms it). *)
  ring_capacity : int;  (** Event-trace ring size. *)
  shards : int;
      (** Regional shards for the fleet-scale engine ({!Shard.run}):
          the topology is partitioned into this many connected fiber
          regions, each running its own event loop.  {!run} — the
          single-loop sample-path engine — ignores it; the shard
          count never changes the deterministic core either way. *)
  queue_bound : int;
      (** Coalescer backpressure: max reactions staged behind a busy
          controller before the shed policy fires ({!Shard.run} only).
          The bound is enforced on the coalescer's admission backlog —
          the joint occupancy of the per-shard reaction queues — so
          shedding is independent of the shard count. *)
  shed_policy : shed_policy;  (** What to do at the bound. *)
  lp_engine : string;
      (** {!Prete_lp.Simplex.engine_of_string} name.  {!run} and
          {!Shard.run} install it as the session default engine for the
          duration of the run (restored on exit), so dumps replay under
          the engine that produced them.  Dumps predating the field
          replay under ["revised"]. *)
  retrain : retrain option;
      (** Online decision-focused retraining ({!Prete_ml.Dfl}): consume
          the measured alarm-event stream and, at due epoch boundaries,
          tune the serving model's outputs against realized TE loss and
          hot-swap the new version in (names ["dfl-v1"], ["dfl-v2"], …;
          ["retrains"] counter in the deterministic metrics core, swap
          latency in the ["swap_s"] wall histogram).  [None] (default)
          is off; armed only when the run builds its own model — an
          external [?predictor] server is left alone.  Dumps write the
          flat fields [retrain_every]/[retrain_steps]/[retrain_pairs]/
          [retrain_min_events]; [retrain_every] 0 or the fields missing
          (older dumps) parse back as off, so replay stays tolerant. *)
}

val default_config : config
(** B4 topology, 40 epochs, seed 123, scale 2.0, default detector
    and impairments, 30 s debounce, no deadline, [Hazard_oracle]
    predictor, detour tier armed, ring capacity 4096, 1 shard with a
    64-deep [Drop_newest] reaction queue, the session-default LP
    engine. *)

type detection = {
  d_epoch : int;
  d_fiber : int;
  d_onset : int;  (** Global tick the degradation truly started. *)
  d_alarm : int;  (** Global tick the detector alarmed. *)
  d_install : int option;
      (** Global tick the reactive plan was in place; [None] when the
          alarm was debounced away. *)
  d_prob : float;  (** Predicted cut probability at alarm time. *)
  d_fallback : bool;  (** Prediction came from the stale-model prior. *)
  d_cut : int option;  (** Global tick the fiber actually cut. *)
}

type result = {
  r_config : config;
  r_epochs : int;
  r_degr_epochs : int;
  r_cut_epochs : int;
  r_detections : detection list;  (** Chronological. *)
  r_reacted_in_time : int;
      (** State-fiber cut epochs whose reactive plan installed in time. *)
  r_missed : int;  (** State-fiber cut epochs it did not. *)
  r_avail_stream : float;
  r_avail_periodic : float;
  r_avail_instant : float;
  r_avail_detour : float option;
      (** stream+detour availability; [None] when the tier is disarmed.
          Never below [r_avail_stream] (see the module doc). *)
  r_metrics : Metrics.t;
  r_ring : Ring.t;
  r_solver : Prete_lp.Solver_stats.t;
      (** Reaction-stage solver telemetry (walls included). *)
  r_scheme : Prete.Schemes.t;
      (** The exact scheme (predictor closure included) the run used —
          pass it to {!Prete.Simulate.run} for the instant cross-check. *)
}

val run :
  ?pool:Prete_exec.Pool.t ->
  ?env:Prete.Availability.env ->
  ?predictor:Predictor.t ->
  config -> result
(** Stream [config.epochs] TE periods.  [env] defaults to
    [Availability.make_env] on the named topology — pass your own to
    share fixtures with other experiments ({b note}: {!replay} always
    rebuilds the default env, so dumps of custom-env runs won't match).
    [predictor] overrides the server built from [config.predictor]
    (same caveat).  Raises [Invalid_argument] for non-positive epochs
    or an unknown topology. *)

val dump : result -> string
(** Full JSON: flat ["config"] section, deterministic ["core"] section
    (summary, availabilities, metrics without walls, event log), and the
    measured ["wall_s"] section. *)

val deterministic_core : result -> string
(** The ["core"] object alone — byte-comparable across domain counts and
    replays of the same seed. *)

val config_of_dump : string -> config
(** Parse the ["config"] section back out of {!dump} output; raises
    [Failure] on malformed input. *)

val replay :
  ?pool:Prete_exec.Pool.t -> string -> result * bool
(** [replay dump_json] re-runs the dumped configuration and returns the
    fresh result plus whether its {!deterministic_core} is byte-equal to
    the dumped one — the replayability check behind [@stream-smoke]. *)

(** Pieces shared with the sharded engine ({!Shard}) — not a public
    API. *)
module Internal : sig
  val epoch_len : int
  (** 900 — seconds per TE period at 1 Hz. *)

  val build_model :
    predictor_kind ->
    Prete.Availability.env ->
    Prete_net.Topology.t ->
    Prete_optics.Hazard.features -> float

  val measured_features :
    Prete_optics.Hazard.features ->
    (float * float * int * int) option ->
    Prete_optics.Hazard.features
  (** Overlay the detector's at-alarm segment features on the truth
      record (static fiber attributes kept, measured excursion
      substituted). *)

  val config_to_json : config -> string

  val field_raw : string -> string -> string option
  (** Flat-JSON scalar field scanner (the dump parser's workhorse). *)

  val object_at : string -> string -> string option
  (** Extract a balanced [{...}] object field from a JSON string. *)

  (** The online decision-focused retraining engine shared by {!run}
      and {!Shard.run}.  Deterministic: the retrain decision, tuned
      deltas, and version names are pure functions of (seed, epoch,
      collected measured events), independent of shard and domain
      counts. *)
  module Retrain : sig
    type state

    val create :
      pool:Prete_exec.Pool.t ->
      seed:int ->
      scale:float ->
      env:Prete.Availability.env ->
      retrain ->
      (Prete_optics.Hazard.features -> float) ->
      state
    (** Arm the loop around the initially served model closure.  The
        TE-loss oracle (and its warm-basis cache) is created lazily on
        the first due retrain. *)

    val record :
      state -> tick:int -> fiber:int -> Prete_optics.Hazard.features -> unit
    (** Feed one measured alarm event (detector at-alarm features).
        The latest tick per fiber wins regardless of arrival order, so
        collection commutes across shard partitions. *)

    val step :
      state ->
      epoch:int ->
      ((Prete_optics.Hazard.features -> float) * string) option
    (** At an epoch boundary: [None] when not due, otherwise tunes the
        current outputs against the oracle, composes the delta onto the
        serving closure, and returns the new model with its version
        name (["dfl-v<n>"]) for the caller to hot-swap. *)
  end
end
