type impairments = {
  gap_rate : float;
  dup_rate : float;
  reorder_rate : float;
  max_delay : int;
}

let no_impairments =
  { gap_rate = 0.0; dup_rate = 0.0; reorder_rate = 0.0; max_delay = 3 }

let default_impairments =
  { gap_rate = 0.02; dup_rate = 0.01; reorder_rate = 0.05; max_delay = 3 }

type arrival = { a_tick : int; a_t : int; a_v : float }

let schedule rng (imp : impairments) (tr : Prete_optics.Telemetry.trace) =
  if imp.max_delay < 0 then invalid_arg "Stream.schedule: negative max_delay";
  let delay () =
    if imp.max_delay > 0 && Prete_util.Rng.bernoulli rng imp.reorder_rate then
      1 + Prete_util.Rng.int rng imp.max_delay
    else 0
  in
  let out = ref [] in
  Array.iteri
    (fun t v ->
      if not (Prete_util.Rng.bernoulli rng imp.gap_rate) then begin
        out := { a_tick = t + delay (); a_t = t; a_v = v } :: !out;
        if Prete_util.Rng.bernoulli rng imp.dup_rate then
          out := { a_tick = t + delay (); a_t = t; a_v = v } :: !out
      end)
    tr.Prete_optics.Telemetry.samples;
  List.rev !out
