(** Mutable solver telemetry accumulated across the warm-start path.

    One record aggregates every {!Simplex} solve it sees — cold or warm —
    plus plan-cache hits/misses and per-stage wall clocks.  The record is
    threaded (not global): {!Te} creates one per strategy call, {!Mip}
    records each node LP into the one it is handed, and the controller
    merges per-epoch records into its report.  Counters let the bench
    compute the headline warm-vs-cold pivot ratio; [to_json] emits the
    machine-readable form used by [BENCH_PR2.json]. *)

type t = {
  mutable solves : int;  (** Total simplex solves observed. *)
  mutable warm_solves : int;  (** Solves that consumed a warm basis. *)
  mutable phase1_skips : int;  (** Warm solves whose reinstall skipped Phase 1. *)
  mutable repairs : int;  (** Warm solves that took the guided-repair path. *)
  mutable pivots : int;  (** Total pivots across all solves. *)
  mutable warm_pivots : int;  (** Pivots spent by warm solves. *)
  mutable cold_pivots : int;  (** Pivots spent by cold solves. *)
  mutable cache_hits : int;  (** Plan-cache hits (solve skipped entirely). *)
  mutable cache_misses : int;
  mutable dense_solves : int;  (** Solves served by the dense tableau. *)
  mutable revised_solves : int;  (** Solves served by the revised engine. *)
  mutable lu_solves : int;  (** Solves served by the LU engine. *)
  mutable etas : int;  (** Revised engine: eta matrices appended. *)
  mutable refactorizations : int;
      (** Eta-file rebuilds / LU factorizations (incl. warm reinstalls). *)
  mutable ftran_nnz : int;  (** Revised/LU engines: FTRAN result nonzeros. *)
  mutable btran_nnz : int;  (** Revised/LU engines: BTRAN result nonzeros. *)
  mutable ft_updates : int;  (** LU engine: Forrest–Tomlin basis updates. *)
  mutable bound_flips : int;  (** LU engine: ratio-test bound flips. *)
  mutable lu_fill_nnz : int;
      (** LU engine: factor nonzeros at extraction, summed over solves. *)
  mutable presolve_rows : int;  (** LU engine: presolve-removed rows. *)
  mutable presolve_cols : int;  (** LU engine: presolve-removed columns. *)
  mutable pricing_solves : (string * int) list;
      (** Solve count per pricing rule ({!Simplex.pricing_name}). *)
  mutable walls : (string * float) list;  (** Per-stage wall seconds. *)
  lock : Mutex.t;
      (** Guards every mutation, so one record can be fed from several
          domains at once (parallel Benders subproblems, pool-sharded
          epochs).  Each update is an order-free sum, so totals are
          deterministic regardless of interleaving.  Read fields directly
          only once concurrent writers have joined. *)
}

val create : unit -> t

val record : t -> Simplex.solution -> unit
(** Fold one solve's counters (pivots, warm/cold, skip/repair) in. *)

val cache_hit : t -> unit
val cache_miss : t -> unit

val add_wall : t -> string -> float -> unit
(** [add_wall t stage s] accumulates [s] seconds under [stage]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk, charging its wall time to the named stage (accumulated
    even when the thunk raises). *)

val merge_into : dst:t -> t -> unit
(** Fold all counters and stage walls of the source into [dst]. *)

val cache_hit_rate : t -> float
(** Hits / (hits + misses); 0 when the cache was never consulted. *)

val to_json : t -> string
(** One-line JSON object — no external JSON dependency. *)

val pp : Format.formatter -> t -> unit
