(** Two-phase primal simplex for {!Lp} models.

    Replaces the Gurobi LP path of the paper's implementation.  Two
    engines share one normalization, one warm-start contract and one
    solution type:

    - {b Lu} (the default) — the WAN-scale bounded-variable engine.  The
      model first goes through a presolve ({!Presolve}): empty, singleton
      and duplicate rows and empty/dominated columns are eliminated and
      the survivors equilibrated; the engine solves the reduced problem
      and postsolve recovers the original primal and dual solution.
      Columns carry ranges [0 <= x <= u] directly (nonbasic-at-upper
      status and bound flips in the ratio test), so finite upper bounds
      stop costing explicit rows.  The basis inverse is a sparse LU
      factorization ({!Sparse.Lu}) with Markowitz-style pivoting,
      Forrest–Tomlin updates on pivots, and periodic refactorization on
      fill-in/stability triggers — FTRAN/BTRAN stay O(LU nonzeros)
      instead of O(eta-file length).
    - {b Revised} — the constraint matrix is kept in
      compressed-sparse-column form ({!Sparse.t}) and the basis inverse
      as a product-form eta file: each pivot appends one eta matrix, and
      sparse FTRAN/BTRAN apply the file in O(eta nonzeros) instead of
      rewriting an m×n tableau.  The eta file is rebuilt from the current
      basis (a {e refactorization}) when it grows past an eta-count or
      fill-in trigger, which also resynchronizes the basic solution
      against round-off.  The ratio test is a Harris-style two-pass rule
      (numerically largest pivot among near-minimal ratios); entering
      columns follow the selected {!pricing} rule.
    - {b Dense} — the original dense-tableau engine, retained as a
      differential-testing oracle (see [test_solvers_diff.ml]) and
      selectable via [?engine] or {!default_engine}.

    Both engines: Phase 1 minimizes the sum of artificial variables to
    find a basic feasible solution, Phase 2 optimizes the user objective,
    and an automatic switch to Bland's rule (guaranteeing termination)
    happens after a degeneracy threshold.

    Normalization: variables are shifted to zero lower bound, finite upper
    bounds become additional rows, binary declarations are relaxed to
    [0, 1].  Free variables (infinite lower bound) are not supported — the
    TE formulations never produce them.

    Duals are reported as shadow prices of the original constraints:
    [dual sol i] is ∂(objective)/∂(rhs of constraint i) at the optimum,
    regardless of constraint sense or optimization direction.

    {b Anytime semantics.}  The solve budget is a pivot limit and an
    optional wall-clock deadline (read on {!Prete_util.Clock}).  Because
    the primal simplex maintains feasibility throughout Phase 2, budget
    expiry after feasibility is reached is {e not} an error: the solver
    stops and returns the current vertex as an {!Optimal} solution with
    [degraded = true] — a feasible incumbent whose objective is only an
    upper bound (for minimization) on the true optimum, and whose duals
    are those of the interrupted basis (not valid shadow prices).  Budget
    expiry during Phase 1, before any feasible point is known, raises
    {!Timeout}.

    {b Warm starting.}  Every solution carries the final simplex {!basis}
    in a representation that survives model rebuilds: basic columns are
    recorded as structural-variable indices or as the slack / surplus /
    artificial of a row index.  Passing it back as [?warm] on a later
    solve reuses it:

    - {e Exact reinstall} — when the new model has the same variable and
      row counts, the stored basic-column set is factorized back into the
      engine (Gaussian elimination with partial pivoting; under the
      revised engine this is a single eta-file rebuild, counted as one
      refactorization, not as simplex iterations).  If the resulting
      vertex is primal feasible for the new data, Phase 1 is skipped
      entirely and Phase 2 starts from the old vertex
      ([phase1_skipped = true]).
    - {e Dual-simplex repair} — a reinstalled optimal basis keeps its
      reduced costs nonnegative, so when only the rhs moved (MIP bound
      fixings, Benders cut updates) the vertex is still dual feasible
      and a short dual-simplex loop walks back to primal feasibility in
      a few pivots, still skipping Phase 1 ([phase1_skipped = true],
      [repaired = true]).
    - {e Guided Phase 1} — when the reinstall fails, is dual infeasible,
      or the row structure changed (e.g. a δ-fixpoint round added
      coverage rows), Phase 1 runs from the usual crash start with
      warm-guided pricing: previously basic structural columns are
      preferred entering candidates, so the search lands near the old
      vertex ([repaired = true]).  Every repair step is an ordinary
      simplex pivot, so optimality and the anytime guarantees are
      unchanged.

    The column layout of the normalized problem depends only on the
    constraint senses, never on rhs signs, so structurally identical
    models share it and the exact reinstall applies across arbitrary
    rhs / bound / cost changes.  A warm basis whose structural dimension
    differs from the new model is ignored ([warm_used = false]).  Warm
    starting never changes the reported optimum — only the pivot count
    taken to reach it.  Bases transfer between the dense and eta engines
    directly (same normalization).  LU-engine bases live in the presolved
    row space, so a cross-engine transfer fails the shape check and
    degrades to guided Phase 1 — the structural variable ids still steer
    the pricing; within the LU engine, bases reinstall exactly across
    rhs-only changes because the presolve reductions that decide the
    reduced structure depend only on constraint patterns, senses and
    cost signs. *)

type basis
(** A simplex basis in model-independent form, transferable to later
    solves of structurally similar models (and across engines). *)

val basis_size : basis -> int
(** Number of rows of the normalized problem the basis was extracted
    from. *)

type engine =
  | Dense  (** Original dense tableau; differential-testing oracle. *)
  | Revised  (** Sparse revised simplex with eta-file basis. *)
  | Lu
      (** Bounded-variable simplex over the presolved model with a
          sparse LU basis and Forrest–Tomlin updates (default). *)

type pricing =
  | Dantzig  (** Full pricing, most negative reduced cost. *)
  | Devex  (** Reference-framework devex weights (Forrest–Goldfarb). *)
  | Partial  (** Cyclic candidate-list pricing over column segments. *)

val default_engine : engine ref
(** Engine used when [?engine] is omitted; [Lu] unless overridden
    (e.g. by the [--lp-engine] CLI flag). *)

val default_pricing : pricing ref
(** Pricing rule used when [?pricing] is omitted; [Dantzig] unless
    overridden (e.g. by the [--pricing] CLI flag). *)

val engine_name : engine -> string
val pricing_name : pricing -> string

val engine_of_string : string -> engine option
(** ["dense" | "revised" | "lu"]. *)

val pricing_of_string : string -> pricing option
(** ["dantzig" | "devex" | "partial"]. *)

type solution = {
  objective : float;  (** Objective in the original direction. *)
  values : float array;  (** Primal values indexed by variable. *)
  duals : float array;  (** Shadow prices indexed by constraint. *)
  iterations : int;
      (** Priced simplex pivots (Phase 1, dual repair, Phase 2).  Basis
          reinstall eliminations are factorization work, not counted. *)
  degraded : bool;
      (** [true] when the budget expired in Phase 2: [values] is feasible
          but possibly suboptimal and [duals] is unreliable. *)
  basis : basis;  (** Final basis; feed back via [?warm]. *)
  warm_used : bool;
      (** A compatible warm basis was supplied and consumed. *)
  phase1_skipped : bool;
      (** The warm basis reinstalled into a primal-feasible vertex
          (directly or via dual repair); Phase 1 was skipped. *)
  repaired : bool;
      (** The warm basis needed repair: the dual-simplex walk (when also
          [phase1_skipped]) or the guided-Phase-1 path (reinstall failed
          or row structure changed). *)
  engine : engine;  (** Engine that produced this solution. *)
  pricing : pricing;  (** Pricing rule requested for this solve. *)
  etas : int;
      (** Revised engine: eta matrices appended (pivots + reinstall
          eliminations); 0 under [Dense] and [Lu]. *)
  refactorizations : int;
      (** Revised engine: eta-file rebuilds; LU engine: LU
          factorizations (initial, warm reinstall, periodic); 0 under
          [Dense]. *)
  ftran_nnz : int;  (** Revised/LU engines: total FTRAN result nonzeros. *)
  btran_nnz : int;  (** Revised/LU engines: total BTRAN result nonzeros. *)
  ft_updates : int;
      (** LU engine: Forrest–Tomlin basis updates absorbed (pivots that
          did not trigger a refactorization); 0 elsewhere. *)
  bound_flips : int;
      (** LU engine: ratio-test bound flips (iterations that moved a
          nonbasic column across its range with no basis change); 0
          elsewhere. *)
  lu_fill_nnz : int;
      (** LU engine: resident factor nonzeros at extraction (U + ops) —
          the fill-in telemetry; 0 elsewhere. *)
  presolve_rows : int;  (** LU engine: rows removed by presolve. *)
  presolve_cols : int;  (** LU engine: columns removed by presolve. *)
}

type outcome = Optimal of solution | Infeasible | Unbounded

exception Numerical of string
(** Raised on internal numerical failures (e.g. an unbounded Phase 1,
    which cannot happen on well-formed input, or a vanished pivot /
    failed refactorization in the revised engine). *)

exception Timeout
(** Raised when the pivot or deadline budget expires before a feasible
    point exists (Phase 1), so no incumbent can be returned. *)

val solve :
  ?max_iters:int ->
  ?deadline:float ->
  ?warm:basis ->
  ?engine:engine ->
  ?pricing:pricing ->
  Lp.model ->
  outcome
(** Solve the continuous relaxation of the model.  [max_iters] defaults to
    200_000 pivots.  [deadline] is an absolute time on
    {!Prete_util.Clock.now}; see the anytime semantics above.  [warm]
    reuses a basis from a previous solve (see warm starting above); with
    a feasible reinstall and [max_iters = 0] the returned degraded
    incumbent is exactly the warm vertex re-evaluated on the new model.
    [engine] and [pricing] default to {!default_engine} and
    {!default_pricing}.  Both engines return the same optimum (the
    differential suite pins objective, dual and outcome agreement);
    pivot paths — and therefore [iterations] and degenerate-optimum
    vertex choices — may differ. *)

val value : solution -> Lp.var -> float
val dual : solution -> int -> float

val feasible : ?eps:float -> Lp.model -> float array -> bool
(** [feasible m x] checks a candidate point against every constraint and
    bound of the model; used by tests, the MIP layer, and the resilience
    fallback ladder to validate incumbents. Default [eps] 1e-6. *)
