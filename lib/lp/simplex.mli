(** Two-phase primal simplex for {!Lp} models.

    Replaces the Gurobi LP path of the paper's implementation.  The solver
    uses a dense tableau: Phase 1 minimizes the sum of artificial variables
    to find a basic feasible solution, Phase 2 optimizes the user objective.
    Entering columns follow Dantzig's rule with an automatic switch to
    Bland's rule (guaranteeing termination) after a degeneracy threshold.

    Normalization: variables are shifted to zero lower bound, finite upper
    bounds become additional rows, binary declarations are relaxed to
    [0, 1].  Free variables (infinite lower bound) are not supported — the
    TE formulations never produce them.

    Duals are reported as shadow prices of the original constraints:
    [dual sol i] is ∂(objective)/∂(rhs of constraint i) at the optimum,
    regardless of constraint sense or optimization direction.

    {b Anytime semantics.}  The solve budget is a pivot limit and an
    optional wall-clock deadline (read on {!Prete_util.Clock}).  Because
    the primal simplex maintains feasibility throughout Phase 2, budget
    expiry after feasibility is reached is {e not} an error: the solver
    stops and returns the current vertex as an {!Optimal} solution with
    [degraded = true] — a feasible incumbent whose objective is only an
    upper bound (for minimization) on the true optimum, and whose duals
    are those of the interrupted basis (not valid shadow prices).  Budget
    expiry during Phase 1, before any feasible point is known, raises
    {!Timeout}. *)

type solution = {
  objective : float;  (** Objective in the original direction. *)
  values : float array;  (** Primal values indexed by variable. *)
  duals : float array;  (** Shadow prices indexed by constraint. *)
  iterations : int;  (** Total simplex pivots across both phases. *)
  degraded : bool;
      (** [true] when the budget expired in Phase 2: [values] is feasible
          but possibly suboptimal and [duals] is unreliable. *)
}

type outcome = Optimal of solution | Infeasible | Unbounded

exception Numerical of string
(** Raised on internal numerical failures (e.g. an unbounded Phase 1,
    which cannot happen on well-formed input). *)

exception Timeout
(** Raised when the pivot or deadline budget expires before a feasible
    point exists (Phase 1), so no incumbent can be returned. *)

val solve : ?max_iters:int -> ?deadline:float -> Lp.model -> outcome
(** Solve the continuous relaxation of the model.  [max_iters] defaults to
    200_000 pivots.  [deadline] is an absolute time on
    {!Prete_util.Clock.now}; see the anytime semantics above. *)

val value : solution -> Lp.var -> float
val dual : solution -> int -> float

val feasible : ?eps:float -> Lp.model -> float array -> bool
(** [feasible m x] checks a candidate point against every constraint and
    bound of the model; used by tests, the MIP layer, and the resilience
    fallback ladder to validate incumbents. Default [eps] 1e-6. *)
