(** Two-phase primal simplex for {!Lp} models.

    Replaces the Gurobi LP path of the paper's implementation.  The solver
    uses a dense tableau: Phase 1 minimizes the sum of artificial variables
    to find a basic feasible solution, Phase 2 optimizes the user objective.
    Entering columns follow Dantzig's rule with an automatic switch to
    Bland's rule (guaranteeing termination) after a degeneracy threshold.

    Normalization: variables are shifted to zero lower bound, finite upper
    bounds become additional rows, binary declarations are relaxed to
    [0, 1].  Free variables (infinite lower bound) are not supported — the
    TE formulations never produce them.

    Duals are reported as shadow prices of the original constraints:
    [dual sol i] is ∂(objective)/∂(rhs of constraint i) at the optimum,
    regardless of constraint sense or optimization direction.

    {b Anytime semantics.}  The solve budget is a pivot limit and an
    optional wall-clock deadline (read on {!Prete_util.Clock}).  Because
    the primal simplex maintains feasibility throughout Phase 2, budget
    expiry after feasibility is reached is {e not} an error: the solver
    stops and returns the current vertex as an {!Optimal} solution with
    [degraded = true] — a feasible incumbent whose objective is only an
    upper bound (for minimization) on the true optimum, and whose duals
    are those of the interrupted basis (not valid shadow prices).  Budget
    expiry during Phase 1, before any feasible point is known, raises
    {!Timeout}.

    {b Warm starting.}  Every solution carries the final simplex {!basis}
    in a representation that survives model rebuilds: basic columns are
    recorded as structural-variable indices or as the slack / surplus /
    artificial of a row index.  Passing it back as [?warm] on a later
    solve reuses it:

    - {e Exact reinstall} — when the new model has the same variable and
      row counts, the stored basic-column set is factorized back into a
      freshly built tableau (Gaussian elimination with partial pivoting;
      not counted as simplex iterations).  If the resulting vertex is
      primal feasible for the new data, Phase 1 is skipped entirely and
      Phase 2 starts from the old vertex ([phase1_skipped = true]).
    - {e Dual-simplex repair} — a reinstalled optimal basis keeps its
      reduced costs nonnegative, so when only the rhs moved (MIP bound
      fixings, Benders cut updates) the vertex is still dual feasible
      and a short dual-simplex loop walks back to primal feasibility in
      a few pivots, still skipping Phase 1 ([phase1_skipped = true],
      [repaired = true]).
    - {e Guided Phase 1} — when the reinstall fails, is dual infeasible,
      or the row structure changed (e.g. a δ-fixpoint round added
      coverage rows), Phase 1 runs from the usual crash start with
      warm-guided pricing: previously basic structural columns are
      preferred entering candidates, so the search lands near the old
      vertex ([repaired = true]).  Every repair step is an ordinary
      simplex pivot, so optimality and the anytime guarantees are
      unchanged.

    The column layout of the internal tableau depends only on the
    constraint senses, never on rhs signs, so structurally identical
    models share it and the exact reinstall applies across arbitrary
    rhs / bound / cost changes.  A warm basis whose structural dimension
    differs from the new model is ignored ([warm_used = false]).  Warm
    starting never changes the reported optimum — only the pivot count
    taken to reach it. *)

type basis
(** A simplex basis in model-independent form, transferable to later
    solves of structurally similar models. *)

val basis_size : basis -> int
(** Number of rows of the tableau the basis was extracted from. *)

type solution = {
  objective : float;  (** Objective in the original direction. *)
  values : float array;  (** Primal values indexed by variable. *)
  duals : float array;  (** Shadow prices indexed by constraint. *)
  iterations : int;
      (** Priced simplex pivots (Phase 1, dual repair, Phase 2).  Basis
          reinstall eliminations are factorization work, not counted. *)
  degraded : bool;
      (** [true] when the budget expired in Phase 2: [values] is feasible
          but possibly suboptimal and [duals] is unreliable. *)
  basis : basis;  (** Final basis; feed back via [?warm]. *)
  warm_used : bool;
      (** A compatible warm basis was supplied and consumed. *)
  phase1_skipped : bool;
      (** The warm basis reinstalled into a primal-feasible vertex
          (directly or via dual repair); Phase 1 was skipped. *)
  repaired : bool;
      (** The warm basis needed repair: the dual-simplex walk (when also
          [phase1_skipped]) or the guided-Phase-1 path (reinstall failed
          or row structure changed). *)
}

type outcome = Optimal of solution | Infeasible | Unbounded

exception Numerical of string
(** Raised on internal numerical failures (e.g. an unbounded Phase 1,
    which cannot happen on well-formed input). *)

exception Timeout
(** Raised when the pivot or deadline budget expires before a feasible
    point exists (Phase 1), so no incumbent can be returned. *)

val solve : ?max_iters:int -> ?deadline:float -> ?warm:basis -> Lp.model -> outcome
(** Solve the continuous relaxation of the model.  [max_iters] defaults to
    200_000 pivots.  [deadline] is an absolute time on
    {!Prete_util.Clock.now}; see the anytime semantics above.  [warm]
    reuses a basis from a previous solve (see warm starting above); with
    a feasible reinstall and [max_iters = 0] the returned degraded
    incumbent is exactly the warm vertex re-evaluated on the new model. *)

val value : solution -> Lp.var -> float
val dual : solution -> int -> float

val feasible : ?eps:float -> Lp.model -> float array -> bool
(** [feasible m x] checks a candidate point against every constraint and
    bound of the model; used by tests, the MIP layer, and the resilience
    fallback ladder to validate incumbents. Default [eps] 1e-6. *)
