(** Branch-and-bound for models with binary variables.

    The PreTE optimization (Eqns. 2–8) is a mixed-integer program with one
    binary δ per (flow, failure-scenario) pair.  This module provides an
    exact solver on top of {!Simplex}: depth-first branch and bound over the
    binary variables, branching on the most fractional one, pruning by the
    LP relaxation bound against the incumbent.

    For minimization: a node is pruned when its relaxation is no better
    than [incumbent - gap].  Default absolute gap 1e-6.

    {b Anytime semantics.}  Exhausting the node budget or the wall-clock
    deadline does not raise: the search stops and returns {!Node_limit}
    carrying the best integral incumbent found so far ([None] when the
    budget expired before any incumbent).  The same happens when an inner
    LP relaxation runs out of budget, since a degraded relaxation
    objective is no longer a valid pruning bound. *)

type solution = {
  objective : float;
  values : float array;
  nodes : int;  (** Branch-and-bound nodes explored. *)
  pivots : int;  (** Total simplex pivots across all node LPs. *)
  basis : Simplex.basis option;
      (** Basis of the incumbent's node LP; reusable as [?warm] on a
          later structurally-similar solve (e.g. the next Benders
          master). *)
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Node_limit of solution option
      (** Search budget exhausted; carries the best feasible integral
          incumbent, which is {e not} proven optimal. *)

val solve :
  ?max_nodes:int ->
  ?gap:float ->
  ?max_iters:int ->
  ?deadline:float ->
  ?warm:Simplex.basis ->
  ?warm_start:bool ->
  ?stats:Solver_stats.t ->
  ?engine:Simplex.engine ->
  ?pricing:Simplex.pricing ->
  Lp.model ->
  outcome
(** [solve m] solves [m] to proven optimality over its binary variables.
    [max_nodes] (default 100_000) caps the search; exceeding it — or the
    absolute [deadline] on {!Prete_util.Clock.now} — yields {!Node_limit}
    with the incumbent instead of raising.  Models without binaries reduce
    to one simplex solve.

    [warm] seeds the root node LP; thereafter each node's final basis
    warm-starts its children (node LPs share the model shape, so the
    reinstall is exact and either skips Phase 1 outright or reaches
    feasibility through a short dual-simplex repair).  [warm_start]
    (default true) gates that intra-tree basis threading — pass [false]
    for a truly cold baseline where every node LP solves from scratch.
    [stats] accumulates per-node solver telemetry into the caller's
    record.  [engine] and [pricing] are forwarded to {e every} node
    re-solve (root and children alike), so a branch never silently falls
    back to the session default; the per-engine counters in [stats]
    witness this. *)

val value : solution -> Lp.var -> float
