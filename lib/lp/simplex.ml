type solution = {
  objective : float;
  values : float array;
  duals : float array;
  iterations : int;
  degraded : bool;
}

type outcome = Optimal of solution | Infeasible | Unbounded

exception Numerical of string

exception Timeout

let eps = 1e-9
let feas_eps = 1e-7

type col_kind = Structural of int | Slack of int | Surplus of int | Artificial of int

(* The dense tableau.  [rows] is m × n, [rhs] is m (kept >= 0 up to
   round-off), [obj] holds reduced costs and [obj_val] the negated current
   objective contribution; [basis.(i)] is the column basic in row i. *)
type tableau = {
  m : int;
  n : int;
  rows : float array array;
  rhs : float array;
  obj : float array;
  mutable obj_val : float;
  basis : int array;
  kinds : col_kind array;
}

let pivot t ~row ~col =
  let piv = t.rows.(row).(col) in
  let r = t.rows.(row) in
  let inv = 1.0 /. piv in
  for j = 0 to t.n - 1 do
    r.(j) <- r.(j) *. inv
  done;
  t.rhs.(row) <- t.rhs.(row) *. inv;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.rows.(i).(col) in
      if Float.abs f > 0.0 then begin
        let ri = t.rows.(i) in
        for j = 0 to t.n - 1 do
          ri.(j) <- ri.(j) -. (f *. r.(j))
        done;
        t.rhs.(i) <- t.rhs.(i) -. (f *. t.rhs.(row));
        (* Clamp round-off negatives so the ratio test stays sane. *)
        if t.rhs.(i) < 0.0 && t.rhs.(i) > -.eps then t.rhs.(i) <- 0.0
      end
    end
  done;
  let f = t.obj.(col) in
  if Float.abs f > 0.0 then begin
    for j = 0 to t.n - 1 do
      t.obj.(j) <- t.obj.(j) -. (f *. r.(j))
    done;
    t.obj_val <- t.obj_val -. (f *. t.rhs.(row))
  end;
  t.basis.(row) <- col

(* Ratio test: leaving row for entering column [col]; Bland tie-break on
   the basic variable index. *)
let leaving_row t col =
  let best = ref (-1) and best_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let a = t.rows.(i).(col) in
    if a > eps then begin
      let ratio = t.rhs.(i) /. a in
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps && (!best = -1 || t.basis.(i) < t.basis.(!best)))
      then begin
        best := i;
        best_ratio := ratio
      end
    end
  done;
  !best

(* One optimization phase.  [banned c] excludes columns from entering.
   Returns [`Optimal], [`Unbounded] or [`Budget] (pivot limit or deadline
   expired — the current basis is the best incumbent this phase has),
   counting pivots in [iters].  The deadline is polled every 64 pivots to
   keep the clock read off the pivot hot path. *)
let optimize t ~banned ~max_iters ?deadline iters =
  let bland_threshold = 20 * (t.m + t.n) in
  let out_of_budget () =
    !iters > max_iters
    || (!iters land 63 = 0 && Prete_util.Clock.expired deadline)
  in
  let rec loop () =
    if out_of_budget () then `Budget
    else
    let use_bland = !iters > bland_threshold in
    let entering = ref (-1) and best = ref (-.eps) in
    (try
       for j = 0 to t.n - 1 do
         if not (banned j) then
           if use_bland then begin
             if t.obj.(j) < -.eps then begin
               entering := j;
               raise Exit
             end
           end
           else if t.obj.(j) < !best then begin
             best := t.obj.(j);
             entering := j
           end
       done
     with Exit -> ());
    if !entering = -1 then `Optimal
    else begin
      let col = !entering in
      let row = leaving_row t col in
      if row = -1 then `Unbounded
      else begin
        incr iters;
        pivot t ~row ~col;
        loop ()
      end
    end
  in
  loop ()

(* Recompute reduced costs for a cost vector [c] (indexed by column) given
   the current basis; the tableau body already encodes B^-1 A. *)
let install_costs t c =
  Array.blit c 0 t.obj 0 t.n;
  t.obj_val <- 0.0;
  for i = 0 to t.m - 1 do
    let cb = c.(t.basis.(i)) in
    if cb <> 0.0 then begin
      let r = t.rows.(i) in
      for j = 0 to t.n - 1 do
        t.obj.(j) <- t.obj.(j) -. (cb *. r.(j))
      done;
      t.obj_val <- t.obj_val -. (cb *. t.rhs.(i))
    end
  done

type norm_row = { coefs : (int * float) list; sense : Lp.sense; rhs : float; flipped : bool }

let solve ?(max_iters = 200_000) ?deadline model =
  let bounds = Lp.Internal.bounds model in
  let constrs = Lp.Internal.constraints model in
  let dir, obj_coefs = Lp.Internal.objective model in
  let nv = Lp.num_vars model in
  let nc = Array.length constrs in
  Array.iter
    (fun (lb, _) ->
      if lb = neg_infinity then
        invalid_arg "Simplex.solve: free variables (lb = -inf) unsupported")
    bounds;
  (* Shift x = lb + x'; collect the objective constant and adjusted rhs. *)
  let lbs = Array.map fst bounds in
  let obj_const = ref 0.0 in
  Array.iteri (fun j c -> obj_const := !obj_const +. (c *. lbs.(j))) obj_coefs;
  let shifted_rhs c =
    List.fold_left (fun acc (v, coef) -> acc -. (coef *. lbs.(v))) c.Lp.Internal.rhs c.Lp.Internal.terms
  in
  (* Build the normalized row list: model constraints first (so duals map
     directly), then upper-bound rows. *)
  let rows0 =
    Array.to_list
      (Array.map
         (fun c ->
           { coefs = c.Lp.Internal.terms; sense = c.Lp.Internal.sense;
             rhs = shifted_rhs c; flipped = false })
         constrs)
  in
  let ub_rows =
    let acc = ref [] in
    Array.iteri
      (fun j (lb, ub) ->
        if ub < infinity then
          acc := { coefs = [ (j, 1.0) ]; sense = Lp.Le; rhs = ub -. lb; flipped = false } :: !acc)
      bounds;
    List.rev !acc
  in
  let all_rows =
    List.map
      (fun r ->
        if r.rhs < 0.0 then
          let flip_sense = function Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq in
          { coefs = List.map (fun (v, c) -> (v, -.c)) r.coefs;
            sense = flip_sense r.sense; rhs = -.r.rhs; flipped = true }
        else r)
      (rows0 @ ub_rows)
  in
  let m = List.length all_rows in
  (* Column layout: structural | slacks | surpluses | artificials. *)
  let n_slack = List.length (List.filter (fun r -> r.sense = Lp.Le) all_rows) in
  let n_surplus = List.length (List.filter (fun r -> r.sense = Lp.Ge) all_rows) in
  let n_art = List.length (List.filter (fun r -> r.sense <> Lp.Le) all_rows) in
  let n = nv + n_slack + n_surplus + n_art in
  let kinds = Array.make n (Structural 0) in
  for j = 0 to nv - 1 do
    kinds.(j) <- Structural j
  done;
  let t =
    { m; n;
      rows = Array.init m (fun _ -> Array.make n 0.0);
      rhs = Array.make m 0.0;
      obj = Array.make n 0.0;
      obj_val = 0.0;
      basis = Array.make m (-1);
      kinds }
  in
  let next_slack = ref nv in
  let next_surplus = ref (nv + n_slack) in
  let next_art = ref (nv + n_slack + n_surplus) in
  List.iteri
    (fun i r ->
      List.iter (fun (v, c) -> t.rows.(i).(v) <- t.rows.(i).(v) +. c) r.coefs;
      t.rhs.(i) <- r.rhs;
      (match r.sense with
      | Lp.Le ->
        let j = !next_slack in
        incr next_slack;
        kinds.(j) <- Slack i;
        t.rows.(i).(j) <- 1.0;
        t.basis.(i) <- j
      | Lp.Ge ->
        let js = !next_surplus in
        incr next_surplus;
        kinds.(js) <- Surplus i;
        t.rows.(i).(js) <- -1.0;
        let ja = !next_art in
        incr next_art;
        kinds.(ja) <- Artificial i;
        t.rows.(i).(ja) <- 1.0;
        t.basis.(i) <- ja
      | Lp.Eq ->
        let ja = !next_art in
        incr next_art;
        kinds.(ja) <- Artificial i;
        t.rows.(i).(ja) <- 1.0;
        t.basis.(i) <- ja))
    all_rows;
  let is_artificial j = match kinds.(j) with Artificial _ -> true | _ -> false in
  let iters = ref 0 in
  (* ---- Phase 1 ---- *)
  let phase1_cost = Array.make n 0.0 in
  Array.iteri (fun j k -> match k with Artificial _ -> phase1_cost.(j) <- 1.0 | _ -> ()) kinds;
  install_costs t phase1_cost;
  (match optimize t ~banned:(fun _ -> false) ~max_iters ?deadline iters with
  | `Unbounded -> raise (Numerical "Simplex: phase 1 unbounded (internal error)")
  | `Budget -> raise Timeout (* no feasible point yet: nothing to return *)
  | `Optimal -> ());
  (* obj_val tracks -(current phase-1 objective). *)
  if -.t.obj_val > feas_eps then Infeasible
  else begin
    (* Drive remaining basic artificials out of the basis. *)
    for i = 0 to m - 1 do
      if is_artificial t.basis.(i) then begin
        let found = ref (-1) in
        (try
           for j = 0 to n - 1 do
             if (not (is_artificial j)) && Float.abs t.rows.(i).(j) > 1e-7 then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then begin
          incr iters;
          pivot t ~row:i ~col:!found
        end
        (* else: redundant row; the artificial stays basic at value 0 and,
           being banned from entering elsewhere, is harmless. *)
      end
    done;
    (* ---- Phase 2 ---- *)
    let sign = match dir with Lp.Minimize -> 1.0 | Lp.Maximize -> -1.0 in
    let phase2_cost = Array.make n 0.0 in
    for j = 0 to nv - 1 do
      phase2_cost.(j) <- sign *. obj_coefs.(j)
    done;
    install_costs t phase2_cost;
    let extract ~degraded =
      let shifted = Array.make nv 0.0 in
      for i = 0 to m - 1 do
        match kinds.(t.basis.(i)) with
        | Structural j -> shifted.(j) <- t.rhs.(i)
        | Slack _ | Surplus _ | Artificial _ -> ()
      done;
      let values = Array.init nv (fun j -> lbs.(j) +. shifted.(j)) in
      let min_obj = -.t.obj_val in
      let objective = (sign *. min_obj) +. !obj_const in
      (* Duals: recover y_i from the reduced cost of the identity column of
         row i (slack for Le rows, artificial otherwise), then undo the
         rhs-sign flip and the direction sign to obtain shadow prices of
         the original constraints. *)
      let y = Array.make m 0.0 in
      for j = 0 to n - 1 do
        match kinds.(j) with
        | Slack i -> y.(i) <- -.t.obj.(j)
        | Artificial i -> y.(i) <- -.t.obj.(j)
        | Structural _ | Surplus _ -> ()
      done;
      let row_arr = Array.of_list all_rows in
      let duals =
        Array.init nc (fun i ->
            let raw = if row_arr.(i).flipped then -.y.(i) else y.(i) in
            sign *. raw)
      in
      Optimal { objective; values; duals; iterations = !iters; degraded }
    in
    match optimize t ~banned:is_artificial ~max_iters ?deadline iters with
    | `Unbounded -> Unbounded
    | `Optimal -> extract ~degraded:false
    | `Budget ->
      (* Phase 2 maintains primal feasibility: the interrupted vertex is
         the best incumbent — return it flagged instead of raising. *)
      extract ~degraded:true
  end

let value sol (v : Lp.var) = sol.values.((v :> int))

let dual sol i = sol.duals.(i)

let feasible ?(eps = 1e-6) model x =
  let bounds = Lp.Internal.bounds model in
  let constrs = Lp.Internal.constraints model in
  Array.length x = Array.length bounds
  && Array.for_all2
       (fun xi (lb, ub) -> xi >= lb -. eps && xi <= ub +. eps)
       x bounds
  && Array.for_all
       (fun c ->
         let lhs =
           List.fold_left (fun acc (v, coef) -> acc +. (coef *. x.(v))) 0.0 c.Lp.Internal.terms
         in
         match c.Lp.Internal.sense with
         | Lp.Le -> lhs <= c.Lp.Internal.rhs +. eps
         | Lp.Ge -> lhs >= c.Lp.Internal.rhs -. eps
         | Lp.Eq -> Float.abs (lhs -. c.Lp.Internal.rhs) <= eps)
       constrs
