type basis_entry =
  | Bstructural of int
  | Brow_slack of int
  | Brow_surplus of int
  | Brow_artificial of int

type basis = { b_nv : int; b_m : int; b_entries : basis_entry array }

let basis_size b = b.b_m

type solution = {
  objective : float;
  values : float array;
  duals : float array;
  iterations : int;
  degraded : bool;
  basis : basis;
  warm_used : bool;
  phase1_skipped : bool;
  repaired : bool;
}

type outcome = Optimal of solution | Infeasible | Unbounded

exception Numerical of string

exception Timeout

let eps = 1e-9
let feas_eps = 1e-7

type col_kind = Structural of int | Slack of int | Surplus of int | Artificial of int

(* The dense tableau.  [rows] is m × n, [rhs] is m (kept >= 0 up to
   round-off), [obj] holds reduced costs and [obj_val] the negated current
   objective contribution; [basis.(i)] is the column basic in row i. *)
type tableau = {
  m : int;
  n : int;
  rows : float array array;
  rhs : float array;
  obj : float array;
  mutable obj_val : float;
  basis : int array;
  kinds : col_kind array;
}

let pivot t ~row ~col =
  let piv = t.rows.(row).(col) in
  let r = t.rows.(row) in
  let inv = 1.0 /. piv in
  for j = 0 to t.n - 1 do
    r.(j) <- r.(j) *. inv
  done;
  t.rhs.(row) <- t.rhs.(row) *. inv;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.rows.(i).(col) in
      if Float.abs f > 0.0 then begin
        let ri = t.rows.(i) in
        for j = 0 to t.n - 1 do
          ri.(j) <- ri.(j) -. (f *. r.(j))
        done;
        t.rhs.(i) <- t.rhs.(i) -. (f *. t.rhs.(row));
        (* Clamp round-off negatives so the ratio test stays sane. *)
        if t.rhs.(i) < 0.0 && t.rhs.(i) > -.eps then t.rhs.(i) <- 0.0
      end
    end
  done;
  let f = t.obj.(col) in
  if Float.abs f > 0.0 then begin
    for j = 0 to t.n - 1 do
      t.obj.(j) <- t.obj.(j) -. (f *. r.(j))
    done;
    t.obj_val <- t.obj_val -. (f *. t.rhs.(row))
  end;
  t.basis.(row) <- col

(* Ratio test: leaving row for entering column [col]; Bland tie-break on
   the basic variable index. *)
let leaving_row t col =
  let best = ref (-1) and best_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let a = t.rows.(i).(col) in
    if a > eps then begin
      let ratio = t.rhs.(i) /. a in
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps && (!best = -1 || t.basis.(i) < t.basis.(!best)))
      then begin
        best := i;
        best_ratio := ratio
      end
    end
  done;
  !best

(* One optimization phase.  [banned c] excludes columns from entering.
   [prefer] (when given) is scanned first: among preferred columns with a
   negative reduced cost the most negative enters — this is the
   warm-repair pricing that steers Phase 1 back toward a previous basis.
   Returns [`Optimal], [`Unbounded] or [`Budget] (pivot limit or deadline
   expired — the current basis is the best incumbent this phase has),
   counting pivots in [iters].  The deadline is polled every 64 pivots to
   keep the clock read off the pivot hot path. *)
let optimize t ~banned ?prefer ~max_iters ?deadline iters =
  let bland_threshold = 20 * (t.m + t.n) in
  let out_of_budget () =
    !iters > max_iters
    || (!iters land 63 = 0 && Prete_util.Clock.expired deadline)
  in
  let rec loop () =
    if out_of_budget () then `Budget
    else
    let use_bland = !iters > bland_threshold in
    let entering = ref (-1) and best = ref (-.eps) in
    (* Warm-guided pricing: preferred columns first (Dantzig restricted to
       the preference set); Bland mode ignores it to keep the
       anti-cycling guarantee intact. *)
    (match prefer with
    | Some pref when not use_bland ->
      for j = 0 to t.n - 1 do
        if pref.(j) && (not (banned j)) && t.obj.(j) < !best then begin
          best := t.obj.(j);
          entering := j
        end
      done
    | _ -> ());
    if !entering = -1 then begin
      best := -.eps;
      try
        for j = 0 to t.n - 1 do
          if not (banned j) then
            if use_bland then begin
              if t.obj.(j) < -.eps then begin
                entering := j;
                raise Exit
              end
            end
            else if t.obj.(j) < !best then begin
              best := t.obj.(j);
              entering := j
            end
        done
      with Exit -> ()
    end;
    if !entering = -1 then `Optimal
    else begin
      let col = !entering in
      let row = leaving_row t col in
      if row = -1 then `Unbounded
      else begin
        incr iters;
        pivot t ~row ~col;
        loop ()
      end
    end
  in
  loop ()

(* Recompute reduced costs for a cost vector [c] (indexed by column) given
   the current basis; the tableau body already encodes B^-1 A. *)
let install_costs t c =
  Array.blit c 0 t.obj 0 t.n;
  t.obj_val <- 0.0;
  for i = 0 to t.m - 1 do
    let cb = c.(t.basis.(i)) in
    if cb <> 0.0 then begin
      let r = t.rows.(i) in
      for j = 0 to t.n - 1 do
        t.obj.(j) <- t.obj.(j) -. (cb *. r.(j))
      done;
      t.obj_val <- t.obj_val -. (cb *. t.rhs.(i))
    end
  done

type norm_row = { coefs : (int * float) list; sense : Lp.sense; rhs : float; flipped : bool }

let solve ?(max_iters = 200_000) ?deadline ?warm model =
  let bounds = Lp.Internal.bounds model in
  let constrs = Lp.Internal.constraints model in
  let dir, obj_coefs = Lp.Internal.objective model in
  let nv = Lp.num_vars model in
  let nc = Array.length constrs in
  Array.iter
    (fun (lb, _) ->
      if lb = neg_infinity then
        invalid_arg "Simplex.solve: free variables (lb = -inf) unsupported")
    bounds;
  (* Shift x = lb + x'; collect the objective constant and adjusted rhs. *)
  let lbs = Array.map fst bounds in
  let obj_const = ref 0.0 in
  Array.iteri (fun j c -> obj_const := !obj_const +. (c *. lbs.(j))) obj_coefs;
  let shifted_rhs c =
    List.fold_left (fun acc (v, coef) -> acc -. (coef *. lbs.(v))) c.Lp.Internal.rhs c.Lp.Internal.terms
  in
  (* Build the normalized row list: model constraints first (so duals map
     directly), then upper-bound rows.  Rows keep their modeling
     orientation: a negative rhs is handled by scaling the row by -1
     inside the tableau (recorded in [flipped]), NOT by rewriting the
     sense — so the column layout below depends only on the senses, and
     structurally identical models share it no matter how their rhs
     vectors differ.  That invariance is what lets a stored basis
     reinstall exactly across rhs-only changes (MIP bound fixings,
     Benders cut updates, delta re-rounding). *)
  let rows0 =
    Array.to_list
      (Array.map
         (fun c ->
           { coefs = c.Lp.Internal.terms; sense = c.Lp.Internal.sense;
             rhs = shifted_rhs c; flipped = false })
         constrs)
  in
  let ub_rows =
    let acc = ref [] in
    Array.iteri
      (fun j (lb, ub) ->
        if ub < infinity then
          acc := { coefs = [ (j, 1.0) ]; sense = Lp.Le; rhs = ub -. lb; flipped = false } :: !acc)
      bounds;
    List.rev !acc
  in
  let row_arr =
    Array.of_list
      (List.map (fun r -> { r with flipped = r.rhs < 0.0 }) (rows0 @ ub_rows))
  in
  let m = Array.length row_arr in
  (* Column layout: structural | slacks | surpluses | artificials.  Every
     row gets an artificial (the last m columns, indexed by row), so the
     identity column of row i is always [art0 + i] — duals read off it
     directly, and the layout is rhs-independent. *)
  let n_slack =
    Array.fold_left (fun a r -> if r.sense = Lp.Le then a + 1 else a) 0 row_arr
  in
  let n_surplus =
    Array.fold_left (fun a r -> if r.sense = Lp.Ge then a + 1 else a) 0 row_arr
  in
  let art0 = nv + n_slack + n_surplus in
  let n = art0 + m in
  let is_artificial j = j >= art0 in
  let make_tableau () =
    let kinds = Array.make n (Structural 0) in
    for j = 0 to nv - 1 do
      kinds.(j) <- Structural j
    done;
    let t =
      { m; n;
        rows = Array.init m (fun _ -> Array.make n 0.0);
        rhs = Array.make m 0.0;
        obj = Array.make n 0.0;
        obj_val = 0.0;
        basis = Array.make m (-1);
        kinds }
    in
    let next_slack = ref nv in
    let next_surplus = ref (nv + n_slack) in
    Array.iteri
      (fun i r ->
        let s = if r.flipped then -1.0 else 1.0 in
        List.iter (fun (v, c) -> t.rows.(i).(v) <- t.rows.(i).(v) +. (s *. c)) r.coefs;
        t.rhs.(i) <- s *. r.rhs;
        let ja = art0 + i in
        kinds.(ja) <- Artificial i;
        t.rows.(i).(ja) <- 1.0;
        (* Crash basis: the identity column with coefficient +1 after
           scaling — slack (Le, unflipped), surplus (Ge, flipped), else
           the artificial. *)
        (match r.sense with
        | Lp.Le ->
          let j = !next_slack in
          incr next_slack;
          kinds.(j) <- Slack i;
          t.rows.(i).(j) <- s;
          t.basis.(i) <- (if r.flipped then ja else j)
        | Lp.Ge ->
          let js = !next_surplus in
          incr next_surplus;
          kinds.(js) <- Surplus i;
          t.rows.(i).(js) <- -.s;
          t.basis.(i) <- (if r.flipped then js else ja)
        | Lp.Eq -> t.basis.(i) <- ja))
      row_arr;
    t
  in
  let sign = match dir with Lp.Minimize -> 1.0 | Lp.Maximize -> -1.0 in
  let phase2_cost = Array.make n 0.0 in
  for j = 0 to nv - 1 do
    phase2_cost.(j) <- sign *. obj_coefs.(j)
  done;
  let iters = ref 0 in
  (* ---- Warm start ----
     A compatible basis (same structural dimension) is reused two ways:

     - Exact reinstall (same row count): Gauss-Jordan the stored basic
       columns back into the basis, ignoring rhs signs along the way, then
       check primal feasibility of the result.  Feasible -> Phase 1 is
       skipped entirely.
     - Repair (reinstall infeasible, or the row structure changed): run
       Phase 1 from the crash start with warm-guided pricing — preferred
       entering columns are the previously-basic structural variables, so
       the work concentrates on the rows the model delta actually
       violated and the search lands near the old vertex. *)
  let warm_prefer wb =
    let pref = Array.make n false in
    Array.iter
      (function Bstructural j when j < nv -> pref.(j) <- true | _ -> ())
      wb.b_entries;
    pref
  in
  let try_exact_install wb =
    if wb.b_m <> m then None
    else begin
      let t = make_tableau () in
      let slack_col = Array.make m (-1)
      and surplus_col = Array.make m (-1)
      and art_col = Array.make m (-1) in
      Array.iteri
        (fun j k ->
          match k with
          | Slack i -> slack_col.(i) <- j
          | Surplus i -> surplus_col.(i) <- j
          | Artificial i -> art_col.(i) <- j
          | Structural _ -> ())
        t.kinds;
      let target i =
        match wb.b_entries.(i) with
        | Bstructural j -> if j < nv then j else -1
        | Brow_slack r -> if r < m then slack_col.(r) else -1
        | Brow_surplus r -> if r < m then surplus_col.(r) else -1
        | Brow_artificial r -> if r < m then art_col.(r) else -1
      in
      (* Install the stored basic-column SET, not the stored row pairing:
         any row arrangement of a nonsingular column set is a valid basis,
         and freeing the pairing turns the install into plain Gaussian
         elimination with partial pivoting over unclaimed rows — which
         succeeds whenever the set is numerically nonsingular, where a
         fixed row-per-column sweep can deadlock on permutation cycles
         through the crash basis (and then silently leave a {e wrong}
         basis behind).  These eliminations are basis factorization, not
         priced simplex iterations, and are not counted in [iters]. *)
      let targets = Array.init m target in
      let in_targets = Array.make n false in
      Array.iter (fun c -> if c >= 0 then in_targets.(c) <- true) targets;
      let claimed = Array.make m false in
      let installed = Array.make n false in
      for i = 0 to m - 1 do
        let b = t.basis.(i) in
        if in_targets.(b) && not installed.(b) then begin
          claimed.(i) <- true;
          installed.(b) <- true
        end
      done;
      let ok = ref true in
      Array.iter
        (fun c ->
          if !ok && c >= 0 && not installed.(c) then begin
            let r = ref (-1) and best = ref 1e-6 in
            for i = 0 to m - 1 do
              if not claimed.(i) then begin
                let a = Float.abs t.rows.(i).(c) in
                if a > !best then begin
                  best := a;
                  r := i
                end
              end
            done;
            if !r = -1 then ok := false
            else begin
              pivot t ~row:!r ~col:c;
              claimed.(!r) <- true;
              installed.(c) <- true
            end
          end)
        targets;
      if not !ok then None
      else begin
      let rhs_ok = ref true and art_ok = ref true in
      for i = 0 to m - 1 do
        if t.rhs.(i) < -.feas_eps then rhs_ok := false
        else begin
          match t.kinds.(t.basis.(i)) with
          | Artificial _ when t.rhs.(i) > feas_eps -> art_ok := false
          | _ -> ()
        end
      done;
      if not !art_ok then None
      else begin
        for i = 0 to m - 1 do
          if t.rhs.(i) < 0.0 && t.rhs.(i) > -.feas_eps then t.rhs.(i) <- 0.0
        done;
        Some (t, !rhs_ok)
      end
      end
    end
  in
  let arts_zero t =
    let ok = ref true in
    for i = 0 to m - 1 do
      match t.kinds.(t.basis.(i)) with
      | Artificial _ when t.rhs.(i) > feas_eps -> ok := false
      | _ -> ()
    done;
    !ok
  in
  (* Dual-simplex repair.  A reinstalled optimal basis keeps its reduced
     costs >= 0 (the objective row did not change), so when only the rhs
     moved the basis is still dual feasible and a short dual loop —
     leaving row by most-negative rhs, entering column by the dual ratio
     test — walks back to primal feasibility in a few pivots instead of a
     full Phase 1.  Returns false on stall, budget expiry, a dual-
     infeasible install, or any numerical doubt; the caller then falls
     back to guided Phase 1, so correctness never rests on this loop. *)
  let dual_repair t =
    install_costs t phase2_cost;
    let dual_ok = ref true in
    for j = 0 to n - 1 do
      if (not (is_artificial j)) && t.obj.(j) < -.feas_eps then dual_ok := false
    done;
    if not !dual_ok then false
    else begin
      let stall_cap = 10 * (m + n) in
      let steps = ref 0 in
      let result = ref `Run in
      while !result = `Run do
        if
          !iters > max_iters
          || (!iters land 63 = 0 && Prete_util.Clock.expired deadline)
          || !steps > stall_cap
        then result := `Fail
        else begin
          let row = ref (-1) and worst = ref (-.feas_eps) in
          for i = 0 to m - 1 do
            if t.rhs.(i) < !worst then begin
              worst := t.rhs.(i);
              row := i
            end
          done;
          if !row = -1 then result := `Done
          else begin
            let r = !row in
            let col = ref (-1) and best = ref infinity in
            for j = 0 to n - 1 do
              if not (is_artificial j) then begin
                let a = t.rows.(r).(j) in
                if a < -.eps then begin
                  let ratio = t.obj.(j) /. -.a in
                  if
                    ratio < !best -. eps
                    || (ratio < !best +. eps && (!col = -1 || j < !col))
                  then begin
                    best := ratio;
                    col := j
                  end
                end
              end
            done;
            (* No eligible column: the row certifies infeasibility — but
               let Phase 1 make that call with its own tolerances. *)
            if !col = -1 then result := `Fail
            else begin
              incr steps;
              incr iters;
              pivot t ~row:r ~col:!col
            end
          end
        end
      done;
      !result = `Done && arts_zero t
    end
  in
  let t, warm_used, phase1_skipped, repaired, prefer =
    match warm with
    | Some wb when wb.b_nv = nv -> (
      match try_exact_install wb with
      | Some (t, true) -> (t, true, true, false, None)
      | Some (t, false) when dual_repair t -> (t, true, true, true, None)
      | Some (_, false) | None ->
        (make_tableau (), true, false, true, Some (warm_prefer wb)))
    | _ -> (make_tableau (), false, false, false, None)
  in
  let kinds = t.kinds in
  (* ---- Phase 1 (skipped when the warm basis reinstalled feasibly) ---- *)
  let feasible_start =
    if phase1_skipped then true
    else begin
      let phase1_cost = Array.make n 0.0 in
      Array.iteri
        (fun j k -> match k with Artificial _ -> phase1_cost.(j) <- 1.0 | _ -> ())
        kinds;
      install_costs t phase1_cost;
      (* Artificials never need to re-enter: they start basic wherever
         needed and are only driven out. *)
      (match optimize t ~banned:is_artificial ?prefer ~max_iters ?deadline iters with
      | `Unbounded -> raise (Numerical "Simplex: phase 1 unbounded (internal error)")
      | `Budget -> raise Timeout (* no feasible point yet: nothing to return *)
      | `Optimal -> ());
      (* obj_val tracks -(current phase-1 objective). *)
      -.t.obj_val <= feas_eps
    end
  in
  if not feasible_start then Infeasible
  else begin
    (* Drive remaining basic artificials out of the basis. *)
    for i = 0 to m - 1 do
      if is_artificial t.basis.(i) then begin
        let found = ref (-1) in
        (try
           for j = 0 to n - 1 do
             if (not (is_artificial j)) && Float.abs t.rows.(i).(j) > 1e-7 then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then begin
          incr iters;
          pivot t ~row:i ~col:!found
        end
        (* else: redundant row; the artificial stays basic at value 0 and,
           being banned from entering elsewhere, is harmless. *)
      end
    done;
    (* ---- Phase 2 ---- *)
    install_costs t phase2_cost;
    let extract ~degraded =
      let shifted = Array.make nv 0.0 in
      for i = 0 to m - 1 do
        match kinds.(t.basis.(i)) with
        | Structural j -> shifted.(j) <- t.rhs.(i)
        | Slack _ | Surplus _ | Artificial _ -> ()
      done;
      let values = Array.init nv (fun j -> lbs.(j) +. shifted.(j)) in
      let min_obj = -.t.obj_val in
      let objective = (sign *. min_obj) +. !obj_const in
      (* Duals: the artificial of row i is the identity column of the
         (possibly sign-scaled) tableau row, so its reduced cost is -y_i
         of the scaled system; undo the scaling and the direction sign to
         obtain shadow prices of the original constraints. *)
      let duals =
        Array.init nc (fun i ->
            let raw = -.t.obj.(art0 + i) in
            let raw = if row_arr.(i).flipped then -.raw else raw in
            sign *. raw)
      in
      let b_entries =
        Array.map
          (fun bcol ->
            match kinds.(bcol) with
            | Structural j -> Bstructural j
            | Slack i -> Brow_slack i
            | Surplus i -> Brow_surplus i
            | Artificial i -> Brow_artificial i)
          t.basis
      in
      Optimal
        {
          objective;
          values;
          duals;
          iterations = !iters;
          degraded;
          basis = { b_nv = nv; b_m = m; b_entries };
          warm_used;
          phase1_skipped;
          repaired;
        }
    in
    match optimize t ~banned:is_artificial ~max_iters ?deadline iters with
    | `Unbounded -> Unbounded
    | `Optimal -> extract ~degraded:false
    | `Budget ->
      (* Phase 2 maintains primal feasibility: the interrupted vertex is
         the best incumbent — return it flagged instead of raising. *)
      extract ~degraded:true
  end

let value sol (v : Lp.var) = sol.values.((v :> int))

let dual sol i = sol.duals.(i)

let feasible ?(eps = 1e-6) model x =
  let bounds = Lp.Internal.bounds model in
  let constrs = Lp.Internal.constraints model in
  Array.length x = Array.length bounds
  && Array.for_all2
       (fun xi (lb, ub) -> xi >= lb -. eps && xi <= ub +. eps)
       x bounds
  && Array.for_all
       (fun c ->
         let lhs =
           List.fold_left (fun acc (v, coef) -> acc +. (coef *. x.(v))) 0.0 c.Lp.Internal.terms
         in
         match c.Lp.Internal.sense with
         | Lp.Le -> lhs <= c.Lp.Internal.rhs +. eps
         | Lp.Ge -> lhs >= c.Lp.Internal.rhs -. eps
         | Lp.Eq -> Float.abs (lhs -. c.Lp.Internal.rhs) <= eps)
       constrs
