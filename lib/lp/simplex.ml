type basis_entry =
  | Bstructural of int
  | Brow_slack of int
  | Brow_surplus of int
  | Brow_artificial of int

type basis = {
  b_nv : int;
  b_m : int;
  b_entries : basis_entry array;
  b_upper : int array;
      (* original structural variables nonbasic at their upper bound —
         only the bounded LU engine produces/consumes these; the dense
         and eta engines (no bound-flip machinery) store [||]. *)
}

let basis_size b = b.b_m

type engine = Dense | Revised | Lu

type pricing = Dantzig | Devex | Partial

let default_engine = ref Lu
let default_pricing = ref Dantzig

let engine_name = function Dense -> "dense" | Revised -> "revised" | Lu -> "lu"

let pricing_name = function
  | Dantzig -> "dantzig"
  | Devex -> "devex"
  | Partial -> "partial"

let engine_of_string = function
  | "dense" -> Some Dense
  | "revised" -> Some Revised
  | "lu" -> Some Lu
  | _ -> None

let pricing_of_string = function
  | "dantzig" -> Some Dantzig
  | "devex" -> Some Devex
  | "partial" -> Some Partial
  | _ -> None

type solution = {
  objective : float;
  values : float array;
  duals : float array;
  iterations : int;
  degraded : bool;
  basis : basis;
  warm_used : bool;
  phase1_skipped : bool;
  repaired : bool;
  engine : engine;
  pricing : pricing;
  etas : int;
  refactorizations : int;
  ftran_nnz : int;
  btran_nnz : int;
  ft_updates : int;
  bound_flips : int;
  lu_fill_nnz : int;
  presolve_rows : int;
  presolve_cols : int;
}

type outcome = Optimal of solution | Infeasible | Unbounded

exception Numerical of string

exception Timeout

let eps = 1e-9
let feas_eps = 1e-7

type col_kind = Structural of int | Slack of int | Surplus of int | Artificial of int

(* ---- Shared normalization ----------------------------------------------

   Both engines solve the same normalized problem: variables shifted to
   zero lower bound, finite upper bounds as extra Le rows, every row
   carrying an artificial so the identity column of row i is always
   [art0 + i].  A negative rhs is handled by scaling the row by -1 inside
   the matrix (recorded in [flipped]), NOT by rewriting the sense — so the
   column layout depends only on the senses and structurally identical
   models share it no matter how their rhs vectors differ.  That
   invariance is what lets a stored basis reinstall exactly across
   rhs-only changes (MIP bound fixings, Benders cut updates, delta
   re-rounding). *)

type norm_row = { coefs : (int * float) list; sense : Lp.sense; rhs : float; flipped : bool }

type prep = {
  p_nv : int;  (* structural variables *)
  p_nc : int;  (* model constraints (dual dimension) *)
  p_m : int;  (* rows incl. upper-bound rows *)
  p_n : int;  (* columns: structural | slack | surplus | artificial *)
  p_art0 : int;  (* first artificial column *)
  p_nslack : int;
  p_rows : norm_row array;
  p_lbs : float array;
  p_obj_const : float;
  p_sign : float;  (* Minimize -> 1.0, Maximize -> -1.0 *)
  p_cost : float array;  (* phase-2 cost over all n columns *)
}

let prepare model =
  let bounds = Lp.Internal.bounds model in
  let constrs = Lp.Internal.constraints model in
  let dir, obj_coefs = Lp.Internal.objective model in
  let nv = Lp.num_vars model in
  let nc = Array.length constrs in
  Array.iter
    (fun (lb, _) ->
      if lb = neg_infinity then
        invalid_arg "Simplex.solve: free variables (lb = -inf) unsupported")
    bounds;
  (* Shift x = lb + x'; collect the objective constant and adjusted rhs. *)
  let lbs = Array.map fst bounds in
  let obj_const = ref 0.0 in
  Array.iteri (fun j c -> obj_const := !obj_const +. (c *. lbs.(j))) obj_coefs;
  let shifted_rhs c =
    List.fold_left (fun acc (v, coef) -> acc -. (coef *. lbs.(v))) c.Lp.Internal.rhs c.Lp.Internal.terms
  in
  let rows0 =
    Array.to_list
      (Array.map
         (fun c ->
           { coefs = c.Lp.Internal.terms; sense = c.Lp.Internal.sense;
             rhs = shifted_rhs c; flipped = false })
         constrs)
  in
  let ub_rows =
    let acc = ref [] in
    Array.iteri
      (fun j (lb, ub) ->
        if ub < infinity then
          acc := { coefs = [ (j, 1.0) ]; sense = Lp.Le; rhs = ub -. lb; flipped = false } :: !acc)
      bounds;
    List.rev !acc
  in
  let row_arr =
    Array.of_list
      (List.map (fun r -> { r with flipped = r.rhs < 0.0 }) (rows0 @ ub_rows))
  in
  let m = Array.length row_arr in
  let n_slack =
    Array.fold_left (fun a r -> if r.sense = Lp.Le then a + 1 else a) 0 row_arr
  in
  let n_surplus =
    Array.fold_left (fun a r -> if r.sense = Lp.Ge then a + 1 else a) 0 row_arr
  in
  let art0 = nv + n_slack + n_surplus in
  let n = art0 + m in
  let sign = match dir with Lp.Minimize -> 1.0 | Lp.Maximize -> -1.0 in
  let cost = Array.make n 0.0 in
  for j = 0 to nv - 1 do
    cost.(j) <- sign *. obj_coefs.(j)
  done;
  { p_nv = nv; p_nc = nc; p_m = m; p_n = n; p_art0 = art0; p_nslack = n_slack;
    p_rows = row_arr; p_lbs = lbs; p_obj_const = !obj_const; p_sign = sign;
    p_cost = cost }

(* Warm-guided Phase-1 pricing preference: previously basic structural
   columns. *)
let warm_prefer p wb =
  let pref = Array.make p.p_n false in
  Array.iter
    (function Bstructural j when j < p.p_nv -> pref.(j) <- true | _ -> ())
    wb.b_entries;
  pref

(* ---- Dense tableau engine ----------------------------------------------

   The original engine, retained as the differential-testing oracle behind
   [?engine:Dense].  [rows] is m × n, [rhs] is m (kept >= 0 up to
   round-off), [obj] holds reduced costs and [obj_val] the negated current
   objective contribution; [basis.(i)] is the column basic in row i. *)
type tableau = {
  m : int;
  n : int;
  rows : float array array;
  rhs : float array;
  obj : float array;
  mutable obj_val : float;
  basis : int array;
  kinds : col_kind array;
}

let pivot t ~row ~col =
  let piv = t.rows.(row).(col) in
  let r = t.rows.(row) in
  let inv = 1.0 /. piv in
  for j = 0 to t.n - 1 do
    r.(j) <- r.(j) *. inv
  done;
  t.rhs.(row) <- t.rhs.(row) *. inv;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.rows.(i).(col) in
      if Float.abs f > 0.0 then begin
        let ri = t.rows.(i) in
        for j = 0 to t.n - 1 do
          ri.(j) <- ri.(j) -. (f *. r.(j))
        done;
        t.rhs.(i) <- t.rhs.(i) -. (f *. t.rhs.(row));
        (* Clamp round-off negatives so the ratio test stays sane. *)
        if t.rhs.(i) < 0.0 && t.rhs.(i) > -.eps then t.rhs.(i) <- 0.0
      end
    end
  done;
  let f = t.obj.(col) in
  if Float.abs f > 0.0 then begin
    for j = 0 to t.n - 1 do
      t.obj.(j) <- t.obj.(j) -. (f *. r.(j))
    done;
    t.obj_val <- t.obj_val -. (f *. t.rhs.(row))
  end;
  t.basis.(row) <- col

(* Ratio test: leaving row for entering column [col]; Bland tie-break on
   the basic variable index. *)
let leaving_row t col =
  let best = ref (-1) and best_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let a = t.rows.(i).(col) in
    if a > eps then begin
      let ratio = t.rhs.(i) /. a in
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps && (!best = -1 || t.basis.(i) < t.basis.(!best)))
      then begin
        best := i;
        best_ratio := ratio
      end
    end
  done;
  !best

(* One optimization phase.  [banned c] excludes columns from entering.
   [prefer] (when given) is scanned first: among preferred columns with a
   negative reduced cost the most negative enters — this is the
   warm-repair pricing that steers Phase 1 back toward a previous basis.
   Returns [`Optimal], [`Unbounded] or [`Budget] (pivot limit or deadline
   expired — the current basis is the best incumbent this phase has),
   counting pivots in [iters].  The deadline is polled every 64 pivots to
   keep the clock read off the pivot hot path. *)
let optimize t ~banned ?prefer ~max_iters ?deadline iters =
  let bland_threshold = 20 * (t.m + t.n) in
  let out_of_budget () =
    !iters > max_iters
    || (!iters land 63 = 0 && Prete_util.Clock.expired deadline)
  in
  let rec loop () =
    if out_of_budget () then `Budget
    else
    let use_bland = !iters > bland_threshold in
    let entering = ref (-1) and best = ref (-.eps) in
    (* Warm-guided pricing: preferred columns first (Dantzig restricted to
       the preference set); Bland mode ignores it to keep the
       anti-cycling guarantee intact. *)
    (match prefer with
    | Some pref when not use_bland ->
      for j = 0 to t.n - 1 do
        if pref.(j) && (not (banned j)) && t.obj.(j) < !best then begin
          best := t.obj.(j);
          entering := j
        end
      done
    | _ -> ());
    if !entering = -1 then begin
      best := -.eps;
      try
        for j = 0 to t.n - 1 do
          if not (banned j) then
            if use_bland then begin
              if t.obj.(j) < -.eps then begin
                entering := j;
                raise Exit
              end
            end
            else if t.obj.(j) < !best then begin
              best := t.obj.(j);
              entering := j
            end
        done
      with Exit -> ()
    end;
    if !entering = -1 then `Optimal
    else begin
      let col = !entering in
      let row = leaving_row t col in
      if row = -1 then `Unbounded
      else begin
        incr iters;
        pivot t ~row ~col;
        loop ()
      end
    end
  in
  loop ()

(* Recompute reduced costs for a cost vector [c] (indexed by column) given
   the current basis; the tableau body already encodes B^-1 A. *)
let install_costs t c =
  Array.blit c 0 t.obj 0 t.n;
  t.obj_val <- 0.0;
  for i = 0 to t.m - 1 do
    let cb = c.(t.basis.(i)) in
    if cb <> 0.0 then begin
      let r = t.rows.(i) in
      for j = 0 to t.n - 1 do
        t.obj.(j) <- t.obj.(j) -. (cb *. r.(j))
      done;
      t.obj_val <- t.obj_val -. (cb *. t.rhs.(i))
    end
  done

let make_tableau p =
  let { p_nv = nv; p_m = m; p_n = n; p_art0 = art0; p_nslack = n_slack; _ } = p in
  let kinds = Array.make n (Structural 0) in
  for j = 0 to nv - 1 do
    kinds.(j) <- Structural j
  done;
  let t =
    { m; n;
      rows = Array.init m (fun _ -> Array.make n 0.0);
      rhs = Array.make m 0.0;
      obj = Array.make n 0.0;
      obj_val = 0.0;
      basis = Array.make m (-1);
      kinds }
  in
  let next_slack = ref nv in
  let next_surplus = ref (nv + n_slack) in
  Array.iteri
    (fun i r ->
      let s = if r.flipped then -1.0 else 1.0 in
      List.iter (fun (v, c) -> t.rows.(i).(v) <- t.rows.(i).(v) +. (s *. c)) r.coefs;
      t.rhs.(i) <- s *. r.rhs;
      let ja = art0 + i in
      kinds.(ja) <- Artificial i;
      t.rows.(i).(ja) <- 1.0;
      (* Crash basis: the identity column with coefficient +1 after
         scaling — slack (Le, unflipped), surplus (Ge, flipped), else
         the artificial. *)
      (match r.sense with
      | Lp.Le ->
        let j = !next_slack in
        incr next_slack;
        kinds.(j) <- Slack i;
        t.rows.(i).(j) <- s;
        t.basis.(i) <- (if r.flipped then ja else j)
      | Lp.Ge ->
        let js = !next_surplus in
        incr next_surplus;
        kinds.(js) <- Surplus i;
        t.rows.(i).(js) <- -.s;
        t.basis.(i) <- (if r.flipped then js else ja)
      | Lp.Eq -> t.basis.(i) <- ja))
    p.p_rows;
  t

let solve_dense p ~max_iters ~deadline ~warm ~pricing =
  let { p_nv = nv; p_nc = nc; p_m = m; p_n = n; p_art0 = art0;
        p_rows = row_arr; p_lbs = lbs; p_obj_const = obj_const;
        p_sign = sign; p_cost = phase2_cost; _ } = p in
  let is_artificial j = j >= art0 in
  let iters = ref 0 in
  (* ---- Warm start ----
     A compatible basis (same structural dimension) is reused two ways:

     - Exact reinstall (same row count): Gauss-Jordan the stored basic
       columns back into the basis, ignoring rhs signs along the way, then
       check primal feasibility of the result.  Feasible -> Phase 1 is
       skipped entirely.
     - Repair (reinstall infeasible, or the row structure changed): run
       Phase 1 from the crash start with warm-guided pricing — preferred
       entering columns are the previously-basic structural variables, so
       the work concentrates on the rows the model delta actually
       violated and the search lands near the old vertex. *)
  let try_exact_install wb =
    if wb.b_m <> m then None
    else begin
      let t = make_tableau p in
      let slack_col = Array.make m (-1)
      and surplus_col = Array.make m (-1)
      and art_col = Array.make m (-1) in
      Array.iteri
        (fun j k ->
          match k with
          | Slack i -> slack_col.(i) <- j
          | Surplus i -> surplus_col.(i) <- j
          | Artificial i -> art_col.(i) <- j
          | Structural _ -> ())
        t.kinds;
      let target i =
        match wb.b_entries.(i) with
        | Bstructural j -> if j < nv then j else -1
        | Brow_slack r -> if r < m then slack_col.(r) else -1
        | Brow_surplus r -> if r < m then surplus_col.(r) else -1
        | Brow_artificial r -> if r < m then art_col.(r) else -1
      in
      (* Install the stored basic-column SET, not the stored row pairing:
         any row arrangement of a nonsingular column set is a valid basis,
         and freeing the pairing turns the install into plain Gaussian
         elimination with partial pivoting over unclaimed rows — which
         succeeds whenever the set is numerically nonsingular, where a
         fixed row-per-column sweep can deadlock on permutation cycles
         through the crash basis (and then silently leave a {e wrong}
         basis behind).  These eliminations are basis factorization, not
         priced simplex iterations, and are not counted in [iters]. *)
      let targets = Array.init m target in
      let in_targets = Array.make n false in
      Array.iter (fun c -> if c >= 0 then in_targets.(c) <- true) targets;
      let claimed = Array.make m false in
      let installed = Array.make n false in
      for i = 0 to m - 1 do
        let b = t.basis.(i) in
        if in_targets.(b) && not installed.(b) then begin
          claimed.(i) <- true;
          installed.(b) <- true
        end
      done;
      let ok = ref true in
      Array.iter
        (fun c ->
          if !ok && c >= 0 && not installed.(c) then begin
            let r = ref (-1) and best = ref 1e-6 in
            for i = 0 to m - 1 do
              if not claimed.(i) then begin
                let a = Float.abs t.rows.(i).(c) in
                if a > !best then begin
                  best := a;
                  r := i
                end
              end
            done;
            if !r = -1 then ok := false
            else begin
              pivot t ~row:!r ~col:c;
              claimed.(!r) <- true;
              installed.(c) <- true
            end
          end)
        targets;
      if not !ok then None
      else begin
      let rhs_ok = ref true and art_ok = ref true in
      for i = 0 to m - 1 do
        if t.rhs.(i) < -.feas_eps then rhs_ok := false
        else begin
          match t.kinds.(t.basis.(i)) with
          | Artificial _ when t.rhs.(i) > feas_eps -> art_ok := false
          | _ -> ()
        end
      done;
      if not !art_ok then None
      else begin
        for i = 0 to m - 1 do
          if t.rhs.(i) < 0.0 && t.rhs.(i) > -.feas_eps then t.rhs.(i) <- 0.0
        done;
        Some (t, !rhs_ok)
      end
      end
    end
  in
  let arts_zero t =
    let ok = ref true in
    for i = 0 to m - 1 do
      match t.kinds.(t.basis.(i)) with
      | Artificial _ when t.rhs.(i) > feas_eps -> ok := false
      | _ -> ()
    done;
    !ok
  in
  (* Dual-simplex repair.  A reinstalled optimal basis keeps its reduced
     costs >= 0 (the objective row did not change), so when only the rhs
     moved the basis is still dual feasible and a short dual loop —
     leaving row by most-negative rhs, entering column by the dual ratio
     test — walks back to primal feasibility in a few pivots instead of a
     full Phase 1.  Returns false on stall, budget expiry, a dual-
     infeasible install, or any numerical doubt; the caller then falls
     back to guided Phase 1, so correctness never rests on this loop. *)
  let dual_repair t =
    install_costs t phase2_cost;
    let dual_ok = ref true in
    for j = 0 to n - 1 do
      if (not (is_artificial j)) && t.obj.(j) < -.feas_eps then dual_ok := false
    done;
    if not !dual_ok then false
    else begin
      let stall_cap = 10 * (m + n) in
      let steps = ref 0 in
      let result = ref `Run in
      while !result = `Run do
        if
          !iters > max_iters
          || (!iters land 63 = 0 && Prete_util.Clock.expired deadline)
          || !steps > stall_cap
        then result := `Fail
        else begin
          let row = ref (-1) and worst = ref (-.feas_eps) in
          for i = 0 to m - 1 do
            if t.rhs.(i) < !worst then begin
              worst := t.rhs.(i);
              row := i
            end
          done;
          if !row = -1 then result := `Done
          else begin
            let r = !row in
            let col = ref (-1) and best = ref infinity in
            for j = 0 to n - 1 do
              if not (is_artificial j) then begin
                let a = t.rows.(r).(j) in
                if a < -.eps then begin
                  let ratio = t.obj.(j) /. -.a in
                  if
                    ratio < !best -. eps
                    || (ratio < !best +. eps && (!col = -1 || j < !col))
                  then begin
                    best := ratio;
                    col := j
                  end
                end
              end
            done;
            (* No eligible column: the row certifies infeasibility — but
               let Phase 1 make that call with its own tolerances. *)
            if !col = -1 then result := `Fail
            else begin
              incr steps;
              incr iters;
              pivot t ~row:r ~col:!col
            end
          end
        end
      done;
      !result = `Done && arts_zero t
    end
  in
  let t, warm_used, phase1_skipped, repaired, prefer =
    match warm with
    | Some wb when wb.b_nv = nv -> (
      match try_exact_install wb with
      | Some (t, true) -> (t, true, true, false, None)
      | Some (t, false) when dual_repair t -> (t, true, true, true, None)
      | Some (_, false) | None ->
        (make_tableau p, true, false, true, Some (warm_prefer p wb)))
    | _ -> (make_tableau p, false, false, false, None)
  in
  let kinds = t.kinds in
  (* ---- Phase 1 (skipped when the warm basis reinstalled feasibly) ---- *)
  let feasible_start =
    if phase1_skipped then true
    else begin
      let phase1_cost = Array.make n 0.0 in
      Array.iteri
        (fun j k -> match k with Artificial _ -> phase1_cost.(j) <- 1.0 | _ -> ())
        kinds;
      install_costs t phase1_cost;
      (* Artificials never need to re-enter: they start basic wherever
         needed and are only driven out. *)
      (match optimize t ~banned:is_artificial ?prefer ~max_iters ?deadline iters with
      | `Unbounded -> raise (Numerical "Simplex: phase 1 unbounded (internal error)")
      | `Budget -> raise Timeout (* no feasible point yet: nothing to return *)
      | `Optimal -> ());
      (* obj_val tracks -(current phase-1 objective). *)
      -.t.obj_val <= feas_eps
    end
  in
  if not feasible_start then Infeasible
  else begin
    (* Drive remaining basic artificials out of the basis. *)
    for i = 0 to m - 1 do
      if is_artificial t.basis.(i) then begin
        let found = ref (-1) in
        (try
           for j = 0 to n - 1 do
             if (not (is_artificial j)) && Float.abs t.rows.(i).(j) > 1e-7 then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then begin
          incr iters;
          pivot t ~row:i ~col:!found
        end
        (* else: redundant row; the artificial stays basic at value 0 and,
           being banned from entering elsewhere, is harmless. *)
      end
    done;
    (* ---- Phase 2 ---- *)
    install_costs t phase2_cost;
    let extract ~degraded =
      let shifted = Array.make nv 0.0 in
      for i = 0 to m - 1 do
        match kinds.(t.basis.(i)) with
        | Structural j -> shifted.(j) <- t.rhs.(i)
        | Slack _ | Surplus _ | Artificial _ -> ()
      done;
      let values = Array.init nv (fun j -> lbs.(j) +. shifted.(j)) in
      let min_obj = -.t.obj_val in
      let objective = (sign *. min_obj) +. obj_const in
      (* Duals: the artificial of row i is the identity column of the
         (possibly sign-scaled) tableau row, so its reduced cost is -y_i
         of the scaled system; undo the scaling and the direction sign to
         obtain shadow prices of the original constraints. *)
      let duals =
        Array.init nc (fun i ->
            let raw = -.t.obj.(art0 + i) in
            let raw = if row_arr.(i).flipped then -.raw else raw in
            sign *. raw)
      in
      let b_entries =
        Array.map
          (fun bcol ->
            match kinds.(bcol) with
            | Structural j -> Bstructural j
            | Slack i -> Brow_slack i
            | Surplus i -> Brow_surplus i
            | Artificial i -> Brow_artificial i)
          t.basis
      in
      Optimal
        {
          objective;
          values;
          duals;
          iterations = !iters;
          degraded;
          basis = { b_nv = nv; b_m = m; b_entries; b_upper = [||] };
          warm_used;
          phase1_skipped;
          repaired;
          engine = Dense;
          pricing;
          etas = 0;
          refactorizations = 0;
          ftran_nnz = 0;
          btran_nnz = 0;
          ft_updates = 0;
          bound_flips = 0;
          lu_fill_nnz = 0;
          presolve_rows = 0;
          presolve_cols = 0;
        }
    in
    match optimize t ~banned:is_artificial ~max_iters ?deadline iters with
    | `Unbounded -> Unbounded
    | `Optimal -> extract ~degraded:false
    | `Budget ->
      (* Phase 2 maintains primal feasibility: the interrupted vertex is
         the best incumbent — return it flagged instead of raising. *)
      extract ~degraded:true
  end

(* ---- Sparse revised engine ---------------------------------------------

   The default path.  The constraint matrix lives in CSC form
   ({!Sparse.t}); the basis inverse is never formed — it is represented as
   a product of eta matrices (product-form of the inverse), one per pivot,
   applied by sparse FTRAN/BTRAN.  The eta file is rebuilt from scratch
   (refactorization) when it grows past an eta-count or fill-in trigger,
   which also resynchronizes the basic solution x_B = B⁻¹b against
   accumulated round-off.  The crash basis of the normalized problem is
   the identity, so a fresh state needs no factorization at all, and a
   warm basis reinstalls as one elimination pass (counted as a
   refactorization) instead of a full tableau rebuild. *)
module Rev = struct
  type eta = {
    e_row : int;  (* pivot row r *)
    e_diag : float;  (* 1 / w_r *)
    e_idx : int array;  (* rows i <> r with w_i <> 0 *)
    e_val : float array;  (* -w_i / w_r *)
  }

  let dummy_eta = { e_row = 0; e_diag = 1.0; e_idx = [||]; e_val = [||] }

  type state = {
    m : int;
    n : int;
    a : Sparse.t;  (* m × n with logical columns, post row-scaling *)
    at : Sparse.t;  (* transpose: row view for pricing *)
    b : float array;  (* scaled rhs (>= 0) *)
    kinds : col_kind array;
    crash : int array;  (* crash basic column of each row (identity) *)
    basis : int array;
    in_basis : bool array;
    xb : float array;  (* current basic solution, row-indexed *)
    mutable etas : eta array;
    mutable n_etas : int;
    mutable eta_nnz : int;
    mutable base_etas : int;  (* eta count right after the last refactor *)
    mutable base_nnz : int;  (* eta fill-in right after the last refactor *)
    mutable pp_cursor : int;  (* partial-pricing segment cursor *)
    (* scratch *)
    w : float array;  (* FTRAN'd entering column *)
    y : float array;  (* simplex multipliers *)
    rho : float array;  (* BTRAN'd unit row vector *)
    d : float array;  (* reduced costs *)
    dx : float array;  (* devex reference weights *)
    (* telemetry *)
    mutable c_etas : int;
    mutable c_refactors : int;
    mutable c_ftran : int;
    mutable c_btran : int;
  }

  let make_state p =
    let m = p.p_m and n = p.p_n and nv = p.p_nv and art0 = p.p_art0 in
    let kinds = Array.make n (Structural 0) in
    for j = 0 to nv - 1 do
      kinds.(j) <- Structural j
    done;
    let crash = Array.make m (-1) in
    let b = Array.make m 0.0 in
    let next_slack = ref nv in
    let next_surplus = ref (nv + p.p_nslack) in
    let trips = ref [] in
    Array.iteri
      (fun i r ->
        let s = if r.flipped then -1.0 else 1.0 in
        List.iter (fun (v, c) -> trips := (i, v, s *. c) :: !trips) r.coefs;
        b.(i) <- s *. r.rhs;
        let ja = art0 + i in
        kinds.(ja) <- Artificial i;
        trips := (i, ja, 1.0) :: !trips;
        (match r.sense with
        | Lp.Le ->
          let j = !next_slack in
          incr next_slack;
          kinds.(j) <- Slack i;
          trips := (i, j, s) :: !trips;
          crash.(i) <- (if r.flipped then ja else j)
        | Lp.Ge ->
          let js = !next_surplus in
          incr next_surplus;
          kinds.(js) <- Surplus i;
          trips := (i, js, -.s) :: !trips;
          crash.(i) <- (if r.flipped then js else ja)
        | Lp.Eq -> crash.(i) <- ja))
      p.p_rows;
    let a = Sparse.of_triplets ~rows:m ~cols:n !trips in
    let at = Sparse.transpose a in
    let basis = Array.copy crash in
    let in_basis = Array.make n false in
    Array.iter (fun j -> in_basis.(j) <- true) basis;
    { m; n; a; at; b; kinds; crash; basis; in_basis;
      xb = Array.copy b;
      etas = Array.make 64 dummy_eta; n_etas = 0; eta_nnz = 0;
      base_etas = 0; base_nnz = 0; pp_cursor = 0;
      w = Array.make m 0.0; y = Array.make m 0.0; rho = Array.make m 0.0;
      d = Array.make n 0.0; dx = Array.make n 1.0;
      c_etas = 0; c_refactors = 0; c_ftran = 0; c_btran = 0 }

  let append_eta st e =
    if st.n_etas = Array.length st.etas then begin
      let bigger = Array.make (2 * st.n_etas) e in
      Array.blit st.etas 0 bigger 0 st.n_etas;
      st.etas <- bigger
    end;
    st.etas.(st.n_etas) <- e;
    st.n_etas <- st.n_etas + 1;
    st.eta_nnz <- st.eta_nnz + Array.length e.e_idx + 1;
    st.c_etas <- st.c_etas + 1

  (* Record the pivot on [row] with FTRAN'd column [w] as an eta matrix.
     E = I + (η - e_r)e_rᵀ with η_r = 1/w_r and η_i = -w_i/w_r, so
     B⁻¹ := E·B⁻¹. *)
  let push_eta st ~row w =
    let piv = w.(row) in
    if Float.abs piv < 1e-11 then
      raise (Numerical "Simplex/revised: pivot element vanished");
    let cnt = ref 0 in
    for i = 0 to st.m - 1 do
      if i <> row && w.(i) <> 0.0 then incr cnt
    done;
    let e_idx = Array.make !cnt 0 and e_val = Array.make !cnt 0.0 in
    let inv = 1.0 /. piv in
    let k = ref 0 in
    for i = 0 to st.m - 1 do
      if i <> row && w.(i) <> 0.0 then begin
        e_idx.(!k) <- i;
        e_val.(!k) <- -.(w.(i) *. inv);
        incr k
      end
    done;
    append_eta st { e_row = row; e_diag = inv; e_idx; e_val }

  (* x := E x, skipping the whole eta when x_r = 0 — on TE instances the
     FTRAN'd vectors stay very sparse, so most etas are no-ops. *)
  let apply_eta e x =
    let xr = x.(e.e_row) in
    if xr <> 0.0 then begin
      x.(e.e_row) <- xr *. e.e_diag;
      for k = 0 to Array.length e.e_idx - 1 do
        x.(e.e_idx.(k)) <- x.(e.e_idx.(k)) +. (e.e_val.(k) *. xr)
      done
    end

  (* y := Eᵀ y touches only y_r. *)
  let apply_eta_t e y =
    let acc = ref (e.e_diag *. y.(e.e_row)) in
    for k = 0 to Array.length e.e_idx - 1 do
      acc := !acc +. (e.e_val.(k) *. y.(e.e_idx.(k)))
    done;
    y.(e.e_row) <- !acc

  (* FTRAN: x := B⁻¹x = E_K … E_1 x (creation order).  The _quiet variant
     skips the O(m) telemetry scan — it is the refactorization inner loop,
     where that scan would dominate the actual elimination work. *)
  let ftran_quiet st x =
    for k = 0 to st.n_etas - 1 do
      apply_eta st.etas.(k) x
    done

  let ftran st x =
    ftran_quiet st x;
    let nz = ref 0 in
    for i = 0 to st.m - 1 do
      if x.(i) <> 0.0 then incr nz
    done;
    st.c_ftran <- st.c_ftran + !nz

  (* BTRAN: y := B⁻ᵀy = E_1ᵀ … E_Kᵀ y (reverse order). *)
  let btran st y =
    for k = st.n_etas - 1 downto 0 do
      apply_eta_t st.etas.(k) y
    done;
    let nz = ref 0 in
    for i = 0 to st.m - 1 do
      if y.(i) <> 0.0 then incr nz
    done;
    st.c_btran <- st.c_btran + !nz

  (* Resynchronize x_B = B⁻¹b, clamping round-off negatives exactly as the
     dense engine clamps its rhs column. *)
  let compute_xb st =
    Array.blit st.b 0 st.xb 0 st.m;
    ftran st st.xb;
    for i = 0 to st.m - 1 do
      if st.xb.(i) < 0.0 && st.xb.(i) > -.eps then st.xb.(i) <- 0.0
    done

  (* Install a basic-column set from scratch: reset to the (identity)
     crash basis, claim the rows whose crash column is in the set without
     any eta, then eliminate the remaining targets with partial pivoting
     over unclaimed rows — the sparse mirror of the dense engine's
     set-based reinstall (same pivot threshold, rows not covered keep
     their crash column).  One call = one refactorization.  Returns false
     when the set is numerically singular.

     Unlike the dense reinstall, the elimination order matters enormously
     here: every eta pushed during the rebuild taxes both the remaining
     FTRANs and every later pivot's FTRAN/BTRAN, so fill-in compounds.
     Two measures keep the rebuilt file near the size of the basis
     matrix itself:

     - Sparsest columns first.  TE bases are dominated by slack/surplus
       singletons (non-binding rows), which under this order eliminate
       before anything can fill them in.
     - A no-fill fast path: FTRAN is the identity on any column whose
       support misses every pivot row of the current file (no eta fires),
       so its eta is built straight from the CSC entries — no dense
       scatter, no O(m) scans.  With the sparsest-first order, nearly
       every singleton takes this path with a diagonal-only eta. *)
  let install_set st targets =
    st.c_refactors <- st.c_refactors + 1;
    let in_targets = Array.make st.n false in
    Array.iter (fun c -> if c >= 0 then in_targets.(c) <- true) targets;
    let to_install =
      let acc = ref [] in
      let queued = Array.make st.n false in
      Array.iter
        (fun c ->
          if c >= 0 && not queued.(c) then begin
            queued.(c) <- true;
            acc := c :: !acc
          end)
        targets;
      Array.of_list (List.rev !acc)
    in
    let attempt ~threshold order =
      st.n_etas <- 0;
      st.eta_nnz <- 0;
      Array.blit st.crash 0 st.basis 0 st.m;
      let claimed = Array.make st.m false in
      let installed = Array.make st.n false in
      for i = 0 to st.m - 1 do
        let c = st.crash.(i) in
        if in_targets.(c) && not installed.(c) then begin
          claimed.(i) <- true;
          installed.(c) <- true
        end
      done;
      (* Rows that are the pivot row of some eta in the file so far: FTRAN
         of a vector that is zero on all of them is the identity. *)
      let pivot_rows = Array.make st.m false in
      let ok = ref true in
      Array.iter
        (fun c ->
          if !ok && not installed.(c) then begin
            let disjoint = ref true in
            Sparse.iter_col st.a c (fun i _ ->
                if pivot_rows.(i) then disjoint := false);
            let r =
              if !disjoint then begin
                (* Fast path: w = the raw column.  Pick the largest-
                   magnitude entry in an unclaimed row (lowest row on
                   ties, as in the dense scan) and build the eta
                   directly. *)
                let r = ref (-1) and best = ref threshold in
                Sparse.iter_col st.a c (fun i v ->
                    if not claimed.(i) then begin
                      let a = Float.abs v in
                      if a > !best then begin
                        best := a;
                        r := i
                      end
                    end);
                if !r >= 0 then begin
                  let piv = ref 0.0 in
                  Sparse.iter_col st.a c (fun i v -> if i = !r then piv := v);
                  let inv = 1.0 /. !piv in
                  let cnt = Sparse.col_nnz st.a c - 1 in
                  let e_idx = Array.make cnt 0 and e_val = Array.make cnt 0.0 in
                  let k = ref 0 in
                  Sparse.iter_col st.a c (fun i v ->
                      if i <> !r then begin
                        e_idx.(!k) <- i;
                        e_val.(!k) <- -.(v *. inv);
                        incr k
                      end);
                  append_eta st { e_row = !r; e_diag = inv; e_idx; e_val }
                end;
                !r
              end
              else begin
                Array.fill st.w 0 st.m 0.0;
                Sparse.scatter_col st.a c st.w;
                ftran_quiet st st.w;
                let r = ref (-1) and best = ref threshold in
                for i = 0 to st.m - 1 do
                  if not claimed.(i) then begin
                    let a = Float.abs st.w.(i) in
                    if a > !best then begin
                      best := a;
                      r := i
                    end
                  end
                done;
                if !r >= 0 then push_eta st ~row:!r st.w;
                !r
              end
            in
            if r = -1 then ok := false
            else begin
              pivot_rows.(r) <- true;
              st.basis.(r) <- c;
              claimed.(r) <- true;
              installed.(c) <- true
            end
          end)
        order;
      !ok
    in
    let sorted =
      let o = Array.copy to_install in
      Array.sort
        (fun c1 c2 ->
          let d = compare (Sparse.col_nnz st.a c1) (Sparse.col_nnz st.a c2) in
          if d <> 0 then d else compare c1 c2)
        o;
      o
    in
    (* The sorted order minimizes fill-in but greedy elimination can
       strand a late column below the pivot threshold even though the set
       is nonsingular (a just-pivoted-on basis always is).  Before
       declaring singularity, retry in the stored target order and then
       with a relaxed threshold — a tiny pivot beats aborting the solve,
       and push_eta still rejects outright-vanishing ones. *)
    let etas0 = st.c_etas in
    let retry order ~threshold ok =
      ok
      ||
      (st.c_etas <- etas0;
       attempt ~threshold order)
    in
    let ok =
      attempt ~threshold:1e-6 sorted
      |> retry to_install ~threshold:1e-6
      |> retry sorted ~threshold:1e-10
      |> retry to_install ~threshold:1e-10
    in
    Array.fill st.in_basis 0 st.n false;
    Array.iter (fun j -> st.in_basis.(j) <- true) st.basis;
    st.base_etas <- st.n_etas;
    st.base_nnz <- st.eta_nnz;
    if ok then compute_xb st;
    ok

  (* Refactorization policy: rebuild when the eta file has grown long or
     filled in badly {e since the last rebuild} — the rebuilt file itself
     holds up to one eta per non-crash basic column, so the triggers
     compare against that baseline, not zero.  Rebuilding also resyncs
     x_B against drift. *)
  let maybe_refactor st =
    if
      st.n_etas - st.base_etas >= 64
      || st.eta_nnz - st.base_nnz > Stdlib.max 4096 (16 * st.m)
    then begin
      let cols = Array.copy st.basis in
      if not (install_set st cols) then
        raise (Numerical "Simplex/revised: refactorization failed")
    end

  (* Basis change: entering column q (FTRAN'd into st.w), leaving row
     [row], step length theta. *)
  let do_pivot st ~row ~q ~theta =
    let leave = st.basis.(row) in
    for i = 0 to st.m - 1 do
      if st.w.(i) <> 0.0 then begin
        st.xb.(i) <- st.xb.(i) -. (theta *. st.w.(i));
        if st.xb.(i) < 0.0 && st.xb.(i) > -.eps then st.xb.(i) <- 0.0
      end
    done;
    st.xb.(row) <- theta;
    push_eta st ~row st.w;
    st.in_basis.(leave) <- false;
    st.in_basis.(q) <- true;
    st.basis.(row) <- q;
    maybe_refactor st

  (* Simplex multipliers y = B⁻ᵀ c_B. *)
  let compute_y st cost =
    for i = 0 to st.m - 1 do
      st.y.(i) <- cost.(st.basis.(i))
    done;
    btran st st.y

  (* Full reduced-cost vector d = c - Aᵀy via one pass over the rows with
     a nonzero multiplier. *)
  let compute_d st cost =
    Array.blit cost 0 st.d 0 st.n;
    for i = 0 to st.m - 1 do
      let yi = st.y.(i) in
      if yi <> 0.0 then
        Sparse.iter_col st.at i (fun j aij -> st.d.(j) <- st.d.(j) -. (aij *. yi))
    done

  (* Ratio test on st.w/st.xb.  The default is a Harris-style two-pass:
     pass 1 finds the largest step that keeps every basic value above
     -feas_eps, pass 2 picks the numerically largest pivot element among
     the rows whose exact ratio fits under that relaxed bound.  In Bland
     mode the textbook minimum-ratio test with lowest-basic-index
     tie-break is used instead — Bland's anti-cycling argument needs the
     exact lexicographic rule, not the relaxed one. *)
  let ratio_test st ~use_bland =
    if use_bland then begin
      let best = ref (-1) and best_ratio = ref infinity in
      for i = 0 to st.m - 1 do
        let a = st.w.(i) in
        if a > eps then begin
          let ratio = st.xb.(i) /. a in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
                && (!best = -1 || st.basis.(i) < st.basis.(!best)))
          then begin
            best := i;
            best_ratio := ratio
          end
        end
      done;
      !best
    end
    else begin
      let theta_max = ref infinity in
      for i = 0 to st.m - 1 do
        let a = st.w.(i) in
        if a > eps then begin
          let t = (Float.max 0.0 st.xb.(i) +. feas_eps) /. a in
          if t < !theta_max then theta_max := t
        end
      done;
      if !theta_max = infinity then -1
      else begin
        let best = ref (-1) and best_piv = ref 0.0 in
        for i = 0 to st.m - 1 do
          let a = st.w.(i) in
          if a > eps && st.xb.(i) /. a <= !theta_max then
            if
              a > !best_piv
              || (a = !best_piv && !best >= 0 && st.basis.(i) < st.basis.(!best))
            then begin
              best := i;
              best_piv := a
            end
        done;
        !best
      end
    end

  (* Devex reference-weight update for the pivot (row, q); must run before
     the basis change.  Uses st.rho and st.d as scratch — both are
     recomputed at the top of the next iteration. *)
  let devex_update st ~row ~q =
    let alpha_q = st.w.(row) in
    let wq = Float.max st.dx.(q) 1.0 in
    let ratio = wq /. (alpha_q *. alpha_q) in
    Array.fill st.rho 0 st.m 0.0;
    st.rho.(row) <- 1.0;
    btran st st.rho;
    let alpha = st.d in
    Array.fill alpha 0 st.n 0.0;
    for i = 0 to st.m - 1 do
      let ri = st.rho.(i) in
      if ri <> 0.0 then
        Sparse.iter_col st.at i (fun j aij -> alpha.(j) <- alpha.(j) +. (aij *. ri))
    done;
    let maxw = ref 0.0 in
    for j = 0 to st.n - 1 do
      if (not st.in_basis.(j)) && j <> q then begin
        let aj = alpha.(j) in
        if aj <> 0.0 then begin
          let cand = aj *. aj *. ratio in
          if cand > st.dx.(j) then st.dx.(j) <- cand
        end;
        if st.dx.(j) > !maxw then maxw := st.dx.(j)
      end
    done;
    st.dx.(st.basis.(row)) <- Float.max ratio 1.0;
    (* Weights drifted too far from the reference framework: reset. *)
    if !maxw > 1e12 then Array.fill st.dx 0 st.n 1.0

  (* One optimization phase; the revised mirror of the dense [optimize]
     (same budget polling, same Bland threshold and warm-guided pricing),
     with the entering rule selected by [pricing]. *)
  let optimize st ~cost ~banned ?prefer ~pricing ~max_iters ~deadline iters =
    let bland_threshold = 20 * (st.m + st.n) in
    let out_of_budget () =
      !iters > max_iters
      || (!iters land 63 = 0 && Prete_util.Clock.expired deadline)
    in
    let seg = Stdlib.max 64 (st.n / 8) in
    let rec loop () =
      if out_of_budget () then `Budget
      else begin
        let use_bland = !iters > bland_threshold in
        compute_y st cost;
        let need_full = use_bland || prefer <> None || pricing <> Partial in
        if need_full then compute_d st cost;
        let entering = ref (-1) in
        (match prefer with
        | Some pref when not use_bland ->
          let best = ref (-.eps) in
          for j = 0 to st.n - 1 do
            if
              pref.(j) && (not st.in_basis.(j)) && (not (banned j))
              && st.d.(j) < !best
            then begin
              best := st.d.(j);
              entering := j
            end
          done
        | _ -> ());
        if !entering = -1 then begin
          if use_bland then begin
            try
              for j = 0 to st.n - 1 do
                if (not (banned j)) && (not st.in_basis.(j)) && st.d.(j) < -.eps
                then begin
                  entering := j;
                  raise Exit
                end
              done
            with Exit -> ()
          end
          else
            match (prefer, pricing) with
            | Some _, _ | None, Dantzig ->
              let best = ref (-.eps) in
              for j = 0 to st.n - 1 do
                if (not (banned j)) && (not st.in_basis.(j)) && st.d.(j) < !best
                then begin
                  best := st.d.(j);
                  entering := j
                end
              done
            | None, Devex ->
              let best = ref 0.0 in
              for j = 0 to st.n - 1 do
                if not (banned j || st.in_basis.(j)) then begin
                  let dj = st.d.(j) in
                  if dj < -.eps then begin
                    let merit = dj *. dj /. st.dx.(j) in
                    if merit > !best then begin
                      best := merit;
                      entering := j
                    end
                  end
                end
              done
            | None, Partial ->
              (* Cyclic candidate-list pricing: scan segments from the
                 cursor, stop at the first segment holding an attractive
                 column (most negative within the segment); a full empty
                 cycle certifies optimality. *)
              let tried = ref 0 in
              while !entering = -1 && !tried < st.n do
                let start = st.pp_cursor in
                let stop = Stdlib.min st.n (start + seg) in
                let best = ref (-.eps) in
                for j = start to stop - 1 do
                  if not (banned j || st.in_basis.(j)) then begin
                    let dj = cost.(j) -. Sparse.col_dot st.a j st.y in
                    if dj < !best then begin
                      best := dj;
                      entering := j
                    end
                  end
                done;
                tried := !tried + (stop - start);
                st.pp_cursor <- (if stop >= st.n then 0 else stop)
              done
        end;
        if !entering = -1 then `Optimal
        else begin
          let q = !entering in
          Array.fill st.w 0 st.m 0.0;
          Sparse.scatter_col st.a q st.w;
          ftran st st.w;
          let row = ratio_test st ~use_bland in
          if row = -1 then `Unbounded
          else begin
            let theta = Float.max 0.0 (st.xb.(row) /. st.w.(row)) in
            if pricing = Devex && (not use_bland) && prefer = None then
              devex_update st ~row ~q;
            incr iters;
            do_pivot st ~row ~q ~theta;
            loop ()
          end
        end
      end
    in
    loop ()

  let arts_zero st =
    let ok = ref true in
    for i = 0 to st.m - 1 do
      match st.kinds.(st.basis.(i)) with
      | Artificial _ when st.xb.(i) > feas_eps -> ok := false
      | _ -> ()
    done;
    !ok

  let phase1_sum st =
    let s = ref 0.0 in
    for i = 0 to st.m - 1 do
      match st.kinds.(st.basis.(i)) with
      | Artificial _ -> s := !s +. Float.max 0.0 st.xb.(i)
      | _ -> ()
    done;
    !s

  (* Drive remaining basic artificials out after Phase 1 — same scan order
     and pivot-magnitude threshold as the dense engine (basic non-
     artificial columns are exact unit vectors there, so skipping them
     here changes nothing). *)
  let drive_out st ~is_artificial iters =
    for i = 0 to st.m - 1 do
      if is_artificial st.basis.(i) then begin
        Array.fill st.rho 0 st.m 0.0;
        st.rho.(i) <- 1.0;
        btran st st.rho;
        let found = ref (-1) in
        (try
           for j = 0 to st.n - 1 do
             if (not (is_artificial j)) && not st.in_basis.(j) then
               if Float.abs (Sparse.col_dot st.a j st.rho) > 1e-7 then begin
                 found := j;
                 raise Exit
               end
           done
         with Exit -> ());
        if !found >= 0 then begin
          let q = !found in
          Array.fill st.w 0 st.m 0.0;
          Sparse.scatter_col st.a q st.w;
          ftran st st.w;
          let theta = Float.max 0.0 (st.xb.(i) /. st.w.(i)) in
          incr iters;
          do_pivot st ~row:i ~q ~theta
        end
      end
    done

  (* Dual-simplex repair, mirroring the dense engine: only run when the
     reinstalled basis is dual feasible for the phase-2 costs; leaving row
     by most-negative basic value, entering column by the dual ratio test
     over BTRAN'd rows.  Any doubt -> false, caller falls back to guided
     Phase 1. *)
  let dual_repair st p ~max_iters ~deadline iters =
    let cost = p.p_cost in
    let is_art j = j >= p.p_art0 in
    compute_y st cost;
    compute_d st cost;
    let dual_ok = ref true in
    for j = 0 to st.n - 1 do
      if (not (is_art j)) && (not st.in_basis.(j)) && st.d.(j) < -.feas_eps
      then dual_ok := false
    done;
    if not !dual_ok then false
    else begin
      let stall_cap = 10 * (st.m + st.n) in
      let steps = ref 0 in
      let result = ref `Run in
      while !result = `Run do
        if
          !iters > max_iters
          || (!iters land 63 = 0 && Prete_util.Clock.expired deadline)
          || !steps > stall_cap
        then result := `Fail
        else begin
          let row = ref (-1) and worst = ref (-.feas_eps) in
          for i = 0 to st.m - 1 do
            if st.xb.(i) < !worst then begin
              worst := st.xb.(i);
              row := i
            end
          done;
          if !row = -1 then result := `Done
          else begin
            let r = !row in
            Array.fill st.rho 0 st.m 0.0;
            st.rho.(r) <- 1.0;
            btran st st.rho;
            let col = ref (-1) and best = ref infinity in
            for j = 0 to st.n - 1 do
              if (not (is_art j)) && not st.in_basis.(j) then begin
                let a = Sparse.col_dot st.a j st.rho in
                if a < -.eps then begin
                  let ratio = st.d.(j) /. -.a in
                  if
                    ratio < !best -. eps
                    || (ratio < !best +. eps && (!col = -1 || j < !col))
                  then begin
                    best := ratio;
                    col := j
                  end
                end
              end
            done;
            if !col = -1 then result := `Fail
            else begin
              let q = !col in
              Array.fill st.w 0 st.m 0.0;
              Sparse.scatter_col st.a q st.w;
              ftran st st.w;
              incr steps;
              incr iters;
              (* Dual pivot: x_r < 0 and w_r < 0, so theta > 0. *)
              let theta = st.xb.(r) /. st.w.(r) in
              do_pivot st ~row:r ~q ~theta;
              compute_y st cost;
              compute_d st cost
            end
          end
        end
      done;
      !result = `Done && arts_zero st
    end

  (* Warm reinstall: translate the stored basis into current columns and
     install the set (one refactorization).  Same validity checks as the
     dense path: no artificial may sit basic above feas_eps (-> None), and
     the vertex is primal feasible iff no basic value is below
     -feas_eps. *)
  let try_exact_install p st wb =
    if wb.b_m <> p.p_m then None
    else begin
      let m = p.p_m in
      let slack_col = Array.make m (-1)
      and surplus_col = Array.make m (-1)
      and art_col = Array.make m (-1) in
      Array.iteri
        (fun j k ->
          match k with
          | Slack i -> slack_col.(i) <- j
          | Surplus i -> surplus_col.(i) <- j
          | Artificial i -> art_col.(i) <- j
          | Structural _ -> ())
        st.kinds;
      let target i =
        match wb.b_entries.(i) with
        | Bstructural j -> if j < p.p_nv then j else -1
        | Brow_slack r -> if r < m then slack_col.(r) else -1
        | Brow_surplus r -> if r < m then surplus_col.(r) else -1
        | Brow_artificial r -> if r < m then art_col.(r) else -1
      in
      let targets = Array.init m target in
      if not (install_set st targets) then None
      else begin
        let rhs_ok = ref true and art_ok = ref true in
        for i = 0 to m - 1 do
          if st.xb.(i) < -.feas_eps then rhs_ok := false
          else begin
            match st.kinds.(st.basis.(i)) with
            | Artificial _ when st.xb.(i) > feas_eps -> art_ok := false
            | _ -> ()
          end
        done;
        if not !art_ok then None
        else begin
          for i = 0 to m - 1 do
            if st.xb.(i) < 0.0 && st.xb.(i) > -.feas_eps then st.xb.(i) <- 0.0
          done;
          Some !rhs_ok
        end
      end
    end

  let solve p ~max_iters ~deadline ~warm ~pricing =
    let nv = p.p_nv and m = p.p_m and art0 = p.p_art0 in
    let is_artificial j = j >= art0 in
    let iters = ref 0 in
    let st, warm_used, phase1_skipped, repaired, prefer =
      match warm with
      | Some wb when wb.b_nv = nv -> (
        let st0 = make_state p in
        match try_exact_install p st0 wb with
        | Some true -> (st0, true, true, false, None)
        | Some false when dual_repair st0 p ~max_iters ~deadline iters ->
          (st0, true, true, true, None)
        | Some false | None ->
          (make_state p, true, false, true, Some (warm_prefer p wb)))
      | _ -> (make_state p, false, false, false, None)
    in
    (* ---- Phase 1 (skipped when the warm basis reinstalled feasibly) ---- *)
    let feasible_start =
      if phase1_skipped then true
      else begin
        let c1 = Array.make st.n 0.0 in
        Array.iteri
          (fun j k -> match k with Artificial _ -> c1.(j) <- 1.0 | _ -> ())
          st.kinds;
        (match
           optimize st ~cost:c1 ~banned:is_artificial ?prefer ~pricing
             ~max_iters ~deadline iters
         with
        | `Unbounded -> raise (Numerical "Simplex: phase 1 unbounded (internal error)")
        | `Budget -> raise Timeout
        | `Optimal -> ());
        phase1_sum st <= feas_eps
      end
    in
    if not feasible_start then Infeasible
    else begin
      drive_out st ~is_artificial iters;
      (* ---- Phase 2 ---- *)
      let cost = p.p_cost in
      let extract ~degraded =
        (* Resync x_B = B⁻¹b so the reported vertex and objective are
           exact for the final basis, independent of incremental drift. *)
        compute_xb st;
        let shifted = Array.make nv 0.0 in
        for i = 0 to st.m - 1 do
          match st.kinds.(st.basis.(i)) with
          | Structural j -> shifted.(j) <- st.xb.(i)
          | Slack _ | Surplus _ | Artificial _ -> ()
        done;
        let values = Array.init nv (fun j -> p.p_lbs.(j) +. shifted.(j)) in
        let min_obj = ref 0.0 in
        for i = 0 to st.m - 1 do
          let cb = cost.(st.basis.(i)) in
          if cb <> 0.0 then min_obj := !min_obj +. (cb *. st.xb.(i))
        done;
        let objective = (p.p_sign *. !min_obj) +. p.p_obj_const in
        (* Duals: y = B⁻ᵀ c_B of the scaled system; undo the row scaling
           and direction sign exactly as the dense engine does via the
           artificials' reduced costs. *)
        compute_y st cost;
        let duals =
          Array.init p.p_nc (fun i ->
              let raw = st.y.(i) in
              let raw = if p.p_rows.(i).flipped then -.raw else raw in
              p.p_sign *. raw)
        in
        let b_entries =
          Array.map
            (fun bcol ->
              match st.kinds.(bcol) with
              | Structural j -> Bstructural j
              | Slack i -> Brow_slack i
              | Surplus i -> Brow_surplus i
              | Artificial i -> Brow_artificial i)
            st.basis
        in
        Optimal
          {
            objective;
            values;
            duals;
            iterations = !iters;
            degraded;
            basis = { b_nv = nv; b_m = m; b_entries; b_upper = [||] };
            warm_used;
            phase1_skipped;
            repaired;
            engine = Revised;
            pricing;
            etas = st.c_etas;
            refactorizations = st.c_refactors;
            ftran_nnz = st.c_ftran;
            btran_nnz = st.c_btran;
            ft_updates = 0;
            bound_flips = 0;
            lu_fill_nnz = 0;
            presolve_rows = 0;
            presolve_cols = 0;
          }
      in
      match
        optimize st ~cost ~banned:is_artificial ~pricing ~max_iters ~deadline
          iters
      with
      | `Unbounded -> Unbounded
      | `Optimal -> extract ~degraded:false
      | `Budget -> extract ~degraded:true
    end
end

(* ---- Bounded-variable LU engine ----------------------------------------

   The WAN-scale path.  Three changes over [Rev]:

   - The model first goes through {!Presolve}: empty/singleton/duplicate
     rows and empty/dominated columns are eliminated and the survivors
     equilibrated; the engine solves the reduced problem and maps the
     result back with [Presolve.postsolve].  On TE coverage LPs the
     duplicate-row collapse alone removes the bulk of the rows.
   - Columns carry ranges [0 <= x' <= u] directly (nonbasic-at-upper
     status, bound flips in the ratio test), so finite upper bounds stop
     costing explicit rows: presolve turns singleton capacity rows into
     bounds and this engine prices them for free.
   - The basis inverse is a sparse LU factorization ({!Sparse.Lu}) with
     Markowitz-style pivoting, Forrest–Tomlin updates on pivots, and
     periodic refactorization on fill-in/stability triggers — FTRAN and
     BTRAN stay O(LU nonzeros) instead of O(eta-file length).

   The warm-start ladder mirrors [Rev] (exact reinstall = one LU
   factorize -> bounded dual repair -> guided Phase 1), with the dual
   repair extended to above-upper violations so MIP bound fixings (which
   push basic variables over a tightened range) repair in a few dual
   pivots.  Stored bases carry the at-upper set ([b_upper]) keyed by
   original variable ids; [b_m] is the {e reduced} row count, so
   cross-engine transfers fail the shape check and degrade to guided
   Phase 1 — the structural ids still steer the pricing. *)
module Blu = struct
  let at_lower = 0
  and at_upper = 1
  and basic = 2

  type state = {
    m : int;  (* reduced rows *)
    n : int;  (* columns: structural | slack | surplus | artificial *)
    nv : int;  (* reduced structural count *)
    art0 : int;
    a : Sparse.t;
    at : Sparse.t;
    b : float array;  (* shifted scaled rhs (>= 0 after flips) *)
    flipped : bool array;
    kinds : col_kind array;
    crash : int array;
    basis : int array;
    vstat : int array;
    ub : float array;  (* per-column range u = r_ub - r_lb; infinity for
                          rangeless columns and all logicals *)
    xb : float array;
    cost : float array;  (* phase-2 min-form scaled cost *)
    mutable f : Sparse.Lu.t;
    mutable base_nnz : int;  (* factor nnz right after the last refactor *)
    mutable pp_cursor : int;
    w : float array;
    y : float array;
    rho : float array;
    d : float array;
    dx : float array;
    mutable c_factor : int;
    mutable c_ft : int;
    mutable c_flips : int;
    mutable c_ftran : int;
    mutable c_btran : int;
  }

  let ftran st x =
    Sparse.Lu.ftran st.f x;
    let nz = ref 0 in
    for i = 0 to st.m - 1 do
      if x.(i) <> 0.0 then incr nz
    done;
    st.c_ftran <- st.c_ftran + !nz

  let btran st y =
    Sparse.Lu.btran st.f y;
    let nz = ref 0 in
    for i = 0 to st.m - 1 do
      if y.(i) <> 0.0 then incr nz
    done;
    st.c_btran <- st.c_btran + !nz

  (* Clamp round-off violations of row i's basic range, mirroring the
     other engines' rhs clamps. *)
  let clamp_row st i =
    if st.xb.(i) < 0.0 && st.xb.(i) > -.eps then st.xb.(i) <- 0.0
    else begin
      let ubi = st.ub.(st.basis.(i)) in
      if ubi < infinity && st.xb.(i) > ubi && st.xb.(i) < ubi +. eps then
        st.xb.(i) <- ubi
    end

  (* Resynchronize x_B = B⁻¹(b - Σ_{at-upper j} u_j A_j). *)
  let compute_xb st =
    Array.blit st.b 0 st.xb 0 st.m;
    for j = 0 to st.n - 1 do
      if st.vstat.(j) = at_upper then begin
        let uj = st.ub.(j) in
        if uj > 0.0 && uj < infinity then
          Sparse.iter_col st.a j (fun i v -> st.xb.(i) <- st.xb.(i) -. (uj *. v))
      end
    done;
    ftran st st.xb;
    for i = 0 to st.m - 1 do
      clamp_row st i
    done

  (* Refactorize the current basis from scratch; also resyncs x_B. *)
  let refactor st =
    st.c_factor <- st.c_factor + 1;
    let basis_out = Array.make st.m (-1) in
    let f, dropped =
      Sparse.Lu.factorize st.a ~targets:st.basis ~crash:st.crash ~basis_out
    in
    if dropped <> [] then
      raise (Numerical "Simplex/lu: refactorization found basis singular");
    st.f <- f;
    st.base_nnz <- Sparse.Lu.nnz f;
    Array.blit basis_out 0 st.basis 0 st.m;
    compute_xb st

  (* Refactorization policy: absorbed-update count or fill-in growth
     since the last factorize — same shape as the eta engine's triggers,
     with the factor's own nnz as the baseline. *)
  let maybe_refactor st =
    if
      Sparse.Lu.updates st.f >= 64
      || Sparse.Lu.nnz st.f - st.base_nnz > Stdlib.max 4096 (16 * st.m)
    then refactor st

  let make_state (red : Presolve.t) =
    let nv = red.Presolve.r_nv and m = red.Presolve.r_nc in
    (* Shift x = r_lb + x' and flip negative-rhs rows in-matrix, exactly
       like [prepare] — the column layout depends only on the senses. *)
    let rhs = Array.make m 0.0 in
    for i = 0 to m - 1 do
      rhs.(i) <-
        List.fold_left
          (fun acc (rj, a) -> acc -. (a *. red.Presolve.r_lb.(rj)))
          red.Presolve.r_rhs.(i)
          red.Presolve.r_rows.(i)
    done;
    let flipped = Array.map (fun r -> r < 0.0) rhs in
    let nslack = ref 0 and nsurplus = ref 0 in
    Array.iter
      (function Lp.Le -> incr nslack | Lp.Ge -> incr nsurplus | Lp.Eq -> ())
      red.Presolve.r_sense;
    let art0 = nv + !nslack + !nsurplus in
    let n = art0 + m in
    let kinds = Array.make n (Structural 0) in
    for j = 0 to nv - 1 do
      kinds.(j) <- Structural j
    done;
    let crash = Array.make m (-1) in
    let b = Array.make m 0.0 in
    let next_slack = ref nv in
    let next_surplus = ref (nv + !nslack) in
    let trips = ref [] in
    for i = 0 to m - 1 do
      let s = if flipped.(i) then -1.0 else 1.0 in
      List.iter
        (fun (rj, c) -> trips := (i, rj, s *. c) :: !trips)
        red.Presolve.r_rows.(i);
      b.(i) <- s *. rhs.(i);
      let ja = art0 + i in
      kinds.(ja) <- Artificial i;
      trips := (i, ja, 1.0) :: !trips;
      (match red.Presolve.r_sense.(i) with
      | Lp.Le ->
        let j = !next_slack in
        incr next_slack;
        kinds.(j) <- Slack i;
        trips := (i, j, s) :: !trips;
        crash.(i) <- (if flipped.(i) then ja else j)
      | Lp.Ge ->
        let js = !next_surplus in
        incr next_surplus;
        kinds.(js) <- Surplus i;
        trips := (i, js, -.s) :: !trips;
        crash.(i) <- (if flipped.(i) then js else ja)
      | Lp.Eq -> crash.(i) <- ja)
    done;
    let a = Sparse.of_triplets ~rows:m ~cols:n !trips in
    let at = Sparse.transpose a in
    let ub = Array.make n infinity in
    for j = 0 to nv - 1 do
      ub.(j) <- red.Presolve.r_ub.(j) -. red.Presolve.r_lb.(j)
    done;
    let cost = Array.make n 0.0 in
    for j = 0 to nv - 1 do
      cost.(j) <- red.Presolve.r_cost.(j)
    done;
    let vstat = Array.make n at_lower in
    let basis_out = Array.make m (-1) in
    let f, _dropped = Sparse.Lu.factorize a ~targets:crash ~crash ~basis_out in
    let st =
      { m; n; nv; art0; a; at; b; flipped; kinds; crash;
        basis = basis_out; vstat; ub;
        xb = Array.make m 0.0; cost;
        f; base_nnz = Sparse.Lu.nnz f; pp_cursor = 0;
        w = Array.make m 0.0; y = Array.make m 0.0; rho = Array.make m 0.0;
        d = Array.make n 0.0; dx = Array.make n 1.0;
        c_factor = 1; c_ft = 0; c_flips = 0; c_ftran = 0; c_btran = 0 }
    in
    Array.iter (fun j -> vstat.(j) <- basic) st.basis;
    compute_xb st;
    st

  let compute_y st cost =
    for i = 0 to st.m - 1 do
      st.y.(i) <- cost.(st.basis.(i))
    done;
    btran st st.y

  let compute_d st cost =
    Array.blit cost 0 st.d 0 st.n;
    for i = 0 to st.m - 1 do
      let yi = st.y.(i) in
      if yi <> 0.0 then
        Sparse.iter_col st.at i (fun j aij -> st.d.(j) <- st.d.(j) -. (aij *. yi))
    done

  let arts_zero st =
    let ok = ref true in
    for i = 0 to st.m - 1 do
      match st.kinds.(st.basis.(i)) with
      | Artificial _ when st.xb.(i) > feas_eps -> ok := false
      | _ -> ()
    done;
    !ok

  let phase1_sum st =
    let s = ref 0.0 in
    for i = 0 to st.m - 1 do
      match st.kinds.(st.basis.(i)) with
      | Artificial _ -> s := !s +. Float.max 0.0 st.xb.(i)
      | _ -> ()
    done;
    !s

  (* Bound flip: the entering column hits its own opposite bound before
     any basic variable blocks — no basis change, no factor update, just
     an x_B shift by the full range. *)
  let apply_flip st ~q ~sigma =
    let uq = st.ub.(q) in
    for i = 0 to st.m - 1 do
      if st.w.(i) <> 0.0 then begin
        st.xb.(i) <- st.xb.(i) -. (sigma *. uq *. st.w.(i));
        clamp_row st i
      end
    done;
    st.vstat.(q) <- (if st.vstat.(q) = at_lower then at_upper else at_lower);
    st.c_flips <- st.c_flips + 1

  (* Basis change: entering q (FTRAN'd into st.w, whose spike the factor
     cached), leaving row [row] whose variable exits to its lower
     (default) or upper bound. *)
  let do_pivot st ~row ~q ~sigma ~t ~to_upper =
    let leave = st.basis.(row) in
    for i = 0 to st.m - 1 do
      if st.w.(i) <> 0.0 then begin
        st.xb.(i) <- st.xb.(i) -. (sigma *. t *. st.w.(i));
        clamp_row st i
      end
    done;
    let xq = if sigma > 0.0 then t else st.ub.(q) -. t in
    st.xb.(row) <- Float.max 0.0 xq;
    st.vstat.(leave) <- (if to_upper then at_upper else at_lower);
    st.vstat.(q) <- basic;
    st.basis.(row) <- q;
    if Sparse.Lu.update st.f ~leaving_row:row then begin
      st.c_ft <- st.c_ft + 1;
      maybe_refactor st
    end
    else
      (* Update refused on stability grounds: rebuild the factor from
         the (already updated) basis — the half-mutated factor is
         discarded wholesale. *)
      refactor st

  (* Three-limit ratio test for entering column q moving in direction
     [sigma] (+1 from lower, -1 from upper): a basic variable drops to
     zero, a basic variable hits its (finite) range, or the entering
     variable traverses its own range — the last is a bound flip.  The
     default is the Harris-style two-pass of the eta engine extended to
     range limits; Bland mode uses the exact minimum-ratio rule with
     lowest-basic-index tie-breaks (flip preferred on ties — it strictly
     moves x_q across a positive range, so it cannot cycle). *)
  let ratio_test st ~q ~sigma ~use_bland =
    let uq = st.ub.(q) in
    if use_bland then begin
      let best = ref (-1)
      and best_ratio = ref uq
      and best_up = ref false in
      for i = 0 to st.m - 1 do
        let wi = sigma *. st.w.(i) in
        if wi > eps then begin
          let r = Float.max 0.0 st.xb.(i) /. wi in
          if
            r < !best_ratio -. eps
            || (r < !best_ratio +. eps && !best >= 0
                && st.basis.(i) < st.basis.(!best))
          then begin
            best := i;
            best_ratio := r;
            best_up := false
          end
        end
        else if wi < -.eps then begin
          let ubi = st.ub.(st.basis.(i)) in
          if ubi < infinity then begin
            let r = Float.max 0.0 (ubi -. st.xb.(i)) /. -.wi in
            if
              r < !best_ratio -. eps
              || (r < !best_ratio +. eps && !best >= 0
                  && st.basis.(i) < st.basis.(!best))
            then begin
              best := i;
              best_ratio := r;
              best_up := true
            end
          end
        end
      done;
      if !best = -1 then (if uq = infinity then `Unbounded else `Flip)
      else `Pivot (!best, !best_ratio, !best_up)
    end
    else begin
      (* Pass 1: largest step keeping every basic value within
         [-feas_eps, ub + feas_eps]; the entering range is a hard cap. *)
      let tmax = ref uq in
      for i = 0 to st.m - 1 do
        let wi = sigma *. st.w.(i) in
        if wi > eps then begin
          let t = (Float.max 0.0 st.xb.(i) +. feas_eps) /. wi in
          if t < !tmax then tmax := t
        end
        else if wi < -.eps then begin
          let ubi = st.ub.(st.basis.(i)) in
          if ubi < infinity then begin
            let t = (Float.max 0.0 (ubi -. st.xb.(i)) +. feas_eps) /. -.wi in
            if t < !tmax then tmax := t
          end
        end
      done;
      if !tmax = infinity then `Unbounded
      else begin
        (* Pass 2: numerically largest pivot among rows whose exact
           ratio fits under the relaxed bound. *)
        let best = ref (-1)
        and best_piv = ref 0.0
        and best_ratio = ref 0.0
        and best_up = ref false in
        for i = 0 to st.m - 1 do
          let wi = sigma *. st.w.(i) in
          let consider exact up =
            if exact <= !tmax then begin
              let a = Float.abs st.w.(i) in
              if
                a > !best_piv
                || (a = !best_piv && !best >= 0
                    && st.basis.(i) < st.basis.(!best))
              then begin
                best := i;
                best_piv := a;
                best_ratio := exact;
                best_up := up
              end
            end
          in
          if wi > eps then consider (Float.max 0.0 st.xb.(i) /. wi) false
          else if wi < -.eps then begin
            let ubi = st.ub.(st.basis.(i)) in
            if ubi < infinity then
              consider (Float.max 0.0 (ubi -. st.xb.(i)) /. -.wi) true
          end
        done;
        if !best = -1 then (if uq < infinity then `Flip else `Unbounded)
        else if uq <= !best_ratio then `Flip
        else `Pivot (!best, !best_ratio, !best_up)
      end
    end

  (* Devex reference-weight update, identical to the eta engine's. *)
  let devex_update st ~row ~q =
    let alpha_q = st.w.(row) in
    let wq = Float.max st.dx.(q) 1.0 in
    let ratio = wq /. (alpha_q *. alpha_q) in
    Array.fill st.rho 0 st.m 0.0;
    st.rho.(row) <- 1.0;
    btran st st.rho;
    let alpha = st.d in
    Array.fill alpha 0 st.n 0.0;
    for i = 0 to st.m - 1 do
      let ri = st.rho.(i) in
      if ri <> 0.0 then
        Sparse.iter_col st.at i (fun j aij -> alpha.(j) <- alpha.(j) +. (aij *. ri))
    done;
    let maxw = ref 0.0 in
    for j = 0 to st.n - 1 do
      if st.vstat.(j) <> basic && j <> q then begin
        let aj = alpha.(j) in
        if aj <> 0.0 then begin
          let cand = aj *. aj *. ratio in
          if cand > st.dx.(j) then st.dx.(j) <- cand
        end;
        if st.dx.(j) > !maxw then maxw := st.dx.(j)
      end
    done;
    st.dx.(st.basis.(row)) <- Float.max ratio 1.0;
    if !maxw > 1e12 then Array.fill st.dx 0 st.n 1.0

  (* One optimization phase; the bounded mirror of [Rev.optimize] with
     signed attractiveness (at-lower wants d < 0, at-upper wants d > 0)
     and bound flips counted as iterations. *)
  let optimize st ~cost ~banned ?prefer ~pricing ~max_iters ~deadline iters =
    let bland_threshold = 20 * (st.m + st.n) in
    let out_of_budget () =
      !iters > max_iters
      || (!iters land 63 = 0 && Prete_util.Clock.expired deadline)
    in
    let seg = Stdlib.max 64 (st.n / 8) in
    (* Zero-range columns can never move: exclude them outright. *)
    let eligible j =
      (not (banned j)) && st.vstat.(j) <> basic && st.ub.(j) > 0.0
    in
    let attract j dj =
      if st.vstat.(j) = at_lower then (if dj < -.eps then -.dj else 0.0)
      else if dj > eps then dj
      else 0.0
    in
    let rec loop () =
      if out_of_budget () then `Budget
      else begin
        let use_bland = !iters > bland_threshold in
        compute_y st cost;
        let need_full = use_bland || prefer <> None || pricing <> Partial in
        if need_full then compute_d st cost;
        let entering = ref (-1) in
        (match prefer with
        | Some pref when not use_bland ->
          let best = ref 0.0 in
          for j = 0 to st.n - 1 do
            if pref.(j) && eligible j then begin
              let aj = attract j st.d.(j) in
              if aj > !best then begin
                best := aj;
                entering := j
              end
            end
          done
        | _ -> ());
        if !entering = -1 then begin
          if use_bland then begin
            try
              for j = 0 to st.n - 1 do
                if eligible j && attract j st.d.(j) > 0.0 then begin
                  entering := j;
                  raise Exit
                end
              done
            with Exit -> ()
          end
          else
            match (prefer, pricing) with
            | Some _, _ | None, Dantzig ->
              let best = ref 0.0 in
              for j = 0 to st.n - 1 do
                if eligible j then begin
                  let aj = attract j st.d.(j) in
                  if aj > !best then begin
                    best := aj;
                    entering := j
                  end
                end
              done
            | None, Devex ->
              let best = ref 0.0 in
              for j = 0 to st.n - 1 do
                if eligible j then begin
                  let aj = attract j st.d.(j) in
                  if aj > 0.0 then begin
                    let merit = aj *. aj /. st.dx.(j) in
                    if merit > !best then begin
                      best := merit;
                      entering := j
                    end
                  end
                end
              done
            | None, Partial ->
              let tried = ref 0 in
              while !entering = -1 && !tried < st.n do
                let start = st.pp_cursor in
                let stop = Stdlib.min st.n (start + seg) in
                let best = ref 0.0 in
                for j = start to stop - 1 do
                  if eligible j then begin
                    let dj = cost.(j) -. Sparse.col_dot st.a j st.y in
                    let aj = attract j dj in
                    if aj > !best then begin
                      best := aj;
                      entering := j
                    end
                  end
                done;
                tried := !tried + (stop - start);
                st.pp_cursor <- (if stop >= st.n then 0 else stop)
              done
        end;
        if !entering = -1 then `Optimal
        else begin
          let q = !entering in
          let sigma = if st.vstat.(q) = at_lower then 1.0 else -1.0 in
          Array.fill st.w 0 st.m 0.0;
          Sparse.scatter_col st.a q st.w;
          ftran st st.w;
          match ratio_test st ~q ~sigma ~use_bland with
          | `Unbounded -> `Unbounded
          | `Flip ->
            incr iters;
            apply_flip st ~q ~sigma;
            loop ()
          | `Pivot (row, t, to_upper) ->
            if pricing = Devex && (not use_bland) && prefer = None then
              devex_update st ~row ~q;
            incr iters;
            do_pivot st ~row ~q ~sigma ~t ~to_upper;
            loop ()
        end
      end
    in
    loop ()

  (* Drive remaining basic artificials out after Phase 1 (same scan and
     threshold as the other engines; replacements enter from lower). *)
  let drive_out st ~is_artificial iters =
    for i = 0 to st.m - 1 do
      if is_artificial st.basis.(i) then begin
        Array.fill st.rho 0 st.m 0.0;
        st.rho.(i) <- 1.0;
        btran st st.rho;
        let found = ref (-1) in
        (try
           for j = 0 to st.n - 1 do
             if
               (not (is_artificial j))
               && st.vstat.(j) = at_lower
               && st.ub.(j) > 0.0
               && Float.abs (Sparse.col_dot st.a j st.rho) > 1e-7
             then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then begin
          let q = !found in
          Array.fill st.w 0 st.m 0.0;
          Sparse.scatter_col st.a q st.w;
          ftran st st.w;
          let t = Float.max 0.0 (st.xb.(i) /. st.w.(i)) in
          incr iters;
          do_pivot st ~row:i ~q ~sigma:1.0 ~t ~to_upper:false
        end
      end
    done

  (* Bounded dual-simplex repair: only entered when the reinstalled
     basis is dual feasible (at-lower columns price >= 0, at-upper
     columns price <= 0).  Handles both primal violation kinds — a basic
     value below zero (the classic case) and a basic value pushed above
     its now-tighter range (the MIP bound-fixing case); the leaving
     variable exits to the violated bound and the entering column is
     chosen by the dual ratio test restricted to sign-compatible
     candidates.  Any doubt -> false, caller falls back to Phase 1. *)
  let dual_repair st ~max_iters ~deadline iters =
    let cost = st.cost in
    let is_art j = j >= st.art0 in
    compute_y st cost;
    compute_d st cost;
    let dual_ok = ref true in
    for j = 0 to st.n - 1 do
      if (not (is_art j)) && st.vstat.(j) <> basic && st.ub.(j) > 0.0 then
        if st.vstat.(j) = at_lower then begin
          if st.d.(j) < -.feas_eps then dual_ok := false
        end
        else if st.d.(j) > feas_eps then dual_ok := false
    done;
    if not !dual_ok then false
    else begin
      let stall_cap = 10 * (st.m + st.n) in
      let steps = ref 0 in
      let result = ref `Run in
      while !result = `Run do
        if
          !iters > max_iters
          || (!iters land 63 = 0 && Prete_util.Clock.expired deadline)
          || !steps > stall_cap
        then result := `Fail
        else begin
          let row = ref (-1) and worst = ref feas_eps and below = ref true in
          for i = 0 to st.m - 1 do
            if -.st.xb.(i) > !worst then begin
              worst := -.st.xb.(i);
              row := i;
              below := true
            end
            else begin
              let ubi = st.ub.(st.basis.(i)) in
              if ubi < infinity && st.xb.(i) -. ubi > !worst then begin
                worst := st.xb.(i) -. ubi;
                row := i;
                below := false
              end
            end
          done;
          if !row = -1 then result := `Done
          else begin
            let r = !row in
            Array.fill st.rho 0 st.m 0.0;
            st.rho.(r) <- 1.0;
            btran st st.rho;
            let col = ref (-1) and best = ref infinity in
            for j = 0 to st.n - 1 do
              if (not (is_art j)) && st.vstat.(j) <> basic && st.ub.(j) > 0.0
              then begin
                let alpha = Sparse.col_dot st.a j st.rho in
                let ratio =
                  if !below then
                    if st.vstat.(j) = at_lower && alpha < -.eps then
                      st.d.(j) /. -.alpha
                    else if st.vstat.(j) = at_upper && alpha > eps then
                      -.st.d.(j) /. alpha
                    else infinity
                  else if st.vstat.(j) = at_lower && alpha > eps then
                    st.d.(j) /. alpha
                  else if st.vstat.(j) = at_upper && alpha < -.eps then
                    st.d.(j) /. alpha
                  else infinity
                in
                if
                  ratio < !best -. eps
                  || (ratio < !best +. eps && ratio < infinity
                      && (!col = -1 || j < !col))
                then begin
                  best := ratio;
                  col := j
                end
              end
            done;
            if !col = -1 then result := `Fail
            else begin
              let q = !col in
              Array.fill st.w 0 st.m 0.0;
              Sparse.scatter_col st.a q st.w;
              ftran st st.w;
              incr steps;
              incr iters;
              let leave = st.basis.(r) in
              st.vstat.(leave) <- (if !below then at_lower else at_upper);
              st.vstat.(q) <- basic;
              st.basis.(r) <- q;
              (if Sparse.Lu.update st.f ~leaving_row:r then begin
                 st.c_ft <- st.c_ft + 1;
                 maybe_refactor st
               end
               else refactor st);
              (* The dual step changes several basic values at once
                 (entering from either bound): resync rather than track
                 incrementally — repairs are a handful of pivots. *)
              compute_xb st;
              compute_y st cost;
              compute_d st cost
            end
          end
        end
      done;
      !result = `Done && arts_zero st
    end

  (* Warm reinstall: translate the stored basis (original variable ids,
     reduced row ids) into current columns and factorize the set — one
     LU factorization, no priced pivots.  The at-upper set restores from
     [b_upper] through the presolve column map. *)
  let try_exact_install (red : Presolve.t) st wb =
    if wb.b_m <> st.m then None
    else begin
      let m = st.m in
      let slack_col = Array.make m (-1)
      and surplus_col = Array.make m (-1)
      and art_col = Array.make m (-1) in
      Array.iteri
        (fun j k ->
          match k with
          | Slack i -> slack_col.(i) <- j
          | Surplus i -> surplus_col.(i) <- j
          | Artificial i -> art_col.(i) <- j
          | Structural _ -> ())
        st.kinds;
      let target i =
        match wb.b_entries.(i) with
        | Bstructural j ->
          if j < red.Presolve.p_nv && red.Presolve.col_map.(j) >= 0 then
            red.Presolve.col_map.(j)
          else -1
        | Brow_slack r -> if r < m then slack_col.(r) else -1
        | Brow_surplus r -> if r < m then surplus_col.(r) else -1
        | Brow_artificial r -> if r < m then art_col.(r) else -1
      in
      let targets = Array.init m target in
      st.c_factor <- st.c_factor + 1;
      let basis_out = Array.make m (-1) in
      let f, dropped =
        Sparse.Lu.factorize st.a ~targets ~crash:st.crash ~basis_out
      in
      if dropped <> [] then None
      else begin
        st.f <- f;
        st.base_nnz <- Sparse.Lu.nnz f;
        Array.blit basis_out 0 st.basis 0 m;
        Array.fill st.vstat 0 st.n at_lower;
        Array.iter
          (fun j ->
            if j >= 0 && j < red.Presolve.p_nv then begin
              let rj = red.Presolve.col_map.(j) in
              if rj >= 0 && st.ub.(rj) > 0.0 && st.ub.(rj) < infinity then
                st.vstat.(rj) <- at_upper
            end)
          wb.b_upper;
        Array.iter (fun j -> st.vstat.(j) <- basic) st.basis;
        compute_xb st;
        let rhs_ok = ref true and art_ok = ref true in
        for i = 0 to m - 1 do
          let ubi = st.ub.(st.basis.(i)) in
          if st.xb.(i) < -.feas_eps || st.xb.(i) > ubi +. feas_eps then
            rhs_ok := false;
          match st.kinds.(st.basis.(i)) with
          | Artificial _ when st.xb.(i) > feas_eps -> art_ok := false
          | _ -> ()
        done;
        if not !art_ok then None else Some !rhs_ok
      end
    end

  let warm_prefer_red (red : Presolve.t) n wb =
    let pref = Array.make n false in
    Array.iter
      (function
        | Bstructural j when j < red.Presolve.p_nv ->
          let rj = red.Presolve.col_map.(j) in
          if rj >= 0 then pref.(rj) <- true
        | _ -> ())
      wb.b_entries;
    pref

  let solve model ~max_iters ~deadline ~warm ~pricing =
    match Presolve.reduce model with
    | Presolve.Infeasible -> Infeasible
    | Presolve.Unbounded ->
      (* An empty improving column with no finite bound certifies
         unboundedness only if the rest of the model is feasible — let
         the eta engine make that (rare) call. *)
      Rev.solve (prepare model) ~max_iters ~deadline ~warm ~pricing
    | Presolve.Reduced red ->
      let nv0 = red.Presolve.p_nv in
      let sign = red.Presolve.sign in
      let finish ~x_red ~y_red ~iters ~degraded ~warm_used ~phase1_skipped
          ~repaired ~st_opt =
        let x_orig, y_min = Presolve.postsolve red ~x:x_red ~y:y_red in
        let objective = ref 0.0 in
        for j = 0 to nv0 - 1 do
          objective :=
            !objective +. (sign *. red.Presolve.cost_min.(j) *. x_orig.(j))
        done;
        let duals = Array.map (fun v -> sign *. v) y_min in
        let b_entries, b_upper, b_m, refactors, ftn, btn, ftu, flips, fill =
          match st_opt with
          | None -> ([||], [||], 0, 0, 0, 0, 0, 0, 0)
          | Some st ->
            let entries =
              Array.map
                (fun bcol ->
                  match st.kinds.(bcol) with
                  | Structural j -> Bstructural red.Presolve.col_of.(j)
                  | Slack i -> Brow_slack i
                  | Surplus i -> Brow_surplus i
                  | Artificial i -> Brow_artificial i)
                st.basis
            in
            let upper =
              let acc = ref [] in
              for j = st.nv - 1 downto 0 do
                if st.vstat.(j) = at_upper then
                  acc := red.Presolve.col_of.(j) :: !acc
              done;
              Array.of_list !acc
            in
            ( entries, upper, st.m, st.c_factor, st.c_ftran, st.c_btran,
              st.c_ft, st.c_flips, Sparse.Lu.nnz st.f )
        in
        Optimal
          {
            objective = !objective;
            values = x_orig;
            duals;
            iterations = iters;
            degraded;
            basis = { b_nv = nv0; b_m; b_entries; b_upper };
            warm_used;
            phase1_skipped;
            repaired;
            engine = Lu;
            pricing;
            etas = 0;
            refactorizations = refactors;
            ftran_nnz = ftn;
            btran_nnz = btn;
            ft_updates = ftu;
            bound_flips = flips;
            lu_fill_nnz = fill;
            presolve_rows = red.Presolve.rows_removed;
            presolve_cols = red.Presolve.cols_removed;
          }
      in
      if red.Presolve.r_nv = 0 then begin
        (* Presolve solved the model outright; the surviving rows (if
           any) have empty left-hand sides — check their consistency. *)
        let ok = ref true in
        Array.iteri
          (fun ri s ->
            let r = red.Presolve.r_rhs.(ri) in
            let tol = feas_eps *. (1.0 +. Float.abs r) in
            match s with
            | Lp.Le -> if r < -.tol then ok := false
            | Lp.Ge -> if r > tol then ok := false
            | Lp.Eq -> if Float.abs r > tol then ok := false)
          red.Presolve.r_sense;
        if not !ok then Infeasible
        else
          (* A supplied warm basis is subsumed: presolve reached the
             optimum without a single pivot, which is at least as good
             as any reinstall. *)
          finish ~x_red:[||]
            ~y_red:(Array.make red.Presolve.r_nc 0.0)
            ~iters:0 ~degraded:false
            ~warm_used:(Option.is_some warm)
            ~phase1_skipped:true ~repaired:false ~st_opt:None
      end
      else begin
        let iters = ref 0 in
        let st, warm_used, phase1_skipped, repaired, prefer =
          match warm with
          | Some wb when wb.b_nv = nv0 -> (
            let st0 = make_state red in
            match try_exact_install red st0 wb with
            | Some true -> (st0, true, true, false, None)
            | Some false when dual_repair st0 ~max_iters ~deadline iters ->
              (st0, true, true, true, None)
            | Some false | None ->
              ( make_state red, true, false, true,
                Some (warm_prefer_red red st0.n wb) ))
          | _ -> (make_state red, false, false, false, None)
        in
        let is_artificial j = j >= st.art0 in
        let feasible_start =
          if phase1_skipped then true
          else begin
            let c1 = Array.make st.n 0.0 in
            Array.iteri
              (fun j k ->
                match k with Artificial _ -> c1.(j) <- 1.0 | _ -> ())
              st.kinds;
            (match
               optimize st ~cost:c1 ~banned:is_artificial ?prefer ~pricing
                 ~max_iters ~deadline iters
             with
            | `Unbounded ->
              raise (Numerical "Simplex: phase 1 unbounded (internal error)")
            | `Budget -> raise Timeout
            | `Optimal -> ());
            phase1_sum st <= feas_eps
          end
        in
        if not feasible_start then Infeasible
        else begin
          drive_out st ~is_artificial iters;
          let cost = st.cost in
          let extract ~degraded =
            compute_xb st;
            let xr = Array.make st.nv 0.0 in
            for j = 0 to st.nv - 1 do
              if st.vstat.(j) = at_upper then xr.(j) <- st.ub.(j)
            done;
            for i = 0 to st.m - 1 do
              match st.kinds.(st.basis.(i)) with
              | Structural j -> xr.(j) <- st.xb.(i)
              | Slack _ | Surplus _ | Artificial _ -> ()
            done;
            let x_red =
              Array.init st.nv (fun j -> red.Presolve.r_lb.(j) +. xr.(j))
            in
            compute_y st cost;
            let y_red =
              Array.init st.m (fun i ->
                  if st.flipped.(i) then -.st.y.(i) else st.y.(i))
            in
            finish ~x_red ~y_red ~iters:!iters ~degraded ~warm_used
              ~phase1_skipped ~repaired ~st_opt:(Some st)
          in
          match
            optimize st ~cost ~banned:is_artificial ~pricing ~max_iters
              ~deadline iters
          with
          | `Unbounded -> Unbounded
          | `Optimal -> extract ~degraded:false
          | `Budget -> extract ~degraded:true
        end
      end
end

let solve ?(max_iters = 200_000) ?deadline ?warm ?engine ?pricing model =
  let engine = match engine with Some e -> e | None -> !default_engine in
  let pricing = match pricing with Some pr -> pr | None -> !default_pricing in
  match engine with
  | Dense -> solve_dense (prepare model) ~max_iters ~deadline ~warm ~pricing
  | Revised -> Rev.solve (prepare model) ~max_iters ~deadline ~warm ~pricing
  | Lu -> Blu.solve model ~max_iters ~deadline ~warm ~pricing

let value sol (v : Lp.var) = sol.values.((v :> int))

let dual sol i = sol.duals.(i)

let feasible ?(eps = 1e-6) model x =
  let bounds = Lp.Internal.bounds model in
  let constrs = Lp.Internal.constraints model in
  Array.length x = Array.length bounds
  && Array.for_all2
       (fun xi (lb, ub) -> xi >= lb -. eps && xi <= ub +. eps)
       x bounds
  && Array.for_all
       (fun c ->
         let lhs =
           List.fold_left (fun acc (v, coef) -> acc +. (coef *. x.(v))) 0.0 c.Lp.Internal.terms
         in
         match c.Lp.Internal.sense with
         | Lp.Le -> lhs <= c.Lp.Internal.rhs +. eps
         | Lp.Ge -> lhs >= c.Lp.Internal.rhs -. eps
         | Lp.Eq -> Float.abs (lhs -. c.Lp.Internal.rhs) <= eps)
       constrs
