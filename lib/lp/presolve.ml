(* LP presolve / postsolve for the LU simplex engine.

   [reduce] applies a fixpoint of structural reductions to an {!Lp.model}
   and emits a smaller scaled problem; [postsolve] maps a reduced
   primal/dual solution back to the original space, reconstructing the
   duals of eliminated rows.

   Reductions (all deterministic, lowest-index tie-breaks):
   - empty rows           -> consistency check, drop (dual 0);
   - singleton Le/Ge rows -> variable bound tightening, drop the row
                             (the column stays; its dual is recovered at
                             postsolve from the residual reduced cost
                             when the solution sits on the tightened
                             bound);
   - singleton Eq rows    -> fix the variable, drop row and column;
   - duplicate rows       -> rows equal up to a positive scale with the
                             same sense collapse onto the lowest-index
                             member carrying the group-tightest rhs; at
                             postsolve the kept dual transfers to the
                             member whose constraint is actually tight;
   - empty columns        -> fix at the cost-preferred bound (detecting
                             unboundedness on an infinite bound);
   - dominated columns    -> a nonnegative min-form cost whose column
                             only relaxes constraints (>= 0 in Le rows,
                             <= 0 in Ge rows, absent from Eq rows) fixes
                             at its lower bound — this also covers the
                             eliminable singleton columns of the TE
                             models;
   - geometric-mean equilibration of the surviving structure.

   Warm-start invariant: which rows and columns survive — and hence the
   reduced column layout the simplex engine builds — depends only on the
   constraint {e patterns, senses and cost signs}, never on rhs or bound
   values.  Bound tightenings and fixed-variable {e values} are
   rhs-dependent, but they do not move the structure, so a basis stored
   against one reduction reinstalls exactly after rhs-only model changes
   (MIP bound fixings, Benders rhs updates, capacity perturbations). *)

type action =
  | Row_empty of int
  | Row_singleton_ineq of {
      row : int;
      col : int;
      coef : float;
      le : bool;  (* original sense Le (after coef sign, the bound side
                     follows from [coef] and [le]) *)
      bound : float;  (* the tightened bound value this row imposed *)
    }
  | Row_singleton_eq of { row : int; col : int; coef : float }
  | Dup_group of {
      kept : int;
      members : (int * float) list;  (* (row, coef at the anchor column),
                                        kept included *)
      ge_like : bool;  (* normalized sense: true when larger scaled rhs
                          is tighter *)
      eq : bool;
    }
  | Col_fixed of { col : int; value : float }

type t = {
  p_nv : int;
  p_nc : int;
  sign : float;  (* Minimize -> 1.0, Maximize -> -1.0 *)
  cost_min : float array;  (* min-form costs over original columns *)
  colview : (int * float) list array;  (* original column -> (row, coef) *)
  rhs_eff : float array;  (* per original row: rhs minus fixed-column
                             contributions (kept current for dead rows
                             too — duplicate-group postsolve needs it) *)
  r_nv : int;
  r_nc : int;
  r_rows : (int * float) list array;  (* scaled reduced rows *)
  r_sense : Lp.sense array;
  r_rhs : float array;
  r_lb : float array;  (* scaled reduced bounds *)
  r_ub : float array;
  r_cost : float array;  (* scaled min-form reduced costs *)
  col_of : int array;  (* reduced col -> original col *)
  col_map : int array;  (* original col -> reduced col or -1 *)
  row_of : int array;  (* reduced row -> original row *)
  row_map : int array;  (* original row -> reduced row or -1 *)
  rowscale : float array;  (* per original kept row *)
  colscale : float array;  (* per original kept col *)
  fixed : float array;  (* per original col; valid when col_map = -1 *)
  actions : action list;  (* head = last reduction applied *)
  rows_removed : int;
  cols_removed : int;
}

type outcome = Reduced of t | Infeasible | Unbounded

let feas = 1e-7

let reduce model =
  let bounds = Lp.Internal.bounds model in
  let constrs = Lp.Internal.constraints model in
  let dir, obj = Lp.Internal.objective model in
  let nv = Lp.num_vars model in
  let nc = Array.length constrs in
  Array.iter
    (fun (lb, _) ->
      if lb = neg_infinity then
        invalid_arg "Presolve.reduce: free variables (lb = -inf) unsupported")
    bounds;
  let sign = match dir with Lp.Minimize -> 1.0 | Lp.Maximize -> -1.0 in
  let cost_min = Array.map (fun c -> sign *. c) obj in
  let lb = Array.map fst bounds and ub = Array.map snd bounds in
  let row_terms = Array.map (fun c -> c.Lp.Internal.terms) constrs in
  let row_sense = Array.map (fun c -> c.Lp.Internal.sense) constrs in
  let rhs_eff = Array.map (fun c -> c.Lp.Internal.rhs) constrs in
  let colview = Array.make nv [] in
  Array.iteri
    (fun i terms ->
      List.iter (fun (j, a) -> colview.(j) <- (i, a) :: colview.(j)) terms)
    row_terms;
  Array.iteri (fun j l -> colview.(j) <- List.rev l) colview;
  let row_alive = Array.make nc true and col_alive = Array.make nv true in
  let rowlen = Array.map List.length row_terms in
  let fixed = Array.make nv 0.0 in
  let actions = ref [] in
  let failure = ref None in
  let fail o = if !failure = None then failure := Some o in
  let fix_col j v =
    col_alive.(j) <- false;
    fixed.(j) <- v;
    List.iter
      (fun (i, a) ->
        rhs_eff.(i) <- rhs_eff.(i) -. (a *. v);
        if row_alive.(i) then rowlen.(i) <- rowlen.(i) - 1)
      colview.(j);
    if v < lb.(j) -. (feas *. (1.0 +. Float.abs v))
       || v > ub.(j) +. (feas *. (1.0 +. Float.abs v))
    then fail Infeasible
  in
  let alive_terms i =
    List.filter (fun (j, _) -> col_alive.(j)) row_terms.(i)
  in
  (* ---- Row scan: empty and singleton rows ---- *)
  let scan_rows () =
    let changed = ref false in
    for i = 0 to nc - 1 do
      if !failure = None && row_alive.(i) then
        if rowlen.(i) = 0 then begin
          let r = rhs_eff.(i) in
          let tol = feas *. (1.0 +. Float.abs r) in
          (match row_sense.(i) with
          | Lp.Le -> if r < -.tol then fail Infeasible
          | Lp.Ge -> if r > tol then fail Infeasible
          | Lp.Eq -> if Float.abs r > tol then fail Infeasible);
          row_alive.(i) <- false;
          actions := Row_empty i :: !actions;
          changed := true
        end
        else if rowlen.(i) = 1 then begin
          match alive_terms i with
          | [ (j, a) ] ->
            let v = rhs_eff.(i) /. a in
            (match row_sense.(i) with
            | Lp.Eq ->
              if
                v < lb.(j) -. (feas *. (1.0 +. Float.abs v))
                || v > ub.(j) +. (feas *. (1.0 +. Float.abs v))
              then fail Infeasible
              else begin
                row_alive.(i) <- false;
                actions := Row_singleton_eq { row = i; col = j; coef = a } :: !actions;
                fix_col j v
              end
            | (Lp.Le | Lp.Ge) as s ->
              (* a·x ≤ r  tightens ub when a > 0, lb when a < 0 (and the
                 mirror for Ge). *)
              let tightens_ub = (s = Lp.Le) = (a > 0.0) in
              row_alive.(i) <- false;
              actions :=
                Row_singleton_ineq
                  { row = i; col = j; coef = a; le = s = Lp.Le; bound = v }
                :: !actions;
              if tightens_ub then begin
                if v < ub.(j) then ub.(j) <- v
              end
              else if v > lb.(j) then lb.(j) <- v;
              if lb.(j) > ub.(j) +. (1e-9 *. (1.0 +. Float.abs ub.(j))) then
                fail Infeasible);
            changed := true
          | _ -> ()
        end
    done;
    !changed
  in
  (* ---- Duplicate rows: equal patterns up to a positive scale ---- *)
  let scan_dups () =
    let changed = ref false in
    let tbl = Hashtbl.create 64 in
    let sigbuf = Buffer.create 128 in
    for i = 0 to nc - 1 do
      if !failure = None && row_alive.(i) && rowlen.(i) >= 2 then begin
        let terms = alive_terms i in
        let terms = List.sort (fun (a, _) (b, _) -> compare a b) terms in
        match terms with
        | (_, c0) :: _ ->
          Buffer.clear sigbuf;
          Buffer.add_string sigbuf
            (match row_sense.(i) with Lp.Le -> "L" | Lp.Ge -> "G" | Lp.Eq -> "E");
          Buffer.add_string sigbuf (if c0 > 0.0 then "+" else "-");
          List.iter
            (fun (j, a) ->
              Buffer.add_string sigbuf (Printf.sprintf "|%d:%h" j (a /. c0)))
            terms;
          let key = Buffer.contents sigbuf in
          (match Hashtbl.find_opt tbl key with
          | None -> Hashtbl.add tbl key (i, c0, ref [ (i, c0) ])
          | Some (kept, ck, members) ->
            members := (i, c0) :: !members;
            (* Fold row i into [kept]: keep the tighter scaled rhs. *)
            let tk = rhs_eff.(kept) /. ck and ti = rhs_eff.(i) /. c0 in
            let ge_like = (row_sense.(i) = Lp.Ge) = (c0 > 0.0) in
            (match row_sense.(i) with
            | Lp.Eq ->
              if Float.abs (tk -. ti) > feas *. (1.0 +. Float.abs tk) then
                fail Infeasible
            | Lp.Le | Lp.Ge ->
              let tighter = if ge_like then ti > tk else ti < tk in
              if tighter then rhs_eff.(kept) <- ti *. ck);
            row_alive.(i) <- false;
            changed := true)
        | [] -> ()
      end
    done;
    (* Record one action per multi-member group, deterministically in
       kept-row order. *)
    let groups = ref [] in
    Hashtbl.iter
      (fun _ (kept, _, members) ->
        if List.length !members > 1 then groups := (kept, !members) :: !groups)
      tbl;
    List.iter
      (fun (kept, members) ->
        let members = List.sort (fun (a, _) (b, _) -> compare a b) members in
        let ge_like =
          match members with
          | (r0, c0) :: _ -> (row_sense.(r0) = Lp.Ge) = (c0 > 0.0)
          | [] -> false
        in
        actions :=
          Dup_group { kept; members; ge_like; eq = row_sense.(kept) = Lp.Eq }
          :: !actions)
      (List.sort compare !groups);
    !changed
  in
  (* ---- Column scan: empty and dominated columns ---- *)
  let scan_cols () =
    let changed = ref false in
    for j = 0 to nv - 1 do
      if !failure = None && col_alive.(j) then begin
        let occ = List.filter (fun (i, _) -> row_alive.(i)) colview.(j) in
        if occ = [] then begin
          let v =
            if cost_min.(j) < 0.0 then ub.(j)
            else lb.(j)
          in
          if v = infinity then fail Unbounded
          else begin
            actions := Col_fixed { col = j; value = v } :: !actions;
            fix_col j v;
            changed := true
          end
        end
        else if cost_min.(j) >= 0.0 then begin
          let dominated =
            List.for_all
              (fun (i, a) ->
                match row_sense.(i) with
                | Lp.Le -> a >= 0.0
                | Lp.Ge -> a <= 0.0
                | Lp.Eq -> false)
              occ
          in
          if dominated then begin
            actions := Col_fixed { col = j; value = lb.(j) } :: !actions;
            fix_col j lb.(j);
            changed := true
          end
        end
      end
    done;
    !changed
  in
  let rec fixpoint pass =
    if !failure = None && pass < 10 then begin
      let c1 = scan_rows () in
      let c2 = if !failure = None then scan_dups () else false in
      let c3 = if !failure = None then scan_cols () else false in
      if c1 || c2 || c3 then fixpoint (pass + 1)
    end
  in
  fixpoint 0;
  match !failure with
  | Some o -> o
  | None ->
    (* ---- Materialize the reduced problem ---- *)
    let col_map = Array.make nv (-1) and row_map = Array.make nc (-1) in
    let col_of =
      let acc = ref [] in
      for j = nv - 1 downto 0 do
        if col_alive.(j) then acc := j :: !acc
      done;
      Array.of_list !acc
    in
    Array.iteri (fun rj j -> col_map.(j) <- rj) col_of;
    let row_of =
      let acc = ref [] in
      for i = nc - 1 downto 0 do
        if row_alive.(i) then acc := i :: !acc
      done;
      Array.of_list !acc
    in
    Array.iteri (fun ri i -> row_map.(i) <- ri) row_of;
    let r_nv = Array.length col_of and r_nc = Array.length row_of in
    let raw_rows =
      Array.map
        (fun i ->
          alive_terms i
          |> List.map (fun (j, a) -> (col_map.(j), a))
          |> List.sort (fun (a, _) (b, _) -> compare a b))
        row_of
    in
    (* ---- Geometric-mean equilibration over the surviving structure ---- *)
    let rho = Array.make r_nc 1.0 and kap = Array.make r_nv 1.0 in
    let rcolview = Array.make r_nv [] in
    Array.iteri
      (fun ri terms -> List.iter (fun (rj, a) -> rcolview.(rj) <- (ri, a) :: rcolview.(rj)) terms)
      raw_rows;
    for _ = 1 to 2 do
      Array.iteri
        (fun ri terms ->
          let mn = ref infinity and mx = ref 0.0 in
          List.iter
            (fun (rj, a) ->
              let v = Float.abs (a *. kap.(rj)) in
              if v < !mn then mn := v;
              if v > !mx then mx := v)
            terms;
          if !mx > 0.0 then rho.(ri) <- 1.0 /. sqrt (!mn *. !mx))
        raw_rows;
      Array.iteri
        (fun rj occ ->
          let mn = ref infinity and mx = ref 0.0 in
          List.iter
            (fun (ri, a) ->
              let v = Float.abs (a *. rho.(ri)) in
              if v < !mn then mn := v;
              if v > !mx then mx := v)
            occ;
          if !mx > 0.0 then kap.(rj) <- 1.0 /. sqrt (!mn *. !mx))
        rcolview
    done;
    let r_rows =
      Array.mapi
        (fun ri terms ->
          List.map (fun (rj, a) -> (rj, a *. rho.(ri) *. kap.(rj))) terms)
        raw_rows
    in
    let r_sense = Array.map (fun i -> row_sense.(i)) row_of in
    let r_rhs = Array.mapi (fun ri i -> rhs_eff.(i) *. rho.(ri)) row_of in
    let r_lb = Array.mapi (fun rj j -> lb.(j) /. kap.(rj)) col_of in
    let r_ub =
      Array.mapi
        (fun rj j -> if ub.(j) = infinity then infinity else ub.(j) /. kap.(rj))
        col_of
    in
    let r_cost = Array.mapi (fun rj j -> cost_min.(j) *. kap.(rj)) col_of in
    let rowscale = Array.make nc 1.0 and colscale = Array.make nv 1.0 in
    Array.iteri (fun ri i -> rowscale.(i) <- rho.(ri)) row_of;
    Array.iteri (fun rj j -> colscale.(j) <- kap.(rj)) col_of;
    Reduced
      {
        p_nv = nv;
        p_nc = nc;
        sign;
        cost_min;
        colview;
        rhs_eff;
        r_nv;
        r_nc;
        r_rows;
        r_sense;
        r_rhs;
        r_lb;
        r_ub;
        r_cost;
        col_of;
        col_map;
        row_of;
        row_map;
        rowscale;
        colscale;
        fixed;
        actions = !actions;
        rows_removed = nc - r_nc;
        cols_removed = nv - r_nv;
      }

(* Map a reduced (scaled) primal/dual point back to the original space.
   [x] is indexed by reduced column, [y] by reduced row; the returned
   duals are {e min-form} shadow prices (∂ min-objective / ∂ rhs) over
   the original rows — the caller applies the direction sign. *)
let postsolve t ~x ~y =
  let xo = Array.copy t.fixed in
  Array.iteri (fun rj j -> xo.(j) <- x.(rj) *. t.colscale.(j)) t.col_of;
  let yo = Array.make t.p_nc 0.0 in
  Array.iteri (fun ri i -> yo.(i) <- y.(ri) *. t.rowscale.(i)) t.row_of;
  (* Residual min-form reduced cost of an original column under the
     current original-row duals. *)
  let reduced_cost j =
    List.fold_left
      (fun acc (i, a) -> acc -. (a *. yo.(i)))
      t.cost_min.(j) t.colview.(j)
  in
  (* Actions head = last applied, so walking the list is already the
     reverse (LIFO) replay order. *)
  List.iter
    (fun act ->
      match act with
      | Row_empty _ | Col_fixed _ -> ()
      | Row_singleton_eq { row; col; coef } -> yo.(row) <- reduced_cost col /. coef
      | Row_singleton_ineq { row; col; coef; le; bound } ->
        if Float.abs (xo.(col) -. bound) <= 1e-6 *. (1.0 +. Float.abs bound) then begin
          let yv = reduced_cost col /. coef in
          (* Min-form sign guard: Le rows price <= 0, Ge rows >= 0.
             A violation only arises on degraded (budget-truncated)
             incumbents, whose duals are documented unreliable — clamp
             to 0 rather than emit a sign-infeasible price. *)
          let yv = if le then Float.min yv 0.0 else Float.max yv 0.0 in
          yo.(row) <- yv
        end
      | Dup_group { kept; members; ge_like; eq } ->
        let ck = List.assoc kept members in
        let yk = yo.(kept) in
        if yk <> 0.0 then begin
          let tight =
            if eq then (kept, ck)
            else
              List.fold_left
                (fun (bi, bc) (i, c) ->
                  let tb = t.rhs_eff.(bi) /. bc and ti = t.rhs_eff.(i) /. c in
                  let better = if ge_like then ti > tb else ti < tb in
                  if better then (i, c) else (bi, bc))
                (List.hd members) (List.tl members)
          in
          let ti, tc = tight in
          if ti <> kept then begin
            yo.(kept) <- 0.0;
            yo.(ti) <- yk *. ck /. tc
          end
        end)
    t.actions;
  (xo, yo)
