type solution = {
  objective : float;
  values : float array;
  nodes : int;
  pivots : int;
  basis : Simplex.basis option;
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Node_limit of solution option

let int_eps = 1e-6

(* A node is a set of fixings for binary variables: (var, value) list. *)
let solve ?(max_nodes = 100_000) ?(gap = 1e-6) ?(max_iters = 200_000) ?deadline ?warm
    ?(warm_start = true) ?stats ?engine ?pricing
    model =
  let binaries = Array.of_list (Lp.binaries model) in
  let dir, _ = Lp.Internal.objective model in
  let better a b =
    match dir with Lp.Minimize -> a < b -. gap | Lp.Maximize -> a > b +. gap
  in
  (* Fixings are applied as equality constraints appended to a copy of the
     model.  The modeling layer is append-only, so we rebuild by adding
     rows to a scratch clone for each node; to avoid deep copies we add
     the fixing rows to the original model and rely on the solver reading
     a snapshot.  Simplest correct approach: rebuild a fresh model per
     node.  Node counts in our workloads are small (tens), so the rebuild
     cost is acceptable and keeps the search stateless. *)
  let bounds = Lp.Internal.bounds model in
  let constrs = Lp.Internal.constraints model in
  let _, obj_coefs = Lp.Internal.objective model in
  let nv = Lp.num_vars model in
  let build_node fixings =
    let m = Lp.create () in
    let vars =
      Array.init nv (fun j ->
          let lb, ub = bounds.(j) in
          let lb, ub =
            match List.assoc_opt j fixings with
            | Some v -> (v, v)
            | None -> (lb, ub)
          in
          (* Infeasible fixing combination cannot arise: we only fix within
             [0,1] bounds of binary vars. *)
          Lp.add_var m ~lb ~ub (Printf.sprintf "x%d" j))
    in
    Array.iter
      (fun c ->
        let terms = List.map (fun (v, coef) -> (coef, vars.(v))) c.Lp.Internal.terms in
        ignore (Lp.add_constraint m terms c.Lp.Internal.sense c.Lp.Internal.rhs))
      constrs;
    let obj_terms = ref [] in
    Array.iteri
      (fun j c -> if c <> 0.0 then obj_terms := (c, vars.(j)) :: !obj_terms)
      obj_coefs;
    Lp.set_objective m dir !obj_terms;
    m
  in
  let incumbent = ref None in
  let incumbent_basis = ref None in
  let nodes = ref 0 in
  let pivots = ref 0 in
  let any_unbounded = ref false in
  (* Set when the search is cut short: node budget, deadline, an LP that
     timed out before feasibility, or an LP returned degraded (its
     objective is no longer a valid pruning bound).  The incumbent found
     so far is still exact-feasible and is returned as [Node_limit]. *)
  let stopped = ref false in
  (* Node LPs all share the parent model's shape (fixings only tighten
     binary bounds, never add or remove rows), so a parent's final basis
     exact-installs into its children and usually skips Phase 1. *)
  let rec branch ?warm fixings =
    if !stopped then ()
    else begin
      incr nodes;
      if !nodes > max_nodes || Prete_util.Clock.expired deadline then stopped := true
      else
        (* Every node re-solve inherits the engine/pricing chosen for the
           root — a child must never silently fall back to the session
           default mid-branch. *)
        match
          Simplex.solve ~max_iters ?deadline ?warm ?engine ?pricing
            (build_node fixings)
        with
        | exception Simplex.Timeout -> stopped := true
        | Simplex.Optimal sol when sol.Simplex.degraded ->
          pivots := !pivots + sol.Simplex.iterations;
          Option.iter (fun st -> Solver_stats.record st sol) stats;
          stopped := true
        | Simplex.Infeasible -> ()
        | Simplex.Unbounded -> any_unbounded := true
        | Simplex.Optimal sol ->
      pivots := !pivots + sol.Simplex.iterations;
      Option.iter (fun st -> Solver_stats.record st sol) stats;
      let dominated =
        match !incumbent with
        | None -> false
        | Some (best, _) -> not (better sol.Simplex.objective best)
      in
      if not dominated then begin
        (* Most fractional binary. *)
        let frac_var = ref (-1) and frac_dist = ref int_eps in
        Array.iter
          (fun v ->
            if not (List.mem_assoc (v : Lp.var :> int) fixings) then begin
              let x = sol.Simplex.values.((v :> int)) in
              let d = Float.abs (x -. Float.round x) in
              if d > !frac_dist then begin
                frac_dist := d;
                frac_var := (v :> int)
              end
            end)
          binaries;
        if !frac_var = -1 then begin
          (* Integral: also snap near-integral binaries when storing. *)
          let values =
            Array.mapi
              (fun j x ->
                if Array.exists (fun v -> (v : Lp.var :> int) = j) binaries then
                  Float.round x
                else x)
              sol.Simplex.values
          in
          (match !incumbent with
          | Some (best, _) when not (better sol.Simplex.objective best) -> ()
          | _ ->
            incumbent := Some (sol.Simplex.objective, values);
            incumbent_basis := Some sol.Simplex.basis)
        end
        else begin
          (* Explore the rounded side first: good incumbents early. *)
          let v = !frac_var in
          let x = sol.Simplex.values.(v) in
          let first, second = if x >= 0.5 then (1.0, 0.0) else (0.0, 1.0) in
          let warm = if warm_start then Some sol.Simplex.basis else None in
          branch ?warm ((v, first) :: fixings);
          branch ?warm ((v, second) :: fixings)
        end
      end
    end
  in
  branch ?warm [];
  let incumbent_solution () =
    Option.map
      (fun (objective, values) ->
        { objective; values; nodes = !nodes; pivots = !pivots; basis = !incumbent_basis })
      !incumbent
  in
  if !stopped then Node_limit (incumbent_solution ())
  else
    match incumbent_solution () with
    | Some sol -> Optimal sol
    | None -> if !any_unbounded then Unbounded else Infeasible

let value sol (v : Lp.var) = sol.values.((v :> int))
