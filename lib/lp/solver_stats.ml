type t = {
  mutable solves : int;
  mutable warm_solves : int;
  mutable phase1_skips : int;
  mutable repairs : int;
  mutable pivots : int;
  mutable warm_pivots : int;
  mutable cold_pivots : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable dense_solves : int;
  mutable revised_solves : int;
  mutable lu_solves : int;
  mutable etas : int;
  mutable refactorizations : int;
  mutable ftran_nnz : int;
  mutable btran_nnz : int;
  mutable ft_updates : int;
  mutable bound_flips : int;
  mutable lu_fill_nnz : int;
  mutable presolve_rows : int;
  mutable presolve_cols : int;
  mutable pricing_solves : (string * int) list;
  mutable walls : (string * float) list;
  lock : Mutex.t;
}

let create () =
  {
    solves = 0;
    warm_solves = 0;
    phase1_skips = 0;
    repairs = 0;
    pivots = 0;
    warm_pivots = 0;
    cold_pivots = 0;
    cache_hits = 0;
    cache_misses = 0;
    dense_solves = 0;
    revised_solves = 0;
    lu_solves = 0;
    etas = 0;
    refactorizations = 0;
    ftran_nnz = 0;
    btran_nnz = 0;
    ft_updates = 0;
    bound_flips = 0;
    lu_fill_nnz = 0;
    presolve_rows = 0;
    presolve_cols = 0;
    pricing_solves = [];
    walls = [];
    lock = Mutex.create ();
  }

(* All mutation goes through [guarded]: one record may be fed by several
   domains at once (e.g. parallel Benders subproblems recording into the
   iteration's shared stats).  Every counter update is an order-free sum,
   so the totals stay deterministic regardless of interleaving. *)
let guarded t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bump_assoc assoc key by =
  match List.assoc_opt key assoc with
  | Some prev -> (key, prev + by) :: List.remove_assoc key assoc
  | None -> (key, by) :: assoc

let record t (sol : Simplex.solution) =
  guarded t (fun () ->
      t.solves <- t.solves + 1;
      t.pivots <- t.pivots + sol.Simplex.iterations;
      if sol.Simplex.warm_used then begin
        t.warm_solves <- t.warm_solves + 1;
        t.warm_pivots <- t.warm_pivots + sol.Simplex.iterations;
        if sol.Simplex.phase1_skipped then t.phase1_skips <- t.phase1_skips + 1;
        if sol.Simplex.repaired then t.repairs <- t.repairs + 1
      end
      else t.cold_pivots <- t.cold_pivots + sol.Simplex.iterations;
      (match sol.Simplex.engine with
      | Simplex.Dense -> t.dense_solves <- t.dense_solves + 1
      | Simplex.Revised -> t.revised_solves <- t.revised_solves + 1
      | Simplex.Lu -> t.lu_solves <- t.lu_solves + 1);
      t.etas <- t.etas + sol.Simplex.etas;
      t.refactorizations <- t.refactorizations + sol.Simplex.refactorizations;
      t.ftran_nnz <- t.ftran_nnz + sol.Simplex.ftran_nnz;
      t.btran_nnz <- t.btran_nnz + sol.Simplex.btran_nnz;
      t.ft_updates <- t.ft_updates + sol.Simplex.ft_updates;
      t.bound_flips <- t.bound_flips + sol.Simplex.bound_flips;
      t.lu_fill_nnz <- t.lu_fill_nnz + sol.Simplex.lu_fill_nnz;
      t.presolve_rows <- t.presolve_rows + sol.Simplex.presolve_rows;
      t.presolve_cols <- t.presolve_cols + sol.Simplex.presolve_cols;
      t.pricing_solves <-
        bump_assoc t.pricing_solves (Simplex.pricing_name sol.Simplex.pricing) 1)

let cache_hit t = guarded t (fun () -> t.cache_hits <- t.cache_hits + 1)
let cache_miss t = guarded t (fun () -> t.cache_misses <- t.cache_misses + 1)

let add_wall_unlocked t stage s =
  t.walls <-
    (match List.assoc_opt stage t.walls with
    | Some prev -> (stage, prev +. s) :: List.remove_assoc stage t.walls
    | None -> (stage, s) :: t.walls)

let add_wall t stage s = guarded t (fun () -> add_wall_unlocked t stage s)

let time t stage f =
  let t0 = Prete_util.Clock.now () in
  Fun.protect ~finally:(fun () -> add_wall t stage (Prete_util.Clock.elapsed_since t0)) f

let merge_into ~dst src =
  (* [src] must be quiescent (no concurrent writers) — the usual pattern
     merges per-task records after their tasks have joined. *)
  guarded dst (fun () ->
      dst.solves <- dst.solves + src.solves;
      dst.warm_solves <- dst.warm_solves + src.warm_solves;
      dst.phase1_skips <- dst.phase1_skips + src.phase1_skips;
      dst.repairs <- dst.repairs + src.repairs;
      dst.pivots <- dst.pivots + src.pivots;
      dst.warm_pivots <- dst.warm_pivots + src.warm_pivots;
      dst.cold_pivots <- dst.cold_pivots + src.cold_pivots;
      dst.cache_hits <- dst.cache_hits + src.cache_hits;
      dst.cache_misses <- dst.cache_misses + src.cache_misses;
      dst.dense_solves <- dst.dense_solves + src.dense_solves;
      dst.revised_solves <- dst.revised_solves + src.revised_solves;
      dst.lu_solves <- dst.lu_solves + src.lu_solves;
      dst.etas <- dst.etas + src.etas;
      dst.refactorizations <- dst.refactorizations + src.refactorizations;
      dst.ftran_nnz <- dst.ftran_nnz + src.ftran_nnz;
      dst.btran_nnz <- dst.btran_nnz + src.btran_nnz;
      dst.ft_updates <- dst.ft_updates + src.ft_updates;
      dst.bound_flips <- dst.bound_flips + src.bound_flips;
      dst.lu_fill_nnz <- dst.lu_fill_nnz + src.lu_fill_nnz;
      dst.presolve_rows <- dst.presolve_rows + src.presolve_rows;
      dst.presolve_cols <- dst.presolve_cols + src.presolve_cols;
      List.iter
        (fun (k, v) -> dst.pricing_solves <- bump_assoc dst.pricing_solves k v)
        src.pricing_solves;
      List.iter (fun (stage, s) -> add_wall_unlocked dst stage s) src.walls)

let cache_hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

(* Hand-rolled JSON: the repo carries no JSON dependency and the emitted
   structure is flat. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let walls =
    t.walls
    |> List.rev_map (fun (stage, s) -> Printf.sprintf "\"%s\": %.6f" (json_escape stage) s)
    |> String.concat ", "
  in
  let pricing =
    t.pricing_solves
    |> List.rev_map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
    |> String.concat ", "
  in
  Printf.sprintf
    "{\"solves\": %d, \"warm_solves\": %d, \"phase1_skips\": %d, \"repairs\": %d, \
     \"pivots\": %d, \"warm_pivots\": %d, \"cold_pivots\": %d, \
     \"cache_hits\": %d, \"cache_misses\": %d, \"cache_hit_rate\": %.4f, \
     \"dense_solves\": %d, \"revised_solves\": %d, \"lu_solves\": %d, \"etas\": %d, \
     \"refactorizations\": %d, \"ftran_nnz\": %d, \"btran_nnz\": %d, \
     \"ft_updates\": %d, \"bound_flips\": %d, \"lu_fill_nnz\": %d, \
     \"presolve_rows\": %d, \"presolve_cols\": %d, \
     \"pricing_solves\": {%s}, \"wall_s\": {%s}}"
    t.solves t.warm_solves t.phase1_skips t.repairs t.pivots t.warm_pivots t.cold_pivots
    t.cache_hits t.cache_misses (cache_hit_rate t)
    t.dense_solves t.revised_solves t.lu_solves t.etas t.refactorizations t.ftran_nnz t.btran_nnz
    t.ft_updates t.bound_flips t.lu_fill_nnz t.presolve_rows t.presolve_cols
    pricing walls

let pp ppf t =
  Format.fprintf ppf
    "solves=%d warm=%d p1skip=%d repair=%d pivots=%d (warm %d / cold %d) cache %d/%d \
     engines lu=%d rev=%d dense=%d etas=%d refactors=%d ft=%d flips=%d"
    t.solves t.warm_solves t.phase1_skips t.repairs t.pivots t.warm_pivots t.cold_pivots
    t.cache_hits (t.cache_hits + t.cache_misses)
    t.lu_solves t.revised_solves t.dense_solves t.etas t.refactorizations
    t.ft_updates t.bound_flips
