type t = {
  rows : int;
  cols : int;
  colptr : int array;
  rowidx : int array;
  values : float array;
}

let of_triplets ~rows ~cols ts =
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg "Sparse.of_triplets: index out of range")
    ts;
  (* Two-pass counting sort by column, then an in-column sort by row and
     a merge of duplicates.  Everything below is a pure function of the
     triplet multiset, so structurally equal inputs yield bit-identical
     storage. *)
  let count = Array.make (cols + 1) 0 in
  List.iter (fun (_, c, _) -> count.(c + 1) <- count.(c + 1) + 1) ts;
  for j = 1 to cols do
    count.(j) <- count.(j) + count.(j - 1)
  done;
  let n_raw = count.(cols) in
  let raw_r = Array.make n_raw 0 and raw_v = Array.make n_raw 0.0 in
  let cursor = Array.copy count in
  List.iter
    (fun (r, c, v) ->
      let k = cursor.(c) in
      raw_r.(k) <- r;
      raw_v.(k) <- v;
      cursor.(c) <- k + 1)
    ts;
  (* Sort each column segment by row (insertion sort: segments are tiny)
     and fold duplicates. *)
  let colptr = Array.make (cols + 1) 0 in
  let out_r = Array.make n_raw 0 and out_v = Array.make n_raw 0.0 in
  let w = ref 0 in
  for j = 0 to cols - 1 do
    colptr.(j) <- !w;
    let lo = count.(j) and hi = cursor.(j) in
    for k = lo + 1 to hi - 1 do
      let r = raw_r.(k) and v = raw_v.(k) in
      let i = ref (k - 1) in
      while !i >= lo && raw_r.(!i) > r do
        raw_r.(!i + 1) <- raw_r.(!i);
        raw_v.(!i + 1) <- raw_v.(!i);
        decr i
      done;
      raw_r.(!i + 1) <- r;
      raw_v.(!i + 1) <- v
    done;
    let k = ref lo in
    while !k < hi do
      let r = raw_r.(!k) in
      let acc = ref 0.0 in
      while !k < hi && raw_r.(!k) = r do
        acc := !acc +. raw_v.(!k);
        incr k
      done;
      if !acc <> 0.0 then begin
        out_r.(!w) <- r;
        out_v.(!w) <- !acc;
        incr w
      end
    done
  done;
  colptr.(cols) <- !w;
  { rows; cols; colptr; rowidx = Array.sub out_r 0 !w; values = Array.sub out_v 0 !w }

let nnz a = a.colptr.(a.cols)

let col_nnz a j = a.colptr.(j + 1) - a.colptr.(j)

let iter_col a j f =
  for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
    f a.rowidx.(k) a.values.(k)
  done

let col_dot a j y =
  let acc = ref 0.0 in
  for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
    acc := !acc +. (a.values.(k) *. y.(a.rowidx.(k)))
  done;
  !acc

let scatter_col a j x =
  for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
    x.(a.rowidx.(k)) <- x.(a.rowidx.(k)) +. a.values.(k)
  done

let transpose a =
  let colptr = Array.make (a.rows + 1) 0 in
  let n = nnz a in
  for k = 0 to n - 1 do
    colptr.(a.rowidx.(k) + 1) <- colptr.(a.rowidx.(k) + 1) + 1
  done;
  for i = 1 to a.rows do
    colptr.(i) <- colptr.(i) + colptr.(i - 1)
  done;
  let rowidx = Array.make n 0 and values = Array.make n 0.0 in
  let cursor = Array.copy colptr in
  (* Walking columns in order writes each transposed column's entries in
     increasing (original) column order, preserving the sortedness
     invariant. *)
  for j = 0 to a.cols - 1 do
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let i = a.rowidx.(k) in
      let p = cursor.(i) in
      rowidx.(p) <- j;
      values.(p) <- a.values.(k);
      cursor.(i) <- p + 1
    done
  done;
  { rows = a.cols; cols = a.rows; colptr; rowidx; values }

let to_dense a =
  let d = Array.init a.rows (fun _ -> Array.make a.cols 0.0) in
  for j = 0 to a.cols - 1 do
    iter_col a j (fun i v -> d.(i).(j) <- v)
  done;
  d
