type t = {
  rows : int;
  cols : int;
  colptr : int array;
  rowidx : int array;
  values : float array;
}

let of_triplets ~rows ~cols ts =
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg "Sparse.of_triplets: index out of range")
    ts;
  (* Two-pass counting sort by column, then an in-column sort by row and
     a merge of duplicates.  Everything below is a pure function of the
     triplet multiset, so structurally equal inputs yield bit-identical
     storage. *)
  let count = Array.make (cols + 1) 0 in
  List.iter (fun (_, c, _) -> count.(c + 1) <- count.(c + 1) + 1) ts;
  for j = 1 to cols do
    count.(j) <- count.(j) + count.(j - 1)
  done;
  let n_raw = count.(cols) in
  let raw_r = Array.make n_raw 0 and raw_v = Array.make n_raw 0.0 in
  let cursor = Array.copy count in
  List.iter
    (fun (r, c, v) ->
      let k = cursor.(c) in
      raw_r.(k) <- r;
      raw_v.(k) <- v;
      cursor.(c) <- k + 1)
    ts;
  (* Sort each column segment by row (insertion sort: segments are tiny)
     and fold duplicates. *)
  let colptr = Array.make (cols + 1) 0 in
  let out_r = Array.make n_raw 0 and out_v = Array.make n_raw 0.0 in
  let w = ref 0 in
  for j = 0 to cols - 1 do
    colptr.(j) <- !w;
    let lo = count.(j) and hi = cursor.(j) in
    for k = lo + 1 to hi - 1 do
      let r = raw_r.(k) and v = raw_v.(k) in
      let i = ref (k - 1) in
      while !i >= lo && raw_r.(!i) > r do
        raw_r.(!i + 1) <- raw_r.(!i);
        raw_v.(!i + 1) <- raw_v.(!i);
        decr i
      done;
      raw_r.(!i + 1) <- r;
      raw_v.(!i + 1) <- v
    done;
    let k = ref lo in
    while !k < hi do
      let r = raw_r.(!k) in
      let acc = ref 0.0 in
      while !k < hi && raw_r.(!k) = r do
        acc := !acc +. raw_v.(!k);
        incr k
      done;
      if !acc <> 0.0 then begin
        out_r.(!w) <- r;
        out_v.(!w) <- !acc;
        incr w
      end
    done
  done;
  colptr.(cols) <- !w;
  { rows; cols; colptr; rowidx = Array.sub out_r 0 !w; values = Array.sub out_v 0 !w }

let nnz a = a.colptr.(a.cols)

let col_nnz a j = a.colptr.(j + 1) - a.colptr.(j)

let iter_col a j f =
  for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
    f a.rowidx.(k) a.values.(k)
  done

let col_dot a j y =
  let acc = ref 0.0 in
  for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
    acc := !acc +. (a.values.(k) *. y.(a.rowidx.(k)))
  done;
  !acc

let scatter_col a j x =
  for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
    x.(a.rowidx.(k)) <- x.(a.rowidx.(k)) +. a.values.(k)
  done

let transpose a =
  let colptr = Array.make (a.rows + 1) 0 in
  let n = nnz a in
  for k = 0 to n - 1 do
    colptr.(a.rowidx.(k) + 1) <- colptr.(a.rowidx.(k) + 1) + 1
  done;
  for i = 1 to a.rows do
    colptr.(i) <- colptr.(i) + colptr.(i - 1)
  done;
  let rowidx = Array.make n 0 and values = Array.make n 0.0 in
  let cursor = Array.copy colptr in
  (* Walking columns in order writes each transposed column's entries in
     increasing (original) column order, preserving the sortedness
     invariant. *)
  for j = 0 to a.cols - 1 do
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let i = a.rowidx.(k) in
      let p = cursor.(i) in
      rowidx.(p) <- j;
      values.(p) <- a.values.(k);
      cursor.(i) <- p + 1
    done
  done;
  { rows = a.cols; cols = a.rows; colptr; rowidx; values }

let to_dense a =
  let d = Array.init a.rows (fun _ -> Array.make a.cols 0.0) in
  for j = 0 to a.cols - 1 do
    iter_col a j (fun i v -> d.(i).(j) <- v)
  done;
  d

type mat = t

(* ---- Sparse LU basis factorization --------------------------------------

   [Lu] factors an m-row basis column set B (columns of a CSC matrix) as
   B = L⁻¹·H⁻¹·U up to the row/position permutation, where

   - L is the sequence of column-elimination ops (Gaussian multipliers)
     recorded at factorization time,
   - H is the sequence of Forrest–Tomlin row etas appended by {!update},
   - U is kept explicitly, both column-wise and row-wise, as a "permuted
     triangle": each pivot owns a stable {e id}, [ord] maps ids to their
     triangular position, and a basis update only cyclic-shifts the O(m)
     ordinal arrays — U entries are never renumbered.

   Factorization is right-looking Markowitz-flavored threshold pivoting:
   the active column with the fewest remaining nonzeros eliminates next
   (count buckets, lazily maintained), pivoting on the minimum-row-count
   entry within [tau] of the column's magnitude.  Ties break on the
   lowest column / row index and no randomness or clock is consulted, so
   the factor is a pure function of the input.

   FTRAN applies L then H in creation order and back-substitutes U in
   decreasing ordinal order; BTRAN runs Uᵀ forward and the transposed
   H/L ops in reverse.  Both are O(factor nonzeros + m).

   {!update} replaces the basis column of one row by a Forrest–Tomlin
   update: the spike (H·L)(entering column) was cached by the preceding
   {!ftran}; the old column is deleted, its id cyclic-shifted to the last
   ordinal, and the detached U row eliminated by a single new row eta.
   It refuses (returns [false]) when the new diagonal is too small
   relative to the spike or a multiplier explodes, signalling the caller
   to refactorize — the Bartels–Golub-style stability fallback. *)
module Lu = struct
  (* Growable parallel (index, value) arrays with swap-removal. *)
  type cell = { mutable ci : int array; mutable cv : float array; mutable clen : int }

  let cell_make () = { ci = Array.make 4 0; cv = Array.make 4 0.0; clen = 0 }

  let cell_clear c = c.clen <- 0

  let cell_push c i v =
    if c.clen = Array.length c.ci then begin
      let n = 2 * c.clen in
      let ci = Array.make n 0 and cv = Array.make n 0.0 in
      Array.blit c.ci 0 ci 0 c.clen;
      Array.blit c.cv 0 cv 0 c.clen;
      c.ci <- ci;
      c.cv <- cv
    end;
    c.ci.(c.clen) <- i;
    c.cv.(c.clen) <- v;
    c.clen <- c.clen + 1

  (* Remove the entry with index [i]; returns its value (0.0 if absent). *)
  let cell_remove c i =
    let r = ref 0.0 in
    (try
       for k = 0 to c.clen - 1 do
         if c.ci.(k) = i then begin
           r := c.cv.(k);
           c.clen <- c.clen - 1;
           c.ci.(k) <- c.ci.(c.clen);
           c.cv.(k) <- c.cv.(c.clen);
           raise Exit
         end
       done
     with Exit -> ());
    !r

  (* L op: forall k, x.(o_rows.(k)) -= o_vals.(k) *. x.(o_piv).
     H op: x.(o_piv) -= Σ_k o_vals.(k) *. x.(o_rows.(k)). *)
  type op = { o_piv : int; o_rows : int array; o_vals : float array }

  let dummy_op = { o_piv = 0; o_rows = [||]; o_vals = [||] }

  type t = {
    m : int;
    ord : int array;  (* id -> triangular position *)
    id_at : int array;  (* position -> id *)
    row_of : int array;  (* id -> pivot row *)
    id_of_row : int array;  (* row -> id *)
    mutable l_ops : op array;
    mutable n_l : int;
    mutable h_ops : op array;
    mutable n_h : int;
    ucols : cell array;  (* by id: (row, value), diagonal excluded *)
    urows : cell array;  (* by row: (id, value), diagonal excluded *)
    udiag : float array;  (* by id *)
    mutable unnz : int;  (* U entries incl. diagonals *)
    mutable opnnz : int;  (* L + H op entries *)
    spike : float array;  (* (H·L)(column) cached by the last ftran *)
    rowacc : float array;  (* by id: update row-elimination accumulator *)
  }

  let nnz f = f.unnz + f.opnnz

  let updates f = f.n_h

  let push_l f op =
    if f.n_l = Array.length f.l_ops then begin
      let bigger = Array.make (2 * f.n_l) dummy_op in
      Array.blit f.l_ops 0 bigger 0 f.n_l;
      f.l_ops <- bigger
    end;
    f.l_ops.(f.n_l) <- op;
    f.n_l <- f.n_l + 1;
    f.opnnz <- f.opnnz + Array.length op.o_rows

  let push_h f op =
    if f.n_h = Array.length f.h_ops then begin
      let bigger = Array.make (2 * f.n_h) dummy_op in
      Array.blit f.h_ops 0 bigger 0 f.n_h;
      f.h_ops <- bigger
    end;
    f.h_ops.(f.n_h) <- op;
    f.n_h <- f.n_h + 1;
    f.opnnz <- f.opnnz + Array.length op.o_rows

  (* Factorize the column set found in [targets] (the row pairing is
     ignored; duplicates collapse).  Rows claimed by no target — and rows
     of targets dropped as numerically singular — take their [crash]
     identity column instead, which eliminates trivially (crash columns
     are singletons by construction).  [basis_out.(r)] receives the
     column pivoted on row r; the returned list is the dropped targets
     (empty on success). *)
  let factorize ?(tau = 0.1) (a : mat) ~targets ~crash ~basis_out =
    let m = a.rows in
    let f =
      { m;
        ord = Array.make m 0;
        id_at = Array.make m 0;
        row_of = Array.make m (-1);
        id_of_row = Array.make m (-1);
        l_ops = Array.make 16 dummy_op;
        n_l = 0;
        h_ops = Array.make 16 dummy_op;
        n_h = 0;
        ucols = Array.init m (fun _ -> cell_make ());
        urows = Array.init m (fun _ -> cell_make ());
        udiag = Array.make m 0.0;
        unnz = 0;
        opnnz = 0;
        spike = Array.make m 0.0;
        rowacc = Array.make m 0.0 }
    in
    (* Distinct target columns, lowest-index first. *)
    let cols =
      let seen = Hashtbl.create 64 in
      let acc = ref [] in
      Array.iter
        (fun c ->
          if c >= 0 && not (Hashtbl.mem seen c) then begin
            Hashtbl.add seen c ();
            acc := c :: !acc
          end)
        targets;
      let arr = Array.of_list !acc in
      Array.sort compare arr;
      arr
    in
    let nc = Array.length cols in
    (* Active submatrix: column slots with values; row-wise slot patterns
       are lazily cleaned (stale slots skipped on use). *)
    let acol = Array.init nc (fun _ -> cell_make ()) in
    let arow = Array.make m [] in
    let rowcnt = Array.make m 0 in
    let rowdone = Array.make m false and coldone = Array.make nc false in
    for s = 0 to nc - 1 do
      iter_col a cols.(s) (fun r v ->
          cell_push acol.(s) r v;
          arow.(r) <- s :: arow.(r);
          rowcnt.(r) <- rowcnt.(r) + 1)
    done;
    (* Count buckets over column slots, lazily revalidated on pop. *)
    let buckets = Array.make (m + 2) [] in
    for s = nc - 1 downto 0 do
      let k = acol.(s).clen in
      buckets.(k) <- s :: buckets.(k)
    done;
    let cur = ref 0 in
    let requeue s =
      let k = acol.(s).clen in
      buckets.(k) <- s :: buckets.(k);
      if k < !cur then cur := k
    in
    let nextid = ref 0 in
    let dropped = ref [] in
    let id_of_slot = Array.make nc (-1) in
    (* Pending U rows: at pivot time the surviving entries of the pivot
       row are keyed by column {e slot}; they are scattered into the
       id-indexed U once every slot has its id. *)
    let pend = Array.make nc [] in
    let claim r id =
      f.ord.(id) <- id;
      f.id_at.(id) <- id;
      f.row_of.(id) <- r;
      f.id_of_row.(r) <- id;
      rowdone.(r) <- true
    in
    (* Dense merge workspace for the Schur update. *)
    let wk = Array.make m 0.0 in
    let stamp = Array.make m (-1) in
    let steps = ref 0 in
    while !steps < nc do
      let slot = ref (-1) in
      while !slot = -1 do
        match buckets.(!cur) with
        | [] -> incr cur
        | s :: rest ->
          buckets.(!cur) <- rest;
          if (not coldone.(s)) && acol.(s).clen = !cur then slot := s
      done;
      let s = !slot in
      coldone.(s) <- true;
      incr steps;
      let c = acol.(s) in
      let cmax = ref 0.0 in
      for k = 0 to c.clen - 1 do
        let av = Float.abs c.cv.(k) in
        if av > !cmax then cmax := av
      done;
      if !cmax < 1e-11 then begin
        (* Cancelled or empty column: numerically singular, drop it. *)
        dropped := cols.(s) :: !dropped;
        for k = 0 to c.clen - 1 do
          rowcnt.(c.ci.(k)) <- rowcnt.(c.ci.(k)) - 1
        done;
        cell_clear c
      end
      else begin
        let thresh = tau *. !cmax in
        let prow = ref (-1) and pval = ref 0.0 and pcnt = ref max_int in
        for k = 0 to c.clen - 1 do
          let r = c.ci.(k) and v = c.cv.(k) in
          if Float.abs v >= thresh then
            if
              rowcnt.(r) < !pcnt || (rowcnt.(r) = !pcnt && (!prow = -1 || r < !prow))
            then begin
              prow := r;
              pval := v;
              pcnt := rowcnt.(r)
            end
        done;
        let r = !prow and piv = !pval in
        let id = !nextid in
        incr nextid;
        claim r id;
        id_of_slot.(s) <- id;
        f.udiag.(id) <- piv;
        f.unnz <- f.unnz + 1;
        (* L multipliers: the pivot column's entries off the pivot row. *)
        let lcnt = ref 0 in
        for k = 0 to c.clen - 1 do
          if c.ci.(k) <> r then incr lcnt
        done;
        let lrows = Array.make !lcnt 0 and lvals = Array.make !lcnt 0.0 in
        let kk = ref 0 in
        let inv = 1.0 /. piv in
        for k = 0 to c.clen - 1 do
          let i = c.ci.(k) in
          if i <> r then begin
            lrows.(!kk) <- i;
            lvals.(!kk) <- c.cv.(k) *. inv;
            incr kk;
            rowcnt.(i) <- rowcnt.(i) - 1
          end
        done;
        rowcnt.(r) <- rowcnt.(r) - 1;
        if !lcnt > 0 then push_l f { o_piv = r; o_rows = lrows; o_vals = lvals };
        cell_clear c;
        (* Extract the pivot row from the remaining active columns... *)
        let urow_entries = ref [] in
        List.iter
          (fun s' ->
            if (not coldone.(s')) && s' <> s then begin
              let v = cell_remove acol.(s') r in
              if v <> 0.0 then begin
                urow_entries := (s', v) :: !urow_entries;
                requeue s'
              end
            end)
          arow.(r);
        arow.(r) <- [];
        pend.(id) <- !urow_entries;
        (* ... and apply the rank-1 Schur update to each of them. *)
        if !lcnt > 0 then
          List.iter
            (fun (s', uv) ->
              let cc = acol.(s') in
              for k = 0 to cc.clen - 1 do
                stamp.(cc.ci.(k)) <- s';
                wk.(cc.ci.(k)) <- cc.cv.(k)
              done;
              let fill = ref [] in
              for k = 0 to !lcnt - 1 do
                let i = lrows.(k) in
                let delta = lvals.(k) *. uv in
                if stamp.(i) = s' then wk.(i) <- wk.(i) -. delta
                else begin
                  stamp.(i) <- s';
                  wk.(i) <- -.delta;
                  fill := i :: !fill
                end
              done;
              (* Rebuild the column in place: survivors first, fill after
                 (order within a cell is irrelevant — solves go through
                 the ordinal arrays). *)
              let old = cc.clen in
              cc.clen <- 0;
              for k = 0 to old - 1 do
                let i = cc.ci.(k) in
                if stamp.(i) = s' then begin
                  let v = wk.(i) in
                  stamp.(i) <- -1;
                  if Float.abs v > 1e-14 then cell_push cc i v
                  else rowcnt.(i) <- rowcnt.(i) - 1
                end
              done;
              List.iter
                (fun i ->
                  if stamp.(i) = s' then begin
                    let v = wk.(i) in
                    stamp.(i) <- -1;
                    if Float.abs v > 1e-14 then begin
                      cell_push cc i v;
                      arow.(i) <- s' :: arow.(i);
                      rowcnt.(i) <- rowcnt.(i) + 1
                    end
                  end)
                (List.rev !fill);
              requeue s')
            !urow_entries
      end
    done;
    (* Unclaimed rows take their crash identity column: a singleton at
       its own row, so it pivots on itself with no fill and no L op. *)
    for r = 0 to m - 1 do
      if not rowdone.(r) then begin
        let id = !nextid in
        incr nextid;
        claim r id;
        let v = ref 0.0 in
        iter_col a crash.(r) (fun i x -> if i = r then v := x);
        if Float.abs !v < 1e-11 then
          invalid_arg "Sparse.Lu.factorize: crash column is not an identity";
        f.udiag.(id) <- !v;
        f.unnz <- f.unnz + 1;
        basis_out.(r) <- crash.(r)
      end
    done;
    (* Scatter pending U rows now that every surviving slot has an id;
       entries pointing at dropped columns vanish with their column. *)
    for s = 0 to nc - 1 do
      let id = id_of_slot.(s) in
      if id >= 0 then begin
        basis_out.(f.row_of.(id)) <- cols.(s);
        List.iter
          (fun (s', v) ->
            let id' = id_of_slot.(s') in
            if id' >= 0 then begin
              let r = f.row_of.(id) in
              cell_push f.ucols.(id') r v;
              cell_push f.urows.(r) id' v;
              f.unnz <- f.unnz + 1
            end)
          pend.(id)
      end
    done;
    (f, !dropped)

  (* FTRAN: x := B⁻¹x.  Caches the post-L/H spike for a following
     {!update} — callers must FTRAN the entering column immediately
     before updating (the simplex pivot loop does). *)
  let ftran f x =
    for k = 0 to f.n_l - 1 do
      let op = f.l_ops.(k) in
      let xr = x.(op.o_piv) in
      if xr <> 0.0 then
        for i = 0 to Array.length op.o_rows - 1 do
          x.(op.o_rows.(i)) <- x.(op.o_rows.(i)) -. (op.o_vals.(i) *. xr)
        done
    done;
    for k = 0 to f.n_h - 1 do
      let op = f.h_ops.(k) in
      let acc = ref x.(op.o_piv) in
      for i = 0 to Array.length op.o_rows - 1 do
        acc := !acc -. (op.o_vals.(i) *. x.(op.o_rows.(i)))
      done;
      x.(op.o_piv) <- !acc
    done;
    Array.blit x 0 f.spike 0 f.m;
    (* U back-substitution in decreasing ordinal order, in place: column
       k's entries live in rows of strictly smaller ordinal, so writing
       the solved value at the pivot row never collides. *)
    for o = f.m - 1 downto 0 do
      let id = f.id_at.(o) in
      let r = f.row_of.(id) in
      let xr = x.(r) in
      if xr <> 0.0 then begin
        let z = xr /. f.udiag.(id) in
        x.(r) <- z;
        let c = f.ucols.(id) in
        for k = 0 to c.clen - 1 do
          x.(c.ci.(k)) <- x.(c.ci.(k)) -. (c.cv.(k) *. z)
        done
      end
    done

  (* BTRAN: y := B⁻ᵀy.  Uᵀ forward-substitution in increasing ordinal
     order, then the transposed H and L ops in reverse creation order. *)
  let btran f y =
    for o = 0 to f.m - 1 do
      let id = f.id_at.(o) in
      let r = f.row_of.(id) in
      let acc = ref y.(r) in
      let c = f.ucols.(id) in
      for k = 0 to c.clen - 1 do
        acc := !acc -. (c.cv.(k) *. y.(c.ci.(k)))
      done;
      y.(r) <- !acc /. f.udiag.(id)
    done;
    for k = f.n_h - 1 downto 0 do
      let op = f.h_ops.(k) in
      let yp = y.(op.o_piv) in
      if yp <> 0.0 then
        for i = 0 to Array.length op.o_rows - 1 do
          y.(op.o_rows.(i)) <- y.(op.o_rows.(i)) -. (op.o_vals.(i) *. yp)
        done
    done;
    for k = f.n_l - 1 downto 0 do
      let op = f.l_ops.(k) in
      let acc = ref y.(op.o_piv) in
      for i = 0 to Array.length op.o_rows - 1 do
        acc := !acc -. (op.o_vals.(i) *. y.(op.o_rows.(i)))
      done;
      y.(op.o_piv) <- !acc
    done

  (* Forrest–Tomlin update: the column basic in [leaving_row] is replaced
     by the column whose spike the last {!ftran} cached.  Returns [false]
     (factor must be rebuilt) on a small new diagonal or an exploding
     elimination multiplier; the factor may be half-mutated then, which
     is fine because the caller refactorizes from scratch. *)
  let update f ~leaving_row =
    let rl = leaving_row in
    let p = f.id_of_row.(rl) in
    let t = f.ord.(p) in
    let last = f.m - 1 in
    (* Detach row rl of U (saving its entries by id) and delete column p. *)
    let rowents = ref [] in
    let ur = f.urows.(rl) in
    for k = 0 to ur.clen - 1 do
      rowents := (ur.ci.(k), ur.cv.(k)) :: !rowents;
      ignore (cell_remove f.ucols.(ur.ci.(k)) rl);
      f.unnz <- f.unnz - 1
    done;
    cell_clear ur;
    let uc = f.ucols.(p) in
    for k = 0 to uc.clen - 1 do
      ignore (cell_remove f.urows.(uc.ci.(k)) p);
      f.unnz <- f.unnz - 1
    done;
    cell_clear uc;
    f.unnz <- f.unnz - 1 (* old diagonal *);
    (* Cyclic shift: id p moves to the last position. *)
    for o = t to last - 1 do
      let id = f.id_at.(o + 1) in
      f.id_at.(o) <- id;
      f.ord.(id) <- o
    done;
    f.id_at.(last) <- p;
    f.ord.(p) <- last;
    (* Eliminate the detached row against U in increasing ordinal order;
       fill lands at strictly larger ordinals, so a min-scan worklist
       terminates.  Multipliers accumulate into one row eta. *)
    let touched = ref [] in
    List.iter
      (fun (id, v) ->
        f.rowacc.(id) <- v;
        touched := id :: !touched)
      !rowents;
    let hrows = ref [] and hvals = ref [] and hcnt = ref 0 in
    let ok = ref true in
    let rec eliminate pending =
      match pending with
      | [] -> ()
      | _ ->
        let bj = ref (-1) and bo = ref max_int in
        List.iter
          (fun id -> if f.ord.(id) < !bo then begin bo := f.ord.(id); bj := id end)
          pending;
        let j = !bj in
        let rest = List.filter (fun id -> id <> j) pending in
        let mj = f.rowacc.(j) /. f.udiag.(j) in
        f.rowacc.(j) <- 0.0;
        if Float.abs mj > 1e-14 then begin
          if Float.abs mj > 1e8 then ok := false;
          let rj = f.row_of.(j) in
          hrows := rj :: !hrows;
          hvals := mj :: !hvals;
          incr hcnt;
          let urj = f.urows.(rj) in
          let added = ref rest in
          for k = 0 to urj.clen - 1 do
            let id' = urj.ci.(k) in
            if f.rowacc.(id') = 0.0 && not (List.mem id' !added) then
              added := id' :: !added;
            f.rowacc.(id') <- f.rowacc.(id') -. (mj *. urj.cv.(k))
          done;
          if !ok then eliminate !added
        end
        else eliminate rest
    in
    eliminate !touched;
    if not !ok then false
    else begin
      let hrows = Array.of_list (List.rev !hrows) in
      let hvals = Array.of_list (List.rev !hvals) in
      (* New column p = (row eta)·spike: only the rl entry changes. *)
      let s = f.spike in
      let newdiag = ref s.(rl) in
      for k = 0 to !hcnt - 1 do
        newdiag := !newdiag -. (hvals.(k) *. s.(hrows.(k)))
      done;
      let smax = ref 0.0 in
      for i = 0 to f.m - 1 do
        let av = Float.abs s.(i) in
        if av > !smax then smax := av
      done;
      if Float.abs !newdiag < 1e-11 || Float.abs !newdiag < 1e-9 *. !smax then
        false
      else begin
        if !hcnt > 0 then push_h f { o_piv = rl; o_rows = hrows; o_vals = hvals };
        f.udiag.(p) <- !newdiag;
        f.unnz <- f.unnz + 1;
        for i = 0 to f.m - 1 do
          if i <> rl && Float.abs s.(i) > 1e-14 then begin
            cell_push f.ucols.(p) i s.(i);
            cell_push f.urows.(i) p s.(i);
            f.unnz <- f.unnz + 1
          end
        done;
        true
      end
    end
end
