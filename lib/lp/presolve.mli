(** LP presolve / postsolve for the LU simplex engine.

    [reduce] shrinks an {!Lp.model} by empty/singleton-row elimination,
    duplicate-row collapsing, empty/dominated-column fixing and
    geometric-mean equilibration; [postsolve] maps a reduced solution
    back, reconstructing the duals of eliminated rows.

    Structural invariant: which rows/columns survive depends only on the
    constraint patterns, senses, coefficients and cost signs — never on
    rhs or bound values — so a simplex basis stored against one
    reduction reinstalls exactly after rhs-only model changes (MIP bound
    fixings, Benders rhs updates, capacity perturbations). *)

type t = {
  p_nv : int;  (** original structural variable count *)
  p_nc : int;  (** original row count *)
  sign : float;  (** Minimize -> [1.0], Maximize -> [-1.0] *)
  cost_min : float array;  (** min-form costs over original columns *)
  colview : (int * float) list array;
      (** original column -> (row, coef) occurrences *)
  rhs_eff : float array;
      (** per original row: rhs minus fixed-column contributions *)
  r_nv : int;  (** reduced column count *)
  r_nc : int;  (** reduced row count *)
  r_rows : (int * float) list array;  (** scaled reduced rows *)
  r_sense : Lp.sense array;
  r_rhs : float array;
  r_lb : float array;  (** scaled reduced bounds *)
  r_ub : float array;
  r_cost : float array;  (** scaled min-form reduced costs *)
  col_of : int array;  (** reduced col -> original col *)
  col_map : int array;  (** original col -> reduced col or [-1] *)
  row_of : int array;  (** reduced row -> original row *)
  row_map : int array;  (** original row -> reduced row or [-1] *)
  rowscale : float array;  (** per original kept row *)
  colscale : float array;  (** per original kept col *)
  fixed : float array;  (** per original col; valid when [col_map] = -1 *)
  actions : action list;  (** head = last reduction applied *)
  rows_removed : int;
  cols_removed : int;
}

and action

type outcome = Reduced of t | Infeasible | Unbounded

val reduce : Lp.model -> outcome
(** Apply the reduction fixpoint.  Always returns [Reduced] on feasible
    structures — a fully solved model shows up as [r_nv = 0].  Raises
    [Invalid_argument] on free variables (lb = -inf), matching the
    simplex engines. *)

val postsolve : t -> x:float array -> y:float array -> float array * float array
(** [postsolve t ~x ~y] maps a reduced (scaled) primal point [x] (by
    reduced column) and min-form dual point [y] (by reduced row) to
    [(x_orig, y_min_orig)] over original columns/rows.  Duals of
    eliminated singleton rows are reconstructed from residual reduced
    costs; duplicate-group duals transfer to the tight member.  The
    returned duals are min-form shadow prices — the caller applies the
    direction sign. *)
