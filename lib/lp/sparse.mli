(** Compressed-sparse-column matrices.

    The constraint matrices of every PreTE LP are overwhelmingly sparse
    (a tunnel touches a handful of links; scenario blocks are near-
    disjoint), so the revised simplex engine ({!Simplex}) stores them in
    CSC form and the {!Te} model builders derive capacity rows from a
    sparse link×tunnel incidence instead of scanning every (link,
    tunnel) pair.

    Entries within a column are stored in strictly increasing row order;
    duplicate [(row, col)] triplets are summed and exact zeros dropped at
    construction, so structurally equal inputs produce identical
    storage — a prerequisite for the solver's deterministic pivoting. *)

type t = private {
  rows : int;
  cols : int;
  colptr : int array;  (** Length [cols + 1]; column [j] spans
                           [colptr.(j) .. colptr.(j+1) - 1]. *)
  rowidx : int array;  (** Row index per stored entry, ascending within
                           each column. *)
  values : float array;
}

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** [of_triplets ~rows ~cols ts] builds a matrix from [(row, col, value)]
    triplets.  Duplicates are summed; entries summing to exactly [0.] are
    dropped.  Raises [Invalid_argument] on out-of-range indices. *)

val nnz : t -> int
(** Stored entries (all nonzero). *)

val col_nnz : t -> int -> int
(** Stored entries in one column. *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col a j f] applies [f row value] to each stored entry of
    column [j], in increasing row order. *)

val col_dot : t -> int -> float array -> float
(** [col_dot a j y] is [Σ_i a(i,j) · y.(i)] — the sparse column dotted
    against a dense vector of length [rows]. *)

val scatter_col : t -> int -> float array -> unit
(** [scatter_col a j x] adds column [j] into the dense vector [x]
    (length [rows]); the caller clears [x] first. *)

val transpose : t -> t
(** The transpose, itself in CSC form — column [i] of the result is row
    [i] of the input, giving a row view ("CSR") of the original. *)

val to_dense : t -> float array array
(** [rows × cols] dense copy; for tests and debugging. *)
