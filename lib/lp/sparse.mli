(** Compressed-sparse-column matrices.

    The constraint matrices of every PreTE LP are overwhelmingly sparse
    (a tunnel touches a handful of links; scenario blocks are near-
    disjoint), so the revised simplex engine ({!Simplex}) stores them in
    CSC form and the {!Te} model builders derive capacity rows from a
    sparse link×tunnel incidence instead of scanning every (link,
    tunnel) pair.

    Entries within a column are stored in strictly increasing row order;
    duplicate [(row, col)] triplets are summed and exact zeros dropped at
    construction, so structurally equal inputs produce identical
    storage — a prerequisite for the solver's deterministic pivoting. *)

type t = private {
  rows : int;
  cols : int;
  colptr : int array;  (** Length [cols + 1]; column [j] spans
                           [colptr.(j) .. colptr.(j+1) - 1]. *)
  rowidx : int array;  (** Row index per stored entry, ascending within
                           each column. *)
  values : float array;
}

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** [of_triplets ~rows ~cols ts] builds a matrix from [(row, col, value)]
    triplets.  Duplicates are summed; entries summing to exactly [0.] are
    dropped.  Raises [Invalid_argument] on out-of-range indices. *)

val nnz : t -> int
(** Stored entries (all nonzero). *)

val col_nnz : t -> int -> int
(** Stored entries in one column. *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col a j f] applies [f row value] to each stored entry of
    column [j], in increasing row order. *)

val col_dot : t -> int -> float array -> float
(** [col_dot a j y] is [Σ_i a(i,j) · y.(i)] — the sparse column dotted
    against a dense vector of length [rows]. *)

val scatter_col : t -> int -> float array -> unit
(** [scatter_col a j x] adds column [j] into the dense vector [x]
    (length [rows]); the caller clears [x] first. *)

val transpose : t -> t
(** The transpose, itself in CSC form — column [i] of the result is row
    [i] of the input, giving a row view ("CSR") of the original. *)

val to_dense : t -> float array array
(** [rows × cols] dense copy; for tests and debugging. *)

type mat = t
(** Alias so modules below can name the matrix type unambiguously. *)

(** Sparse LU factorization of a basis column set with Forrest–Tomlin
    updates — the basis representation of the {!Simplex} LU engine.

    [B = L⁻¹·H⁻¹·U] up to the pivot permutation: L holds the Gaussian
    column ops recorded by {!Lu.factorize} (Markowitz-flavored threshold
    pivoting: sparsest active column next, minimum-row-count pivot within
    [tau] of the column magnitude), H the row etas appended by
    {!Lu.update}, and U is stored explicitly both column- and row-wise
    against stable position ids, so an update cyclic-shifts two O(m)
    ordinal arrays instead of renumbering entries.  All tie-breaks are
    lowest-index and no randomness is consulted: the factor — and
    therefore every solve that uses it — is a pure function of the
    input. *)
module Lu : sig
  type t

  val factorize :
    ?tau:float ->
    mat ->
    targets:int array ->
    crash:int array ->
    basis_out:int array ->
    t * int list
  (** Factorize the distinct column set of [targets] (row pairing
      ignored).  Rows claimed by no surviving target take their [crash]
      identity column, which must be a singleton [±1]-style column on its
      own row.  [basis_out.(r)] receives the column pivoted on row [r];
      the returned list holds targets dropped as numerically singular
      (empty on success).  [tau] is the relative pivot threshold
      (default 0.1). *)

  val ftran : t -> float array -> unit
  (** [x := B⁻¹x] in place.  Also caches the post-L/H spike used by
      {!update}: a pivot must FTRAN its entering column immediately
      before updating. *)

  val btran : t -> float array -> unit
  (** [y := B⁻ᵀy] in place. *)

  val update : t -> leaving_row:int -> bool
  (** Forrest–Tomlin update replacing the column basic in [leaving_row]
      with the column whose spike the last {!ftran} cached.  [false]
      means the update was refused on stability grounds (tiny new
      diagonal or exploding multiplier) and the caller must refactorize
      — the factor may be left half-mutated, which a refactorization
      discards anyway. *)

  val nnz : t -> int
  (** Resident factor nonzeros: U entries (incl. diagonals) plus L and H
      op entries — the fill-in telemetry and refactorization trigger. *)

  val updates : t -> int
  (** Forrest–Tomlin updates absorbed since factorization. *)
end
