(** WAN topologies with an explicit optical layer.

    The model follows the paper's two-layer view (§2, §6.1): the network is
    a directed graph [G = (V, E)] of routers and IP links, and each IP link
    rides on one or more physical {e fibers}.  A fiber cut simultaneously
    removes every IP link that traverses the fiber — this is what makes
    cuts so disruptive (Fig. 1b/1c: one cut loses multiple Tbps of IP
    capacity and touches a third of the flows).

    Three topologies are built in, matching Table 3:

    - {b B4}: Google's WAN (12 sites, 19 fiber spans, 52 IP links after
      wavelength expansion).  The fiber adjacency approximates the published
      B4 map; the IP layer is generated from the fiber layer with the
      distribution used by ARROW, exactly as the paper does.
    - {b IBM}: 18 sites, 23 fiber spans, 85 IP links (same IP-layer
      generation).
    - {b TWAN}: the paper's production topology is confidential; we generate
      a deterministic synthetic instance matching the published
      order-of-magnitude statistics (O(50) fibers, O(100) IP links).

    IP links are directed and created in opposite pairs riding the same
    fiber set. *)

type node = int

type fiber = {
  fid : int;
  fname : string;
  endpoints : node * node;  (** Sites the span connects (normalized order). *)
  length_km : float;
  region : int;  (** Coarse geographic region (feature for prediction). *)
  vendor : int;  (** Fiber vendor id (feature for prediction). *)
}

type link = {
  lid : int;
  src : node;
  dst : node;
  capacity : float;  (** Gbps. *)
  fibers : int list;  (** Fibers this IP link traverses, in order. *)
}

type t = {
  name : string;
  num_nodes : int;
  node_names : string array;
  fibers : fiber array;
  links : link array;
  out_links : int list array;  (** Outgoing link ids per node. *)
  links_on_fiber : int list array;  (** IP link ids riding each fiber. *)
}

val make :
  name:string ->
  node_names:string array ->
  fibers:(node * node * float) array ->
  links:(node * node * float * int list) array ->
  t
(** Low-level constructor.  [fibers] are [(a, b, length_km)]; [links] are
    [(src, dst, capacity, fiber ids)].  Regions/vendors are derived
    deterministically from the fiber id.  Validates endpoints and fiber
    references. *)

val b4 : unit -> t
val ibm : unit -> t
val twan : unit -> t
(** Deterministic instances (no hidden global state; calling twice yields
    structurally equal topologies). *)

val grid : int -> t
(** [grid k] is a deterministic k×k lattice: one 50 km fiber per
    undirected edge, two opposite 40 Gbps IP links riding it.  The
    scaling instance family of the LP bench and the default stage for
    the streaming runtime.  Raises [Invalid_argument] for [k < 2]. *)

(** {1 Topology zoo}

    Parameterized, seeded generators for the scenario sweeps.  Every
    generator is pure: the same name/seed always yields a bit-identical
    topology, and every generated graph is connected (a ring underlies
    the random families) with degree and span-length samples inside the
    declared {!Zoo} bounds. *)

module Zoo : sig
  val min_span_km : float
  (** Shortest fiber span any zoo generator emits. *)

  val max_span_km : float
  (** Longest fiber span any zoo generator emits. *)

  val max_degree : int
  (** Hard per-site cap on fiber-adjacency degree. *)

  val min_avg_degree : float
  val max_avg_degree : float
  (** Band the mean fiber degree of every zoo topology falls in. *)
end

val abilene : unit -> t
(** Internet2 Abilene: 11 PoPs, 14 fiber spans at (approximate)
    published route lengths, 28 undirected IP links. *)

val surfnet : unit -> t
(** SURFnet-class national research network: 50 PoPs, ~68 spans of
    mostly short-haul fiber (seeded instance of the {!wan} family on a
    small plane). *)

val wan : ?seed:int -> int -> t
(** [wan ?seed sites] is a seeded continental WAN: sites uniform on a
    4200×2400 km plane, a ring over the angular order plus
    distance-biased (Waxman) chords, span lengths euclidean ×1.2
    clamped to the {!Zoo} bounds.  Same [(seed, sites)] ⇒ bit-identical
    topology.  Raises [Invalid_argument] for [sites < 4]. *)

val names : unit -> string list
(** Names of all registered non-parameterized topologies, resolvable
    through {!by_name}. *)

val by_name : string -> t
(** Case-insensitive lookup: any of {!names} (["B4"], ["IBM"],
    ["TWAN"], ["Abilene"], ["SURFnet"]), ["gridK"] for K ≥ 2
    (e.g. ["grid4"]), or ["wanN"] / ["wanNxSEED"] for the seeded WAN
    family (e.g. ["wan40"], ["wan40x7"]).  Raises [Invalid_argument]
    listing the known names otherwise. *)

val all : unit -> t list
(** Every non-parameterized topology: the Table 3 trio (IBM, B4, TWAN)
    followed by the zoo entries (Abilene, SURFnet). *)

val link : t -> int -> link
val fiber : t -> int -> fiber
val num_links : t -> int
val num_fibers : t -> int

val links_lost_on_cut : t -> int -> int list
(** IP link ids removed when a fiber is cut. *)

val capacity_lost_on_cut : t -> int -> float
(** Total IP capacity (Gbps, summed over directed links) removed when the
    fiber is cut. *)

val neighbors : t -> node -> (int * node) list
(** Outgoing [(link id, destination)] pairs. *)

val pp_summary : Format.formatter -> t -> unit
